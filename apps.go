package repro

import (
	"fmt"

	"repro/internal/analytics"
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/spmv"
)

// AnalyticResult reports one distributed analytic's execution.
type AnalyticResult = analytics.Result

// AnalyticsConfig drives a distributed analytics run.
type AnalyticsConfig struct {
	// Ranks is the number of simulated compute nodes; parts must map
	// every vertex into [0, Ranks).
	Ranks int
	// HCSources bounds the harmonic centrality BFS count (the paper
	// uses 100).
	HCSources int
	// AsyncExchange routes the analytics' boundary exchanges
	// (ExchangeInt64/ExchangeFloat64/PushToOwners) through the async
	// delta engine instead of the bulk-synchronous Alltoallv. Results
	// are identical; exchanged-element volume is lower.
	AsyncExchange bool
	// TermEpoch bounds termination-test staleness in async mode on
	// INCOMPLETE rank neighborhoods, mirroring Config.SizeEpoch for the
	// partitioner: every TermEpoch-th round performs the exact
	// termination Allreduce, the rounds between run unchecked, and a
	// fixed point reached mid-epoch costs at most TermEpoch-1 extra
	// no-op rounds — which cannot change any value, so results stay
	// identical. 0 or 1 (default) keeps the exact per-round fallback;
	// on complete neighborhoods the knob is irrelevant because the
	// piggybacked counters already terminate without any Allreduce.
	TermEpoch int
	// PipeDepth sets the async exchange engine's pipeline depth: how
	// many rounds of boundary messages may be in flight at once
	// (default 2). Depths of 4 and above let Harmonic Centrality run
	// PipeDepth/2 of its independent BFS waves concurrently on the
	// shared pipeline, cutting its per-source Allreduces and
	// round-latency stalls; results stay bit-identical at every depth.
	// Values 1 and below (other than 0 = default) are rejected.
	// Ignored in sync mode.
	PipeDepth int
	// ThreadsPerRank fans each rank's relaxation and frontier-expansion
	// sweeps across worker threads (the paper's OpenMP threads per MPI
	// task). The repo-wide rule: 0 (or negative) selects one worker per
	// core (par.DefaultThreads), an explicit 1 runs serial. Analytics
	// results are bit-identical at every thread count.
	ThreadsPerRank int
}

// RunAnalytics distributes the generator's graph over ranks simulated
// nodes according to parts (vertex gid -> node, as produced by any
// partitioner with p == ranks) and executes the paper's six analytics
// (HC, KC, LP, PR, SCC, WCC) on the synchronous exchange engine.
// RunAnalyticsCfg exposes the full configuration.
func RunAnalytics(g *Generator, parts []int32, ranks int, hcSources int) ([]AnalyticResult, error) {
	return RunAnalyticsCfg(g, parts, AnalyticsConfig{Ranks: ranks, HCSources: hcSources})
}

// RunAnalyticsCfg is RunAnalytics with an explicit configuration,
// including the exchange-engine selection.
func RunAnalyticsCfg(g *Generator, parts []int32, cfg AnalyticsConfig) ([]AnalyticResult, error) {
	rep, err := RunAnalyticsReport(g, parts, cfg)
	return rep.Results, err
}

// AnalyticsReport bundles one distributed analytics run's per-analytic
// results with its communication counters — the analytics counterpart
// of Report for partitioning runs.
type AnalyticsReport struct {
	// Results holds the six analytics' records in Fig. 8 order.
	Results []AnalyticResult
	// ReductionOps is the number of Allreduce operations the analytics
	// performed (rank 0's count; the collectives are symmetric).
	// Synchronous runs pay one per iteration for termination counters
	// and PageRank's fused dangling-mass/norm reduction; async runs
	// piggyback those on the boundary value messages and drop to a
	// handful per analytic on complete rank neighborhoods.
	ReductionOps int64
	// ExchangeVolume is the total element volume all ranks sent during
	// the analytics (graph construction excluded).
	ExchangeVolume int64
}

// RunAnalyticsReport is RunAnalyticsCfg with communication counters.
func RunAnalyticsReport(g *Generator, parts []int32, cfg AnalyticsConfig) (AnalyticsReport, error) {
	if int64(len(parts)) != g.N {
		return AnalyticsReport{}, fmt.Errorf("repro: %d part assignments for %d vertices", len(parts), g.N)
	}
	for v, pt := range parts {
		if pt < 0 || int(pt) >= cfg.Ranks {
			return AnalyticsReport{}, fmt.Errorf("repro: vertex %d assigned node %d outside [0,%d)", v, pt, cfg.Ranks)
		}
	}
	if err := validatePipeDepth(cfg.PipeDepth); err != nil {
		return AnalyticsReport{}, err
	}
	var out AnalyticsReport
	var runErr error
	mpi.RunThreads(cfg.Ranks, par.ResolveThreads(cfg.ThreadsPerRank), func(c *mpi.Comm) {
		rep, err := RunAnalyticsComm(c, g, parts, cfg)
		if c.Rank() == 0 {
			out, runErr = rep, err
		}
	})
	return out, runErr
}

// RunAnalyticsComm is the per-rank body of RunAnalyticsReport: it runs
// this rank's share of the analytics on an existing communicator — the
// entry point for externally formed worlds (one OS process per rank
// over a socket transport). AnalyticsConfig.Ranks is ignored; the
// communicator defines the world. Parts must map every vertex into
// [0, c.Size()). Every rank returns the same report.
func RunAnalyticsComm(c *mpi.Comm, g *Generator, parts []int32, cfg AnalyticsConfig) (AnalyticsReport, error) {
	if int64(len(parts)) != g.N {
		return AnalyticsReport{}, fmt.Errorf("repro: %d part assignments for %d vertices", len(parts), g.N)
	}
	for v, pt := range parts {
		if pt < 0 || int(pt) >= c.Size() {
			return AnalyticsReport{}, fmt.Errorf("repro: vertex %d assigned node %d outside [0,%d)", v, pt, c.Size())
		}
	}
	if err := validatePipeDepth(cfg.PipeDepth); err != nil {
		return AnalyticsReport{}, err
	}
	dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
		dgraph.PartsDist{Parts: parts})
	if err != nil {
		panic(err) // parts validated above; construction is total
	}
	dg.SetPipeDepth(cfg.PipeDepth) // before the exchanger exists
	dg.SetAsyncExchange(cfg.AsyncExchange)
	dg.SetTermEpoch(cfg.TermEpoch)
	c.ResetStats()
	res := analytics.RunAll(dg, cfg.HCSources)
	vol := mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
	// Normal-path teardown: stop the exchanger's drainer goroutine.
	// Deliberately not deferred — on a panic the world is poisoned and
	// the finalizer backstops, whereas a blocking Close during
	// unwinding could wait on messages that never come.
	dg.Close()
	return AnalyticsReport{
		Results: res,
		// The volume Allreduce above is not part of the run.
		ReductionOps:   c.Stats().ReductionOps - 1,
		ExchangeVolume: vol,
	}, nil
}

// validatePipeDepth rejects pipeline depths dgraph.SetPipeDepth would
// panic on, turning the misconfiguration into an error at the facade.
func validatePipeDepth(d int) error {
	if d != 0 && d < dgraph.MinPipeDepth {
		return fmt.Errorf("repro: PipeDepth = %d, need 0 (default) or >= %d", d, dgraph.MinPipeDepth)
	}
	return nil
}

// SpMVResult reports one distributed SpMV experiment.
type SpMVResult = spmv.Result

// SpMV layout names.
const (
	Layout1D = "1d"
	Layout2D = "2d"
)

// SpMVConfig drives a distributed SpMV run.
type SpMVConfig struct {
	// Ranks is the number of simulated MPI ranks.
	Ranks int
	// Layout places nonzeros: Layout1D or Layout2D.
	Layout string
	// Iterations is the number of chained multiplies (default 100).
	Iterations int
	// AsyncExchange replaces the expand/fold Alltoallv collectives
	// with nonblocking point-to-point messages over the precomputed
	// schedules, bypassing self-destined shares entirely. The checksum
	// is bit-identical; sent-value volume is lower.
	AsyncExchange bool
	// ThreadsPerRank fans each rank's row-sum kernel and fold
	// accumulation across worker threads. The repo-wide rule: 0 (or
	// negative) selects one worker per core (par.DefaultThreads), an
	// explicit 1 runs serial. Checksums are bit-identical at every
	// thread count.
	ThreadsPerRank int
}

// RunSpMV executes iters chained sparse matrix-vector products of the
// graph's adjacency matrix on ranks simulated nodes, with the vector
// distributed by parts and nonzeros placed by the named layout ("1d"
// row layout, or "2d" processor-grid layout per Boman et al.), on the
// synchronous exchange engine. RunSpMVCfg exposes the full
// configuration.
func RunSpMV(g *Graph, parts []int32, ranks int, layout string, iters int) (SpMVResult, error) {
	return RunSpMVCfg(g, parts, SpMVConfig{Ranks: ranks, Layout: layout, Iterations: iters})
}

// RunSpMVCfg is RunSpMV with an explicit configuration, including the
// exchange-engine selection.
func RunSpMVCfg(g *Graph, parts []int32, cfg SpMVConfig) (SpMVResult, error) {
	var l spmv.Layout
	switch cfg.Layout {
	case Layout1D:
		l = spmv.OneD
	case Layout2D:
		l = spmv.TwoD
	default:
		return SpMVResult{}, fmt.Errorf("repro: unknown layout %q (1d|2d)", cfg.Layout)
	}
	var out SpMVResult
	var runErr error
	mpi.RunThreads(cfg.Ranks, par.ResolveThreads(cfg.ThreadsPerRank), func(c *mpi.Comm) {
		res, err := spmv.Run(c, g, parts, spmv.Options{Layout: l, Iterations: cfg.Iterations, Async: cfg.AsyncExchange})
		if c.Rank() == 0 {
			out, runErr = res, err
		}
	})
	return out, runErr
}
