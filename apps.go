package repro

import (
	"fmt"

	"repro/internal/analytics"
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/spmv"
)

// AnalyticResult reports one distributed analytic's execution.
type AnalyticResult = analytics.Result

// RunAnalytics distributes the generator's graph over ranks simulated
// nodes according to parts (vertex gid -> node, as produced by any
// partitioner with p == ranks) and executes the paper's six analytics
// (HC, KC, LP, PR, SCC, WCC). hcSources bounds the harmonic centrality
// BFS count (the paper uses 100).
func RunAnalytics(g *Generator, parts []int32, ranks int, hcSources int) ([]AnalyticResult, error) {
	if int64(len(parts)) != g.N {
		return nil, fmt.Errorf("repro: %d part assignments for %d vertices", len(parts), g.N)
	}
	for v, pt := range parts {
		if pt < 0 || int(pt) >= ranks {
			return nil, fmt.Errorf("repro: vertex %d assigned node %d outside [0,%d)", v, pt, ranks)
		}
	}
	var out []AnalyticResult
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.PartsDist{Parts: parts})
		if err != nil {
			panic(err) // parts validated above; construction is total
		}
		res := analytics.RunAll(dg, hcSources)
		if c.Rank() == 0 {
			out = res
		}
	})
	return out, nil
}

// SpMVResult reports one distributed SpMV experiment.
type SpMVResult = spmv.Result

// SpMV layout names.
const (
	Layout1D = "1d"
	Layout2D = "2d"
)

// RunSpMV executes iters chained sparse matrix-vector products of the
// graph's adjacency matrix on ranks simulated nodes, with the vector
// distributed by parts and nonzeros placed by the named layout ("1d"
// row layout, or "2d" processor-grid layout per Boman et al.).
func RunSpMV(g *Graph, parts []int32, ranks int, layout string, iters int) (SpMVResult, error) {
	var l spmv.Layout
	switch layout {
	case Layout1D:
		l = spmv.OneD
	case Layout2D:
		l = spmv.TwoD
	default:
		return SpMVResult{}, fmt.Errorf("repro: unknown layout %q (1d|2d)", layout)
	}
	var out SpMVResult
	var runErr error
	mpi.Run(ranks, func(c *mpi.Comm) {
		res, err := spmv.Run(c, g, parts, spmv.Options{Layout: l, Iterations: iters})
		if c.Rank() == 0 {
			out, runErr = res, err
		}
	})
	return out, runErr
}
