package repro

import (
	"testing"
)

func TestRunAnalyticsUnderAllPlacements(t *testing.T) {
	const nodes = 4
	gen := PowerLaw(1024, 8192, 2.1, 1)
	g := gen.MustBuild()
	for _, method := range []string{MethodVertexBlock, MethodEdgeBlock, MethodRandom} {
		parts, err := Partition(method, g, nodes, 1)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		results, err := RunAnalytics(gen, parts, nodes, 2)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(results) != 6 {
			t.Fatalf("%s: %d results", method, len(results))
		}
		// Structural results must not depend on placement.
		var wcc float64
		for _, r := range results {
			if r.Name == "WCC" {
				wcc = r.Value
			}
		}
		if wcc < 1 {
			t.Errorf("%s: WCC found %v components", method, wcc)
		}
	}
}

func TestRunAnalyticsResultsPlacementInvariant(t *testing.T) {
	const nodes = 4
	gen := RandER(512, 2048, 3)
	g := gen.MustBuild()
	var sccSizes, wccCounts []float64
	for _, method := range []string{MethodVertexBlock, MethodRandom} {
		parts, _ := Partition(method, g, nodes, 1)
		results, err := RunAnalytics(gen, parts, nodes, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			switch r.Name {
			case "SCC":
				sccSizes = append(sccSizes, r.Value)
			case "WCC":
				wccCounts = append(wccCounts, r.Value)
			}
		}
	}
	if sccSizes[0] != sccSizes[1] {
		t.Errorf("SCC size differs across placements: %v", sccSizes)
	}
	if wccCounts[0] != wccCounts[1] {
		t.Errorf("WCC count differs across placements: %v", wccCounts)
	}
}

func TestRunAnalyticsValidation(t *testing.T) {
	gen := RandER(100, 200, 1)
	if _, err := RunAnalytics(gen, make([]int32, 50), 4, 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	bad := make([]int32, 100)
	bad[0] = 9
	if _, err := RunAnalytics(gen, bad, 4, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Pipeline depths below 2 (other than 0 = default) are rejected at
	// the facade on both entry points, before any rank spawns.
	parts := make([]int32, 100)
	if _, err := RunAnalyticsCfg(gen, parts, AnalyticsConfig{Ranks: 4, PipeDepth: 1}); err == nil {
		t.Fatal("expected PipeDepth validation error from RunAnalyticsCfg")
	}
	if _, _, err := XtraPuLPGen(gen, Config{Parts: 4, Ranks: 2, PipeDepth: -3}); err == nil {
		t.Fatal("expected PipeDepth validation error from XtraPuLPGen")
	}
}

// Analytics results must be depth-independent through the public
// facade: a deeper pipeline only changes HC's wave schedule, never any
// value.
func TestRunAnalyticsDeepPipelineMatchesDefault(t *testing.T) {
	const nodes = 4
	gen := RandER(512, 2048, 3)
	g := gen.MustBuild()
	parts, err := Partition(MethodVertexBlock, g, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	var runs [2][]AnalyticResult
	for i, depth := range []int{0, 8} {
		runs[i], err = RunAnalyticsCfg(gen, parts, AnalyticsConfig{
			Ranks: nodes, HCSources: 5, AsyncExchange: true, PipeDepth: depth,
		})
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
	}
	for i := range runs[0] {
		d, e := runs[0][i], runs[1][i]
		if d.Name != e.Name || d.Value != e.Value || d.Iterations != e.Iterations {
			t.Errorf("%s: depth 2 (%v, %d iters) vs depth 8 (%v, %d iters)",
				d.Name, d.Value, d.Iterations, e.Value, e.Iterations)
		}
	}
}

func TestRunSpMVBothLayouts(t *testing.T) {
	g := RMAT(9, 8, 1).MustBuild()
	parts, err := Partition(MethodVertexBlock, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var checks []float64
	for _, layout := range []string{Layout1D, Layout2D} {
		res, err := RunSpMV(g, parts, 4, layout, 5)
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		if res.Time <= 0 || res.CommVolume < 0 {
			t.Errorf("%s: result not populated: %+v", layout, res)
		}
		checks = append(checks, res.Checksum)
	}
	if checks[0] != checks[1] {
		t.Errorf("layout checksums differ: %v", checks)
	}
}

// The async SpMV engine is a pure transport change: checksums must be
// bit-identical to the synchronous engine under both layouts, while
// the sent-value volume drops (remote-only accounting plus, under 1D,
// the fully rank-local fold bypassing the transport).
func TestRunSpMVAsyncMatchesSyncChecksum(t *testing.T) {
	g := RMAT(9, 8, 1).MustBuild()
	parts, err := Partition(MethodVertexBlock, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []string{Layout1D, Layout2D} {
		var res [2]SpMVResult
		for i, async := range []bool{false, true} {
			r, err := RunSpMVCfg(g, parts, SpMVConfig{
				Ranks: 4, Layout: layout, Iterations: 8, AsyncExchange: async,
			})
			if err != nil {
				t.Fatalf("%s async=%v: %v", layout, async, err)
			}
			res[i] = r
		}
		if res[0].Checksum != res[1].Checksum {
			t.Errorf("%s: checksums diverge: sync %v async %v", layout, res[0].Checksum, res[1].Checksum)
		}
		if res[1].CommVolume >= res[0].CommVolume {
			t.Errorf("%s: async volume %d not below sync %d", layout, res[1].CommVolume, res[0].CommVolume)
		}
	}
}

// Analytics results must be mode-independent through the public facade.
func TestRunAnalyticsAsyncMatchesSync(t *testing.T) {
	const nodes = 4
	gen := RandER(512, 2048, 3)
	g := gen.MustBuild()
	parts, err := Partition(MethodVertexBlock, g, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	var runs [2][]AnalyticResult
	for i, async := range []bool{false, true} {
		runs[i], err = RunAnalyticsCfg(gen, parts, AnalyticsConfig{
			Ranks: nodes, HCSources: 2, AsyncExchange: async,
		})
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
	}
	for i := range runs[0] {
		s, a := runs[0][i], runs[1][i]
		if s.Name != a.Name || s.Value != a.Value || s.Iterations != a.Iterations {
			t.Errorf("%s: sync (%v, %d iters) vs async (%v, %d iters)",
				s.Name, s.Value, s.Iterations, a.Value, a.Iterations)
		}
	}
}

func TestRunSpMVUnknownLayout(t *testing.T) {
	g := RandER(64, 128, 1).MustBuild()
	parts, _ := Partition(MethodVertexBlock, g, 2, 1)
	if _, err := RunSpMV(g, parts, 2, "3d", 1); err == nil {
		t.Fatal("expected unknown-layout error")
	}
}

func TestXtraPuLPMoreRanksThanVertices(t *testing.T) {
	// Some ranks own zero vertices; the collective protocol must
	// survive empty shards.
	g := RandER(6, 12, 1).MustBuild()
	parts, _, err := XtraPuLP(g, Config{Parts: 2, Ranks: 8, RandomDist: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(parts)) != g.N {
		t.Fatalf("%d assignments", len(parts))
	}
	for _, pt := range parts {
		if pt < 0 || pt >= 2 {
			t.Fatalf("part %d out of range", pt)
		}
	}
}

func TestXtraPuLPPartsExceedVertices(t *testing.T) {
	// p > n collapses to p = n inside the core.
	g := RandER(4, 8, 1).MustBuild()
	parts, _, err := XtraPuLP(g, Config{Parts: 16, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range parts {
		if pt < 0 || pt >= 4 {
			t.Fatalf("part %d out of range after clamping", pt)
		}
	}
}

func TestXtraPuLPSeedsChangeOutcome(t *testing.T) {
	g := RMAT(10, 8, 1).MustBuild()
	a, _, _ := XtraPuLP(g, Config{Parts: 8, Ranks: 2, Seed: 1})
	b, _, _ := XtraPuLP(g, Config{Parts: 8, Ranks: 2, Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical partitions")
	}
}
