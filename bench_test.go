// Benchmarks regenerating every table and figure of the paper (scaled
// workloads; see DESIGN.md §4 for the experiment index) plus ablation
// benches for the design choices XtraPuLP introduces: the
// initialization strategy, the dynamic multiplier, and the vertex
// distribution.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"io"
	"testing"

	"repro"
	"repro/internal/harness"
)

// benchExperiment runs one harness experiment per iteration at Small
// scale with output discarded.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := harness.Config{W: io.Discard, Scale: harness.Small, Seed: 1}
		if err := harness.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure in the paper's evaluation.

func BenchmarkTable1Stats(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkFig1StrongScaling(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2WeakScaling(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkTrillionEdgeRuns(b *testing.B)    { benchExperiment(b, "trillion") }
func BenchmarkTable2Partitioners(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig3Speedup(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4Quality(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5QualityVsRanks(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6SingleObjective(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7MultiplierSweep(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8Analytics(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkTable3SpMV(b *testing.B)          { benchExperiment(b, "table3") }

// Core partitioner micro-benchmarks over the main graph classes.

func benchXtraPuLP(b *testing.B, g *repro.Generator, cfg repro.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.XtraPuLPGen(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXtraPuLPRMAT(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(14, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

func BenchmarkXtraPuLPRandER(b *testing.B) {
	benchXtraPuLP(b, repro.RandER(1<<14, 1<<17, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

func BenchmarkXtraPuLPRandHD(b *testing.B) {
	benchXtraPuLP(b, repro.RandHD(1<<14, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

func BenchmarkXtraPuLPMesh(b *testing.B) {
	benchXtraPuLP(b, repro.Mesh3D(25, 25, 25),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

// Sync-vs-async boundary exchange: the same partitioning runs with the
// asynchronous delta-only exchange, so the communication-path delta
// shows up directly against the BenchmarkXtraPuLP* baselines above.

func BenchmarkXtraPuLPRMATAsyncDelta(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(14, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, AsyncExchange: true})
}

func BenchmarkXtraPuLPRandERAsyncDelta(b *testing.B) {
	benchXtraPuLP(b, repro.RandER(1<<14, 1<<17, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, AsyncExchange: true})
}

func BenchmarkXtraPuLPMeshAsyncDelta(b *testing.B) {
	benchXtraPuLP(b, repro.Mesh3D(25, 25, 25),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, AsyncExchange: true})
}

// BenchmarkXtraPuLP8Ranks* compares full end-to-end partitioning runs
// (graph distribution, initialization, and all stages included) under
// each exchange mode at a higher rank count, where boundary traffic is
// a larger share of the work than in the 4-rank benches above.

func benchExchangeMode(b *testing.B, async bool) {
	b.Helper()
	g := repro.RMAT(13, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.XtraPuLPGen(g, repro.Config{
			Parts: 16, Ranks: 8, RandomDist: true, AsyncExchange: async,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXtraPuLP8RanksSync(b *testing.B)       { benchExchangeMode(b, false) }
func BenchmarkXtraPuLP8RanksAsyncDelta(b *testing.B) { benchExchangeMode(b, true) }

// Ablations: design choices called out in DESIGN.md.

// BenchmarkAblationInitBFS/Random/Block compare the paper's hybrid
// initialization (§III.B) against the random and block alternatives.
func BenchmarkAblationInitBFS(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, Init: 0})
}

func BenchmarkAblationInitRandom(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, Init: 1})
}

func BenchmarkAblationInitBlock(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, Init: 2})
}

// BenchmarkAblationMultiplier* compare the default damping schedule
// (X=1, Y=0.25) against no damping (X=Y=0) and heavy damping (X=Y=4).
func BenchmarkAblationMultiplierDefault(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

func BenchmarkAblationMultiplierOff(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, OverrideXY: true})
}

func BenchmarkAblationMultiplierHeavy(b *testing.B) {
	benchXtraPuLP(b, repro.RMAT(13, 16, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true, X: 4, Y: 4})
}

// BenchmarkAblationDist* compare the random (hashed) vertex
// distribution the paper recommends for irregular graphs against the
// block distribution.
func BenchmarkAblationDistRandom(b *testing.B) {
	benchXtraPuLP(b, repro.PowerLaw(1<<13, 1<<16, 2.1, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: true})
}

func BenchmarkAblationDistBlock(b *testing.B) {
	benchXtraPuLP(b, repro.PowerLaw(1<<13, 1<<16, 2.1, 1),
		repro.Config{Parts: 16, Ranks: 4, RandomDist: false})
}

// Baseline partitioners on the same input for direct comparison.

func benchMethod(b *testing.B, method string) {
	b.Helper()
	g := repro.RMAT(14, 16, 1).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Partition(method, g, 16, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinePuLP(b *testing.B)      { benchMethod(b, repro.MethodPuLP) }
func BenchmarkBaselineMetisLike(b *testing.B) { benchMethod(b, repro.MethodMetisLike) }
func BenchmarkBaselineKahipLike(b *testing.B) { benchMethod(b, repro.MethodKahipLike) }
func BenchmarkBaselineRandom(b *testing.B)    { benchMethod(b, repro.MethodRandom) }
