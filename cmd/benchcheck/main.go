// Command benchcheck validates a BENCH_exchange.json benchmark
// artifact: it must parse and carry every measurement the trajectory
// tracking depends on (the rank substrate the run was measured over —
// proc or socket — so points from different transports are never
// mixed, Allreduce counts on all paths, steady-state
// allocations and the observed pipeline depth on the analytics path,
// the configured pipe depth with the HC-wave measurements — wave
// count, HC Allreduces strictly below the sequential loop's, wall time
// per source — and the SpMV norm-piggyback flag). CI runs it between
// generating and uploading the artifact, so a truncated or
// schema-drifted file fails the build instead of silently poisoning
// the recorded trajectory.
//
// Usage:
//
//	benchcheck BENCH_exchange.json
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_exchange.json")
		os.Exit(2)
	}
	if err := harness.ValidateExchangeJSON(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: schema OK\n", os.Args[1])
}
