// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|full] [-seed N] <experiment>...
//	experiments -list
//	experiments all
//
// Each experiment prints the rows or series of the corresponding table
// or figure in the paper's evaluation (§V); see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// -transport selects the rank substrate. The default "proc" runs each
// experiment's simulated in-process worlds. "env" makes this process
// one rank of an externally launched socket world (it reads the
// REPRO_* rendezvous environment; launch with cmd/reprorun) and runs
// the exchange experiment's partitioning path collectively over it,
// writing a partition-only BENCH_exchange_socket.json from rank 0 with
// -json — the socket-substrate benchmark datapoint:
//
//	reprorun -n 4 -- experiments -transport env -json exchange
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro"
	"repro/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment sizing: small or full")
	seedFlag := flag.Uint64("seed", 1, "random seed for all generators and partitioners")
	listFlag := flag.Bool("list", false, "list experiment names and exit")
	jsonFlag := flag.Bool("json", false, "also write machine-readable results to BENCH_<experiment>.json (experiments that support it)")
	termEpochFlag := flag.Int("term-epoch", 0, "async analytics termination epoch on incomplete rank neighborhoods: exact Allreduce every k rounds (0 = every round)")
	pipeDepthFlag := flag.Int("pipe-depth", 0, "async exchange pipeline depth: rounds in flight per exchanger (0 = default 2; depth/2 concurrent HC waves)")
	transportFlag := flag.String("transport", "proc", "rank substrate: proc (in-process) | env (one rank of a socket world, REPRO_* env; exchange only)")
	threadsFlag := flag.Int("threads", 1, "intra-rank threads for analytics/SpMV sweeps (0 = one per core); with -transport env, the world's thread budget")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale small|full] [-seed N] [-json] [-term-epoch K] [-pipe-depth D] [-threads T] <experiment>...|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, n := range harness.Names {
			fmt.Println(n)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = harness.Names
	}
	switch *transportFlag {
	case "proc":
	case "env":
		runEnvWorld(names, scale, *seedFlag, *jsonFlag, *pipeDepthFlag, *threadsFlag)
		return
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown transport %q (proc|env)\n", *transportFlag)
		os.Exit(2)
	}
	for _, name := range names {
		fmt.Printf("=== %s (scale=%s seed=%d) ===\n", name, *scaleFlag, *seedFlag)
		start := time.Now()
		cfg := harness.Config{W: os.Stdout, Scale: scale, Seed: *seedFlag, TermEpoch: *termEpochFlag, PipeDepth: *pipeDepthFlag, Threads: *threadsFlag}
		if *jsonFlag {
			cfg.JSONPath = fmt.Sprintf("BENCH_%s.json", name)
		}
		if err := harness.Run(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}

// runEnvWorld runs this process as one rank of an externally launched
// socket world (cmd/reprorun sets the rendezvous environment). Only
// the exchange experiment has a socket form — its partitioning path
// is collective over an external communicator (harness.ExchangeSocket)
// — so any other name is rejected before the rendezvous, while every
// rank can still agree on the verdict. Rank 0 prints the table and,
// with -json, writes the partition-only socket artifact.
func runEnvWorld(names []string, scale harness.Scale, seed uint64, jsonOut bool, pipeDepth, threads int) {
	for _, name := range names {
		if name != "exchange" {
			fmt.Fprintf(os.Stderr, "experiments: -transport env supports only the exchange experiment (got %q)\n", name)
			os.Exit(2)
		}
	}
	// threads <= 0 lets SocketComm consult REPRO_THREADS, so a launcher
	// can set one budget for every worker it spawns.
	c, closeComm, err := repro.SocketComm(threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	cfg := harness.Config{W: io.Discard, Scale: scale, Seed: seed, PipeDepth: pipeDepth, Threads: threads}
	if c.Rank() == 0 {
		cfg.W = os.Stdout
		fmt.Printf("=== exchange (scale=%s seed=%d transport=socket ranks=%d) ===\n", scale, seed, c.Size())
		if jsonOut {
			cfg.JSONPath = "BENCH_exchange_socket.json"
		}
	}
	start := time.Now()
	if err := harness.ExchangeSocket(c, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "exchange: %v\n", err)
		os.Exit(1)
	}
	if c.Rank() == 0 {
		fmt.Printf("(exchange took %.1fs)\n\n", time.Since(start).Seconds())
	}
	//lint:ignore errcheck the run is complete; a teardown error cannot change the result
	closeComm()
}
