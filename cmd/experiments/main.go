// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale small|full] [-seed N] <experiment>...
//	experiments -list
//	experiments all
//
// Each experiment prints the rows or series of the corresponding table
// or figure in the paper's evaluation (§V); see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment sizing: small or full")
	seedFlag := flag.Uint64("seed", 1, "random seed for all generators and partitioners")
	listFlag := flag.Bool("list", false, "list experiment names and exit")
	jsonFlag := flag.Bool("json", false, "also write machine-readable results to BENCH_<experiment>.json (experiments that support it)")
	termEpochFlag := flag.Int("term-epoch", 0, "async analytics termination epoch on incomplete rank neighborhoods: exact Allreduce every k rounds (0 = every round)")
	pipeDepthFlag := flag.Int("pipe-depth", 0, "async exchange pipeline depth: rounds in flight per exchanger (0 = default 2; depth/2 concurrent HC waves)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale small|full] [-seed N] [-json] [-term-epoch K] [-pipe-depth D] <experiment>...|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", harness.Names)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, n := range harness.Names {
			fmt.Println(n)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := harness.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = harness.Names
	}
	for _, name := range names {
		fmt.Printf("=== %s (scale=%s seed=%d) ===\n", name, *scaleFlag, *seedFlag)
		start := time.Now()
		cfg := harness.Config{W: os.Stdout, Scale: scale, Seed: *seedFlag, TermEpoch: *termEpochFlag, PipeDepth: *pipeDepthFlag}
		if *jsonFlag {
			cfg.JSONPath = fmt.Sprintf("BENCH_%s.json", name)
		}
		if err := harness.Run(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}
