// Command graphgen writes synthetic graphs from the paper's generator
// families to edge-list files.
//
// Usage:
//
//	graphgen -gen rmat -scale 20 -deg 16 -o rmat20.bin
//	graphgen -gen hd -scale 18 -deg 32 -seed 7 -o hd.txt
//
// The output format is chosen by extension: .bin is the compact binary
// format, anything else the text format.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	genName := flag.String("gen", "rmat", "family: rmat|er|hd|mesh|ws|powerlaw")
	scale := flag.Int("scale", 16, "log2 vertex count")
	deg := flag.Int64("deg", 16, "average degree")
	gamma := flag.Float64("gamma", 2.2, "power-law exponent (powerlaw)")
	beta := flag.Float64("beta", 0.1, "rewire probability (ws)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (.bin binary, else text)")
	stats := flag.Bool("stats", false, "also print Table-I statistics")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o FILE is required")
		os.Exit(2)
	}
	n := int64(1) << uint(*scale)
	var gen *repro.Generator
	switch *genName {
	case "rmat":
		gen = repro.RMAT(*scale, *deg, *seed)
	case "er":
		gen = repro.RandER(n, n**deg/2, *seed)
	case "hd":
		gen = repro.RandHD(n, *deg, *seed)
	case "mesh":
		side := int64(1)
		for side*side*side < n {
			side++
		}
		gen = repro.Mesh3D(side, side, side)
	case "ws":
		gen = repro.SmallWorld(n, *deg, *beta, *seed)
	case "powerlaw":
		gen = repro.PowerLaw(n, n**deg/2, *gamma, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown family %q\n", *genName)
		os.Exit(2)
	}
	g, err := gen.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := repro.SaveGraph(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: n=%d m=%d -> %s\n", gen.Name, g.N, g.NumEdges(), *out)
	if *stats {
		s := g.ComputeStats(10, *seed)
		fmt.Printf("davg=%.1f dmax=%d diameter~%d components=%d largest=%d\n",
			s.AvgDeg, s.MaxDeg, s.DiamEst, s.NumComps, s.LargestCC)
	}
}
