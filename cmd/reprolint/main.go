// Command reprolint is the project's multichecker: it runs every
// analyzer in internal/lint over the packages matching its arguments
// (default ./...) and exits nonzero if any finding survives the
// //lint:ignore directives. CI runs it before the tests; run it
// locally with scripts/lint.sh. See docs/INVARIANTS.md for the
// contracts it enforces.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, lint.All) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
