// Command reprolint is the project's multichecker: it runs every
// analyzer in internal/lint over the packages matching its arguments
// (default ./...) and exits nonzero if any finding survives the
// //lint:ignore directives. CI runs it before the tests; run it
// locally with scripts/lint.sh. See docs/INVARIANTS.md for the
// contracts it enforces.
//
// Flags:
//
//	-json     emit findings as a JSON array on stdout (for CI
//	          artifacts and tooling) instead of compiler-style lines
//	-ignores  audit mode: list every //lint:ignore directive in the
//	          tree instead of running the analyzers; stale directives
//	          (naming analyzers that do not exist) and bare ones are
//	          errors, so suppressions cannot outlive their checks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	ignores := flag.Bool("ignores", false, "audit //lint:ignore directives instead of running analyzers")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}

	if *ignores {
		os.Exit(auditIgnores(pkgs))
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.RunAnalyzers(pkg, lint.All)...)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// auditIgnores lists every suppression in the loaded packages and
// returns the exit code: 1 if any directive is bare or names an
// analyzer the suite does not have.
func auditIgnores(pkgs []*lint.Package) int {
	stale := 0
	total := 0
	for _, pkg := range pkgs {
		for _, a := range lint.AuditIgnores(pkg, lint.All) {
			total++
			switch {
			case a.Bare:
				stale++
				fmt.Printf("%s: BARE — missing analyzer name and reason\n", a.Pos)
			case len(a.Unknown) > 0:
				stale++
				fmt.Printf("%s: STALE [%s] — no analyzer named %s in the suite (%s)\n",
					a.Pos, strings.Join(a.Analyzers, ","), strings.Join(a.Unknown, ", "), a.Reason)
			default:
				fmt.Printf("%s: [%s] %s\n", a.Pos, strings.Join(a.Analyzers, ","), a.Reason)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "reprolint: %d ignore directive(s), %d stale/bare\n", total, stale)
	if stale > 0 {
		return 1
	}
	return 0
}
