// Command reprorun launches a multi-process rank world: it spawns one
// worker process per rank with the REPRO_* environment the socket
// transport's rendezvous reads (mpi.SocketConfigFromEnv + DialSocket),
// relays each worker's output with a [rank N] prefix, and exits with
// the first failing worker's status.
//
// Usage:
//
//	reprorun -n 4 -- xtrapulp -transport env -gen rmat -scale 12 -parts 8
//	reprorun -n 2 -net tcp -- mytool ...
//
// By default ranks rendezvous over Unix sockets in a fresh temporary
// directory. With -net tcp the launcher reserves loopback ports by
// binding and releasing them, so a concurrently starting process can
// steal one in rare cases; pass -addrs to pin explicit addresses.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mpi"
)

func main() {
	n := flag.Int("n", 2, "number of rank processes")
	network := flag.String("net", "unix", "rendezvous network: unix|tcp")
	addrs := flag.String("addrs", "", "comma-separated per-rank listen addresses (default: auto)")
	timeout := flag.Duration("timeout", 60*time.Second, "rendezvous timeout passed to workers")
	flag.Parse()
	argv := flag.Args()
	if *n < 1 || len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "usage: reprorun -n N [-net unix|tcp] [-addrs a0,a1,...] -- command args...")
		os.Exit(2)
	}

	addrList, cleanup, err := rankAddrs(*network, *addrs, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprorun:", err)
		os.Exit(1)
	}
	defer cleanup()

	var wg sync.WaitGroup
	status := make([]error, *n)
	cmds := make([]*exec.Cmd, *n)
	for r := 0; r < *n; r++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(),
			mpi.EnvRank+"="+strconv.Itoa(r),
			mpi.EnvSize+"="+strconv.Itoa(*n),
			mpi.EnvNet+"="+*network,
			mpi.EnvAddrs+"="+strings.Join(addrList, ","),
			mpi.EnvTimeout+"="+timeout.String(),
		)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprorun:", err)
			os.Exit(1)
		}
		cmd.Stderr = cmd.Stdout // interleave per rank, prefix once
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "reprorun: rank %d: %v\n", r, err)
			os.Exit(1)
		}
		cmds[r] = cmd
		wg.Add(1)
		go func(r int, out io.Reader) {
			defer wg.Done()
			relay(r, out)
		}(r, stdout)
	}
	// Drain the output relays before Wait: Wait tears down the pipes,
	// and a worker's exit already closes the write end, so the relays
	// finish on their own.
	wg.Wait()
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			status[r] = err
		}
	}
	for r, err := range status {
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprorun: rank %d: %v\n", r, err)
			if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
				os.Exit(ee.ExitCode())
			}
			os.Exit(1)
		}
	}
}

// rankAddrs resolves the per-rank listen addresses: explicit -addrs,
// fresh Unix socket paths in a temporary directory, or reserved
// loopback TCP ports.
func rankAddrs(network, explicit string, n int) ([]string, func(), error) {
	if explicit != "" {
		list := strings.Split(explicit, ",")
		if len(list) != n {
			return nil, nil, fmt.Errorf("%d addresses for %d ranks", len(list), n)
		}
		return list, func() {}, nil
	}
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "reprorun-")
		if err != nil {
			return nil, nil, err
		}
		list := make([]string, n)
		for r := range list {
			list[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
		}
		cleanup := func() {
			//lint:ignore errcheck best-effort removal of a session-scoped temp dir at exit
			os.RemoveAll(dir)
		}
		return list, cleanup, nil
	case "tcp":
		list := make([]string, n)
		for r := range list {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			list[r] = ln.Addr().String()
			ln.Close()
		}
		return list, func() {}, nil
	default:
		return nil, nil, fmt.Errorf("unknown network %q (unix|tcp)", network)
	}
}

// relay copies one worker's combined output line by line with a rank
// prefix.
func relay(rank int, out io.Reader) {
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fmt.Printf("[rank %d] %s\n", rank, sc.Text())
	}
}
