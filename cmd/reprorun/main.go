// Command reprorun launches a multi-process rank world: it spawns one
// worker process per rank with the REPRO_* environment the socket
// transport's rendezvous reads (mpi.SocketConfigFromEnv + DialSocket),
// relays each worker's output with a [rank N] prefix, and supervises
// the world as a unit. When any worker exits non-zero the launcher
// tears the whole world down — ranks are stateful mid-run, so restart
// is world-granular — and, with -restarts N, relaunches it up to N
// times with the same command line and therefore the same seeds:
// a successful retry produces bit-identical results. The final exit
// status is 0 on success (a stderr note distinguishes "succeeded after
// retry"), or the first failing worker's exit code once the restart
// budget is exhausted, with the culprit rank named on stderr.
//
// Usage:
//
//	reprorun -n 4 -- xtrapulp -transport env -gen rmat -scale 12 -parts 8
//	reprorun -n 4 -restarts 2 -- xtrapulp -transport env ...
//	reprorun -n 2 -net tcp -- mytool ...
//
// By default ranks rendezvous over Unix sockets in a fresh temporary
// directory (fresh per attempt, so a crashed world's stale socket
// files cannot shadow the relaunch). With -net tcp the launcher
// reserves loopback ports by binding and releasing them, so a
// concurrently starting process can steal one in rare cases; pass
// -addrs to pin explicit addresses.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/mpi"
)

// launchSpec is everything supervise needs to run one world; tests
// build it directly.
type launchSpec struct {
	n        int
	network  string
	explicit string   // -addrs override; empty means auto-allocate per attempt
	restarts int      // world relaunch budget after a failure
	env      []string // extra environment appended to every worker
	argv     []string
	stdout   io.Writer // destination of the [rank N]-prefixed relay
	stderr   io.Writer // supervisor diagnostics
}

func main() {
	n := flag.Int("n", 2, "number of rank processes")
	network := flag.String("net", "unix", "rendezvous network: unix|tcp")
	addrs := flag.String("addrs", "", "comma-separated per-rank listen addresses (default: auto)")
	timeout := flag.Duration("timeout", 60*time.Second, "rendezvous timeout passed to workers")
	restarts := flag.Int("restarts", 0, "relaunch the whole world up to this many times after a worker failure")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "liveness heartbeat threshold passed to workers (0 disables the watchdog)")
	collTimeout := flag.Duration("coll-timeout", 0, "collective watchdog bound passed to workers (0 disables)")
	retryMax := flag.Int("retry-max", 0, "rendezvous connection attempts per peer (0 = bounded only by the timeout)")
	retryBase := flag.Duration("retry-base", 0, "initial rendezvous backoff delay (0 = transport default)")
	flag.Parse()
	argv := flag.Args()
	if *n < 1 || len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "usage: reprorun -n N [-restarts R] [-net unix|tcp] [-addrs a0,a1,...] -- command args...")
		os.Exit(2)
	}
	if *timeout <= 0 || *restarts < 0 || *heartbeat < 0 || *collTimeout < 0 || *retryMax < 0 || *retryBase < 0 {
		fmt.Fprintln(os.Stderr, "reprorun: -timeout must be positive; -restarts, -heartbeat, -coll-timeout, -retry-max, -retry-base must be non-negative")
		os.Exit(2)
	}

	spec := launchSpec{
		n:        *n,
		network:  *network,
		explicit: *addrs,
		restarts: *restarts,
		env: []string{
			mpi.EnvTimeout + "=" + timeout.String(),
			mpi.EnvHeartbeat + "=" + heartbeat.String(),
			mpi.EnvCollTimeout + "=" + collTimeout.String(),
			mpi.EnvRetryMax + "=" + strconv.Itoa(*retryMax),
			mpi.EnvRetryBase + "=" + retryBase.String(),
		},
		argv:   argv,
		stdout: os.Stdout,
		stderr: os.Stderr,
	}
	os.Exit(supervise(spec))
}

// supervise runs the world until it succeeds or the restart budget is
// exhausted, and returns the launcher's exit code: 0 on success, the
// first failing worker's code otherwise. Every attempt gets fresh
// auto-allocated addresses so a crashed attempt's stale sockets cannot
// interfere; the command line (and so every seed) is identical across
// attempts, which is what makes a successful retry bit-identical.
func supervise(spec launchSpec) int {
	for attempt := 1; ; attempt++ {
		addrList, cleanup, err := rankAddrs(spec.network, spec.explicit, spec.n)
		if err != nil {
			fmt.Fprintln(spec.stderr, "reprorun:", err)
			return 1
		}
		rank, code, werr := runWorld(spec, addrList)
		cleanup()
		if rank < 0 {
			if attempt > 1 {
				fmt.Fprintf(spec.stderr, "reprorun: world succeeded on attempt %d (%d restart(s) used)\n", attempt, attempt-1)
			}
			return 0
		}
		fmt.Fprintf(spec.stderr, "reprorun: attempt %d/%d: rank %d failed: %v (exit code %d)\n",
			attempt, spec.restarts+1, rank, werr, code)
		if attempt > spec.restarts {
			fmt.Fprintf(spec.stderr, "reprorun: restart budget exhausted; exiting with rank %d's code %d\n", rank, code)
			return code
		}
		fmt.Fprintf(spec.stderr, "reprorun: world torn down; relaunching with the same seeds\n")
	}
}

// runWorld spawns and waits one attempt of the world. On the first
// non-zero worker exit it kills every other worker (world-granular
// teardown) and keeps draining until all have exited. It returns the
// first failing rank with its exit code and error, or failedRank == -1
// on success.
func runWorld(spec launchSpec, addrList []string) (failedRank, exitCode int, firstErr error) {
	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, spec.n)
	cmds := make([]*exec.Cmd, spec.n)
	// Workers' relays run concurrently; one mutex keeps their
	// line-at-a-time writes from interleaving mid-line.
	var outMu sync.Mutex
	for r := 0; r < spec.n; r++ {
		cmd := exec.Command(spec.argv[0], spec.argv[1:]...)
		cmd.Env = append(os.Environ(),
			mpi.EnvRank+"="+strconv.Itoa(r),
			mpi.EnvSize+"="+strconv.Itoa(spec.n),
			mpi.EnvNet+"="+spec.network,
			mpi.EnvAddrs+"="+strings.Join(addrList, ","),
		)
		cmd.Env = append(cmd.Env, spec.env...)
		// Each worker leads its own process group so teardown can kill
		// the whole group: a worker that forked children (a shell, a
		// wrapper script) would otherwise leave grandchildren holding
		// the output pipe — and the supervisor blocked on the relay —
		// for as long as they please.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			cmd.Stderr = cmd.Stdout // interleave per rank, prefix once
			err = cmd.Start()
		}
		if err != nil {
			for _, c := range cmds[:r] {
				killGroup(c)
			}
			for i := 0; i < r; i++ {
				<-exits
			}
			return r, 1, err
		}
		cmds[r] = cmd
		go func(r int, cmd *exec.Cmd, out io.Reader) {
			// Drain the relay before Wait: Wait tears down the pipe, and
			// the worker's exit (or kill) closes the write end, so the
			// relay finishes on its own.
			relay(&outMu, spec.stdout, r, out)
			exits <- exit{rank: r, err: cmd.Wait()}
		}(r, cmd, stdout)
	}
	failedRank = -1
	for received := 0; received < spec.n; received++ {
		e := <-exits
		if e.err == nil || failedRank >= 0 {
			continue
		}
		failedRank, firstErr, exitCode = e.rank, e.err, 1
		if ee, ok := e.err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
			exitCode = ee.ExitCode()
		}
		for i, c := range cmds {
			if i != e.rank {
				killGroup(c)
			}
		}
	}
	return failedRank, exitCode, firstErr
}

// killGroup SIGKILLs a worker's whole process group (see the Setpgid
// note in runWorld).
func killGroup(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	//lint:ignore errcheck world-granular teardown: the group may already be gone
	syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
}

// rankAddrs resolves the per-rank listen addresses: explicit -addrs,
// fresh Unix socket paths in a temporary directory, or reserved
// loopback TCP ports.
func rankAddrs(network, explicit string, n int) ([]string, func(), error) {
	if explicit != "" {
		list := strings.Split(explicit, ",")
		if len(list) != n {
			return nil, nil, fmt.Errorf("%d addresses for %d ranks", len(list), n)
		}
		return list, func() {}, nil
	}
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "reprorun-")
		if err != nil {
			return nil, nil, err
		}
		list := make([]string, n)
		for r := range list {
			list[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
		}
		cleanup := func() {
			//lint:ignore errcheck best-effort removal of a session-scoped temp dir at exit
			os.RemoveAll(dir)
		}
		return list, cleanup, nil
	case "tcp":
		list := make([]string, n)
		for r := range list {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			list[r] = ln.Addr().String()
			ln.Close()
		}
		return list, func() {}, nil
	default:
		return nil, nil, fmt.Errorf("unknown network %q (unix|tcp)", network)
	}
}

// relay copies one worker's combined output line by line with a rank
// prefix, serialized by mu across the world's relays.
func relay(mu *sync.Mutex, w io.Writer, rank int, out io.Reader) {
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		mu.Lock()
		fmt.Fprintf(w, "[rank %d] %s\n", rank, sc.Text())
		mu.Unlock()
	}
}
