package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/mpi"
	"repro/internal/mpitest"
)

// TestMain doubles as the worker executable: the supervisor tests
// re-exec this test binary with REPRORUN_TEST_WORKER=1 and the REPRO_*
// rendezvous environment, turning it into one rank of a socket world.
func TestMain(m *testing.M) {
	if os.Getenv("REPRORUN_TEST_WORKER") == "1" {
		os.Exit(testWorkerMain())
	}
	os.Exit(m.Run())
}

// testWorkerMain is one rank of the supervised-relaunch test: it
// rendezvouses from the environment, optionally dies right after the
// rendezvous (consuming a marker file, so only the first attempt is
// disturbed), otherwise runs the conformance engine workload and — at
// rank 0 — writes the gathered partition.
func testWorkerMain() int {
	cfg, err := mpi.SocketConfigFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker env:", err)
		return 1
	}
	tr, err := mpi.DialSocket(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker rendezvous:", err)
		return 1
	}
	if marker := os.Getenv("REPRORUN_TEST_DIE"); marker != "" && cfg.Rank == 2 {
		if _, err := os.Stat(marker); err == nil {
			// The marker must actually be consumed, or every relaunch
			// re-injects the fault and the test loops to budget
			// exhaustion.
			if err := os.Remove(marker); err != nil {
				fmt.Fprintln(os.Stderr, "worker: consuming death marker:", err)
				return 1
			}
			fmt.Fprintln(os.Stderr, "worker: injected post-rendezvous death")
			return 3 // no Close: peers must see EOF or the watchdog, never a hang
		}
	}
	defer tr.Close()
	c := mpi.NewComm(tr, 1)
	parts, _, err := repro.XtraPuLPComm(c, mpitest.EngineGenerator(), mpitest.EngineConfig(true))
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker partition:", err)
		return 1
	}
	if cfg.Rank == 0 {
		var sb strings.Builder
		for _, p := range parts {
			fmt.Fprintf(&sb, "%d\n", p)
		}
		if err := os.WriteFile(os.Getenv("REPRORUN_TEST_OUT"), []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "worker output:", err)
			return 1
		}
	}
	return 0
}

// TestSuperviseRelaunchBitIdentical is the acceptance scenario: a
// 4-rank world whose rank 2 dies right after rendezvous on the first
// attempt must be torn down as a unit, relaunched by the supervisor,
// and produce a partition bit-identical to the undisturbed in-process
// reference at the same seeds.
func TestSuperviseRelaunchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	ref := mpitest.EngineReference(t)
	dir := t.TempDir()
	marker := filepath.Join(dir, "die-once")
	if err := os.WriteFile(marker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "parts.txt")
	var relayBuf, errBuf bytes.Buffer
	spec := launchSpec{
		n:        4,
		network:  "unix",
		restarts: 2,
		env: []string{
			"REPRORUN_TEST_WORKER=1",
			"REPRORUN_TEST_OUT=" + out,
			"REPRORUN_TEST_DIE=" + marker,
			mpi.EnvTimeout + "=60s",
			mpi.EnvHeartbeat + "=250ms",
		},
		argv:   []string{exe},
		stdout: &relayBuf,
		stderr: &errBuf,
	}
	if code := supervise(spec); code != 0 {
		t.Fatalf("supervise exit code %d\nrelay:\n%s\nsupervisor:\n%s", code, relayBuf.String(), errBuf.String())
	}
	log := errBuf.String()
	if !strings.Contains(log, "attempt 1/3") || !strings.Contains(log, "succeeded on attempt 2") {
		t.Fatalf("supervisor log does not show a failed first attempt and a successful relaunch:\n%s", log)
	}
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Fatalf("death marker not consumed (stat err %v): the fault was never injected", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("relaunched world wrote no partition: %v\nsupervisor:\n%s", err, log)
	}
	fields := strings.Fields(string(raw))
	if len(fields) != len(ref) {
		t.Fatalf("%d parts, want %d", len(fields), len(ref))
	}
	for v, f := range fields {
		p, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("vertex %d: %v", v, err)
		}
		if int32(p) != ref[v] {
			t.Fatalf("relaunched partition diverges from undisturbed reference at vertex %d: %d != %d", v, p, ref[v])
		}
	}
}

// TestSuperviseExitCodePropagation pins the launcher's failure
// reporting: once the restart budget is exhausted the exit status is
// the first failing worker's own code and stderr names the culprit
// rank on every attempt.
func TestSuperviseExitCodePropagation(t *testing.T) {
	var errBuf bytes.Buffer
	spec := launchSpec{
		n:        2,
		network:  "unix",
		restarts: 1,
		argv:     []string{"/bin/sh", "-c", `if [ "$REPRO_RANK" = "1" ]; then exit 7; fi; sleep 60`},
		stdout:   io.Discard,
		stderr:   &errBuf,
	}
	if code := supervise(spec); code != 7 {
		t.Fatalf("supervise exit code %d, want the failing worker's 7\n%s", code, errBuf.String())
	}
	log := errBuf.String()
	for _, want := range []string{"rank 1 failed", "exit code 7", "attempt 1/2", "attempt 2/2", "restart budget exhausted"} {
		if !strings.Contains(log, want) {
			t.Fatalf("supervisor log missing %q:\n%s", want, log)
		}
	}
}

// TestSuperviseSuccessNoRestart checks the quiet path: a clean world
// exits 0 with no supervisor chatter and the rank-prefixed relay.
func TestSuperviseSuccessNoRestart(t *testing.T) {
	var relayBuf, errBuf bytes.Buffer
	spec := launchSpec{
		n:        2,
		network:  "unix",
		restarts: 3,
		argv:     []string{"/bin/sh", "-c", `echo "hello from $REPRO_RANK"`},
		stdout:   &relayBuf,
		stderr:   &errBuf,
	}
	if code := supervise(spec); code != 0 {
		t.Fatalf("supervise exit code %d\n%s", code, errBuf.String())
	}
	if errBuf.Len() != 0 {
		t.Fatalf("clean run produced supervisor chatter:\n%s", errBuf.String())
	}
	for _, want := range []string{"[rank 0] hello from 0", "[rank 1] hello from 1"} {
		if !strings.Contains(relayBuf.String(), want) {
			t.Fatalf("relay missing %q:\n%s", want, relayBuf.String())
		}
	}
}
