// Command xtrapulp partitions a graph with the XtraPuLP distributed
// partitioner (simulated MPI ranks) or any baseline method, reports
// the paper's quality metrics, and optionally writes the assignment.
//
// Usage:
//
//	xtrapulp -graph web.txt -parts 16 -ranks 4 [-method xtrapulp] [-out parts.txt]
//	xtrapulp -gen rmat -scale 18 -deg 16 -parts 16 -ranks 8
//
// Graph files are edge lists (text "u v" lines, or .bin binary); the
// -gen families mirror the paper's synthetic inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/partition"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file to partition (.txt or .bin)")
	genName := flag.String("gen", "", "synthetic family: rmat|er|hd|mesh|ws|powerlaw")
	scale := flag.Int("scale", 16, "log2 vertex count for -gen")
	deg := flag.Int64("deg", 16, "average degree for -gen")
	parts := flag.Int("parts", 16, "number of parts")
	ranks := flag.Int("ranks", 4, "simulated MPI ranks")
	threads := flag.Int("threads", 1, "threads per rank")
	method := flag.String("method", repro.MethodXtraPuLP, fmt.Sprintf("partitioner: %v", repro.Methods()))
	seed := flag.Uint64("seed", 1, "random seed")
	single := flag.Bool("single", false, "single-constraint single-objective mode")
	async := flag.Bool("async", false, "asynchronous delta-only boundary exchange")
	sizeEpoch := flag.Int("size-epoch", 0, "async mode: exact size-estimate resync every N iterations (0 = auto)")
	blockDist := flag.Bool("blockdist", false, "use block vertex distribution instead of random")
	out := flag.String("out", "", "write per-vertex part ids to this file")
	flag.Parse()

	g, name, err := loadOrGenerate(*graphPath, *genName, *scale, *deg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph %s: n=%d m=%d davg=%.1f dmax=%d\n",
		name, g.N, g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	start := time.Now()
	var assignment []int32
	if *method == repro.MethodXtraPuLP {
		var rep repro.Report
		assignment, rep, err = repro.XtraPuLP(g, repro.Config{
			Parts: *parts, Ranks: *ranks, ThreadsPerRank: *threads,
			RandomDist: !*blockDist, SingleConstraint: *single, Seed: *seed,
			AsyncExchange: *async, SizeEpoch: *sizeEpoch,
		})
		if err == nil {
			fmt.Printf("stages: init=%.3fs (%d rounds) vert=%.3fs edge=%.3fs comm=%d elems (exchange %d, %d allreduces)\n",
				rep.InitTime.Seconds(), rep.InitIters, rep.VertTime.Seconds(),
				rep.EdgeTime.Seconds(), rep.CommVolume, rep.ExchangeVolume, rep.ReductionOps)
		}
	} else {
		assignment, err = repro.Partition(*method, g, *parts, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	q := repro.Evaluate(g, assignment, *parts)
	fmt.Printf("method=%s parts=%d time=%.3fs\n", *method, *parts, elapsed.Seconds())
	fmt.Printf("edge cut ratio      %.4f  (%d of %d edges)\n", q.EdgeCutRatio, q.CutEdges, g.NumEdges())
	fmt.Printf("scaled max cut      %.4f\n", q.ScaledMaxCutRatio)
	fmt.Printf("vertex imbalance    %.4f\n", q.VertexImbalance)
	fmt.Printf("edge imbalance      %.4f\n", q.EdgeImbalance)

	if *out != "" {
		if err := partition.SaveParts(*out, assignment); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func loadOrGenerate(path, genName string, scale int, deg int64, seed uint64) (*repro.Graph, string, error) {
	if path != "" {
		g, err := repro.LoadGraph(path)
		return g, path, err
	}
	n := int64(1) << uint(scale)
	var gen *repro.Generator
	switch genName {
	case "rmat":
		gen = repro.RMAT(scale, deg, seed)
	case "er":
		gen = repro.RandER(n, n*deg/2, seed)
	case "hd":
		gen = repro.RandHD(n, deg, seed)
	case "mesh":
		side := int64(1)
		for side*side*side < n {
			side++
		}
		gen = repro.Mesh3D(side, side, side)
	case "ws":
		gen = repro.SmallWorld(n, deg, 0.1, seed)
	case "powerlaw":
		gen = repro.PowerLaw(n, n*deg/2, 2.2, seed)
	case "":
		return nil, "", fmt.Errorf("xtrapulp: pass -graph FILE or -gen FAMILY")
	default:
		return nil, "", fmt.Errorf("xtrapulp: unknown generator %q", genName)
	}
	g, err := gen.Build()
	return g, gen.Name, err
}
