// Command xtrapulp partitions a graph with the XtraPuLP distributed
// partitioner (simulated MPI ranks) or any baseline method, reports
// the paper's quality metrics, and optionally writes the assignment.
//
// Usage:
//
//	xtrapulp -graph web.txt -parts 16 -ranks 4 [-method xtrapulp] [-out parts.txt]
//	xtrapulp -gen rmat -scale 18 -deg 16 -parts 16 -ranks 8
//	reprorun -n 4 -- xtrapulp -transport env -gen rmat -scale 12 -parts 8
//
// Graph files are edge lists (text "u v" lines, or .bin binary); the
// -gen families mirror the paper's synthetic inputs.
//
// -transport selects the rank substrate: "proc" (default) runs the
// simulated in-process world, "env" makes this process one rank of an
// externally launched socket world — it reads the REPRO_* rendezvous
// environment (set by cmd/reprorun or any MPI-style launcher),
// partitions collectively, and only rank 0 prints and writes output.
// Partitions are bit-identical across transports at a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/partition"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file to partition (.txt or .bin)")
	genName := flag.String("gen", "", "synthetic family: rmat|er|hd|mesh|ws|powerlaw")
	scale := flag.Int("scale", 16, "log2 vertex count for -gen")
	deg := flag.Int64("deg", 16, "average degree for -gen")
	parts := flag.Int("parts", 16, "number of parts")
	ranks := flag.Int("ranks", 4, "simulated MPI ranks")
	threads := flag.Int("threads", 1, "threads per rank (0 = one per core; partitions are reproducible only at a fixed count)")
	method := flag.String("method", repro.MethodXtraPuLP, fmt.Sprintf("partitioner: %v", repro.Methods()))
	seed := flag.Uint64("seed", 1, "random seed")
	single := flag.Bool("single", false, "single-constraint single-objective mode")
	async := flag.Bool("async", false, "asynchronous delta-only boundary exchange")
	sizeEpoch := flag.Int("size-epoch", 0, "async mode: exact size-estimate resync every N iterations (0 = auto)")
	blockDist := flag.Bool("blockdist", false, "use block vertex distribution instead of random")
	out := flag.String("out", "", "write per-vertex part ids to this file")
	transport := flag.String("transport", "proc", "rank substrate: proc (in-process) | env (one rank of a socket world, REPRO_* env)")
	flag.Parse()

	if *transport == "env" {
		runEnvRank(*graphPath, *genName, *scale, *deg, *parts, *threads, *seed,
			*single, *async, *sizeEpoch, *blockDist, *out)
		return
	}
	if *transport != "proc" {
		fmt.Fprintf(os.Stderr, "xtrapulp: unknown transport %q (proc|env)\n", *transport)
		os.Exit(2)
	}

	gn, err := generatorFor(*graphPath, *genName, *scale, *deg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g, err := gn.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph %s: n=%d m=%d davg=%.1f dmax=%d\n",
		gn.Name, g.N, g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	start := time.Now()
	var assignment []int32
	if *method == repro.MethodXtraPuLP {
		// Partition from the generator, not the built graph, so the
		// edge-chunk order — and hence the result — is bit-identical
		// to a -transport env run at the same seed.
		var rep repro.Report
		assignment, rep, err = repro.XtraPuLPGen(gn, repro.Config{
			Parts: *parts, Ranks: *ranks, ThreadsPerRank: *threads,
			RandomDist: !*blockDist, SingleConstraint: *single, Seed: *seed,
			AsyncExchange: *async, SizeEpoch: *sizeEpoch,
		})
		if err == nil {
			fmt.Printf("stages: init=%.3fs (%d rounds) vert=%.3fs edge=%.3fs comm=%d elems (exchange %d, %d allreduces)\n",
				rep.InitTime.Seconds(), rep.InitIters, rep.VertTime.Seconds(),
				rep.EdgeTime.Seconds(), rep.CommVolume, rep.ExchangeVolume, rep.ReductionOps)
		}
	} else {
		assignment, err = repro.Partition(*method, g, *parts, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	q := repro.Evaluate(g, assignment, *parts)
	fmt.Printf("method=%s parts=%d time=%.3fs\n", *method, *parts, elapsed.Seconds())
	fmt.Printf("edge cut ratio      %.4f  (%d of %d edges)\n", q.EdgeCutRatio, q.CutEdges, g.NumEdges())
	fmt.Printf("scaled max cut      %.4f\n", q.ScaledMaxCutRatio)
	fmt.Printf("vertex imbalance    %.4f\n", q.VertexImbalance)
	fmt.Printf("edge imbalance      %.4f\n", q.EdgeImbalance)

	if *out != "" {
		if err := partition.SaveParts(*out, assignment); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runEnvRank runs this process as one rank of an externally launched
// socket world: rendezvous from the REPRO_* environment, partition
// with XtraPuLPComm, report from rank 0.
func runEnvRank(graphPath, genName string, scale int, deg int64, parts, threads int, seed uint64,
	single, async bool, sizeEpoch int, blockDist bool, out string) {
	gn, err := generatorFor(graphPath, genName, scale, deg, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c, closeComm, err := repro.SocketComm(threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtrapulp:", err)
		os.Exit(1)
	}
	start := time.Now()
	assignment, rep, err := repro.XtraPuLPComm(c, gn, repro.Config{
		Parts: parts, RandomDist: !blockDist, SingleConstraint: single,
		Seed: seed, AsyncExchange: async, SizeEpoch: sizeEpoch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if c.Rank() == 0 {
		fmt.Printf("graph %s: n=%d ranks=%d (socket world)\n", gn.Name, gn.N, c.Size())
		fmt.Printf("stages: init=%.3fs (%d rounds) vert=%.3fs edge=%.3fs comm=%d elems (exchange %d, %d allreduces)\n",
			rep.InitTime.Seconds(), rep.InitIters, rep.VertTime.Seconds(),
			rep.EdgeTime.Seconds(), rep.CommVolume, rep.ExchangeVolume, rep.ReductionOps)
		q := rep.Quality
		fmt.Printf("method=%s parts=%d time=%.3fs\n", repro.MethodXtraPuLP, parts, time.Since(start).Seconds())
		fmt.Printf("edge cut ratio      %.4f  (%d edges cut)\n", q.EdgeCutRatio, q.CutEdges)
		fmt.Printf("scaled max cut      %.4f\n", q.ScaledMaxCutRatio)
		fmt.Printf("vertex imbalance    %.4f\n", q.VertexImbalance)
		fmt.Printf("edge imbalance      %.4f\n", q.EdgeImbalance)
		if out != "" {
			if err := partition.SaveParts(out, assignment); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	//lint:ignore errcheck the run is complete; a teardown error cannot change the result
	closeComm()
}

// generatorFor builds the distributed run's edge-chunk generator: a
// synthetic family, or a loaded edge-list file wrapped as a static
// generator.
func generatorFor(path, genName string, scale int, deg int64, seed uint64) (*repro.Generator, error) {
	if path != "" {
		g, err := repro.LoadGraph(path)
		if err != nil {
			return nil, err
		}
		return gen.FromEdgeList(path, g.N, g.Edges()), nil
	}
	return syntheticGenerator(genName, scale, deg, seed)
}

// syntheticGenerator maps a -gen family name to its generator.
func syntheticGenerator(genName string, scale int, deg int64, seed uint64) (*repro.Generator, error) {
	n := int64(1) << uint(scale)
	switch genName {
	case "rmat":
		return repro.RMAT(scale, deg, seed), nil
	case "er":
		return repro.RandER(n, n*deg/2, seed), nil
	case "hd":
		return repro.RandHD(n, deg, seed), nil
	case "mesh":
		side := int64(1)
		for side*side*side < n {
			side++
		}
		return repro.Mesh3D(side, side, side), nil
	case "ws":
		return repro.SmallWorld(n, deg, 0.1, seed), nil
	case "powerlaw":
		return repro.PowerLaw(n, n*deg/2, 2.2, seed), nil
	case "":
		return nil, fmt.Errorf("xtrapulp: pass -graph FILE or -gen FAMILY")
	default:
		return nil, fmt.Errorf("xtrapulp: unknown generator %q", genName)
	}
}
