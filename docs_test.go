package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Every internal package must carry a package comment ("// Package
// <name> ...") so `go doc` describes the whole tree; CI runs the same
// gate via scripts/check_docs.sh.
func TestEveryInternalPackageHasPackageComment(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found; run from the repository root")
	}
	for _, dir := range dirs {
		name := filepath.Base(dir)
		re := regexp.MustCompile(`(?m)^// Package ` + regexp.QuoteMeta(name) + `[ \n]`)
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if re.Match(src) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("internal/%s has no package comment (want a doc.go or file starting %q)",
				name, "// Package "+name)
		}
	}
}

// The architecture document the README and godocs point at must exist
// and keep covering the exchange engines.
func TestArchitectureDocPresent(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md missing: %v", err)
	}
	for _, want := range []string{"Package map", "async-delta", "Piggybacked tallies"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("docs/ARCHITECTURE.md lost its %q section", want)
		}
	}
}
