package repro_test

import (
	"fmt"

	"repro"
)

// ExampleConfig_asyncExchange runs the same partitioning job on both
// exchange engines: the async-delta engine with an explicit
// size-estimate resync epoch produces the identical partition while
// sending fewer elements and entering far fewer Allreduce barriers.
func ExampleConfig_asyncExchange() {
	gen := repro.RMAT(10, 8, 1)

	// ThreadsPerRank pinned serial: cross-mode bit-equality of the
	// PARTITIONER is only promised at one thread (the analytics and
	// SpMV are bit-identical at every thread count, the partitioner's
	// balance stage is not).
	sync := repro.Config{Parts: 8, Ranks: 4, ThreadsPerRank: 1, RandomDist: true, Seed: 7}
	async := sync
	async.AsyncExchange = true // packed P2P deltas + piggybacked tallies
	async.SizeEpoch = 4        // exact estimate resync every 4 iterations

	sparts, srep, err := repro.XtraPuLPGen(gen, sync)
	if err != nil {
		panic(err)
	}
	aparts, arep, err := repro.XtraPuLPGen(gen, async)
	if err != nil {
		panic(err)
	}

	identical := true
	for v := range sparts {
		if sparts[v] != aparts[v] {
			identical = false
			break
		}
	}
	fmt.Println("partitions identical:", identical)
	fmt.Println("async sends fewer elements:", arep.ExchangeVolume < srep.ExchangeVolume)
	fmt.Println("async enters fewer allreduces:", arep.ReductionOps < srep.ReductionOps)
	// Output:
	// partitions identical: true
	// async sends fewer elements: true
	// async enters fewer allreduces: true
}

// ExampleAnalyticsConfig routes the distributed analytics over the
// async delta engine; results are transport-independent.
func ExampleAnalyticsConfig() {
	gen := repro.RandER(512, 2048, 3)
	parts, err := repro.Partition(repro.MethodVertexBlock, gen.MustBuild(), 4, 1)
	if err != nil {
		panic(err)
	}
	results, err := repro.RunAnalyticsCfg(gen, parts, repro.AnalyticsConfig{
		Ranks: 4, HCSources: 2, AsyncExchange: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("analytics run:", len(results))
	// Output:
	// analytics run: 6
}
