// Analytics: the paper's Fig. 8 scenario in miniature. A web-crawl
// proxy graph is distributed across 8 simulated compute nodes four
// ways — edge-block, random, vertex-block, and XtraPuLP partitions —
// and the six distributed analytics (harmonic centrality, k-core,
// label propagation, PageRank, SCC, WCC) run under each placement.
// Partition quality translates directly into analytic runtime because
// every iteration exchanges values across cut edges.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const nodes = 8
	gen := repro.PowerLaw(1<<13, 1<<16, 2.1, 1) // crawl-like: hubby power law
	g := gen.MustBuild()
	fmt.Printf("web-crawl proxy: n=%d m=%d dmax=%d\n\n", g.N, g.NumEdges(), g.MaxDegree())

	// Three trivial placements plus XtraPuLP.
	strategies := []struct {
		name  string
		parts []int32
	}{}
	for _, m := range []string{repro.MethodEdgeBlock, repro.MethodRandom, repro.MethodVertexBlock} {
		parts, err := repro.Partition(m, g, nodes, 1)
		if err != nil {
			log.Fatal(err)
		}
		strategies = append(strategies, struct {
			name  string
			parts []int32
		}{m, parts})
	}
	xstart := time.Now()
	xparts, _, err := repro.XtraPuLP(g, repro.Config{Parts: nodes, Ranks: nodes, RandomDist: true})
	if err != nil {
		log.Fatal(err)
	}
	xtime := time.Since(xstart)
	strategies = append(strategies, struct {
		name  string
		parts []int32
	}{"xtrapulp", xparts})

	fmt.Printf("%-12s %8s %8s %8s %8s %8s %8s %10s\n",
		"placement", "HC", "KC", "LP", "PR", "SCC", "WCC", "total")
	for _, st := range strategies {
		results, err := repro.RunAnalytics(gen, st.parts, nodes, 4)
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		fmt.Printf("%-12s", st.name)
		for _, r := range results {
			fmt.Printf(" %7.3fs", r.Time.Seconds())
			total += r.Time
		}
		if st.name == "xtrapulp" {
			total += xtime
			fmt.Printf(" %8.3fs (incl. %.3fs partitioning)\n", total.Seconds(), xtime.Seconds())
		} else {
			fmt.Printf(" %8.3fs\n", total.Seconds())
		}
	}

	q := repro.Evaluate(g, xparts, nodes)
	fmt.Printf("\nXtraPuLP placement cut ratio: %.3f — lower cut, less boundary exchange, faster analytics.\n",
		q.EdgeCutRatio)
}
