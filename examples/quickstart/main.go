// Quickstart: generate a small-world R-MAT graph, partition it into 8
// parts with XtraPuLP on 4 simulated MPI ranks, and print the paper's
// quality metrics next to the random-partitioning baseline.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A scale-14 R-MAT graph: 16,384 vertices, ~131k edges, heavily
	// skewed degrees — the paper's archetypal small-world input.
	g := repro.RMAT(14, 16, 1).MustBuild()
	fmt.Printf("graph: n=%d m=%d davg=%.1f dmax=%d\n",
		g.N, g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	const parts = 8
	assignment, rep, err := repro.XtraPuLP(g, repro.Config{
		Parts:      parts,
		Ranks:      4,    // simulated MPI ranks
		RandomDist: true, // the paper's random vertex distribution
	})
	if err != nil {
		log.Fatal(err)
	}

	q := repro.Evaluate(g, assignment, parts)
	fmt.Printf("\nXtraPuLP (%d parts, %.3fs: init %.3fs + vert %.3fs + edge %.3fs)\n",
		parts, rep.TotalTime.Seconds(), rep.InitTime.Seconds(),
		rep.VertTime.Seconds(), rep.EdgeTime.Seconds())
	fmt.Printf("  edge cut ratio   %.3f\n", q.EdgeCutRatio)
	fmt.Printf("  scaled max cut   %.3f\n", q.ScaledMaxCutRatio)
	fmt.Printf("  vertex imbalance %.3f (constraint 1.10)\n", q.VertexImbalance)
	fmt.Printf("  edge imbalance   %.3f (constraint 1.10)\n", q.EdgeImbalance)

	random, err := repro.Partition(repro.MethodRandom, g, parts, 1)
	if err != nil {
		log.Fatal(err)
	}
	qr := repro.Evaluate(g, random, parts)
	fmt.Printf("\nrandom baseline: edge cut ratio %.3f (theory: (p-1)/p = %.3f)\n",
		qr.EdgeCutRatio, float64(parts-1)/float64(parts))
}
