// Scaling: a strong-scaling sweep in the spirit of the paper's Fig. 1.
// The same R-MAT graph is partitioned into 16 parts on 1, 2, 4, and 8
// simulated MPI ranks; each rank generates only its own chunk of the
// edge list, so no process ever holds the whole graph — the property
// that lets XtraPuLP process trillion-edge inputs.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gen := repro.RMAT(15, 16, 1) // 32,768 vertices, ~262k edges
	fmt.Printf("graph %s: n=%d m=%d\n\n", gen.Name, gen.N, gen.M)
	fmt.Printf("%6s %10s %10s %10s %9s %9s\n",
		"ranks", "total", "init", "balance", "cut", "speedup")

	var base float64
	for _, ranks := range []int{1, 2, 4, 8} {
		parts, rep, err := repro.XtraPuLPGen(gen, repro.Config{
			Parts:      16,
			Ranks:      ranks,
			RandomDist: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		_ = parts
		t := rep.TotalTime.Seconds()
		if ranks == 1 {
			base = t
		}
		fmt.Printf("%6d %9.3fs %9.3fs %9.3fs %9.3f %8.2fx\n",
			ranks, t, rep.InitTime.Seconds(),
			(rep.VertTime + rep.EdgeTime).Seconds(),
			rep.Quality.EdgeCutRatio, base/t)
	}
	fmt.Println("\nSpeedups are wall-clock on goroutine ranks sharing one machine;")
	fmt.Println("the shape (scaling without bottlenecks) is the reproduced claim.")
}
