// SpMV: the paper's Table III scenario in miniature. One hundred
// chained sparse matrix-vector products run over a skewed social-graph
// proxy on 16 simulated MPI ranks, comparing 1D row layouts against 2D
// processor-grid layouts, each derived from block, random, and
// XtraPuLP vertex partitions. On skewed graphs the 2D layout bounds
// per-rank communication and the XtraPuLP partition reduces it
// further — the paper's reported 2.77x geometric-mean speedup of
// 2D-XtraPuLP over 1D-random.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const ranks = 16
	const iters = 100
	g := repro.PowerLaw(1<<13, 1<<16, 2.0, 1).MustBuild()
	fmt.Printf("social proxy: n=%d m=%d dmax=%d; %d SpMVs on %d ranks\n\n",
		g.N, g.NumEdges(), g.MaxDegree(), iters, ranks)

	partitions := []struct {
		name  string
		parts []int32
	}{}
	for _, m := range []string{repro.MethodVertexBlock, repro.MethodRandom} {
		parts, err := repro.Partition(m, g, ranks, 1)
		if err != nil {
			log.Fatal(err)
		}
		partitions = append(partitions, struct {
			name  string
			parts []int32
		}{m, parts})
	}
	xparts, _, err := repro.XtraPuLP(g, repro.Config{Parts: ranks, Ranks: ranks, RandomDist: true})
	if err != nil {
		log.Fatal(err)
	}
	partitions = append(partitions, struct {
		name  string
		parts []int32
	}{"xtrapulp", xparts})

	fmt.Printf("%-12s %-6s %10s %12s\n", "partition", "layout", "time", "sent values")
	var rand1D, x2D float64
	for _, layout := range []string{repro.Layout1D, repro.Layout2D} {
		for _, pt := range partitions {
			res, err := repro.RunSpMV(g, pt.parts, ranks, layout, iters)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-6s %9.3fs %12d\n", pt.name, layout, res.Time.Seconds(), res.CommVolume)
			if layout == repro.Layout1D && pt.name == repro.MethodRandom {
				rand1D = res.Time.Seconds()
			}
			if layout == repro.Layout2D && pt.name == "xtrapulp" {
				x2D = res.Time.Seconds()
			}
		}
	}
	fmt.Printf("\n2D-XtraPuLP vs 1D-random: %.2fx faster\n", rand1D/x2D)
}
