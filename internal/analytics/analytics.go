// Package analytics implements the six distributed graph analytics of
// the paper's Fig. 8 experiment (algorithms from Slota, Rajamanickam,
// and Madduri, IPDPS 2016 [29]): Harmonic Centrality (HC), approximate
// K-Core decomposition (KC), Label Propagation community detection
// (LP), PageRank (PR), largest "strongly" connected component
// extraction (SCC), and Weakly Connected Components (WCC).
//
// Every analytic runs collectively on a dgraph shard with the paper's
// pattern: rank-local compute over owned vertices, boundary value
// exchange each iteration, and a global termination test — so
// per-analytic runtime responds to partition quality (cut size drives
// exchange volume) exactly as in the paper. On the synchronous engine
// the termination test is an Allreduce; on the async delta engine
// (Graph.SetAsyncExchange) the iterations run split-phase — interior
// vertices are relaxed while boundary values are in flight — and the
// convergence counters ride the value messages as piggybacked tally
// frames (see overlap.go), eliminating the per-round Allreduce on
// complete rank neighborhoods. Results are bit-identical across
// engines.
//
// Substitution note: the paper runs SCC on a directed web crawl. Our
// generated proxies are undirected, so SCC here performs the
// forward/backward double-sweep of the FW-BW algorithm from a
// max-degree pivot (two reachability passes plus the trim phase). On a
// symmetric graph both sweeps reach the same set; the communication
// profile — the expensive part Fig. 8 measures — is preserved.
package analytics

import (
	"math"
	"slices"
	"time"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Result reports one analytic's execution.
type Result struct {
	// Name is the analytic's short code (HC, KC, LP, PR, SCC, WCC).
	Name string
	// Iterations is the number of global rounds executed.
	Iterations int
	// Time is the wall-clock duration on this rank.
	Time time.Duration
	// SweepTime is the wall-clock time this rank spent inside the
	// intra-rank relaxation/expansion sweeps (the compute the
	// ThreadsPerRank knob parallelizes), excluding communication.
	SweepTime time.Duration
	// Value is an analytic-specific scalar result (for example the
	// number of components for WCC, or the largest component size).
	Value float64
}

// PageRank runs iters rounds of damped PageRank and returns the owned
// vertices' ranks (indexed by local id) plus the result record.
//
// Dangling mass (degree-0 owned vertices) is redistributed uniformly,
// keeping the rank vector a distribution. The two global quantities —
// per-iteration dangling mass and the final norm — share one fused
// length-2 vector Allreduce per iteration in sync mode; in overlapped
// async mode the dangling partial rides the boundary value messages as
// a tally frame folded in global rank order, so iterations perform no
// reduction at all on complete rank neighborhoods. Ranks are
// bit-identical across all modes.
//
//repro:deterministic
//repro:timing
func PageRank(g *dgraph.Graph, iters int, damping float64) ([]float64, Result) {
	start := time.Now()
	n := float64(g.NGlobal)
	vals := make([]float64, g.NTotal())
	next := make([]float64, g.NLocal)
	for i := range vals {
		vals[i] = 1.0 / n
	}
	e := newEngine(g)
	bnd, inr := g.BoundaryVertices(), g.InteriorVertices()

	// deg0 lists the dangling owned vertices ascending. Their next
	// value is exactly the iteration's base (no neighbors), which keeps
	// the next dangling partial computable before the interior sweep —
	// what lets it ride this round's messages in overlapped mode.
	var deg0 []int32
	for v := 0; v < g.NLocal; v++ {
		if g.Degree(int32(v)) == 0 {
			deg0 = append(deg0, int32(v))
		}
	}

	// Prologue: global dangling mass of the uniform start.
	var danglingLocal float64
	for _, v := range deg0 {
		danglingLocal += vals[v]
	}
	dangling := mpi.AllreduceScalar(g.Comm, danglingLocal, mpi.Sum)

	// PageRank is already Jacobi (vals → next), so the sweeps
	// parallelize directly: each worker writes its own next[v] slots
	// from the round-frozen vals. The local norm uses the ordered float
	// reduction — a fixed chunk decomposition folded in ascending chunk
	// order — so both modes at every thread count produce the same
	// bits.
	var base float64
	relax := func(v int32) {
		var sum float64
		for _, u := range g.Neighbors(v) {
			sum += vals[u] / float64(g.Degrees[u])
		}
		next[v] = base + damping*sum
	}
	sweep := func(list []int32) {
		t0 := time.Now()
		par.For(0, len(list), e.threads, func(i int) { relax(list[i]) })
		e.sweepTime += time.Since(t0)
	}
	var normSrc []float64
	var fpart []float64
	normBody := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += normSrc[i]
		}
		return s
	}

	norm := 0.0
	normDone := false
	if e.overlapped() {
		for it := 0; it < iters; it++ {
			base = (1-damping)/n + damping*dangling/n
			sweep(bnd)
			// Next iteration's dangling partial: every dangling vertex
			// takes exactly base this iteration (summed per vertex to
			// keep the accumulation order of the sync path).
			var dL float64
			for range deg0 {
				dL += base
			}
			e.payload = e.payload[:0]
			for _, v := range bnd {
				e.payload = append(e.payload, int64(math.Float64bits(next[v])))
			}
			var tally []int64
			if e.complete {
				e.tally[0] = int64(math.Float64bits(dL))
				tally = e.tally[:1]
			}
			e.ex.BeginValues(bnd, e.payload, tally)
			sweep(inr)
			copy(vals[:g.NLocal], next)
			outL, outP, tr := e.ex.FlushValues()
			for i, lid := range outL {
				vals[lid] = math.Float64frombits(uint64(outP[i]))
			}
			if e.complete {
				dangling = tr.FoldFloat(0)
			} else {
				dangling = mpi.AllreduceScalar(g.Comm, dL, mpi.Sum)
			}
		}
	} else {
		for it := 0; it < iters; it++ {
			base = (1-damping)/n + damping*dangling/n
			sweep(bnd)
			sweep(inr)
			copy(vals[:g.NLocal], next)
			g.ExchangeFloat64(bnd, vals)
			// Fused end-of-iteration reduction: the next iteration's
			// dangling mass and the current norm in one vector
			// Allreduce (the last iteration's norm is the result).
			var dL, nL float64
			for _, v := range deg0 {
				dL += next[v]
			}
			normSrc = next
			nL, fpart = par.SumFloat64Ordered(0, g.NLocal, e.threads, fpart, normBody)
			red := mpi.Allreduce(g.Comm, []float64{dL, nL}, mpi.Sum)
			dangling, norm = red[0], red[1]
			normDone = true
		}
	}
	elapsed := time.Since(start)
	if !normDone {
		// vals[:NLocal] holds the same bits next held after the last
		// async iteration (or the uniform start when iters == 0), and
		// the decomposition is thread-count independent, so this norm
		// matches the sync path's exactly.
		var nL float64
		normSrc = vals
		nL, fpart = par.SumFloat64Ordered(0, g.NLocal, e.threads, fpart, normBody)
		norm = mpi.AllreduceScalar(g.Comm, nL, mpi.Sum)
	}
	return vals[:g.NLocal], Result{Name: "PR", Iterations: iters, Time: elapsed, SweepTime: e.sweepTime, Value: norm}
}

// WCC labels every vertex with the minimum global id reachable from it
// (hook-free min-label propagation) and returns owned labels plus the
// component count.
//
//repro:deterministic
//repro:timing
func WCC(g *dgraph.Graph) ([]int64, Result) {
	start := time.Now()
	labels := make([]int64, g.NTotal())
	for lid, gid := range g.L2G {
		labels[lid] = gid
	}
	e := newEngine(g)
	relax := func(v int32, _ int) (int64, bool) {
		best := labels[v]
		for _, u := range g.Neighbors(v) {
			if labels[u] < best {
				best = labels[u]
			}
		}
		return best, best < labels[v]
	}
	iters := e.propagate(labels, relax, 0)
	// Count components: owned vertices whose label equals their gid.
	rootsLocal := par.ReduceInt64(0, g.NLocal, e.threads, func(v int) int64 {
		if labels[v] == g.L2G[v] {
			return 1
		}
		return 0
	})
	comps := mpi.AllreduceScalar(g.Comm, rootsLocal, mpi.Sum)
	return labels[:g.NLocal], Result{Name: "WCC", Iterations: iters, Time: time.Since(start), SweepTime: e.sweepTime, Value: float64(comps)}
}

// LabelProp runs up to iters rounds of plurality label propagation
// community detection and returns owned community labels plus the
// GLOBAL number of distinct communities (hash-partitioned exact count,
// identical on every rank — the LP analogue of WCC's component count).
// Result.Iterations reports the rounds actually executed, which is
// below iters when propagation reaches a fixed point early.
//
//repro:deterministic
//repro:timing
func LabelProp(g *dgraph.Graph, iters int) ([]int64, Result) {
	start := time.Now()
	labels := make([]int64, g.NTotal())
	for lid, gid := range g.L2G {
		labels[lid] = gid
	}
	e := newEngine(g)
	// One plurality-count map per worker thread: relax runs with the
	// sweep's tid and touches only its own scratch. The plurality pick
	// itself is map-iteration-order independent (max count, ties to the
	// smallest label), so the result does not depend on Go's randomized
	// map order.
	counts := make([]map[int64]int64, e.threads)
	for i := range counts {
		counts[i] = make(map[int64]int64, 64)
	}
	relax := func(v int32, tid int) (int64, bool) {
		cur := labels[v]
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			return cur, false
		}
		c := counts[tid]
		clear(c)
		for _, u := range nbrs {
			c[labels[u]]++
		}
		best, bestN := cur, c[cur]
		for l, n := range c {
			if n > bestN || (n == bestN && l < best) {
				best, bestN = l, n
			}
		}
		return best, best != cur
	}
	ran := e.propagate(labels, relax, iters)
	comms := globalDistinct(g, labels[:g.NLocal])
	return labels[:g.NLocal], Result{Name: "LP", Iterations: ran, Time: time.Since(start), SweepTime: e.sweepTime, Value: float64(comms)}
}

// globalDistinct counts the distinct values among every rank's owned
// labels exactly. Labels are partitioned by hash: each rank ships its
// locally distinct labels to the owning counter rank, which dedupes
// what it receives, and one Allreduce sums the per-rank counts — so a
// community spanning several ranks is counted exactly once, unlike the
// old rank-local count, which disagreed across ranks and overcounted
// shared communities. Collective; every rank returns the same count.
func globalDistinct(g *dgraph.Graph, labels []int64) int64 {
	nprocs := g.Comm.Size()
	local := make(map[int64]struct{}, 64)
	for _, l := range labels {
		local[l] = struct{}{}
	}
	// Sort the locally distinct labels before filling the send buffer:
	// filling in map iteration order would make the wire bytes (the
	// order within each destination's segment) differ per run, breaking
	// frame-level replay even though the final count is unaffected.
	distinctLocal := make([]int64, 0, len(local))
	for l := range local {
		distinctLocal = append(distinctLocal, l)
	}
	slices.Sort(distinctLocal)
	counts := make([]int, nprocs)
	dest := func(l int64) int { return int(uint64(l) % uint64(nprocs)) }
	for _, l := range distinctLocal {
		counts[dest(l)]++
	}
	offsets := make([]int, nprocs+1)
	for r := 0; r < nprocs; r++ {
		offsets[r+1] = offsets[r] + counts[r]
	}
	sendBuf := make([]int64, offsets[nprocs])
	cursor := make([]int, nprocs)
	copy(cursor, offsets[:nprocs])
	for _, l := range distinctLocal {
		d := dest(l)
		sendBuf[cursor[d]] = l
		cursor[d]++
	}
	recv, _ := mpi.Alltoallv(g.Comm, sendBuf, counts)
	distinct := make(map[int64]struct{}, len(recv))
	for _, l := range recv {
		distinct[l] = struct{}{}
	}
	return mpi.AllreduceScalar(g.Comm, int64(len(distinct)), mpi.Sum)
}

// KCore computes the approximate k-core decomposition by iterated
// h-index refinement (each vertex's core estimate becomes the h-index
// of its neighbors' estimates), which converges to the exact coreness.
// maxIters bounds the rounds, matching the paper's approximate variant.
//
//repro:deterministic
//repro:timing
func KCore(g *dgraph.Graph, maxIters int) ([]int64, Result) {
	start := time.Now()
	core := make([]int64, g.NTotal())
	for lid := range core {
		core[lid] = g.Degrees[lid]
	}
	e := newEngine(g)
	// Per-thread h-index scratch: each worker owns one (hbuf, bkts)
	// pair, so the pooled-buffer discipline hIndex relies on survives
	// the parallel sweep.
	type hScratch struct{ hbuf, bkts []int64 }
	scratch := make([]hScratch, e.threads)
	for i := range scratch {
		scratch[i].hbuf = make([]int64, 0, 256)
		scratch[i].bkts = make([]int64, 0, 256)
	}
	relax := func(v int32, tid int) (int64, bool) {
		s := &scratch[tid]
		s.hbuf = s.hbuf[:0]
		for _, u := range g.Neighbors(v) {
			s.hbuf = append(s.hbuf, core[u])
		}
		var h int64
		h, s.bkts = hIndex(s.hbuf, s.bkts)
		return h, h < core[v]
	}
	localMax := func() int64 {
		return par.MaxInt64(0, g.NLocal, e.threads, 0, func(v int) int64 { return core[v] })
	}
	// Piggyback the owned coreness maximum next to the convergence
	// counter (max-combined via TallyRound.Max): when the overlapped run
	// terminates through the counter, the estimates are final and the
	// folded frame already is the global maximum — no trailing
	// Allreduce. Runs cut short by maxIters (and sync runs) fall back.
	e.aux = localMax
	iters := e.propagate(core, relax, maxIters)
	maxCore := e.auxVal
	if !e.auxOK {
		maxCore = mpi.AllreduceScalar(g.Comm, localMax(), mpi.Max)
	}
	return core[:g.NLocal], Result{Name: "KC", Iterations: iters, Time: time.Since(start), SweepTime: e.sweepTime, Value: float64(maxCore)}
}

// hIndex returns the largest h such that at least h values in vals are
// >= h, counting into buckets — a caller-pooled scratch buffer, reused
// across calls so KCore's per-vertex-per-round hot loop stays off the
// heap — and returns the (possibly grown) buffer for the next call.
//
//repro:hotpath
func hIndex(vals []int64, buckets []int64) (int64, []int64) {
	n := int64(len(vals))
	if n == 0 {
		return 0, buckets
	}
	// Counting by bucket up to n (values above n count as n).
	if cap(buckets) < int(n)+1 {
		buckets = make([]int64, n+1)
	} else {
		buckets = buckets[:n+1]
		for i := range buckets {
			buckets[i] = 0
		}
	}
	for _, v := range vals {
		if v > n {
			v = n
		}
		if v < 0 {
			v = 0
		}
		buckets[v]++
	}
	var cum int64
	for h := n; h >= 0; h-- {
		cum += buckets[h]
		if cum >= h {
			return h, buckets
		}
	}
	return 0, buckets
}
