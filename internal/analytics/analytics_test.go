package analytics

import (
	"math"
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// withDistributed builds g over nranks and runs check on each shard.
func withDistributed(t *testing.T, g *gen.Generator, nranks int, check func(dg *dgraph.Graph)) {
	t.Helper()
	mpi.Run(nranks, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		check(dg)
	})
}

func TestBFSMatchesSharedLevels(t *testing.T) {
	g := gen.ERAvgDeg(1000, 8, 3)
	shared := g.MustBuild()
	wantLevels, wantEcc := shared.BFS(0)
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		levels, ecc := BFS(dg, 0)
		if ecc != wantEcc {
			t.Errorf("rank %d: ecc %d != %d", dg.Comm.Rank(), ecc, wantEcc)
		}
		for v := 0; v < dg.NLocal; v++ {
			gid := dg.L2G[v]
			if levels[v] != wantLevels[gid] {
				t.Errorf("rank %d: level(gid %d) = %d, want %d",
					dg.Comm.Rank(), gid, levels[v], wantLevels[gid])
				return
			}
		}
	})
}

func TestBFSDisconnected(t *testing.T) {
	// Two cliques, no bridge: vertices in the far clique stay at -1.
	var edges []graph.Edge
	for i := int64(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			edges = append(edges, graph.Edge{U: 5 + i, V: 5 + j})
		}
	}
	mpi.Run(2, func(c *mpi.Comm) {
		var chunk []graph.Edge
		if c.Rank() == 0 {
			chunk = edges
		}
		dg, err := dgraph.FromEdgeChunks(c, 10, chunk, dgraph.BlockDist{N: 10, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		levels, ecc := BFS(dg, 0)
		if ecc != 1 {
			t.Errorf("ecc = %d, want 1", ecc)
		}
		for v := 0; v < dg.NLocal; v++ {
			gid := dg.L2G[v]
			want := int64(-1)
			if gid == 0 {
				want = 0
			} else if gid < 5 {
				want = 1
			}
			if levels[v] != want {
				t.Errorf("level(gid %d) = %d, want %d", gid, levels[v], want)
			}
		}
	})
}

func TestWCCCountsComponents(t *testing.T) {
	// Three disjoint paths.
	var edges []graph.Edge
	for c := int64(0); c < 3; c++ {
		base := c * 100
		for i := int64(0); i < 99; i++ {
			edges = append(edges, graph.Edge{U: base + i, V: base + i + 1})
		}
	}
	mpi.Run(3, func(c *mpi.Comm) {
		lo := len(edges) * c.Rank() / c.Size()
		hi := len(edges) * (c.Rank() + 1) / c.Size()
		dg, err := dgraph.FromEdgeChunks(c, 300, edges[lo:hi], dgraph.HashDist{P: c.Size(), Seed: 9})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		labels, res := WCC(dg)
		if res.Value != 3 {
			t.Errorf("components = %v, want 3", res.Value)
		}
		for v := 0; v < dg.NLocal; v++ {
			want := (dg.L2G[v] / 100) * 100 // min gid of its path
			if labels[v] != want {
				t.Errorf("label(gid %d) = %d, want %d", dg.L2G[v], labels[v], want)
				return
			}
		}
	})
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.RMAT(10, 8, 5)
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		_, res := PageRank(dg, 20, 0.85)
		if math.Abs(res.Value-1.0) > 1e-9 {
			t.Errorf("rank mass %v, want 1.0", res.Value)
		}
	})
}

func TestPageRankMatchesSharedReference(t *testing.T) {
	g := gen.ERAvgDeg(500, 8, 11)
	shared := g.MustBuild()
	// Shared-memory reference PageRank.
	n := float64(shared.N)
	ref := make([]float64, shared.N)
	for i := range ref {
		ref[i] = 1.0 / n
	}
	tmp := make([]float64, shared.N)
	const d = 0.85
	for it := 0; it < 20; it++ {
		var dangling float64
		for v := int64(0); v < shared.N; v++ {
			if shared.Degree(v) == 0 {
				dangling += ref[v]
			}
		}
		base := (1-d)/n + d*dangling/n
		for v := int64(0); v < shared.N; v++ {
			var sum float64
			for _, u := range shared.Neighbors(v) {
				sum += ref[u] / float64(shared.Degree(u))
			}
			tmp[v] = base + d*sum
		}
		copy(ref, tmp)
	}
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		vals, _ := PageRank(dg, 20, d)
		for v := 0; v < dg.NLocal; v++ {
			gid := dg.L2G[v]
			if math.Abs(vals[v]-ref[gid]) > 1e-12 {
				t.Errorf("PR(gid %d) = %v, want %v", gid, vals[v], ref[gid])
				return
			}
		}
	})
}

func TestKCoreOnCliquePlusTail(t *testing.T) {
	// 6-clique (coreness 5) with a path tail (coreness 1).
	var edges []graph.Edge
	for i := int64(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := int64(6); i < 19; i++ {
		edges = append(edges, graph.Edge{U: i - 1, V: i})
	}
	mpi.Run(2, func(c *mpi.Comm) {
		lo := len(edges) * c.Rank() / c.Size()
		hi := len(edges) * (c.Rank() + 1) / c.Size()
		dg, err := dgraph.FromEdgeChunks(c, 19, edges[lo:hi], dgraph.BlockDist{N: 19, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		core, res := KCore(dg, 50)
		if res.Value != 5 {
			t.Errorf("max coreness %v, want 5", res.Value)
		}
		for v := 0; v < dg.NLocal; v++ {
			gid := dg.L2G[v]
			want := int64(1)
			if gid < 6 {
				want = 5
			}
			if core[v] != want {
				t.Errorf("core(gid %d) = %d, want %d", gid, core[v], want)
			}
		}
	})
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		vals []int64
		want int64
	}{
		{nil, 0},
		{[]int64{0}, 0},
		{[]int64{5}, 1},
		{[]int64{1, 1, 1}, 1},
		{[]int64{3, 3, 3}, 3},
		{[]int64{10, 8, 5, 4, 3}, 4},
		{[]int64{25, 8, 5, 3, 3, 2}, 3},
	}
	var buckets []int64
	for _, c := range cases {
		cp := append([]int64(nil), c.vals...)
		var got int64
		got, buckets = hIndex(cp, buckets)
		if got != c.want {
			t.Errorf("hIndex(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

// TestHIndexPooledBucketsAllocFree is the allocation regression for
// KCore's hot loop: once the pooled bucket buffer has grown to the
// neighborhood size, repeated hIndex calls must not touch the heap
// (the old implementation allocated a fresh bucket slice per vertex
// per round).
func TestHIndexPooledBucketsAllocFree(t *testing.T) {
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i % 17)
	}
	buckets := make([]int64, 0, len(vals)+1)
	scratch := make([]int64, len(vals))
	if avg := testing.AllocsPerRun(100, func() {
		copy(scratch, vals)
		_, buckets = hIndex(scratch, buckets)
	}); avg != 0 {
		t.Errorf("hIndex with pooled buckets: %.2f allocs per call, want 0", avg)
	}
}

func TestLabelPropFindsPlantedCommunities(t *testing.T) {
	// Two dense blocks with a single bridge: LP should settle on two
	// (or very few) communities.
	var edges []graph.Edge
	for b := int64(0); b < 2; b++ {
		base := b * 50
		for i := int64(0); i < 50; i++ {
			for j := i + 1; j < i+5 && j < 50; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 50})
	mpi.Run(2, func(c *mpi.Comm) {
		lo := len(edges) * c.Rank() / c.Size()
		hi := len(edges) * (c.Rank() + 1) / c.Size()
		dg, err := dgraph.FromEdgeChunks(c, 100, edges[lo:hi], dgraph.HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		labels, res := LabelProp(dg, 20)
		_ = labels
		total := mpi.AllreduceScalar(dg.Comm, int64(res.Value), mpi.Sum)
		// Communities counted per rank can overlap; the global bound
		// still reflects coarse community structure.
		if total > 30 {
			t.Errorf("LP found %d rank-local communities; expected strong consolidation", total)
		}
	})
}

func TestSCCFindsLargestComponent(t *testing.T) {
	g := gen.ERAvgDeg(1000, 8, 17)
	shared := g.MustBuild()
	want := int64(len(shared.LargestComponent()))
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		// Pivot is the max-degree vertex; in a connected-ish ER graph
		// its component is the giant one.
		_, res := SCC(dg)
		if int64(res.Value) != want {
			t.Errorf("SCC size %v, want %d", res.Value, want)
		}
	})
}

func TestRunAllProducesSixResults(t *testing.T) {
	g := gen.RMAT(9, 8, 21)
	withDistributed(t, g, 2, func(dg *dgraph.Graph) {
		results := RunAll(dg, 4)
		if len(results) != 6 {
			t.Fatalf("got %d results", len(results))
		}
		names := []string{"HC", "KC", "LP", "PR", "SCC", "WCC"}
		for i, r := range results {
			if r.Name != names[i] {
				t.Errorf("result %d name %s, want %s", i, r.Name, names[i])
			}
			if r.Time <= 0 {
				t.Errorf("%s: zero time", r.Name)
			}
		}
	})
}

func TestHarmonicCentralityCenterOfPath(t *testing.T) {
	// On a path, the center has the highest harmonic centrality.
	var edges []graph.Edge
	const n = 21
	for i := int64(0); i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	mpi.Run(2, func(c *mpi.Comm) {
		lo := len(edges) * c.Rank() / c.Size()
		hi := len(edges) * (c.Rank() + 1) / c.Size()
		dg, err := dgraph.FromEdgeChunks(c, n, edges[lo:hi], dgraph.BlockDist{N: n, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		srcs := make([]int64, n)
		for i := range srcs {
			srcs[i] = int64(i)
		}
		hc, _ := HarmonicCentrality(dg, srcs)
		full := dg.GatherGlobal(toInt32Scaled(hc, dg))
		var best int32 = -1
		bestGID := int64(-1)
		for gid, v := range full {
			if v > best {
				best, bestGID = v, int64(gid)
			}
		}
		if bestGID != n/2 {
			t.Errorf("max centrality at %d, want %d", bestGID, int64(n/2))
		}
	})
}

// toInt32Scaled packs float centralities into int32 (x1000) for gather.
func toInt32Scaled(vals []float64, dg *dgraph.Graph) []int32 {
	out := make([]int32, len(vals))
	for i, v := range vals {
		out[i] = int32(v * 1000)
	}
	return out
}

// TestEmptyGraphAnalytics drives every analytic over a zero-vertex
// graph: SCC used to sweep from pivot -1 (a BFS from a nonexistent
// gid) and the guards must now return clean zero results without any
// collective mismatch, in both exchange modes.
func TestEmptyGraphAnalytics(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		for _, async := range []bool{false, true} {
			dg, err := dgraph.FromEdgeChunks(c, 0, nil, dgraph.BlockDist{N: 0, P: c.Size()})
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			dg.SetAsyncExchange(async)
			levels, ecc := BFS(dg, 0)
			if len(levels) != 0 || ecc != 0 {
				t.Errorf("async=%v: BFS on empty graph: %d levels, ecc %d", async, len(levels), ecc)
			}
			if _, res := SCC(dg); res.Value != 0 {
				t.Errorf("async=%v: SCC on empty graph: size %v, want 0", async, res.Value)
			}
			results := RunAll(dg, 4)
			if len(results) != 6 {
				t.Fatalf("async=%v: RunAll on empty graph: %d results", async, len(results))
			}
			for _, r := range results {
				if r.Value != 0 {
					t.Errorf("async=%v: %s on empty graph: value %v, want 0", async, r.Name, r.Value)
				}
			}
			dg.Close()
		}
	})
}

// TestSingleVertexAnalytics covers the one-vertex, zero-edge shard:
// the pivot exists but has no neighbors anywhere.
func TestSingleVertexAnalytics(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, 1, nil, dgraph.BlockDist{N: 1, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if _, res := SCC(dg); res.Value != 1 {
			t.Errorf("SCC on single vertex: size %v, want 1", res.Value)
		}
		if _, res := WCC(dg); res.Value != 1 {
			t.Errorf("WCC on single vertex: components %v, want 1", res.Value)
		}
		dg.Close()
	})
}

// TestHCSourceListDistinct: no source may ever be counted twice, and a
// request past the vertex count stops at it.
func TestHCSourceListDistinct(t *testing.T) {
	for _, tc := range []struct{ n, nGlobal, want int }{
		{4, 100, 4}, {100, 7, 7}, {0, 5, 0}, {3, 0, 0},
	} {
		srcs := HCSourceList(tc.n, int64(tc.nGlobal))
		if len(srcs) != tc.want {
			t.Errorf("HCSourceList(%d, %d): %d sources, want %d", tc.n, tc.nGlobal, len(srcs), tc.want)
		}
		seen := map[int64]struct{}{}
		for _, s := range srcs {
			if s < 0 || s >= int64(tc.nGlobal) {
				t.Errorf("HCSourceList(%d, %d): source %d out of range", tc.n, tc.nGlobal, s)
			}
			if _, dup := seen[s]; dup {
				t.Errorf("HCSourceList(%d, %d): duplicate source %d", tc.n, tc.nGlobal, s)
			}
			seen[s] = struct{}{}
		}
	}
}

// TestLabelPropReportsExecutedRounds: LP used to report the REQUESTED
// iteration bound as Result.Iterations even when propagation reached
// its fixed point rounds earlier; it must report the executed count,
// like WCC and KC.
func TestLabelPropReportsExecutedRounds(t *testing.T) {
	// Two 5-cliques, no bridge: plurality LP settles in a handful of
	// rounds, far below the 50 requested.
	var edges []graph.Edge
	for b := int64(0); b < 2; b++ {
		base := b * 5
		for i := int64(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	mpi.Run(2, func(c *mpi.Comm) {
		var chunk []graph.Edge
		if c.Rank() == 0 {
			chunk = edges
		}
		dg, err := dgraph.FromEdgeChunks(c, 10, chunk, dgraph.BlockDist{N: 10, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		_, res := LabelProp(dg, 50)
		if res.Iterations <= 0 || res.Iterations >= 50 {
			t.Errorf("LP reported %d iterations for a run that converges in a handful", res.Iterations)
		}
		dg.Close()
	})
}

// TestLabelPropGlobalCommunityCount: Result.Value must be the GLOBAL
// distinct-community count — identical on every rank and equal to the
// count over the gathered labels — not the old rank-local count, which
// overcounted communities spanning rank boundaries.
func TestLabelPropGlobalCommunityCount(t *testing.T) {
	g := gen.ChungLu(1<<9, 1<<12, 2.2, 13)
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		labels, res := LabelProp(dg, 8)
		all := mpi.Allgatherv(dg.Comm, labels)
		distinct := map[int64]struct{}{}
		for _, rankLabels := range all {
			for _, l := range rankLabels {
				distinct[l] = struct{}{}
			}
		}
		if res.Value != float64(len(distinct)) {
			t.Errorf("rank %d: LP community count %v, want global %d",
				dg.Comm.Rank(), res.Value, len(distinct))
		}
	})
}

func TestApproxDiameterMatchesShared(t *testing.T) {
	g := gen.RandHD(2048, 8, 7)
	shared := g.MustBuild()
	want := shared.ApproxDiameter(6, 1)
	withDistributed(t, g, 4, func(dg *dgraph.Graph) {
		got := ApproxDiameter(dg, 6, 0)
		// Both estimators lower-bound the true diameter; with the same
		// far-level restart scheme they land in the same neighborhood.
		if got < want/2 || got > 2*want {
			t.Errorf("distributed diameter %d vs shared %d", got, want)
		}
	})
}

func TestApproxDiameterPathExact(t *testing.T) {
	var edges []graph.Edge
	const n = 64
	for i := int64(0); i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	mpi.Run(3, func(c *mpi.Comm) {
		lo := len(edges) * c.Rank() / c.Size()
		hi := len(edges) * (c.Rank() + 1) / c.Size()
		dg, err := dgraph.FromEdgeChunks(c, n, edges[lo:hi], dgraph.BlockDist{N: n, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if d := ApproxDiameter(dg, 4, 20); d != n-1 {
			t.Errorf("path diameter %d, want %d", d, n-1)
		}
	})
}
