package analytics

import (
	"sync/atomic"
	"time"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// BFS runs a distributed breadth-first search from the global vertex
// srcGID, returning hop levels for owned vertices (-1 if unreachable)
// and the eccentricity of the source. Each round performs local
// frontier expansion, pushes discoveries of remote-owned vertices to
// their owners, refreshes ghost copies, and tests global termination.
//
// On the async engine the rounds run split-phase AND pipelined to
// depth two: the boundary part of the frontier — the only part that
// can discover ghosts — expands first and its discoveries are pushed
// with BeginPush while the PREVIOUS depth's ghost-refresh round is
// still in flight, so two rounds of messages overlap each other plus
// the interior expansion. The refresh carries the frontier size as a
// piggybacked counter, so termination needs no per-round Allreduce on
// complete rank neighborhoods (incomplete ones fall back to an exact
// Allreduce every Graph.TermEpoch rounds). Levels are identical across
// engines: all discoveries within a round get the same depth, so
// expansion order cannot change results, and a boundary expansion that
// reads a one-round-stale ghost copy can only re-discover a vertex its
// owner already leveled — the owner keeps the first (correct) level
// and drops the redundant push.
//
//repro:deterministic
func BFS(g *dgraph.Graph, srcGID int64) (levels []int64, ecc int64) {
	return bfsRun(g, newEngine(g), srcGID)
}

// bfsRun is BFS over a caller-provided engine, so callers that run
// several sweeps (SCC, the sequential HC loop) share one engine and
// its accumulated sweep time.
func bfsRun(g *dgraph.Graph, e *engine, srcGID int64) (levels []int64, ecc int64) {
	if g.NGlobal == 0 {
		// Degenerate shard: no vertices anywhere, so no rank enters
		// the round loop and no collective runs — returning early is
		// symmetric. (Without the guard the sync loop would still run
		// one empty round, but the final eccentricity Allreduce over
		// an empty level array is pure noise.)
		return make([]int64, 0), 0
	}
	all := make([]int64, g.NTotal())
	for i := range all {
		all[i] = -1
	}
	var frontier []int32
	if lid, ok := g.G2L[srcGID]; ok {
		all[lid] = 0
		if !g.IsGhost(lid) {
			frontier = append(frontier, lid)
		}
	}
	if e.overlapped() {
		bfsPipelined(g, e, all, frontier)
	} else {
		depth := int64(0)
		for {
			rd := bfsRound{next: make([]int32, 0, len(frontier))}
			e.expandFrontier(&rd, all, frontier, depth, bfsAllFrontier)
			// Tell owners about remotely discovered vertices; merge their
			// pushes into our frontier (first discovery wins).
			recvL, recvP := g.PushToOwners(rd.ghostFound, rd.ghostLevels)
			next := rd.next
			for i, lid := range recvL {
				if all[lid] < 0 {
					all[lid] = recvP[i]
					next = append(next, lid)
				}
			}
			// Refresh ghost copies of the new frontier so the next round's
			// expansion does not rediscover them remotely.
			g.ExchangeInt64(next, all)
			if mpi.AllreduceScalar(g.Comm, int64(len(next)), mpi.Sum) == 0 {
				break
			}
			depth++
			frontier = next
		}
	}
	maxLevel := par.MaxInt64(0, g.NLocal, e.threads, 0, func(v int) int64 { return all[v] })
	return all[:g.NLocal], mpi.AllreduceScalar(g.Comm, maxLevel, mpi.Max)
}

// bfsRound accumulates one BFS round's discoveries. expandFrontier is
// the frontier-expansion step BOTH engines share — a single
// definition, so the bit-identical-across-engines invariant cannot
// drift between the sync loop and the pipelined loop: unvisited
// neighbors get this round's level, ghosts queue for the owner push,
// owned vertices join the next frontier.
type bfsRound struct {
	next        []int32
	ghostFound  []int32
	ghostLevels []int64
}

// Frontier filters for expandFrontier: the pipelined schedules expand
// the boundary part of the frontier (the only part that can discover
// ghosts) before the interior part.
const (
	bfsAllFrontier int8 = iota
	bfsBoundaryOnly
	bfsInteriorOnly
)

// expandChunk is the per-thread expansion body: scan the chunk's
// frontier vertices and claim unvisited neighbors with a CAS on the
// level array. Every same-round claim writes the same value (depth+1),
// so which thread wins is irrelevant to levels, and the CAS dedupes
// exactly — each discovery lands in exactly one thread's lane. Lane
// merge order (thread id, then scan order) can differ run to run at
// threads > 1, but only the ORDER of the frontier/push lists varies,
// never their contents; every downstream merge is first-discovery-wins
// over equal values.
//
//repro:hotpath
func (e *engine) expandChunk(lo, hi, tid int) {
	g, all, depth := e.g, e.ball, e.bdepth
	for i := lo; i < hi; i++ {
		v := e.bfrontier[i]
		if e.bfilter == bfsBoundaryOnly && !g.IsBoundaryVertex(v) {
			continue
		}
		if e.bfilter == bfsInteriorOnly && g.IsBoundaryVertex(v) {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if atomic.LoadInt64(&all[u]) >= 0 {
				continue
			}
			if !atomic.CompareAndSwapInt64(&all[u], -1, depth+1) {
				continue
			}
			if g.IsGhost(u) {
				e.qGhost.Push(tid, u)
			} else {
				e.qNext.Push(tid, u)
			}
		}
	}
}

// expandFrontier runs one parallel frontier-expansion sweep and
// appends the discoveries to rd: owned vertices to rd.next, ghosts to
// rd.ghostFound with level depth+1.
//
//repro:timing
func (e *engine) expandFrontier(rd *bfsRound, all []int64, frontier []int32, depth int64, filter int8) {
	start := time.Now()
	e.ball, e.bfrontier, e.bdepth, e.bfilter = all, frontier, depth, filter
	par.ForChunk(0, len(frontier), e.threads, e.expandBody)
	rd.next = e.qNext.MergeInto(rd.next)
	before := len(rd.ghostFound)
	rd.ghostFound = e.qGhost.MergeInto(rd.ghostFound)
	for range rd.ghostFound[before:] {
		rd.ghostLevels = append(rd.ghostLevels, depth+1)
	}
	e.sweepTime += time.Since(start)
}

// bfsPipelined is the overlapped BFS loop: depth d+1's discovery push
// is posted while depth d's ghost refresh is still in flight, keeping
// two value rounds in the exchanger pipeline at all times.
//
// Per round:
//
//	expand boundary frontier        (ghosts may be one refresh stale)
//	BeginPush(discoveries)          ── round 2r+1 in flight
//	expand interior frontier        ── overlaps both rounds
//	FlushValues                     ── settles round 2r-2's refresh,
//	                                   yields the PREVIOUS frontier's
//	                                   global size (termination)
//	FlushPush → merge discoveries   ── settles round 2r+1
//	BeginValues(new frontier)       ── round 2r+2 in flight
//
// Termination is observed one round late (the refresh that certifies a
// globally empty frontier settles while the next — necessarily empty —
// push round is already posted), so convergence costs one trailing
// empty round; on incomplete neighborhoods the exact Allreduce runs
// every e.termEpoch rounds, adding at most termEpoch-1 further empty
// rounds. Empty rounds expand an empty frontier and therefore cannot
// change levels.
func bfsPipelined(g *dgraph.Graph, e *engine, all []int64, frontier []int32) {
	ex := e.ex
	pendingValues := false
	prevLen := int64(0)
	depth := int64(0)
	round := 0
	for {
		round++
		rd := bfsRound{next: make([]int32, 0, len(frontier))}
		// Boundary frontier first: only boundary vertices have ghost
		// neighbors, so this prefix feeds the push round. The previous
		// round's ghost refresh may still be in flight, so a ghost
		// copy can be stale here; the resulting redundant push claims
		// a level no smaller than the owner's (rounds are level-
		// synchronous), and the owner's first-discovery-wins merge
		// drops it.
		e.expandFrontier(&rd, all, frontier, depth, bfsBoundaryOnly)
		ex.BeginPush(rd.ghostFound, rd.ghostLevels, nil)
		e.expandFrontier(&rd, all, frontier, depth, bfsInteriorOnly)
		done := false
		if pendingValues {
			// Settle the previous round's ghost refresh (posted before
			// this round's push — flushes are FIFO). Owner levels are
			// authoritative and final, so applying them after this
			// round's expansion only corrects stale ghost copies.
			outL, outP, tr := ex.FlushValues()
			for i, lid := range outL {
				all[lid] = outP[i]
			}
			pendingValues = false
			if e.complete {
				done = tr.Sum(0) == 0
			} else if round%e.termEpoch == 0 {
				done = mpi.AllreduceScalar(g.Comm, prevLen, mpi.Sum) == 0
			}
		}
		recvL, recvP, _ := ex.FlushPush()
		if done {
			// The previous frontier was globally empty, so this round
			// expanded nothing and the push just flushed was empty on
			// every rank: exit with the pipeline drained.
			break
		}
		next := rd.next
		for i, lid := range recvL {
			if all[lid] < 0 {
				all[lid] = recvP[i]
				next = append(next, lid)
			}
		}
		// Ghost refresh of the new frontier, with the frontier size
		// riding the messages as the termination counter; it settles
		// mid-next-round.
		e.payload = e.payload[:0]
		for _, v := range next {
			e.payload = append(e.payload, all[v])
		}
		var tally []int64
		if e.complete {
			e.tally[0] = int64(len(next))
			tally = e.tally[:1]
		}
		ex.BeginValues(next, e.payload, tally)
		pendingValues = true
		prevLen = int64(len(next))
		depth++
		frontier = next
	}
}

// HarmonicCentrality computes harmonic centrality for the given source
// vertices (the paper uses 100 sources on WDC12; scaled runs pass
// fewer): for each source a full BFS accumulates 1/d(s, v) onto every
// reached vertex. It returns the accumulated centralities for owned
// vertices.
//
// On the synchronous engine the sources run as a sequential loop of
// full BFS sweeps. On the async engine they run as HCWaves(g)
// concurrent waves sharing the exchanger's depth-k pipeline (see
// hc_waves.go): wave i's push and refresh rounds interleave with wave
// i+1's, per-wave termination counters ride the tally frames, and no
// per-source eccentricity Allreduce is paid. Centralities are
// bit-identical across engines, wave counts, and pipeline depths.
//
//repro:deterministic
//repro:timing
func HarmonicCentrality(g *dgraph.Graph, sources []int64) ([]float64, Result) {
	start := time.Now()
	hc := make([]float64, g.NLocal)
	e := newEngine(g)
	if e.overlapped() && g.NGlobal > 0 {
		harmonicWaves(g, e, sources, hc)
	} else {
		for _, s := range sources {
			levels, _ := bfsRun(g, e, s)
			par.For(0, g.NLocal, e.threads, func(v int) {
				if levels[v] > 0 {
					hc[v] += 1.0 / float64(levels[v])
				}
			})
		}
	}
	maxHC := par.MaxFloat64(0, len(hc), e.threads, 0, func(i int) float64 { return hc[i] })
	maxHC = mpi.AllreduceScalar(g.Comm, maxHC, mpi.Max)
	return hc, Result{Name: "HC", Iterations: len(sources), Time: time.Since(start), SweepTime: e.sweepTime, Value: maxHC}
}

// SCC extracts the pivot's strongly connected component with the FW-BW
// double sweep (forward reachability, backward reachability, and their
// intersection) from the globally maximum-degree vertex. On the
// undirected proxies both sweeps coincide (see the package comment for
// the substitution rationale); both are executed to preserve the
// communication pattern. Returns owned membership flags (1 = in the
// pivot's SCC) and the component size.
//
//repro:deterministic
//repro:timing
func SCC(g *dgraph.Graph) ([]int64, Result) {
	start := time.Now()

	// Pivot selection: globally maximum degree, ties to smaller gid.
	var bestDeg, bestGID int64 = -1, -1
	for v := 0; v < g.NLocal; v++ {
		d := g.Degree(int32(v))
		if d > bestDeg || (d == bestDeg && g.L2G[v] < bestGID) {
			bestDeg, bestGID = d, g.L2G[v]
		}
	}
	cands := mpi.Allgatherv(g.Comm, []int64{bestDeg, bestGID})
	pivot := int64(-1)
	var pivotDeg int64 = -1
	for _, c := range cands {
		deg, gid := c[0], c[1]
		if gid < 0 {
			continue // rank owned no vertices
		}
		if deg > pivotDeg || (deg == pivotDeg && gid < pivot) {
			pivotDeg, pivot = deg, gid
		}
	}
	if pivot < 0 {
		// Empty graph: no rank owned a vertex, so there is no pivot to
		// sweep from. Every rank sees the same empty candidate list, so
		// returning before the BFS sweeps is collectively symmetric.
		return make([]int64, 0), Result{Name: "SCC", Iterations: 0, Time: time.Since(start), Value: 0}
	}

	e := newEngine(g)
	fw, _ := bfsRun(g, e, pivot) // forward sweep
	bw, _ := bfsRun(g, e, pivot) // backward sweep (transpose == same graph)

	member := make([]int64, g.NLocal)
	sizeLocal := par.ReduceInt64(0, g.NLocal, e.threads, func(v int) int64 {
		if fw[v] >= 0 && bw[v] >= 0 {
			member[v] = 1
			return 1
		}
		return 0
	})
	size := mpi.AllreduceScalar(g.Comm, sizeLocal, mpi.Sum)
	return member, Result{Name: "SCC", Iterations: 2, Time: time.Since(start), SweepTime: e.sweepTime, Value: float64(size)}
}

// RunAll executes the paper's six analytics in Fig. 8's order (HC, KC,
// LP, PR, SCC, WCC) with scaled default parameters and returns their
// results.
//
//repro:deterministic
func RunAll(g *dgraph.Graph, hcSources int) []Result {
	srcs := HCSourceList(hcSources, g.NGlobal)
	_, hc := HarmonicCentrality(g, srcs)
	_, kc := KCore(g, 50)
	_, lp := LabelProp(g, 10)
	_, pr := PageRank(g, 20, 0.85)
	_, scc := SCC(g)
	_, wcc := WCC(g)
	return []Result{hc, kc, lp, pr, scc, wcc}
}

// HCSourceList derives up to n DISTINCT harmonic-centrality sources by
// Fibonacci-hashing the vertex space — RunAll's source schedule,
// shared with the harness so experiments measure the same access
// pattern. The hash is injective only while the multiplier and nGlobal
// are coprime; the dedupe makes the no-source-counted-twice guarantee
// unconditional, and a request for more distinct sources than vertices
// stops at nGlobal.
//
//repro:deterministic
func HCSourceList(n int, nGlobal int64) []int64 {
	srcs := make([]int64, 0, n)
	seen := make(map[int64]struct{}, n)
	for i := 0; len(srcs) < n && int64(i) < nGlobal; i++ {
		s := (int64(i) * 2654435761) % nGlobal
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		srcs = append(srcs, s)
	}
	return srcs
}

// ApproxDiameter estimates the graph diameter with the paper's §IV
// procedure, distributed: run `rounds` BFS sweeps, each starting from
// a vertex on the farthest level of the previous sweep, and report the
// largest eccentricity seen. Root selection is deterministic (smallest
// gid on the farthest level) so every rank agrees without extra
// communication beyond the existing reductions.
//
//repro:deterministic
func ApproxDiameter(g *dgraph.Graph, rounds int, startGID int64) int64 {
	if g.NGlobal == 0 || rounds <= 0 {
		return 0
	}
	src := startGID % g.NGlobal
	var best int64
	for i := 0; i < rounds; i++ {
		levels, ecc := BFS(g, src)
		if ecc > best {
			best = ecc
		}
		// Next source: globally smallest gid on the farthest level.
		next := int64(-1)
		for v := 0; v < g.NLocal; v++ {
			if levels[v] == ecc && (next < 0 || g.L2G[v] < next) {
				next = g.L2G[v]
			}
		}
		// Encode "no candidate" as max so Min picks a real gid.
		if next < 0 {
			next = g.NGlobal
		}
		next = mpi.AllreduceScalar(g.Comm, next, mpi.Min)
		if next >= g.NGlobal {
			break // no vertex reached; disconnected from everything
		}
		src = next
	}
	return best
}
