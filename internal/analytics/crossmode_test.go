package analytics

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// crossModeRun is one engine pass over the five overlapped analytics.
type crossModeRun struct {
	bfsLevels []int64
	bfsEcc    int64
	pr        []float64
	prNorm    float64
	wcc       []int64
	core      []int64
	lp        []int64
	sent      int64
	reduce    int64
}

func execCrossMode(c *mpi.Comm, dg *dgraph.Graph, async bool) crossModeRun {
	dg.SetAsyncExchange(async)
	c.ResetStats()
	var r crossModeRun
	r.bfsLevels, r.bfsEcc = BFS(dg, 0)
	var prRes Result
	r.pr, prRes = PageRank(dg, 10, 0.85)
	r.prNorm = prRes.Value
	r.wcc, _ = WCC(dg)
	r.core, _ = KCore(dg, 20)
	r.lp, _ = LabelProp(dg, 8)
	r.reduce = c.Stats().ReductionOps
	r.sent = mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
	return r
}

// compareCrossMode asserts two engine passes produced bit-identical
// per-vertex results.
func compareCrossMode(t *testing.T, dg *dgraph.Graph, sync, async crossModeRun) {
	t.Helper()
	c := dg.Comm
	if sync.bfsEcc != async.bfsEcc {
		t.Errorf("rank %d: BFS eccentricity %d vs %d", c.Rank(), sync.bfsEcc, async.bfsEcc)
	}
	if sync.prNorm != async.prNorm {
		t.Errorf("rank %d: PR norm %v vs %v (must be bit-identical)", c.Rank(), sync.prNorm, async.prNorm)
	}
	for v := 0; v < dg.NLocal; v++ {
		if sync.bfsLevels[v] != async.bfsLevels[v] {
			t.Errorf("rank %d: BFS level(gid %d) %d vs %d",
				c.Rank(), dg.L2G[v], sync.bfsLevels[v], async.bfsLevels[v])
			return
		}
		if sync.pr[v] != async.pr[v] {
			t.Errorf("rank %d: PageRank(gid %d) %v vs %v (must be bit-identical)",
				c.Rank(), dg.L2G[v], sync.pr[v], async.pr[v])
			return
		}
		if sync.wcc[v] != async.wcc[v] {
			t.Errorf("rank %d: WCC label(gid %d) %d vs %d",
				c.Rank(), dg.L2G[v], sync.wcc[v], async.wcc[v])
			return
		}
		if sync.core[v] != async.core[v] {
			t.Errorf("rank %d: coreness(gid %d) %d vs %d",
				c.Rank(), dg.L2G[v], sync.core[v], async.core[v])
			return
		}
		if sync.lp[v] != async.lp[v] {
			t.Errorf("rank %d: LP label(gid %d) %d vs %d",
				c.Rank(), dg.L2G[v], sync.lp[v], async.lp[v])
			return
		}
	}
}

// Every analytic must produce identical results on the synchronous and
// overlapped async-delta engines — same boundary-first sweeps, same
// fixed points — while the async engine ships fewer elements and,
// on this complete rank neighborhood, performs no per-round Allreduce
// at all: its reduction count is a small per-run constant (one
// completeness detection, BFS's eccentricity, PageRank's prologue and
// final norm, WCC's component count, K-Core's max).
func TestAnalyticsCrossModeDeterminism(t *testing.T) {
	g := gen.ChungLu(1<<10, 1<<13, 2.2, 9)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		sync := execCrossMode(c, dg, false)
		async := execCrossMode(c, dg, true)
		compareCrossMode(t, dg, sync, async)
		complete := dg.AsyncExchanger().NeighborhoodComplete() // collective (cached after exec)
		if c.Rank() == 0 {
			if async.sent >= sync.sent {
				t.Errorf("async analytics sent %d elements, sync %d (want strictly less)", async.sent, sync.sent)
			}
			if !complete {
				t.Errorf("test graph must have a complete rank neighborhood")
				return
			}
			// O(1) per analytic, independent of round counts: the
			// convergence counters ride the value messages.
			const maxAsyncReduce = 8
			if async.reduce > maxAsyncReduce {
				t.Errorf("async analytics performed %d Allreduces, want <= %d (counters must piggyback)",
					async.reduce, maxAsyncReduce)
			}
			if async.reduce >= sync.reduce {
				t.Errorf("async Allreduces %d not below sync %d", async.reduce, sync.reduce)
			}
		}
	})
}

// The piggybacked counters are only exact on complete rank
// neighborhoods; on an incomplete one (a path-of-blocks layout where
// rank 0 never talks to rank 2) the engines must detect it and fall
// back to exact per-round Allreduce termination — results still
// bit-identical to sync.
func TestAnalyticsCrossModeIncompleteNeighborhood(t *testing.T) {
	g := gen.Grid3D(8, 8, 8)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		if dg.AsyncExchanger().NeighborhoodComplete() { // collective
			if c.Rank() == 0 {
				t.Errorf("blocked 3D grid on 3 ranks should have an incomplete rank neighborhood")
			}
			return
		}
		sync := execCrossMode(c, dg, false)
		async := execCrossMode(c, dg, true)
		compareCrossMode(t, dg, sync, async)
	})
}
