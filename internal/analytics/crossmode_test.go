package analytics

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// Every analytic must produce identical results on the synchronous and
// async-delta exchange transports — the routing in dgraph is a pure
// transport change — while the async transport ships fewer elements.
func TestAnalyticsCrossModeDeterminism(t *testing.T) {
	g := gen.ChungLu(1<<10, 1<<13, 2.2, 9)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}

		type run struct {
			bfsLevels []int64
			bfsEcc    int64
			pr        []float64
			wcc       []int64
			core      []int64
			sent      int64
		}
		exec := func(async bool) run {
			dg.SetAsyncExchange(async)
			c.ResetStats()
			var r run
			r.bfsLevels, r.bfsEcc = BFS(dg, 0)
			r.pr, _ = PageRank(dg, 10, 0.85)
			r.wcc, _ = WCC(dg)
			r.core, _ = KCore(dg, 20)
			r.sent = mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
			return r
		}
		sync := exec(false)
		async := exec(true)

		if sync.bfsEcc != async.bfsEcc {
			t.Errorf("rank %d: BFS eccentricity %d vs %d", c.Rank(), sync.bfsEcc, async.bfsEcc)
		}
		for v := 0; v < dg.NLocal; v++ {
			if sync.bfsLevels[v] != async.bfsLevels[v] {
				t.Errorf("rank %d: BFS level(gid %d) %d vs %d",
					c.Rank(), dg.L2G[v], sync.bfsLevels[v], async.bfsLevels[v])
				return
			}
			if sync.pr[v] != async.pr[v] {
				t.Errorf("rank %d: PageRank(gid %d) %v vs %v (must be bit-identical)",
					c.Rank(), dg.L2G[v], sync.pr[v], async.pr[v])
				return
			}
			if sync.wcc[v] != async.wcc[v] {
				t.Errorf("rank %d: WCC label(gid %d) %d vs %d",
					c.Rank(), dg.L2G[v], sync.wcc[v], async.wcc[v])
				return
			}
			if sync.core[v] != async.core[v] {
				t.Errorf("rank %d: coreness(gid %d) %d vs %d",
					c.Rank(), dg.L2G[v], sync.core[v], async.core[v])
				return
			}
		}
		if c.Rank() == 0 && async.sent >= sync.sent {
			t.Errorf("async analytics sent %d elements, sync %d (want strictly less)", async.sent, sync.sent)
		}
	})
}
