// Cross-thread determinism: every analytic must produce bit-identical
// results at every intra-rank thread count, in both exchange modes, on
// both rank substrates. This is the contract behind the ThreadsPerRank
// knob — the parallel sweeps are phase-Jacobi with tid-ordered merges,
// so chunk boundaries can never change a value — and the test is the
// acceptance gate for it: threads {1,2,4,8} x {sync,async} x
// {proc,socket} all compared against the serial synchronous reference.
//
// The file is an external test package so it can use internal/mpitest's
// transport factories (mpitest imports the repro facade, which imports
// analytics — an in-package test would cycle).
package analytics_test

import (
	"fmt"
	"testing"

	"repro/internal/analytics"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/mpitest"
)

const ctRanks = 4

// ctGen is the fixed workload: small enough that the full matrix runs
// in seconds, irregular enough that every rank owns boundary AND
// interior vertices (both sweep phases exercised).
func ctGen() *gen.Generator { return gen.ChungLu(1<<10, 1<<13, 2.2, 9) }

// ctRank is one rank's copied analytic outputs.
type ctRank struct {
	bfs, wcc, core, lp []int64
	pr, hc             []float64
	ecc                int64
	prNorm, hcMax      float64
}

// ctRun executes the six analytics on one world and copies every
// rank's local results out (ranks share this process's memory on both
// factories, so indexing by rank is race-free).
func ctRun(t *testing.T, factory mpitest.Factory, threads int, async bool) []ctRank {
	t.Helper()
	g := ctGen()
	out := make([]ctRank, ctRanks)
	mpi.RunWorld(factory(t, ctRanks), threads, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		dg.SetAsyncExchange(async)
		r := &ctRank{}
		var lv []int64
		lv, r.ecc = analytics.BFS(dg, 0)
		r.bfs = append(r.bfs, lv[:dg.NLocal]...)
		pr, prRes := analytics.PageRank(dg, 10, 0.85)
		r.pr, r.prNorm = append(r.pr, pr...), prRes.Value
		wcc, _ := analytics.WCC(dg)
		r.wcc = append(r.wcc, wcc...)
		core, _ := analytics.KCore(dg, 20)
		r.core = append(r.core, core...)
		lp, _ := analytics.LabelProp(dg, 8)
		r.lp = append(r.lp, lp...)
		hc, hcRes := analytics.HarmonicCentrality(dg, analytics.HCSourceList(4, g.N))
		r.hc, r.hcMax = append(r.hc, hc...), hcRes.Value
		out[c.Rank()] = *r
	})
	return out
}

// ctCompare asserts two runs are bit-identical on every rank.
func ctCompare(t *testing.T, label string, ref, got []ctRank) {
	t.Helper()
	for rank := range ref {
		a, b := &ref[rank], &got[rank]
		if a.ecc != b.ecc || a.prNorm != b.prNorm || a.hcMax != b.hcMax {
			t.Errorf("%s: rank %d scalars diverge: ecc %d/%d prNorm %v/%v hcMax %v/%v",
				label, rank, a.ecc, b.ecc, a.prNorm, b.prNorm, a.hcMax, b.hcMax)
		}
		for v := range a.bfs {
			if a.bfs[v] != b.bfs[v] || a.wcc[v] != b.wcc[v] || a.core[v] != b.core[v] || a.lp[v] != b.lp[v] {
				t.Errorf("%s: rank %d int results diverge at lid %d", label, rank, v)
				break
			}
			if a.pr[v] != b.pr[v] || a.hc[v] != b.hc[v] {
				t.Errorf("%s: rank %d float results diverge at lid %d (must be bit-identical)", label, rank, v)
				break
			}
		}
	}
}

// TestAnalyticsCrossThreadDeterminism is the full acceptance matrix.
// The serial synchronous proc run is the reference; every other
// (threads, mode, substrate) combination must reproduce it bit for
// bit — including the float analytics, whose sums fold in chunk-index
// order regardless of which worker finished first.
func TestAnalyticsCrossThreadDeterminism(t *testing.T) {
	ref := ctRun(t, mpitest.ProcFactory, 1, false)
	factories := []struct {
		name    string
		factory mpitest.Factory
	}{{"proc", mpitest.ProcFactory}, {"socket", mpitest.UnixSocketFactory}}
	threadCounts := mpitest.CrossThreadCounts(testing.Short())
	for _, nf := range factories {
		name, factory := nf.name, nf.factory
		for _, threads := range threadCounts {
			for _, async := range []bool{false, true} {
				label := fmt.Sprintf("%s/threads=%d/async=%v", name, threads, async)
				if name == "proc" && threads == 1 && !async {
					continue // the reference itself
				}
				ctCompare(t, label, ref, ctRun(t, factory, threads, async))
			}
		}
	}
}
