package analytics

import (
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Multi-wave Harmonic Centrality. HC runs one full distributed BFS per
// source, and the waves are completely independent — yet the
// sequential loop pays every source the full round-trip latency of
// every BFS level, one after another. This engine batches sources into
// concurrent waves that share one deep exchange pipeline: with the
// exchanger built at depth d (Graph.SetPipeDepth), d/2 waves advance
// together, each keeping its discovery-push round and its ghost-refresh
// round in flight — so the pipeline always holds d rounds while each
// rank sweeps the waves' frontiers back to back.
//
// The schedule is a fixed four-phase cycle over the batch's wave slots
// (skipping inactive ones), which keeps the exchanger's FIFO flush
// discipline intact — posts and flushes walk the slots in the same
// order, so the oldest pending round is always the one being settled:
//
//	phase P: per wave — expand boundary frontier, BeginPush the
//	         discoveries, expand interior frontier
//	         (pipeline now holds k refreshes + k pushes = depth rounds)
//	phase F: per wave — FlushValues the wave's refresh from the
//	         PREVIOUS cycle: correct stale ghost copies, fold the
//	         wave's termination counter
//	phase M: per wave — FlushPush: merge remote discoveries
//	         first-discovery-wins into the next frontier
//	phase V: per wave — BeginValues the new frontier's levels, with
//	         the frontier size riding as the wave's termination counter
//
// Every wave's rounds are stamped with its slot as the round tag's
// wave id (DeltaExchanger.SetRoundWave), so a skewed schedule panics
// naming the wave and the round. Each wave individually runs exactly
// the single-BFS pipelined schedule (bfsPipelined): same expansion
// order, same one-cycle ghost staleness, same first-discovery-wins
// merge — so its levels are bit-identical to a solo BFS, and because
// the per-source contributions are accumulated in source order after
// the batch completes, the centralities are bit-identical to the
// sequential loop's float sums at every depth and in both modes.
//
// Termination is per wave and piggybacked: the counter a wave's
// refresh carries is folded one cycle late (one trailing empty cycle
// per wave, which expands nothing), and on incomplete rank
// neighborhoods each wave falls back to its own exact Allreduce every
// termEpoch of ITS rounds — wave round counts are identical on every
// rank, so the collective schedule stays agreed. A finished wave goes
// quiet (posts nothing, flushes nothing) while its batch mates drain;
// slots refill only at batch boundaries, which is what keeps
// accumulation order — and therefore the float sums — deterministic.
//
// On complete neighborhoods a wave costs ZERO reductions: unlike the
// sequential loop, which pays one eccentricity Allreduce per source
// inside BFS, the wave engine never needs eccentricities at all.

// hcWave is one BFS wave's private state: its level array, frontier,
// and termination bookkeeping. Waves share the exchanger pipeline but
// nothing else.
type hcWave struct {
	all      []int64
	frontier []int32
	rd       bfsRound
	payload  []int64
	tally    [1]int64 // per-wave: BeginValues aliases it until the flush
	prevLen  int64
	depth    int64
	round    int
	pendingV bool
	active   bool
	done     bool
}

// reset re-arms the wave for a new source.
func (w *hcWave) reset(g *dgraph.Graph, src int64) {
	for i := range w.all {
		w.all[i] = -1
	}
	w.frontier = w.frontier[:0]
	if lid, ok := g.G2L[src]; ok {
		w.all[lid] = 0
		if !g.IsGhost(lid) {
			w.frontier = append(w.frontier, lid)
		}
	}
	w.prevLen, w.depth, w.round = 0, 0, 0
	w.pendingV, w.done = false, false
	w.active = true
}

// HCWaves reports how many BFS waves HarmonicCentrality runs
// concurrently on g: half the exchange pipeline depth on the async
// engine (each wave keeps one push and one refresh round in flight),
// 1 on the synchronous engine.
//
//repro:deterministic
func HCWaves(g *dgraph.Graph) int {
	if !g.AsyncExchange() {
		return 1
	}
	k := g.PipeDepth() / 2
	if k < 1 {
		k = 1
	}
	if k > mpi.MaxTagWave+1 {
		k = mpi.MaxTagWave + 1
	}
	return k
}

// harmonicWaves runs the batched multi-wave BFS sweeps and accumulates
// 1/d(s,v) onto hc for every source, in source order.
func harmonicWaves(g *dgraph.Graph, e *engine, sources []int64, hc []float64) {
	ex := e.ex
	k := HCWaves(g)
	waves := make([]*hcWave, k)
	for i := range waves {
		waves[i] = &hcWave{all: make([]int64, g.NTotal())}
	}
	for lo := 0; lo < len(sources); lo += k {
		batch := sources[lo:min(lo+k, len(sources))]
		active := len(batch)
		for slot, s := range batch {
			waves[slot].reset(g, s)
		}
		for active > 0 {
			// Phase P: post every active wave's discovery push. The
			// wave's own refresh from the previous cycle may still be
			// in flight, so ghost reads here carry the same one-cycle
			// staleness as the solo pipelined BFS — redundant pushes
			// are deduped owner-side.
			for slot, w := range waves[:len(batch)] {
				if !w.active {
					continue
				}
				w.round++
				w.rd = bfsRound{next: make([]int32, 0, len(w.frontier))}
				ex.SetRoundWave(slot)
				e.expandFrontier(&w.rd, w.all, w.frontier, w.depth, bfsBoundaryOnly)
				ex.BeginPush(w.rd.ghostFound, w.rd.ghostLevels, nil)
				e.expandFrontier(&w.rd, w.all, w.frontier, w.depth, bfsInteriorOnly)
			}
			// Phase F: settle the refreshes posted last cycle (the
			// oldest rounds in the pipeline), oldest slot first. Owner
			// levels are authoritative, so applying them after this
			// cycle's expansion only corrects stale ghost copies.
			for _, w := range waves[:len(batch)] {
				if !w.active || !w.pendingV {
					continue
				}
				outL, outP, tr := ex.FlushValues()
				for i, lid := range outL {
					w.all[lid] = outP[i]
				}
				w.pendingV = false
				if e.complete {
					w.done = tr.Sum(0) == 0
				} else if w.round%e.termEpoch == 0 {
					w.done = mpi.AllreduceScalar(g.Comm, w.prevLen, mpi.Sum) == 0
				}
			}
			// Phase M: settle the pushes, merge discoveries
			// first-discovery-wins. A wave whose previous frontier was
			// certified globally empty expanded nothing this cycle —
			// its push was empty on every rank — and retires with the
			// pipeline drained of its rounds.
			for _, w := range waves[:len(batch)] {
				if !w.active {
					continue
				}
				recvL, recvP, _ := ex.FlushPush()
				if w.done {
					w.active = false
					active--
					continue
				}
				for i, lid := range recvL {
					if w.all[lid] < 0 {
						w.all[lid] = recvP[i]
						w.rd.next = append(w.rd.next, lid)
					}
				}
			}
			// Phase V: refresh each surviving wave's new frontier on
			// the ghosting ranks, frontier size riding as the wave's
			// termination counter; it settles mid-next-cycle.
			for slot, w := range waves[:len(batch)] {
				if !w.active {
					continue
				}
				next := w.rd.next
				ex.SetRoundWave(slot)
				w.payload = w.payload[:0]
				for _, v := range next {
					w.payload = append(w.payload, w.all[v])
				}
				var tally []int64
				if e.complete {
					w.tally[0] = int64(len(next))
					tally = w.tally[:1]
				}
				ex.BeginValues(next, w.payload, tally)
				w.pendingV = true
				w.prevLen = int64(len(next))
				w.depth++
				w.frontier = next
			}
		}
		// Accumulate the batch in source order: levels are
		// bit-identical to solo BFS runs, so summing in source order
		// reproduces the sequential loop's float sums exactly.
		for slot := range batch {
			all := waves[slot].all
			// Parallel over vertices, sequential over slots: each hc[v]
			// still accumulates its sources in source order, so the
			// float sums match the sequential loop bit for bit.
			par.For(0, g.NLocal, e.threads, func(v int) {
				if all[v] > 0 {
					hc[v] += 1.0 / float64(all[v])
				}
			})
		}
	}
	ex.SetRoundWave(0)
}
