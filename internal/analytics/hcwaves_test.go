package analytics

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// Multi-wave Harmonic Centrality: the batched wave engine must be a
// pure scheduling change — per-vertex centralities bit-identical to
// the sequential sync-mode loop at every pipeline depth, on complete
// and incomplete rank neighborhoods alike — while actually driving the
// deeper pipeline (2 rounds in flight per wave) and issuing fewer
// reductions than the sequential loop.

// hcReference computes the sync-mode (sequential-loop) centralities.
func hcReference(dg *dgraph.Graph, srcs []int64) ([]float64, float64) {
	dg.SetAsyncExchange(false)
	hc, res := HarmonicCentrality(dg, srcs)
	return hc, res.Value
}

// hcSources derives n in-range sources with a few duplicates of
// structure (hashed like RunAll, plus the first vertices) — enough to
// exercise partial final batches when n is not a wave multiple.
func hcSources(n int, nGlobal int64) []int64 {
	srcs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		srcs = append(srcs, (int64(i)*2654435761)%nGlobal)
	}
	return srcs
}

func TestHCWavesBitIdenticalAcrossDepthsAndModes(t *testing.T) {
	g := gen.ChungLu(1<<10, 1<<13, 2.2, 9)
	const nsrc = 9 // not a multiple of any tested wave count
	mpi.Run(4, func(c *mpi.Comm) {
		build := func() *dgraph.Graph {
			dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
				dgraph.HashDist{P: c.Size(), Seed: 7})
			if err != nil {
				// Errorf, not Fatalf: FailNow must only run on the test
				// goroutine, and a Goexit here would strand the sibling
				// ranks inside the construction collective.
				t.Errorf("rank %d: %v", c.Rank(), err)
				return nil
			}
			return dg
		}
		srcs := hcSources(nsrc, g.N)
		ref := build()
		if ref == nil {
			return
		}
		want, wantMax := hcReference(ref, srcs)
		ref.Close()

		for _, depth := range []int{2, 3, 4, 8} {
			dg := build()
			if dg == nil {
				return
			}
			dg.SetPipeDepth(depth)
			dg.SetAsyncExchange(true)
			wantWaves := depth / 2
			if wantWaves < 1 {
				wantWaves = 1
			}
			if got := HCWaves(dg); got != wantWaves {
				t.Errorf("rank %d: HCWaves at depth %d = %d, want %d", c.Rank(), depth, got, wantWaves)
			}
			hc, res := HarmonicCentrality(dg, srcs)
			if res.Value != wantMax {
				t.Errorf("rank %d depth %d: max centrality %v, want %v (must be bit-identical)",
					c.Rank(), depth, res.Value, wantMax)
			}
			if res.Iterations != nsrc {
				t.Errorf("rank %d depth %d: Iterations = %d, want %d sources", c.Rank(), depth, res.Iterations, nsrc)
			}
			for v := 0; v < dg.NLocal; v++ {
				if hc[v] != want[v] {
					t.Errorf("rank %d depth %d: hc(gid %d) = %v, want %v (must be bit-identical)",
						c.Rank(), depth, dg.L2G[v], hc[v], want[v])
					break
				}
			}
			// The wave engine must actually fill the deeper pipeline:
			// once every wave of a full batch has both its push and its
			// refresh in flight, the high-water mark is 2 rounds per
			// wave.
			if got, want := dg.AsyncExchanger().MaxDepth, 2*wantWaves; got != want {
				t.Errorf("rank %d depth %d: pipeline high-water mark %d, want %d (waves not overlapped)",
					c.Rank(), depth, got, want)
			}
			dg.Close()
		}
	})
}

// On an incomplete rank neighborhood the waves cannot piggyback their
// termination counters and each falls back to its own exact Allreduce
// on its private round schedule — results still bit-identical, at the
// default epoch and with termination checks deferred.
func TestHCWavesIncompleteNeighborhoodAcrossDepths(t *testing.T) {
	g := gen.Grid3D(8, 8, 8)
	mpi.Run(3, func(c *mpi.Comm) {
		build := func() *dgraph.Graph {
			dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
				dgraph.BlockDist{N: g.N, P: c.Size()})
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return nil
			}
			return dg
		}
		probe := build()
		if probe == nil {
			return
		}
		if probe.AsyncExchanger().NeighborhoodComplete() { // collective
			t.Errorf("blocked 3D grid on 3 ranks should have an incomplete rank neighborhood")
			probe.Close()
			return
		}
		probe.Close()
		srcs := hcSources(5, g.N)
		ref := build()
		if ref == nil {
			return
		}
		want, wantMax := hcReference(ref, srcs)
		ref.Close()
		for _, depth := range []int{2, 4} {
			for _, termEpoch := range []int{0, 3} {
				dg := build()
				if dg == nil {
					return
				}
				dg.SetPipeDepth(depth)
				dg.SetTermEpoch(termEpoch)
				dg.SetAsyncExchange(true)
				hc, res := HarmonicCentrality(dg, srcs)
				if res.Value != wantMax {
					t.Errorf("rank %d depth %d epoch %d: max centrality %v, want %v",
						c.Rank(), depth, termEpoch, res.Value, wantMax)
				}
				for v := 0; v < dg.NLocal; v++ {
					if hc[v] != want[v] {
						t.Errorf("rank %d depth %d epoch %d: hc(gid %d) = %v, want %v",
							c.Rank(), depth, termEpoch, dg.L2G[v], hc[v], want[v])
						break
					}
				}
				dg.Close()
			}
		}
	})
}

// The multi-wave engine must beat the sequential loop on reductions:
// on a complete neighborhood its per-source cost is zero (no
// eccentricity Allreduce, termination piggybacked), leaving only the
// final max-centrality reduction.
func TestHCWavesFewerReductions(t *testing.T) {
	g := gen.ChungLu(1<<9, 1<<12, 2.2, 5)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		srcs := hcSources(8, g.N)
		count := func(async bool) int64 {
			dg.SetAsyncExchange(async)
			c.ResetStats()
			before := c.Stats().ReductionOps
			HarmonicCentrality(dg, srcs)
			return c.Stats().ReductionOps - before
		}
		syncRed := count(false)
		asyncRed := count(true)
		dg.Close()
		if c.Rank() == 0 {
			if asyncRed >= syncRed {
				t.Errorf("multi-wave HC performed %d reductions, sequential loop %d (want strictly fewer)",
					asyncRed, syncRed)
			}
			// Complete neighborhood: only the final max-centrality
			// Allreduce remains, independent of the source count.
			if asyncRed > 1 {
				t.Errorf("multi-wave HC performed %d reductions on a complete neighborhood, want <= 1", asyncRed)
			}
		}
	})
}
