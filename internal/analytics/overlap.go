package analytics

import (
	"time"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Overlapped analytics engine. In sync mode every iteration of the
// label-propagation-style analytics (WCC, KC, LP) blocks twice: once
// in the value exchange and once in the termination Allreduce. The
// engine here removes both waits in async mode with the same two ideas
// the partitioner uses:
//
//   - Split-phase rounds: every sweep relaxes boundary vertices first,
//     posts their new values with DeltaExchanger.BeginValues, relaxes
//     interior vertices — which read no ghost values — while the
//     messages are in flight, and settles ghosts at FlushValues.
//     Both modes sweep in the same boundary-first order, so results
//     stay bit-identical.
//   - Piggybacked convergence counters: the per-round changed-vertex
//     count rides the value messages as a tally frame. On a complete
//     rank neighborhood the folded counter is the exact global count
//     (one round stale — the price is a single trailing no-op round
//     instead of one Allreduce per round); on incomplete neighborhoods
//     the engine falls back to the exact Allreduce every
//     Graph.TermEpoch rounds (default: every round), the analytics'
//     equivalent of the partitioner's SizeEpoch resync — a fixed point
//     reached mid-epoch costs at most TermEpoch-1 extra no-op rounds
//     before the next check observes it.
//
// BFS additionally pipelines its rounds (two in flight, see
// bfsPipelined), Harmonic Centrality batches whole BFS waves onto the
// depth-k pipeline (hc_waves.go), and analytics with a final max
// reduction can ride it on the same tally frames (engine.aux, used by
// K-Core).

// engine bundles the mode-selected exchange machinery of one analytic
// run: blocking collective helpers in sync mode, split-phase delta
// rounds with piggybacked counters in async mode.
type engine struct {
	g         *dgraph.Graph
	ex        *dgraph.DeltaExchanger // non-nil in overlapped (async) mode
	complete  bool                   // piggybacked counters are exact
	termEpoch int                    // incomplete-neighborhood Allreduce cadence (≥1)

	// aux, when set before propagate, is an extra non-negative counter
	// piggybacked next to the convergence counter on complete
	// neighborhoods and max-combined across ranks (TallyRound.Max). At
	// the round that detects convergence the propagated values are
	// final, so the fold delivers the analytic's global maximum for
	// free — K-Core's coreness maximum rides this instead of a trailing
	// Allreduce. auxVal/auxOK hold the result when the run terminated
	// through the piggybacked counter.
	aux    func() int64
	auxVal int64
	auxOK  bool

	// Arenas reused across rounds.
	changed []int32
	payload []int64
	tally   [2]int64

	// Intra-rank parallel sweep machinery. Each relaxation sweep fans
	// the vertex list across threads with par.ForChunk; workers queue
	// (vertex, value) updates into per-thread lanes, which merge in
	// thread-id order — contiguous ascending chunks, so merged order is
	// ascending list order at every thread count — and are applied on
	// the main goroutine. sweepBody is the stored chunk body
	// (relaxChunk bound once at construction, so steady-state sweeps
	// allocate no closures); list and relax are the per-sweep inputs it
	// reads.
	threads   int
	q         *par.Queues[relaxUpd]
	recs      []relaxUpd
	list      []int32
	relax     func(v int32, tid int) (int64, bool)
	sweepBody func(lo, hi, tid int)
	sweepTime time.Duration

	// BFS parallel-expansion machinery (bfs.go): per-thread discovery
	// queues — owned vertices and ghosts separately — plus the stored
	// chunk body and its per-sweep inputs. Discovery uses a CAS on the
	// level array, so every same-round write carries the same value
	// (depth+1) and the winner is irrelevant: level arrays and frontier
	// SETS are bit-identical at every thread count.
	qNext      *par.Queues[int32]
	qGhost     *par.Queues[int32]
	ball       []int64
	bfrontier  []int32
	bdepth     int64
	bfilter    int8
	expandBody func(lo, hi, tid int)
}

// relaxUpd is one sweep update: vertex v takes value val when the
// sweep's records are applied.
type relaxUpd struct {
	v   int32
	val int64
}

// newEngine derives the engine from the graph's exchange mode. The
// completeness flag is a cached read — the collective detection ran
// when the graph's exchanger was constructed.
func newEngine(g *dgraph.Graph) *engine {
	e := &engine{g: g, termEpoch: g.TermEpoch(), threads: g.Comm.Threads()}
	if e.threads < 1 {
		e.threads = 1
	}
	e.q = par.NewQueues[relaxUpd](e.threads)
	e.sweepBody = e.relaxChunk
	e.qNext = par.NewQueues[int32](e.threads)
	e.qGhost = par.NewQueues[int32](e.threads)
	e.expandBody = e.expandChunk
	if g.AsyncExchange() {
		e.ex = g.AsyncExchanger()
		e.complete = e.ex.NeighborhoodComplete()
	}
	return e
}

// relaxChunk relaxes the [lo, hi) slice of the current sweep list with
// thread-local scratch tid, queueing each changed vertex's new value.
// Workers only read round-frozen state and write their own lane, so
// chunks race on nothing; the merged records are applied on the main
// goroutine (see sweep/applySweep).
//
//repro:hotpath
func (e *engine) relaxChunk(lo, hi, tid int) {
	list, relax := e.list, e.relax
	for i := lo; i < hi; i++ {
		v := list[i]
		if nv, changed := relax(v, tid); changed {
			e.q.Push(tid, relaxUpd{v: v, val: nv})
		}
	}
}

// sweep fans list across the engine's threads and merges the
// per-thread update queues into e.recs in thread-id order.
//
//repro:timing
func (e *engine) sweep(list []int32) {
	start := time.Now()
	e.list = list
	par.ForChunk(0, len(list), e.threads, e.sweepBody)
	e.recs = e.q.MergeInto(e.recs[:0])
	e.sweepTime += time.Since(start)
}

// applySweep commits the merged sweep records: each vertex takes its
// new value and joins the changed list.
//
//repro:hotpath
func (e *engine) applySweep(vals []int64) {
	for _, r := range e.recs {
		vals[r.v] = r.val
		e.changed = append(e.changed, r.v)
	}
}

// overlapped reports whether rounds run split-phase on the delta
// exchanger.
func (e *engine) overlapped() bool { return e.ex != nil }

// propagate runs label-propagation-style rounds over vals: each round
// relaxes every owned vertex in boundary-first order (relax returns
// v's candidate value and whether it changed), ships the changed
// boundary values owner → ghost, and stops when no vertex changed
// anywhere or after maxIters rounds (maxIters <= 0: unbounded). It
// returns the number of rounds executed.
//
// Rounds are two phase-Jacobi sweeps: the boundary sweep computes
// updates from the round-start state and applies them all at once,
// then the interior sweep computes from round-start + applied-boundary
// state. relax must therefore be pure — read vals, return the new
// value — never write it; the engine commits updates between phases.
// That phase discipline is what makes the parallel sweeps exact: every
// worker reads the same frozen state regardless of chunk boundaries,
// so per-round state and the fixed point are bit-identical across
// thread counts AND across modes (both relax boundary-then-interior
// with the same two commit points). The overlapped mode relaxes
// interior vertices while the boundary messages are in flight; its
// termination counter is one round stale (the count shipped with round
// r's messages is round r-1's), so convergence costs one extra no-op
// round, which by definition changes nothing.
func (e *engine) propagate(vals []int64, relax func(v int32, tid int) (int64, bool), maxIters int) int {
	g := e.g
	bnd, inr := g.BoundaryVertices(), g.InteriorVertices()
	iters := 0
	e.relax = relax

	if !e.overlapped() {
		for maxIters <= 0 || iters < maxIters {
			iters++
			e.changed = e.changed[:0]
			e.sweep(bnd)
			e.applySweep(vals)
			nb := len(e.changed)
			e.sweep(inr)
			e.applySweep(vals)
			// Interior vertices are ghosted nowhere, so only the
			// boundary prefix has destinations.
			g.ExchangeInt64(e.changed[:nb], vals)
			if mpi.AllreduceScalar(g.Comm, int64(len(e.changed)), mpi.Sum) == 0 {
				break
			}
		}
		return iters
	}

	prevLocal := int64(1) // round 0 "changed something": never converged at entry
	for maxIters <= 0 || iters < maxIters {
		iters++
		e.changed = e.changed[:0]
		e.sweep(bnd)
		e.applySweep(vals)
		e.payload = e.payload[:0]
		for _, v := range e.changed {
			e.payload = append(e.payload, vals[v])
		}
		var tally []int64
		if e.complete {
			e.tally[0] = prevLocal
			tally = e.tally[:1]
			if e.aux != nil {
				e.tally[1] = e.aux()
				tally = e.tally[:2]
			}
		}
		ex := e.ex
		ex.BeginValues(e.changed, e.payload, tally)
		// Overlap: interior relaxations read no ghost values, so they
		// run while the drainer receives. (BeginValues consumed the
		// boundary prefix, so appending is safe.)
		e.sweep(inr)
		e.applySweep(vals)
		outL, outP, tr := ex.FlushValues()
		for i, lid := range outL {
			vals[lid] = outP[i]
		}
		local := int64(len(e.changed))
		if e.complete {
			if tr.Sum(0) == 0 {
				// The counter certifies the PREVIOUS round changed
				// nothing anywhere, which makes the round just executed
				// a global no-op: report the same productive-round
				// count as the sync engine. Values have been final
				// since that previous round, so the aux frames carried
				// by this round's messages fold to the analytic's
				// global maximum.
				if e.aux != nil {
					e.auxVal, e.auxOK = tr.Max(1), true
				}
				iters--
				break
			}
			prevLocal = local
		} else if iters%e.termEpoch == 0 &&
			mpi.AllreduceScalar(g.Comm, local, mpi.Sum) == 0 {
			// Termination epochs (Graph.SetTermEpoch): between checks
			// the rounds run unchecked, so a fixed point reached mid-
			// epoch costs at most termEpoch-1 extra no-op rounds —
			// which cannot change any value — before this exact
			// Allreduce observes a zero round and stops.
			break
		}
	}
	return iters
}
