package analytics

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// The termination-epoch knob (Graph.SetTermEpoch) bounds the exact
// termination Allreduce to every k-th round on incomplete rank
// neighborhoods. Results must stay bit-identical to sync — the rounds
// past the fixed point are global no-ops — while the reduction count
// drops roughly k-fold.
func TestTermEpochIncompleteNeighborhood(t *testing.T) {
	g := gen.Grid3D(8, 8, 8)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		if dg.AsyncExchanger().NeighborhoodComplete() {
			if c.Rank() == 0 {
				t.Errorf("blocked 3D grid on 3 ranks should have an incomplete rank neighborhood")
			}
			return
		}
		sync := execCrossMode(c, dg, false)

		dg.SetTermEpoch(1)
		exact := execCrossMode(c, dg, true)
		compareCrossMode(t, dg, sync, exact)

		dg.SetTermEpoch(4)
		epoch := execCrossMode(c, dg, true)
		compareCrossMode(t, dg, sync, epoch)

		if c.Rank() == 0 && epoch.reduce >= exact.reduce {
			t.Errorf("TermEpoch=4 performed %d Allreduces, per-round fallback %d (want fewer)",
				epoch.reduce, exact.reduce)
		}
	})
}

// The overlapped BFS must actually pipeline: the discovery push of
// depth d+1 is posted while depth d's ghost refresh is still in
// flight, so the exchanger's in-flight high-water mark reaches
// dgraph.DefaultPipeDepth on any multi-round search.
func TestBFSOverlappedPipelinesDepthTwo(t *testing.T) {
	g := gen.ChungLu(1<<10, 1<<13, 2.2, 9)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		dg.SetAsyncExchange(true)
		_, ecc := BFS(dg, 0)
		if ecc < 2 {
			t.Errorf("rank %d: eccentricity %d too small to exercise pipelining", c.Rank(), ecc)
		}
		if got := dg.AsyncExchanger().MaxDepth; got != dgraph.DefaultPipeDepth {
			t.Errorf("rank %d: BFS reached pipeline depth %d, want %d (push must overlap the pending refresh)",
				c.Rank(), got, dgraph.DefaultPipeDepth)
		}
	})
}

// K-Core's coreness maximum piggybacks on the convergence counter
// (TallyRound.Max): a converged overlapped run must report the same
// maximum as sync without the trailing Allreduce.
func TestKCoreMaxRidesTally(t *testing.T) {
	g := gen.ChungLu(1<<10, 1<<13, 2.2, 9)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		dg.SetAsyncExchange(false)
		_, syncRes := KCore(dg, 50)

		dg.SetAsyncExchange(true)
		c.ResetStats()
		_, asyncRes := KCore(dg, 50)
		reduce := c.Stats().ReductionOps
		if syncRes.Value != asyncRes.Value {
			t.Errorf("rank %d: KC max %v (sync) vs %v (async)", c.Rank(), syncRes.Value, asyncRes.Value)
		}
		if c.Rank() == 0 && reduce != 0 {
			t.Errorf("converged overlapped K-Core performed %d Allreduces, want 0 (max must ride the tally)", reduce)
		}
	})
}
