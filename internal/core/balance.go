package core

import (
	"sync/atomic"

	"repro/internal/dgraph"
	"repro/internal/par"
)

// vertBalance implements Algorithm 4: degree-weighted label propagation
// with the weighting function Wv(i) ≈ Imbv / size_estimate(i) − 1 and
// the dynamic multiplier damping concurrent moves into a part.
func (s *state) vertBalance() {
	g := s.g
	s.recountSizes(false)
	threads := s.threads()
	// Balance drives part sizes toward the ideal n/p, not merely under
	// the constraint cap Imbv: the slack between ideal and cap is the
	// headroom the edge-balancing stage needs to shift edge weight
	// without violating the vertex constraint.
	idealV := float64(g.NGlobal) / float64(s.p)

	// Hard receiver caps always assume the worst case — every rank adds
	// as much as this one (capMult = nprocs) — so a part can never be
	// pushed past its cap within one iteration. The scheduled mult only
	// shapes the attraction weights, ramping movement freedom down as
	// iterations progress (the paper's X/Y schedule).
	capMult := float64(g.Comm.Size())

	for iter := 0; iter < s.opt.Ibal; iter++ {
		maxV := maxOf(s.sv, s.imbV)
		mult := s.mult()
		queues := par.NewQueues[dgraph.Update](threads)
		s.beginExchange(s.roundTallyLen(false))

		par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
			counts := make([]float64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				x := s.loadPart(v)
				// Balancing moves vertices out of overweight parts only;
				// a part within its budget never loses vertices here,
				// which keeps parts alive and flow monotone from over-
				// to underweight parts.
				estX := float64(s.sv[x]) + mult*float64(atomic.LoadInt64(&s.cv[x]))
				if estX <= idealV {
					continue
				}
				for i := range counts {
					counts[i] = 0
				}
				for _, u := range g.Neighbors(v) {
					counts[s.loadPart(u)] += float64(g.Degrees[u])
				}
				// Apply caps and weights.
				for i := 0; i < s.p; i++ {
					cvi := float64(atomic.LoadInt64(&s.cv[i]))
					if float64(s.sv[i])+capMult*cvi+1 > maxV {
						counts[i] = 0
						continue
					}
					est := float64(s.sv[i]) + mult*cvi
					if est < 1 {
						est = 1
					}
					w := idealV/est - 1
					if w < 0 {
						w = 0
					}
					counts[i] *= w
				}
				w := x
				best := counts[x]
				for i := 0; i < s.p; i++ {
					if counts[i] > best {
						best = counts[i]
						w = int32(i)
					}
				}
				if w == x || best <= 0 {
					// No underweight part appears in v's neighborhood
					// (it may be empty, or far away). Fall back to the
					// globally most underweight part so the balance
					// phase always converges; refinement restores cut
					// quality afterwards.
					w = x
					bestW := 0.0
					for i := 0; i < s.p; i++ {
						if int32(i) == x {
							continue
						}
						cvi := float64(atomic.LoadInt64(&s.cv[i]))
						if float64(s.sv[i])+capMult*cvi+1 > s.imbV {
							continue
						}
						est := float64(s.sv[i]) + mult*cvi
						if est < 1 {
							est = 1
						}
						if wv := idealV/est - 1; wv > bestW {
							bestW = wv
							w = int32(i)
						}
					}
				}
				if w != x {
					atomic.AddInt64(&s.cv[x], -1)
					atomic.AddInt64(&s.cv[w], 1)
					s.storePart(v, w)
					queues.Push(tid, dgraph.Update{LID: v, Value: w})
				}
			}
		})

		moved := s.exchangeSettle(queues.Merge(), false)
		s.trace("vbal", mult, moved)
		s.iterTot++
	}
}

// vertRefine implements Algorithm 5: unweighted label propagation
// (each vertex adopts its neighborhood's plurality part) constrained so
// no part exceeds Max(current max size, Imbv) under the multiplier
// estimate — a constrained FM-style refinement of the global cut.
func (s *state) vertRefine() {
	g := s.g
	s.recountSizes(false)
	threads := s.threads()

	// Refinement uses the worst-case multiplier nprocs for its receiver
	// caps: every rank assumes its peers add as much as it does. Unlike
	// balancing, refinement cannot shed from overweight parts (plurality
	// keeps interiors), so an early-schedule overshoot here would
	// persist to the final partition.
	mult := float64(g.Comm.Size())

	for iter := 0; iter < s.opt.Iref; iter++ {
		queues := par.NewQueues[dgraph.Update](threads)
		s.beginExchange(s.roundTallyLen(false))

		par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
			counts := make([]int64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				for i := range counts {
					counts[i] = 0
				}
				for _, u := range g.Neighbors(v) {
					counts[s.loadPart(u)]++
				}
				x := s.loadPart(v)
				w := x
				best := counts[x]
				for i := 0; i < s.p; i++ {
					if counts[i] <= best {
						continue
					}
					// A move may not push the receiving part above the
					// vertex target Imbv: refinement only rearranges
					// within the balance envelope.
					est := float64(s.sv[i]) + mult*float64(atomic.LoadInt64(&s.cv[i]))
					if est+1 > s.imbV {
						continue
					}
					best = counts[i]
					w = int32(i)
				}
				if w != x {
					atomic.AddInt64(&s.cv[x], -1)
					atomic.AddInt64(&s.cv[w], 1)
					s.storePart(v, w)
					queues.Push(tid, dgraph.Update{LID: v, Value: w})
				}
			}
		})

		moved := s.exchangeSettle(queues.Merge(), false)
		s.trace("vref", mult, moved)
		s.iterTot++
	}
}
