package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// runPartition builds g distributed over nranks and partitions it,
// returning the global assignment and the (rank 0) report.
func runPartition(t *testing.T, g *gen.Generator, nranks int, opt Options) ([]int32, Report) {
	t.Helper()
	var global []int32
	var rep Report
	mpi.Run(nranks, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 42})
		if err != nil {
			t.Errorf("rank %d: build: %v", c.Rank(), err)
			return
		}
		parts, r, err := Partition(dg, opt)
		if err != nil {
			t.Errorf("rank %d: partition: %v", c.Rank(), err)
			return
		}
		full := dg.GatherGlobal(parts[:dg.NLocal])
		if c.Rank() == 0 {
			global = full
			rep = r
		}
	})
	return global, rep
}

func TestPartitionAssignsEveryVertex(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	shared := g.MustBuild()
	opt := DefaultOptions(8)
	parts, _ := runPartition(t, g, 4, opt)
	if parts == nil {
		t.Fatal("no partition returned")
	}
	if err := partition.Validate(shared, parts, 8); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBeatsRandomCut(t *testing.T) {
	// The whole point of the partitioner: much lower cut than random.
	g := gen.RandHD(4096, 8, 5)
	shared := g.MustBuild()
	const p = 8
	parts, _ := runPartition(t, g, 4, DefaultOptions(p))
	qx := partition.Evaluate(shared, parts, p)
	qr := partition.Evaluate(shared, partition.Random(shared, p, 1), p)
	if qx.EdgeCutRatio > qr.EdgeCutRatio/2 {
		t.Errorf("XtraPuLP cut %.3f not well below random %.3f", qx.EdgeCutRatio, qr.EdgeCutRatio)
	}
}

func TestPartitionVertexBalance(t *testing.T) {
	g := gen.ERAvgDeg(4096, 16, 7)
	shared := g.MustBuild()
	const p = 8
	parts, rep := runPartition(t, g, 4, DefaultOptions(p))
	q := partition.Evaluate(shared, parts, p)
	// Constraint is 1.10; allow slack for the distributed estimates.
	if q.VertexImbalance > 1.15 {
		t.Errorf("vertex imbalance %.3f exceeds constraint", q.VertexImbalance)
	}
	if rep.Quality.VertexImbalance != q.VertexImbalance {
		t.Errorf("report imbalance %.3f != evaluated %.3f", rep.Quality.VertexImbalance, q.VertexImbalance)
	}
}

func TestPartitionEdgeBalance(t *testing.T) {
	// Skewed graph: the edge-balance stage must control degree sums.
	g := gen.ChungLu(4096, 32768, 2.2, 9)
	shared := g.MustBuild()
	const p = 8
	parts, _ := runPartition(t, g, 4, DefaultOptions(p))
	q := partition.Evaluate(shared, parts, p)
	if q.EdgeImbalance > 1.5 {
		t.Errorf("edge imbalance %.3f far above constraint 1.10", q.EdgeImbalance)
	}
}

func TestSingleConstraintMode(t *testing.T) {
	g := gen.RMAT(9, 8, 11)
	shared := g.MustBuild()
	opt := DefaultOptions(4)
	opt.SingleConstraint = true
	parts, rep := runPartition(t, g, 2, opt)
	if err := partition.Validate(shared, parts, 4); err != nil {
		t.Fatal(err)
	}
	if rep.EdgeTime != 0 {
		t.Errorf("single-constraint run spent %v in edge stage", rep.EdgeTime)
	}
	if rep.Quality.VertexImbalance > 1.15 {
		t.Errorf("vertex imbalance %.3f exceeds constraint", rep.Quality.VertexImbalance)
	}
}

func TestInitStrategies(t *testing.T) {
	g := gen.ERAvgDeg(2048, 8, 13)
	shared := g.MustBuild()
	for _, init := range []InitStrategy{InitBFS, InitRandom, InitBlock} {
		opt := DefaultOptions(4)
		opt.Init = init
		parts, _ := runPartition(t, g, 2, opt)
		if err := partition.Validate(shared, parts, 4); err != nil {
			t.Errorf("init %v: %v", init, err)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := gen.RMAT(9, 8, 17)
	opt := DefaultOptions(4)
	a, _ := runPartition(t, g, 2, opt)
	b, _ := runPartition(t, g, 2, opt)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			// Single-threaded ranks are fully deterministic.
			t.Fatalf("vertex %d: part %d vs %d across identical runs", i, a[i], b[i])
		}
	}
}

func TestRankCountInvariance(t *testing.T) {
	// Quality must stay in the same regime regardless of rank count
	// (Fig. 5's subject). Exact equality is not expected.
	g := gen.RandHD(2048, 8, 19)
	shared := g.MustBuild()
	const p = 8
	var ratios []float64
	for _, nranks := range []int{1, 2, 4, 8} {
		parts, _ := runPartition(t, g, nranks, DefaultOptions(p))
		q := partition.Evaluate(shared, parts, p)
		ratios = append(ratios, q.EdgeCutRatio)
	}
	for i, r := range ratios {
		if r > 0.5 {
			t.Errorf("nranks index %d: cut ratio %.3f unreasonably high", i, r)
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := gen.ER(256, 1024, 23)
	parts, rep := runPartition(t, g, 2, DefaultOptions(1))
	for v, pt := range parts {
		if pt != 0 {
			t.Fatalf("vertex %d in part %d with p=1", v, pt)
		}
	}
	if rep.Quality.CutEdges != 0 {
		t.Errorf("p=1 cut edges = %d", rep.Quality.CutEdges)
	}
}

func TestPartitionMorePartsThanRanks(t *testing.T) {
	g := gen.ERAvgDeg(1024, 8, 29)
	shared := g.MustBuild()
	parts, _ := runPartition(t, g, 2, DefaultOptions(16))
	if err := partition.Validate(shared, parts, 16); err != nil {
		t.Fatal(err)
	}
	sizes := partition.PartSizes(parts, 16)
	empty := 0
	for _, s := range sizes {
		if s == 0 {
			empty++
		}
	}
	if empty > 2 {
		t.Errorf("%d of 16 parts empty", empty)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.ER(64, 128, 1)
	mpi.Run(1, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.Edges(), dgraph.BlockDist{N: g.N, P: 1})
		if err != nil {
			t.Fatal(err)
		}
		bad := []Options{
			{NumParts: 0},
			{NumParts: 2, Iouter: 0},
			{NumParts: 2, Iouter: 1, VertImbalance: -1},
			{NumParts: 2, Iouter: 1, X: -0.5},
		}
		for i, opt := range bad {
			if _, _, err := Partition(dg, opt); err == nil {
				t.Errorf("case %d: expected validation error", i)
			}
		}
	})
}

func TestReportTimesPopulated(t *testing.T) {
	g := gen.RMAT(9, 8, 31)
	_, rep := runPartition(t, g, 2, DefaultOptions(4))
	if rep.TotalTime <= 0 || rep.InitTime <= 0 || rep.VertTime <= 0 || rep.EdgeTime <= 0 {
		t.Errorf("report times not populated: %+v", rep)
	}
	if rep.InitIters < 1 {
		t.Errorf("InitIters = %d", rep.InitIters)
	}
}

func TestMultithreadedRanksProduceValidPartition(t *testing.T) {
	g := gen.RMAT(10, 8, 37)
	shared := g.MustBuild()
	const p = 8
	var global []int32
	mpi.RunThreads(2, 4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		parts, _, err := Partition(dg, DefaultOptions(p))
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		full := dg.GatherGlobal(parts[:dg.NLocal])
		if c.Rank() == 0 {
			global = full
		}
	})
	if err := partition.Validate(shared, global, p); err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(shared, global, p)
	if q.VertexImbalance > 1.25 {
		t.Errorf("threaded run vertex imbalance %.3f", q.VertexImbalance)
	}
}

func TestMeshPartitionQuality(t *testing.T) {
	// On a regular mesh, label propagation partitioning should find
	// spatially coherent parts with modest cut.
	g := gen.Grid3D(12, 12, 12)
	shared := g.MustBuild()
	const p = 8
	parts, _ := runPartition(t, g, 4, DefaultOptions(p))
	q := partition.Evaluate(shared, parts, p)
	qr := partition.Evaluate(shared, partition.Random(shared, p, 1), p)
	if q.EdgeCutRatio > qr.EdgeCutRatio/2 {
		t.Errorf("mesh cut %.3f vs random %.3f", q.EdgeCutRatio, qr.EdgeCutRatio)
	}
}

func TestTraceEventsCoverAllStages(t *testing.T) {
	g := gen.ERAvgDeg(1024, 8, 41)
	var events []TraceEvent
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 42})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		opt := DefaultOptions(4)
		opt.Trace = func(ev TraceEvent) { events = append(events, ev) }
		if _, _, err := Partition(dg, opt); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
	// 2 outer groups × Iouter × (Ibal + Iref) events.
	want := 2 * 3 * (5 + 10)
	if len(events) != want {
		t.Fatalf("got %d trace events, want %d", len(events), want)
	}
	stages := map[string]int{}
	for _, ev := range events {
		stages[ev.Stage]++
		if ev.MaxVerts <= 0 {
			t.Fatalf("event %+v has nonpositive MaxVerts", ev)
		}
		if ev.Mult < 1 {
			t.Fatalf("event %+v multiplier below floor", ev)
		}
	}
	for _, st := range []string{"vbal", "vref", "ebal", "eref"} {
		if stages[st] == 0 {
			t.Errorf("no events for stage %s (got %v)", st, stages)
		}
	}
	// Balance phases must tighten the max part size over the run: the
	// last vbal event is no worse than the first.
	var first, last int64
	for _, ev := range events {
		if ev.Stage == "vbal" {
			if first == 0 {
				first = ev.MaxVerts
			}
			last = ev.MaxVerts
		}
	}
	if last > first {
		t.Errorf("vertex balance regressed: first max %d, last max %d", first, last)
	}
}

// Property: any seed yields a structurally valid partition with all
// parts within the vertex cap (plus estimation slack).
func TestQuickPartitionValidAcrossSeeds(t *testing.T) {
	g := gen.ERAvgDeg(512, 8, 43)
	shared := g.MustBuild()
	f := func(seed uint64) bool {
		opt := DefaultOptions(4)
		opt.Seed = seed
		var ok = true
		mpi.Run(2, func(c *mpi.Comm) {
			dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
				dgraph.HashDist{P: c.Size(), Seed: 17})
			if err != nil {
				ok = false
				return
			}
			parts, rep, err := Partition(dg, opt)
			if err != nil {
				ok = false
				return
			}
			full := dg.GatherGlobal(parts[:dg.NLocal])
			if c.Rank() == 0 {
				if partition.Validate(shared, full, 4) != nil {
					ok = false
				}
				if rep.Quality.VertexImbalance > 1.25 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
