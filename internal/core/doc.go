// Package core implements XTRAPULP, the paper's distributed-memory
// label-propagation partitioner (Algorithms 1–5): BFS-style random-root
// initialization, vertex balancing with degree-weighted label
// propagation, constrained refinement, and the edge-balancing stage for
// the multi-constraint multi-objective problem. Part-assignment updates
// are damped by the dynamic multiplier
//
//	mult = nprocs × ((X−Y)·iter_tot/I_tot + Y)
//
// which linearly tightens each rank's per-iteration quota of moves into
// any part, preventing the oscillation that occurs when thousands of
// ranks concurrently discover the same underweight part (§III.C).
//
// # Iteration structure and exchange modes
//
// Each inner iteration runs rank-local label propagation across worker
// threads, ships the changed boundary labels to the ranks ghosting
// them, and settles the global per-part size estimates the weighting
// functions read. Options.Exchange selects the transport:
//
//   - ExchangeSync: a world-wide Alltoallv carries the updates, and a
//     world-wide Allreduce settles the per-iteration size deltas — two
//     global barriers per iteration.
//   - ExchangeAsyncDelta: updates travel as packed per-neighbor
//     point-to-point messages (dgraph.DeltaExchanger) posted before
//     the propagation loop and drained concurrently with it, and the
//     size-delta tallies piggyback on those same messages, so an
//     iteration ends with no global barrier at all. Every rank folds
//     its own deltas plus its neighbors' piggybacked tallies into its
//     estimates; Options.SizeEpoch schedules exact Allreduce resyncs
//     that bound the estimate staleness on topologies where some rank
//     pairs share no boundary. When every rank neighbors every other —
//     detected collectively at startup — the folded sums are already
//     exact, resyncs are unnecessary, and the async partition matches
//     the synchronous one bit-for-bit at equal seeds.
//
// Partition reports the exchanged-element volume and Allreduce count
// of a run (Report.ExchangeVolume, Report.ReductionOps) so the two
// modes can be compared; the harness "exchange" experiment does
// exactly that.
package core
