package core

import (
	"sync/atomic"

	"repro/internal/dgraph"
	"repro/internal/par"
)

// moveEdgeDeltas records the tallies of moving owned vertex v from part
// x to part w during the edge stage: vertex and degree deltas plus the
// exact per-part incident-cut deltas derived from v's current
// neighborhood labels.
func (s *state) moveEdgeDeltas(v int32, x, w int32) {
	g := s.g
	atomic.AddInt64(&s.cv[x], -1)
	atomic.AddInt64(&s.cv[w], 1)
	d := g.Degree(v)
	atomic.AddInt64(&s.ce[x], -d)
	atomic.AddInt64(&s.ce[w], d)
	for _, u := range g.Neighbors(v) {
		switch s.loadPart(u) {
		case x: // internal edge becomes cut: both x and w gain one
			atomic.AddInt64(&s.cc[x], 1)
			atomic.AddInt64(&s.cc[w], 1)
		case w: // cut edge becomes internal: both x and w lose one
			atomic.AddInt64(&s.cc[x], -1)
			atomic.AddInt64(&s.cc[w], -1)
		default: // stays cut; incidence shifts from x to w
			atomic.AddInt64(&s.cc[x], -1)
			atomic.AddInt64(&s.cc[w], 1)
		}
	}
}

// edgeBalance implements the edge-balancing stage (§III.E): the vertex
// weighting Wv is replaced by the combination Re·We(i) + Rc·Wc(i) of an
// edge-balance weight and a cut-balance weight. Re ramps up linearly
// while the edge constraint is violated, then freezes while Rc ramps to
// shift pressure onto minimizing and balancing the per-part cut.
func (s *state) edgeBalance() {
	g := s.g
	s.recountSizes(true)
	threads := s.threads()
	re, rc := 1.0, 1.0
	// Hard receiver caps use the worst-case multiplier; see vertBalance.
	capMult := float64(g.Comm.Size())

	for iter := 0; iter < s.opt.Ibal; iter++ {
		maxC := maxOf(s.sc, 1)
		var sumC int64
		for _, c := range s.sc {
			sumC += c
		}
		avgC := float64(sumC) / float64(s.p)
		mult := s.mult()
		if maxOf(s.se, 0) > s.imbE {
			re++
		} else {
			rc++
		}
		queues := par.NewQueues[dgraph.Update](threads)
		s.beginExchange(s.roundTallyLen(true))

		par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
			counts := make([]float64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				x := s.loadPart(v)
				// Only vertices in parts that are overweight in edges
				// or carry an above-average cut participate: parts
				// within budget never bleed out during balancing.
				estEx := float64(s.se[x]) + mult*float64(atomic.LoadInt64(&s.ce[x]))
				estCx := float64(s.sc[x]) + mult*float64(atomic.LoadInt64(&s.cc[x]))
				overE := estEx > s.imbE
				overC := estCx > avgC
				if !overE && !overC {
					continue
				}
				for i := range counts {
					counts[i] = 0
				}
				for _, u := range g.Neighbors(v) {
					counts[s.loadPart(u)] += float64(g.Degrees[u])
				}
				dv := float64(g.Degree(v))
				for i := 0; i < s.p; i++ {
					cvi := float64(atomic.LoadInt64(&s.cv[i]))
					cei := float64(atomic.LoadInt64(&s.ce[i]))
					// Receivers are capped at the vertex and edge
					// targets so the balance achieved by earlier stages
					// cannot be destroyed here.
					if float64(s.sv[i])+capMult*cvi+1 > s.imbV ||
						float64(s.se[i])+capMult*cei+dv > s.imbE {
						counts[i] = 0
						continue
					}
					estE := float64(s.se[i]) + mult*cei
					estC := float64(s.sc[i]) + mult*float64(atomic.LoadInt64(&s.cc[i]))
					if estE < 1 {
						estE = 1
					}
					if estC < 1 {
						estC = 1
					}
					we := s.imbE/estE - 1
					if we < 0 {
						we = 0
					}
					wc := maxC/estC - 1
					if wc < 0 {
						wc = 0
					}
					counts[i] *= re*we + rc*wc
				}
				w := x
				best := counts[x]
				for i := 0; i < s.p; i++ {
					if counts[i] > best {
						best = counts[i]
						w = int32(i)
					}
				}
				if (w == x || best <= 0) && overE {
					// No weighted neighbor candidate: teleport toward
					// the most edge-underweight part that can take v.
					w = x
					bestW := 0.0
					for i := 0; i < s.p; i++ {
						if int32(i) == x {
							continue
						}
						cvi := float64(atomic.LoadInt64(&s.cv[i]))
						cei := float64(atomic.LoadInt64(&s.ce[i]))
						if float64(s.sv[i])+capMult*cvi+1 > s.imbV ||
							float64(s.se[i])+capMult*cei+dv > s.imbE {
							continue
						}
						estE := float64(s.se[i]) + mult*cei
						if estE < 1 {
							estE = 1
						}
						if we := s.imbE/estE - 1; we > bestW {
							bestW = we
							w = int32(i)
						}
					}
				}
				if w == x && overE {
					// Still stuck: every candidate receiver is at the
					// edge target. This happens when hub degrees are
					// comparable to (or above) the target itself,
					// making the constraint locally infeasible. Take a
					// strictly balance-improving move instead: a part
					// that stays well below the donor even after
					// receiving v (estE + 2·deg(v) ≤ estX prevents
					// ping-ponging). The scan starts at a
					// vertex-dependent rotation so concurrent hub
					// evictions spread over distinct receivers instead
					// of all piling onto the single lightest part.
					start := int(uint64(g.L2G[v]) % uint64(s.p))
					for k := 0; k < s.p; k++ {
						i := (start + k) % s.p
						if int32(i) == x {
							continue
						}
						cvi := float64(atomic.LoadInt64(&s.cv[i]))
						if float64(s.sv[i])+capMult*cvi+1 > s.imbV {
							continue
						}
						estE := float64(s.se[i]) + capMult*float64(atomic.LoadInt64(&s.ce[i]))
						if estE+2*dv <= estEx && estE <= s.imbE {
							w = int32(i)
							break
						}
					}
				}
				if w != x {
					s.moveEdgeDeltas(v, x, w)
					s.storePart(v, w)
					queues.Push(tid, dgraph.Update{LID: v, Value: w})
				}
			}
		})

		moved := s.exchangeSettle(queues.Merge(), true)
		s.trace("ebal", mult, moved)
		s.iterTot++
	}
}

// edgeRefine is the final refinement (§III.E): plurality label
// propagation constrained so a move cannot push any part's vertex
// count, edge count, or incident-cut count beyond the current global
// maxima (or targets, whichever is larger).
func (s *state) edgeRefine() {
	g := s.g
	s.recountSizes(true)
	threads := s.threads()

	// Worst-case multiplier for receiver caps; see vertRefine.
	mult := float64(g.Comm.Size())

	for iter := 0; iter < s.opt.Iref; iter++ {
		maxC := maxOf(s.sc, 1)
		queues := par.NewQueues[dgraph.Update](threads)
		s.beginExchange(s.roundTallyLen(true))

		par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
			counts := make([]int64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				for i := range counts {
					counts[i] = 0
				}
				for _, u := range g.Neighbors(v) {
					counts[s.loadPart(u)]++
				}
				x := s.loadPart(v)
				dv := g.Degree(v)
				w := x
				best := counts[x]
				for i := 0; i < s.p; i++ {
					if counts[i] <= best {
						continue
					}
					// Moves must respect the vertex and edge targets and
					// may not raise any part's incident cut beyond the
					// current global maximum.
					estV := float64(s.sv[i]) + mult*float64(atomic.LoadInt64(&s.cv[i]))
					estE := float64(s.se[i]) + mult*float64(atomic.LoadInt64(&s.ce[i]))
					estC := float64(s.sc[i]) + mult*float64(atomic.LoadInt64(&s.cc[i]))
					cutAfter := float64(dv - counts[i]) // arcs leaving part i from v
					if estV+1 > s.imbV || estE+float64(dv) > s.imbE || estC+cutAfter > maxC {
						continue
					}
					best = counts[i]
					w = int32(i)
				}
				if w != x {
					s.moveEdgeDeltas(v, x, w)
					s.storePart(v, w)
					queues.Push(tid, dgraph.Update{LID: v, Value: w})
				}
			}
		})

		moved := s.exchangeSettle(queues.Merge(), true)
		s.trace("eref", mult, moved)
		s.iterTot++
	}
}
