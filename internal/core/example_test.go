package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// ExampleOptions configures the partitioner's asynchronous exchange
// end to end: DefaultOptions, the async-delta engine, and an explicit
// size-estimate resync epoch, run collectively on four simulated
// ranks.
func ExampleOptions() {
	g := gen.RMAT(9, 8, 1)

	opt := core.DefaultOptions(4)
	opt.Seed = 7
	opt.Exchange = core.ExchangeAsyncDelta // P2P deltas, no per-iteration barrier
	opt.SizeEpoch = 4                      // exact estimate resync every 4 iterations

	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: 7})
		if err != nil {
			panic(err)
		}
		parts, rep, err := core.Partition(dg, opt)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			fmt.Println("labels cover owned and ghost vertices:", len(parts) == dg.NTotal())
			fmt.Println("vertex imbalance within constraint:", rep.Quality.VertexImbalance < 1.2)
		}
	})
	// Output:
	// labels cover owned and ghost vertices: true
	// vertex imbalance within constraint: true
}
