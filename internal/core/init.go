package core

import (
	"sync/atomic"

	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
	"repro/internal/rng"
)

// initialize produces the starting part assignment according to the
// configured strategy and returns the number of propagation rounds.
func (s *state) initialize() int {
	switch s.opt.Init {
	case InitRandom:
		s.initRandom()
		return 0
	case InitBlock:
		s.initBlock()
		return 0
	default:
		return s.initBFS()
	}
}

// initRandom assigns every owned vertex a uniform random part and
// propagates assignments to ghosts.
func (s *state) initRandom() {
	r := rng.NewStream(s.opt.Seed, uint64(s.g.Comm.Rank()))
	q := make([]dgraph.Update, s.g.NLocal)
	for v := 0; v < s.g.NLocal; v++ {
		w := int32(r.Intn(s.p))
		s.parts[v] = w
		q[v] = dgraph.Update{LID: int32(v), Value: w}
	}
	s.applyGhostUpdates(s.exchange(q))
}

// initBlock assigns parts by contiguous global-id blocks (vertex block
// partitioning), the initialization used for the paper's analytics runs.
func (s *state) initBlock() {
	q := make([]dgraph.Update, s.g.NLocal)
	for v := 0; v < s.g.NLocal; v++ {
		gid := s.g.L2G[v]
		w := int32(gid * int64(s.p) / s.g.NGlobal)
		if int(w) >= s.p {
			w = int32(s.p - 1)
		}
		s.parts[v] = w
		q[v] = dgraph.Update{LID: int32(v), Value: w}
	}
	s.applyGhostUpdates(s.exchange(q))
}

// initBFS implements Algorithm 2: the master rank broadcasts p unique
// random roots; each root seeds one part; unassigned vertices adopt a
// uniformly random part present in their neighborhood, iterating until
// no assignments occur; leftovers (rootless components) get random
// parts.
func (s *state) initBFS() int {
	g := s.g
	c := g.Comm

	// Root selection on rank 0, broadcast to all (UniqueRand + Bcast).
	var roots []int64
	if c.Rank() == 0 {
		r := rng.New(s.opt.Seed)
		n := g.NGlobal
		k := int64(s.p)
		if k > n {
			k = n
		}
		roots = r.Sample(n, k)
	}
	roots = mpi.Bcast(c, 0, roots)

	// parts ← -1; owned roots adopt their selection-order part.
	for i := range s.parts {
		s.parts[i] = -1
	}
	pending := 0
	var rootQ []dgraph.Update
	for i, gid := range roots {
		if lid, ok := g.G2L[gid]; ok && !g.IsGhost(lid) {
			s.parts[lid] = int32(i)
			rootQ = append(rootQ, dgraph.Update{LID: lid, Value: int32(i)})
			pending++
		}
	}
	s.applyGhostUpdates(s.exchange(rootQ))

	// Primary propagation loop. In async mode with a complete rank
	// neighborhood the round's assignment counter piggybacks on the
	// update messages, so the termination test needs no Allreduce.
	threads := s.threads()
	rounds := 0
	for {
		rounds++
		queues := par.NewQueues[dgraph.Update](threads)
		s.beginExchange(s.initTallyLen())
		var updates int64
		par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
			r := rng.NewStream(s.opt.Seed^0xBF0F, uint64(rounds)<<32|uint64(tid)<<16|uint64(c.Rank()))
			var local int64
			// isAssigned tracked as the candidate list itself: collect
			// the distinct neighbor parts, then pick one uniformly.
			seen := make([]bool, s.p)
			cands := make([]int32, 0, 16)
			for v := lo; v < hi; v++ {
				if s.parts[v] != -1 {
					continue
				}
				cands = cands[:0]
				for _, u := range g.Neighbors(int32(v)) {
					pu := s.loadPart(u)
					if pu >= 0 && !seen[pu] {
						seen[pu] = true
						cands = append(cands, pu)
					}
				}
				if len(cands) == 0 {
					continue
				}
				w := cands[r.Intn(len(cands))]
				for _, pc := range cands {
					seen[pc] = false
				}
				s.storePart(int32(v), w)
				queues.Push(tid, dgraph.Update{LID: int32(v), Value: w})
				local++
			}
			atomic.AddInt64(&updates, local)
		})
		if s.exchangeInitCount(queues.Merge(), updates) == 0 {
			break
		}
	}

	// Leftovers: random assignment for vertices unreached by any root
	// (disconnected components), then one final exchange.
	queues := par.NewQueues[dgraph.Update](threads)
	s.beginExchange(0)
	par.ForChunk(0, g.NLocal, threads, func(lo, hi, tid int) {
		r := rng.NewStream(s.opt.Seed^0xD00D, uint64(tid)<<16|uint64(c.Rank()))
		for v := lo; v < hi; v++ {
			if s.parts[v] == -1 {
				w := int32(r.Intn(s.p))
				s.storePart(int32(v), w)
				queues.Push(tid, dgraph.Update{LID: int32(v), Value: w})
			}
		}
	})
	s.applyGhostUpdates(s.exchange(queues.Merge()))
	return rounds
}
