package core

import (
	"fmt"
	"time"

	"repro/internal/partition"
)

// InitStrategy selects how initial part assignments are produced.
type InitStrategy int

// Initialization strategies (§III.B and §V.E).
const (
	// InitBFS is the paper's hybrid initialization (Algorithm 2):
	// random roots grown with randomized label propagation.
	InitBFS InitStrategy = iota
	// InitRandom assigns uniformly random parts.
	InitRandom
	// InitBlock assigns contiguous gid ranges to parts (vertex block),
	// the variant used for the Fig. 8 analytics runs.
	InitBlock
)

// String names the strategy for reports.
func (s InitStrategy) String() string {
	switch s {
	case InitBFS:
		return "bfs"
	case InitRandom:
		return "random"
	case InitBlock:
		return "block"
	default:
		return fmt.Sprintf("InitStrategy(%d)", int(s))
	}
}

// ExchangeMode selects how boundary part-assignment updates travel
// between ranks each iteration.
type ExchangeMode int

// Exchange modes.
const (
	// ExchangeSync is the bulk-synchronous path: a world-wide Alltoallv
	// shipping (gid, value) pairs, destinations re-derived from the
	// adjacency every iteration.
	ExchangeSync ExchangeMode = iota
	// ExchangeAsyncDelta ships only the vertices whose labels moved
	// this iteration as packed single-element updates over nonblocking
	// point-to-point messages, with the receive side drained on a
	// background goroutine while local propagation is still running.
	// Part-size delta tallies piggyback on the same messages
	// (SizeEpoch), retiring the per-iteration Allreduce the synchronous
	// path pays. For fixed seeds it produces exactly the partition the
	// synchronous path produces — guaranteed whenever the rank
	// neighborhood graph is complete, which the partitioner detects at
	// startup — at roughly half the exchanged-element volume.
	ExchangeAsyncDelta
)

// String names the mode for reports.
func (m ExchangeMode) String() string {
	switch m {
	case ExchangeSync:
		return "sync"
	case ExchangeAsyncDelta:
		return "async-delta"
	default:
		return fmt.Sprintf("ExchangeMode(%d)", int(m))
	}
}

// Options configures a partitioning run. The zero value is not valid;
// use DefaultOptions.
type Options struct {
	// NumParts is p, the number of parts to compute.
	NumParts int
	// Iouter, Ibal, Iref are the stage iteration counts; the paper's
	// defaults (used in all its experiments) are 3, 5, 10.
	Iouter, Ibal, Iref int
	// X and Y parameterize the dynamic multiplier schedule. The paper
	// selects X=1.0, Y=0.25 empirically (§V.D).
	X, Y float64
	// VertImbalance and EdgeImbalance are the constraint ratios Ratv
	// and Rate; target part sizes are (1+ratio)·ideal. Default 0.10.
	VertImbalance float64
	EdgeImbalance float64
	// Init selects the initialization strategy.
	Init InitStrategy
	// SingleConstraint, when true, runs only the vertex balance and
	// refinement stages, solving the single-constraint single-objective
	// problem used for the KaHIP comparison (§V.C).
	SingleConstraint bool
	// Exchange selects the boundary-exchange implementation. All ranks
	// must pass the same mode.
	Exchange ExchangeMode
	// SizeEpoch bounds the staleness of the global part-size estimates
	// in async-delta mode. Between epochs each rank settles its
	// estimates from its own deltas plus the tallies piggybacked on
	// neighbor messages — no collective at all; every SizeEpoch-th
	// inner iteration performs an exact Allreduce resync. 1 resyncs
	// every iteration (estimates identical to sync mode on any
	// topology). 0, the default, auto-selects: when every rank
	// neighbors every other (detected collectively at startup, and the
	// common case for the hashed distributions the paper favors) the
	// piggybacked tallies are already exact global sums, so resyncs are
	// skipped entirely; otherwise it behaves as 1. Values above 1 trade
	// estimate staleness on incomplete topologies — and, there,
	// divergence from the sync partition — for fewer global barriers.
	// Ignored in sync mode.
	SizeEpoch int
	// Seed drives root selection and random assignments.
	Seed uint64
	// Trace, when non-nil, receives a TraceEvent on rank 0 after every
	// inner iteration. All ranks must pass the same (possibly nil)
	// setting; the callback must not invoke collectives.
	Trace func(TraceEvent)
}

// DefaultOptions returns the paper's default configuration for p parts.
func DefaultOptions(p int) Options {
	return Options{
		NumParts:      p,
		Iouter:        3,
		Ibal:          5,
		Iref:          10,
		X:             1.0,
		Y:             0.25,
		VertImbalance: 0.10,
		EdgeImbalance: 0.10,
		Init:          InitBFS,
		Seed:          1,
	}
}

// validate reports configuration errors.
func (o *Options) validate() error {
	if o.NumParts < 1 {
		return fmt.Errorf("core: NumParts = %d, need >= 1", o.NumParts)
	}
	if o.Iouter < 1 || o.Ibal < 0 || o.Iref < 0 {
		return fmt.Errorf("core: bad iteration counts Iouter=%d Ibal=%d Iref=%d", o.Iouter, o.Ibal, o.Iref)
	}
	if o.VertImbalance < 0 || o.EdgeImbalance < 0 {
		return fmt.Errorf("core: negative imbalance ratio")
	}
	if o.X < 0 || o.Y < 0 {
		return fmt.Errorf("core: negative multiplier parameter X=%v Y=%v", o.X, o.Y)
	}
	if o.Exchange != ExchangeSync && o.Exchange != ExchangeAsyncDelta {
		return fmt.Errorf("core: unknown exchange mode %d", int(o.Exchange))
	}
	if o.SizeEpoch < 0 {
		return fmt.Errorf("core: negative SizeEpoch %d", o.SizeEpoch)
	}
	return nil
}

// Report carries per-stage instrumentation from one partitioning run.
// All ranks return identical reports.
type Report struct {
	// Times per stage (wall clock on this rank).
	InitTime  time.Duration
	VertTime  time.Duration
	EdgeTime  time.Duration
	TotalTime time.Duration
	// InitIters is the number of BFS-propagation rounds used by
	// initialization.
	InitIters int
	// ExchangeVolume is the total element volume all ranks sent during
	// the partitioning stages (initialization through refinement,
	// excluding graph construction and quality evaluation). Whenever
	// rank boundaries exist (more than one rank and a connected cut),
	// the async delta mode reports strictly less than the synchronous
	// mode for the same run; a single-rank async run still reports less
	// because the piggybacked tallies retire the per-iteration
	// reductions the synchronous mode sends.
	ExchangeVolume int64
	// ReductionOps is the number of Allreduce operations the stages
	// performed (identical on every rank). Synchronous runs pay one per
	// inner iteration to settle part-size deltas; async-delta runs
	// piggyback the tallies on the update messages and drop to one per
	// SizeEpoch iterations — or none between stage recounts when the
	// rank neighborhood graph is complete.
	ReductionOps int64
	// Quality holds the final partition metrics.
	Quality partition.Quality
}

// TraceEvent is a per-iteration snapshot of the partitioner's global
// state, delivered to Options.Trace on rank 0 after each inner
// iteration's deltas settle. It exposes the quantities the paper's
// §III.C reasons about: how far the largest part sits above its target
// and how much assignment churn the multiplier admitted.
type TraceEvent struct {
	// Stage is "init", "vbal", "vref", "ebal", or "eref".
	Stage string
	// Iter is the global inner-iteration counter within the run.
	Iter int
	// Mult is the damping multiplier used this iteration (0 for init).
	Mult float64
	// MaxVerts and MaxEdges are the largest per-part vertex count and
	// degree sum; MaxCut is the largest per-part incident cut (only
	// tracked during edge stages, else 0).
	MaxVerts, MaxEdges, MaxCut int64
	// Moved is the number of vertices that changed parts globally.
	Moved int64
}
