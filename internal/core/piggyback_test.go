package core

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// On an incomplete rank neighborhood the piggybacked tallies cannot
// reach non-neighbor ranks, so a rank's size estimate may lag moves by
// at most SizeEpoch-1 settles before the epoch Allreduce resyncs it
// exactly. A 3-rank block distribution of a long 3D mesh gives a path
// topology (rank 0 and rank 2 own disjoint z-slabs two hops apart):
// rank 0 moves one vertex per iteration, its neighbor rank 1 tracks
// every move through the piggybacked tallies, and rank 2 sees them only
// at epoch boundaries.
func TestPiggybackStalenessBoundAndEpochResync(t *testing.T) {
	gn := gen.Grid3D(3, 3, 9)
	const ranks = 3
	const epoch = 3
	const settles = 7
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, gn.N, gn.EdgesChunk(c.Rank(), c.Size()),
			dgraph.BlockDist{N: gn.N, P: ranks})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		wantNbrs := 1
		if c.Rank() == 1 {
			wantNbrs = 2
		}
		if got := len(ex.NeighborRanks()); got != wantNbrs {
			t.Errorf("rank %d: %d neighbors, want %d (topology not a path)", c.Rank(), got, wantNbrs)
			return
		}

		opt := DefaultOptions(2)
		opt.Exchange = ExchangeAsyncDelta
		opt.SizeEpoch = epoch
		s := &state{
			g: dg, opt: opt, p: 2,
			parts: make([]int32, dg.NTotal()),
			sv:    make([]int64, 2), se: make([]int64, 2), sc: make([]int64, 2),
			cv: make([]int64, 2), ce: make([]int64, 2), cc: make([]int64, 2),
			ex: ex, tallyExact: false, epoch: epoch,
			svBase: make([]int64, 2), seBase: make([]int64, 2), scBase: make([]int64, 2),
			accOwn: make([]int64, 6), accRecv: make([]int64, 6),
		}
		s.recountSizes(false) // every vertex in part 0: sv = [N, 0]
		redBefore := c.Stats().ReductionOps

		for k := int64(1); k <= settles; k++ {
			s.beginExchange(s.roundTallyLen(false))
			if c.Rank() == 0 {
				// One vertex migrates part 0 -> 1 this iteration.
				s.cv[0]--
				s.cv[1]++
			}
			s.exchangeSettle(nil, false)
			want := k // ranks 0 and 1 see every move
			if c.Rank() == 2 {
				want = k - k%epoch // only what the last resync carried
			}
			if s.sv[1] != want {
				t.Errorf("rank %d settle %d: sv[1] = %d, want %d", c.Rank(), k, s.sv[1], want)
				return
			}
			if lag := k - s.sv[1]; lag < 0 || lag > epoch-1 {
				t.Errorf("rank %d settle %d: staleness %d exceeds bound %d", c.Rank(), k, lag, epoch-1)
				return
			}
		}
		// Only the epoch resyncs perform Allreduce: floor(7/3) = 2.
		if got := c.Stats().ReductionOps - redBefore; got != settles/epoch {
			t.Errorf("rank %d: %d reductions across %d settles, want %d",
				c.Rank(), got, settles, settles/epoch)
		}
	})
}

// With the default SizeEpoch (auto) on an incomplete topology the
// partitioner must fall back to exact per-iteration settles, keeping
// async partitions bit-identical to sync — the safety half of the
// auto-detection whose fast half the repository-level determinism test
// covers on complete topologies.
func TestPiggybackAutoFallbackIncompleteTopology(t *testing.T) {
	gn := gen.Grid3D(3, 3, 9)
	const ranks = 3
	var parts [2][]int32
	for _, exchange := range []ExchangeMode{ExchangeSync, ExchangeAsyncDelta} {
		exchange := exchange
		mpi.Run(ranks, func(c *mpi.Comm) {
			dg, err := dgraph.FromEdgeChunks(c, gn.N, gn.EdgesChunk(c.Rank(), c.Size()),
				dgraph.BlockDist{N: gn.N, P: ranks})
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			opt := DefaultOptions(4)
			opt.Seed = 11
			opt.Exchange = exchange
			local, _, err := Partition(dg, opt)
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			full := dg.GatherGlobal(local[:dg.NLocal])
			if c.Rank() == 0 {
				if exchange == ExchangeSync {
					parts[0] = full
				} else {
					parts[1] = full
				}
			}
		})
		if exchange == ExchangeAsyncDelta {
			for v := range parts[0] {
				if parts[0][v] != parts[1][v] {
					t.Fatalf("partitions diverge at vertex %d: sync %d async %d", v, parts[0][v], parts[1][v])
				}
			}
		}
	}
}
