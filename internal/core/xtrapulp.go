package core

import (
	"sync/atomic"
	"time"

	"repro/internal/dgraph"
	"repro/internal/mpi"
)

// state bundles everything a partitioning run shares across stages.
type state struct {
	g   *dgraph.Graph
	opt Options
	p   int

	// ex is the asynchronous delta exchanger, nil in sync mode.
	ex *dgraph.DeltaExchanger

	// Piggyback settle machinery (async mode only). tallyExact records
	// whether every rank neighbors every other — detected collectively
	// at startup — which makes the piggybacked own+neighbor tally sums
	// exactly the global sums. epoch is the exact-resync period in
	// settles (0 = never, piggyback alone is exact); sinceSync counts
	// settles since the last exact sync. svBase/seBase/scBase hold the
	// authoritative sizes at the last exact sync, and accOwn/accRecv
	// accumulate this rank's own and neighbor-received deltas since
	// then (layout [v | e | c], 3p elements).
	tallyExact bool
	epoch      int
	sinceSync  int
	svBase     []int64
	seBase     []int64
	scBase     []int64
	accOwn     []int64
	accRecv    []int64

	// parts holds assignments for owned and ghost vertices. Hot-loop
	// reads and writes go through atomics because intra-rank threads
	// update it asynchronously (the paper's "asynchronous intra-task
	// updates").
	parts []int32

	// Part size estimates (global, replicated per rank) and the
	// per-iteration change tallies the multiplier damps.
	sv []int64 // vertices per part
	se []int64 // edge endpoints (degree sum) per part
	sc []int64 // cut edges incident per part
	cv []int64 // vertex deltas this iteration (atomic)
	ce []int64 // edge deltas this iteration (atomic)
	cc []int64 // cut deltas this iteration (atomic)

	// Multiplier schedule: iterTot counts inner iterations within the
	// current outer stage group; iTot is Iouter*(Ibal+Iref).
	iterTot int
	iTot    int

	// Constraint targets.
	imbV float64 // max vertices per part
	imbE float64 // max edge endpoints per part
}

// Partition runs XtraPuLP on the distributed graph shard g. It is a
// collective call: every rank of g.Comm must invoke it with identical
// options. It returns the part assignment for this rank's owned and
// ghost vertices (length g.NTotal()) and a run report.
//
//repro:deterministic
//repro:timing
func Partition(g *dgraph.Graph, opt Options) ([]int32, Report, error) {
	if err := opt.validate(); err != nil {
		return nil, Report{}, err
	}
	if int64(opt.NumParts) > g.NGlobal && g.NGlobal > 0 {
		opt.NumParts = int(g.NGlobal)
	}
	s := &state{
		g:     g,
		opt:   opt,
		p:     opt.NumParts,
		parts: make([]int32, g.NTotal()),
		sv:    make([]int64, opt.NumParts),
		se:    make([]int64, opt.NumParts),
		sc:    make([]int64, opt.NumParts),
		cv:    make([]int64, opt.NumParts),
		ce:    make([]int64, opt.NumParts),
		cc:    make([]int64, opt.NumParts),
		iTot:  opt.Iouter * (opt.Ibal + opt.Iref),
	}
	s.imbV = (1 + opt.VertImbalance) * float64(g.NGlobal) / float64(s.p)
	s.imbE = (1 + opt.EdgeImbalance) * float64(2*g.MGlobal) / float64(s.p)
	if opt.Exchange == ExchangeAsyncDelta {
		s.ex = g.AsyncExchanger()
		// Shared with the overlapped analytics engines: collective on
		// the first call per graph, cached after.
		s.tallyExact = s.ex.NeighborhoodComplete()
		s.epoch = opt.SizeEpoch
		if s.epoch == 0 && !s.tallyExact {
			// Piggybacked tallies miss non-neighbor ranks here; resync
			// every settle so the estimates — and the partition — stay
			// identical to sync mode by default.
			s.epoch = 1
		}
		if s.piggyback() {
			s.svBase = make([]int64, s.p)
			s.seBase = make([]int64, s.p)
			s.scBase = make([]int64, s.p)
			s.accOwn = make([]int64, 3*s.p)
			s.accRecv = make([]int64, 3*s.p)
		}
	}

	var rep Report
	sentBefore := g.Comm.Stats().ElemsSent
	redBefore := g.Comm.Stats().ReductionOps
	start := time.Now()

	t0 := time.Now()
	rep.InitIters = s.initialize()
	rep.InitTime = time.Since(t0)

	// Outer loop 1: vertex balance + refinement (Algorithm 1).
	t0 = time.Now()
	s.iterTot = 0
	for outer := 0; outer < opt.Iouter; outer++ {
		s.vertBalance()
		s.vertRefine()
	}
	rep.VertTime = time.Since(t0)

	// Outer loop 2: edge balance + refinement.
	if !opt.SingleConstraint {
		t0 = time.Now()
		s.iterTot = 0
		for outer := 0; outer < opt.Iouter; outer++ {
			s.edgeBalance()
			s.edgeRefine()
		}
		rep.EdgeTime = time.Since(t0)
	}

	rep.TotalTime = time.Since(start)
	sentDuring := g.Comm.Stats().ElemsSent - sentBefore
	rep.ReductionOps = g.Comm.Stats().ReductionOps - redBefore
	rep.ExchangeVolume = mpi.AllreduceScalar(g.Comm, sentDuring, mpi.Sum)
	rep.Quality = dgraph.EvaluateDistributed(g, s.parts, s.p)
	return s.parts, rep, nil
}

// mult computes the dynamic multiplier for the current iteration,
// mult = nprocs × ((X−Y)·iter_tot/I_tot + Y), floored at 1: a value
// below 1 would make each rank's size estimate sv + mult·cv undertrack
// even its own local moves, letting receivers overshoot their targets
// within a single iteration (visible at small rank counts where
// nprocs·Y < 1).
func (s *state) mult() float64 {
	frac := 0.0
	if s.iTot > 0 {
		frac = float64(s.iterTot) / float64(s.iTot)
	}
	m := float64(s.g.Comm.Size()) * ((s.opt.X-s.opt.Y)*frac + s.opt.Y)
	if m < 1 {
		m = 1
	}
	return m
}

// threads returns the intra-rank worker budget.
func (s *state) threads() int { return s.g.Comm.Threads() }

// loadPart atomically reads a part label.
func (s *state) loadPart(v int32) int32 {
	return atomic.LoadInt32(&s.parts[v])
}

// storePart atomically writes a part label.
func (s *state) storePart(v int32, w int32) {
	atomic.StoreInt32(&s.parts[v], w)
}

// piggyback reports whether settles ride on the update messages
// instead of a per-iteration Allreduce.
func (s *state) piggyback() bool { return s.ex != nil && s.epoch != 1 }

// roundTallyLen is the tally length the next balance/refine exchange
// round carries: per-part vertex deltas, plus edge and cut deltas
// during the edge stages.
func (s *state) roundTallyLen(withEdges bool) int {
	if !s.piggyback() {
		return 0
	}
	if withEdges {
		return 3 * s.p
	}
	return s.p
}

// recountSizes recomputes the global part sizes sv/se/sc from current
// assignments (used when entering a stage), and zeroes the deltas and
// the piggyback accumulators.
func (s *state) recountSizes(withCut bool) {
	local := make([]int64, 3*s.p)
	for v := 0; v < s.g.NLocal; v++ {
		pv := s.parts[v]
		local[pv]++
		local[s.p+int(pv)] += s.g.Degree(int32(v))
		if withCut {
			for _, u := range s.g.Neighbors(int32(v)) {
				if s.parts[u] != pv {
					local[2*s.p+int(pv)]++
				}
			}
		}
	}
	global := mpi.Allreduce(s.g.Comm, local, mpi.Sum)
	copy(s.sv, global[0:s.p])
	copy(s.se, global[s.p:2*s.p])
	copy(s.sc, global[2*s.p:3*s.p])
	for i := 0; i < s.p; i++ {
		s.cv[i], s.ce[i], s.cc[i] = 0, 0, 0
	}
	if s.piggyback() {
		copy(s.svBase, s.sv)
		copy(s.seBase, s.se)
		copy(s.scBase, s.sc)
		for i := range s.accOwn {
			s.accOwn[i], s.accRecv[i] = 0, 0
		}
		s.sinceSync = 0
	}
}

// settleDeltas Allreduces the per-iteration deltas, folds them into the
// size estimates, and resets them (the end-of-iteration block of
// Algorithms 4 and 5, extended with edge and cut tallies). It returns
// the number of vertices that changed parts globally this iteration.
func (s *state) settleDeltas(withEdges bool) int64 {
	if !withEdges {
		global := mpi.Allreduce(s.g.Comm, s.cv, mpi.Sum)
		var moved int64
		for i := 0; i < s.p; i++ {
			s.sv[i] += global[i]
			if global[i] > 0 {
				moved += global[i]
			}
			s.cv[i] = 0
		}
		return moved
	}
	buf := make([]int64, 3*s.p)
	copy(buf[0:s.p], s.cv)
	copy(buf[s.p:2*s.p], s.ce)
	copy(buf[2*s.p:3*s.p], s.cc)
	global := mpi.Allreduce(s.g.Comm, buf, mpi.Sum)
	var moved int64
	for i := 0; i < s.p; i++ {
		s.sv[i] += global[i]
		if global[i] > 0 {
			moved += global[i]
		}
		s.se[i] += global[i+s.p]
		s.sc[i] += global[i+2*s.p]
		s.cv[i], s.ce[i], s.cc[i] = 0, 0, 0
	}
	return moved
}

// trace emits a TraceEvent on rank 0 if tracing is configured.
func (s *state) trace(stage string, mult float64, moved int64) {
	if s.opt.Trace == nil || s.g.Comm.Rank() != 0 {
		return
	}
	var maxV, maxE, maxC int64
	for i := 0; i < s.p; i++ {
		if s.sv[i] > maxV {
			maxV = s.sv[i]
		}
		if s.se[i] > maxE {
			maxE = s.se[i]
		}
		if s.sc[i] > maxC {
			maxC = s.sc[i]
		}
	}
	s.opt.Trace(TraceEvent{
		Stage: stage, Iter: s.iterTot, Mult: mult,
		MaxVerts: maxV, MaxEdges: maxE, MaxCut: maxC, Moved: moved,
	})
}

// applyGhostUpdates writes received boundary updates into parts.
func (s *state) applyGhostUpdates(recv []dgraph.Update) {
	for _, upd := range recv {
		s.storePart(upd.LID, upd.Value)
	}
}

// beginExchange posts the receive side of the next boundary exchange.
// In async mode a background drainer starts receiving and decoding
// neighbor updates immediately, overlapping with the propagation loop
// the caller is about to run; in sync mode it is a no-op. tallyLen
// declares the piggybacked tally frame the round's messages carry (0
// for none) and must match the exchange that follows. Every
// beginExchange must be followed by exactly one exchange call.
func (s *state) beginExchange(tallyLen int) {
	if s.ex != nil {
		s.ex.BeginTally(tallyLen)
	}
}

// exchange ships the queued owned-vertex updates and returns the
// incoming updates for this rank's ghosts, via the configured mode.
// It carries no tally; the balance/refine iterations use
// exchangeSettle instead.
func (s *state) exchange(q []dgraph.Update) []dgraph.Update {
	if s.ex != nil {
		return s.ex.Flush(q)
	}
	return s.g.ExchangeUpdates(q)
}

// takeTally snapshots this iteration's local part-size deltas into a
// tally vector ([cv] or [cv | ce | cc]) and zeroes the counters. The
// worker threads have joined by the time it runs, so the reads need no
// atomics.
func (s *state) takeTally(withEdges bool) []int64 {
	t := make([]int64, s.roundTallyLen(withEdges))
	copy(t[:s.p], s.cv)
	if withEdges {
		copy(t[s.p:2*s.p], s.ce)
		copy(t[2*s.p:], s.cc)
	}
	for i := 0; i < s.p; i++ {
		s.cv[i], s.ce[i], s.cc[i] = 0, 0, 0
	}
	return t
}

// exchangeSettle finishes one balance/refine iteration: it ships the
// queued updates (with this rank's delta tally piggybacked in async
// piggyback mode), applies the incoming ghost updates, and settles the
// global part-size estimates. It returns the number of vertices that
// moved — exact under sync or exact-piggyback settles, own+neighbor
// scope otherwise.
func (s *state) exchangeSettle(q []dgraph.Update, withEdges bool) int64 {
	if !s.piggyback() {
		s.applyGhostUpdates(s.exchange(q))
		return s.settleDeltas(withEdges)
	}
	own := s.takeTally(withEdges)
	in, recv := s.ex.FlushTally(q, own)
	s.applyGhostUpdates(in)
	return s.settlePiggyback(own, recv, withEdges)
}

// settlePiggyback folds this iteration's own and neighbor-received
// delta tallies into the size estimates, resyncing them exactly by
// Allreduce every epoch settles. When the rank neighborhood graph is
// complete the folded sums are already the global sums, so the
// estimates equal sync mode's on every iteration; otherwise they may
// omit non-neighbor deltas for at most epoch-1 settles.
func (s *state) settlePiggyback(own, recv []int64, withEdges bool) int64 {
	n := len(own)
	var moved int64
	for i := 0; i < s.p; i++ {
		if d := own[i] + recv[i]; d > 0 {
			moved += d
		}
	}
	for i := 0; i < n; i++ {
		s.accOwn[i] += own[i]
		s.accRecv[i] += recv[i]
	}
	s.sinceSync++
	if s.epoch > 0 && s.sinceSync >= s.epoch {
		global := mpi.Allreduce(s.g.Comm, s.accOwn[:n], mpi.Sum)
		for i := 0; i < s.p; i++ {
			s.svBase[i] += global[i]
			if withEdges {
				s.seBase[i] += global[s.p+i]
				s.scBase[i] += global[2*s.p+i]
			}
		}
		for i := 0; i < n; i++ {
			s.accOwn[i], s.accRecv[i] = 0, 0
		}
		s.sinceSync = 0
		copy(s.sv, s.svBase)
		if withEdges {
			copy(s.se, s.seBase)
			copy(s.sc, s.scBase)
		}
		return moved
	}
	for i := 0; i < s.p; i++ {
		s.sv[i] = s.svBase[i] + s.accOwn[i] + s.accRecv[i]
		if withEdges {
			s.se[i] = s.seBase[i] + s.accOwn[s.p+i] + s.accRecv[s.p+i]
			s.sc[i] = s.scBase[i] + s.accOwn[2*s.p+i] + s.accRecv[2*s.p+i]
		}
	}
	return moved
}

// initTallyLen is the tally length initBFS propagation rounds carry:
// one element (the rank's assignment counter) when the complete rank
// neighborhood makes the piggybacked sum an exact termination test.
func (s *state) initTallyLen() int {
	if s.ex != nil && s.tallyExact {
		return 1
	}
	return 0
}

// exchangeInitCount finishes one initBFS propagation round: it ships
// the queued updates, applies incoming ghosts, and returns the global
// number of assignments made this round — from the piggybacked
// counters when exact, else by Allreduce.
func (s *state) exchangeInitCount(q []dgraph.Update, local int64) int64 {
	if s.initTallyLen() > 0 {
		in, t := s.ex.FlushTally(q, []int64{local})
		s.applyGhostUpdates(in)
		return local + t[0]
	}
	s.applyGhostUpdates(s.exchange(q))
	return mpi.AllreduceScalar(s.g.Comm, local, mpi.Sum)
}

// maxOf returns max(vals) as float64, floored at floor.
func maxOf(vals []int64, floor float64) float64 {
	m := floor
	for _, v := range vals {
		if f := float64(v); f > m {
			m = f
		}
	}
	return m
}
