package core

import (
	"sync/atomic"
	"time"

	"repro/internal/dgraph"
	"repro/internal/mpi"
)

// state bundles everything a partitioning run shares across stages.
type state struct {
	g   *dgraph.Graph
	opt Options
	p   int

	// ex is the asynchronous delta exchanger, nil in sync mode.
	ex *dgraph.DeltaExchanger

	// parts holds assignments for owned and ghost vertices. Hot-loop
	// reads and writes go through atomics because intra-rank threads
	// update it asynchronously (the paper's "asynchronous intra-task
	// updates").
	parts []int32

	// Part size estimates (global, replicated per rank) and the
	// per-iteration change tallies the multiplier damps.
	sv []int64 // vertices per part
	se []int64 // edge endpoints (degree sum) per part
	sc []int64 // cut edges incident per part
	cv []int64 // vertex deltas this iteration (atomic)
	ce []int64 // edge deltas this iteration (atomic)
	cc []int64 // cut deltas this iteration (atomic)

	// Multiplier schedule: iterTot counts inner iterations within the
	// current outer stage group; iTot is Iouter*(Ibal+Iref).
	iterTot int
	iTot    int

	// Constraint targets.
	imbV float64 // max vertices per part
	imbE float64 // max edge endpoints per part
}

// Partition runs XtraPuLP on the distributed graph shard g. It is a
// collective call: every rank of g.Comm must invoke it with identical
// options. It returns the part assignment for this rank's owned and
// ghost vertices (length g.NTotal()) and a run report.
func Partition(g *dgraph.Graph, opt Options) ([]int32, Report, error) {
	if err := opt.validate(); err != nil {
		return nil, Report{}, err
	}
	if int64(opt.NumParts) > g.NGlobal && g.NGlobal > 0 {
		opt.NumParts = int(g.NGlobal)
	}
	s := &state{
		g:     g,
		opt:   opt,
		p:     opt.NumParts,
		parts: make([]int32, g.NTotal()),
		sv:    make([]int64, opt.NumParts),
		se:    make([]int64, opt.NumParts),
		sc:    make([]int64, opt.NumParts),
		cv:    make([]int64, opt.NumParts),
		ce:    make([]int64, opt.NumParts),
		cc:    make([]int64, opt.NumParts),
		iTot:  opt.Iouter * (opt.Ibal + opt.Iref),
	}
	s.imbV = (1 + opt.VertImbalance) * float64(g.NGlobal) / float64(s.p)
	s.imbE = (1 + opt.EdgeImbalance) * float64(2*g.MGlobal) / float64(s.p)
	if opt.Exchange == ExchangeAsyncDelta {
		s.ex = g.NewDeltaExchanger()
	}

	var rep Report
	sentBefore := g.Comm.Stats().ElemsSent
	start := time.Now()

	t0 := time.Now()
	rep.InitIters = s.initialize()
	rep.InitTime = time.Since(t0)

	// Outer loop 1: vertex balance + refinement (Algorithm 1).
	t0 = time.Now()
	s.iterTot = 0
	for outer := 0; outer < opt.Iouter; outer++ {
		s.vertBalance()
		s.vertRefine()
	}
	rep.VertTime = time.Since(t0)

	// Outer loop 2: edge balance + refinement.
	if !opt.SingleConstraint {
		t0 = time.Now()
		s.iterTot = 0
		for outer := 0; outer < opt.Iouter; outer++ {
			s.edgeBalance()
			s.edgeRefine()
		}
		rep.EdgeTime = time.Since(t0)
	}

	rep.TotalTime = time.Since(start)
	sentDuring := g.Comm.Stats().ElemsSent - sentBefore
	rep.ExchangeVolume = mpi.AllreduceScalar(g.Comm, sentDuring, mpi.Sum)
	rep.Quality = dgraph.EvaluateDistributed(g, s.parts, s.p)
	return s.parts, rep, nil
}

// mult computes the dynamic multiplier for the current iteration,
// mult = nprocs × ((X−Y)·iter_tot/I_tot + Y), floored at 1: a value
// below 1 would make each rank's size estimate sv + mult·cv undertrack
// even its own local moves, letting receivers overshoot their targets
// within a single iteration (visible at small rank counts where
// nprocs·Y < 1).
func (s *state) mult() float64 {
	frac := 0.0
	if s.iTot > 0 {
		frac = float64(s.iterTot) / float64(s.iTot)
	}
	m := float64(s.g.Comm.Size()) * ((s.opt.X-s.opt.Y)*frac + s.opt.Y)
	if m < 1 {
		m = 1
	}
	return m
}

// threads returns the intra-rank worker budget.
func (s *state) threads() int { return s.g.Comm.Threads() }

// loadPart atomically reads a part label.
func (s *state) loadPart(v int32) int32 {
	return atomic.LoadInt32(&s.parts[v])
}

// storePart atomically writes a part label.
func (s *state) storePart(v int32, w int32) {
	atomic.StoreInt32(&s.parts[v], w)
}

// recountSizes recomputes the global part sizes sv/se/sc from current
// assignments (used when entering a stage), and zeroes the deltas.
func (s *state) recountSizes(withCut bool) {
	local := make([]int64, 3*s.p)
	for v := 0; v < s.g.NLocal; v++ {
		pv := s.parts[v]
		local[pv]++
		local[s.p+int(pv)] += s.g.Degree(int32(v))
		if withCut {
			for _, u := range s.g.Neighbors(int32(v)) {
				if s.parts[u] != pv {
					local[2*s.p+int(pv)]++
				}
			}
		}
	}
	global := mpi.Allreduce(s.g.Comm, local, mpi.Sum)
	copy(s.sv, global[0:s.p])
	copy(s.se, global[s.p:2*s.p])
	copy(s.sc, global[2*s.p:3*s.p])
	for i := 0; i < s.p; i++ {
		s.cv[i], s.ce[i], s.cc[i] = 0, 0, 0
	}
}

// settleDeltas Allreduces the per-iteration deltas, folds them into the
// size estimates, and resets them (the end-of-iteration block of
// Algorithms 4 and 5, extended with edge and cut tallies). It returns
// the number of vertices that changed parts globally this iteration.
func (s *state) settleDeltas(withEdges bool) int64 {
	if !withEdges {
		global := mpi.Allreduce(s.g.Comm, s.cv, mpi.Sum)
		var moved int64
		for i := 0; i < s.p; i++ {
			s.sv[i] += global[i]
			if global[i] > 0 {
				moved += global[i]
			}
			s.cv[i] = 0
		}
		return moved
	}
	buf := make([]int64, 3*s.p)
	copy(buf[0:s.p], s.cv)
	copy(buf[s.p:2*s.p], s.ce)
	copy(buf[2*s.p:3*s.p], s.cc)
	global := mpi.Allreduce(s.g.Comm, buf, mpi.Sum)
	var moved int64
	for i := 0; i < s.p; i++ {
		s.sv[i] += global[i]
		if global[i] > 0 {
			moved += global[i]
		}
		s.se[i] += global[i+s.p]
		s.sc[i] += global[i+2*s.p]
		s.cv[i], s.ce[i], s.cc[i] = 0, 0, 0
	}
	return moved
}

// trace emits a TraceEvent on rank 0 if tracing is configured.
func (s *state) trace(stage string, mult float64, moved int64) {
	if s.opt.Trace == nil || s.g.Comm.Rank() != 0 {
		return
	}
	var maxV, maxE, maxC int64
	for i := 0; i < s.p; i++ {
		if s.sv[i] > maxV {
			maxV = s.sv[i]
		}
		if s.se[i] > maxE {
			maxE = s.se[i]
		}
		if s.sc[i] > maxC {
			maxC = s.sc[i]
		}
	}
	s.opt.Trace(TraceEvent{
		Stage: stage, Iter: s.iterTot, Mult: mult,
		MaxVerts: maxV, MaxEdges: maxE, MaxCut: maxC, Moved: moved,
	})
}

// applyGhostUpdates writes received boundary updates into parts.
func (s *state) applyGhostUpdates(recv []dgraph.Update) {
	for _, upd := range recv {
		s.storePart(upd.LID, upd.Value)
	}
}

// beginExchange posts the receive side of the next boundary exchange.
// In async mode a background drainer starts receiving and decoding
// neighbor updates immediately, overlapping with the propagation loop
// the caller is about to run; in sync mode it is a no-op. Every
// beginExchange must be followed by exactly one exchange call.
func (s *state) beginExchange() {
	if s.ex != nil {
		s.ex.Begin()
	}
}

// exchange ships the queued owned-vertex updates and returns the
// incoming updates for this rank's ghosts, via the configured mode.
func (s *state) exchange(q []dgraph.Update) []dgraph.Update {
	if s.ex != nil {
		return s.ex.Flush(q)
	}
	return s.g.ExchangeUpdates(q)
}

// maxOf returns max(vals) as float64, floored at floor.
func maxOf(vals []int64, floor float64) float64 {
	m := floor
	for _, v := range vals {
		if f := float64(v); f > m {
			m = f
		}
	}
	return m
}
