package dgraph

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/mpi"
)

// Asynchronous delta-only boundary exchange. The synchronous path
// (exchangeRaw) re-derives each update's destinations from the
// adjacency on every call and ships (gid, value) as two 64-bit
// elements through a world-wide Alltoallv. This file precomputes the
// boundary structure once per graph — for every neighbor rank, the
// gid-sorted list of vertices shared with it — so updates name their
// vertex by an index into the shared list instead of by global id and
// travel over nonblocking point-to-point messages. Three flows ride
// the same plan, all split-phase (post, overlap compute, settle):
//
//   - Update flow (Begin/Flush, BeginTally/FlushTally): 32-bit part
//     labels packed one element per update, with the receive side
//     drained on a background goroutine while the rank's worker
//     threads are still propagating labels, and an optional
//     piggybacked tally frame (mpi.AppendTally) that lets a round
//     double as the iteration's reduction.
//   - Value flow (BeginValues/FlushValues): full 64-bit payloads
//     owner → ghost, for the analytics helpers
//     ExchangeInt64/ExchangeFloat64 and the overlapped analytics
//     engines. Begin posts the sends and the drainer; the caller
//     computes interior work while messages are in flight and settles
//     ghosts at Flush.
//   - Reverse flow (BeginPush/FlushPush): full 64-bit payloads
//     ghost → owner, for frontier algorithms (PushToOwners).
//
// Value rounds carry their tally frames per source (TallyRound)
// instead of pre-summed, so float partial sums can be folded in global
// rank order — bit-identical to the Allreduce they replace.
//
// Every round runs on a persistent per-exchanger drainer goroutine and
// reusable encode/decode arenas, with transfer copies drawn from the
// mpi world's buffer pool (Isend64/Recv64/Recycle64): a steady-state
// round performs zero heap allocations on either side.

// ghostTarget records one destination of an owned boundary vertex:
// which neighbor (by position in the plan's sendRanks) ghosts it and
// at which index it sits in the pair's shared gid-sorted list.
type ghostTarget struct {
	rankPos int32
	idx     int32
}

// boundaryPlan is the precomputed per-neighbor boundary structure of
// one rank. Both sides of every rank pair derive the same shared
// vertex list independently (sorted by gid), which is what lets an
// update name its vertex by list index instead of by global id.
type boundaryPlan struct {
	// sendRanks are the neighbor ranks that ghost at least one owned
	// vertex, ascending.
	sendRanks []int32
	// sendLists[i] holds the owned lids shared with sendRanks[i] in
	// increasing gid order.
	sendLists [][]int32
	// targets[v] lists, for owned vertex v, every (neighbor, index)
	// slot it occupies; nil for interior vertices.
	targets [][]ghostTarget
	// recvRanks are the neighbor ranks owning at least one ghost,
	// ascending (equal to sendRanks by symmetry of the undirected
	// graph, but derived independently from the ghost set).
	recvRanks []int32
	// recvLists[i] holds the ghost lids owned by recvRanks[i] in
	// increasing gid order — index-compatible with the owner's
	// sendLists entry for this rank.
	recvLists [][]int32
	// ghostRankPos[i] and ghostIdx[i] locate ghost NLocal+i in the
	// receive-side structure: its owner's position in recvRanks and its
	// index in that pair's shared list. They are the reverse-flow
	// (ghost → owner) counterpart of targets.
	ghostRankPos []int32
	ghostIdx     []int32
}

// newBoundaryPlan derives the plan from purely local structure; no
// communication happens. Correctness rests on a symmetry of the CSR
// build: owned vertex v is ghosted on rank r exactly when v has a
// neighbor owned by r, so both endpoints of a rank pair can enumerate
// the same shared set and sort it by gid.
func newBoundaryPlan(g *Graph) *boundaryPlan {
	nprocs := g.Comm.Size()
	p := &boundaryPlan{targets: make([][]ghostTarget, g.NLocal)}

	// Send side: owned vertices in lid order are already gid-sorted.
	seen := make([]int32, nprocs) // last owned lid appended per rank, +1
	perRank := make([][]int32, nprocs)
	for v := 0; v < g.NLocal; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.IsGhost(u) {
				continue
			}
			r := g.GhostOwner[int(u)-g.NLocal]
			if seen[r] == int32(v)+1 {
				continue
			}
			seen[r] = int32(v) + 1
			perRank[r] = append(perRank[r], int32(v))
		}
	}
	for r := 0; r < nprocs; r++ {
		if len(perRank[r]) == 0 {
			continue
		}
		pos := int32(len(p.sendRanks))
		p.sendRanks = append(p.sendRanks, int32(r))
		p.sendLists = append(p.sendLists, perRank[r])
		for idx, lid := range perRank[r] {
			p.targets[lid] = append(p.targets[lid], ghostTarget{rankPos: pos, idx: int32(idx)})
		}
	}

	// Receive side: ghosts grouped by owner, then gid-sorted to match
	// the owner's enumeration order.
	ghostsByOwner := make([][]int32, nprocs)
	for i := 0; i < g.NGhost; i++ {
		r := g.GhostOwner[i]
		ghostsByOwner[r] = append(ghostsByOwner[r], int32(g.NLocal+i))
	}
	p.ghostRankPos = make([]int32, g.NGhost)
	p.ghostIdx = make([]int32, g.NGhost)
	for r := 0; r < nprocs; r++ {
		lids := ghostsByOwner[r]
		if len(lids) == 0 {
			continue
		}
		sort.Slice(lids, func(a, b int) bool { return g.L2G[lids[a]] < g.L2G[lids[b]] })
		pos := int32(len(p.recvRanks))
		p.recvRanks = append(p.recvRanks, int32(r))
		p.recvLists = append(p.recvLists, lids)
		for idx, lid := range lids {
			p.ghostRankPos[int(lid)-g.NLocal] = pos
			p.ghostIdx[int(lid)-g.NLocal] = int32(idx)
		}
	}
	return p
}

// packUpdate encodes (index in shared list, part value) as one int64 —
// half the wire volume of the synchronous (gid, value) encoding.
func packUpdate(idx int32, value int32) int64 {
	return int64(uint64(uint32(idx))<<32 | uint64(uint32(value)))
}

// unpackUpdate reverses packUpdate.
func unpackUpdate(w int64) (idx int32, value int32) {
	return int32(uint32(uint64(w) >> 32)), int32(uint32(uint64(w)))
}

// roundKind discriminates the three split-phase round types.
type roundKind int8

// Round kinds.
const (
	roundNone roundKind = iota
	roundUpdates
	roundValuesFwd
	roundValuesRev
)

// DeltaExchanger runs rounds of delta-only boundary exchange over
// nonblocking point-to-point messages. Usage per update round,
// collectively on every rank of the graph's communicator:
//
//	ex.Begin()                  // post receives, then compute locally
//	in := ex.Flush(updates)     // ship deltas, collect incoming
//
// Begin tells the exchanger's background drainer to receive and decode
// each neighbor's message while the caller is still computing; Flush
// sends this rank's queued updates (one message per boundary neighbor,
// empty when nothing changed) and then joins the drainer. The
// BeginTally/FlushTally variants additionally piggyback a small
// reduction vector on the same messages, which is how the partitioner
// settles part sizes without an Allreduce.
//
// The value flows are split-phase too: BeginValues/FlushValues ship
// full 64-bit payloads owner → ghost, BeginPush/FlushPush ghost →
// owner, both with optional per-source tally frames (TallyRound).
// Begin posts the sends and the drainer, so the caller can compute
// interior work while the messages are in flight; Flush joins and
// returns the incoming pairs. ExchangeValues and PushValues are the
// blocking compositions behind Graph.SetAsyncExchange.
//
// Every rank must call the same sequence of rounds or peers deadlock,
// exactly as they would skipping a collective. Calling Flush without
// Begin is allowed (the receive side is posted on entry, losing only
// overlap). Slices returned by a round alias per-exchanger arenas and
// stay valid only until the next round is posted.
type DeltaExchanger struct {
	g    *Graph
	plan *boundaryPlan

	// The persistent background drainer: one goroutine per exchanger,
	// started on first use and shut down by a finalizer when the
	// exchanger is collected. Posting a round costs a channel send
	// instead of a goroutine spawn, and the drainer's decode arenas
	// persist across rounds — both load-bearing for the zero-allocation
	// steady state.
	reqCh chan drainReq
	resCh chan drainResult

	// pending is the kind of the posted-but-unflushed round; tallyLen
	// its declared tally frame length; ownTally the caller's own
	// contribution for the pending value round.
	pending  roundKind
	tallyLen int
	ownTally []int64

	// sendBufs are reusable per-neighbor encode buffers (update flow).
	sendBufs [][]int64
	// fwdIdx/fwdVal/fwdEnc are the owner→ghost value-flow arenas, one
	// per send neighbor; revIdx/revVal/revEnc the ghost→owner
	// counterparts, one per receive neighbor.
	fwdIdx [][]int32
	fwdVal [][]int64
	fwdEnc [][]int64
	revIdx [][]int32
	revVal [][]int64
	revEnc [][]int64

	// complete caches NeighborhoodComplete: 0 unknown, 1 yes, 2 no.
	complete int8

	// Rounds counts completed rounds (diagnostics and tests).
	Rounds int64
}

// drainReq tells the drainer what the next round receives: which
// direction's messages and how long their tally frames are.
type drainReq struct {
	kind     roundKind
	tallyLen int
}

// drainResult is what the background drainer hands back at Flush: the
// decoded updates and summed tallies (update rounds) or decoded pairs
// and per-source tally frames (value rounds), or the panic it
// recovered. Panics must travel back to the rank's main goroutine —
// re-raised from Flush — so mpi.Run's per-rank recovery sees them; a
// panic escaping on the drainer goroutine itself would kill the whole
// process. All slices alias the drainer's arenas.
type drainResult struct {
	updates  []Update
	tally    []int64
	outL     []int32
	outP     []int64
	tallies  []int64
	panicked any
}

// drainer is the background half of one exchanger. It deliberately
// holds no reference back to the DeltaExchanger, so the exchanger can
// be collected (its finalizer closes req, ending the goroutine).
type drainer struct {
	comm *mpi.Comm
	plan *boundaryPlan
	req  chan drainReq
	res  chan drainResult

	// Decode arenas, reused across rounds.
	updates []Update
	tally   []int64
	outL    []int32
	outP    []int64
	tallies []int64
}

// NewDeltaExchanger builds the boundary plan for g. Construction is
// local — safe to call on any subset of ranks — but exchanging is
// collective.
func (g *Graph) NewDeltaExchanger() *DeltaExchanger {
	plan := newBoundaryPlan(g)
	return &DeltaExchanger{
		g:        g,
		plan:     plan,
		sendBufs: make([][]int64, len(plan.sendRanks)),
		fwdIdx:   make([][]int32, len(plan.sendRanks)),
		fwdVal:   make([][]int64, len(plan.sendRanks)),
		fwdEnc:   make([][]int64, len(plan.sendRanks)),
		revIdx:   make([][]int32, len(plan.recvRanks)),
		revVal:   make([][]int64, len(plan.recvRanks)),
		revEnc:   make([][]int64, len(plan.recvRanks)),
	}
}

// ensureDrainer lazily starts the exchanger's persistent drainer.
func (ex *DeltaExchanger) ensureDrainer() {
	if ex.reqCh != nil {
		return
	}
	d := &drainer{
		comm: ex.g.Comm,
		plan: ex.plan,
		req:  make(chan drainReq, 1),
		res:  make(chan drainResult, 1),
	}
	ex.reqCh, ex.resCh = d.req, d.res
	go d.loop()
	runtime.SetFinalizer(ex, finalizeExchanger)
}

// finalizeExchanger releases the drainer goroutine of a collected
// exchanger.
func finalizeExchanger(ex *DeltaExchanger) {
	if ex.reqCh != nil {
		close(ex.reqCh)
	}
}

// loop serves drain requests until the request channel closes. Each
// iteration recovers panics (mailbox poison after a sibling rank's
// crash, malformed frames) into the result so the main goroutine
// re-raises them.
func (d *drainer) loop() {
	for req := range d.req {
		var res drainResult
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.panicked = p
				}
			}()
			if req.kind == roundUpdates {
				res = d.drainUpdates(req.tallyLen)
			} else {
				res = d.drainValues(req.kind, req.tallyLen)
			}
		}()
		d.res <- res
	}
}

// resizeZero returns buf with length n and all elements zero, reusing
// its capacity when possible.
func resizeZero(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// drainUpdates receives one update-flow message from every boundary
// neighbor, decoding packed updates and summing tally frames.
func (d *drainer) drainUpdates(tallyLen int) drainResult {
	d.updates = d.updates[:0]
	d.tally = resizeZero(d.tally, tallyLen)
	for i, src := range d.plan.recvRanks {
		lids := d.plan.recvLists[i]
		msg := mpi.Recv64(d.comm, int(src))
		for _, w := range mpi.SplitTally(msg, d.tally) {
			idx, value := unpackUpdate(w)
			if int(idx) >= len(lids) {
				panic(fmt.Sprintf("dgraph: rank %d: delta index %d outside shared list of %d with rank %d",
					d.comm.Rank(), idx, len(lids), src))
			}
			d.updates = append(d.updates, Update{LID: lids[idx], Value: value})
		}
		d.comm.Recycle64(msg)
	}
	return drainResult{updates: d.updates, tally: d.tally}
}

// drainValues receives one value-flow message from every neighbor of
// the given direction, decoding (lid, payload) pairs and capturing each
// source's tally frame separately (value tallies are folded caller-side
// so float partial sums can keep global rank order).
func (d *drainer) drainValues(kind roundKind, tallyLen int) drainResult {
	srcs, lists := d.plan.recvRanks, d.plan.recvLists
	if kind == roundValuesRev {
		srcs, lists = d.plan.sendRanks, d.plan.sendLists
	}
	d.outL = d.outL[:0]
	d.outP = d.outP[:0]
	d.tallies = resizeZero(d.tallies, len(srcs)*tallyLen)
	for i, src := range srcs {
		msg := mpi.Recv64(d.comm, int(src))
		body := msg
		if tallyLen > 0 {
			body = mpi.SplitTally(msg, d.tallies[i*tallyLen:(i+1)*tallyLen])
		}
		d.outL, d.outP = decodeValues(int(src), body, lists[i], d.outL, d.outP)
		d.comm.Recycle64(msg)
	}
	return drainResult{outL: d.outL, outP: d.outP, tallies: d.tallies}
}

// NeighborRanks returns the ranks this exchanger sends to (the ranks
// ghosting at least one owned vertex), ascending.
func (ex *DeltaExchanger) NeighborRanks() []int32 {
	out := make([]int32, len(ex.plan.sendRanks))
	copy(out, ex.plan.sendRanks)
	return out
}

// SharedSendGIDs returns the gid-sorted list of owned vertices the
// given neighbor rank ghosts — this rank's view of the directed pair
// (this → rank). It must equal the neighbor's SharedRecvGIDs for this
// rank element-for-element; tests assert that symmetry.
func (ex *DeltaExchanger) SharedSendGIDs(rank int) []int64 {
	for i, r := range ex.plan.sendRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.sendLists[i])
		}
	}
	return nil
}

// SharedRecvGIDs returns the gid-sorted list of ghosts the given
// neighbor rank owns — this rank's view of the directed pair
// (rank → this).
func (ex *DeltaExchanger) SharedRecvGIDs(rank int) []int64 {
	for i, r := range ex.plan.recvRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.recvLists[i])
		}
	}
	return nil
}

func (ex *DeltaExchanger) gidsOf(lids []int32) []int64 {
	out := make([]int64, len(lids))
	for j, lid := range lids {
		out[j] = ex.g.L2G[lid]
	}
	return out
}

// Begin posts the receive side of the next tally-free round; it is
// BeginTally(0). Begin must be followed by exactly one Flush.
func (ex *DeltaExchanger) Begin() { ex.BeginTally(0) }

// BeginTally posts the receive side of the next update round: the
// exchanger's background drainer takes one message from each boundary
// neighbor as it arrives, decoding into ghost-lid updates while the
// caller's compute is still in flight. tallyLen declares the length of
// the piggybacked tally frame every neighbor's message will carry this
// round (0 for none); the matching FlushTally must pass a tally of
// exactly that length. BeginTally must be followed by exactly one
// Flush/FlushTally.
func (ex *DeltaExchanger) BeginTally(tallyLen int) {
	if ex.pending != roundNone {
		panic("dgraph: DeltaExchanger.Begin called twice without Flush")
	}
	ex.ensureDrainer()
	ex.pending = roundUpdates
	ex.tallyLen = tallyLen
	ex.reqCh <- drainReq{kind: roundUpdates, tallyLen: tallyLen}
}

// join collects the pending round's result from the drainer, re-raising
// any panic it recovered.
func (ex *DeltaExchanger) join() drainResult {
	res := <-ex.resCh
	ex.pending = roundNone
	ex.ownTally = nil
	if res.panicked != nil {
		panic(res.panicked)
	}
	ex.Rounds++
	return res
}

// Flush is FlushTally without a tally frame.
func (ex *DeltaExchanger) Flush(q []Update) []Update {
	out, _ := ex.FlushTally(q, nil)
	return out
}

// FlushTally encodes the round's owned-vertex updates, appends the
// rank's tally frame, sends one message to every boundary neighbor,
// joins the drainer posted by BeginTally (posting it now if the caller
// skipped it), and returns the updates received for this rank's ghosts
// together with the element-wise sum of the neighbors' tallies (nil
// when the round carries none). len(tally) must equal the pending
// round's tallyLen on every rank — the tally is part of the message
// framing, so a mismatch corrupts decoding on the peer. The returned
// slices alias exchanger arenas and are valid until the next round.
func (ex *DeltaExchanger) FlushTally(q []Update, tally []int64) ([]Update, []int64) {
	if ex.pending == roundNone {
		ex.BeginTally(len(tally))
	}
	if ex.pending != roundUpdates {
		panic("dgraph: FlushTally during a pending value round")
	}
	if len(tally) != ex.tallyLen {
		panic(fmt.Sprintf("dgraph: FlushTally with tally length %d, Begin posted %d", len(tally), ex.tallyLen))
	}
	plan := ex.plan
	for i := range ex.sendBufs {
		ex.sendBufs[i] = ex.sendBufs[i][:0]
	}
	for _, upd := range q {
		if int(upd.LID) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: DeltaExchanger.Flush with non-owned lid %d", upd.LID))
		}
		for _, t := range plan.targets[upd.LID] {
			ex.sendBufs[t.rankPos] = append(ex.sendBufs[t.rankPos], packUpdate(t.idx, upd.Value))
		}
	}
	for i, dst := range plan.sendRanks {
		ex.sendBufs[i] = mpi.AppendTally(ex.g.Comm, ex.sendBufs[i], tally)
		mpi.Isend64(ex.g.Comm, int(dst), ex.sendBufs[i])
	}
	res := ex.join()
	return res.updates, res.tally
}

// NeighborhoodComplete reports whether every rank of the communicator
// neighbors every other rank — the condition under which tallies
// piggybacked on boundary messages already sum over all ranks, making
// piggybacked reductions (part sizes, convergence counters, PageRank's
// dangling mass) exact without any Allreduce. The first call is
// collective (one Allreduce, the detection the partitioner and the
// overlapped analytics share); the result is cached.
func (ex *DeltaExchanger) NeighborhoodComplete() bool {
	if ex.complete == 0 {
		full := int64(0)
		if len(ex.plan.sendRanks) == ex.g.Comm.Size()-1 {
			full = 1
		}
		if mpi.AllreduceScalar(ex.g.Comm, full, mpi.Min) == 1 {
			ex.complete = 1
		} else {
			ex.complete = 2
		}
	}
	return ex.complete == 1
}

// Value-flow wire format (ExchangeValues and PushValues). One message
// per neighbor pair per round, all-int64:
//
//	[]                          no pairs this round
//	[-1, v0, v1, ...]           dense: one payload per shared-list
//	                            entry, in list order
//	[k, i01, i23, ..., v0..vk)  sparse: k pairs; indices packed two
//	                            int32s per element, then k payloads
//
// Dense costs 1+n elements and sparse 1+⌈k/2⌉+k, against the
// synchronous path's 2k (gid, payload) pairs — a 50% / 25% element
// reduction. The dense form triggers exactly when a caller ships its
// full boundary in lid order, PageRank-style.
const denseHeader = -1

// encodeValues appends one value-flow message for a neighbor whose
// shared list has listLen entries onto dst (a reusable per-neighbor
// arena); idxs/vals hold this round's pairs in queue order.
func encodeValues(dst []int64, listLen int, idxs []int32, vals []int64) []int64 {
	k := len(idxs)
	if k == 0 {
		return dst
	}
	dense := k == listLen
	if dense {
		for j, idx := range idxs {
			if idx != int32(j) {
				dense = false
				break
			}
		}
	}
	if dense {
		dst = append(dst, denseHeader)
		return append(dst, vals...)
	}
	dst = append(dst, int64(k))
	for j := 0; j < k; j += 2 {
		hi, lo := idxs[j], int32(0)
		if j+1 < k {
			lo = idxs[j+1]
		}
		dst = append(dst, packUpdate(hi, lo))
	}
	return append(dst, vals...)
}

// decodeValues appends one value-flow message's (lid, payload) pairs —
// decoded against the pair's shared list — onto outL/outP.
func decodeValues(rank int, msg []int64, list []int32, outL []int32, outP []int64) ([]int32, []int64) {
	if len(msg) == 0 {
		return outL, outP
	}
	if msg[0] == denseHeader {
		vals := msg[1:]
		if len(vals) != len(list) {
			panic(fmt.Sprintf("dgraph: dense value message of %d payloads for shared list of %d", len(vals), len(list)))
		}
		return append(outL, list...), append(outP, vals...)
	}
	k := int(msg[0])
	np := (k + 1) / 2
	if k < 0 || 1+np+k != len(msg) {
		panic(fmt.Sprintf("dgraph: sparse value message header %d inconsistent with length %d", k, len(msg)))
	}
	vals := msg[1+np:]
	for j := 0; j < k; j++ {
		hi, lo := unpackUpdate(msg[1+j/2])
		idx := hi
		if j%2 == 1 {
			idx = lo
		}
		if int(idx) >= len(list) {
			panic(fmt.Sprintf("dgraph: value index %d outside shared list of %d with rank %d", idx, len(list), rank))
		}
		outL = append(outL, list[idx])
		outP = append(outP, vals[j])
	}
	return outL, outP
}

// TallyRound is the piggybacked reduction one split-phase value round
// collected: this rank's own contribution plus one frame per source
// neighbor, kept separate so the caller controls fold order. On a
// complete rank neighborhood the fold covers every rank, so it
// replaces the round's Allreduce exactly.
type TallyRound struct {
	own  []int64
	srcs []int32
	flat []int64
	n    int
	rank int32
}

// Len returns the round's tally frame length.
func (t TallyRound) Len() int { return t.n }

// Sum returns own[i] plus entry i of every received frame — the global
// sum for order-insensitive integer counters (convergence counts).
func (t TallyRound) Sum(i int) int64 {
	s := t.own[i]
	for f := 0; f < len(t.srcs); f++ {
		s += t.flat[f*t.n+i]
	}
	return s
}

// FoldFloat folds entry i as float64 bit patterns in ascending global
// rank order, with this rank's own contribution at its rank position —
// the exact accumulation order of mpi.Allreduce(Sum), so on complete
// neighborhoods the result is bit-identical to the Allreduce it
// replaces.
func (t TallyRound) FoldFloat(i int) float64 {
	var sum float64
	first := true
	add := func(bits int64) {
		v := math.Float64frombits(uint64(bits))
		if first {
			sum, first = v, false
			return
		}
		sum += v
	}
	ownDone := false
	for f, src := range t.srcs {
		if !ownDone && t.rank < src {
			add(t.own[i])
			ownDone = true
		}
		add(t.flat[f*t.n+i])
	}
	if !ownDone {
		add(t.own[i])
	}
	return sum
}

// BeginValues posts a split-phase owner → ghost value round: it encodes
// and sends full 64-bit payloads for the given owned vertices to every
// neighbor ghosting them — with the rank's tally frame appended to each
// message (tally may be nil) — and tells the background drainer to
// start collecting the symmetric incoming messages. The caller then
// computes work that does not read ghost values (interior vertices)
// while the messages are in flight, and settles with FlushValues.
// tally must stay untouched until FlushValues returns.
func (ex *DeltaExchanger) BeginValues(lids []int32, payloads []int64, tally []int64) {
	if ex.pending != roundNone {
		panic("dgraph: BeginValues during a pending round")
	}
	ex.ensureDrainer()
	plan := ex.plan
	for i := range ex.fwdIdx {
		ex.fwdIdx[i] = ex.fwdIdx[i][:0]
		ex.fwdVal[i] = ex.fwdVal[i][:0]
	}
	for qi, lid := range lids {
		if int(lid) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: BeginValues with non-owned lid %d", lid))
		}
		for _, t := range plan.targets[lid] {
			ex.fwdIdx[t.rankPos] = append(ex.fwdIdx[t.rankPos], t.idx)
			ex.fwdVal[t.rankPos] = append(ex.fwdVal[t.rankPos], payloads[qi])
		}
	}
	ex.pending = roundValuesFwd
	ex.tallyLen = len(tally)
	ex.ownTally = tally
	ex.reqCh <- drainReq{kind: roundValuesFwd, tallyLen: len(tally)}
	for i, dst := range plan.sendRanks {
		buf := encodeValues(ex.fwdEnc[i][:0], len(plan.sendLists[i]), ex.fwdIdx[i], ex.fwdVal[i])
		buf = mpi.AppendTally(ex.g.Comm, buf, tally)
		ex.fwdEnc[i] = buf
		mpi.Isend64(ex.g.Comm, int(dst), buf)
	}
}

// FlushValues joins the round posted by BeginValues and returns the
// (ghost lid, payload) pairs received plus the round's tally frames.
// The returned slices alias exchanger arenas and are valid until the
// next round.
func (ex *DeltaExchanger) FlushValues() ([]int32, []int64, TallyRound) {
	if ex.pending != roundValuesFwd {
		panic("dgraph: FlushValues without a pending BeginValues round")
	}
	own, n := ex.ownTally, ex.tallyLen
	res := ex.join()
	tr := TallyRound{own: own, srcs: ex.plan.recvRanks, flat: res.tallies, n: n, rank: int32(ex.g.Comm.Rank())}
	return res.outL, res.outP, tr
}

// BeginPush posts a split-phase ghost → owner value round: payloads for
// the given ghost vertices travel to their owning ranks, with the
// rank's tally frame appended to each message. Settle with FlushPush.
func (ex *DeltaExchanger) BeginPush(lids []int32, payloads []int64, tally []int64) {
	if ex.pending != roundNone {
		panic("dgraph: BeginPush during a pending round")
	}
	ex.ensureDrainer()
	plan := ex.plan
	for i := range ex.revIdx {
		ex.revIdx[i] = ex.revIdx[i][:0]
		ex.revVal[i] = ex.revVal[i][:0]
	}
	for qi, lid := range lids {
		gi := int(lid) - ex.g.NLocal
		if gi < 0 || gi >= ex.g.NGhost {
			panic(fmt.Sprintf("dgraph: BeginPush with owned lid %d", lid))
		}
		pos := plan.ghostRankPos[gi]
		ex.revIdx[pos] = append(ex.revIdx[pos], plan.ghostIdx[gi])
		ex.revVal[pos] = append(ex.revVal[pos], payloads[qi])
	}
	ex.pending = roundValuesRev
	ex.tallyLen = len(tally)
	ex.ownTally = tally
	ex.reqCh <- drainReq{kind: roundValuesRev, tallyLen: len(tally)}
	for i, dst := range plan.recvRanks {
		buf := encodeValues(ex.revEnc[i][:0], len(plan.recvLists[i]), ex.revIdx[i], ex.revVal[i])
		buf = mpi.AppendTally(ex.g.Comm, buf, tally)
		ex.revEnc[i] = buf
		mpi.Isend64(ex.g.Comm, int(dst), buf)
	}
}

// FlushPush joins the round posted by BeginPush and returns the
// (owned lid, payload) pairs received plus the round's tally frames.
// The returned slices alias exchanger arenas and are valid until the
// next round.
func (ex *DeltaExchanger) FlushPush() ([]int32, []int64, TallyRound) {
	if ex.pending != roundValuesRev {
		panic("dgraph: FlushPush without a pending BeginPush round")
	}
	own, n := ex.ownTally, ex.tallyLen
	res := ex.join()
	tr := TallyRound{own: own, srcs: ex.plan.sendRanks, flat: res.tallies, n: n, rank: int32(ex.g.Comm.Rank())}
	return res.outL, res.outP, tr
}

// ExchangeValues ships full 64-bit payloads for the given owned
// vertices to every neighbor ghosting them — the value-flow engine
// behind ExchangeInt64/ExchangeFloat64 in async mode — and returns the
// (ghost lid, payload) pairs received from neighbors. It is the
// blocking composition of BeginValues and FlushValues; it must not
// overlap a pending round.
func (ex *DeltaExchanger) ExchangeValues(lids []int32, payloads []int64) ([]int32, []int64) {
	ex.BeginValues(lids, payloads, nil)
	outL, outP, _ := ex.FlushValues()
	return outL, outP
}

// PushValues ships full 64-bit payloads for the given ghost vertices to
// their owning ranks — the reverse flow behind PushToOwners in async
// mode — and returns the (owned lid, payload) pairs received. It is
// the blocking composition of BeginPush and FlushPush; it must not
// overlap a pending round.
func (ex *DeltaExchanger) PushValues(lids []int32, payloads []int64) ([]int32, []int64) {
	ex.BeginPush(lids, payloads, nil)
	outL, outP, _ := ex.FlushPush()
	return outL, outP
}
