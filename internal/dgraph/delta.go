package dgraph

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Asynchronous delta-only boundary exchange. The synchronous path
// (exchangeRaw) re-derives each update's destinations from the
// adjacency on every call and ships (gid, value) as two 64-bit
// elements through a world-wide Alltoallv. This file precomputes the
// boundary structure once per graph — for every neighbor rank, the
// gid-sorted list of vertices shared with it — so updates name their
// vertex by an index into the shared list instead of by global id and
// travel over nonblocking point-to-point messages. Three flows ride
// the same plan:
//
//   - Update flow (Begin/Flush): 32-bit part labels packed one element
//     per update, with the receive side drained on a background
//     goroutine while the rank's worker threads are still propagating
//     labels, and an optional piggybacked tally frame (mpi.AppendTally)
//     that lets a round double as the iteration's reduction.
//   - Value flow (ExchangeValues): full 64-bit payloads owner → ghost,
//     for the analytics helpers ExchangeInt64/ExchangeFloat64.
//   - Reverse flow (PushValues): full 64-bit payloads ghost → owner,
//     for frontier algorithms (PushToOwners).

// ghostTarget records one destination of an owned boundary vertex:
// which neighbor (by position in the plan's sendRanks) ghosts it and
// at which index it sits in the pair's shared gid-sorted list.
type ghostTarget struct {
	rankPos int32
	idx     int32
}

// boundaryPlan is the precomputed per-neighbor boundary structure of
// one rank. Both sides of every rank pair derive the same shared
// vertex list independently (sorted by gid), which is what lets an
// update name its vertex by list index instead of by global id.
type boundaryPlan struct {
	// sendRanks are the neighbor ranks that ghost at least one owned
	// vertex, ascending.
	sendRanks []int32
	// sendLists[i] holds the owned lids shared with sendRanks[i] in
	// increasing gid order.
	sendLists [][]int32
	// targets[v] lists, for owned vertex v, every (neighbor, index)
	// slot it occupies; nil for interior vertices.
	targets [][]ghostTarget
	// recvRanks are the neighbor ranks owning at least one ghost,
	// ascending (equal to sendRanks by symmetry of the undirected
	// graph, but derived independently from the ghost set).
	recvRanks []int32
	// recvLists[i] holds the ghost lids owned by recvRanks[i] in
	// increasing gid order — index-compatible with the owner's
	// sendLists entry for this rank.
	recvLists [][]int32
	// ghostRankPos[i] and ghostIdx[i] locate ghost NLocal+i in the
	// receive-side structure: its owner's position in recvRanks and its
	// index in that pair's shared list. They are the reverse-flow
	// (ghost → owner) counterpart of targets.
	ghostRankPos []int32
	ghostIdx     []int32
}

// newBoundaryPlan derives the plan from purely local structure; no
// communication happens. Correctness rests on a symmetry of the CSR
// build: owned vertex v is ghosted on rank r exactly when v has a
// neighbor owned by r, so both endpoints of a rank pair can enumerate
// the same shared set and sort it by gid.
func newBoundaryPlan(g *Graph) *boundaryPlan {
	nprocs := g.Comm.Size()
	p := &boundaryPlan{targets: make([][]ghostTarget, g.NLocal)}

	// Send side: owned vertices in lid order are already gid-sorted.
	seen := make([]int32, nprocs) // last owned lid appended per rank, +1
	perRank := make([][]int32, nprocs)
	for v := 0; v < g.NLocal; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.IsGhost(u) {
				continue
			}
			r := g.GhostOwner[int(u)-g.NLocal]
			if seen[r] == int32(v)+1 {
				continue
			}
			seen[r] = int32(v) + 1
			perRank[r] = append(perRank[r], int32(v))
		}
	}
	for r := 0; r < nprocs; r++ {
		if len(perRank[r]) == 0 {
			continue
		}
		pos := int32(len(p.sendRanks))
		p.sendRanks = append(p.sendRanks, int32(r))
		p.sendLists = append(p.sendLists, perRank[r])
		for idx, lid := range perRank[r] {
			p.targets[lid] = append(p.targets[lid], ghostTarget{rankPos: pos, idx: int32(idx)})
		}
	}

	// Receive side: ghosts grouped by owner, then gid-sorted to match
	// the owner's enumeration order.
	ghostsByOwner := make([][]int32, nprocs)
	for i := 0; i < g.NGhost; i++ {
		r := g.GhostOwner[i]
		ghostsByOwner[r] = append(ghostsByOwner[r], int32(g.NLocal+i))
	}
	p.ghostRankPos = make([]int32, g.NGhost)
	p.ghostIdx = make([]int32, g.NGhost)
	for r := 0; r < nprocs; r++ {
		lids := ghostsByOwner[r]
		if len(lids) == 0 {
			continue
		}
		sort.Slice(lids, func(a, b int) bool { return g.L2G[lids[a]] < g.L2G[lids[b]] })
		pos := int32(len(p.recvRanks))
		p.recvRanks = append(p.recvRanks, int32(r))
		p.recvLists = append(p.recvLists, lids)
		for idx, lid := range lids {
			p.ghostRankPos[int(lid)-g.NLocal] = pos
			p.ghostIdx[int(lid)-g.NLocal] = int32(idx)
		}
	}
	return p
}

// packUpdate encodes (index in shared list, part value) as one int64 —
// half the wire volume of the synchronous (gid, value) encoding.
func packUpdate(idx int32, value int32) int64 {
	return int64(uint64(uint32(idx))<<32 | uint64(uint32(value)))
}

// unpackUpdate reverses packUpdate.
func unpackUpdate(w int64) (idx int32, value int32) {
	return int32(uint32(uint64(w) >> 32)), int32(uint32(uint64(w)))
}

// DeltaExchanger runs rounds of delta-only boundary exchange over
// nonblocking point-to-point messages. Usage per update round,
// collectively on every rank of the graph's communicator:
//
//	ex.Begin()                  // post receives, then compute locally
//	in := ex.Flush(updates)     // ship deltas, collect incoming
//
// Begin starts a background drainer that receives and decodes each
// neighbor's message while the caller is still computing; Flush sends
// this rank's queued updates (one message per boundary neighbor, empty
// when nothing changed) and then joins the drainer. The
// BeginTally/FlushTally variants additionally piggyback a small
// reduction vector on the same messages, which is how the partitioner
// settles part sizes without an Allreduce. ExchangeValues and
// PushValues reuse the same boundary plan for blocking 64-bit value
// exchanges (forward and reverse), behind Graph.SetAsyncExchange.
//
// Every rank must call the same sequence of rounds or peers deadlock,
// exactly as they would skipping a collective. Calling Flush without
// Begin is allowed (the receive side is posted on entry, losing only
// overlap).
type DeltaExchanger struct {
	g       *Graph
	plan    *boundaryPlan
	pending chan drainResult
	// tallyLen is the tally length the pending round's drainer expects;
	// Flush must pass a tally of exactly this length.
	tallyLen int
	// sendBufs are reusable per-neighbor encode buffers.
	sendBufs [][]int64
	// Rounds counts completed Flush calls (diagnostics and tests).
	Rounds int64
}

// drainResult is what the background drainer hands back to Flush: the
// decoded updates and summed tallies, or the panic it recovered.
// Panics must travel back to the rank's main goroutine — re-raised
// from Flush — so mpi.Run's per-rank recovery sees them; a panic
// escaping on the drainer goroutine itself would kill the whole
// process.
type drainResult struct {
	updates  []Update
	tally    []int64
	panicked any
}

// NewDeltaExchanger builds the boundary plan for g. Construction is
// local — safe to call on any subset of ranks — but exchanging is
// collective.
func (g *Graph) NewDeltaExchanger() *DeltaExchanger {
	plan := newBoundaryPlan(g)
	return &DeltaExchanger{
		g:        g,
		plan:     plan,
		sendBufs: make([][]int64, len(plan.sendRanks)),
	}
}

// NeighborRanks returns the ranks this exchanger sends to (the ranks
// ghosting at least one owned vertex), ascending.
func (ex *DeltaExchanger) NeighborRanks() []int32 {
	out := make([]int32, len(ex.plan.sendRanks))
	copy(out, ex.plan.sendRanks)
	return out
}

// SharedSendGIDs returns the gid-sorted list of owned vertices the
// given neighbor rank ghosts — this rank's view of the directed pair
// (this → rank). It must equal the neighbor's SharedRecvGIDs for this
// rank element-for-element; tests assert that symmetry.
func (ex *DeltaExchanger) SharedSendGIDs(rank int) []int64 {
	for i, r := range ex.plan.sendRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.sendLists[i])
		}
	}
	return nil
}

// SharedRecvGIDs returns the gid-sorted list of ghosts the given
// neighbor rank owns — this rank's view of the directed pair
// (rank → this).
func (ex *DeltaExchanger) SharedRecvGIDs(rank int) []int64 {
	for i, r := range ex.plan.recvRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.recvLists[i])
		}
	}
	return nil
}

func (ex *DeltaExchanger) gidsOf(lids []int32) []int64 {
	out := make([]int64, len(lids))
	for j, lid := range lids {
		out[j] = ex.g.L2G[lid]
	}
	return out
}

// Begin posts the receive side of the next tally-free round; it is
// BeginTally(0). Begin must be followed by exactly one Flush.
func (ex *DeltaExchanger) Begin() { ex.BeginTally(0) }

// BeginTally posts the receive side of the next round: a background
// drainer that takes one message from each boundary neighbor as it
// arrives, decoding into ghost-lid updates while the caller's compute
// is still in flight. tallyLen declares the length of the piggybacked
// tally frame every neighbor's message will carry this round (0 for
// none); the matching FlushTally must pass a tally of exactly that
// length. BeginTally must be followed by exactly one Flush/FlushTally.
func (ex *DeltaExchanger) BeginTally(tallyLen int) {
	if ex.pending != nil {
		panic("dgraph: DeltaExchanger.Begin called twice without Flush")
	}
	plan := ex.plan
	ch := make(chan drainResult, 1)
	ex.pending = ch
	ex.tallyLen = tallyLen
	go func() {
		var res drainResult
		if tallyLen > 0 {
			res.tally = make([]int64, tallyLen)
		}
		defer func() {
			if p := recover(); p != nil {
				res.panicked = p
			}
			ch <- res
		}()
		for i, src := range plan.recvRanks {
			lids := plan.recvLists[i]
			msg := mpi.Irecv[int64](ex.g.Comm, int(src)).Await()
			for _, w := range mpi.SplitTally(msg, res.tally) {
				idx, value := unpackUpdate(w)
				if int(idx) >= len(lids) {
					panic(fmt.Sprintf("dgraph: rank %d: delta index %d outside shared list of %d with rank %d",
						ex.g.Comm.Rank(), idx, len(lids), src))
				}
				res.updates = append(res.updates, Update{LID: lids[idx], Value: value})
			}
		}
	}()
}

// Flush is FlushTally without a tally frame.
func (ex *DeltaExchanger) Flush(q []Update) []Update {
	out, _ := ex.FlushTally(q, nil)
	return out
}

// FlushTally encodes the round's owned-vertex updates, appends the
// rank's tally frame, sends one message to every boundary neighbor,
// joins the drainer posted by BeginTally (posting it now if the caller
// skipped it), and returns the updates received for this rank's ghosts
// together with the element-wise sum of the neighbors' tallies (nil
// when the round carries none). len(tally) must equal the pending
// round's tallyLen on every rank — the tally is part of the message
// framing, so a mismatch corrupts decoding on the peer.
func (ex *DeltaExchanger) FlushTally(q []Update, tally []int64) ([]Update, []int64) {
	if ex.pending == nil {
		ex.BeginTally(len(tally))
	}
	if len(tally) != ex.tallyLen {
		panic(fmt.Sprintf("dgraph: FlushTally with tally length %d, Begin posted %d", len(tally), ex.tallyLen))
	}
	plan := ex.plan
	for i := range ex.sendBufs {
		ex.sendBufs[i] = ex.sendBufs[i][:0]
	}
	for _, upd := range q {
		if int(upd.LID) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: DeltaExchanger.Flush with non-owned lid %d", upd.LID))
		}
		for _, t := range plan.targets[upd.LID] {
			ex.sendBufs[t.rankPos] = append(ex.sendBufs[t.rankPos], packUpdate(t.idx, upd.Value))
		}
	}
	reqs := make([]mpi.Request, len(plan.sendRanks))
	for i, dst := range plan.sendRanks {
		ex.sendBufs[i] = mpi.AppendTally(ex.g.Comm, ex.sendBufs[i], tally)
		reqs[i] = mpi.Isend(ex.g.Comm, int(dst), ex.sendBufs[i])
	}
	mpi.Waitall(reqs...)
	res := <-ex.pending
	ex.pending = nil
	if res.panicked != nil {
		panic(res.panicked)
	}
	ex.Rounds++
	return res.updates, res.tally
}

// Value-flow wire format (ExchangeValues and PushValues). One message
// per neighbor pair per round, all-int64:
//
//	[]                          no pairs this round
//	[-1, v0, v1, ...]           dense: one payload per shared-list
//	                            entry, in list order
//	[k, i01, i23, ..., v0..vk)  sparse: k pairs; indices packed two
//	                            int32s per element, then k payloads
//
// Dense costs 1+n elements and sparse 1+⌈k/2⌉+k, against the
// synchronous path's 2k (gid, payload) pairs — a 50% / 25% element
// reduction. The dense form triggers exactly when a caller ships its
// full boundary in lid order, PageRank-style.
const denseHeader = -1

// encodeValues builds one value-flow message for a neighbor whose
// shared list has listLen entries; idxs/vals hold this round's pairs in
// queue order.
func encodeValues(listLen int, idxs []int32, vals []int64) []int64 {
	k := len(idxs)
	if k == 0 {
		return nil
	}
	dense := k == listLen
	if dense {
		for j, idx := range idxs {
			if idx != int32(j) {
				dense = false
				break
			}
		}
	}
	if dense {
		msg := make([]int64, 0, 1+k)
		msg = append(msg, denseHeader)
		return append(msg, vals...)
	}
	np := (k + 1) / 2
	msg := make([]int64, 0, 1+np+k)
	msg = append(msg, int64(k))
	for j := 0; j < k; j += 2 {
		hi, lo := idxs[j], int32(0)
		if j+1 < k {
			lo = idxs[j+1]
		}
		msg = append(msg, packUpdate(hi, lo))
	}
	return append(msg, vals...)
}

// decodeValues appends one value-flow message's (lid, payload) pairs —
// decoded against the pair's shared list — onto outL/outP.
func decodeValues(rank int, msg []int64, list []int32, outL []int32, outP []int64) ([]int32, []int64) {
	if len(msg) == 0 {
		return outL, outP
	}
	if msg[0] == denseHeader {
		vals := msg[1:]
		if len(vals) != len(list) {
			panic(fmt.Sprintf("dgraph: dense value message of %d payloads for shared list of %d", len(vals), len(list)))
		}
		return append(outL, list...), append(outP, vals...)
	}
	k := int(msg[0])
	np := (k + 1) / 2
	if k < 0 || 1+np+k != len(msg) {
		panic(fmt.Sprintf("dgraph: sparse value message header %d inconsistent with length %d", k, len(msg)))
	}
	vals := msg[1+np:]
	for j := 0; j < k; j++ {
		hi, lo := unpackUpdate(msg[1+j/2])
		idx := hi
		if j%2 == 1 {
			idx = lo
		}
		if int(idx) >= len(list) {
			panic(fmt.Sprintf("dgraph: value index %d outside shared list of %d with rank %d", idx, len(list), rank))
		}
		outL = append(outL, list[idx])
		outP = append(outP, vals[j])
	}
	return outL, outP
}

// ExchangeValues ships full 64-bit payloads for the given owned
// vertices to every neighbor ghosting them — the value-flow engine
// behind ExchangeInt64/ExchangeFloat64 in async mode — and returns the
// (ghost lid, payload) pairs received from neighbors. It is a
// collective over the graph's communicator; it must not overlap a
// pending Begin round.
func (ex *DeltaExchanger) ExchangeValues(lids []int32, payloads []int64) ([]int32, []int64) {
	if ex.pending != nil {
		panic("dgraph: ExchangeValues during a pending update round")
	}
	plan := ex.plan
	nIdx := make([][]int32, len(plan.sendRanks))
	nVal := make([][]int64, len(plan.sendRanks))
	for qi, lid := range lids {
		if int(lid) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: ExchangeValues with non-owned lid %d", lid))
		}
		for _, t := range plan.targets[lid] {
			nIdx[t.rankPos] = append(nIdx[t.rankPos], t.idx)
			nVal[t.rankPos] = append(nVal[t.rankPos], payloads[qi])
		}
	}
	reqs := make([]mpi.Request, len(plan.sendRanks))
	for i, dst := range plan.sendRanks {
		reqs[i] = mpi.Isend(ex.g.Comm, int(dst), encodeValues(len(plan.sendLists[i]), nIdx[i], nVal[i]))
	}
	mpi.Waitall(reqs...)
	var outL []int32
	var outP []int64
	for i, src := range plan.recvRanks {
		msg := mpi.Irecv[int64](ex.g.Comm, int(src)).Await()
		outL, outP = decodeValues(int(src), msg, plan.recvLists[i], outL, outP)
	}
	return outL, outP
}

// PushValues ships full 64-bit payloads for the given ghost vertices to
// their owning ranks — the reverse flow behind PushToOwners in async
// mode — and returns the (owned lid, payload) pairs received. It is a
// collective over the graph's communicator; it must not overlap a
// pending Begin round.
func (ex *DeltaExchanger) PushValues(lids []int32, payloads []int64) ([]int32, []int64) {
	if ex.pending != nil {
		panic("dgraph: PushValues during a pending update round")
	}
	plan := ex.plan
	nIdx := make([][]int32, len(plan.recvRanks))
	nVal := make([][]int64, len(plan.recvRanks))
	for qi, lid := range lids {
		gi := int(lid) - ex.g.NLocal
		if gi < 0 || gi >= ex.g.NGhost {
			panic(fmt.Sprintf("dgraph: PushValues with owned lid %d", lid))
		}
		pos := plan.ghostRankPos[gi]
		nIdx[pos] = append(nIdx[pos], plan.ghostIdx[gi])
		nVal[pos] = append(nVal[pos], payloads[qi])
	}
	reqs := make([]mpi.Request, len(plan.recvRanks))
	for i, dst := range plan.recvRanks {
		reqs[i] = mpi.Isend(ex.g.Comm, int(dst), encodeValues(len(plan.recvLists[i]), nIdx[i], nVal[i]))
	}
	mpi.Waitall(reqs...)
	var outL []int32
	var outP []int64
	for i, src := range plan.sendRanks {
		msg := mpi.Irecv[int64](ex.g.Comm, int(src)).Await()
		outL, outP = decodeValues(int(src), msg, plan.sendLists[i], outL, outP)
	}
	return outL, outP
}
