package dgraph

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/mpi"
)

// Asynchronous delta-only boundary exchange. The synchronous path
// (exchangeRaw) re-derives each update's destinations from the
// adjacency on every call and ships (gid, value) as two 64-bit
// elements through a world-wide Alltoallv. This file precomputes the
// boundary structure once per graph — for every neighbor rank, the
// gid-sorted list of vertices shared with it — so updates name their
// vertex by an index into the shared list instead of by global id and
// travel over nonblocking point-to-point messages. Three flows ride
// the same plan, all split-phase (post, overlap compute, settle):
//
//   - Update flow (Begin/Flush, BeginTally/FlushTally): 32-bit part
//     labels packed one element per update, with the receive side
//     drained on a background goroutine while the rank's worker
//     threads are still propagating labels, and an optional
//     piggybacked tally frame (mpi.AppendTally) that lets a round
//     double as the iteration's reduction.
//   - Value flow (BeginValues/FlushValues): full 64-bit payloads
//     owner → ghost, for the analytics helpers
//     ExchangeInt64/ExchangeFloat64 and the overlapped analytics
//     engines. Begin posts the sends and the drainer; the caller
//     computes interior work while messages are in flight and settles
//     ghosts at Flush.
//   - Reverse flow (BeginPush/FlushPush): full 64-bit payloads
//     ghost → owner, for frontier algorithms (PushToOwners).
//
// Value rounds carry their tally frames per source (TallyRound)
// instead of pre-summed, so float partial sums can be folded in global
// rank order — bit-identical to the Allreduce they replace.
//
// Every round runs on a persistent per-exchanger drainer goroutine and
// reusable encode/decode arenas, with transfer copies drawn from the
// mpi world's buffer pool (Isend64/Recv64/Recycle64): a steady-state
// round performs zero heap allocations on either side.
//
// Rounds are pipelined to a construction-time depth k (Graph's
// SetPipeDepth knob, default DefaultPipeDepth): further Begin* calls
// may be posted while up to k-1 earlier rounds are still unflushed, so
// k rounds of messages are in flight at once and a flush settles the
// OLDEST pending round. Each round carries a monotone sequence number
// — composed with an optional caller-set wave id (SetRoundWave) into
// an mpi round tag, asserted on receive so skewed pipelines fail
// loudly — and the drainer cycles its decode arenas modulo the depth,
// which is what stretches the aliasing contract from "valid until the
// next round is posted" to "valid for depth-1 subsequent rounds".

// ghostTarget records one destination of an owned boundary vertex:
// which neighbor (by position in the plan's sendRanks) ghosts it and
// at which index it sits in the pair's shared gid-sorted list.
type ghostTarget struct {
	rankPos int32
	idx     int32
}

// boundaryPlan is the precomputed per-neighbor boundary structure of
// one rank. Both sides of every rank pair derive the same shared
// vertex list independently (sorted by gid), which is what lets an
// update name its vertex by list index instead of by global id.
type boundaryPlan struct {
	// sendRanks are the neighbor ranks that ghost at least one owned
	// vertex, ascending.
	sendRanks []int32
	// sendLists[i] holds the owned lids shared with sendRanks[i] in
	// increasing gid order.
	sendLists [][]int32
	// targets[v] lists, for owned vertex v, every (neighbor, index)
	// slot it occupies; nil for interior vertices.
	targets [][]ghostTarget
	// recvRanks are the neighbor ranks owning at least one ghost,
	// ascending (equal to sendRanks by symmetry of the undirected
	// graph, but derived independently from the ghost set).
	recvRanks []int32
	// recvLists[i] holds the ghost lids owned by recvRanks[i] in
	// increasing gid order — index-compatible with the owner's
	// sendLists entry for this rank.
	recvLists [][]int32
	// ghostRankPos[i] and ghostIdx[i] locate ghost NLocal+i in the
	// receive-side structure: its owner's position in recvRanks and its
	// index in that pair's shared list. They are the reverse-flow
	// (ghost → owner) counterpart of targets.
	ghostRankPos []int32
	ghostIdx     []int32
}

// newBoundaryPlan derives the plan from purely local structure; no
// communication happens. Correctness rests on a symmetry of the CSR
// build: owned vertex v is ghosted on rank r exactly when v has a
// neighbor owned by r, so both endpoints of a rank pair can enumerate
// the same shared set and sort it by gid.
func newBoundaryPlan(g *Graph) *boundaryPlan {
	nprocs := g.Comm.Size()
	p := &boundaryPlan{targets: make([][]ghostTarget, g.NLocal)}

	// Send side: owned vertices in lid order are already gid-sorted.
	seen := make([]int32, nprocs) // last owned lid appended per rank, +1
	perRank := make([][]int32, nprocs)
	for v := 0; v < g.NLocal; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.IsGhost(u) {
				continue
			}
			r := g.GhostOwner[int(u)-g.NLocal]
			if seen[r] == int32(v)+1 {
				continue
			}
			seen[r] = int32(v) + 1
			perRank[r] = append(perRank[r], int32(v))
		}
	}
	for r := 0; r < nprocs; r++ {
		if len(perRank[r]) == 0 {
			continue
		}
		pos := int32(len(p.sendRanks))
		p.sendRanks = append(p.sendRanks, int32(r))
		p.sendLists = append(p.sendLists, perRank[r])
		for idx, lid := range perRank[r] {
			p.targets[lid] = append(p.targets[lid], ghostTarget{rankPos: pos, idx: int32(idx)})
		}
	}

	// Receive side: ghosts grouped by owner, then gid-sorted to match
	// the owner's enumeration order.
	ghostsByOwner := make([][]int32, nprocs)
	for i := 0; i < g.NGhost; i++ {
		r := g.GhostOwner[i]
		ghostsByOwner[r] = append(ghostsByOwner[r], int32(g.NLocal+i))
	}
	p.ghostRankPos = make([]int32, g.NGhost)
	p.ghostIdx = make([]int32, g.NGhost)
	for r := 0; r < nprocs; r++ {
		lids := ghostsByOwner[r]
		if len(lids) == 0 {
			continue
		}
		sort.Slice(lids, func(a, b int) bool { return g.L2G[lids[a]] < g.L2G[lids[b]] })
		pos := int32(len(p.recvRanks))
		p.recvRanks = append(p.recvRanks, int32(r))
		p.recvLists = append(p.recvLists, lids)
		for idx, lid := range lids {
			p.ghostRankPos[int(lid)-g.NLocal] = pos
			p.ghostIdx[int(lid)-g.NLocal] = int32(idx)
		}
	}
	return p
}

// packUpdate encodes (index in shared list, part value) as one int64 —
// half the wire volume of the synchronous (gid, value) encoding.
func packUpdate(idx int32, value int32) int64 {
	return int64(uint64(uint32(idx))<<32 | uint64(uint32(value)))
}

// unpackUpdate reverses packUpdate.
func unpackUpdate(w int64) (idx int32, value int32) {
	return int32(uint32(uint64(w) >> 32)), int32(uint32(uint64(w)))
}

// roundKind discriminates the three split-phase round types.
type roundKind int8

// Round kinds.
const (
	roundNone roundKind = iota
	roundUpdates
	roundValuesFwd
	roundValuesRev
)

// DefaultPipeDepth is the default pipeline depth: how many rounds may
// be in flight per exchanger at once when the graph does not select a
// deeper pipeline with SetPipeDepth. At the default, a Begin* may be
// posted while at most one earlier round is still unflushed. The
// drainer cycles its decode arenas modulo the configured depth.
const DefaultPipeDepth = 2

// MinPipeDepth is the smallest accepted pipeline depth. Depth 1 would
// forbid posting a round behind a pending one — the split-phase BFS
// schedule (push posted behind the previous refresh) needs two — so
// shallower knob values are rejected at SetPipeDepth.
const MinPipeDepth = 2

// DeltaExchanger runs rounds of delta-only boundary exchange over
// nonblocking point-to-point messages. Usage per update round,
// collectively on every rank of the graph's communicator:
//
//	ex.Begin()                  // post receives, then compute locally
//	in := ex.Flush(updates)     // ship deltas, collect incoming
//
// Begin tells the exchanger's background drainer to receive and decode
// each neighbor's message while the caller is still computing; Flush
// sends this rank's queued updates (one message per boundary neighbor,
// empty when nothing changed) and then joins the drainer. The
// BeginTally/FlushTally variants additionally piggyback a small
// reduction vector on the same messages, which is how the partitioner
// settles part sizes without an Allreduce.
//
// The value flows are split-phase too: BeginValues/FlushValues ship
// full 64-bit payloads owner → ghost, BeginPush/FlushPush ghost →
// owner, both with optional per-source tally frames (TallyRound).
// Begin posts the sends and the drainer, so the caller can compute
// interior work while the messages are in flight; Flush joins and
// returns the incoming pairs. ExchangeValues and PushValues are the
// blocking compositions behind Graph.SetAsyncExchange.
//
// Rounds pipeline to the graph's configured depth (SetPipeDepth,
// default DefaultPipeDepth): after BeginValues (or BeginPush), further
// Begin* calls of any kind may be posted before the first round's
// Flush, keeping up to depth rounds of messages in flight; each Flush
// settles the oldest pending round, in FIFO order. The overlapped BFS
// uses this to keep depth d's ghost-refresh round and depth d+1's
// discovery push in flight simultaneously, and the multi-wave HC
// engine interleaves depth/2 independent BFS waves' rounds — stamped
// with per-wave round tags via SetRoundWave — on the same pipeline.
//
// Every rank must call the same sequence of rounds or peers deadlock,
// exactly as they would skipping a collective. Calling Flush without
// Begin is allowed (the receive side is posted on entry, losing only
// overlap). Slices returned by a round alias per-exchanger arenas,
// cycled modulo the depth: they stay valid for depth-1 subsequent
// rounds (depth-1 Begin* calls after the Flush that returned them).
//
// Construction (NewDeltaExchanger, Graph.AsyncExchanger) is collective:
// it performs the one-time rank-neighborhood completeness Allreduce so
// NeighborhoodComplete is a pure cached read afterwards. An exchanger
// owns one background goroutine; Close releases it (graph teardown
// calls it via Graph.Close, and a finalizer backstops leaks).
type DeltaExchanger struct {
	g    *Graph
	plan *boundaryPlan

	// The persistent background drainer: one goroutine per exchanger,
	// started on first use and shut down by Close (with a finalizer as
	// backstop for exchangers that are collected without one). Posting
	// a round costs a channel send instead of a goroutine spawn, and
	// the drainer's decode arenas persist across rounds — both
	// load-bearing for the zero-allocation steady state.
	reqCh  chan drainReq
	resCh  chan drainResult
	doneCh chan struct{}

	// depth is the construction-time pipeline depth (Graph.PipeDepth):
	// how many rounds may be in flight at once.
	depth int
	// pend is the FIFO of posted-but-unflushed rounds (at most depth);
	// seq numbers rounds monotonically and — composed with the current
	// wave id — stamps their messages as mpi round tags.
	pend  []pendingRound
	npend int
	seq   uint32
	// wave is the 8-bit wave id stamped into subsequently posted
	// rounds' tags (SetRoundWave); 0 for single-stream callers.
	wave int

	// sendBufs are reusable per-neighbor encode buffers (update flow).
	sendBufs [][]int64
	// fwdIdx/fwdVal/fwdEnc are the owner→ghost value-flow arenas, one
	// per send neighbor; revIdx/revVal/revEnc the ghost→owner
	// counterparts, one per receive neighbor. They are consumed by the
	// time Begin* returns (mpi sends copy eagerly), so pipelined rounds
	// share them.
	fwdIdx [][]int32
	fwdVal [][]int64
	fwdEnc [][]int64
	revIdx [][]int32
	revVal [][]int64
	revEnc [][]int64

	// complete caches the construction-time completeness detection:
	// 1 yes, 2 no (0 only during construction itself).
	complete int8

	// Rounds counts completed rounds; MaxDepth is the high-water mark
	// of simultaneously pending rounds (2 once a caller pipelines).
	// Both are diagnostics for tests and the exchange experiment.
	Rounds   int64
	MaxDepth int
}

// pendingRound is one posted-but-unflushed round: its kind, declared
// tally frame length, the caller's own tally contribution (value
// rounds), its sequence number (which selects the drainer arena), and
// the composed (wave, seq) tag its messages carry.
type pendingRound struct {
	kind     roundKind
	tallyLen int
	ownTally []int64
	seq      uint32
	tag      uint32
}

// drainReq tells the drainer what the next round receives: which
// direction's messages, how long their tally frames are, the sequence
// number selecting the decode arena, and the round tag to assert on
// every frame.
type drainReq struct {
	kind     roundKind
	tallyLen int
	seq      uint32
	tag      uint32
}

// drainResult is what the background drainer hands back at Flush: the
// decoded updates and summed tallies (update rounds) or decoded pairs
// and per-source tally frames (value rounds), or the panic it
// recovered. Panics must travel back to the rank's main goroutine —
// re-raised from Flush — so mpi.Run's per-rank recovery sees them; a
// panic escaping on the drainer goroutine itself would kill the whole
// process. All slices alias the arena of the round's parity.
type drainResult struct {
	updates  []Update
	tally    []int64
	outL     []int32
	outP     []int64
	tallies  []int64
	panicked any
}

// drainArena is one round slot's set of decode buffers. The drainer
// owns depth of them and serves round seq from arena seq%depth, so a
// pipelined caller can still read round r's result while the drainer
// decodes rounds r+1 … r+depth-1 into the other arenas.
type drainArena struct {
	updates []Update
	tally   []int64
	outL    []int32
	outP    []int64
	tallies []int64
}

// drainer is the background half of one exchanger. It deliberately
// holds no reference back to the DeltaExchanger, so the exchanger can
// be collected (its finalizer closes req, ending the goroutine).
type drainer struct {
	comm   *mpi.Comm
	plan   *boundaryPlan
	req    chan drainReq
	res    chan drainResult
	done   chan struct{}
	arenas []drainArena
}

// NewDeltaExchanger builds the boundary plan for g and performs the
// one-time rank-neighborhood completeness detection. The plan build is
// local, but the detection is an Allreduce, so construction is
// COLLECTIVE: every rank of the graph's communicator must construct
// together (Graph.AsyncExchanger call sites do — the partitioner, the
// analytics engines, and SetAsyncExchange all construct on every rank
// at the same point). Moving the Allreduce here is what makes
// NeighborhoodComplete safe to call from conditional code: it is a
// cached read, never a hidden collective that could deadlock ranks
// disagreeing about whether to ask.
func (g *Graph) NewDeltaExchanger() *DeltaExchanger {
	plan := newBoundaryPlan(g)
	ex := &DeltaExchanger{
		g:        g,
		plan:     plan,
		depth:    g.PipeDepth(),
		sendBufs: make([][]int64, len(plan.sendRanks)),
		fwdIdx:   make([][]int32, len(plan.sendRanks)),
		fwdVal:   make([][]int64, len(plan.sendRanks)),
		fwdEnc:   make([][]int64, len(plan.sendRanks)),
		revIdx:   make([][]int32, len(plan.recvRanks)),
		revVal:   make([][]int64, len(plan.recvRanks)),
		revEnc:   make([][]int64, len(plan.recvRanks)),
	}
	ex.pend = make([]pendingRound, ex.depth)
	if mpi.NeighborhoodComplete(g.Comm, len(plan.sendRanks)) {
		ex.complete = 1
	} else {
		ex.complete = 2
	}
	return ex
}

// ensureDrainer lazily starts the exchanger's persistent drainer
// (again, if the exchanger was Closed and then reused).
func (ex *DeltaExchanger) ensureDrainer() {
	if ex.reqCh != nil {
		return
	}
	d := &drainer{
		comm:   ex.g.Comm,
		plan:   ex.plan,
		req:    make(chan drainReq, ex.depth),
		res:    make(chan drainResult, ex.depth),
		done:   make(chan struct{}),
		arenas: make([]drainArena, ex.depth),
	}
	ex.reqCh, ex.resCh, ex.doneCh = d.req, d.res, d.done
	go d.loop()
	runtime.SetFinalizer(ex, finalizeExchanger)
}

// Close settles any rounds still in flight (re-raising a drainer panic
// like the Flush that was never called would have) and stops the
// exchanger's background drainer goroutine, waiting until it has
// exited. Close is idempotent, and a closed exchanger may be reused —
// the next Begin* starts a fresh drainer. Graph.Close calls it during
// teardown; the finalizer remains only as a backstop for exchangers
// dropped without Close (finalizers are not guaranteed to run, so
// long-lived processes must not rely on it).
//
// Close belongs on the NORMAL teardown path, not in a defer that can
// run while a panic unwinds: settling a pending round blocks until the
// peers' messages arrive, and a rank that panicked out of the
// collective schedule would wait for sends that never come — before
// mpi.Run's recovery gets the chance to poison the world. After a
// panic, skip Close; poison unblocks the drainer and the finalizer
// reclaims it. Close must also not race a concurrent Begin*/Flush,
// and — like Flush — it must not be called with a pending update
// round whose FlushTally never ran, since peers are still waiting for
// that round's messages.
func (ex *DeltaExchanger) Close() {
	if ex.reqCh == nil {
		return
	}
	for ex.npend > 0 {
		ex.join()
	}
	runtime.SetFinalizer(ex, nil)
	close(ex.reqCh)
	<-ex.doneCh
	ex.reqCh, ex.resCh, ex.doneCh = nil, nil, nil
}

// InFlight reports the number of posted-but-unflushed rounds.
func (ex *DeltaExchanger) InFlight() int { return ex.npend }

// finalizeExchanger releases the drainer goroutine of a collected
// exchanger that was never Closed (best effort: a finalizer may never
// run — explicit Close is the supported path).
func finalizeExchanger(ex *DeltaExchanger) {
	if ex.reqCh != nil {
		close(ex.reqCh)
	}
}

// loop serves drain requests until the request channel closes. Each
// iteration recovers panics (mailbox poison after a sibling rank's
// crash, malformed frames) into the result so the main goroutine
// re-raises them.
func (d *drainer) loop() {
	defer close(d.done)
	for req := range d.req {
		a := &d.arenas[int(req.seq)%len(d.arenas)]
		var res drainResult
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.panicked = p
				}
			}()
			if req.kind == roundUpdates {
				res = d.drainUpdates(a, req)
			} else {
				res = d.drainValues(a, req)
			}
		}()
		d.res <- res
	}
}

// resizeZero returns buf with length n and all elements zero, reusing
// its capacity when possible.
func resizeZero(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// drainUpdates receives one update-flow message from every boundary
// neighbor, decoding packed updates into arena a and summing tally
// frames.
func (d *drainer) drainUpdates(a *drainArena, req drainReq) drainResult {
	a.updates = a.updates[:0]
	a.tally = resizeZero(a.tally, req.tallyLen)
	for i, src := range d.plan.recvRanks {
		lids := d.plan.recvLists[i]
		msg := mpi.Recv64Tag(d.comm, int(src), req.tag)
		for _, w := range mpi.SplitTally(msg, a.tally) {
			idx, value := unpackUpdate(w)
			if int(idx) >= len(lids) {
				panic(fmt.Sprintf("dgraph: rank %d: delta index %d outside shared list of %d with rank %d",
					d.comm.Rank(), idx, len(lids), src))
			}
			a.updates = append(a.updates, Update{LID: lids[idx], Value: value})
		}
		d.comm.Recycle64(msg)
	}
	return drainResult{updates: a.updates, tally: a.tally}
}

// drainValues receives one value-flow message from every neighbor of
// the round's direction, decoding (lid, payload) pairs into arena a
// and capturing each source's tally frame separately (value tallies
// are folded caller-side so float partial sums can keep global rank
// order).
func (d *drainer) drainValues(a *drainArena, req drainReq) drainResult {
	srcs, lists := d.plan.recvRanks, d.plan.recvLists
	if req.kind == roundValuesRev {
		srcs, lists = d.plan.sendRanks, d.plan.sendLists
	}
	a.outL = a.outL[:0]
	a.outP = a.outP[:0]
	a.tallies = resizeZero(a.tallies, len(srcs)*req.tallyLen)
	for i, src := range srcs {
		msg := mpi.Recv64Tag(d.comm, int(src), req.tag)
		body := msg
		if req.tallyLen > 0 {
			body = mpi.SplitTally(msg, a.tallies[i*req.tallyLen:(i+1)*req.tallyLen])
		}
		a.outL, a.outP = decodeValues(int(src), body, lists[i], a.outL, a.outP)
		d.comm.Recycle64(msg)
	}
	return drainResult{outL: a.outL, outP: a.outP, tallies: a.tallies}
}

// NeighborRanks returns the ranks this exchanger sends to (the ranks
// ghosting at least one owned vertex), ascending.
func (ex *DeltaExchanger) NeighborRanks() []int32 {
	out := make([]int32, len(ex.plan.sendRanks))
	copy(out, ex.plan.sendRanks)
	return out
}

// SharedSendGIDs returns the gid-sorted list of owned vertices the
// given neighbor rank ghosts — this rank's view of the directed pair
// (this → rank). It must equal the neighbor's SharedRecvGIDs for this
// rank element-for-element; tests assert that symmetry.
func (ex *DeltaExchanger) SharedSendGIDs(rank int) []int64 {
	for i, r := range ex.plan.sendRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.sendLists[i])
		}
	}
	return nil
}

// SharedRecvGIDs returns the gid-sorted list of ghosts the given
// neighbor rank owns — this rank's view of the directed pair
// (rank → this).
func (ex *DeltaExchanger) SharedRecvGIDs(rank int) []int64 {
	for i, r := range ex.plan.recvRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.recvLists[i])
		}
	}
	return nil
}

func (ex *DeltaExchanger) gidsOf(lids []int32) []int64 {
	out := make([]int64, len(lids))
	for j, lid := range lids {
		out[j] = ex.g.L2G[lid]
	}
	return out
}

// Begin posts the receive side of the next tally-free round; it is
// BeginTally(0). Begin must be followed by exactly one Flush.
func (ex *DeltaExchanger) Begin() { ex.BeginTally(0) }

// post appends a round to the pending FIFO and hands its receive side
// to the drainer, returning the round's message tag (the current wave
// id composed with the round's sequence number). It panics when depth
// rounds are already in flight, and when a value/push round would be
// posted behind a pending update round: value-flow sends are eager
// (Begin) while update-flow sends are deferred (Flush), so that
// combination would put the value frames ahead of the update frames in
// the pair FIFOs and skew every receiver. The converse — an update
// round posted behind a value round — is fine, because flushes run
// oldest-first and the update's deferred sends happen after the value
// round has fully settled.
//
//repro:hotpath
func (ex *DeltaExchanger) post(kind roundKind, tallyLen int, ownTally []int64) uint32 {
	if ex.npend == ex.depth {
		panic(fmt.Sprintf("dgraph: DeltaExchanger round posted with %d rounds already in flight (pipe depth %d)", ex.npend, ex.depth))
	}
	if kind != roundUpdates {
		for i := 0; i < ex.npend; i++ {
			if ex.pend[i].kind == roundUpdates {
				panic("dgraph: value round posted behind a pending update round (update sends are deferred to Flush; flush it first)")
			}
		}
	}
	//lint:ignore hotpathalloc ensureDrainer allocates only on its first call after construction or Close; steady-state rounds return at its nil check
	ex.ensureDrainer()
	s := ex.seq
	ex.seq++
	tag := mpi.RoundTag(ex.wave, s)
	ex.pend[ex.npend] = pendingRound{kind: kind, tallyLen: tallyLen, ownTally: ownTally, seq: s, tag: tag}
	ex.npend++
	if ex.npend > ex.MaxDepth {
		ex.MaxDepth = ex.npend
	}
	ex.reqCh <- drainReq{kind: kind, tallyLen: tallyLen, seq: s, tag: tag}
	return tag
}

// Depth returns the exchanger's construction-time pipeline depth.
func (ex *DeltaExchanger) Depth() int { return ex.depth }

// SetRoundWave selects the wave id stamped into the round tags of
// subsequently posted rounds (0, the initial value, for single-stream
// callers). Multi-wave schedules — the HC engine runs one BFS per wave
// slot over the shared pipeline — set it before each wave's Begin*
// calls, so a skewed schedule panics naming the wave AND the round.
// Like the round sequence itself it must be set identically on every
// rank; it never affects message matching.
func (ex *DeltaExchanger) SetRoundWave(w int) {
	if w < 0 || w > mpi.MaxTagWave {
		panic(fmt.Sprintf("dgraph: SetRoundWave(%d) outside [0,%d]", w, mpi.MaxTagWave))
	}
	ex.wave = w
}

// BeginTally posts the receive side of the next update round: the
// exchanger's background drainer takes one message from each boundary
// neighbor as it arrives, decoding into ghost-lid updates while the
// caller's compute is still in flight. tallyLen declares the length of
// the piggybacked tally frame every neighbor's message will carry this
// round (0 for none); the matching FlushTally must pass a tally of
// exactly that length. Every BeginTally must eventually be matched by
// exactly one Flush/FlushTally; flushes settle rounds oldest-first.
func (ex *DeltaExchanger) BeginTally(tallyLen int) {
	ex.post(roundUpdates, tallyLen, nil)
}

// join collects the oldest pending round's result from the drainer
// (results arrive in round order), pops it from the FIFO, and
// re-raises any panic the drainer recovered.
//
//repro:hotpath
func (ex *DeltaExchanger) join() drainResult {
	res := <-ex.resCh
	copy(ex.pend[:], ex.pend[1:ex.npend])
	ex.pend[ex.npend-1] = pendingRound{}
	ex.npend--
	if res.panicked != nil {
		panic(res.panicked)
	}
	ex.Rounds++
	return res
}

// Flush is FlushTally without a tally frame.
func (ex *DeltaExchanger) Flush(q []Update) []Update {
	out, _ := ex.FlushTally(q, nil)
	return out
}

// FlushTally encodes the round's owned-vertex updates, appends the
// rank's tally frame, sends one message to every boundary neighbor —
// tagged with the oldest pending update round's sequence number —
// joins that round's drain (posting the round now if the caller
// skipped Begin), and returns the updates received for this rank's
// ghosts together with the element-wise sum of the neighbors' tallies
// (nil when the round carries none). len(tally) must equal the round's
// declared tallyLen on every rank — the tally is part of the message
// framing, so a mismatch corrupts decoding on the peer. The returned
// slices alias exchanger arenas and are valid until the round after
// next is posted.
//
//repro:hotpath
func (ex *DeltaExchanger) FlushTally(q []Update, tally []int64) ([]Update, []int64) {
	if ex.npend == 0 {
		ex.BeginTally(len(tally))
	}
	oldest := ex.pend[0]
	if oldest.kind != roundUpdates {
		panic("dgraph: FlushTally while the oldest pending round is a value round")
	}
	if len(tally) != oldest.tallyLen {
		panic(fmt.Sprintf("dgraph: FlushTally with tally length %d, Begin posted %d", len(tally), oldest.tallyLen))
	}
	plan := ex.plan
	for i := range ex.sendBufs {
		ex.sendBufs[i] = ex.sendBufs[i][:0]
	}
	for _, upd := range q {
		if int(upd.LID) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: DeltaExchanger.Flush with non-owned lid %d", upd.LID))
		}
		for _, t := range plan.targets[upd.LID] {
			ex.sendBufs[t.rankPos] = append(ex.sendBufs[t.rankPos], packUpdate(t.idx, upd.Value))
		}
	}
	for i, dst := range plan.sendRanks {
		ex.sendBufs[i] = mpi.AppendTally(ex.g.Comm, ex.sendBufs[i], tally)
		mpi.Isend64Tag(ex.g.Comm, int(dst), oldest.tag, ex.sendBufs[i])
	}
	res := ex.join()
	return res.updates, res.tally
}

// NeighborhoodComplete reports whether every rank of the communicator
// neighbors every other rank — the condition under which tallies
// piggybacked on boundary messages already sum over all ranks, making
// piggybacked reductions (part sizes, convergence counters, PageRank's
// dangling mass) exact without any Allreduce. The detection runs once,
// collectively, during construction (NewDeltaExchanger), so this is a
// pure cached read — safe to call from conditional, per-rank code
// without any collective-mismatch deadlock risk.
func (ex *DeltaExchanger) NeighborhoodComplete() bool {
	return ex.complete == 1
}

// Value-flow wire format (ExchangeValues and PushValues). One message
// per neighbor pair per round, all-int64:
//
//	[]                          no pairs this round
//	[-1, v0, v1, ...]           dense: one payload per shared-list
//	                            entry, in list order
//	[k, i01, i23, ..., v0..vk)  sparse: k pairs; indices packed two
//	                            int32s per element, then k payloads
//
// Dense costs 1+n elements and sparse 1+⌈k/2⌉+k, against the
// synchronous path's 2k (gid, payload) pairs — a 50% / 25% element
// reduction. The dense form triggers exactly when a caller ships its
// full boundary in lid order, PageRank-style.
const denseHeader = -1

// encodeValues appends one value-flow message for a neighbor whose
// shared list has listLen entries onto dst (a reusable per-neighbor
// arena); idxs/vals hold this round's pairs in queue order.
func encodeValues(dst []int64, listLen int, idxs []int32, vals []int64) []int64 {
	k := len(idxs)
	if k == 0 {
		return dst
	}
	dense := k == listLen
	if dense {
		for j, idx := range idxs {
			if idx != int32(j) {
				dense = false
				break
			}
		}
	}
	if dense {
		dst = append(dst, denseHeader)
		return append(dst, vals...)
	}
	dst = append(dst, int64(k))
	for j := 0; j < k; j += 2 {
		hi, lo := idxs[j], int32(0)
		if j+1 < k {
			lo = idxs[j+1]
		}
		dst = append(dst, packUpdate(hi, lo))
	}
	return append(dst, vals...)
}

// decodeValues appends one value-flow message's (lid, payload) pairs —
// decoded against the pair's shared list — onto outL/outP.
func decodeValues(rank int, msg []int64, list []int32, outL []int32, outP []int64) ([]int32, []int64) {
	if len(msg) == 0 {
		return outL, outP
	}
	if msg[0] == denseHeader {
		vals := msg[1:]
		if len(vals) != len(list) {
			panic(fmt.Sprintf("dgraph: dense value message of %d payloads for shared list of %d", len(vals), len(list)))
		}
		return append(outL, list...), append(outP, vals...)
	}
	k := int(msg[0])
	np := (k + 1) / 2
	if k < 0 || 1+np+k != len(msg) {
		panic(fmt.Sprintf("dgraph: sparse value message header %d inconsistent with length %d", k, len(msg)))
	}
	vals := msg[1+np:]
	for j := 0; j < k; j++ {
		hi, lo := unpackUpdate(msg[1+j/2])
		idx := hi
		if j%2 == 1 {
			idx = lo
		}
		if int(idx) >= len(list) {
			panic(fmt.Sprintf("dgraph: value index %d outside shared list of %d with rank %d", idx, len(list), rank))
		}
		outL = append(outL, list[idx])
		outP = append(outP, vals[j])
	}
	return outL, outP
}

// TallyRound is the piggybacked reduction one split-phase value round
// collected: this rank's own contribution plus one frame per source
// neighbor, kept separate so the caller controls fold order. On a
// complete rank neighborhood the fold covers every rank, so it
// replaces the round's Allreduce exactly.
type TallyRound struct {
	own  []int64
	srcs []int32
	flat []int64
	n    int
	rank int32
}

// Len returns the round's tally frame length.
func (t TallyRound) Len() int { return t.n }

// Sum returns own[i] plus entry i of every received frame — the global
// sum for order-insensitive integer counters (convergence counts).
func (t TallyRound) Sum(i int) int64 {
	s := t.own[i]
	for f := 0; f < len(t.srcs); f++ {
		s += t.flat[f*t.n+i]
	}
	return s
}

// Max returns the maximum of own[i] and entry i of every received
// frame — the global max for order-insensitive integer extrema (the
// overlapped K-Core's coreness maximum). Entries absent from a frame
// fold as that source's contribution of 0, so Max is meaningful only
// for non-negative counters (like Sum, whose absent entries fold as 0).
func (t TallyRound) Max(i int) int64 {
	m := t.own[i]
	for f := 0; f < len(t.srcs); f++ {
		if v := t.flat[f*t.n+i]; v > m {
			m = v
		}
	}
	return m
}

// FoldFloatMax folds entry i as float64 bit patterns under max — the
// max-combining counterpart of FoldFloat. Max over floats is exact in
// any order (no rounding, unlike sums), so on complete neighborhoods
// the result is bit-identical to the Allreduce(Max) it replaces
// regardless of fold order. (SpMV's ∞-norm piggyback rests on the same
// argument but inlines its fold — its expand messages are float64, not
// tally frames.)
func (t TallyRound) FoldFloatMax(i int) float64 {
	m := math.Float64frombits(uint64(t.own[i]))
	for f := 0; f < len(t.srcs); f++ {
		if v := math.Float64frombits(uint64(t.flat[f*t.n+i])); v > m {
			m = v
		}
	}
	return m
}

// FoldFloat folds entry i as float64 bit patterns in ascending global
// rank order, with this rank's own contribution at its rank position —
// the exact accumulation order of mpi.Allreduce(Sum), so on complete
// neighborhoods the result is bit-identical to the Allreduce it
// replaces.
func (t TallyRound) FoldFloat(i int) float64 {
	var sum float64
	first := true
	add := func(bits int64) {
		v := math.Float64frombits(uint64(bits))
		if first {
			sum, first = v, false
			return
		}
		sum += v
	}
	ownDone := false
	for f, src := range t.srcs {
		if !ownDone && t.rank < src {
			add(t.own[i])
			ownDone = true
		}
		add(t.flat[f*t.n+i])
	}
	if !ownDone {
		add(t.own[i])
	}
	return sum
}

// BeginValues posts a split-phase owner → ghost value round: it encodes
// and sends full 64-bit payloads for the given owned vertices to every
// neighbor ghosting them — with the rank's tally frame appended to each
// message (tally may be nil) — and tells the background drainer to
// start collecting the symmetric incoming messages. The caller then
// computes work that does not read ghost values (interior vertices)
// while the messages are in flight, and settles with FlushValues. Up
// to the exchanger's pipeline depth rounds may be posted before
// flushing; lids and payloads are consumed before BeginValues returns,
// but tally must stay untouched until the round's FlushValues returns.
//
//repro:hotpath
func (ex *DeltaExchanger) BeginValues(lids []int32, payloads []int64, tally []int64) {
	plan := ex.plan
	for i := range ex.fwdIdx {
		ex.fwdIdx[i] = ex.fwdIdx[i][:0]
		ex.fwdVal[i] = ex.fwdVal[i][:0]
	}
	for qi, lid := range lids {
		if int(lid) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: BeginValues with non-owned lid %d", lid))
		}
		for _, t := range plan.targets[lid] {
			ex.fwdIdx[t.rankPos] = append(ex.fwdIdx[t.rankPos], t.idx)
			ex.fwdVal[t.rankPos] = append(ex.fwdVal[t.rankPos], payloads[qi])
		}
	}
	tag := ex.post(roundValuesFwd, len(tally), tally)
	for i, dst := range plan.sendRanks {
		buf := encodeValues(ex.fwdEnc[i][:0], len(plan.sendLists[i]), ex.fwdIdx[i], ex.fwdVal[i])
		buf = mpi.AppendTally(ex.g.Comm, buf, tally)
		ex.fwdEnc[i] = buf
		mpi.Isend64Tag(ex.g.Comm, int(dst), tag, buf)
	}
}

// FlushValues joins the oldest pending round — which must be a
// BeginValues round — and returns the (ghost lid, payload) pairs
// received plus the round's tally frames. The returned slices alias
// exchanger arenas and stay valid for depth-1 subsequent rounds.
//
//repro:hotpath
func (ex *DeltaExchanger) FlushValues() ([]int32, []int64, TallyRound) {
	if ex.npend == 0 || ex.pend[0].kind != roundValuesFwd {
		panic("dgraph: FlushValues without a pending BeginValues round oldest in the pipeline")
	}
	own, n := ex.pend[0].ownTally, ex.pend[0].tallyLen
	res := ex.join()
	tr := TallyRound{own: own, srcs: ex.plan.recvRanks, flat: res.tallies, n: n, rank: int32(ex.g.Comm.Rank())}
	return res.outL, res.outP, tr
}

// BeginPush posts a split-phase ghost → owner value round: payloads for
// the given ghost vertices travel to their owning ranks, with the
// rank's tally frame appended to each message. Settle with FlushPush.
// Like BeginValues it may be posted while one earlier round is still
// in flight — the overlapped BFS posts the next depth's discovery push
// while the previous depth's ghost refresh is still pending.
//
//repro:hotpath
func (ex *DeltaExchanger) BeginPush(lids []int32, payloads []int64, tally []int64) {
	plan := ex.plan
	for i := range ex.revIdx {
		ex.revIdx[i] = ex.revIdx[i][:0]
		ex.revVal[i] = ex.revVal[i][:0]
	}
	for qi, lid := range lids {
		gi := int(lid) - ex.g.NLocal
		if gi < 0 || gi >= ex.g.NGhost {
			panic(fmt.Sprintf("dgraph: BeginPush with owned lid %d", lid))
		}
		pos := plan.ghostRankPos[gi]
		ex.revIdx[pos] = append(ex.revIdx[pos], plan.ghostIdx[gi])
		ex.revVal[pos] = append(ex.revVal[pos], payloads[qi])
	}
	tag := ex.post(roundValuesRev, len(tally), tally)
	for i, dst := range plan.recvRanks {
		buf := encodeValues(ex.revEnc[i][:0], len(plan.recvLists[i]), ex.revIdx[i], ex.revVal[i])
		buf = mpi.AppendTally(ex.g.Comm, buf, tally)
		ex.revEnc[i] = buf
		mpi.Isend64Tag(ex.g.Comm, int(dst), tag, buf)
	}
}

// FlushPush joins the oldest pending round — which must be a BeginPush
// round — and returns the (owned lid, payload) pairs received plus the
// round's tally frames. The returned slices alias exchanger arenas and
// stay valid for depth-1 subsequent rounds.
//
//repro:hotpath
func (ex *DeltaExchanger) FlushPush() ([]int32, []int64, TallyRound) {
	if ex.npend == 0 || ex.pend[0].kind != roundValuesRev {
		panic("dgraph: FlushPush without a pending BeginPush round oldest in the pipeline")
	}
	own, n := ex.pend[0].ownTally, ex.pend[0].tallyLen
	res := ex.join()
	tr := TallyRound{own: own, srcs: ex.plan.sendRanks, flat: res.tallies, n: n, rank: int32(ex.g.Comm.Rank())}
	return res.outL, res.outP, tr
}

// ExchangeValues ships full 64-bit payloads for the given owned
// vertices to every neighbor ghosting them — the value-flow engine
// behind ExchangeInt64/ExchangeFloat64 in async mode — and returns the
// (ghost lid, payload) pairs received from neighbors. It is the
// blocking composition of BeginValues and FlushValues; it must not
// overlap a pending round.
func (ex *DeltaExchanger) ExchangeValues(lids []int32, payloads []int64) ([]int32, []int64) {
	ex.BeginValues(lids, payloads, nil)
	outL, outP, _ := ex.FlushValues()
	return outL, outP
}

// PushValues ships full 64-bit payloads for the given ghost vertices to
// their owning ranks — the reverse flow behind PushToOwners in async
// mode — and returns the (owned lid, payload) pairs received. It is
// the blocking composition of BeginPush and FlushPush; it must not
// overlap a pending round.
func (ex *DeltaExchanger) PushValues(lids []int32, payloads []int64) ([]int32, []int64) {
	ex.BeginPush(lids, payloads, nil)
	outL, outP, _ := ex.FlushPush()
	return outL, outP
}
