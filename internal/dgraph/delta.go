package dgraph

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Asynchronous delta-only boundary exchange. The synchronous path
// (exchangeRaw) re-derives each update's destinations from the
// adjacency on every call and ships (gid, value) as two 64-bit
// elements through a world-wide Alltoallv. This file precomputes the
// boundary structure once per graph — for every neighbor rank, the
// gid-sorted list of vertices shared with it — so each update travels
// as a single packed element (index into the shared list, value)
// over a nonblocking point-to-point message, and the receive side can
// drain on a background goroutine while the rank's worker threads are
// still propagating labels.

// ghostTarget records one destination of an owned boundary vertex:
// which neighbor (by position in the plan's sendRanks) ghosts it and
// at which index it sits in the pair's shared gid-sorted list.
type ghostTarget struct {
	rankPos int32
	idx     int32
}

// boundaryPlan is the precomputed per-neighbor boundary structure of
// one rank. Both sides of every rank pair derive the same shared
// vertex list independently (sorted by gid), which is what lets an
// update name its vertex by list index instead of by global id.
type boundaryPlan struct {
	// sendRanks are the neighbor ranks that ghost at least one owned
	// vertex, ascending.
	sendRanks []int32
	// sendLists[i] holds the owned lids shared with sendRanks[i] in
	// increasing gid order.
	sendLists [][]int32
	// targets[v] lists, for owned vertex v, every (neighbor, index)
	// slot it occupies; nil for interior vertices.
	targets [][]ghostTarget
	// recvRanks are the neighbor ranks owning at least one ghost,
	// ascending (equal to sendRanks by symmetry of the undirected
	// graph, but derived independently from the ghost set).
	recvRanks []int32
	// recvLists[i] holds the ghost lids owned by recvRanks[i] in
	// increasing gid order — index-compatible with the owner's
	// sendLists entry for this rank.
	recvLists [][]int32
}

// newBoundaryPlan derives the plan from purely local structure; no
// communication happens. Correctness rests on a symmetry of the CSR
// build: owned vertex v is ghosted on rank r exactly when v has a
// neighbor owned by r, so both endpoints of a rank pair can enumerate
// the same shared set and sort it by gid.
func newBoundaryPlan(g *Graph) *boundaryPlan {
	nprocs := g.Comm.Size()
	p := &boundaryPlan{targets: make([][]ghostTarget, g.NLocal)}

	// Send side: owned vertices in lid order are already gid-sorted.
	seen := make([]int32, nprocs) // last owned lid appended per rank, +1
	perRank := make([][]int32, nprocs)
	for v := 0; v < g.NLocal; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.IsGhost(u) {
				continue
			}
			r := g.GhostOwner[int(u)-g.NLocal]
			if seen[r] == int32(v)+1 {
				continue
			}
			seen[r] = int32(v) + 1
			perRank[r] = append(perRank[r], int32(v))
		}
	}
	for r := 0; r < nprocs; r++ {
		if len(perRank[r]) == 0 {
			continue
		}
		pos := int32(len(p.sendRanks))
		p.sendRanks = append(p.sendRanks, int32(r))
		p.sendLists = append(p.sendLists, perRank[r])
		for idx, lid := range perRank[r] {
			p.targets[lid] = append(p.targets[lid], ghostTarget{rankPos: pos, idx: int32(idx)})
		}
	}

	// Receive side: ghosts grouped by owner, then gid-sorted to match
	// the owner's enumeration order.
	ghostsByOwner := make([][]int32, nprocs)
	for i := 0; i < g.NGhost; i++ {
		r := g.GhostOwner[i]
		ghostsByOwner[r] = append(ghostsByOwner[r], int32(g.NLocal+i))
	}
	for r := 0; r < nprocs; r++ {
		lids := ghostsByOwner[r]
		if len(lids) == 0 {
			continue
		}
		sort.Slice(lids, func(a, b int) bool { return g.L2G[lids[a]] < g.L2G[lids[b]] })
		p.recvRanks = append(p.recvRanks, int32(r))
		p.recvLists = append(p.recvLists, lids)
	}
	return p
}

// packUpdate encodes (index in shared list, part value) as one int64 —
// half the wire volume of the synchronous (gid, value) encoding.
func packUpdate(idx int32, value int32) int64 {
	return int64(uint64(uint32(idx))<<32 | uint64(uint32(value)))
}

// unpackUpdate reverses packUpdate.
func unpackUpdate(w int64) (idx int32, value int32) {
	return int32(uint32(uint64(w) >> 32)), int32(uint32(uint64(w)))
}

// DeltaExchanger runs rounds of delta-only boundary exchange over
// nonblocking point-to-point messages. Usage per round, collectively
// on every rank of the graph's communicator:
//
//	ex.Begin()                  // post receives, then compute locally
//	in := ex.Flush(updates)     // ship deltas, collect incoming
//
// Begin starts a background drainer that receives and decodes each
// neighbor's message while the caller is still computing; Flush sends
// this rank's queued updates (one message per boundary neighbor, empty
// when nothing changed) and then joins the drainer. Every rank must
// call Flush the same number of rounds or peers deadlock, exactly as
// they would skipping a collective. Calling Flush without Begin is
// allowed (the receive side is posted on entry, losing only overlap).
type DeltaExchanger struct {
	g       *Graph
	plan    *boundaryPlan
	pending chan drainResult
	// sendBufs are reusable per-neighbor encode buffers.
	sendBufs [][]int64
	// Rounds counts completed Flush calls (diagnostics and tests).
	Rounds int64
}

// drainResult is what the background drainer hands back to Flush: the
// decoded updates, or the panic it recovered. Panics must travel back
// to the rank's main goroutine — re-raised from Flush — so mpi.Run's
// per-rank recovery sees them; a panic escaping on the drainer
// goroutine itself would kill the whole process.
type drainResult struct {
	updates  []Update
	panicked any
}

// NewDeltaExchanger builds the boundary plan for g. Construction is
// local — safe to call on any subset of ranks — but exchanging is
// collective.
func (g *Graph) NewDeltaExchanger() *DeltaExchanger {
	plan := newBoundaryPlan(g)
	return &DeltaExchanger{
		g:        g,
		plan:     plan,
		sendBufs: make([][]int64, len(plan.sendRanks)),
	}
}

// NeighborRanks returns the ranks this exchanger sends to (the ranks
// ghosting at least one owned vertex), ascending.
func (ex *DeltaExchanger) NeighborRanks() []int32 {
	out := make([]int32, len(ex.plan.sendRanks))
	copy(out, ex.plan.sendRanks)
	return out
}

// SharedSendGIDs returns the gid-sorted list of owned vertices the
// given neighbor rank ghosts — this rank's view of the directed pair
// (this → rank). It must equal the neighbor's SharedRecvGIDs for this
// rank element-for-element; tests assert that symmetry.
func (ex *DeltaExchanger) SharedSendGIDs(rank int) []int64 {
	for i, r := range ex.plan.sendRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.sendLists[i])
		}
	}
	return nil
}

// SharedRecvGIDs returns the gid-sorted list of ghosts the given
// neighbor rank owns — this rank's view of the directed pair
// (rank → this).
func (ex *DeltaExchanger) SharedRecvGIDs(rank int) []int64 {
	for i, r := range ex.plan.recvRanks {
		if int(r) == rank {
			return ex.gidsOf(ex.plan.recvLists[i])
		}
	}
	return nil
}

func (ex *DeltaExchanger) gidsOf(lids []int32) []int64 {
	out := make([]int64, len(lids))
	for j, lid := range lids {
		out[j] = ex.g.L2G[lid]
	}
	return out
}

// Begin posts the receive side of the next round: a background drainer
// that takes one message from each boundary neighbor as it arrives,
// decoding into ghost-lid updates while the caller's compute is still
// in flight. Begin must be followed by exactly one Flush.
func (ex *DeltaExchanger) Begin() {
	if ex.pending != nil {
		panic("dgraph: DeltaExchanger.Begin called twice without Flush")
	}
	plan := ex.plan
	ch := make(chan drainResult, 1)
	ex.pending = ch
	go func() {
		var res drainResult
		defer func() {
			if p := recover(); p != nil {
				res.panicked = p
			}
			ch <- res
		}()
		for i, src := range plan.recvRanks {
			lids := plan.recvLists[i]
			for _, w := range mpi.Irecv[int64](ex.g.Comm, int(src)).Await() {
				idx, value := unpackUpdate(w)
				if int(idx) >= len(lids) {
					panic(fmt.Sprintf("dgraph: rank %d: delta index %d outside shared list of %d with rank %d",
						ex.g.Comm.Rank(), idx, len(lids), src))
				}
				res.updates = append(res.updates, Update{LID: lids[idx], Value: value})
			}
		}
	}()
}

// Flush encodes the round's owned-vertex updates, sends one message to
// every boundary neighbor, joins the drainer posted by Begin (posting
// it now if the caller skipped Begin), and returns the updates received
// for this rank's ghosts.
func (ex *DeltaExchanger) Flush(q []Update) []Update {
	if ex.pending == nil {
		ex.Begin()
	}
	plan := ex.plan
	for i := range ex.sendBufs {
		ex.sendBufs[i] = ex.sendBufs[i][:0]
	}
	for _, upd := range q {
		if int(upd.LID) >= len(plan.targets) {
			panic(fmt.Sprintf("dgraph: DeltaExchanger.Flush with non-owned lid %d", upd.LID))
		}
		for _, t := range plan.targets[upd.LID] {
			ex.sendBufs[t.rankPos] = append(ex.sendBufs[t.rankPos], packUpdate(t.idx, upd.Value))
		}
	}
	reqs := make([]mpi.Request, len(plan.sendRanks))
	for i, dst := range plan.sendRanks {
		reqs[i] = mpi.Isend(ex.g.Comm, int(dst), ex.sendBufs[i])
	}
	mpi.Waitall(reqs...)
	res := <-ex.pending
	ex.pending = nil
	if res.panicked != nil {
		panic(res.panicked)
	}
	ex.Rounds++
	return res.updates
}
