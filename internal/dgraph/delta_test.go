package dgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// Both sides of every rank pair must independently derive the same
// gid-sorted shared boundary list — the invariant the packed index
// encoding rests on.
func TestBoundaryPlanSymmetry(t *testing.T) {
	for _, mk := range []func(int) Distribution{blockDist(1 << 10), hashDist()} {
		g := gen.RMAT(10, 8, 3)
		const p = 4
		// sendViews[r][peer] is rank r's send list toward peer;
		// recvViews[r][peer] is rank r's receive list from peer.
		sendViews := make([]map[int][]int64, p)
		recvViews := make([]map[int][]int64, p)
		mpi.Run(p, func(c *mpi.Comm) {
			dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), mk(c.Size()))
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			ex := dg.NewDeltaExchanger()
			defer ex.Close()
			sends, recvs := map[int][]int64{}, map[int][]int64{}
			for peer := 0; peer < p; peer++ {
				if peer == c.Rank() {
					continue
				}
				if gids := ex.SharedSendGIDs(peer); gids != nil {
					sends[peer] = gids
				}
				if gids := ex.SharedRecvGIDs(peer); gids != nil {
					recvs[peer] = gids
				}
			}
			sendViews[c.Rank()] = sends
			recvViews[c.Rank()] = recvs
			c.Barrier() // writes above happen-before reads below
			if c.Rank() != 0 {
				return
			}
			for a := 0; a < p; a++ {
				for b := 0; b < p; b++ {
					if a == b {
						continue
					}
					// a's send list toward b must equal b's receive list from a.
					av, bv := sendViews[a][b], recvViews[b][a]
					if len(av) != len(bv) {
						t.Errorf("pair (%d→%d): list lengths %d vs %d", a, b, len(av), len(bv))
						continue
					}
					if len(av) == 0 {
						t.Errorf("pair (%d→%d): empty shared boundary (graph too sparse for the test)", a, b)
					}
					for i := range av {
						if av[i] != bv[i] {
							t.Errorf("pair (%d→%d): element %d is gid %d vs %d", a, b, i, av[i], bv[i])
							break
						}
					}
				}
			}
		})
	}
}

// The delta exchanger must deliver exactly what the synchronous
// Alltoallv path delivers: after pushing every owned vertex's value,
// all ghosts hold their owner's value.
func TestDeltaExchangerMatchesSyncExchange(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		vals := make([]int32, dg.NTotal())
		for i := range vals {
			vals[i] = -1
		}
		q := make([]Update, dg.NLocal)
		for v := 0; v < dg.NLocal; v++ {
			vals[v] = int32(dg.L2G[v] % 1000)
			q[v] = Update{LID: int32(v), Value: vals[v]}
		}
		ex.Begin()
		for _, upd := range ex.Flush(q) {
			if !dg.IsGhost(upd.LID) {
				t.Errorf("rank %d received delta for owned vertex %d", c.Rank(), upd.LID)
				return
			}
			vals[upd.LID] = upd.Value
		}
		for i := 0; i < dg.NGhost; i++ {
			lid := dg.NLocal + i
			if want := int32(dg.L2G[lid] % 1000); vals[lid] != want {
				t.Errorf("rank %d ghost gid %d got %d, want %d", c.Rank(), dg.L2G[lid], vals[lid], want)
				return
			}
		}
	})
}

// A delta round ships one packed element per (update, destination) —
// half the synchronous path's (gid, value) pairs — and empty rounds
// ship nothing.
func TestDeltaExchangerHalvesWireVolume(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		q := make([]Update, dg.NLocal)
		for v := 0; v < dg.NLocal; v++ {
			q[v] = Update{LID: int32(v), Value: 1}
		}

		c.ResetStats()
		dg.ExchangeUpdates(q)
		syncSent := c.Stats().ElemsSent

		c.ResetStats()
		ex.Flush(q)
		asyncSent := c.Stats().ElemsSent

		if asyncSent*2 != syncSent {
			t.Errorf("rank %d: async sent %d elements, sync %d (want exactly half)",
				c.Rank(), asyncSent, syncSent)
		}

		c.ResetStats()
		if got := ex.Flush(nil); len(got) != 0 {
			t.Errorf("rank %d: empty round delivered %d updates", c.Rank(), len(got))
		}
		if sent := c.Stats().ElemsSent; sent != 0 {
			t.Errorf("rank %d: empty round shipped %d elements", c.Rank(), sent)
		}
	})
}

// Repeated rounds with sparse deltas must deliver every update and
// nothing else, mirroring the partitioner's iteration pattern.
func TestDeltaExchangerSparseRounds(t *testing.T) {
	g := gen.Grid3D(6, 6, 6)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		ghostVals := make(map[int32]int32)
		for round := int32(0); round < 5; round++ {
			// Each round moves a different slice of the boundary.
			var q []Update
			for i, v := range dg.BoundaryVertices() {
				if int32(i)%5 == round {
					q = append(q, Update{LID: v, Value: round*1000 + int32(dg.L2G[v]%997)})
				}
			}
			ex.Begin()
			for _, upd := range ex.Flush(q) {
				ghostVals[upd.LID] = upd.Value
			}
		}
		// Verify against the synchronous path replaying the same rounds.
		want := make(map[int32]int32)
		for round := int32(0); round < 5; round++ {
			var q []Update
			for i, v := range dg.BoundaryVertices() {
				if int32(i)%5 == round {
					q = append(q, Update{LID: v, Value: round*1000 + int32(dg.L2G[v]%997)})
				}
			}
			for _, upd := range dg.ExchangeUpdates(q) {
				want[upd.LID] = upd.Value
			}
		}
		if len(ghostVals) != len(want) {
			t.Errorf("rank %d: delta path touched %d ghosts, sync %d", c.Rank(), len(ghostVals), len(want))
		}
		for lid, v := range want {
			if ghostVals[lid] != v {
				t.Errorf("rank %d: ghost %d delta %d != sync %d", c.Rank(), lid, ghostVals[lid], v)
				return
			}
		}
	})
}

// benchExchangeRound isolates one boundary-exchange round on a built
// distributed graph with every boundary vertex moving: the sync path
// ships its (gid, value) pairs through Alltoallv, the delta path the
// packed half-width stream over point-to-point messages.
func benchExchangeRound(b *testing.B, async bool) {
	b.Helper()
	g := gen.RMAT(12, 16, 1)
	b.ReportAllocs()
	mpi.Run(8, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 1})
		if err != nil {
			b.Error(err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		bv := dg.BoundaryVertices()
		q := make([]Update, len(bv))
		for i, v := range bv {
			q[i] = Update{LID: v, Value: int32(i % 16)}
		}
		for i := 0; i < b.N; i++ {
			if async {
				ex.Flush(q)
			} else {
				dg.ExchangeUpdates(q)
			}
		}
	})
}

func BenchmarkExchangeRoundSync8Ranks(b *testing.B)       { benchExchangeRound(b, false) }
func BenchmarkExchangeRoundAsyncDelta8Ranks(b *testing.B) { benchExchangeRound(b, true) }

// Rounds pipeline to depth DefaultPipeDepth: a second Begin before the
// first Flush is legal, a third must panic.
func TestDeltaExchangerPipelineOverflowPanics(t *testing.T) {
	g := gen.ER(60, 240, 31)
	mpi.Run(1, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: 1})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		ex.Begin()
		ex.Begin() // depth 2: legal
		if ex.InFlight() != DefaultPipeDepth {
			t.Errorf("InFlight = %d after two Begins, want %d", ex.InFlight(), DefaultPipeDepth)
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for Begin past DefaultPipeDepth")
			}
			// Drain the two legally posted rounds so Close has nothing
			// blocked (Flush pairs them oldest-first).
			ex.Flush(nil)
			ex.Flush(nil)
		}()
		ex.Begin()
	})
}
