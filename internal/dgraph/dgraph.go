package dgraph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Graph is one rank's share of a distributed undirected graph: a CSR
// over owned vertices whose adjacency refers to task-local ids. Local
// ids [0, NLocal) are owned vertices in increasing gid order; ids
// [NLocal, NLocal+NGhost) are ghosts (one-hop neighbors owned by other
// ranks).
type Graph struct {
	// Comm is the communicator this shard was built on.
	Comm *mpi.Comm
	// Dist is the vertex-to-rank ownership function.
	Dist Distribution
	// NGlobal and MGlobal are the global vertex and undirected edge
	// counts.
	NGlobal int64
	MGlobal int64
	// NLocal is the number of owned vertices; NGhost the ghost count.
	NLocal int
	NGhost int
	// Offsets is the CSR index for owned vertices (len NLocal+1).
	Offsets []int64
	// Adj holds task-local neighbor ids for owned vertices.
	Adj []int32
	// L2G maps local id -> global id (len NLocal+NGhost).
	L2G []int64
	// G2L maps global id -> local id for owned and ghost vertices.
	G2L map[int64]int32
	// Degrees holds the global degree of every local and ghost vertex;
	// ghost degrees are fetched from their owners at build time (the
	// edge-weighted label propagation needs them).
	Degrees []int64
	// GhostOwner[i] is the owning rank of ghost NLocal+i.
	GhostOwner []int32

	// boundary caches BoundaryVertices; interior its complement;
	// boundaryMark the membership bitmap behind IsBoundaryVertex. The
	// Once guards the lazy classification: sweep workers may ask
	// IsBoundaryVertex concurrently before anything on the main
	// goroutine has forced the split.
	boundaryOnce sync.Once
	boundary     []int32
	interior     []int32
	boundaryMark []bool
	// deltaEx caches the graph's delta exchanger (AsyncExchanger).
	deltaEx *DeltaExchanger
	// asyncRoute, when true, routes ExchangeInt64, ExchangeFloat64, and
	// PushToOwners through the delta engine (SetAsyncExchange).
	asyncRoute bool
	// termEpoch is the analytics termination-epoch knob (SetTermEpoch).
	termEpoch int
	// pipeDepth is the exchange-pipeline depth knob (SetPipeDepth).
	pipeDepth int
}

// NTotal returns the local array extent NLocal+NGhost.
func (g *Graph) NTotal() int { return g.NLocal + g.NGhost }

// Degree returns the degree of the owned vertex with local id v.
func (g *Graph) Degree(v int32) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns the local-id adjacency of owned vertex v; the slice
// aliases graph storage.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// IsGhost reports whether local id v refers to a ghost vertex.
func (g *Graph) IsGhost(v int32) bool { return int(v) >= g.NLocal }

// OwnerOfLocal returns the rank owning local id v.
func (g *Graph) OwnerOfLocal(v int32) int {
	if g.IsGhost(v) {
		return int(g.GhostOwner[int(v)-g.NLocal])
	}
	return g.Comm.Rank()
}

// FromEdgeChunks builds the distributed graph collectively. Each rank
// passes its (arbitrary, possibly overlapping-none) chunk of the global
// undirected edge list; edges are shuffled so that every arc lands on
// its head's owner, then each rank assembles its local CSR, discovers
// ghosts, and fetches ghost degrees.
func FromEdgeChunks(c *mpi.Comm, nGlobal int64, chunk []graph.Edge, dist Distribution) (*Graph, error) {
	if err := validateDistribution(dist, c.Size(), nGlobal); err != nil {
		return nil, err
	}
	nprocs := c.Size()

	// Shuffle arcs to owners: edge {u, v} becomes arc u->v sent to
	// owner(u) and arc v->u sent to owner(v). Self loops produce a
	// single arc.
	counts := make([]int, nprocs)
	for _, e := range chunk {
		if e.U < 0 || e.U >= nGlobal || e.V < 0 || e.V >= nGlobal {
			return nil, fmt.Errorf("dgraph: edge (%d,%d) out of range [0,%d)", e.U, e.V, nGlobal)
		}
		counts[dist.Owner(e.U)] += 2
		if e.U != e.V {
			counts[dist.Owner(e.V)] += 2
		}
	}
	offsets := make([]int, nprocs+1)
	for r := 0; r < nprocs; r++ {
		offsets[r+1] = offsets[r] + counts[r]
	}
	sendBuf := make([]int64, offsets[nprocs])
	cursor := make([]int, nprocs)
	copy(cursor, offsets[:nprocs])
	put := func(dst int, head, tail int64) {
		sendBuf[cursor[dst]] = head
		sendBuf[cursor[dst]+1] = tail
		cursor[dst] += 2
	}
	for _, e := range chunk {
		put(dist.Owner(e.U), e.U, e.V)
		if e.U != e.V {
			put(dist.Owner(e.V), e.V, e.U)
		}
	}
	recv, _ := mpi.Alltoallv(c, sendBuf, counts)

	// Owned vertex universe (including isolated vertices).
	owned := ownedList(dist, nGlobal, c.Rank())
	nLocal := len(owned)
	g2l := make(map[int64]int32, nLocal*2)
	for i, gid := range owned {
		g2l[gid] = int32(i)
	}

	// Local CSR over owned vertices with global neighbor ids first.
	deg := make([]int64, nLocal)
	for i := 0; i < len(recv); i += 2 {
		head := recv[i]
		lid, ok := g2l[head]
		if !ok {
			return nil, fmt.Errorf("dgraph: rank %d received arc head %d it does not own", c.Rank(), head)
		}
		deg[lid]++
	}
	csrOff := make([]int64, nLocal+1)
	for i := 0; i < nLocal; i++ {
		csrOff[i+1] = csrOff[i] + deg[i]
	}
	adjGlobal := make([]int64, csrOff[nLocal])
	fill := make([]int64, nLocal)
	copy(fill, csrOff[:nLocal])
	for i := 0; i < len(recv); i += 2 {
		lid := g2l[recv[i]]
		adjGlobal[fill[lid]] = recv[i+1]
		fill[lid]++
	}

	// Ghost discovery: every adjacency gid not owned becomes a ghost.
	l2g := make([]int64, nLocal, nLocal+64)
	copy(l2g, owned)
	var ghostOwner []int32
	for _, gid := range adjGlobal {
		if _, ok := g2l[gid]; !ok {
			g2l[gid] = int32(len(l2g))
			l2g = append(l2g, gid)
			ghostOwner = append(ghostOwner, int32(dist.Owner(gid)))
		}
	}
	nGhost := len(l2g) - nLocal

	// Localize adjacency.
	adj := make([]int32, len(adjGlobal))
	for i, gid := range adjGlobal {
		adj[i] = g2l[gid]
	}

	g := &Graph{
		Comm:       c,
		Dist:       dist,
		NGlobal:    nGlobal,
		NLocal:     nLocal,
		NGhost:     nGhost,
		Offsets:    csrOff,
		Adj:        adj,
		L2G:        l2g,
		G2L:        g2l,
		GhostOwner: ghostOwner,
	}

	// Global degree array: owned degrees are local CSR degrees (each
	// undirected edge contributes an arc at both endpoints); ghost
	// degrees are fetched from their owners.
	g.Degrees = make([]int64, g.NTotal())
	for v := 0; v < nLocal; v++ {
		g.Degrees[v] = deg[v]
	}
	if err := g.fetchGhostDegrees(); err != nil {
		return nil, err
	}

	arcsLocal := int64(len(adj))
	g.MGlobal = mpi.AllreduceScalar(c, arcsLocal, mpi.Sum) / 2
	return g, nil
}

// fetchGhostDegrees asks each ghost's owner for its degree via two
// Alltoallv exchanges (queries out, answers back).
func (g *Graph) fetchGhostDegrees() error {
	nprocs := g.Comm.Size()
	// Group ghost gids by owner.
	counts := make([]int, nprocs)
	for i := 0; i < g.NGhost; i++ {
		counts[g.GhostOwner[i]]++
	}
	offsets := make([]int, nprocs+1)
	for r := 0; r < nprocs; r++ {
		offsets[r+1] = offsets[r] + counts[r]
	}
	queries := make([]int64, g.NGhost)
	order := make([]int32, g.NGhost) // ghost index in query order
	cursor := make([]int, nprocs)
	copy(cursor, offsets[:nprocs])
	for i := 0; i < g.NGhost; i++ {
		o := g.GhostOwner[i]
		queries[cursor[o]] = g.L2G[g.NLocal+i]
		order[cursor[o]] = int32(i)
		cursor[o]++
	}
	recvQ, recvCounts := mpi.Alltoallv(g.Comm, queries, counts)
	// Answer with degrees in the same order.
	answers := make([]int64, len(recvQ))
	for i, gid := range recvQ {
		lid, ok := g.G2L[gid]
		if !ok || g.IsGhost(lid) {
			return fmt.Errorf("dgraph: rank %d asked for degree of %d it does not own", g.Comm.Rank(), gid)
		}
		answers[i] = g.Degree(lid)
	}
	back, _ := mpi.Alltoallv(g.Comm, answers, recvCounts)
	for qi, d := range back {
		g.Degrees[g.NLocal+int(order[qi])] = d
	}
	return nil
}

// Update is one boundary part-assignment record exchanged between ranks
// (the ⟨v, w⟩ pairs of Algorithms 2–5).
type Update struct {
	// LID is a task-local vertex id: on the sender an owned vertex, on
	// the receiver the corresponding ghost.
	LID int32
	// Value is the new part assignment.
	Value int32
}

// exchangeRaw is the bulk-synchronous boundary-exchange engine
// (Algorithm 3): for each queued owned-vertex update, send
// (gid, payload) to every neighboring rank that holds the vertex as a
// ghost through a world-wide Alltoallv, and return the updates
// received for this rank's ghosts (translated back to local ghost
// ids). The asynchronous counterpart — packed per-neighbor
// point-to-point messages over a precomputed boundary plan — lives in
// delta.go; SetAsyncExchange selects between them for the generic
// helpers below. Both passes over the queue — counting and buffer
// filling — run across the rank's worker threads with thread-local
// count arrays merged at the end, exactly the scheme the paper reports
// as faster than atomics.
func (g *Graph) exchangeRaw(lids []int32, payloads []int64) (outLIDs []int32, outPayloads []int64) {
	nprocs := g.Comm.Size()
	me := g.Comm.Rank()
	threads := g.Comm.Threads()
	if threads > len(lids) {
		threads = len(lids)
	}
	if threads < 1 {
		threads = 1
	}

	// Pass 1: count items per destination, one count array per thread.
	threadCounts := make([][]int, threads)
	par.ForChunk(0, len(lids), threads, func(lo, hi, tid int) {
		counts := make([]int, nprocs)
		toSend := make([]bool, nprocs)
		for qi := lo; qi < hi; qi++ {
			for r := range toSend {
				toSend[r] = false
			}
			for _, u := range g.Neighbors(lids[qi]) {
				if !g.IsGhost(u) {
					continue
				}
				task := int(g.GhostOwner[int(u)-g.NLocal])
				if task != me && !toSend[task] {
					toSend[task] = true
					counts[task] += 2
				}
			}
		}
		threadCounts[tid] = counts
	})
	// Merge: each thread's writes go to a distinct region per
	// destination, laid out [dst][tid] so the wire format stays
	// destination-major.
	sendCounts := make([]int, nprocs)
	for _, tc := range threadCounts {
		if tc == nil {
			continue
		}
		for r, c := range tc {
			sendCounts[r] += c
		}
	}
	sendOffsets := make([]int, nprocs+1)
	for r := 0; r < nprocs; r++ {
		sendOffsets[r+1] = sendOffsets[r] + sendCounts[r]
	}
	// threadOffsets[tid][dst]: where thread tid writes for destination
	// dst (exclusive prefix over threads within each destination).
	threadOffsets := make([][]int, threads)
	for tid := range threadOffsets {
		threadOffsets[tid] = make([]int, nprocs)
	}
	for r := 0; r < nprocs; r++ {
		pos := sendOffsets[r]
		for tid := 0; tid < threads; tid++ {
			threadOffsets[tid][r] = pos
			if threadCounts[tid] != nil {
				pos += threadCounts[tid][r]
			}
		}
	}

	// Pass 2: fill the send buffer, each thread into its own regions.
	sendBuf := make([]int64, sendOffsets[nprocs])
	par.ForChunk(0, len(lids), threads, func(lo, hi, tid int) {
		cursor := threadOffsets[tid]
		toSend := make([]bool, nprocs)
		for qi := lo; qi < hi; qi++ {
			lid := lids[qi]
			for r := range toSend {
				toSend[r] = false
			}
			for _, u := range g.Neighbors(lid) {
				if !g.IsGhost(u) {
					continue
				}
				task := int(g.GhostOwner[int(u)-g.NLocal])
				if task != me && !toSend[task] {
					toSend[task] = true
					sendBuf[cursor[task]] = g.L2G[lid]
					sendBuf[cursor[task]+1] = payloads[qi]
					cursor[task] += 2
				}
			}
		}
	})

	recv, _ := mpi.Alltoallv(g.Comm, sendBuf, sendCounts)
	outLIDs = make([]int32, 0, len(recv)/2)
	outPayloads = make([]int64, 0, len(recv)/2)
	for i := 0; i < len(recv); i += 2 {
		lid, ok := g.G2L[recv[i]]
		if !ok {
			// The sender believed we ghost this vertex but we do not;
			// with a correct boundary map this cannot happen.
			panic(fmt.Sprintf("dgraph: rank %d received update for unknown gid %d", me, recv[i]))
		}
		outLIDs = append(outLIDs, lid)
		outPayloads = append(outPayloads, recv[i+1])
	}
	return outLIDs, outPayloads
}

// ExchangeUpdates exchanges int32-valued boundary updates (part
// labels) over the bulk-synchronous engine; the partitioner's async
// mode uses DeltaExchanger.Flush instead.
func (g *Graph) ExchangeUpdates(q []Update) []Update {
	lids := make([]int32, len(q))
	payloads := make([]int64, len(q))
	for i, upd := range q {
		lids[i] = upd.LID
		payloads[i] = int64(upd.Value)
	}
	outL, outP := g.exchangeRaw(lids, payloads)
	out := make([]Update, len(outL))
	for i := range outL {
		out[i] = Update{LID: outL[i], Value: int32(outP[i])}
	}
	return out
}

// AsyncExchanger returns the graph's delta exchanger, building the
// shared boundary plan — and running the one-time collective
// rank-neighborhood completeness detection — on first use, so the
// first call per graph must happen at the same point on every rank
// (see NewDeltaExchanger). The instance is shared by every consumer of
// the graph (the partitioner's update rounds and the generic value
// exchanges), so the boundary plan is derived once.
func (g *Graph) AsyncExchanger() *DeltaExchanger {
	if g.deltaEx == nil {
		g.deltaEx = g.NewDeltaExchanger()
	}
	return g.deltaEx
}

// Close releases the graph's cached delta exchanger, stopping its
// background drainer goroutine. Long-lived processes that build many
// graphs must call it (or DeltaExchanger.Close directly) — the
// exchanger's finalizer is only a backstop, and finalizers are not
// guaranteed to run. Close is idempotent and cheap on graphs that
// never built an exchanger; the facade's distributed runs call it on
// every rank before the rank function returns.
func (g *Graph) Close() {
	if g.deltaEx != nil {
		g.deltaEx.Close()
		g.deltaEx = nil
	}
}

// SetTermEpoch bounds termination-test staleness for the overlapped
// analytics on incomplete rank neighborhoods: every k-th round performs
// the exact termination Allreduce, with the rounds in between running
// unchecked — at most k-1 extra no-op rounds past the fixed point, which
// by definition cannot change any value. 0 or 1 (the default) keeps the
// exact per-round fallback. On complete neighborhoods the knob is
// irrelevant: piggybacked counters already terminate without any
// Allreduce. The analytics counterpart of core.Options.SizeEpoch; every
// rank must set the same value.
func (g *Graph) SetTermEpoch(k int) { g.termEpoch = k }

// TermEpoch returns the termination-epoch knob (see SetTermEpoch),
// normalized to at least 1.
func (g *Graph) TermEpoch() int {
	if g.termEpoch < 1 {
		return 1
	}
	return g.termEpoch
}

// SetPipeDepth selects the delta exchanger's pipeline depth: how many
// exchange rounds may be in flight at once (DeltaExchanger.Depth). The
// depth is a CONSTRUCTION-time parameter — the pending-round FIFO and
// the drainer's decode arenas are sized to it — so it must be set
// before the graph's exchanger is first built (AsyncExchanger,
// SetAsyncExchange, or any analytics run in async mode); setting it
// afterwards panics rather than silently not applying. 0 keeps the
// default (DefaultPipeDepth); values below MinPipeDepth are rejected,
// because the split-phase BFS schedule needs two rounds in flight.
// Depths above 2*MinPipeDepth let the multi-wave HC engine run depth/2
// concurrent BFS waves. Every rank must set the same value.
func (g *Graph) SetPipeDepth(d int) {
	if d != 0 && d < MinPipeDepth {
		panic(fmt.Sprintf("dgraph: SetPipeDepth(%d): depth below %d rejected (the split-phase schedules keep a push and a refresh in flight)", d, MinPipeDepth))
	}
	if g.deltaEx != nil && g.deltaEx.Depth() != g.normalizePipeDepth(d) {
		panic("dgraph: SetPipeDepth after the exchanger was built (depth is a construction-time parameter; set it before the first async exchange)")
	}
	g.pipeDepth = d
}

// PipeDepth returns the pipeline-depth knob (see SetPipeDepth),
// normalized to the default when unset.
func (g *Graph) PipeDepth() int { return g.normalizePipeDepth(g.pipeDepth) }

func (g *Graph) normalizePipeDepth(d int) int {
	if d == 0 {
		return DefaultPipeDepth
	}
	return d
}

// SetAsyncExchange selects the transport behind ExchangeInt64,
// ExchangeFloat64, and PushToOwners: false (the default) keeps the
// bulk-synchronous Alltoallv engine, true routes them through the
// async delta engine's packed per-neighbor messages. Every rank of the
// communicator must select the same mode — the two transports have
// different collective footprints and mixing them deadlocks, exactly
// like mismatched collectives under MPI.
func (g *Graph) SetAsyncExchange(on bool) {
	g.asyncRoute = on
	if on {
		g.AsyncExchanger()
	}
}

// AsyncExchange reports whether the generic exchange helpers are
// routed through the delta engine.
func (g *Graph) AsyncExchange() bool { return g.asyncRoute }

// ExchangeInt64 pushes 64-bit values (labels, core numbers, levels) for
// the given owned vertices to the ranks ghosting them and applies the
// symmetric incoming updates into vals (indexed by local id). The
// transport is either the bulk-synchronous Alltoallv engine or, after
// SetAsyncExchange(true), the delta engine's packed per-neighbor
// point-to-point messages; results are identical either way.
func (g *Graph) ExchangeInt64(lids []int32, vals []int64) {
	payloads := make([]int64, len(lids))
	for i, lid := range lids {
		payloads[i] = vals[lid]
	}
	outL, outP := g.exchangeValues(lids, payloads)
	for i, lid := range outL {
		vals[lid] = outP[i]
	}
}

// ExchangeFloat64 is ExchangeInt64 for float64 values (ranks, scores),
// shipped bit-exactly through the same mode-selected transport.
func (g *Graph) ExchangeFloat64(lids []int32, vals []float64) {
	payloads := make([]int64, len(lids))
	for i, lid := range lids {
		payloads[i] = int64(math.Float64bits(vals[lid]))
	}
	outL, outP := g.exchangeValues(lids, payloads)
	for i, lid := range outL {
		vals[lid] = math.Float64frombits(uint64(outP[i]))
	}
}

// exchangeValues dispatches the owner → ghost value exchange to the
// configured transport.
func (g *Graph) exchangeValues(lids []int32, payloads []int64) ([]int32, []int64) {
	if g.asyncRoute {
		return g.AsyncExchanger().ExchangeValues(lids, payloads)
	}
	return g.exchangeRaw(lids, payloads)
}

// BoundaryVertices returns the owned local ids that have at least one
// ghost neighbor — the vertices whose values other ranks ghost. The
// result is cached after the first call.
func (g *Graph) BoundaryVertices() []int32 {
	g.boundaryOnce.Do(g.classifyBoundary)
	return g.boundary
}

// InteriorVertices returns the owned local ids with no ghost neighbor,
// ascending — the complement of BoundaryVertices. Interior vertices
// read only rank-local values, which is what lets the overlapped
// analytics engines compute them while boundary messages are in
// flight. The result is cached after the first call.
func (g *Graph) InteriorVertices() []int32 {
	g.boundaryOnce.Do(g.classifyBoundary)
	return g.interior
}

// IsBoundaryVertex reports whether owned vertex v has a ghost neighbor.
func (g *Graph) IsBoundaryVertex(v int32) bool {
	g.boundaryOnce.Do(g.classifyBoundary)
	return g.boundaryMark[v]
}

// classifyBoundary derives the boundary/interior split once per graph.
func (g *Graph) classifyBoundary() {
	mark := make([]bool, g.NLocal)
	bnd := make([]int32, 0, g.NGhost)
	inr := make([]int32, 0, g.NLocal)
	for v := 0; v < g.NLocal; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if g.IsGhost(u) {
				mark[v] = true
				break
			}
		}
		if mark[v] {
			bnd = append(bnd, int32(v))
		} else {
			inr = append(inr, int32(v))
		}
	}
	g.boundary, g.interior, g.boundaryMark = bnd, inr, mark
}

// GatherGlobal reconstructs a global int32 array (for example part
// assignments) from each rank's owned slice vals[0:NLocal]. Every rank
// receives the full array indexed by gid. Intended for tests, examples,
// and quality evaluation at modest scales.
func (g *Graph) GatherGlobal(vals []int32) []int32 {
	// (gid, val) pairs packed as int64 words rather than a struct
	// payload, so the gather works on wire transports too.
	mine := make([]int64, 0, 2*g.NLocal)
	for v := 0; v < g.NLocal; v++ {
		mine = append(mine, g.L2G[v], int64(vals[v]))
	}
	all := mpi.Allgatherv(g.Comm, mine)
	out := make([]int32, g.NGlobal)
	for _, pairs := range all {
		for i := 0; i+1 < len(pairs); i += 2 {
			out[pairs[i]] = int32(pairs[i+1])
		}
	}
	return out
}

// SortedGhostGIDs returns the ghost global ids in increasing order
// (diagnostics and tests).
func (g *Graph) SortedGhostGIDs() []int64 {
	out := make([]int64, g.NGhost)
	copy(out, g.L2G[g.NLocal:])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the shard's structural invariants.
func (g *Graph) Validate() error {
	if int64(len(g.Offsets)) != int64(g.NLocal)+1 {
		return fmt.Errorf("dgraph: offsets length %d != NLocal+1 = %d", len(g.Offsets), g.NLocal+1)
	}
	if len(g.L2G) != g.NTotal() {
		return fmt.Errorf("dgraph: L2G length %d != NTotal %d", len(g.L2G), g.NTotal())
	}
	if len(g.Degrees) != g.NTotal() {
		return fmt.Errorf("dgraph: degrees length %d != NTotal %d", len(g.Degrees), g.NTotal())
	}
	if len(g.GhostOwner) != g.NGhost {
		return fmt.Errorf("dgraph: ghost owner length %d != NGhost %d", len(g.GhostOwner), g.NGhost)
	}
	for v := 0; v < g.NLocal; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("dgraph: offsets not monotone at %d", v)
		}
	}
	if int64(len(g.Adj)) != g.Offsets[g.NLocal] {
		return fmt.Errorf("dgraph: adj length %d != offsets end %d", len(g.Adj), g.Offsets[g.NLocal])
	}
	for i, u := range g.Adj {
		if u < 0 || int(u) >= g.NTotal() {
			return fmt.Errorf("dgraph: adj[%d] = %d outside [0,%d)", i, u, g.NTotal())
		}
	}
	for lid, gid := range g.L2G {
		if got, ok := g.G2L[gid]; !ok || got != int32(lid) {
			return fmt.Errorf("dgraph: G2L/L2G mismatch at lid %d gid %d", lid, gid)
		}
		want := g.Comm.Rank()
		if lid >= g.NLocal {
			want = int(g.GhostOwner[lid-g.NLocal])
		}
		if g.Dist.Owner(gid) != want {
			return fmt.Errorf("dgraph: ownership mismatch for gid %d", gid)
		}
	}
	return nil
}

// PushToOwners sends payloads for the given ghost local ids to the
// ranks that own them — the reverse direction of the owner → ghost
// exchanges, needed by frontier algorithms (BFS) where a rank
// discovers vertices it does not own. It returns the received pairs
// translated to owned local ids. Like the forward helpers it runs on
// the mode-selected transport: Alltoallv (gid, payload) pairs by
// default, packed per-neighbor point-to-point messages after
// SetAsyncExchange(true).
func (g *Graph) PushToOwners(lids []int32, payloads []int64) ([]int32, []int64) {
	if g.asyncRoute {
		return g.AsyncExchanger().PushValues(lids, payloads)
	}
	nprocs := g.Comm.Size()
	sendCounts := make([]int, nprocs)
	for _, lid := range lids {
		if !g.IsGhost(lid) {
			panic(fmt.Sprintf("dgraph: PushToOwners with owned lid %d", lid))
		}
		sendCounts[g.GhostOwner[int(lid)-g.NLocal]] += 2
	}
	sendOffsets := make([]int, nprocs+1)
	for r := 0; r < nprocs; r++ {
		sendOffsets[r+1] = sendOffsets[r] + sendCounts[r]
	}
	sendBuf := make([]int64, sendOffsets[nprocs])
	tmp := make([]int, nprocs)
	copy(tmp, sendOffsets[:nprocs])
	for i, lid := range lids {
		task := g.GhostOwner[int(lid)-g.NLocal]
		sendBuf[tmp[task]] = g.L2G[lid]
		sendBuf[tmp[task]+1] = payloads[i]
		tmp[task] += 2
	}
	recv, _ := mpi.Alltoallv(g.Comm, sendBuf, sendCounts)
	outL := make([]int32, 0, len(recv)/2)
	outP := make([]int64, 0, len(recv)/2)
	for i := 0; i < len(recv); i += 2 {
		lid, ok := g.G2L[recv[i]]
		if !ok || g.IsGhost(lid) {
			panic(fmt.Sprintf("dgraph: rank %d received push for gid %d it does not own", g.Comm.Rank(), recv[i]))
		}
		outL = append(outL, lid)
		outP = append(outP, recv[i+1])
	}
	return outL, outP
}
