package dgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// buildDistributed constructs the distributed graph for a generator on
// p ranks inside one mpi.Run, calling check on every rank's shard.
func buildDistributed(t *testing.T, g *gen.Generator, p int, dist func(nranks int) Distribution, check func(dg *Graph)) {
	t.Helper()
	mpi.Run(p, func(c *mpi.Comm) {
		chunk := g.EdgesChunk(c.Rank(), c.Size())
		dg, err := FromEdgeChunks(c, g.N, chunk, dist(c.Size()))
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if err := dg.Validate(); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		check(dg)
	})
}

func blockDist(n int64) func(int) Distribution {
	return func(p int) Distribution { return BlockDist{N: n, P: p} }
}

func hashDist() func(int) Distribution {
	return func(p int) Distribution { return HashDist{P: p, Seed: 99} }
}

func TestBlockDistRangesPartition(t *testing.T) {
	d := BlockDist{N: 103, P: 8}
	seen := int64(0)
	for r := 0; r < 8; r++ {
		lo, hi := d.Range(r)
		for gid := lo; gid < hi; gid++ {
			if d.Owner(gid) != r {
				t.Fatalf("gid %d in range of rank %d but owned by %d", gid, r, d.Owner(gid))
			}
			seen++
		}
	}
	if seen != 103 {
		t.Fatalf("ranges cover %d vertices, want 103", seen)
	}
}

func TestHashDistInRange(t *testing.T) {
	d := HashDist{P: 7, Seed: 1}
	counts := make([]int, 7)
	for gid := int64(0); gid < 7000; gid++ {
		o := d.Owner(gid)
		if o < 0 || o >= 7 {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("rank %d owns %d of 7000 vertices; distribution too skewed", r, c)
		}
	}
}

func TestDistributedMatchesSharedArcCount(t *testing.T) {
	g := gen.RMAT(10, 8, 5)
	shared := g.MustBuild()
	for _, p := range []int{1, 2, 4} {
		for _, mk := range []func(int) Distribution{blockDist(g.N), hashDist()} {
			var arcsTotal int64
			var nLocalTotal int64
			mpi.Run(p, func(c *mpi.Comm) {
				dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), mk(c.Size()))
				if err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
					return
				}
				arcs := mpi.AllreduceScalar(c, int64(len(dg.Adj)), mpi.Sum)
				nl := mpi.AllreduceScalar(c, int64(dg.NLocal), mpi.Sum)
				if c.Rank() == 0 {
					arcsTotal, nLocalTotal = arcs, nl
				}
				if dg.MGlobal != shared.NumArcs()/2 {
					t.Errorf("MGlobal = %d, want %d", dg.MGlobal, shared.NumArcs()/2)
				}
			})
			if arcsTotal != shared.NumArcs() {
				t.Fatalf("p=%d: distributed arcs %d != shared %d", p, arcsTotal, shared.NumArcs())
			}
			if nLocalTotal != g.N {
				t.Fatalf("p=%d: owned vertices %d != N %d", p, nLocalTotal, g.N)
			}
		}
	}
}

func TestDistributedAdjacencyMatchesShared(t *testing.T) {
	g := gen.ER(200, 800, 3)
	shared := g.MustBuild()
	buildDistributed(t, g, 3, blockDist(g.N), func(dg *Graph) {
		for v := 0; v < dg.NLocal; v++ {
			gid := dg.L2G[v]
			want := shared.Neighbors(gid)
			got := dg.Neighbors(int32(v))
			if len(got) != len(want) {
				t.Errorf("gid %d: degree %d != %d", gid, len(got), len(want))
				return
			}
			// Compare as multisets of global ids.
			wantCount := map[int64]int{}
			for _, u := range want {
				wantCount[u]++
			}
			for _, u := range got {
				wantCount[dg.L2G[u]]--
			}
			for u, cnt := range wantCount {
				if cnt != 0 {
					t.Errorf("gid %d: neighbor multiset mismatch at %d", gid, u)
					return
				}
			}
		}
	})
}

func TestGhostDegreesMatchShared(t *testing.T) {
	g := gen.RMAT(9, 8, 7)
	shared := g.MustBuild()
	buildDistributed(t, g, 4, hashDist(), func(dg *Graph) {
		for i := 0; i < dg.NGhost; i++ {
			lid := dg.NLocal + i
			gid := dg.L2G[lid]
			if dg.Degrees[lid] != shared.Degree(gid) {
				t.Errorf("ghost gid %d degree %d != shared %d", gid, dg.Degrees[lid], shared.Degree(gid))
				return
			}
		}
	})
}

func TestGhostsAreExactlyBoundary(t *testing.T) {
	g := gen.Grid3D(6, 6, 6)
	buildDistributed(t, g, 4, blockDist(g.N), func(dg *Graph) {
		// Every ghost must appear in some owned adjacency.
		referenced := make(map[int32]bool)
		for _, u := range dg.Adj {
			if dg.IsGhost(u) {
				referenced[u] = true
			}
		}
		if len(referenced) != dg.NGhost {
			t.Errorf("rank %d: %d ghosts but %d referenced", dg.Comm.Rank(), dg.NGhost, len(referenced))
		}
	})
}

func TestSingleRankHasNoGhosts(t *testing.T) {
	g := gen.ER(100, 400, 1)
	buildDistributed(t, g, 1, blockDist(g.N), func(dg *Graph) {
		if dg.NGhost != 0 {
			t.Errorf("single-rank ghost count %d", dg.NGhost)
		}
		if dg.NLocal != 100 {
			t.Errorf("NLocal = %d, want 100", dg.NLocal)
		}
	})
}

func TestExchangeUpdatesPropagatesToGhosts(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	shared := g.MustBuild()
	_ = shared
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		// Every rank updates all its owned vertices with value = gid%1000.
		vals := make([]int32, dg.NTotal())
		for i := range vals {
			vals[i] = -1
		}
		q := make([]Update, dg.NLocal)
		for v := 0; v < dg.NLocal; v++ {
			vals[v] = int32(dg.L2G[v] % 1000)
			q[v] = Update{LID: int32(v), Value: vals[v]}
		}
		recv := dg.ExchangeUpdates(q)
		for _, upd := range recv {
			if !dg.IsGhost(upd.LID) {
				t.Errorf("rank %d received update for owned vertex", c.Rank())
				return
			}
			vals[upd.LID] = upd.Value
		}
		// All ghosts must now have the correct value.
		for i := 0; i < dg.NGhost; i++ {
			lid := dg.NLocal + i
			want := int32(dg.L2G[lid] % 1000)
			if vals[lid] != want {
				t.Errorf("rank %d ghost gid %d got %d, want %d", c.Rank(), dg.L2G[lid], vals[lid], want)
				return
			}
		}
	})
}

func TestExchangeUpdatesOnlyTouchedVertices(t *testing.T) {
	g := gen.ER(200, 1000, 13)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		// Update only the single owned vertex with smallest gid (if any).
		var q []Update
		if dg.NLocal > 0 {
			q = append(q, Update{LID: 0, Value: 7})
		}
		recv := dg.ExchangeUpdates(q)
		// Received updates must reference ghosts whose gid is one of the
		// announced vertices (gid = first owned vertex of some rank).
		firstOwned := mpi.Allgather(c, dg.L2G[0])
		valid := map[int64]bool{}
		for _, gid := range firstOwned {
			valid[gid] = true
		}
		for _, upd := range recv {
			if !valid[dg.L2G[upd.LID]] {
				t.Errorf("rank %d got update for unexpected gid %d", c.Rank(), dg.L2G[upd.LID])
			}
			if upd.Value != 7 {
				t.Errorf("rank %d got value %d, want 7", c.Rank(), upd.Value)
			}
		}
	})
}

func TestGatherGlobal(t *testing.T) {
	g := gen.ER(150, 600, 17)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 2})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		vals := make([]int32, dg.NTotal())
		for v := 0; v < dg.NLocal; v++ {
			vals[v] = int32(dg.L2G[v] * 3)
		}
		full := dg.GatherGlobal(vals)
		for gid := int64(0); gid < g.N; gid++ {
			if full[gid] != int32(gid*3) {
				t.Errorf("rank %d: full[%d] = %d, want %d", c.Rank(), gid, full[gid], gid*3)
				return
			}
		}
	})
}

func TestEvaluateDistributedMatchesShared(t *testing.T) {
	g := gen.RMAT(10, 8, 21)
	shared := g.MustBuild()
	const p = 8 // parts
	// Shared-memory reference using vertex-block parts.
	refParts := partition.VertexBlock(shared, p)
	want := partition.Evaluate(shared, refParts, p)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 31})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		parts := make([]int32, dg.NTotal())
		for lid, gid := range dg.L2G {
			parts[lid] = refParts[gid]
		}
		got := EvaluateDistributed(dg, parts, p)
		if got.CutEdges != want.CutEdges {
			t.Errorf("CutEdges %d != %d", got.CutEdges, want.CutEdges)
		}
		if got.MaxPartCut != want.MaxPartCut {
			t.Errorf("MaxPartCut %d != %d", got.MaxPartCut, want.MaxPartCut)
		}
		for i := 0; i < p; i++ {
			if got.PartVerts[i] != want.PartVerts[i] {
				t.Errorf("PartVerts[%d] %d != %d", i, got.PartVerts[i], want.PartVerts[i])
			}
			if got.PartDegrees[i] != want.PartDegrees[i] {
				t.Errorf("PartDegrees[%d] %d != %d", i, got.PartDegrees[i], want.PartDegrees[i])
			}
			if got.PartCut[i] != want.PartCut[i] {
				t.Errorf("PartCut[%d] %d != %d", i, got.PartCut[i], want.PartCut[i])
			}
		}
	})
}

func TestFromEdgeChunksRejectsBadEdges(t *testing.T) {
	// Every rank passes a bad edge so all fail locally before entering
	// any collective (a single failing rank would deadlock, as real MPI
	// would).
	mpi.Run(2, func(c *mpi.Comm) {
		chunk := []graph.Edge{{U: 0, V: 99}}
		if _, err := FromEdgeChunks(c, 10, chunk, BlockDist{N: 10, P: c.Size()}); err == nil {
			t.Errorf("rank %d: expected out-of-range error", c.Rank())
		}
	})
}

func TestExchangeUpdatesThreadedMatchesSerial(t *testing.T) {
	// The thread-parallel two-pass fill must deliver exactly the same
	// update multiset as the single-threaded path.
	g := gen.ER(400, 2400, 23)
	collect := func(threadsPerRank int) map[int64]int32 {
		out := map[int64]int32{}
		mpi.RunThreads(3, threadsPerRank, func(c *mpi.Comm) {
			dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
				HashDist{P: c.Size(), Seed: 8})
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			q := make([]Update, dg.NLocal)
			for v := 0; v < dg.NLocal; v++ {
				q[v] = Update{LID: int32(v), Value: int32(dg.L2G[v] % 997)}
			}
			recv := dg.ExchangeUpdates(q)
			type kv struct {
				gid int64
				val int32
			}
			pairs := make([]kv, len(recv))
			for i, u := range recv {
				pairs[i] = kv{dg.L2G[u.LID], u.Value}
			}
			all := mpi.Allgatherv(c, pairs)
			if c.Rank() == 0 {
				for _, rankPairs := range all {
					for _, p := range rankPairs {
						out[p.gid] = p.val
					}
				}
			}
		})
		return out
	}
	serial := collect(1)
	threaded := collect(4)
	if len(serial) != len(threaded) {
		t.Fatalf("serial delivered %d gids, threaded %d", len(serial), len(threaded))
	}
	for gid, val := range serial {
		if threaded[gid] != val {
			t.Fatalf("gid %d: serial %d, threaded %d", gid, val, threaded[gid])
		}
	}
}

func TestExchangeEmptyQueueAllRanks(t *testing.T) {
	g := gen.ER(100, 400, 29)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		if recv := dg.ExchangeUpdates(nil); len(recv) != 0 {
			t.Errorf("rank %d received %d updates from empty exchange", c.Rank(), len(recv))
		}
	})
}

func TestBoundaryVerticesCached(t *testing.T) {
	g := gen.Grid3D(5, 5, 5)
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		a := dg.BoundaryVertices()
		b := dg.BoundaryVertices()
		if len(a) != len(b) {
			t.Error("cached boundary differs")
		}
		// Every boundary vertex has a ghost neighbor; every ghost is
		// adjacent to some boundary vertex.
		for _, v := range a {
			found := false
			for _, u := range dg.Neighbors(v) {
				if dg.IsGhost(u) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("rank %d: vertex %d in boundary without ghost neighbor", c.Rank(), v)
				return
			}
		}
	})
}

func TestPushToOwnersRejectsOwnedLID(t *testing.T) {
	g := gen.ER(60, 240, 31)
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			BlockDist{N: g.N, P: c.Size()})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer func() {
			if recover() == nil {
				t.Errorf("rank %d: expected panic for owned lid", c.Rank())
			}
		}()
		dg.PushToOwners([]int32{0}, []int64{1})
	})
}
