// Package dgraph implements the distributed one-dimensional CSR graph
// representation of XtraPuLP (§III.A): each rank owns a subset of
// vertices and their incident edges, stores part labels for owned and
// ghost vertices, maps global identifiers to task-local ones, and
// exchanges boundary updates with the Alltoallv-based communication
// routine of Algorithm 3.
package dgraph

import (
	"fmt"

	"repro/internal/rng"
)

// Distribution maps global vertex ids to owner ranks. Implementations
// must be pure functions of the id so that every rank computes the same
// owner without communication.
type Distribution interface {
	// Owner returns the rank owning global vertex gid.
	Owner(gid int64) int
	// Name identifies the distribution in reports.
	Name() string
}

// BlockDist assigns contiguous ranges of ⌈n/p⌉ vertices per rank — the
// paper's "block distribution". Vertex locality in the id space is
// preserved, which benefits crawls whose ids encode crawl order.
type BlockDist struct {
	N int64 // global vertex count
	P int   // rank count
}

// Owner implements Distribution. It is the exact inverse of Range:
// rank r owns [N*r/P, N*(r+1)/P), so the owner of gid is the smallest r
// with gid < N*(r+1)/P, i.e. ⌊(gid*P + P - 1) / N⌋.
func (d BlockDist) Owner(gid int64) int {
	if d.N == 0 {
		return 0
	}
	o := int((gid*int64(d.P) + int64(d.P) - 1) / d.N)
	if o >= d.P {
		o = d.P - 1
	}
	return o
}

// Name implements Distribution.
func (d BlockDist) Name() string { return "block" }

// Range returns the owned gid interval [lo, hi) of the given rank.
func (d BlockDist) Range(rank int) (lo, hi int64) {
	lo = d.N * int64(rank) / int64(d.P)
	hi = d.N * int64(rank+1) / int64(d.P)
	return lo, hi
}

// HashDist assigns vertices to ranks pseudo-randomly by hashing ids —
// the paper's "random distribution", observed to be more scalable for
// irregular networks because it spreads hubs across ranks.
type HashDist struct {
	P    int
	Seed uint64
}

// Owner implements Distribution.
func (d HashDist) Owner(gid int64) int {
	return int(rng.Mix(uint64(gid)^d.Seed) % uint64(d.P))
}

// Name implements Distribution.
func (d HashDist) Name() string { return "random" }

// ownedList enumerates the gids owned by rank under dist over [0, n),
// in increasing order.
func ownedList(dist Distribution, n int64, rank int) []int64 {
	if b, ok := dist.(BlockDist); ok {
		lo, hi := b.Range(rank)
		out := make([]int64, hi-lo)
		for i := range out {
			out[i] = lo + int64(i)
		}
		return out
	}
	var out []int64
	for gid := int64(0); gid < n; gid++ {
		if dist.Owner(gid) == rank {
			out = append(out, gid)
		}
	}
	return out
}

// validateDistribution sanity checks a distribution against a world
// size, returning an error usable by builders.
func validateDistribution(dist Distribution, nranks int, n int64) error {
	probe := []int64{0, n / 2, n - 1}
	for _, gid := range probe {
		if gid < 0 || n == 0 {
			continue
		}
		if o := dist.Owner(gid); o < 0 || o >= nranks {
			return fmt.Errorf("dgraph: distribution %s maps gid %d to rank %d outside [0,%d)",
				dist.Name(), gid, o, nranks)
		}
	}
	return nil
}

// PartsDist distributes vertices according to a precomputed partition:
// vertex gid lives on rank Parts[gid]. This is how a partitioner's
// output is consumed downstream — analytics and SpMV place data by the
// computed parts (the paper's Fig. 8 and Table III setups). The part
// count must equal the world size.
type PartsDist struct {
	Parts []int32
}

// Owner implements Distribution.
func (d PartsDist) Owner(gid int64) int { return int(d.Parts[gid]) }

// Name implements Distribution.
func (d PartsDist) Name() string { return "parts" }
