// Package dgraph implements the 1D distributed CSR the XtraPuLP
// reproduction computes on: each rank owns a contiguous-by-distribution
// slice of the vertex set, stores its owned vertices' adjacency with
// task-local ids, and mirrors one-hop remote neighbors as ghosts whose
// values (part labels, analytic scores) are refreshed by boundary
// exchanges.
//
// # Construction
//
// FromEdgeChunks builds the shard collectively from arbitrary edge-list
// chunks: arcs are shuffled to their head's owner, each rank assembles
// a local CSR, discovers ghosts, and fetches ghost degrees. The
// Distribution implementations (BlockDist, HashDist, PartsDist) map
// global vertex ids to owning ranks.
//
// # Boundary exchange: two transports
//
// Every iterative algorithm on the shard pushes changed owned-vertex
// values to the ranks ghosting them (and, for frontier algorithms, the
// reverse). Two interchangeable transports implement this:
//
//   - Synchronous (exchangeRaw, ExchangeUpdates): destinations are
//     re-derived from the adjacency every call and (gid, value) pairs
//     ship through a world-wide mpi.Alltoallv.
//   - Asynchronous delta (DeltaExchanger, delta.go): the boundary
//     structure is precomputed once — for every neighbor rank, the
//     gid-sorted list of shared vertices, derived independently and
//     identically on both sides of each pair — so updates name
//     vertices by shared-list index, travel as packed elements over
//     nonblocking point-to-point messages, and the receive side drains
//     on a persistent background goroutine concurrently with local
//     compute. Every flow is split-phase (Begin/Flush,
//     BeginValues/FlushValues, BeginPush/FlushPush); messages may
//     additionally piggyback tally frames (mpi.AppendTally) so an
//     exchange round doubles as a reduction, with value rounds keeping
//     the frames per source (TallyRound) so float partial sums fold in
//     global rank order. Steady-state rounds allocate nothing: encode
//     and decode buffers are per-exchanger arenas and transfer copies
//     come from the mpi buffer pool.
//
// SetAsyncExchange routes the generic helpers (ExchangeInt64,
// ExchangeFloat64, PushToOwners) through the delta engine; the
// partitioner drives the update flow (Begin/Flush) directly, and the
// overlapped analytics engines drive the split-phase value flows. Both
// transports deliver identical results — the choice is pure transport,
// observable only in mpi.Stats traffic counters and wall time.
package dgraph
