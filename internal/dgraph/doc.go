// Package dgraph implements the 1D distributed CSR the XtraPuLP
// reproduction computes on: each rank owns a contiguous-by-distribution
// slice of the vertex set, stores its owned vertices' adjacency with
// task-local ids, and mirrors one-hop remote neighbors as ghosts whose
// values (part labels, analytic scores) are refreshed by boundary
// exchanges.
//
// # Construction
//
// FromEdgeChunks builds the shard collectively from arbitrary edge-list
// chunks: arcs are shuffled to their head's owner, each rank assembles
// a local CSR, discovers ghosts, and fetches ghost degrees. The
// Distribution implementations (BlockDist, HashDist, PartsDist) map
// global vertex ids to owning ranks.
//
// # Boundary exchange: two transports
//
// Every iterative algorithm on the shard pushes changed owned-vertex
// values to the ranks ghosting them (and, for frontier algorithms, the
// reverse). Two interchangeable transports implement this:
//
//   - Synchronous (exchangeRaw, ExchangeUpdates): destinations are
//     re-derived from the adjacency every call and (gid, value) pairs
//     ship through a world-wide mpi.Alltoallv.
//   - Asynchronous delta (DeltaExchanger, delta.go): the boundary
//     structure is precomputed once — for every neighbor rank, the
//     gid-sorted list of shared vertices, derived independently and
//     identically on both sides of each pair — so updates name
//     vertices by shared-list index, travel as packed elements over
//     nonblocking point-to-point messages, and the receive side drains
//     on a persistent background goroutine concurrently with local
//     compute. Every flow is split-phase (Begin/Flush,
//     BeginValues/FlushValues, BeginPush/FlushPush) and rounds
//     pipeline to a construction-time depth knob (SetPipeDepth,
//     default DefaultPipeDepth) — further Begin* calls may be posted
//     while earlier rounds' Flushes are still outstanding, with each
//     round's messages stamped with its sequence number (composed
//     with an optional wave id, SetRoundWave) as an mpi round tag and
//     flushes settling rounds oldest-first. Messages may
//     additionally piggyback tally frames (mpi.AppendTally) so an
//     exchange round doubles as a reduction, with value rounds keeping
//     the frames per source (TallyRound) so float partial sums fold in
//     global rank order (and extrema max-combine exactly: Max,
//     FoldFloatMax). Steady-state rounds allocate nothing: encode
//     buffers are per-exchanger arenas, decode buffers are drainer
//     arenas double-buffered by round parity, and transfer copies come
//     from the mpi buffer pool.
//
// Exchanger construction is collective (it runs the one-time
// rank-neighborhood completeness Allreduce so NeighborhoodComplete is
// a pure cached read), and every exchanger owns one drainer goroutine
// released by DeltaExchanger.Close — Graph.Close calls it at teardown;
// a finalizer exists only as a backstop for dropped exchangers.
//
// SetAsyncExchange routes the generic helpers (ExchangeInt64,
// ExchangeFloat64, PushToOwners) through the delta engine; the
// partitioner drives the update flow (Begin/Flush) directly, and the
// overlapped analytics engines drive the split-phase value flows (BFS
// keeping two rounds in flight, the multi-wave HC engine keeping two
// per wave). SetTermEpoch bounds the overlapped analytics'
// termination-Allreduce cadence on incomplete rank neighborhoods.
// Both transports deliver identical results — the choice is pure
// transport, observable only in mpi.Stats traffic counters and wall
// time.
//
// # Hot-path annotation
//
// The steady-state delta-engine functions (round post/join, the
// Flush/Begin value flows) carry a //repro:hotpath directive as the
// last line of their doc comment: cmd/reprolint's hotpathalloc
// analyzer enforces that they perform no heap allocation beyond the
// sanctioned arena-growth idioms, turning the AllocsPerRun == 0
// regression tests into a compile-time guarantee. See
// docs/INVARIANTS.md for the rule and the full invariant catalogue.
package dgraph
