package dgraph

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// Steady-state allocation discipline: after warmup, FlushTally and
// FlushValues rounds must not touch the heap — the encode arenas, the
// drainer's decode arenas, and the mpi transfer-buffer pool absorb
// every byte. These tests drive full rounds on every rank and assert
// testing.AllocsPerRun == 0 on rank 0 while the sibling ranks run the
// same rounds (their allocations would land in the same process-wide
// counter, so the assertion covers all ranks at once).

// allocHarness builds a distributed graph on nranks ranks and runs
// round exactly warmup+measured times on every rank; rank 0 measures
// the last `measured` rounds with testing.AllocsPerRun.
func allocHarness(t *testing.T, nranks int, mk func(dg *Graph) func(), what string) {
	t.Helper()
	g := gen.ER(400, 2400, 11)
	const warmup, measured = 12, 40
	mpi.Run(nranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		round := mk(dg)
		for i := 0; i < warmup; i++ {
			round()
		}
		c.Barrier()
		if c.Rank() == 0 {
			// AllocsPerRun calls round measured+1 times (one warmup
			// call of its own); the sibling ranks match it below.
			if avg := testing.AllocsPerRun(measured, round); avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state round, want 0", what, avg)
			}
		} else {
			for i := 0; i < measured+1; i++ {
				round()
			}
		}
	})
}

func TestFlushTallySteadyStateAllocFree(t *testing.T) {
	allocHarness(t, 4, func(dg *Graph) func() {
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		q := make([]Update, len(bv))
		for i, v := range bv {
			q[i] = Update{LID: v, Value: int32(i % 7)}
		}
		tally := []int64{3, 0, int64(dg.Comm.Rank())}
		return func() {
			ex.BeginTally(len(tally))
			ex.FlushTally(q, tally)
		}
	}, "FlushTally")
}

func TestFlushValuesSteadyStateAllocFree(t *testing.T) {
	allocHarness(t, 4, func(dg *Graph) func() {
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		for i, v := range bv {
			payload[i] = int64(v) * 3
		}
		tally := []int64{1}
		return func() {
			ex.BeginValues(bv, payload, tally)
			ex.FlushValues()
		}
	}, "FlushValues")
}

func TestFlushPushSteadyStateAllocFree(t *testing.T) {
	allocHarness(t, 4, func(dg *Graph) func() {
		ex := dg.AsyncExchanger()
		ghosts := make([]int32, dg.NGhost)
		payload := make([]int64, dg.NGhost)
		for i := range ghosts {
			ghosts[i] = int32(dg.NLocal + i)
			payload[i] = int64(i)
		}
		return func() {
			ex.BeginPush(ghosts, payload, nil)
			ex.FlushPush()
		}
	}, "FlushPush")
}

// benchValueRound reports ns and B per steady-state split-phase value
// round (full boundary, dense encoding, one-counter tally) — the
// -benchmem companion of the AllocsPerRun assertions.
func BenchmarkFlushValuesSteadyState(b *testing.B) {
	g := gen.RMAT(12, 16, 1)
	b.ReportAllocs()
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 1})
		if err != nil {
			b.Error(err)
			return
		}
		ex := dg.AsyncExchanger()
		defer dg.Close()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		for i, v := range bv {
			payload[i] = int64(v)
		}
		tally := []int64{1}
		benchWarmupReset(b, c, func() {
			ex.BeginValues(bv, payload, tally)
			ex.FlushValues()
		})
		for i := 0; i < b.N; i++ {
			ex.BeginValues(bv, payload, tally)
			ex.FlushValues()
		}
	})
}

// benchWarmupReset runs a few warmup rounds on every rank, then resets
// the benchmark timer and allocation counters on rank 0 so the
// measured window covers only steady-state rounds (graph construction
// and arena/pool growth excluded).
func benchWarmupReset(b *testing.B, c *mpi.Comm, round func()) {
	b.Helper()
	for i := 0; i < 12; i++ {
		round()
	}
	c.Barrier()
	if c.Rank() == 0 {
		b.ResetTimer()
	}
	c.Barrier()
}

func BenchmarkFlushTallySteadyState(b *testing.B) {
	g := gen.RMAT(12, 16, 1)
	b.ReportAllocs()
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 1})
		if err != nil {
			b.Error(err)
			return
		}
		ex := dg.AsyncExchanger()
		defer dg.Close()
		bv := dg.BoundaryVertices()
		q := make([]Update, len(bv))
		for i, v := range bv {
			q[i] = Update{LID: v, Value: int32(i % 16)}
		}
		tally := []int64{0, 5}
		benchWarmupReset(b, c, func() {
			ex.BeginTally(len(tally))
			ex.FlushTally(q, tally)
		})
		for i := 0; i < b.N; i++ {
			ex.BeginTally(len(tally))
			ex.FlushTally(q, tally)
		}
	})
}
