package dgraph

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// Depth-2 pipelining and the drainer lifecycle: these tests drive the
// exchanger with two rounds in flight and assert results stay
// bit-identical to the sequential Begin/Flush schedule, that pipelined
// steady-state rounds still allocate nothing, and that Close actually
// releases the drainer goroutine (the finalizer is only a backstop).

// TestCloseStopsDrainerGoroutine cycles exchanger create/use/Close and
// asserts the process goroutine count does not grow — the regression
// test for drainer leaks in long-lived processes, where finalizers
// (the old shutdown path) are not guaranteed to run.
func TestCloseStopsDrainerGoroutine(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	const ranks = 2
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		cycle := func() {
			ex := dg.AsyncExchanger()
			ex.BeginValues(bv, payload, nil)
			ex.FlushValues()
			dg.Close()
		}
		cycle() // warm caches (boundary plan arenas, mpi pool)
		c.Barrier()
		before := runtime.NumGoroutine()
		for i := 0; i < 20; i++ {
			cycle()
		}
		c.Barrier()
		// Closed drainers exit synchronously (Close waits on the done
		// channel), so the count must not trend upward. Allow a little
		// slack for unrelated runtime goroutines.
		after := runtime.NumGoroutine()
		if after > before+ranks {
			t.Errorf("rank %d: %d goroutines after 20 create/Close cycles, started with %d (drainer leak)",
				c.Rank(), after, before)
		}
	})
}

// TestCloseWithPendingRoundSettles posts a round and Closes without
// flushing: Close must join the in-flight round and still stop the
// drainer.
func TestCloseWithPendingRoundSettles(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		ex.BeginValues(bv, payload, nil)
		ex.BeginValues(bv, payload, nil) // two rounds in flight
		dg.Close()                       // settles both, then stops the drainer
		if ex.InFlight() != 0 {
			t.Errorf("rank %d: %d rounds still pending after Close", c.Rank(), ex.InFlight())
		}
		// A closed exchanger is reusable: the next round restarts the
		// drainer.
		ex.BeginValues(bv, payload, nil)
		ex.FlushValues()
		ex.Close()
	})
}

// TestPipelinedValueRoundsMatchSequential runs the same sequence of
// full-boundary value rounds twice — once Begin/Flush strictly
// alternating, once with two rounds in flight (BFS-style software
// pipeline) — and asserts every round's delivered ghost values and
// folded tallies are bit-identical, and that the pipelined schedule
// actually reached depth 2.
func TestPipelinedValueRoundsMatchSequential(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	const rounds = 12
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()

		// payloadFor derives round r's payload for owned vertex v
		// deterministically so both schedules ship identical data.
		payloadFor := func(r int, v int32) int64 {
			return int64(r+1)*1_000_003 + int64(dg.L2G[v])
		}
		run := func(pipelined bool) ([][]int64, [][2]float64) {
			vals := make([][]int64, rounds)    // per round: ghost lid -> payload (dense by NTotal)
			sums := make([][2]float64, rounds) // per round: FoldFloat(0), FoldFloatMax(1)
			payload := make([]int64, len(bv))
			tallies := make([][]int64, rounds)
			for r := range tallies {
				tallies[r] = []int64{
					int64(math.Float64bits(float64(c.Rank()+1) * float64(r+1) * 0.125)),
					int64(math.Float64bits(float64((c.Rank()*7+r)%5) + 0.5)),
				}
			}
			settle := func(r int) {
				outL, outP, tr := ex.FlushValues()
				dense := make([]int64, dg.NTotal())
				for i, lid := range outL {
					dense[lid] = outP[i]
				}
				vals[r] = dense
				sums[r] = [2]float64{tr.FoldFloat(0), tr.FoldFloatMax(1)}
			}
			post := func(r int) {
				for i, v := range bv {
					payload[i] = payloadFor(r, v)
				}
				ex.BeginValues(bv, payload, tallies[r])
			}
			if !pipelined {
				for r := 0; r < rounds; r++ {
					post(r)
					settle(r)
				}
				return vals, sums
			}
			post(0)
			for r := 1; r < rounds; r++ {
				post(r) // two rounds now in flight
				settle(r - 1)
			}
			settle(rounds - 1)
			return vals, sums
		}

		seqVals, seqSums := run(false)
		base := ex.MaxDepth
		pipVals, pipSums := run(true)
		if base >= PipelineDepth {
			t.Errorf("rank %d: sequential schedule reached depth %d", c.Rank(), base)
		}
		if ex.MaxDepth != PipelineDepth {
			t.Errorf("rank %d: pipelined schedule reached depth %d, want %d", c.Rank(), ex.MaxDepth, PipelineDepth)
		}
		for r := 0; r < rounds; r++ {
			if seqSums[r] != pipSums[r] {
				t.Errorf("rank %d round %d: folded tallies %v (sequential) vs %v (pipelined)",
					c.Rank(), r, seqSums[r], pipSums[r])
				return
			}
			for lid := range seqVals[r] {
				if seqVals[r][lid] != pipVals[r][lid] {
					t.Errorf("rank %d round %d: ghost value at lid %d diverges: %d vs %d",
						c.Rank(), r, lid, seqVals[r][lid], pipVals[r][lid])
					return
				}
			}
		}
	})
}

// TestPipelinedMixedValuePushRounds interleaves the two value-flow
// directions with two rounds in flight — BeginPush posted while the
// previous BeginValues is still pending, exactly the overlapped BFS
// schedule — and checks both directions deliver what the blocking
// compositions deliver.
func TestPipelinedMixedValuePushRounds(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		fwdPayload := make([]int64, len(bv))
		for i, v := range bv {
			fwdPayload[i] = dg.L2G[v] * 17
		}
		ghosts := make([]int32, dg.NGhost)
		revPayload := make([]int64, dg.NGhost)
		for i := range ghosts {
			ghosts[i] = int32(dg.NLocal + i)
			revPayload[i] = dg.L2G[ghosts[i]] * 23
		}

		// Blocking reference.
		wantFL, wantFP := ex.ExchangeValues(bv, fwdPayload)
		refF := make([]int64, dg.NTotal())
		for i, lid := range wantFL {
			refF[lid] = wantFP[i]
		}
		wantRL, wantRP := ex.PushValues(ghosts, revPayload)
		refR := make([]int64, dg.NTotal())
		for i, lid := range wantRL {
			refR[lid] += wantRP[i]
		}

		// Pipelined: Values posted, Push posted behind it, then both
		// flushed oldest-first.
		ex.BeginValues(bv, fwdPayload, nil)
		ex.BeginPush(ghosts, revPayload, nil)
		if ex.InFlight() != 2 {
			t.Errorf("rank %d: InFlight = %d, want 2", c.Rank(), ex.InFlight())
		}
		gotFL, gotFP, _ := ex.FlushValues()
		gotF := make([]int64, dg.NTotal())
		for i, lid := range gotFL {
			gotF[lid] = gotFP[i]
		}
		gotRL, gotRP, _ := ex.FlushPush()
		gotR := make([]int64, dg.NTotal())
		for i, lid := range gotRL {
			gotR[lid] += gotRP[i]
		}
		for lid := range refF {
			if refF[lid] != gotF[lid] {
				t.Errorf("rank %d: forward value at lid %d: %d vs %d", c.Rank(), lid, refF[lid], gotF[lid])
				return
			}
			if refR[lid] != gotR[lid] {
				t.Errorf("rank %d: reverse value at lid %d: %d vs %d", c.Rank(), lid, refR[lid], gotR[lid])
				return
			}
		}
	})
}

// TestPipelinedRoundsSteadyStateAllocFree is the AllocsPerRun == 0
// regression for the DEPTH-2 schedule: with two rounds permanently in
// flight, a steady-state Begin+Flush pair must still never touch the
// heap (the drainer's double-buffered arenas and the mpi pool absorb
// the deeper in-flight window).
func TestPipelinedRoundsSteadyStateAllocFree(t *testing.T) {
	allocHarness(t, 4, func(dg *Graph) func() {
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		for i, v := range bv {
			payload[i] = int64(v) * 3
		}
		tally := []int64{1}
		pending := 0
		return func() {
			ex.BeginValues(bv, payload, tally)
			pending++
			if pending == PipelineDepth {
				ex.FlushValues()
				pending--
			}
		}
	}, "pipelined BeginValues/FlushValues")
}

// TestTallyRoundMaxFolds exercises the max-combining folds: integer
// Max and float FoldFloatMax must deliver the global extrema of the
// per-rank contributions on a complete neighborhood.
func TestTallyRoundMaxFolds(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	const ranks = 4
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		if !ex.NeighborhoodComplete() {
			t.Errorf("rank %d: want complete neighborhood", c.Rank())
			return
		}
		me := int64(c.Rank())
		f := 1.5 * float64(c.Rank()+1)
		tally := []int64{me * 10, int64(math.Float64bits(f))}
		ex.BeginValues(nil, nil, tally)
		_, _, tr := ex.FlushValues()
		if got, want := tr.Max(0), int64((ranks-1)*10); got != want {
			t.Errorf("rank %d: Max = %d, want %d", c.Rank(), got, want)
		}
		if got, want := tr.FoldFloatMax(1), 1.5*float64(ranks); got != want {
			t.Errorf("rank %d: FoldFloatMax = %v, want %v", c.Rank(), got, want)
		}
		// And FoldFloatMax must equal the Allreduce it replaces, bit
		// for bit.
		if got, want := tr.FoldFloatMax(1), mpi.AllreduceScalar(c, f, mpi.Max); got != want {
			t.Errorf("rank %d: FoldFloatMax %v != Allreduce(Max) %v", c.Rank(), got, want)
		}
	})
}

// A value round posted behind a pending update round must be rejected
// at post time: value sends are eager while update sends are deferred
// to Flush, so the combination would invert frame order in the pair
// FIFOs (the drainer would see it as a skewed pipeline deep in
// Recv64Tag — the panic here names the actual protocol error instead).
func TestValueRoundBehindUpdateRoundPanics(t *testing.T) {
	g := gen.ER(60, 240, 31)
	mpi.Run(1, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: 1})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		ex.Begin()
		defer func() {
			if recover() == nil {
				t.Error("expected panic for BeginValues behind a pending update round")
			}
			ex.Flush(nil) // settle the legally posted update round
		}()
		ex.BeginValues(nil, nil, nil)
	})
}

// TestRoundTagSkewPanics sends a frame with a forged round tag and
// asserts the tagged receive rejects it — the wire-level guard that
// turns a skewed pipeline into a loud failure.
func TestRoundTagSkewPanics(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			mpi.Isend64Tag(c, 1, 7, []int64{42})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Recv64Tag accepted a mismatched round tag")
			}
		}()
		mpi.Recv64Tag(c, 0, 8)
	})
}

// The drainer must still ferry panics (here: mailbox poison after a
// sibling rank's crash) back through Flush with rounds pipelined.
func TestPipelinedDrainerFerriesPanics(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	defer func() {
		if recover() == nil {
			t.Error("expected the injected rank panic to propagate")
		}
	}()
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		if c.Rank() == 1 {
			// Crash before sending: rank 0's drainer blocks until the
			// poison wakes it.
			panic("injected failure")
		}
		ex.BeginValues(bv, payload, nil)
		ex.BeginValues(bv, payload, nil)
		time.Sleep(10 * time.Millisecond) // let the drainer park in Recv64
		ex.FlushValues()                  // must re-raise the poison panic
		ex.FlushValues()
	})
}
