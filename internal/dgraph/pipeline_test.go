package dgraph

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// Depth-2 pipelining and the drainer lifecycle: these tests drive the
// exchanger with two rounds in flight and assert results stay
// bit-identical to the sequential Begin/Flush schedule, that pipelined
// steady-state rounds still allocate nothing, and that Close actually
// releases the drainer goroutine (the finalizer is only a backstop).

// TestCloseStopsDrainerGoroutine cycles exchanger create/use/Close and
// asserts the process goroutine count does not grow — the regression
// test for drainer leaks in long-lived processes, where finalizers
// (the old shutdown path) are not guaranteed to run.
func TestCloseStopsDrainerGoroutine(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	const ranks = 2
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		cycle := func() {
			ex := dg.AsyncExchanger()
			ex.BeginValues(bv, payload, nil)
			ex.FlushValues()
			dg.Close()
		}
		cycle() // warm caches (boundary plan arenas, mpi pool)
		c.Barrier()
		before := runtime.NumGoroutine()
		for i := 0; i < 20; i++ {
			cycle()
		}
		c.Barrier()
		// Closed drainers exit synchronously (Close waits on the done
		// channel), so the count must not trend upward. Allow a little
		// slack for unrelated runtime goroutines.
		after := runtime.NumGoroutine()
		if after > before+ranks {
			t.Errorf("rank %d: %d goroutines after 20 create/Close cycles, started with %d (drainer leak)",
				c.Rank(), after, before)
		}
	})
}

// TestCloseWithPendingRoundSettles posts a round and Closes without
// flushing: Close must join the in-flight round and still stop the
// drainer.
func TestCloseWithPendingRoundSettles(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		ex.BeginValues(bv, payload, nil)
		ex.BeginValues(bv, payload, nil) // two rounds in flight
		dg.Close()                       // settles both, then stops the drainer
		if ex.InFlight() != 0 {
			t.Errorf("rank %d: %d rounds still pending after Close", c.Rank(), ex.InFlight())
		}
		// A closed exchanger is reusable: the next round restarts the
		// drainer.
		ex.BeginValues(bv, payload, nil)
		ex.FlushValues()
		ex.Close()
	})
}

// TestPipelinedValueRoundsMatchSequential runs the same sequence of
// full-boundary value rounds twice — once Begin/Flush strictly
// alternating, once with two rounds in flight (BFS-style software
// pipeline) — and asserts every round's delivered ghost values and
// folded tallies are bit-identical, and that the pipelined schedule
// actually reached depth 2.
func TestPipelinedValueRoundsMatchSequential(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	const rounds = 12
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()

		// payloadFor derives round r's payload for owned vertex v
		// deterministically so both schedules ship identical data.
		payloadFor := func(r int, v int32) int64 {
			return int64(r+1)*1_000_003 + int64(dg.L2G[v])
		}
		run := func(pipelined bool) ([][]int64, [][2]float64) {
			vals := make([][]int64, rounds)    // per round: ghost lid -> payload (dense by NTotal)
			sums := make([][2]float64, rounds) // per round: FoldFloat(0), FoldFloatMax(1)
			payload := make([]int64, len(bv))
			tallies := make([][]int64, rounds)
			for r := range tallies {
				tallies[r] = []int64{
					int64(math.Float64bits(float64(c.Rank()+1) * float64(r+1) * 0.125)),
					int64(math.Float64bits(float64((c.Rank()*7+r)%5) + 0.5)),
				}
			}
			settle := func(r int) {
				outL, outP, tr := ex.FlushValues()
				dense := make([]int64, dg.NTotal())
				for i, lid := range outL {
					dense[lid] = outP[i]
				}
				vals[r] = dense
				sums[r] = [2]float64{tr.FoldFloat(0), tr.FoldFloatMax(1)}
			}
			post := func(r int) {
				for i, v := range bv {
					payload[i] = payloadFor(r, v)
				}
				ex.BeginValues(bv, payload, tallies[r])
			}
			if !pipelined {
				for r := 0; r < rounds; r++ {
					post(r)
					settle(r)
				}
				return vals, sums
			}
			post(0)
			for r := 1; r < rounds; r++ {
				post(r) // two rounds now in flight
				settle(r - 1)
			}
			settle(rounds - 1)
			return vals, sums
		}

		seqVals, seqSums := run(false)
		base := ex.MaxDepth
		pipVals, pipSums := run(true)
		if base >= DefaultPipeDepth {
			t.Errorf("rank %d: sequential schedule reached depth %d", c.Rank(), base)
		}
		if ex.MaxDepth != DefaultPipeDepth {
			t.Errorf("rank %d: pipelined schedule reached depth %d, want %d", c.Rank(), ex.MaxDepth, DefaultPipeDepth)
		}
		for r := 0; r < rounds; r++ {
			if seqSums[r] != pipSums[r] {
				t.Errorf("rank %d round %d: folded tallies %v (sequential) vs %v (pipelined)",
					c.Rank(), r, seqSums[r], pipSums[r])
				return
			}
			for lid := range seqVals[r] {
				if seqVals[r][lid] != pipVals[r][lid] {
					t.Errorf("rank %d round %d: ghost value at lid %d diverges: %d vs %d",
						c.Rank(), r, lid, seqVals[r][lid], pipVals[r][lid])
					return
				}
			}
		}
	})
}

// TestPipelinedMixedValuePushRounds interleaves the two value-flow
// directions with two rounds in flight — BeginPush posted while the
// previous BeginValues is still pending, exactly the overlapped BFS
// schedule — and checks both directions deliver what the blocking
// compositions deliver.
func TestPipelinedMixedValuePushRounds(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		fwdPayload := make([]int64, len(bv))
		for i, v := range bv {
			fwdPayload[i] = dg.L2G[v] * 17
		}
		ghosts := make([]int32, dg.NGhost)
		revPayload := make([]int64, dg.NGhost)
		for i := range ghosts {
			ghosts[i] = int32(dg.NLocal + i)
			revPayload[i] = dg.L2G[ghosts[i]] * 23
		}

		// Blocking reference.
		wantFL, wantFP := ex.ExchangeValues(bv, fwdPayload)
		refF := make([]int64, dg.NTotal())
		for i, lid := range wantFL {
			refF[lid] = wantFP[i]
		}
		wantRL, wantRP := ex.PushValues(ghosts, revPayload)
		refR := make([]int64, dg.NTotal())
		for i, lid := range wantRL {
			refR[lid] += wantRP[i]
		}

		// Pipelined: Values posted, Push posted behind it, then both
		// flushed oldest-first.
		ex.BeginValues(bv, fwdPayload, nil)
		ex.BeginPush(ghosts, revPayload, nil)
		if ex.InFlight() != 2 {
			t.Errorf("rank %d: InFlight = %d, want 2", c.Rank(), ex.InFlight())
		}
		gotFL, gotFP, _ := ex.FlushValues()
		gotF := make([]int64, dg.NTotal())
		for i, lid := range gotFL {
			gotF[lid] = gotFP[i]
		}
		gotRL, gotRP, _ := ex.FlushPush()
		gotR := make([]int64, dg.NTotal())
		for i, lid := range gotRL {
			gotR[lid] += gotRP[i]
		}
		for lid := range refF {
			if refF[lid] != gotF[lid] {
				t.Errorf("rank %d: forward value at lid %d: %d vs %d", c.Rank(), lid, refF[lid], gotF[lid])
				return
			}
			if refR[lid] != gotR[lid] {
				t.Errorf("rank %d: reverse value at lid %d: %d vs %d", c.Rank(), lid, refR[lid], gotR[lid])
				return
			}
		}
	})
}

// TestPipelinedRoundsSteadyStateAllocFree is the AllocsPerRun == 0
// regression for the DEPTH-2 schedule: with two rounds permanently in
// flight, a steady-state Begin+Flush pair must still never touch the
// heap (the drainer's double-buffered arenas and the mpi pool absorb
// the deeper in-flight window).
func TestPipelinedRoundsSteadyStateAllocFree(t *testing.T) {
	allocHarness(t, 4, func(dg *Graph) func() {
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		for i, v := range bv {
			payload[i] = int64(v) * 3
		}
		tally := []int64{1}
		pending := 0
		return func() {
			ex.BeginValues(bv, payload, tally)
			pending++
			if pending == DefaultPipeDepth {
				ex.FlushValues()
				pending--
			}
		}
	}, "pipelined BeginValues/FlushValues")
}

// TestTallyRoundMaxFolds exercises the max-combining folds: integer
// Max and float FoldFloatMax must deliver the global extrema of the
// per-rank contributions on a complete neighborhood.
func TestTallyRoundMaxFolds(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	const ranks = 4
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		if !ex.NeighborhoodComplete() {
			t.Errorf("rank %d: want complete neighborhood", c.Rank())
			return
		}
		me := int64(c.Rank())
		f := 1.5 * float64(c.Rank()+1)
		tally := []int64{me * 10, int64(math.Float64bits(f))}
		ex.BeginValues(nil, nil, tally)
		_, _, tr := ex.FlushValues()
		if got, want := tr.Max(0), int64((ranks-1)*10); got != want {
			t.Errorf("rank %d: Max = %d, want %d", c.Rank(), got, want)
		}
		if got, want := tr.FoldFloatMax(1), 1.5*float64(ranks); got != want {
			t.Errorf("rank %d: FoldFloatMax = %v, want %v", c.Rank(), got, want)
		}
		// And FoldFloatMax must equal the Allreduce it replaces, bit
		// for bit.
		if got, want := tr.FoldFloatMax(1), mpi.AllreduceScalar(c, f, mpi.Max); got != want {
			t.Errorf("rank %d: FoldFloatMax %v != Allreduce(Max) %v", c.Rank(), got, want)
		}
	})
}

// A value round posted behind a pending update round must be rejected
// at post time: value sends are eager while update sends are deferred
// to Flush, so the combination would invert frame order in the pair
// FIFOs (the drainer would see it as a skewed pipeline deep in
// Recv64Tag — the panic here names the actual protocol error instead).
func TestValueRoundBehindUpdateRoundPanics(t *testing.T) {
	g := gen.ER(60, 240, 31)
	mpi.Run(1, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: 1})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		ex := dg.NewDeltaExchanger()
		defer ex.Close()
		ex.Begin()
		defer func() {
			if recover() == nil {
				t.Error("expected panic for BeginValues behind a pending update round")
			}
			ex.Flush(nil) // settle the legally posted update round
		}()
		ex.BeginValues(nil, nil, nil)
	})
}

// TestRoundTagSkewPanics sends a frame with a forged round tag and
// asserts the tagged receive rejects it — the wire-level guard that
// turns a skewed pipeline into a loud failure.
func TestRoundTagSkewPanics(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			mpi.Isend64Tag(c, 1, 7, []int64{42})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Recv64Tag accepted a mismatched round tag")
			}
		}()
		mpi.Recv64Tag(c, 0, 8)
	})
}

// TestWaveTagSkewPanicsNamingWave forges a frame from the wrong WAVE
// and asserts the panic decodes the composed tag, naming both waves
// and rounds — the multi-wave guard on top of the plain skew panic.
func TestWaveTagSkewPanicsNamingWave(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			mpi.Isend64Tag(c, 1, mpi.RoundTag(3, 7), []int64{42})
			return
		}
		defer func() {
			p := recover()
			if p == nil {
				t.Error("Recv64Tag accepted a frame from the wrong wave")
				return
			}
			msg := fmt.Sprint(p)
			if !strings.Contains(msg, "wave 3 round 7") || !strings.Contains(msg, "wave 2 round 7") {
				t.Errorf("wave-skew panic %q does not name both waves and rounds", msg)
			}
		}()
		mpi.Recv64Tag(c, 0, mpi.RoundTag(2, 7))
	})
}

// TestRoundTagCompose round-trips the wave/sequence split, including
// the 24-bit sequence wrap both sides mask identically.
func TestRoundTagCompose(t *testing.T) {
	cases := []struct {
		wave int
		seq  uint32
	}{{0, 0}, {1, 5}, {mpi.MaxTagWave, 1<<mpi.TagSeqBits - 1}, {3, 0xdeadbe}}
	for _, tc := range cases {
		w, s := mpi.SplitRoundTag(mpi.RoundTag(tc.wave, tc.seq))
		if w != tc.wave || s != tc.seq&(1<<mpi.TagSeqBits-1) {
			t.Errorf("RoundTag(%d,%d) round-tripped to (%d,%d)", tc.wave, tc.seq, w, s)
		}
	}
	// Wrapping sequences must compose to equal tags on both sides.
	if mpi.RoundTag(2, 1<<mpi.TagSeqBits) != mpi.RoundTag(2, 0) {
		t.Error("sequence wrap changed the tag")
	}
}

// TestSetPipeDepthValidation: the knob rejects depths the split-phase
// schedules cannot run at, accepts 0 as the default, and refuses to
// change a depth the exchanger was already built with.
func TestSetPipeDepthValidation(t *testing.T) {
	g := gen.ER(60, 240, 31)
	mpi.Run(1, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), BlockDist{N: g.N, P: 1})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		defer dg.Close()
		mustPanic := func(what string, f func()) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", what)
				}
			}()
			f()
		}
		mustPanic("SetPipeDepth(1)", func() { dg.SetPipeDepth(1) })
		mustPanic("SetPipeDepth(-2)", func() { dg.SetPipeDepth(-2) })
		if dg.PipeDepth() != DefaultPipeDepth {
			t.Errorf("default PipeDepth = %d, want %d", dg.PipeDepth(), DefaultPipeDepth)
		}
		dg.SetPipeDepth(6)
		if dg.PipeDepth() != 6 {
			t.Errorf("PipeDepth = %d after SetPipeDepth(6)", dg.PipeDepth())
		}
		if ex := dg.AsyncExchanger(); ex.Depth() != 6 {
			t.Errorf("exchanger depth = %d, want 6", ex.Depth())
		}
		dg.SetPipeDepth(6) // same depth after construction: allowed
		mustPanic("SetPipeDepth after exchanger built", func() { dg.SetPipeDepth(4) })
	})
}

// TestDeepPipelineRoundsMatchSequential drives a depth-4 exchanger
// with four rounds permanently in flight and asserts every round's
// ghost values and folded tallies are bit-identical to the strictly
// alternating schedule — the depth-k generalization of
// TestPipelinedValueRoundsMatchSequential, exercising the modulo-depth
// arena cycling. It also checks the depth-k overflow guard: a fifth
// pending round must panic.
func TestDeepPipelineRoundsMatchSequential(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	const depth = 4
	const rounds = 13
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		dg.SetPipeDepth(depth)
		ex := dg.AsyncExchanger()
		bv := dg.BoundaryVertices()
		payloadFor := func(r int, v int32) int64 {
			return int64(r+1)*1_000_003 + int64(dg.L2G[v])
		}
		run := func(inFlight int) ([][]int64, []float64) {
			vals := make([][]int64, rounds)
			sums := make([]float64, rounds)
			payload := make([]int64, len(bv))
			tallies := make([][]int64, rounds)
			for r := range tallies {
				tallies[r] = []int64{int64(math.Float64bits(float64(c.Rank()+1) * float64(r+1) * 0.125))}
			}
			post := func(r int) {
				for i, v := range bv {
					payload[i] = payloadFor(r, v)
				}
				ex.BeginValues(bv, payload, tallies[r])
			}
			settle := func(r int) {
				outL, outP, tr := ex.FlushValues()
				dense := make([]int64, dg.NTotal())
				for i, lid := range outL {
					dense[lid] = outP[i]
				}
				vals[r] = dense
				sums[r] = tr.FoldFloat(0)
			}
			pending := 0
			for r := 0; r < rounds; r++ {
				post(r)
				pending++
				if pending == inFlight {
					settle(r - pending + 1)
					pending--
				}
			}
			for ; pending > 0; pending-- {
				settle(rounds - pending)
			}
			return vals, sums
		}
		seqVals, seqSums := run(1)
		ex.MaxDepth = 0
		deepVals, deepSums := run(depth)
		if ex.MaxDepth != depth {
			t.Errorf("rank %d: deep schedule reached depth %d, want %d", c.Rank(), ex.MaxDepth, depth)
		}
		for r := 0; r < rounds; r++ {
			if seqSums[r] != deepSums[r] {
				t.Errorf("rank %d round %d: folded tally %v (sequential) vs %v (depth %d)",
					c.Rank(), r, seqSums[r], deepSums[r], depth)
				return
			}
			for lid := range seqVals[r] {
				if seqVals[r][lid] != deepVals[r][lid] {
					t.Errorf("rank %d round %d: ghost value at lid %d diverges: %d vs %d",
						c.Rank(), r, lid, seqVals[r][lid], deepVals[r][lid])
					return
				}
			}
		}
		// Depth overflow: posting depth+1 rounds must panic before any
		// message leaves, so recovering locally keeps ranks consistent.
		for i := 0; i < depth; i++ {
			ex.BeginValues(nil, nil, nil)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: round %d posted past the configured depth", c.Rank(), depth+1)
				}
			}()
			ex.BeginValues(nil, nil, nil)
		}()
		for i := 0; i < depth; i++ {
			ex.FlushValues()
		}
	})
}

// The drainer must still ferry panics (here: mailbox poison after a
// sibling rank's crash) back through Flush with rounds pipelined.
func TestPipelinedDrainerFerriesPanics(t *testing.T) {
	g := gen.ER(200, 1000, 7)
	defer func() {
		if recover() == nil {
			t.Error("expected the injected rank panic to propagate")
		}
	}()
	mpi.Run(2, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 3})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		ex := dg.AsyncExchanger() //lint:ignore exlifecycle rank 1 panics by design and the poison tears the world down; closing during unwind would double-panic
		bv := dg.BoundaryVertices()
		payload := make([]int64, len(bv))
		if c.Rank() == 1 {
			// Crash before sending: rank 0's drainer blocks until the
			// poison wakes it.
			panic("injected failure")
		}
		ex.BeginValues(bv, payload, nil) //lint:ignore collectivesym rank 1 panics above by design; poison propagation is what this test checks
		ex.BeginValues(bv, payload, nil)
		time.Sleep(10 * time.Millisecond) // let the drainer park in Recv64
		ex.FlushValues()                  //lint:ignore collectivesym deliberate asymmetry: only rank 0 reaches the flush, which must re-raise the poison panic
		ex.FlushValues()
	})
}
