package dgraph

import (
	"repro/internal/mpi"
	"repro/internal/partition"
)

// EvaluateDistributed computes the paper's partition quality metrics
// collectively. parts must hold assignments for owned and ghost
// vertices (length NTotal) with ghost labels current, as maintained by
// the partitioner's exchange phases. Every rank returns the same
// Quality.
func EvaluateDistributed(g *Graph, parts []int32, p int) partition.Quality {
	// Local tallies over owned vertices. Cut arcs are observed twice
	// globally (once from each endpoint's owner); per-part incident
	// cuts are observed exactly once per (edge, incident part).
	local := make([]int64, 3*p+1) // [verts | degrees | partCut | cutArcs]
	verts := local[0:p]
	degs := local[p : 2*p]
	partCut := local[2*p : 3*p]
	for v := 0; v < g.NLocal; v++ {
		pv := parts[v]
		verts[pv]++
		degs[pv] += g.Degree(int32(v))
		for _, u := range g.Neighbors(int32(v)) {
			if parts[u] != pv {
				partCut[pv]++
				local[3*p]++
			}
		}
	}
	global := mpi.Allreduce(g.Comm, local, mpi.Sum)

	q := partition.Quality{
		NumParts:    p,
		PartVerts:   global[0:p],
		PartDegrees: global[p : 2*p],
		PartCut:     global[2*p : 3*p],
		CutEdges:    global[3*p] / 2,
	}
	m := g.MGlobal
	if m > 0 {
		q.EdgeCutRatio = float64(q.CutEdges) / float64(m)
	}
	var maxCut, sumCut, maxV, maxD, sumD int64
	for i := 0; i < p; i++ {
		if q.PartCut[i] > maxCut {
			maxCut = q.PartCut[i]
		}
		sumCut += q.PartCut[i]
		if q.PartVerts[i] > maxV {
			maxV = q.PartVerts[i]
		}
		if q.PartDegrees[i] > maxD {
			maxD = q.PartDegrees[i]
		}
		sumD += q.PartDegrees[i]
	}
	q.MaxPartCut = maxCut
	if m > 0 && p > 0 {
		q.ScaledMaxCutRatio = float64(maxCut) / (float64(m) / float64(p))
	}
	if sumCut > 0 {
		q.CutImbalance = float64(maxCut) / (float64(sumCut) / float64(p))
	}
	if g.NGlobal > 0 && p > 0 {
		q.VertexImbalance = float64(maxV) / (float64(g.NGlobal) / float64(p))
	}
	if sumD > 0 && p > 0 {
		q.EdgeImbalance = float64(maxD) / (float64(sumD) / float64(p))
	}
	return q
}
