package dgraph

import (
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
)

// pairSet collects (lid, payload) results order-insensitively.
func pairSet(lids []int32, vals []int64) [][2]int64 {
	out := make([][2]int64, len(lids))
	for i := range lids {
		out[i] = [2]int64{int64(lids[i]), vals[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// The generic value exchange must deliver exactly what the synchronous
// Alltoallv transport delivers, for both the owner → ghost direction
// (ExchangeInt64) and the ghost → owner direction (PushToOwners).
func TestValueFlowsMatchSyncTransport(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()

		// Owner → ghost: a sparse subset of owned vertices.
		var lids []int32
		base := make([]int64, dg.NTotal())
		for i := range base {
			base[i] = -7
		}
		for v := 0; v < dg.NLocal; v++ {
			if v%3 != 0 {
				lids = append(lids, int32(v))
				base[v] = dg.L2G[v] * 31 % 1000
			}
		}
		syncVals := append([]int64(nil), base...)
		dg.SetAsyncExchange(false)
		dg.ExchangeInt64(lids, syncVals)
		asyncVals := append([]int64(nil), base...)
		dg.SetAsyncExchange(true)
		dg.ExchangeInt64(lids, asyncVals)
		for i := range syncVals {
			if syncVals[i] != asyncVals[i] {
				t.Errorf("rank %d: ExchangeInt64 diverges at lid %d: sync %d async %d",
					c.Rank(), i, syncVals[i], asyncVals[i])
				return
			}
		}

		// Ghost → owner: a subset of ghosts with synthetic payloads.
		var ghosts []int32
		var payloads []int64
		for i := 0; i < dg.NGhost; i++ {
			if i%2 == 0 {
				lid := int32(dg.NLocal + i)
				ghosts = append(ghosts, lid)
				payloads = append(payloads, dg.L2G[lid]*13%997)
			}
		}
		dg.SetAsyncExchange(false)
		sL, sP := dg.PushToOwners(ghosts, payloads)
		dg.SetAsyncExchange(true)
		aL, aP := dg.PushToOwners(ghosts, payloads)
		sp, ap := pairSet(sL, sP), pairSet(aL, aP)
		if len(sp) != len(ap) {
			t.Errorf("rank %d: PushToOwners delivered %d pairs async, %d sync", c.Rank(), len(ap), len(sp))
			return
		}
		for i := range sp {
			if sp[i] != ap[i] {
				t.Errorf("rank %d: PushToOwners pair %d: sync %v async %v", c.Rank(), i, sp[i], ap[i])
				return
			}
		}
	})
}

// ExchangeFloat64 must ship float payloads bit-exactly through the
// delta transport.
func TestValueFlowFloat64BitExact(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(3, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 2})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		bv := dg.BoundaryVertices()
		mk := func() []float64 {
			vals := make([]float64, dg.NTotal())
			for v := 0; v < dg.NLocal; v++ {
				vals[v] = 1.0 / float64(dg.L2G[v]+3)
			}
			return vals
		}
		syncVals, asyncVals := mk(), mk()
		dg.SetAsyncExchange(false)
		dg.ExchangeFloat64(bv, syncVals)
		dg.SetAsyncExchange(true)
		dg.ExchangeFloat64(bv, asyncVals)
		for i := range syncVals {
			if syncVals[i] != asyncVals[i] {
				t.Errorf("rank %d: float payload diverges at lid %d: %v vs %v",
					c.Rank(), i, syncVals[i], asyncVals[i])
				return
			}
		}
	})
}

// Shipping the full boundary in lid order must trigger the dense
// encoding: one header plus one payload per shared-list entry, against
// the synchronous transport's two elements per (vertex, destination).
func TestValueFlowDenseEncodingVolume(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	mpi.Run(4, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		bv := dg.BoundaryVertices()
		vals := make([]int64, dg.NTotal())
		for v := range vals {
			vals[v] = int64(v)
		}

		dg.SetAsyncExchange(false)
		c.ResetStats()
		dg.ExchangeInt64(bv, vals)
		syncSent := c.Stats().ElemsSent

		dg.SetAsyncExchange(true)
		c.ResetStats()
		dg.ExchangeInt64(bv, vals)
		asyncSent := c.Stats().ElemsSent

		ex := dg.AsyncExchanger()
		var want int64
		for _, r := range ex.NeighborRanks() {
			want += 1 + int64(len(ex.SharedSendGIDs(int(r))))
		}
		if asyncSent != want {
			t.Errorf("rank %d: dense value flow sent %d elements, want %d", c.Rank(), asyncSent, want)
		}
		if asyncSent >= syncSent {
			t.Errorf("rank %d: async value flow sent %d, sync %d", c.Rank(), asyncSent, syncSent)
		}
	})
}

// FlushTally must hand back the element-wise sum of every neighbor's
// tally — on a complete rank neighborhood, the sum over all peers.
func TestFlushTallySumsNeighborTallies(t *testing.T) {
	g := gen.ER(300, 1500, 11)
	const ranks = 4
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), HashDist{P: c.Size(), Seed: 5})
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		defer dg.Close()
		ex := dg.AsyncExchanger()
		if got := len(ex.NeighborRanks()); got != ranks-1 {
			t.Errorf("rank %d: %d neighbors, want complete (%d)", c.Rank(), got, ranks-1)
			return
		}
		me := int64(c.Rank())
		ex.BeginTally(3)
		_, sum := ex.FlushTally(nil, []int64{me, me * 10, 1})
		wantAll := int64(ranks * (ranks - 1) / 2) // 0+1+2+3 minus me
		want := [3]int64{wantAll - me, (wantAll - me) * 10, ranks - 1}
		if sum[0] != want[0] || sum[1] != want[1] || sum[2] != want[2] {
			t.Errorf("rank %d: tally sum %v, want %v", c.Rank(), sum, want)
		}
	})
}
