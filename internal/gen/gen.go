// Package gen provides deterministic synthetic graph generators for all
// graph classes in the paper's evaluation (Table I and the Blue Waters
// scaling studies): R-MAT, Erdős–Rényi (RandER), the paper's
// high-diameter random construction (RandHD), regular 3D meshes
// (InternalMesh / nlpkkt stand-ins), Watts–Strogatz small-world rings,
// and Chung–Lu power-law graphs (social network / web crawl proxies).
//
// Every generator is seeded and organized in fixed-size blocks of
// independent PRNG streams. A block's contents depend only on
// (seed, block index), so the edge set is identical no matter how many
// ranks generate it or how blocks are assigned to ranks — distributed
// construction is reproducible and union-equivalent to serial
// construction by design.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// blockSize is the number of generation units (edges or vertices,
// depending on the generator family) per independent PRNG block.
const blockSize = 1 << 13

// Generator lazily produces a seeded synthetic graph. It can emit the
// whole edge list or a per-rank chunk for distributed construction.
type Generator struct {
	// Name identifies the generator instance in reports ("rmat_18").
	Name string
	// N is the vertex count.
	N int64
	// M is the exact number of generated (undirected) edges.
	M int64
	// blocks is the number of generation blocks covering M edges.
	blocks int64
	// genBlock appends block b's edges to out.
	genBlock func(b int64, out []graph.Edge) []graph.Edge
}

// NumBlocks returns the generator's block count (exported for tests).
func (g *Generator) NumBlocks() int64 { return g.blocks }

// EdgesChunk returns the edges of the blocks owned by rank out of
// nranks. Blocks are dealt in contiguous runs, so chunk sizes differ by
// at most one block. The union of all ranks' chunks equals Edges().
func (g *Generator) EdgesChunk(rank, nranks int) []graph.Edge {
	if nranks <= 0 || rank < 0 || rank >= nranks {
		panic(fmt.Sprintf("gen: bad chunk request rank=%d nranks=%d", rank, nranks))
	}
	lo := g.blocks * int64(rank) / int64(nranks)
	hi := g.blocks * int64(rank+1) / int64(nranks)
	est := (hi - lo) * blockSize
	if est > g.M {
		est = g.M
	}
	out := make([]graph.Edge, 0, est)
	for b := lo; b < hi; b++ {
		out = g.genBlock(b, out)
	}
	return out
}

// Edges returns the full edge list.
func (g *Generator) Edges() []graph.Edge {
	return g.EdgesChunk(0, 1)
}

// Build materializes the full undirected graph in shared memory.
func (g *Generator) Build() (*graph.Graph, error) {
	return graph.FromEdges(g.N, g.Edges())
}

// MustBuild is Build that panics on error, for examples and tests where
// generator parameters are static.
func (g *Generator) MustBuild() *graph.Graph {
	gr, err := g.Build()
	if err != nil {
		panic(err)
	}
	return gr
}

// numBlocksFor returns how many fixed-size blocks cover count units.
func numBlocksFor(count int64) int64 {
	if count <= 0 {
		return 0
	}
	return (count + blockSize - 1) / blockSize
}

// blockBounds returns the unit range [lo, hi) covered by block b.
func blockBounds(b, count int64) (lo, hi int64) {
	lo = b * blockSize
	hi = lo + blockSize
	if hi > count {
		hi = count
	}
	return lo, hi
}

// RMAT returns a recursive-matrix (R-MAT) generator with the Graph500
// parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05). n = 2^scale
// vertices and m = n * avgDeg / 2 edges, matching the paper's
// "rmat_<scale>" instances with davg 16.
func RMAT(scale int, avgDeg int64, seed uint64) *Generator {
	n := int64(1) << uint(scale)
	m := n * avgDeg / 2
	const a, b, c = 0.57, 0.19, 0.19
	gen := &Generator{
		Name:   fmt.Sprintf("rmat_%d", scale),
		N:      n,
		M:      m,
		blocks: numBlocksFor(m),
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, uint64(blk))
		lo, hi := blockBounds(blk, m)
		for i := lo; i < hi; i++ {
			var u, v int64
			for bit := 0; bit < scale; bit++ {
				p := r.Float64()
				switch {
				case p < a:
					// upper-left: no bits set
				case p < a+b:
					v |= 1 << uint(bit)
				case p < a+b+c:
					u |= 1 << uint(bit)
				default:
					u |= 1 << uint(bit)
					v |= 1 << uint(bit)
				}
			}
			out = append(out, graph.Edge{U: u, V: v})
		}
		return out
	}
	return gen
}

// ER returns an Erdős–Rényi G(n, m) generator (the paper's RandER):
// m edges with both endpoints uniform over [0, n).
func ER(n, m int64, seed uint64) *Generator {
	gen := &Generator{
		Name:   fmt.Sprintf("rander_n%d_m%d", n, m),
		N:      n,
		M:      m,
		blocks: numBlocksFor(m),
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, uint64(blk))
		lo, hi := blockBounds(blk, m)
		for i := lo; i < hi; i++ {
			out = append(out, graph.Edge{U: r.Int64n(n), V: r.Int64n(n)})
		}
		return out
	}
	return gen
}

// ERAvgDeg returns an Erdős–Rényi generator sized for average degree
// avgDeg: m = n * avgDeg / 2.
func ERAvgDeg(n, avgDeg int64, seed uint64) *Generator {
	return ER(n, n*avgDeg/2, seed)
}

// RandHD returns the paper's high-diameter random graph (§IV): for each
// vertex k, add davg/2 edges connecting it to vertices chosen uniformly
// from the window (k-davg, k+davg), giving average degree ≈ davg while
// preserving a long, narrow structure with high diameter. Window
// positions wrap modulo n so boundary vertices keep full degree.
func RandHD(n, davg int64, seed uint64) *Generator {
	perVertex := davg / 2
	if perVertex < 1 {
		perVertex = 1
	}
	m := n * perVertex
	gen := &Generator{
		Name:   fmt.Sprintf("randhd_n%d_d%d", n, davg),
		N:      n,
		M:      m,
		blocks: numBlocksFor(n), // vertex-indexed blocks
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, uint64(blk))
		lo, hi := blockBounds(blk, n)
		window := 2*davg - 1 // size of (k-davg, k+davg) excluding both ends
		if window < 1 {
			window = 1
		}
		for k := lo; k < hi; k++ {
			for j := int64(0); j < perVertex; j++ {
				off := r.Int64n(window) - (davg - 1) // in [-(davg-1), davg-1]
				t := ((k+off)%n + n) % n
				out = append(out, graph.Edge{U: k, V: t})
			}
		}
		return out
	}
	return gen
}

// Grid3D returns a regular nx×ny×nz mesh with a 7-point (6-neighbor)
// stencil, the stand-in for the paper's InternalMesh and nlpkkt regular
// graphs: low constant degree, tiny max degree, high diameter.
func Grid3D(nx, ny, nz int64) *Generator {
	n := nx * ny * nz
	// Forward edges only (each interior vertex emits +x, +y, +z).
	m := (nx-1)*ny*nz + nx*(ny-1)*nz + nx*ny*(nz-1)
	gen := &Generator{
		Name:   fmt.Sprintf("mesh_%dx%dx%d", nx, ny, nz),
		N:      n,
		M:      m,
		blocks: numBlocksFor(n),
	}
	idx := func(x, y, z int64) int64 { return (z*ny+y)*nx + x }
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		lo, hi := blockBounds(blk, n)
		for v := lo; v < hi; v++ {
			x := v % nx
			y := (v / nx) % ny
			z := v / (nx * ny)
			if x+1 < nx {
				out = append(out, graph.Edge{U: v, V: idx(x+1, y, z)})
			}
			if y+1 < ny {
				out = append(out, graph.Edge{U: v, V: idx(x, y+1, z)})
			}
			if z+1 < nz {
				out = append(out, graph.Edge{U: v, V: idx(x, y, z+1)})
			}
		}
		return out
	}
	return gen
}

// WattsStrogatz returns a small-world ring: each vertex connects to its
// k/2 clockwise neighbors, and each such edge's far endpoint is rewired
// to a uniform random vertex with probability beta.
func WattsStrogatz(n, k int64, beta float64, seed uint64) *Generator {
	half := k / 2
	if half < 1 {
		half = 1
	}
	m := n * half
	gen := &Generator{
		Name:   fmt.Sprintf("ws_n%d_k%d", n, k),
		N:      n,
		M:      m,
		blocks: numBlocksFor(n),
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, uint64(blk))
		lo, hi := blockBounds(blk, n)
		for v := lo; v < hi; v++ {
			for j := int64(1); j <= half; j++ {
				t := (v + j) % n
				if r.Float64() < beta {
					t = r.Int64n(n)
				}
				out = append(out, graph.Edge{U: v, V: t})
			}
		}
		return out
	}
	return gen
}

// ChungLu returns a power-law random graph: endpoint probabilities are
// proportional to weights w_i = (i+1)^(-1/(gamma-1)), producing degree
// distributions with exponent ≈ gamma. It is the proxy for the paper's
// online social networks (gamma ≈ 2.2, high skew) and web crawls
// (gamma ≈ 1.9–2.1 with very large hubs).
func ChungLu(n, m int64, gamma float64, seed uint64) *Generator {
	// Cumulative weight table for inverse-CDF endpoint sampling. The
	// table is rebuilt lazily per block, but it is shared: build once.
	cum := make([]float64, n+1)
	alpha := 1.0 / (gamma - 1.0)
	for i := int64(0); i < n; i++ {
		w := math.Pow(float64(i+1), -alpha)
		cum[i+1] = cum[i] + w
	}
	total := cum[n]
	sample := func(r *rng.Rand) int64 {
		x := r.Float64() * total
		// binary search for first cum[i+1] > x
		lo, hi := int64(0), n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	gen := &Generator{
		Name:   fmt.Sprintf("chunglu_n%d_m%d", n, m),
		N:      n,
		M:      m,
		blocks: numBlocksFor(m),
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, uint64(blk))
		lo, hi := blockBounds(blk, m)
		for i := lo; i < hi; i++ {
			out = append(out, graph.Edge{U: sample(r), V: sample(r)})
		}
		return out
	}
	return gen
}

// FromEdgeList wraps a static in-memory edge list as a Generator so it
// can flow through the same chunked distributed-construction path as
// the synthetic families. Chunks are contiguous block ranges of the
// list.
func FromEdgeList(name string, n int64, edges []graph.Edge) *Generator {
	m := int64(len(edges))
	gen := &Generator{
		Name:   name,
		N:      n,
		M:      m,
		blocks: numBlocksFor(m),
	}
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		lo, hi := blockBounds(blk, m)
		return append(out, edges[lo:hi]...)
	}
	return gen
}

// PrefAttach returns a Barabási–Albert-style preferential-attachment
// generator: vertices arrive in id order and each new vertex k ≥ m0
// attaches m0 edges to earlier vertices, choosing endpoints of earlier
// edges uniformly (which is attachment proportional to current
// degree). It produces power-law degrees with strong old-vertex hubs,
// complementing Chung–Lu as a social-network proxy. Generation is
// inherently sequential, so this family is emitted as a single block
// and is intended for shared-memory baselines and tests.
func PrefAttach(n, m0 int64, seed uint64) *Generator {
	if m0 < 1 {
		m0 = 1
	}
	gen := &Generator{
		Name:   fmt.Sprintf("ba_n%d_m%d", n, m0),
		N:      n,
		M:      0,
		blocks: 1,
	}
	var m int64
	if n > m0 {
		m = (n-m0)*m0 + (m0 - 1) // arrivals + seed path
	} else if n > 1 {
		m = n - 1
	}
	gen.M = m
	gen.genBlock = func(blk int64, out []graph.Edge) []graph.Edge {
		r := rng.NewStream(seed, 0)
		// endpoints records every edge endpoint; sampling from it is
		// degree-proportional attachment.
		endpoints := make([]int64, 0, 2*m)
		// Seed core: a path over the first m0 vertices keeps the graph
		// connected and puts every early vertex into the pool.
		seedTop := m0
		if n < seedTop {
			seedTop = n
		}
		for k := int64(1); k < seedTop; k++ {
			out = append(out, graph.Edge{U: k - 1, V: k})
			endpoints = append(endpoints, k-1, k)
		}
		for k := m0; k < n; k++ {
			for j := int64(0); j < m0; j++ {
				// Resample while the draw lands on k itself (its own
				// endpoints enter the pool as soon as its first edge is
				// placed); self loops would silently shrink M.
				var t int64 = k
				for t == k {
					if len(endpoints) == 0 {
						t = r.Int64n(k)
					} else {
						t = endpoints[r.Intn(len(endpoints))]
					}
				}
				out = append(out, graph.Edge{U: k, V: t})
				endpoints = append(endpoints, k, t)
			}
		}
		return out
	}
	return gen
}
