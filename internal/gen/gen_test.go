package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// edgeSet builds a multiset signature of an edge list for union checks.
func edgeSet(edges []graph.Edge) map[graph.Edge]int {
	m := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		m[e]++
	}
	return m
}

func generators() []*Generator {
	return []*Generator{
		RMAT(10, 8, 1),
		ER(1000, 4000, 2),
		RandHD(1000, 8, 3),
		Grid3D(8, 8, 8),
		WattsStrogatz(1000, 8, 0.1, 4),
		ChungLu(1000, 4000, 2.2, 5),
	}
}

func TestGeneratorsEdgeCountsMatchM(t *testing.T) {
	for _, g := range generators() {
		edges := g.Edges()
		if int64(len(edges)) != g.M {
			t.Errorf("%s: generated %d edges, declared M=%d", g.Name, len(edges), g.M)
		}
		for _, e := range edges {
			if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
				t.Errorf("%s: out-of-range edge %v (N=%d)", g.Name, e, g.N)
				break
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	mk := func() []*Generator { return generators() }
	a, b := mk(), mk()
	for i := range a {
		ea, eb := a[i].Edges(), b[i].Edges()
		if len(ea) != len(eb) {
			t.Fatalf("%s: nondeterministic edge count", a[i].Name)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s: edge %d differs: %v vs %v", a[i].Name, j, ea[j], eb[j])
			}
		}
	}
}

func TestChunkUnionEqualsSerial(t *testing.T) {
	for _, g := range generators() {
		full := edgeSet(g.Edges())
		for _, p := range []int{2, 3, 5} {
			union := make(map[graph.Edge]int)
			total := 0
			for r := 0; r < p; r++ {
				chunk := g.EdgesChunk(r, p)
				total += len(chunk)
				for _, e := range chunk {
					union[e]++
				}
			}
			if total != len(g.Edges()) {
				t.Errorf("%s p=%d: chunk total %d != serial %d", g.Name, p, total, len(g.Edges()))
				continue
			}
			for e, c := range full {
				if union[e] != c {
					t.Errorf("%s p=%d: edge %v count %d != %d", g.Name, p, e, union[e], c)
					break
				}
			}
		}
	}
}

func TestEdgesChunkValidation(t *testing.T) {
	g := ER(100, 100, 1)
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EdgesChunk(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			g.EdgesChunk(bad[0], bad[1])
		}()
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	g := RMAT(12, 16, 7).MustBuild()
	if g.N != 1<<12 {
		t.Fatalf("N = %d, want %d", g.N, 1<<12)
	}
	stats := g.ComputeStats(4, 1)
	// R-MAT must be heavily skewed: max degree far above average.
	if float64(stats.MaxDeg) < 8*stats.AvgDeg {
		t.Errorf("R-MAT not skewed: max=%d avg=%.1f", stats.MaxDeg, stats.AvgDeg)
	}
}

func TestERDegreesConcentrated(t *testing.T) {
	g := ERAvgDeg(4096, 16, 9).MustBuild()
	stats := g.ComputeStats(4, 1)
	if stats.AvgDeg < 14 || stats.AvgDeg > 18 {
		t.Errorf("ER avg degree %.1f, want ≈16", stats.AvgDeg)
	}
	// Poisson-like tail: max degree within a small factor of the mean.
	if float64(stats.MaxDeg) > 4*stats.AvgDeg {
		t.Errorf("ER too skewed: max=%d avg=%.1f", stats.MaxDeg, stats.AvgDeg)
	}
}

func TestRandHDHasHigherDiameterThanER(t *testing.T) {
	n := int64(4096)
	hd := RandHD(n, 8, 11).MustBuild()
	er := ERAvgDeg(n, 8, 11).MustBuild()
	dHD := hd.ApproxDiameter(6, 1)
	dER := er.ApproxDiameter(6, 1)
	if dHD <= 3*dER {
		t.Errorf("RandHD diameter %d not ≫ ER diameter %d", dHD, dER)
	}
}

func TestRandHDLocality(t *testing.T) {
	n, davg := int64(10000), int64(8)
	for _, e := range RandHD(n, davg, 13).Edges() {
		d := e.U - e.V
		if d < 0 {
			d = -d
		}
		if d > n/2 {
			d = n - d // wrapped distance
		}
		if d >= davg {
			t.Fatalf("RandHD edge %v spans distance %d >= davg %d", e, d, davg)
		}
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(4, 5, 6).MustBuild()
	if g.N != 120 {
		t.Fatalf("N = %d, want 120", g.N)
	}
	wantM := int64(3*5*6 + 4*4*6 + 4*5*5)
	if g.NumEdges() != wantM {
		t.Fatalf("M = %d, want %d", g.NumEdges(), wantM)
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("max degree = %d, want 6", g.MaxDegree())
	}
	// A mesh must be connected with diameter (nx-1)+(ny-1)+(nz-1).
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Fatalf("mesh has %d components", comps)
	}
	if d := g.ApproxDiameter(8, 1); d != 3+4+5 {
		t.Fatalf("mesh diameter estimate %d, want 12", d)
	}
}

func TestWattsStrogatzBetaZeroIsRing(t *testing.T) {
	g := WattsStrogatz(100, 4, 0, 1).MustBuild()
	for v := int64(0); v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("ring vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if d := g.ApproxDiameter(6, 1); d != 25 {
		t.Fatalf("ring lattice diameter %d, want 25", d)
	}
}

func TestWattsStrogatzRewireShrinksDiameter(t *testing.T) {
	ring := WattsStrogatz(2000, 4, 0, 2).MustBuild()
	sw := WattsStrogatz(2000, 4, 0.1, 2).MustBuild()
	dRing := ring.ApproxDiameter(5, 1)
	dSW := sw.ApproxDiameter(5, 1)
	if dSW*4 > dRing {
		t.Errorf("rewiring did not shrink diameter: ring=%d sw=%d", dRing, dSW)
	}
}

func TestChungLuSkew(t *testing.T) {
	g := ChungLu(4096, 32768, 2.2, 3).MustBuild()
	stats := g.ComputeStats(4, 1)
	if float64(stats.MaxDeg) < 10*stats.AvgDeg {
		t.Errorf("ChungLu not skewed: max=%d avg=%.1f", stats.MaxDeg, stats.AvgDeg)
	}
	// Low-id vertices carry the large weights.
	if g.Degree(0) < g.Degree(g.N-1) {
		t.Errorf("weight ordering violated: deg(0)=%d < deg(n-1)=%d", g.Degree(0), g.Degree(g.N-1))
	}
}

// Property: for arbitrary seeds and rank counts, chunk totals always
// cover M exactly (no lost or duplicated blocks).
func TestQuickChunkCoverage(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		g := ER(500, 3000, seed)
		total := 0
		for r := 0; r < p; r++ {
			total += len(g.EdgesChunk(r, p))
		}
		return int64(total) == g.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRMATScale16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RMAT(16, 16, 1).Edges()
	}
}

func BenchmarkERScale16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ERAvgDeg(1<<16, 16, 1).Edges()
	}
}

func TestPrefAttachStructure(t *testing.T) {
	g := PrefAttach(2000, 4, 9).MustBuild()
	if g.NumEdges() != (2000-4)*4+3 {
		t.Fatalf("M = %d", g.NumEdges())
	}
	stats := g.ComputeStats(4, 1)
	// BA graphs are connected with power-law hubs among early vertices.
	if stats.NumComps != 1 {
		t.Errorf("BA graph has %d components", stats.NumComps)
	}
	if float64(stats.MaxDeg) < 8*stats.AvgDeg {
		t.Errorf("BA not skewed: max=%d avg=%.1f", stats.MaxDeg, stats.AvgDeg)
	}
	// Hubs live among the oldest vertices.
	var oldMax, newMax int64
	for v := int64(0); v < 100; v++ {
		if d := g.Degree(v); d > oldMax {
			oldMax = d
		}
	}
	for v := g.N - 100; v < g.N; v++ {
		if d := g.Degree(v); d > newMax {
			newMax = d
		}
	}
	if oldMax <= newMax {
		t.Errorf("old vertices (max deg %d) not hubbier than new (%d)", oldMax, newMax)
	}
}

func TestFromEdgeListWrapsStaticEdges(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	g := FromEdgeList("static", 4, edges)
	if g.M != 3 || g.N != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
	got := g.Edges()
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	// Chunk union still covers everything.
	total := 0
	for r := 0; r < 3; r++ {
		total += len(g.EdgesChunk(r, 3))
	}
	if total != 3 {
		t.Fatalf("chunks cover %d edges", total)
	}
}
