// Package graph provides the shared-memory compressed-sparse-row graph
// representation used by the single-node baseline partitioners (PuLP,
// the multilevel METIS/KaHIP stand-ins) and by graph generators before
// distribution. Vertices are identified by int64 global ids in [0, N).
//
// Graphs are stored undirected by default: every edge {u, v} appears in
// both adjacency lists, matching the paper's treatment ("we treat all
// graph edges as undirected"). A directed view (separate out/in CSR) is
// available for the SCC analytic.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one endpoint pair. For undirected construction each input edge
// should appear once; the builder mirrors it.
type Edge struct {
	U, V int64
}

// Graph is an immutable CSR adjacency structure.
type Graph struct {
	// N is the number of vertices; valid ids are [0, N).
	N int64
	// Offsets has length N+1; the neighbors of v are
	// Adj[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Adj holds neighbor ids.
	Adj []int64
}

// NumEdges returns the number of undirected edges (half the stored
// directed arc count).
func (g *Graph) NumEdges() int64 {
	return int64(len(g.Adj)) / 2
}

// NumArcs returns the stored directed arc count, i.e. the sum of
// degrees. For undirected graphs this is 2|E|.
func (g *Graph) NumArcs() int64 {
	return int64(len(g.Adj))
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int64) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns the adjacency slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v int64) []int64 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// MaxDegree returns the maximum vertex degree, or 0 for empty graphs.
func (g *Graph) MaxDegree() int64 {
	var max int64
	for v := int64(0); v < g.N; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average degree (arcs per vertex).
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.N)
}

// FromEdges builds an undirected CSR graph on n vertices from an edge
// list. Each input edge {u, v} is mirrored into both adjacency lists.
// Self loops are kept as a single arc on their vertex. Duplicate edges
// are preserved (multigraph semantics), matching how raw crawls and
// generators emit edges; callers that need simple graphs should
// deduplicate first (see Simplify).
func FromEdges(n int64, edges []Edge) (*Graph, error) {
	deg := make([]int64, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			deg[e.U]++
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int64, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		if e.U != e.V {
			adj[cursor[e.V]] = e.U
			cursor[e.V]++
		}
	}
	return &Graph{N: n, Offsets: offsets, Adj: adj}, nil
}

// FromArcs builds a directed CSR graph on n vertices where each Edge is
// a directed arc U->V (no mirroring).
func FromArcs(n int64, arcs []Edge) (*Graph, error) {
	deg := make([]int64, n)
	for _, e := range arcs {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		deg[e.U]++
	}
	offsets := make([]int64, n+1)
	for v := int64(0); v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int64, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range arcs {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
	}
	return &Graph{N: n, Offsets: offsets, Adj: adj}, nil
}

// Simplify returns a copy of g with sorted adjacency lists, duplicate
// arcs removed, and self loops dropped.
func (g *Graph) Simplify() *Graph {
	offsets := make([]int64, g.N+1)
	adj := make([]int64, 0, len(g.Adj))
	buf := make([]int64, 0, 64)
	for v := int64(0); v < g.N; v++ {
		buf = buf[:0]
		buf = append(buf, g.Neighbors(v)...)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		var prev int64 = -1
		for _, u := range buf {
			if u == v || u == prev {
				continue
			}
			adj = append(adj, u)
			prev = u
		}
		offsets[v+1] = int64(len(adj))
	}
	return &Graph{N: g.N, Offsets: offsets, Adj: adj}
}

// Edges returns the undirected edge list (u <= v once per edge) of a
// graph whose arcs are symmetric. Self loops are emitted once.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.Adj)/2)
	for v := int64(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if v <= u {
				out = append(out, Edge{U: v, V: u})
			}
		}
	}
	return out
}

// Transpose returns the graph with all arcs reversed. For symmetric
// (undirected) graphs the transpose is isomorphic to the input.
func (g *Graph) Transpose() *Graph {
	deg := make([]int64, g.N)
	for _, u := range g.Adj {
		deg[u]++
	}
	offsets := make([]int64, g.N+1)
	for v := int64(0); v < g.N; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int64, len(g.Adj))
	cursor := make([]int64, g.N)
	copy(cursor, offsets[:g.N])
	for v := int64(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			adj[cursor[u]] = v
			cursor[u]++
		}
	}
	return &Graph{N: g.N, Offsets: offsets, Adj: adj}
}

// Validate checks CSR structural invariants and returns a descriptive
// error on the first violation.
func (g *Graph) Validate() error {
	if int64(len(g.Offsets)) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d != N+1 = %d", len(g.Offsets), g.N+1)
	}
	if g.N > 0 && g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := int64(0); v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.N >= 0 && int64(len(g.Adj)) != g.Offsets[g.N] {
		return fmt.Errorf("graph: adj length %d != offsets[N] = %d", len(g.Adj), g.Offsets[g.N])
	}
	for i, u := range g.Adj {
		if u < 0 || u >= g.N {
			return fmt.Errorf("graph: adj[%d] = %d out of range [0,%d)", i, u, g.N)
		}
	}
	return nil
}

// IsSymmetric reports whether every arc (u,v) has a matching arc (v,u),
// i.e. the graph is a valid undirected CSR.
func (g *Graph) IsSymmetric() bool {
	type arc struct{ u, v int64 }
	counts := make(map[arc]int64, len(g.Adj))
	for v := int64(0); v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			counts[arc{v, u}]++
		}
	}
	for a, c := range counts {
		if a.u == a.v {
			continue
		}
		if counts[arc{a.v, a.u}] != c {
			return false
		}
	}
	return true
}
