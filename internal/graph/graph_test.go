package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// path returns a path graph 0-1-2-...-n-1.
func path(n int64) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := int64(0); i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// cycle returns a cycle graph on n vertices.
func cycle(n int64) *Graph {
	edges := make([]Edge, 0, n)
	for i := int64(0); i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestFromEdgesBasics(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 5 || g.NumArcs() != 10 {
		t.Fatalf("N=%d M=%d arcs=%d", g.N, g.NumEdges(), g.NumArcs())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 2 || g.Degree(2) != 3 || g.Degree(3) != 2 {
		t.Fatalf("degrees: %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() {
		t.Fatal("undirected graph not symmetric")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(3, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestSelfLoopSingleArc(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 2 { // one loop arc + one edge arc
		t.Fatalf("Degree(0) = %d, want 2", g.Degree(0))
	}
	if g.NumArcs() != 3 {
		t.Fatalf("arcs = %d, want 3", g.NumArcs())
	}
}

func TestFromArcsDirected(t *testing.T) {
	g, err := FromArcs(3, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 4 {
		t.Fatalf("arcs = %d, want 4", g.NumArcs())
	}
	tr := g.Transpose()
	if tr.Degree(2) != 2 { // arcs 1->2 and 0->2 reversed
		t.Fatalf("transpose Degree(2) = %d, want 2", tr.Degree(2))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyRemovesDupsAndLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 1}, {1, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Simplify()
	if s.NumEdges() != 2 {
		t.Fatalf("simplified M = %d, want 2", s.NumEdges())
	}
	if s.Degree(1) != 2 {
		t.Fatalf("simplified Degree(1) = %d, want 2", s.Degree(1))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.IsSymmetric() {
		t.Fatal("simplified graph lost symmetry")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := cycle(10)
	edges := g.Edges()
	if len(edges) != 10 {
		t.Fatalf("Edges returned %d, want 10", len(edges))
	}
	g2, err := FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() {
		t.Fatalf("round-trip arcs %d != %d", g2.NumArcs(), g.NumArcs())
	}
}

func TestBFSPath(t *testing.T) {
	g := path(6)
	levels, ecc := g.BFS(0)
	if ecc != 5 {
		t.Fatalf("eccentricity = %d, want 5", ecc)
	}
	for v := int64(0); v < 6; v++ {
		if levels[v] != v {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, _ := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	levels, ecc := g.BFS(0)
	if ecc != 1 {
		t.Fatalf("eccentricity = %d, want 1", ecc)
	}
	if levels[2] != -1 || levels[3] != -1 {
		t.Fatalf("unreachable vertices got levels %d, %d", levels[2], levels[3])
	}
}

func TestApproxDiameterPath(t *testing.T) {
	g := path(50)
	// The far-level restart heuristic must find the true diameter of a
	// path within a few rounds regardless of the starting vertex.
	if d := g.ApproxDiameter(5, 7); d != 49 {
		t.Fatalf("ApproxDiameter = %d, want 49", d)
	}
}

func TestApproxDiameterNeverExceedsN(t *testing.T) {
	g := cycle(20)
	d := g.ApproxDiameter(10, 3)
	if d < 10 || d > 20 {
		t.Fatalf("cycle diameter estimate %d outside [10, 20]", d)
	}
}

func TestConnectedComponents(t *testing.T) {
	g, _ := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}, {5, 6}})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("vertices 0,1,2 in different components")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component structure wrong for {3,4}")
	}
}

func TestLargestComponent(t *testing.T) {
	g, _ := FromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {5, 6}})
	lc := g.LargestComponent()
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Fatalf("LargestComponent = %v", lc)
	}
}

func TestComputeStats(t *testing.T) {
	g := path(10)
	s := g.ComputeStats(5, 1)
	if s.N != 10 || s.M != 9 || s.MaxDeg != 2 || s.NumComps != 1 || s.LargestCC != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DiamEst != 9 {
		t.Fatalf("diameter estimate %d, want 9", s.DiamEst)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph degree stats nonzero")
	}
}

// randomEdges builds a deterministic random edge list for property tests.
func randomEdges(seed uint64, n int64, m int) []Edge {
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{U: r.Int64n(n), V: r.Int64n(n)}
	}
	return edges
}

// Property: CSR construction preserves arc count and validates, for
// arbitrary edge lists.
func TestQuickFromEdgesInvariants(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int64(nRaw%200) + 1
		m := int(mRaw % 500)
		edges := randomEdges(seed, n, m)
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		wantArcs := int64(0)
		for _, e := range edges {
			if e.U == e.V {
				wantArcs++
			} else {
				wantArcs += 2
			}
		}
		return g.NumArcs() == wantArcs && g.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution on arc multisets.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int64(nRaw%100) + 1
		m := int(mRaw % 300)
		g, err := FromArcs(n, randomEdges(seed, n, m))
		if err != nil {
			return false
		}
		tt := g.Transpose().Transpose()
		if tt.N != g.N || len(tt.Adj) != len(g.Adj) {
			return false
		}
		// Compare per-vertex sorted adjacency multisets via Simplify on
		// counts: cheap check via degree arrays and arc sums.
		for v := int64(0); v < n; v++ {
			if tt.Degree(v) != g.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS levels differ by at most 1 across any edge.
func TestQuickBFSLipschitz(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int64(nRaw%100) + 2
		g, err := FromEdges(n, randomEdges(seed, n, int(n*3)))
		if err != nil {
			return false
		}
		levels, _ := g.BFS(0)
		for v := int64(0); v < n; v++ {
			for _, u := range g.Neighbors(v) {
				lu, lv := levels[u], levels[v]
				if (lu < 0) != (lv < 0) {
					return false // reachable vertex adjacent to unreachable
				}
				if lu >= 0 && lv >= 0 && (lu-lv > 1 || lv-lu > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
