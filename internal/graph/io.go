package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// binaryMagic identifies the repository's binary edge-list format: a
// little-endian header (magic, version, n, m) followed by m (u, v)
// int64 pairs.
const (
	binaryMagic   = 0x584C5550 // "PULX"
	binaryVersion = 1
)

// WriteEdgeListText writes "u v" lines preceded by a "# n m" header
// comment. The format round-trips through ReadEdgeListText.
func WriteEdgeListText(w io.Writer, n int64, edges []Edge) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", n, len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListText parses the text edge-list format. Lines starting with
// '#' or '%' are comments; the first comment may carry "n m". If no
// header is present, n is inferred as max id + 1.
func ReadEdgeListText(r io.Reader) (n int64, edges []Edge, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n = -1
	var maxID int64 = -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			fields := strings.Fields(strings.TrimLeft(line, "#% "))
			if n < 0 && len(fields) >= 2 {
				hn, err1 := strconv.ParseInt(fields[0], 10, 64)
				_, err2 := strconv.ParseInt(fields[1], 10, 64)
				if err1 == nil && err2 == nil {
					n = hn
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("graph: bad vertex id %q: %w", fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("graph: bad vertex id %q: %w", fields[1], err)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return 0, nil, fmt.Errorf("graph: vertex id %d exceeds declared n %d", maxID, n)
	}
	return n, edges, nil
}

// WriteEdgeListBinary writes the binary edge-list format.
func WriteEdgeListBinary(w io.Writer, n int64, edges []Edge) error {
	bw := bufio.NewWriter(w)
	header := []int64{binaryMagic, binaryVersion, n, int64(len(edges))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 16)
	for _, e := range edges {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(e.U))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(e.V))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeListBinary parses the binary edge-list format.
func ReadEdgeListBinary(r io.Reader) (n int64, edges []Edge, err error) {
	br := bufio.NewReader(r)
	var header [4]int64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return 0, nil, fmt.Errorf("graph: short binary header: %w", err)
		}
	}
	if header[0] != binaryMagic {
		return 0, nil, fmt.Errorf("graph: bad magic %#x", header[0])
	}
	if header[1] != binaryVersion {
		return 0, nil, fmt.Errorf("graph: unsupported version %d", header[1])
	}
	n, m := header[2], header[3]
	if n < 0 || m < 0 {
		return 0, nil, fmt.Errorf("graph: negative header fields n=%d m=%d", n, m)
	}
	edges = make([]Edge, m)
	buf := make([]byte, 16)
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, nil, fmt.Errorf("graph: truncated edge data at %d/%d: %w", i, m, err)
		}
		edges[i].U = int64(binary.LittleEndian.Uint64(buf[0:8]))
		edges[i].V = int64(binary.LittleEndian.Uint64(buf[8:16]))
	}
	return n, edges, nil
}

// LoadFile reads a graph from path, dispatching on extension: ".bin"
// uses the binary format, anything else the text format. The edge list
// is interpreted as undirected.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var n int64
	var edges []Edge
	if strings.HasSuffix(path, ".bin") {
		n, edges, err = ReadEdgeListBinary(f)
	} else {
		n, edges, err = ReadEdgeListText(f)
	}
	if err != nil {
		return nil, fmt.Errorf("graph: loading %s: %w", path, err)
	}
	return FromEdges(n, edges)
}

// SaveFile writes a graph's undirected edge list to path, dispatching on
// extension like LoadFile.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges := g.Edges()
	if strings.HasSuffix(path, ".bin") {
		return WriteEdgeListBinary(f, g.N, edges)
	}
	return WriteEdgeListText(f, g.N, edges)
}
