package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 3}}
	var buf bytes.Buffer
	if err := WriteEdgeListText(&buf, 5, edges); err != nil {
		t.Fatal(err)
	}
	n, got, err := ReadEdgeListText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(got) != len(edges) {
		t.Fatalf("n=%d edges=%d, want 5, %d", n, len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
}

func TestTextInferNFromMaxID(t *testing.T) {
	in := "0 5\n2 3\n"
	n, edges, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || len(edges) != 2 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
}

func TestTextCommentsAndBlank(t *testing.T) {
	in := "# 4 2\n% ignored\n\n0 1\n2 3\n"
	n, edges, err := ReadEdgeListText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 2 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
}

func TestTextMalformed(t *testing.T) {
	cases := []string{"0\n", "a b\n", "1 x\n"}
	for _, in := range cases {
		if _, _, err := ReadEdgeListText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected parse error", in)
		}
	}
}

func TestTextHeaderTooSmall(t *testing.T) {
	in := "# 2 1\n0 5\n"
	if _, _, err := ReadEdgeListText(strings.NewReader(in)); err == nil {
		t.Fatal("expected error when id exceeds declared n")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1}, {100, 200}, {1 << 40, 2}}
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, 1<<41, edges); err != nil {
		t.Fatal(err)
	}
	n, got, err := ReadEdgeListBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1<<41 || len(got) != 3 {
		t.Fatalf("n=%d edges=%d", n, len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	buf := bytes.Repeat([]byte{0}, 32)
	if _, _, err := ReadEdgeListBinary(bytes.NewReader(buf)); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeListBinary(&buf, 4, []Edge{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-8]
	if _, _, err := ReadEdgeListBinary(bytes.NewReader(short)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSaveLoadFileTextAndBinary(t *testing.T) {
	dir := t.TempDir()
	g := cycle(8)
	for _, name := range []string{"g.txt", "g.bin"} {
		p := filepath.Join(dir, name)
		if err := SaveFile(p, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := LoadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.N != g.N || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("%s: round trip N=%d arcs=%d, want N=%d arcs=%d",
				name, g2.N, g2.NumArcs(), g.N, g.NumArcs())
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	_, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt"))
	if err == nil {
		t.Fatal("expected error for missing file")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("expected not-exist error, got %v", err)
	}
}
