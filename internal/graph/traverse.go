package graph

import "repro/internal/rng"

// BFS runs a breadth-first search from src and returns the level (hop
// distance) of every vertex, with -1 for unreachable vertices, together
// with the index of the last non-empty level (the eccentricity of src
// within its component).
func (g *Graph) BFS(src int64) (levels []int64, maxLevel int64) {
	levels = make([]int64, g.N)
	for i := range levels {
		levels[i] = -1
	}
	if g.N == 0 {
		return levels, 0
	}
	levels[src] = 0
	frontier := []int64{src}
	next := make([]int64, 0, len(frontier))
	var depth int64
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if levels[u] < 0 {
					levels[u] = depth + 1
					next = append(next, u)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier, next = next, frontier
	}
	return levels, depth
}

// ApproxDiameter estimates the graph diameter with the paper's method
// (§IV): iterate BFS rounds, each starting from a vertex randomly chosen
// from the farthest level of the previous search, and report the largest
// eccentricity observed. rounds is typically 10.
func (g *Graph) ApproxDiameter(rounds int, seed uint64) int64 {
	if g.N == 0 || rounds <= 0 {
		return 0
	}
	r := rng.New(seed)
	src := r.Int64n(g.N)
	var best int64
	for i := 0; i < rounds; i++ {
		levels, ecc := g.BFS(src)
		if ecc > best {
			best = ecc
		}
		// Collect the farthest level and pick the next source from it.
		var far []int64
		for v := int64(0); v < g.N; v++ {
			if levels[v] == ecc {
				far = append(far, v)
			}
		}
		if len(far) == 0 {
			break
		}
		src = far[r.Intn(len(far))]
	}
	return best
}

// ConnectedComponents labels every vertex with a component id (the
// smallest vertex id in its component) and returns the labels plus the
// component count. The graph must be symmetric.
func (g *Graph) ConnectedComponents() (labels []int64, count int64) {
	labels = make([]int64, g.N)
	for i := range labels {
		labels[i] = -1
	}
	stack := make([]int64, 0, 1024)
	for s := int64(0); s < g.N; s++ {
		if labels[s] >= 0 {
			continue
		}
		count++
		labels[s] = s
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] < 0 {
					labels[u] = s
					stack = append(stack, u)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertex ids of the largest connected
// component in increasing order.
func (g *Graph) LargestComponent() []int64 {
	labels, _ := g.ConnectedComponents()
	sizes := make(map[int64]int64)
	for _, l := range labels {
		sizes[l]++
	}
	var bestLabel, bestSize int64 = -1, 0
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < bestLabel) {
			bestLabel, bestSize = l, s
		}
	}
	out := make([]int64, 0, bestSize)
	for v := int64(0); v < g.N; v++ {
		if labels[v] == bestLabel {
			out = append(out, v)
		}
	}
	return out
}

// Stats summarizes a graph for Table I style reporting.
type Stats struct {
	N         int64
	M         int64 // undirected edge count
	AvgDeg    float64
	MaxDeg    int64
	DiamEst   int64
	NumComps  int64
	LargestCC int64
}

// ComputeStats gathers Table-I statistics (n, m, average and max degree,
// approximate diameter, component structure).
func (g *Graph) ComputeStats(diamRounds int, seed uint64) Stats {
	labels, comps := g.ConnectedComponents()
	sizes := make(map[int64]int64)
	for _, l := range labels {
		sizes[l]++
	}
	var largest int64
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	return Stats{
		N:         g.N,
		M:         g.NumEdges(),
		AvgDeg:    g.AvgDegree(),
		MaxDeg:    g.MaxDegree(),
		DiamEst:   g.ApproxDiameter(diamRounds, seed),
		NumComps:  comps,
		LargestCC: largest,
	}
}
