package harness

import (
	"fmt"

	"repro"
	"repro/internal/core"
)

// Ablation quantifies the design choices XtraPuLP introduces beyond
// prior work, over the representative small-world graphs:
//
//   - initialization strategy (the paper's hybrid BFS vs random vs
//     block, §III.B and §V.E);
//   - the dynamic multiplier schedule (default (1.0, 0.25) vs
//     disabled damping vs heavy damping, §III.C);
//   - the vertex distribution (random/hashed vs block, §III.A).
//
// Each row reports final quality and time so the contribution of each
// mechanism is visible in isolation.
//
//repro:deterministic
func Ablation(cfg Config) error {
	seed := cfg.seed()
	ranks := scalePick(cfg.Scale, 4, 8)
	parts := scalePick(cfg.Scale, 16, 64)
	graphs := representatives(cfg.Scale, seed)[:scalePick(cfg.Scale, 2, 6)]

	type variant struct {
		name string
		cfg  repro.Config
	}
	base := repro.Config{Parts: parts, Ranks: ranks, RandomDist: true, Seed: seed}
	variants := []variant{
		{"default (BFS init, X=1 Y=0.25, random dist)", base},
	}
	v := base
	v.Init = core.InitRandom
	variants = append(variants, variant{"init=random", v})
	v = base
	v.Init = core.InitBlock
	variants = append(variants, variant{"init=block", v})
	v = base
	v.OverrideXY = true // X = Y = 0: damping disabled
	variants = append(variants, variant{"multiplier off (X=Y=0)", v})
	v = base
	v.X, v.Y = 4, 4
	variants = append(variants, variant{"multiplier heavy (X=Y=4)", v})
	v = base
	v.RandomDist = false
	variants = append(variants, variant{"dist=block", v})

	t := newTable(cfg.W, "Graph", "Variant", "EdgeCut", "VertImb", "EdgeImb", "Time(s)")
	for _, tg := range graphs {
		for _, va := range variants {
			_, rep, err := repro.XtraPuLPGen(tg.gen, va.cfg)
			if err != nil {
				return fmt.Errorf("ablation: %s %s: %w", tg.name, va.name, err)
			}
			q := rep.Quality
			t.add(tg.name, va.name,
				fmt.Sprintf("%.3f", q.EdgeCutRatio),
				fmt.Sprintf("%.3f", q.VertexImbalance),
				fmt.Sprintf("%.3f", q.EdgeImbalance),
				secs(rep.TotalTime))
		}
	}
	t.flush()
	return nil
}
