package harness

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/spmv"
)

// Fig8 reproduces the analytics study: the six distributed analytics
// (HC, KC, LP, PR, SCC, WCC) on the WDC proxy, with the graph
// distributed by four strategies — EdgeBlock, Random, VertexBlock, and
// XtraPuLP (block-initialized, as the paper does for this experiment).
// For XtraPuLP the partitioning time itself is included as a column,
// matching the paper's end-to-end accounting.
//
//repro:deterministic
//repro:timing
func Fig8(cfg Config) error {
	seed := cfg.seed()
	n := scalePick(cfg.Scale, int64(1<<13), int64(1<<16))
	ranks := scalePick(cfg.Scale, 8, 16)
	hcSources := scalePick(cfg.Scale, 4, 16)
	g := gen.ChungLu(n, n*8, 2.1, seed)
	shared, err := g.Build()
	if err != nil {
		return fmt.Errorf("fig8: %w", err)
	}

	// Partitioning strategies mapping vertices to the `ranks` nodes.
	strategies := []struct {
		name  string
		parts []int32
	}{
		{"EdgeBlock", partition.EdgeBlock(shared, ranks)},
		{"Random", partition.Random(shared, ranks, seed)},
		{"VertexBlock", partition.VertexBlock(shared, ranks)},
	}
	xstart := time.Now()
	xparts, _, err := repro.XtraPuLPGen(g, repro.Config{
		Parts: ranks, Ranks: ranks, RandomDist: true, Seed: seed,
		Init: core.InitBlock, // block initialization, per §V.E
	})
	if err != nil {
		return fmt.Errorf("fig8: xtrapulp: %w", err)
	}
	xtime := time.Since(xstart)
	strategies = append(strategies, struct {
		name  string
		parts []int32
	}{"XtraPuLP", xparts})

	t := newTable(cfg.W, "Strategy", "HC(s)", "KC(s)", "LP(s)", "PR(s)", "SCC(s)", "WCC(s)", "Total(s)", "PartTime(s)")
	for _, st := range strategies {
		var results []analytics.Result
		mpi.Run(ranks, func(c *mpi.Comm) {
			dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
				dgraph.PartsDist{Parts: st.parts})
			if err != nil {
				panic(err)
			}
			res := analytics.RunAll(dg, hcSources)
			if c.Rank() == 0 {
				results = res
			}
		})
		var total time.Duration
		cells := []string{st.name}
		for _, r := range results {
			cells = append(cells, secs(r.Time))
			total += r.Time
		}
		ptime := "-"
		if st.name == "XtraPuLP" {
			ptime = secs(xtime)
			total += xtime
		}
		cells = append(cells, secs(total), ptime)
		t.add(cells...)
	}
	t.flush()
	return nil
}

// Table3 reproduces the SpMV study: time for repeated SpMV operations
// under 1D and 2D layouts derived from Block, Random, METIS-like, and
// XtraPuLP partitions, over representative graphs and rank counts,
// with the speedup of 2D-XtraPuLP over 1D-Random.
//
//repro:deterministic
func Table3(cfg Config) error {
	seed := cfg.seed()
	iters := scalePick(cfg.Scale, 20, 100)
	rankCounts := scalePick(cfg.Scale, []int{4, 8}, []int{16, 64})
	picks := map[string]bool{
		"lj-proxy": true, "orkut-proxy": true, "rmat-proxy": true, "nlpkkt-proxy": true,
	}
	t := newTable(cfg.W, "Graph", "Ranks", "Layout", "Partition", "Time(s)", "Volume")
	for _, tg := range corpus(cfg.Scale, seed) {
		if !picks[tg.name] {
			continue
		}
		g, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("table3: %s: %w", tg.name, err)
		}
		for _, ranks := range rankCounts {
			// Partitions with p = ranks.
			mopt := multilevel.MetisLike(ranks)
			mopt.Seed = seed
			mparts, _, err := multilevel.Partition(g, mopt)
			if err != nil {
				return fmt.Errorf("table3: %s metis: %w", tg.name, err)
			}
			xparts, _, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: ranks, Ranks: ranks, RandomDist: true, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("table3: %s xtrapulp: %w", tg.name, err)
			}
			partitions := []struct {
				name  string
				parts []int32
			}{
				{"Block", partition.VertexBlock(g, ranks)},
				{"Random", partition.Random(g, ranks, seed)},
				{"METIS-like", mparts},
				{"XtraPuLP", xparts},
			}
			var rand1D, x2D float64
			for _, layout := range []spmv.Layout{spmv.OneD, spmv.TwoD} {
				for _, pt := range partitions {
					var res spmv.Result
					var volume int64
					mpi.Run(ranks, func(c *mpi.Comm) {
						r, err := spmv.Run(c, g, pt.parts, spmv.Options{Layout: layout, Iterations: iters})
						if err != nil {
							panic(err)
						}
						v := mpi.AllreduceScalar(c, r.CommVolume, mpi.Sum)
						if c.Rank() == 0 {
							res, volume = r, v
						}
					})
					t.add(tg.name, fmt.Sprintf("%d", ranks), layout.String(), pt.name,
						secs(res.Time), fmt.Sprintf("%d", volume))
					if layout == spmv.OneD && pt.name == "Random" {
						rand1D = res.Time.Seconds()
					}
					if layout == spmv.TwoD && pt.name == "XtraPuLP" {
						x2D = res.Time.Seconds()
					}
				}
			}
			if x2D > 0 {
				t.add(tg.name, fmt.Sprintf("%d", ranks), "--", "2D-XtraPuLP vs 1D-Random",
					fmt.Sprintf("%.2fx", rand1D/x2D), "")
			}
		}
	}
	t.flush()
	return nil
}
