package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// exchangeDoc is the BENCH_exchange.json document shape — written by
// writeExchangeJSON and parsed back by ValidateExchangeJSON, one type
// so the two sides cannot drift apart.
type exchangeDoc struct {
	Experiment string `json:"experiment"`
	// Transport names the rank substrate the measurements ran over:
	// "proc" (the in-process goroutine world) or "socket" (OS processes
	// over the wire transport). Trajectory points from different
	// substrates are not comparable, so the artifact must say which one
	// it is.
	Transport string        `json:"transport"`
	Scale     string        `json:"scale"`
	Seed      uint64        `json:"seed"`
	PipeDepth int           `json:"pipeDepth"`
	Rows      []ExchangeRow `json:"rows"`
}

// ValidateExchangeJSON parses a BENCH_exchange.json artifact and
// checks the measurements CI depends on are actually present — the
// artifact is load-bearing for the benchmark trajectory, so a silently
// truncated or schema-drifted file must fail the build, not upload.
// Beyond well-formedness it requires, per path:
//
//   - a Transport naming a known rank substrate (proc or socket), so
//     trajectory points from different substrates are never mixed;
//   - a PipeDepth of at least 2 (the configured exchange-pipeline
//     depth the run was measured at);
//   - every row: a Threads count of at least 1 (the intra-rank thread
//     budget the row's sweeps ran with), so trajectory points at
//     different budgets are never silently mixed;
//   - partition rows: a Reductions count and an EdgeCut;
//   - analytics rows: SweepSeconds, Reductions and AllocsPerRound, the HC-wave
//     measurements (HCWaves, HCReductions, HCSecPerSource), and on
//     async rows a PipelineDepth no smaller than the configured depth
//     (the full pipeline must have been observed in flight during the
//     allocation measurement) plus HCWaves = PipeDepth/2;
//   - per graph, the async analytics row's HCReductions strictly below
//     the sync row's — the multi-wave engine must actually retire the
//     sequential loop's per-source Allreduces;
//   - spmv rows: SweepSeconds, a Reductions count (the SpMV-Allreduce
//     measurement), and on async rows the NormPiggyback flag.
//
// Proc artifacts must carry all three paths; socket artifacts
// (written by ExchangeSocket) are accepted with partition rows alone,
// since the socket harness measures only that path.
func ValidateExchangeJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchcheck: %w", err)
	}
	var doc exchangeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("benchcheck: %s: %w", path, err)
	}
	if doc.Experiment != "exchange" {
		return fmt.Errorf("benchcheck: %s: experiment %q, want \"exchange\"", path, doc.Experiment)
	}
	switch doc.Transport {
	case "proc", "socket":
	default:
		return fmt.Errorf("benchcheck: %s: transport %q, want \"proc\" or \"socket\"", path, doc.Transport)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("benchcheck: %s: no measurement rows", path)
	}
	if doc.PipeDepth < 2 {
		return fmt.Errorf("benchcheck: %s: pipeDepth %d, want >= 2", path, doc.PipeDepth)
	}
	wantWaves := int64(doc.PipeDepth / 2)
	paths := map[string]int{}
	syncHCRed := map[string]int64{}
	for i, r := range doc.Rows {
		where := fmt.Sprintf("%s: row %d (%s/%s/%s)", path, i, r.Path, r.Graph, r.Mode)
		paths[r.Path]++
		if r.Threads < 1 {
			return fmt.Errorf("benchcheck: %s: threads %d, want >= 1 (intra-rank sweep budget)", where, r.Threads)
		}
		switch r.Path {
		case "partition":
			if r.Reductions == nil || r.EdgeCut == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions or edgeCut", where)
			}
		case "analytics":
			if r.SweepSeconds == nil || *r.SweepSeconds < 0 {
				return fmt.Errorf("benchcheck: %s: missing or negative sweepSeconds", where)
			}
			if r.Reductions == nil || r.AllocsPerRound == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions or allocsPerRound", where)
			}
			if r.HCWaves == nil || r.HCReductions == nil || r.HCSecPerSource == nil {
				return fmt.Errorf("benchcheck: %s: missing hcWaves, hcReductions, or hcSecPerSource", where)
			}
			if r.Mode == "async-delta" {
				if r.PipelineDepth == nil {
					return fmt.Errorf("benchcheck: %s: missing pipelineDepth", where)
				}
				if *r.PipelineDepth < int64(doc.PipeDepth) {
					return fmt.Errorf("benchcheck: %s: pipelineDepth %d, want >= %d (full pipeline never in flight)",
						where, *r.PipelineDepth, doc.PipeDepth)
				}
				if *r.HCWaves != wantWaves {
					return fmt.Errorf("benchcheck: %s: hcWaves %d, want %d (= pipeDepth/2)",
						where, *r.HCWaves, wantWaves)
				}
				// The sync row for a graph always precedes its async
				// row; the wave engine must beat the sequential loop's
				// Allreduce count (it retires per-source eccentricity
				// and per-round termination reductions). A missing
				// baseline is itself an error — otherwise a reordered
				// or truncated artifact would skip the comparison and
				// upload a regression as valid.
				syncRed, ok := syncHCRed[r.Graph]
				if !ok {
					return fmt.Errorf("benchcheck: %s: no preceding sync analytics row for graph %q (hcReductions baseline missing)",
						where, r.Graph)
				}
				if *r.HCReductions >= syncRed {
					return fmt.Errorf("benchcheck: %s: hcReductions %d not below sync row's %d",
						where, *r.HCReductions, syncRed)
				}
			} else {
				syncHCRed[r.Graph] = *r.HCReductions
			}
		case "spmv":
			if r.SweepSeconds == nil || *r.SweepSeconds < 0 {
				return fmt.Errorf("benchcheck: %s: missing or negative sweepSeconds", where)
			}
			if r.Reductions == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions (SpMV-Allreduce measurement)", where)
			}
			if r.Mode == "async-delta" && r.NormPiggyback == nil {
				return fmt.Errorf("benchcheck: %s: missing normPiggyback", where)
			}
		default:
			return fmt.Errorf("benchcheck: %s: unknown path %q", where, r.Path)
		}
	}
	// The proc harness measures all three paths in one run; the socket
	// harness (ExchangeSocket) measures the partitioning path only —
	// analytics and SpMV drive in-process worlds per measurement — so
	// a socket artifact is complete with partition rows alone. Rows it
	// does carry from other paths are still held to their field rules
	// above.
	required := []string{"partition", "analytics", "spmv"}
	if doc.Transport == "socket" {
		required = []string{"partition"}
	}
	for _, want := range required {
		if paths[want] == 0 {
			return fmt.Errorf("benchcheck: %s: no %s rows", path, want)
		}
	}
	return nil
}
