package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// exchangeDoc mirrors writeExchangeJSON's document shape for
// validation.
type exchangeDoc struct {
	Experiment string        `json:"experiment"`
	Scale      string        `json:"scale"`
	Seed       uint64        `json:"seed"`
	Rows       []ExchangeRow `json:"rows"`
}

// ValidateExchangeJSON parses a BENCH_exchange.json artifact and
// checks the measurements CI depends on are actually present — the
// artifact is load-bearing for the benchmark trajectory, so a silently
// truncated or schema-drifted file must fail the build, not upload.
// Beyond well-formedness it requires, per path:
//
//   - partition rows: a Reductions count and an EdgeCut;
//   - analytics rows: Reductions and AllocsPerRound, and on async rows
//     a PipelineDepth of at least 2 (the depth-2 pipeline must have
//     been observed in flight during the allocation measurement);
//   - spmv rows: a Reductions count (the SpMV-Allreduce measurement),
//     and on async rows the NormPiggyback flag.
func ValidateExchangeJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchcheck: %w", err)
	}
	var doc exchangeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("benchcheck: %s: %w", path, err)
	}
	if doc.Experiment != "exchange" {
		return fmt.Errorf("benchcheck: %s: experiment %q, want \"exchange\"", path, doc.Experiment)
	}
	if len(doc.Rows) == 0 {
		return fmt.Errorf("benchcheck: %s: no measurement rows", path)
	}
	paths := map[string]int{}
	for i, r := range doc.Rows {
		where := fmt.Sprintf("%s: row %d (%s/%s/%s)", path, i, r.Path, r.Graph, r.Mode)
		paths[r.Path]++
		switch r.Path {
		case "partition":
			if r.Reductions == nil || r.EdgeCut == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions or edgeCut", where)
			}
		case "analytics":
			if r.Reductions == nil || r.AllocsPerRound == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions or allocsPerRound", where)
			}
			if r.Mode == "async-delta" {
				if r.PipelineDepth == nil {
					return fmt.Errorf("benchcheck: %s: missing pipelineDepth", where)
				}
				if *r.PipelineDepth < 2 {
					return fmt.Errorf("benchcheck: %s: pipelineDepth %d, want >= 2 (second round never in flight)",
						where, *r.PipelineDepth)
				}
			}
		case "spmv":
			if r.Reductions == nil {
				return fmt.Errorf("benchcheck: %s: missing reductions (SpMV-Allreduce measurement)", where)
			}
			if r.Mode == "async-delta" && r.NormPiggyback == nil {
				return fmt.Errorf("benchcheck: %s: missing normPiggyback", where)
			}
		default:
			return fmt.Errorf("benchcheck: %s: unknown path %q", where, r.Path)
		}
	}
	for _, want := range []string{"partition", "analytics", "spmv"} {
		if paths[want] == 0 {
			return fmt.Errorf("benchcheck: %s: no %s rows", path, want)
		}
	}
	return nil
}
