package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The exchange experiment's JSON artifact must round-trip through the
// schema validator: this is the end-to-end guarantee behind CI's
// benchcheck gate (generate → validate → upload).
func TestExchangeJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("exchange is a heavy reproduction; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_exchange.json")
	var buf bytes.Buffer
	if err := Exchange(Config{W: &buf, Scale: Small, Seed: 1, JSONPath: path}); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if err := ValidateExchangeJSON(path); err != nil {
		t.Fatalf("generated artifact fails its own schema: %v", err)
	}
}

// Corrupted or incomplete artifacts must be rejected with a message
// naming the problem.
func TestExchangeJSONSchemaRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, want string
	}{
		{"truncated.json", `{"experiment":"exchange","rows":[{"path":"partition"`, "unexpected end"},
		{"wrongexp.json", `{"experiment":"table2","rows":[{"path":"spmv"}]}`, `want "exchange"`},
		{"notransport.json", `{"experiment":"exchange","rows":[{"path":"spmv"}]}`, `transport ""`},
		{"badtransport.json", `{"experiment":"exchange","transport":"carrier-pigeon","rows":[{"path":"spmv"}]}`,
			`transport "carrier-pigeon"`},
		{"norows.json", `{"experiment":"exchange","transport":"proc","rows":[]}`, "no measurement rows"},
		{"nodepth.json", `{"experiment":"exchange","transport":"proc","rows":[{"path":"spmv","mode":"sync"}]}`, "pipeDepth 0"},
		{"spmvnored.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"spmv","mode":"sync"}]}`, "missing reductions"},
		{"shallowpipe.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"analytics","mode":"async-delta",` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":1,"hcWaves":1,"hcReductions":0,"hcSecPerSource":0.1}]}`, "pipelineDepth 1"},
		{"nohc.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"analytics","mode":"sync",` +
			`"reductions":1,"allocsPerRound":0}]}`, "missing hcWaves"},
		{"wrongwaves.json", `{"experiment":"exchange","transport":"proc","pipeDepth":8,"rows":[{"path":"analytics","mode":"async-delta",` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":8,"hcWaves":2,"hcReductions":0,"hcSecPerSource":0.1}]}`, "hcWaves 2, want 4"},
		{"nosyncbaseline.json", `{"experiment":"exchange","transport":"proc","pipeDepth":4,"rows":[{"path":"analytics","graph":"g","mode":"async-delta",` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":4,"hcWaves":2,"hcReductions":0,"hcSecPerSource":0.1}]}`,
			"no preceding sync analytics row"},
		{"hcnotfewer.json", `{"experiment":"exchange","transport":"proc","pipeDepth":4,"rows":[` +
			`{"path":"analytics","graph":"g","mode":"sync","reductions":1,"allocsPerRound":0,"hcWaves":1,"hcReductions":5,"hcSecPerSource":0.1},` +
			`{"path":"analytics","graph":"g","mode":"async-delta","reductions":1,"allocsPerRound":0,"pipelineDepth":4,"hcWaves":2,"hcReductions":5,"hcSecPerSource":0.1}]}`,
			"hcReductions 5 not below sync row's 5"},
	}
	for _, tc := range cases {
		err := ValidateExchangeJSON(write(tc.name, tc.content))
		if err == nil {
			t.Errorf("%s: validator accepted a broken artifact", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// writeExchangeJSON must surface write/close failures instead of
// leaving a truncated artifact behind as a success: pointing it at a
// directory makes Create fail; a missing parent makes it fail too.
func TestWriteExchangeJSONPropagatesErrors(t *testing.T) {
	cfg := Config{JSONPath: t.TempDir()} // a directory: Create must fail
	if err := writeExchangeJSON(cfg, []ExchangeRow{{Path: "spmv"}}); err == nil {
		t.Error("expected error writing JSON to a directory path")
	}
	cfg.JSONPath = filepath.Join(t.TempDir(), "missing", "out.json")
	if err := writeExchangeJSON(cfg, []ExchangeRow{{Path: "spmv"}}); err == nil {
		t.Error("expected error writing JSON under a missing directory")
	}
}
