package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mpi"
)

// The exchange experiment's JSON artifact must round-trip through the
// schema validator: this is the end-to-end guarantee behind CI's
// benchcheck gate (generate → validate → upload).
func TestExchangeJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("exchange is a heavy reproduction; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_exchange.json")
	var buf bytes.Buffer
	if err := Exchange(Config{W: &buf, Scale: Small, Seed: 1, JSONPath: path}); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if err := ValidateExchangeJSON(path); err != nil {
		t.Fatalf("generated artifact fails its own schema: %v", err)
	}
}

// ExchangeSocket's artifact must validate as a partition-only socket
// document. The function is collective over any communicator, so the
// in-process world drives it here; the real socket world is exercised
// by cmd/reprorun's tests and CI's reprorun-launched bench run.
func TestExchangeSocketJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full partition-path comparison; skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_exchange_socket.json")
	var buf bytes.Buffer
	var runErr error
	mpi.Run(4, func(c *mpi.Comm) {
		err := ExchangeSocket(c, Config{W: &buf, Scale: Small, Seed: 1, JSONPath: path})
		if c.Rank() == 0 {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatalf("exchange socket: %v", runErr)
	}
	if err := ValidateExchangeJSON(path); err != nil {
		t.Fatalf("generated socket artifact fails its own schema: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"transport": "socket"`) {
		t.Fatalf("artifact not stamped with the socket substrate:\n%s", raw)
	}
	if strings.Contains(string(raw), `"path": "analytics"`) || strings.Contains(string(raw), `"path": "spmv"`) {
		t.Fatalf("socket artifact carries paths the socket harness cannot measure:\n%s", raw)
	}
}

// Corrupted or incomplete artifacts must be rejected with a message
// naming the problem.
func TestExchangeJSONSchemaRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, want string
	}{
		{"truncated.json", `{"experiment":"exchange","rows":[{"path":"partition"`, "unexpected end"},
		{"wrongexp.json", `{"experiment":"table2","rows":[{"path":"spmv"}]}`, `want "exchange"`},
		{"notransport.json", `{"experiment":"exchange","rows":[{"path":"spmv"}]}`, `transport ""`},
		{"badtransport.json", `{"experiment":"exchange","transport":"carrier-pigeon","rows":[{"path":"spmv"}]}`,
			`transport "carrier-pigeon"`},
		{"norows.json", `{"experiment":"exchange","transport":"proc","rows":[]}`, "no measurement rows"},
		{"procpartonly.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[` +
			`{"path":"partition","graph":"g","mode":"sync","threads":1,"reductions":1,"edgeCut":0.5}]}`, "no analytics rows"},
		{"socketnopart.json", `{"experiment":"exchange","transport":"socket","pipeDepth":2,"rows":[` +
			`{"path":"spmv","mode":"sync","threads":1,"sweepSeconds":0.1,"reductions":1}]}`, "no partition rows"},
		{"socketbadpart.json", `{"experiment":"exchange","transport":"socket","pipeDepth":2,"rows":[` +
			`{"path":"partition","graph":"g","mode":"sync","threads":1}]}`, "missing reductions or edgeCut"},
		{"nodepth.json", `{"experiment":"exchange","transport":"proc","rows":[{"path":"spmv","mode":"sync"}]}`, "pipeDepth 0"},
		{"nothreads.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[` +
			`{"path":"partition","graph":"g","mode":"sync","reductions":1,"edgeCut":0.5}]}`, "threads 0"},
		{"spmvnored.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[` +
			`{"path":"spmv","mode":"sync","threads":1,"sweepSeconds":0.1}]}`, "missing reductions"},
		{"spmvnosweep.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[` +
			`{"path":"spmv","mode":"sync","threads":1,"reductions":1}]}`, "sweepSeconds"},
		{"nosweep.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"analytics","mode":"sync","threads":4,` +
			`"reductions":1,"allocsPerRound":0,"hcWaves":1,"hcReductions":5,"hcSecPerSource":0.1}]}`, "sweepSeconds"},
		{"shallowpipe.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"analytics","mode":"async-delta","threads":1,"sweepSeconds":0.1,` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":1,"hcWaves":1,"hcReductions":0,"hcSecPerSource":0.1}]}`, "pipelineDepth 1"},
		{"nohc.json", `{"experiment":"exchange","transport":"proc","pipeDepth":2,"rows":[{"path":"analytics","mode":"sync","threads":1,"sweepSeconds":0.1,` +
			`"reductions":1,"allocsPerRound":0}]}`, "missing hcWaves"},
		{"wrongwaves.json", `{"experiment":"exchange","transport":"proc","pipeDepth":8,"rows":[{"path":"analytics","mode":"async-delta","threads":1,"sweepSeconds":0.1,` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":8,"hcWaves":2,"hcReductions":0,"hcSecPerSource":0.1}]}`, "hcWaves 2, want 4"},
		{"nosyncbaseline.json", `{"experiment":"exchange","transport":"proc","pipeDepth":4,"rows":[{"path":"analytics","graph":"g","mode":"async-delta","threads":1,"sweepSeconds":0.1,` +
			`"reductions":1,"allocsPerRound":0,"pipelineDepth":4,"hcWaves":2,"hcReductions":0,"hcSecPerSource":0.1}]}`,
			"no preceding sync analytics row"},
		{"hcnotfewer.json", `{"experiment":"exchange","transport":"proc","pipeDepth":4,"rows":[` +
			`{"path":"analytics","graph":"g","mode":"sync","threads":1,"sweepSeconds":0.1,"reductions":1,"allocsPerRound":0,"hcWaves":1,"hcReductions":5,"hcSecPerSource":0.1},` +
			`{"path":"analytics","graph":"g","mode":"async-delta","threads":1,"sweepSeconds":0.1,"reductions":1,"allocsPerRound":0,"pipelineDepth":4,"hcWaves":2,"hcReductions":5,"hcSecPerSource":0.1}]}`,
			"hcReductions 5 not below sync row's 5"},
	}
	for _, tc := range cases {
		err := ValidateExchangeJSON(write(tc.name, tc.content))
		if err == nil {
			t.Errorf("%s: validator accepted a broken artifact", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The socket harness's partition-only shape is the one relaxation:
	// the same rows that fail a proc artifact above must validate when
	// stamped with the socket substrate.
	socketOK := write("socketpartonly.json", `{"experiment":"exchange","transport":"socket","pipeDepth":2,"rows":[`+
		`{"path":"partition","graph":"g","mode":"sync","threads":1,"reductions":1,"edgeCut":0.5},`+
		`{"path":"partition","graph":"g","mode":"async-delta","threads":1,"reductions":1,"edgeCut":0.5}]}`)
	if err := ValidateExchangeJSON(socketOK); err != nil {
		t.Errorf("partition-only socket artifact rejected: %v", err)
	}
}

// writeExchangeJSON must surface write/close failures instead of
// leaving a truncated artifact behind as a success: pointing it at a
// directory makes Create fail; a missing parent makes it fail too.
func TestWriteExchangeJSONPropagatesErrors(t *testing.T) {
	cfg := Config{JSONPath: t.TempDir()} // a directory: Create must fail
	if err := writeExchangeJSON(cfg, []ExchangeRow{{Path: "spmv"}}); err == nil {
		t.Error("expected error writing JSON to a directory path")
	}
	cfg.JSONPath = filepath.Join(t.TempDir(), "missing", "out.json")
	if err := writeExchangeJSON(cfg, []ExchangeRow{{Path: "spmv"}}); err == nil {
		t.Error("expected error writing JSON under a missing directory")
	}
}
