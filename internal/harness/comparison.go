package harness

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/multilevel"
	"repro/internal/partition"
	"repro/internal/pulp"
)

// Table2 reproduces the Cluster-1 comparison: partitioning time for
// multi-rank XtraPuLP, single-node PuLP, and the METIS-like multilevel
// baseline computing 16 parts over all four graph classes, with
// XtraPuLP's speedup relative to PuLP.
//
//repro:deterministic
//repro:timing
func Table2(cfg Config) error {
	seed := cfg.seed()
	const parts = 16
	ranks := scalePick(cfg.Scale, 8, 16)
	t := newTable(cfg.W, "Graph", "Class", "XtraPuLP(s)", "PuLP(s)", "METIS-like(s)", "vs PuLP", "ExchElems")
	for _, tg := range corpus(cfg.Scale, seed) {
		g, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("table2: %s: %w", tg.name, err)
		}
		_, xrep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
			Parts: parts, Ranks: ranks, RandomDist: true, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("table2: %s xtrapulp: %w", tg.name, err)
		}
		popt := pulp.DefaultOptions(parts)
		popt.Seed = seed
		pStart := time.Now()
		if _, _, err := pulp.Partition(g, popt); err != nil {
			return fmt.Errorf("table2: %s pulp: %w", tg.name, err)
		}
		pTime := time.Since(pStart)
		mopt := multilevel.MetisLike(parts)
		mopt.Seed = seed
		mStart := time.Now()
		if _, _, err := multilevel.Partition(g, mopt); err != nil {
			return fmt.Errorf("table2: %s metis: %w", tg.name, err)
		}
		mTime := time.Since(mStart)
		t.add(tg.name, tg.class, secs(xrep.TotalTime), secs(pTime), secs(mTime),
			fmt.Sprintf("%.2fx", pTime.Seconds()/xrep.TotalTime.Seconds()),
			fmt.Sprintf("%d", xrep.ExchangeVolume))
	}
	t.flush()
	return nil
}

// Fig3 reproduces the Cluster-1 relative speedup study: XtraPuLP
// speedup versus its own single-rank time while ranks grow, for the
// six representative graphs.
//
//repro:deterministic
func Fig3(cfg Config) error {
	seed := cfg.seed()
	const parts = 16
	ranks := scalePick(cfg.Scale, []int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16})
	t := newTable(cfg.W, "Graph", "Ranks", "Time(s)", "Speedup")
	for _, tg := range representatives(cfg.Scale, seed) {
		var base time.Duration
		for _, r := range ranks {
			_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: parts, Ranks: r, RandomDist: true, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("fig3: %s r=%d: %w", tg.name, r, err)
			}
			if r == 1 {
				base = rep.TotalTime
			}
			t.add(tg.name, fmt.Sprintf("%d", r), secs(rep.TotalTime),
				fmt.Sprintf("%.2fx", base.Seconds()/rep.TotalTime.Seconds()))
		}
	}
	t.flush()
	return nil
}

// Fig4 reproduces the quality-versus-parts study: edge cut ratio and
// scaled max per-part cut for XtraPuLP, PuLP, and the METIS-like
// baseline while the part count doubles from 2 to 64 (paper: 256) over
// the six representative graphs.
//
//repro:deterministic
func Fig4(cfg Config) error {
	seed := cfg.seed()
	partCounts := scalePick(cfg.Scale, []int{2, 4, 8, 16, 32}, []int{2, 4, 8, 16, 32, 64, 128, 256})
	ranks := scalePick(cfg.Scale, 4, 8)
	t := newTable(cfg.W, "Graph", "Parts", "Partitioner", "EdgeCut", "ScaledMaxCut", "VertImb")
	for _, tg := range representatives(cfg.Scale, seed) {
		g, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("fig4: %s: %w", tg.name, err)
		}
		for _, p := range partCounts {
			xparts, _, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: p, Ranks: ranks, RandomDist: true, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("fig4: %s p=%d xtrapulp: %w", tg.name, p, err)
			}
			popt := pulp.DefaultOptions(p)
			popt.Seed = seed
			pparts, _, err := pulp.Partition(g, popt)
			if err != nil {
				return fmt.Errorf("fig4: %s p=%d pulp: %w", tg.name, p, err)
			}
			mopt := multilevel.MetisLike(p)
			mopt.Seed = seed
			mparts, _, err := multilevel.Partition(g, mopt)
			if err != nil {
				return fmt.Errorf("fig4: %s p=%d metis: %w", tg.name, p, err)
			}
			for _, row := range []struct {
				who   string
				parts []int32
			}{{"XtraPuLP", xparts}, {"PuLP", pparts}, {"METIS-like", mparts}} {
				q := partition.Evaluate(g, row.parts, p)
				t.add(tg.name, fmt.Sprintf("%d", p), row.who,
					fmt.Sprintf("%.3f", q.EdgeCutRatio),
					fmt.Sprintf("%.3f", q.ScaledMaxCutRatio),
					fmt.Sprintf("%.3f", q.VertexImbalance))
			}
		}
	}
	t.flush()
	return nil
}

// Fig5 reproduces the quality-versus-ranks study on the WDC proxy:
// edge cut ratio, scaled max cut ratio, and edge imbalance of a fixed
// part count while the rank count grows.
//
//repro:deterministic
func Fig5(cfg Config) error {
	seed := cfg.seed()
	parts := scalePick(cfg.Scale, 16, 64)
	ranks := scalePick(cfg.Scale, []int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16})
	tg := corpus(cfg.Scale, seed)[3] // wdc-proxy
	t := newTable(cfg.W, "Ranks", "EdgeCut", "ScaledMaxCut", "EdgeImb", "VertImb")
	for _, r := range ranks {
		_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
			Parts: parts, Ranks: r, RandomDist: true, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("fig5: ranks=%d: %w", r, err)
		}
		q := rep.Quality
		t.add(fmt.Sprintf("%d", r),
			fmt.Sprintf("%.4f", q.EdgeCutRatio),
			fmt.Sprintf("%.3f", q.ScaledMaxCutRatio),
			fmt.Sprintf("%.3f", q.EdgeImbalance),
			fmt.Sprintf("%.3f", q.VertexImbalance))
	}
	t.flush()
	return nil
}

// Fig6 reproduces the single-constraint single-objective comparison
// against the KaHIP-like partitioner (§V.C): edge cut and execution
// time for XtraPuLP (edge stages disabled), PuLP, METIS-like, and
// KaHIP-like, all at a 3% balance constraint.
//
//repro:deterministic
//repro:timing
func Fig6(cfg Config) error {
	seed := cfg.seed()
	partCounts := scalePick(cfg.Scale, []int{2, 8, 32}, []int{2, 4, 8, 16, 32, 64, 128, 256})
	ranks := scalePick(cfg.Scale, 4, 8)
	picks := map[string]bool{"lj-proxy": true, "rmat-proxy": true, "uk2002-proxy": true}
	t := newTable(cfg.W, "Graph", "Parts", "Partitioner", "EdgeCut", "Time(s)")
	for _, tg := range corpus(cfg.Scale, seed) {
		if !picks[tg.name] {
			continue
		}
		g, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("fig6: %s: %w", tg.name, err)
		}
		for _, p := range partCounts {
			// XtraPuLP in single-constraint mode.
			start := time.Now()
			xparts, _, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: p, Ranks: ranks, RandomDist: true, Seed: seed, SingleConstraint: true,
			})
			if err != nil {
				return fmt.Errorf("fig6: %s p=%d: %w", tg.name, p, err)
			}
			xTime := time.Since(start)
			popt := pulp.DefaultOptions(p)
			popt.Seed = seed
			popt.SingleConstraint = true
			start = time.Now()
			pparts, _, err := pulp.Partition(g, popt)
			if err != nil {
				return err
			}
			pTime := time.Since(start)
			mopt := multilevel.MetisLike(p)
			mopt.Seed = seed
			start = time.Now()
			mparts, _, err := multilevel.Partition(g, mopt)
			if err != nil {
				return err
			}
			mTime := time.Since(start)
			kopt := multilevel.KahipLike(p)
			kopt.Seed = seed
			start = time.Now()
			kparts, _, err := multilevel.Partition(g, kopt)
			if err != nil {
				return err
			}
			kTime := time.Since(start)
			for _, row := range []struct {
				who   string
				parts []int32
				d     time.Duration
			}{
				{"XtraPuLP", xparts, xTime}, {"PuLP", pparts, pTime},
				{"METIS-like", mparts, mTime}, {"KaHIP-like", kparts, kTime},
			} {
				q := partition.Evaluate(g, row.parts, p)
				t.add(tg.name, fmt.Sprintf("%d", p), row.who,
					fmt.Sprintf("%.3f", q.EdgeCutRatio), secs(row.d))
			}
		}
	}
	t.flush()
	return nil
}

// Fig7 reproduces the multiplier parameter sweep: average edge cut,
// max per-part cut, vertex balance, and edge balance over the (X, Y)
// grid, averaged across representative graphs and part counts.
//
//repro:deterministic
func Fig7(cfg Config) error {
	seed := cfg.seed()
	vals := scalePick(cfg.Scale,
		[]float64{0, 0.25, 1.0, 2.5},
		[]float64{0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0})
	partCounts := scalePick(cfg.Scale, []int{8}, []int{2, 8, 32, 128})
	ranks := scalePick(cfg.Scale, 4, 8)
	graphs := representatives(cfg.Scale, seed)
	graphs = graphs[:scalePick(cfg.Scale, 2, len(graphs))]
	t := newTable(cfg.W, "X", "Y", "EdgeCut", "MaxCut", "VertImb", "EdgeImb")
	for _, x := range vals {
		for _, y := range vals {
			var cut, maxCut, vimb, eimb float64
			var runs int
			for _, tg := range graphs {
				for _, p := range partCounts {
					_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
						Parts: p, Ranks: ranks, RandomDist: true, Seed: seed,
						OverrideXY: true, X: x, Y: y,
					})
					if err != nil {
						return fmt.Errorf("fig7: X=%v Y=%v: %w", x, y, err)
					}
					q := rep.Quality
					cut += q.EdgeCutRatio
					maxCut += q.ScaledMaxCutRatio
					vimb += q.VertexImbalance
					eimb += q.EdgeImbalance
					runs++
				}
			}
			f := float64(runs)
			t.add(fmt.Sprintf("%.2f", x), fmt.Sprintf("%.2f", y),
				fmt.Sprintf("%.3f", cut/f), fmt.Sprintf("%.3f", maxCut/f),
				fmt.Sprintf("%.3f", vimb/f), fmt.Sprintf("%.3f", eimb/f))
		}
	}
	t.flush()
	return nil
}
