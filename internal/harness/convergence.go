package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/mpi"
)

// Convergence prints the per-iteration trajectory of one XtraPuLP run
// — the damping multiplier, the largest part's vertex/edge/cut load,
// and the global move count — making the §III.C balance dynamics
// (early overshoot, progressive tightening) directly observable.
// It supplements the paper's aggregate Fig. 7 view.
//
//repro:deterministic
func Convergence(cfg Config) error {
	seed := cfg.seed()
	n := scalePick(cfg.Scale, int64(1<<13), int64(1<<16))
	ranks := scalePick(cfg.Scale, 4, 8)
	parts := scalePick(cfg.Scale, 16, 64)
	g := gen.ChungLu(n, n*8, 2.2, seed)

	t := newTable(cfg.W, "Stage", "Iter", "Mult", "MaxVerts", "MaxEdges", "MaxCut", "Moved")
	idealV := float64(g.N) / float64(parts)
	var events []core.TraceEvent
	mpi.Run(ranks, func(c *mpi.Comm) {
		dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()),
			dgraph.HashDist{P: c.Size(), Seed: seed})
		if err != nil {
			panic(err)
		}
		opt := core.DefaultOptions(parts)
		opt.Seed = seed
		// The callback fires on rank 0 only (see core.Options.Trace).
		opt.Trace = func(ev core.TraceEvent) { events = append(events, ev) }
		if _, _, err := core.Partition(dg, opt); err != nil {
			panic(err)
		}
	})
	for _, ev := range events {
		t.add(ev.Stage, fmt.Sprintf("%d", ev.Iter), fmt.Sprintf("%.2f", ev.Mult),
			fmt.Sprintf("%d (%.2fx)", ev.MaxVerts, float64(ev.MaxVerts)/idealV),
			fmt.Sprintf("%d", ev.MaxEdges), fmt.Sprintf("%d", ev.MaxCut),
			fmt.Sprintf("%d", ev.Moved))
	}
	t.flush()
	return nil
}
