package harness

import (
	"repro/internal/gen"
)

// testGraph is a named proxy instance standing in for one of the
// paper's Table I inputs (see DESIGN.md for the substitution mapping).
type testGraph struct {
	name  string
	class string // social | crawl | rmat | mesh
	gen   *gen.Generator
}

// corpus returns the proxy suite for a scale. Names reference the
// paper graphs each one substitutes for.
func corpus(scale Scale, seed uint64) []testGraph {
	var n int64 = 1 << 12
	if scale == Full {
		n = 1 << 15
	}
	return []testGraph{
		// Online social networks (lj, orkut): heavy-tailed Chung–Lu.
		{name: "lj-proxy", class: "social", gen: gen.ChungLu(n, n*8, 2.3, seed)},
		{name: "orkut-proxy", class: "social", gen: gen.ChungLu(n, n*16, 2.4, seed+1)},
		// Web crawls (uk-2002, wdc12-host): hubbier power law.
		{name: "uk2002-proxy", class: "crawl", gen: gen.ChungLu(n, n*8, 2.0, seed+2)},
		{name: "wdc-proxy", class: "crawl", gen: gen.ChungLu(n*2, n*16, 2.1, seed+3)},
		// Synthetic R-MAT (rmat_22 .. rmat_28).
		{name: "rmat-proxy", class: "rmat", gen: gen.RMAT(log2(n), 16, seed+4)},
		// Regular meshes (InternalMeshX, nlpkktX).
		{name: "mesh-proxy", class: "mesh", gen: meshFor(n)},
		{name: "nlpkkt-proxy", class: "mesh", gen: meshFor(n * 2)},
	}
}

// representatives returns the six-graph subset used by the paper's
// Cluster-1 strong-scaling and quality studies (Figs. 3 and 4): lj,
// orkut, friendster(→wdc), wdc12-pay(→uk2002), rmat_24, nlpkkt240.
func representatives(scale Scale, seed uint64) []testGraph {
	all := corpus(scale, seed)
	pick := map[string]bool{
		"lj-proxy": true, "orkut-proxy": true, "wdc-proxy": true,
		"uk2002-proxy": true, "rmat-proxy": true, "nlpkkt-proxy": true,
	}
	out := make([]testGraph, 0, 6)
	for _, g := range all {
		if pick[g.name] {
			out = append(out, g)
		}
	}
	return out
}

// meshFor builds a roughly cubical 3D mesh with about n vertices.
func meshFor(n int64) *gen.Generator {
	side := int64(1)
	for side*side*side < n {
		side++
	}
	return gen.Grid3D(side, side, side)
}

// log2 returns ⌊log2 n⌋ for n ≥ 1.
func log2(n int64) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// scalePick returns small for Small scale, full otherwise.
func scalePick[T any](s Scale, small, full T) T {
	if s == Full {
		return full
	}
	return small
}
