// Package harness defines the reproduction of every table and figure
// in the paper's evaluation (§V), plus repository-grown studies. Each
// experiment is a function taking a Config and printing the same rows
// or series the paper reports; cmd/experiments and the
// repository-level benchmarks both drive these functions through Run.
//
// Experiments size themselves by Config.Scale: Small targets seconds
// per experiment (tests, benchmarks), Full the largest sizings
// comfortable on one machine. The corpus (corpus.go) maps the paper's
// Table I inputs to seeded synthetic proxies so every run is
// deterministic for a fixed Config.Seed.
//
// Beyond the paper's tables and figures, the "exchange" experiment
// compares the repository's two exchange engines — bulk-synchronous
// Alltoallv versus the async delta engine — across all three
// communication paths (partitioning updates with piggybacked size
// tallies, analytics value flows, SpMV expand/fold), reporting
// exchanged-element volume, Allreduce counts, and the invariant edge
// cut. docs/ARCHITECTURE.md explains the engines; README.md has a
// walkthrough of reading the tables.
package harness
