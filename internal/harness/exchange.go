package harness

import (
	"fmt"

	"repro"
	"repro/internal/analytics"
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/spmv"
)

// Exchange compares the bulk-synchronous exchange engine against the
// asynchronous delta engine on all three communication paths:
//
//   - Partitioning: boundary label updates with piggybacked size
//     tallies. Reported per graph: wall time, exchanged-element volume
//     during the partitioning stages, the Allreduce count (the
//     per-iteration settle barrier the piggybacked tallies retire),
//     and the edge cut — which must be identical, the async path is a
//     pure transport change at fixed seeds.
//   - Analytics: the ExchangeInt64/ExchangeFloat64/PushToOwners value
//     flows driven by PageRank, WCC, and a BFS sweep.
//   - SpMV: the expand/fold phases under 1D and 2D layouts, where the
//     async engine also bypasses self-destined shares.
func Exchange(cfg Config) error {
	if err := exchangePartition(cfg); err != nil {
		return err
	}
	if err := exchangeAnalytics(cfg); err != nil {
		return err
	}
	return exchangeSpMV(cfg)
}

// modeCells names a comparison row and computes its volume reduction
// against the sync baseline, recording the baseline on the sync pass.
func modeCells(async bool, syncVol *int64, vol int64) (mode, reduction string) {
	if !async {
		*syncVol = vol
		return "sync", "-"
	}
	reduction = "-"
	if *syncVol > 0 {
		reduction = fmt.Sprintf("%.1f%%", 100*(1-float64(vol)/float64(*syncVol)))
	}
	return "async-delta", reduction
}

// exchangePartition is the partitioning-path comparison.
func exchangePartition(cfg Config) error {
	seed := cfg.seed()
	const parts = 16
	ranks := scalePick(cfg.Scale, 4, 8)
	fmt.Fprintln(cfg.W, "Partitioning path (label updates + size settles):")
	t := newTable(cfg.W, "Graph", "Ranks", "Mode", "Time(s)", "ExchElems", "Reduction", "Allreduces", "EdgeCut")
	for _, tg := range representatives(cfg.Scale, seed) {
		var syncVol int64
		for _, async := range []bool{false, true} {
			_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: parts, Ranks: ranks, RandomDist: true, Seed: seed,
				AsyncExchange: async,
			})
			if err != nil {
				return fmt.Errorf("exchange: %s async=%v: %w", tg.name, async, err)
			}
			mode, reduction := modeCells(async, &syncVol, rep.ExchangeVolume)
			t.add(tg.name, fmt.Sprintf("%d", ranks), mode, secs(rep.TotalTime),
				fmt.Sprintf("%d", rep.ExchangeVolume), reduction,
				fmt.Sprintf("%d", rep.ReductionOps),
				fmt.Sprintf("%.3f", rep.Quality.EdgeCutRatio))
		}
	}
	t.flush()
	return nil
}

// exchangeAnalytics measures the value-flow paths: total elements sent
// while PageRank, WCC, and one BFS run over a vertex-block placement.
func exchangeAnalytics(cfg Config) error {
	seed := cfg.seed()
	ranks := scalePick(cfg.Scale, 4, 8)
	prIters := scalePick(cfg.Scale, 10, 20)
	fmt.Fprintln(cfg.W, "\nAnalytics path (PR + WCC + BFS value exchanges):")
	t := newTable(cfg.W, "Graph", "Ranks", "Mode", "ExchElems", "Reduction")
	for _, tg := range representatives(cfg.Scale, seed)[:scalePick(cfg.Scale, 3, 6)] {
		shared, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("exchange: %s: %w", tg.name, err)
		}
		placement := partition.VertexBlock(shared, ranks)
		var syncVol int64
		for _, async := range []bool{false, true} {
			var volume int64
			mpi.Run(ranks, func(c *mpi.Comm) {
				dg, err := dgraph.FromEdgeChunks(c, tg.gen.N, tg.gen.EdgesChunk(c.Rank(), c.Size()),
					dgraph.PartsDist{Parts: placement})
				if err != nil {
					panic(err)
				}
				dg.SetAsyncExchange(async)
				c.ResetStats()
				analytics.PageRank(dg, prIters, 0.85)
				analytics.WCC(dg)
				analytics.BFS(dg, 0)
				v := mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
				if c.Rank() == 0 {
					volume = v
				}
			})
			mode, reduction := modeCells(async, &syncVol, volume)
			t.add(tg.name, fmt.Sprintf("%d", ranks), mode,
				fmt.Sprintf("%d", volume), reduction)
		}
	}
	t.flush()
	return nil
}

// exchangeSpMV measures the expand/fold phases under both layouts.
func exchangeSpMV(cfg Config) error {
	seed := cfg.seed()
	ranks := scalePick(cfg.Scale, 4, 16)
	iters := scalePick(cfg.Scale, 10, 100)
	fmt.Fprintln(cfg.W, "\nSpMV path (expand/fold phases):")
	t := newTable(cfg.W, "Graph", "Ranks", "Layout", "Mode", "SentVals", "Reduction")
	for _, tg := range representatives(cfg.Scale, seed)[:scalePick(cfg.Scale, 2, 4)] {
		shared, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("exchange: %s: %w", tg.name, err)
		}
		placement := partition.VertexBlock(shared, ranks)
		for _, layout := range []string{repro.Layout1D, repro.Layout2D} {
			var syncVol int64
			for _, async := range []bool{false, true} {
				l := spmv.OneD
				if layout == repro.Layout2D {
					l = spmv.TwoD
				}
				var volume int64
				var runErr error
				mpi.Run(ranks, func(c *mpi.Comm) {
					res, err := spmv.Run(c, shared, placement, spmv.Options{
						Layout: l, Iterations: iters, Async: async,
					})
					if err != nil {
						if c.Rank() == 0 {
							runErr = err
						}
						return
					}
					v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
					if c.Rank() == 0 {
						volume = v
					}
				})
				if runErr != nil {
					return fmt.Errorf("exchange: %s spmv %s: %w", tg.name, layout, runErr)
				}
				mode, reduction := modeCells(async, &syncVol, volume)
				t.add(tg.name, fmt.Sprintf("%d", ranks), layout, mode,
					fmt.Sprintf("%d", volume), reduction)
			}
		}
	}
	t.flush()
	return nil
}
