package harness

import (
	"fmt"

	"repro"
)

// Exchange compares the bulk-synchronous boundary exchange against the
// asynchronous delta-only exchange on the representative graphs: wall
// time, exchanged-element volume during the partitioning stages, the
// volume reduction, and the edge cut (which must be identical — the
// async path is a pure transport change at fixed seeds).
func Exchange(cfg Config) error {
	seed := cfg.seed()
	const parts = 16
	ranks := scalePick(cfg.Scale, 4, 8)
	t := newTable(cfg.W, "Graph", "Ranks", "Mode", "Time(s)", "ExchElems", "Reduction", "EdgeCut")
	for _, tg := range representatives(cfg.Scale, seed) {
		var syncVol int64
		for _, async := range []bool{false, true} {
			_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: parts, Ranks: ranks, RandomDist: true, Seed: seed,
				AsyncExchange: async,
			})
			if err != nil {
				return fmt.Errorf("exchange: %s async=%v: %w", tg.name, async, err)
			}
			mode, reduction := "sync", "-"
			if async {
				mode = "async-delta"
				if syncVol > 0 {
					reduction = fmt.Sprintf("%.1f%%", 100*(1-float64(rep.ExchangeVolume)/float64(syncVol)))
				}
			} else {
				syncVol = rep.ExchangeVolume
			}
			t.add(tg.name, fmt.Sprintf("%d", ranks), mode, secs(rep.TotalTime),
				fmt.Sprintf("%d", rep.ExchangeVolume), reduction,
				fmt.Sprintf("%.3f", rep.Quality.EdgeCutRatio))
		}
	}
	t.flush()
	return nil
}
