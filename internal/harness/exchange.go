package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/analytics"
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/partition"
	"repro/internal/spmv"
)

// Exchange compares the bulk-synchronous exchange engine against the
// asynchronous delta engine on all three communication paths:
//
//   - Partitioning: boundary label updates with piggybacked size
//     tallies. Reported per graph: wall time, exchanged-element volume
//     during the partitioning stages, the Allreduce count (the
//     per-iteration settle barrier the piggybacked tallies retire),
//     and the edge cut — which must be identical, the async path is a
//     pure transport change at fixed seeds.
//   - Analytics: the value flows driven by PageRank, WCC, and a BFS
//     sweep. The async engine runs them split-phase with the
//     convergence counters piggybacked on the messages, so its
//     Allreduce count collapses and its steady-state rounds allocate
//     nothing (the Allocs/rnd column measures one boundary value
//     round end to end — software-pipelined to the configured depth
//     in async mode, reported by the PipeDepth column). A separate
//     Harmonic Centrality measurement compares the sequential
//     BFS-per-source loop (sync mode) against the multi-wave engine
//     (async mode, Config.PipeDepth/2 concurrent waves): the HCWaves,
//     HCAllred, and HCs/src columns show the async engine issuing
//     fewer total Allreduces and lower wall time per source while the
//     centralities stay bit-identical.
//   - SpMV: the expand/fold phases under 1D and 2D layouts, where the
//     async engine also bypasses self-destined shares and — on
//     complete expand neighborhoods (NormRide column) — piggybacks
//     the power iteration's ∞-norm on the expand messages, collapsing
//     the Allreduces column from iterations+1 to a constant.
//
// With Config.JSONPath set, the same measurements are written as JSON
// (BENCH_exchange.json) for machine consumption.
//
//repro:deterministic
func Exchange(cfg Config) error {
	var rows []ExchangeRow
	if err := exchangePartition(cfg, &rows); err != nil {
		return err
	}
	if err := exchangeAnalytics(cfg, &rows); err != nil {
		return err
	}
	if err := exchangeSpMV(cfg, &rows); err != nil {
		return err
	}
	return writeExchangeJSON(cfg, rows)
}

// ExchangeSocket is the exchange comparison's partitioning path
// measured over an externally formed socket world: every rank of the
// world calls it with the same Config on its own communicator (see
// repro.SocketComm), the runs are collective, and rank 0 prints the
// table and writes cfg.JSONPath. Only the partitioning path runs —
// the analytics and SpMV comparisons spin up one in-process world per
// measurement (mpi.Run) and have no external-comm form — so the
// artifact is partition-only and stamped Transport "socket";
// ValidateExchangeJSON accepts exactly that shape for the socket
// substrate. Edge cuts are bit-identical to the proc substrate at the
// same seed and world size: the transport is below the engine's
// determinism line.
//
//repro:deterministic
func ExchangeSocket(c *mpi.Comm, cfg Config) error {
	w := cfg.W
	if c.Rank() != 0 || w == nil {
		w = io.Discard
	}
	seed := cfg.seed()
	const parts = 16
	var rows []ExchangeRow
	fmt.Fprintf(w, "Partitioning path over the socket transport (%d ranks):\n", c.Size())
	t := newTable(w, "Graph", "Ranks", "Threads", "Mode", "Time(s)", "ExchElems", "Reduction", "Allreduces", "EdgeCut")
	for _, tg := range representatives(cfg.Scale, seed) {
		var syncVol int64
		for _, async := range []bool{false, true} {
			// On external comms the communicator defines the thread
			// budget (Config.ThreadsPerRank is ignored). The sync/async
			// cut equality and the cross-substrate bit-identity both
			// need serial partitioning, so the launcher should form the
			// world with one thread — cmd/experiments' default.
			_, rep, err := repro.XtraPuLPComm(c, tg.gen, repro.Config{
				Parts: parts, RandomDist: true, Seed: seed,
				AsyncExchange: async, PipeDepth: cfg.PipeDepth,
			})
			if err != nil {
				return fmt.Errorf("exchange: %s async=%v: %w", tg.name, async, err)
			}
			mode, reduction := modeCells(async, &syncVol, rep.ExchangeVolume)
			t.add(tg.name, fmt.Sprintf("%d", c.Size()), fmt.Sprintf("%d", c.Threads()), mode, secs(rep.TotalTime),
				fmt.Sprintf("%d", rep.ExchangeVolume), reduction,
				fmt.Sprintf("%d", rep.ReductionOps),
				fmt.Sprintf("%.3f", rep.Quality.EdgeCutRatio))
			rows = append(rows, ExchangeRow{
				Path: "partition", Graph: tg.name, Ranks: c.Size(), Mode: mode, Threads: c.Threads(),
				WallSeconds: rep.TotalTime.Seconds(), ExchElems: rep.ExchangeVolume,
				Reductions: ptr(rep.ReductionOps), EdgeCut: ptr(rep.Quality.EdgeCutRatio),
			})
		}
	}
	t.flush()
	if c.Rank() != 0 {
		return nil
	}
	return writeExchangeJSONAs(cfg, "socket", rows)
}

// ExchangeRow is one machine-readable measurement of the exchange
// comparison. Fields a path does not measure are pointers left nil and
// omitted from the JSON, so a consumer can tell "measured zero" (the
// async engine's headline allocation result) from "not applicable".
type ExchangeRow struct {
	// Path is the communication path: partition, analytics, or spmv.
	Path  string `json:"path"`
	Graph string `json:"graph"`
	Ranks int    `json:"ranks"`
	// Layout is set for spmv rows (1d or 2d).
	Layout string `json:"layout,omitempty"`
	// Mode is sync or async-delta.
	Mode string `json:"mode"`
	// Threads is the intra-rank thread budget the row's sweeps ran
	// with (the partition path is always 1; see Config.Threads).
	Threads     int     `json:"threads"`
	WallSeconds float64 `json:"wallSeconds"`
	// ExchElems is the total element volume all ranks sent.
	ExchElems int64 `json:"exchElems"`
	// Reductions counts Allreduce operations (all three paths; for spmv
	// it is the per-rank count from spmv.Result.Reductions — the async
	// norm piggyback collapses it to a constant independent of the
	// iteration count).
	Reductions *int64 `json:"reductions,omitempty"`
	// AllocsPerRound is the measured steady-state heap allocations of
	// one boundary value round across all ranks (analytics path; the
	// async engine measures software-pipelined rounds).
	AllocsPerRound *float64 `json:"allocsPerRound,omitempty"`
	// PipelineDepth is the exchanger's observed in-flight round
	// high-water mark during the measurement (analytics path, async
	// mode; 2 = a second round was posted while the first was still
	// outstanding).
	PipelineDepth *int64 `json:"pipelineDepth,omitempty"`
	// NormPiggyback reports whether SpMV's async engine rode the
	// per-iteration ∞-norm on the expand messages (spmv path, async
	// mode).
	NormPiggyback *bool `json:"normPiggyback,omitempty"`
	// HCWaves is the number of concurrent BFS waves the Harmonic
	// Centrality measurement ran (analytics path: 1 in sync mode,
	// PipeDepth/2 in async mode).
	HCWaves *int64 `json:"hcWaves,omitempty"`
	// HCReductions counts the Allreduce operations of the HC
	// measurement alone; the multi-wave engine must come in strictly
	// below the sequential loop (benchcheck gates it).
	HCReductions *int64 `json:"hcReductions,omitempty"`
	// HCSecPerSource is the HC measurement's wall time divided by its
	// source count (analytics path).
	HCSecPerSource *float64 `json:"hcSecPerSource,omitempty"`
	// EdgeCut is the partition quality (partition path).
	EdgeCut *float64 `json:"edgeCut,omitempty"`
	// SweepSeconds is the wall-clock time rank 0 spent inside the
	// row's intra-rank parallel sweeps — relaxation and frontier
	// expansion for analytics rows, the local row-sum kernel for spmv
	// rows — excluding all communication. Partition rows leave it nil.
	SweepSeconds *float64 `json:"sweepSeconds,omitempty"`
}

// ptr boxes a measured value for ExchangeRow's optional fields.
func ptr[T any](v T) *T { return &v }

// writeExchangeJSON writes the collected rows to cfg.JSONPath (no-op
// when unset). The harness drives in-process worlds (mpi.Run), so the
// substrate is stamped proc; the socket-world harness
// (ExchangeSocket) stamps its own name through writeExchangeJSONAs.
func writeExchangeJSON(cfg Config, rows []ExchangeRow) error {
	return writeExchangeJSONAs(cfg, "proc", rows)
}

// writeExchangeJSONAs writes the collected rows to cfg.JSONPath (no-op
// when unset) stamped with the named rank substrate.
func writeExchangeJSONAs(cfg Config, transport string, rows []ExchangeRow) error {
	if cfg.JSONPath == "" {
		return nil
	}
	// exchangeDoc is shared with the schema validator, so the written
	// and validated shapes cannot drift apart.
	doc := exchangeDoc{Experiment: "exchange", Transport: transport, Scale: cfg.Scale.String(),
		Seed: cfg.seed(), PipeDepth: cfg.pipeDepth(), Rows: rows}
	f, err := os.Create(cfg.JSONPath)
	if err != nil {
		return fmt.Errorf("exchange: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close() //lint:ignore errcheck the encode error is the root cause; report it instead
		return fmt.Errorf("exchange: %w", err)
	}
	// Close errors matter here: a full disk surfaces at Close, and
	// swallowing it would upload a silently truncated artifact.
	if err := f.Close(); err != nil {
		return fmt.Errorf("exchange: writing %s: %w", cfg.JSONPath, err)
	}
	return nil
}

// modeCells names a comparison row and computes its volume reduction
// against the sync baseline, recording the baseline on the sync pass.
func modeCells(async bool, syncVol *int64, vol int64) (mode, reduction string) {
	if !async {
		*syncVol = vol
		return "sync", "-"
	}
	reduction = "-"
	if *syncVol > 0 {
		reduction = fmt.Sprintf("%.1f%%", 100*(1-float64(vol)/float64(*syncVol)))
	}
	return "async-delta", reduction
}

// exchangePartition is the partitioning-path comparison.
func exchangePartition(cfg Config, rows *[]ExchangeRow) error {
	seed := cfg.seed()
	const parts = 16
	ranks := scalePick(cfg.Scale, 4, 8)
	fmt.Fprintln(cfg.W, "Partitioning path (label updates + size settles):")
	t := newTable(cfg.W, "Graph", "Ranks", "Threads", "Mode", "Time(s)", "ExchElems", "Reduction", "Allreduces", "EdgeCut")
	for _, tg := range representatives(cfg.Scale, seed) {
		var syncVol int64
		for _, async := range []bool{false, true} {
			// ThreadsPerRank pinned serial: the comparison asserts the
			// async path changes nothing but the transport, and the
			// partitioner is bit-deterministic only at one thread.
			_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: parts, Ranks: ranks, ThreadsPerRank: 1, RandomDist: true, Seed: seed,
				AsyncExchange: async, PipeDepth: cfg.PipeDepth,
			})
			if err != nil {
				return fmt.Errorf("exchange: %s async=%v: %w", tg.name, async, err)
			}
			mode, reduction := modeCells(async, &syncVol, rep.ExchangeVolume)
			t.add(tg.name, fmt.Sprintf("%d", ranks), "1", mode, secs(rep.TotalTime),
				fmt.Sprintf("%d", rep.ExchangeVolume), reduction,
				fmt.Sprintf("%d", rep.ReductionOps),
				fmt.Sprintf("%.3f", rep.Quality.EdgeCutRatio))
			*rows = append(*rows, ExchangeRow{
				Path: "partition", Graph: tg.name, Ranks: ranks, Mode: mode, Threads: 1,
				WallSeconds: rep.TotalTime.Seconds(), ExchElems: rep.ExchangeVolume,
				Reductions: ptr(rep.ReductionOps), EdgeCut: ptr(rep.Quality.EdgeCutRatio),
			})
		}
	}
	t.flush()
	return nil
}

// allocRounds is how many steady-state value rounds the allocation
// measurement averages over (after warmup).
const allocRounds = 64

// measureValueRoundAllocs measures the heap allocations of one
// full-boundary value round in the graph's configured mode, averaged
// over allocRounds rounds after warmup, and reports the exchanger's
// observed pipeline depth (0 in sync mode). It is a collective: every
// rank runs the same rounds; rank 0 reads the process-wide allocation
// counter between two barriers, so the result covers all ranks (the
// async engine's rounds are expected to allocate zero in steady
// state).
//
// In async mode the rounds are software-pipelined the way the
// overlapped BFS runs them: each call posts the next round with
// BeginValues BEFORE flushing the oldest one, so the exchanger's full
// configured depth of rounds is in flight throughout the measured
// window and the reported depth is DeltaExchanger.Depth. Depth-1
// rounds stay pending when the measurement ends; Graph.Close settles
// them during teardown.
func measureValueRoundAllocs(c *mpi.Comm, dg *dgraph.Graph) (float64, int64) {
	bv := dg.BoundaryVertices()
	vals := make([]int64, dg.NTotal())
	for i := range vals {
		vals[i] = int64(i)
	}
	depth := func() int64 { return 0 }
	round := func() { dg.ExchangeInt64(bv, vals) }
	if dg.AsyncExchange() {
		// Measure at the split-phase API the overlapped analytics use,
		// tally frame included.
		ex := dg.AsyncExchanger()
		payload := make([]int64, len(bv))
		tally := []int64{1}
		pending := 0
		// Reset the lifetime high-water mark (the analytics already
		// drove it to 2) so the reported depth is what THIS measurement
		// loop achieves — the benchcheck gate must fail if the
		// pipelined schedule below regresses.
		ex.MaxDepth = 0
		depth = func() int64 { return int64(ex.MaxDepth) }
		round = func() {
			for i, v := range bv {
				payload[i] = vals[v]
			}
			ex.BeginValues(bv, payload, tally)
			pending++
			if pending == ex.Depth() {
				ex.FlushValues()
				pending--
			}
		}
	}
	// Warmup must reach the transport's in-flight high-water mark (up
	// to two rounds of pooled buffers per neighbor pair, and ranks can
	// drift a round apart while free-running) before the measured
	// window opens.
	for i := 0; i < 32; i++ {
		round()
	}
	c.Barrier()
	var m0, m1 runtime.MemStats
	if c.Rank() == 0 {
		// Flush the preceding run's garbage out of the measured window;
		// the second cycle waits out finalizers the first one queued.
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(&m0)
	}
	c.Barrier()
	for i := 0; i < allocRounds; i++ {
		round()
	}
	c.Barrier()
	if c.Rank() == 0 {
		runtime.ReadMemStats(&m1)
	}
	c.Barrier()
	return float64(m1.Mallocs-m0.Mallocs) / allocRounds, depth()
}

// exchangeAnalytics measures the value-flow paths: total elements
// sent, Allreduce operations, and steady-state allocations while
// PageRank, WCC, and one BFS run over a vertex-block placement — plus
// a separate Harmonic Centrality measurement comparing the sequential
// BFS-per-source loop (sync mode) against the multi-wave engine (async
// mode, Config.PipeDepth/2 concurrent waves).
//
//repro:timing
func exchangeAnalytics(cfg Config, rows *[]ExchangeRow) error {
	seed := cfg.seed()
	ranks := scalePick(cfg.Scale, 4, 8)
	prIters := scalePick(cfg.Scale, 10, 20)
	hcSources := scalePick(cfg.Scale, 8, 24)
	threads := cfg.threads()
	fmt.Fprintf(cfg.W, "\nAnalytics path (PR + WCC + BFS value exchanges; HC with %d sources):\n", hcSources)
	t := newTable(cfg.W, "Graph", "Ranks", "Threads", "Mode", "Time(s)", "Sweep(s)", "ExchElems", "Reduction", "Allreduces",
		"Allocs/rnd", "PipeDepth", "HCWaves", "HCAllred", "HCs/src")
	for _, tg := range representatives(cfg.Scale, seed)[:scalePick(cfg.Scale, 3, 6)] {
		shared, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("exchange: %s: %w", tg.name, err)
		}
		placement := partition.VertexBlock(shared, ranks)
		srcs := analytics.HCSourceList(hcSources, tg.gen.N)
		var syncVol int64
		for _, async := range []bool{false, true} {
			var volume, reductions, depth, hcWaves, hcRed int64
			var wall, hcWall, sweep time.Duration
			var allocs float64
			mpi.RunThreads(ranks, threads, func(c *mpi.Comm) {
				dg, err := dgraph.FromEdgeChunks(c, tg.gen.N, tg.gen.EdgesChunk(c.Rank(), c.Size()),
					dgraph.PartsDist{Parts: placement})
				if err != nil {
					panic(err)
				}
				dg.SetPipeDepth(cfg.PipeDepth)
				dg.SetAsyncExchange(async)
				dg.SetTermEpoch(cfg.TermEpoch)
				c.ResetStats()
				start := time.Now()
				_, prRes := analytics.PageRank(dg, prIters, 0.85)
				_, wccRes := analytics.WCC(dg)
				analytics.BFS(dg, 0)
				elapsed := time.Since(start)
				// HC separately: in sync mode the sequential loop pays
				// per-round termination plus one eccentricity Allreduce
				// per source; the multi-wave engine piggybacks per-wave
				// termination and needs no eccentricities at all.
				redBefore := c.Stats().ReductionOps
				hcStart := time.Now()
				_, hcRes := analytics.HarmonicCentrality(dg, srcs)
				hcElapsed := time.Since(hcStart)
				sweepTime := prRes.SweepTime + wccRes.SweepTime + hcRes.SweepTime
				hcReduce := c.Stats().ReductionOps - redBefore
				waves := int64(analytics.HCWaves(dg))
				red := redBefore
				v := mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
				a, d := measureValueRoundAllocs(c, dg)
				// Settles the measurement's still-pending pipelined
				// rounds (their messages are already in flight on every
				// rank) and stops the drainer goroutine.
				dg.Close()
				if c.Rank() == 0 {
					volume, reductions, wall, allocs, depth = v, red, elapsed, a, d
					hcWaves, hcRed, hcWall = waves, hcReduce, hcElapsed
					sweep = sweepTime
				}
			})
			mode, reduction := modeCells(async, &syncVol, volume)
			hcPerSrc := hcWall.Seconds()
			if len(srcs) > 0 {
				hcPerSrc /= float64(len(srcs))
			}
			t.add(tg.name, fmt.Sprintf("%d", ranks), fmt.Sprintf("%d", threads), mode, secs(wall), secs(sweep),
				fmt.Sprintf("%d", volume), reduction,
				fmt.Sprintf("%d", reductions),
				fmt.Sprintf("%.1f", allocs),
				fmt.Sprintf("%d", depth),
				fmt.Sprintf("%d", hcWaves),
				fmt.Sprintf("%d", hcRed),
				fmt.Sprintf("%.4f", hcPerSrc))
			row := ExchangeRow{
				Path: "analytics", Graph: tg.name, Ranks: ranks, Mode: mode, Threads: threads,
				WallSeconds: wall.Seconds(), ExchElems: volume,
				Reductions: ptr(reductions), AllocsPerRound: ptr(allocs),
				HCWaves: ptr(hcWaves), HCReductions: ptr(hcRed),
				HCSecPerSource: ptr(hcPerSrc), SweepSeconds: ptr(sweep.Seconds()),
			}
			if async {
				row.PipelineDepth = ptr(depth)
			}
			*rows = append(*rows, row)
		}
	}
	t.flush()
	return nil
}

// exchangeSpMV measures the expand/fold phases under both layouts.
func exchangeSpMV(cfg Config, rows *[]ExchangeRow) error {
	seed := cfg.seed()
	ranks := scalePick(cfg.Scale, 4, 16)
	iters := scalePick(cfg.Scale, 10, 100)
	threads := cfg.threads()
	fmt.Fprintln(cfg.W, "\nSpMV path (expand/fold phases):")
	t := newTable(cfg.W, "Graph", "Ranks", "Threads", "Layout", "Mode", "Sweep(s)", "SentVals", "Reduction", "Allreduces", "NormRide")
	for _, tg := range representatives(cfg.Scale, seed)[:scalePick(cfg.Scale, 2, 4)] {
		shared, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("exchange: %s: %w", tg.name, err)
		}
		placement := partition.VertexBlock(shared, ranks)
		for _, layout := range []string{repro.Layout1D, repro.Layout2D} {
			var syncVol int64
			for _, async := range []bool{false, true} {
				l := spmv.OneD
				if layout == repro.Layout2D {
					l = spmv.TwoD
				}
				var volume, reductions int64
				var piggyback bool
				var wall, sweep time.Duration
				var runErr error
				mpi.RunThreads(ranks, threads, func(c *mpi.Comm) {
					res, err := spmv.Run(c, shared, placement, spmv.Options{
						Layout: l, Iterations: iters, Async: async,
					})
					if err != nil {
						if c.Rank() == 0 {
							runErr = err
						}
						return
					}
					v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
					if c.Rank() == 0 {
						volume, wall = v, res.Time
						reductions, piggyback = res.Reductions, res.NormPiggyback
						sweep = res.MultiplyTime
					}
				})
				if runErr != nil {
					return fmt.Errorf("exchange: %s spmv %s: %w", tg.name, layout, runErr)
				}
				mode, reduction := modeCells(async, &syncVol, volume)
				t.add(tg.name, fmt.Sprintf("%d", ranks), fmt.Sprintf("%d", threads), layout, mode, secs(sweep),
					fmt.Sprintf("%d", volume), reduction,
					fmt.Sprintf("%d", reductions),
					fmt.Sprintf("%v", piggyback))
				row := ExchangeRow{
					Path: "spmv", Graph: tg.name, Ranks: ranks, Layout: layout,
					Mode: mode, Threads: threads, WallSeconds: wall.Seconds(), ExchElems: volume,
					Reductions: ptr(reductions), SweepSeconds: ptr(sweep.Seconds()),
				}
				if async {
					row.NormPiggyback = ptr(piggyback)
				}
				*rows = append(*rows, row)
			}
		}
	}
	t.flush()
	return nil
}
