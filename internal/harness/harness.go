package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/dgraph"
	"repro/internal/par"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Small targets seconds per experiment (tests, benchmarks).
	Small Scale = iota
	// Full targets the largest sizes that are comfortable on one
	// machine (cmd/experiments default).
	Full
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	default:
		return Small, fmt.Errorf("harness: unknown scale %q (small|full)", s)
	}
}

// String names the scale ("small" or "full").
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "small"
}

// Config parameterizes one experiment run.
type Config struct {
	// W receives the experiment's table output.
	W io.Writer
	// Scale selects sizing.
	Scale Scale
	// Seed fixes all randomness.
	Seed uint64
	// JSONPath, when non-empty, makes experiments with machine-readable
	// output (currently exchange) also write their measurements as JSON
	// to this file, so benchmark trajectories can be tracked across
	// commits.
	JSONPath string
	// TermEpoch is forwarded to the analytics runs of experiments that
	// drive the async engine (currently exchange): on incomplete rank
	// neighborhoods the overlapped analytics perform their exact
	// termination Allreduce every TermEpoch-th round instead of every
	// round (see repro.AnalyticsConfig.TermEpoch). 0 keeps the exact
	// per-round default.
	TermEpoch int
	// PipeDepth is forwarded to the async exchange engine of
	// experiments that drive it (currently exchange): how many rounds
	// of boundary messages may be in flight per exchanger (0 = default
	// 2; see repro.AnalyticsConfig.PipeDepth). Depths >= 4 run HC as
	// PipeDepth/2 concurrent BFS waves.
	PipeDepth int
	// Threads is the intra-rank thread budget forwarded to the
	// analytics and SpMV worlds of experiments that drive them
	// (currently exchange). The repo-wide rule: 0 (or negative) selects
	// one worker per core (par.DefaultThreads), an explicit 1 runs
	// serial. The partitioning path stays pinned at one thread — its
	// balance stage is bit-deterministic only serially, and the
	// exchange comparison asserts identical cuts across modes.
	Threads int
}

// threads returns the effective intra-rank thread budget of the run.
func (c *Config) threads() int { return par.ResolveThreads(c.Threads) }

// pipeDepth returns the effective exchange pipeline depth of the run
// (the knob normalized to the engine default).
func (c *Config) pipeDepth() int {
	if c.PipeDepth == 0 {
		return dgraph.DefaultPipeDepth
	}
	return c.PipeDepth
}

// value of Seed when the caller leaves it zero.
const defaultSeed = 1

func (c *Config) seed() uint64 {
	if c.Seed == 0 {
		return defaultSeed
	}
	return c.Seed
}

// table is a minimal fixed-width table printer.
type table struct {
	w      io.Writer
	header []string
	widths []int
	rows   [][]string
}

func newTable(w io.Writer, header ...string) *table {
	t := &table{w: w, header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

func (t *table) add(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) flush() {
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < t.widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(t.w, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", t.widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// secs renders a duration as seconds with 3 decimals.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Experiment names in canonical order.
var Names = []string{
	"table1", "fig1", "fig2", "trillion", "table2", "fig3",
	"fig4", "fig5", "fig6", "fig7", "fig8", "table3",
	"convergence", "ablation", "exchange",
}

// Run dispatches an experiment by name.
func Run(name string, cfg Config) error {
	switch strings.ToLower(name) {
	case "table1":
		return Table1(cfg)
	case "fig1":
		return Fig1(cfg)
	case "fig2":
		return Fig2(cfg)
	case "trillion":
		return Trillion(cfg)
	case "table2":
		return Table2(cfg)
	case "fig3":
		return Fig3(cfg)
	case "fig4":
		return Fig4(cfg)
	case "fig5":
		return Fig5(cfg)
	case "fig6":
		return Fig6(cfg)
	case "fig7":
		return Fig7(cfg)
	case "fig8":
		return Fig8(cfg)
	case "table3":
		return Table3(cfg)
	case "convergence":
		return Convergence(cfg)
	case "ablation":
		return Ablation(cfg)
	case "exchange":
		return Exchange(cfg)
	default:
		return fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names)
	}
}
