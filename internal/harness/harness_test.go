package harness

import (
	"bytes"
	"strings"
	"testing"
)

// quickExperiments are the table/figure reproductions cheap enough
// (well under a second each) to keep in -short runs; the heavy ones
// are gated behind testing.Short so `go test -short ./...` finishes in
// seconds while default runs retain full coverage.
var quickExperiments = map[string]bool{
	"table1":      true,
	"fig5":        true,
	"convergence": true,
}

// TestAllExperimentsRunSmall executes every experiment at Small scale
// and checks it produces a non-trivial table. This is the end-to-end
// integration test of the whole repository: generators, the MPI
// simulator, the distributed graph, XtraPuLP, every baseline, the
// analytics, and SpMV all execute inside it.
func TestAllExperimentsRunSmall(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !quickExperiments[name] {
				t.Skipf("%s is a heavy reproduction; skipped in -short", name)
			}
			var buf bytes.Buffer
			cfg := Config{W: &buf, Scale: Small, Seed: 1}
			if err := Run(name, cfg); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := buf.String()
			lines := strings.Count(out, "\n")
			if lines < 3 {
				t.Fatalf("%s produced only %d lines:\n%s", name, lines, out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", Config{W: &buf}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("small"); err != nil || s != Small {
		t.Fatalf("small: %v %v", s, err)
	}
	if s, err := ParseScale("FULL"); err != nil || s != Full {
		t.Fatalf("full: %v %v", s, err)
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTablePrinterAlignment(t *testing.T) {
	var buf bytes.Buffer
	tab := newTable(&buf, "A", "LongHeader")
	tab.add("xxxx", "1")
	tab.add("y", "22")
	tab.flush()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A     LongHeader") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
}

func TestCorpusCoversAllClasses(t *testing.T) {
	classes := map[string]bool{}
	for _, g := range corpus(Small, 1) {
		classes[g.class] = true
	}
	for _, want := range []string{"social", "crawl", "rmat", "mesh"} {
		if !classes[want] {
			t.Errorf("corpus missing class %s", want)
		}
	}
	if len(representatives(Small, 1)) != 6 {
		t.Errorf("representatives should have 6 graphs")
	}
}
