package harness

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/gen"
)

// Table1 regenerates the paper's Table I: per-graph statistics (n, m,
// average and max degree, approximate diameter) for every proxy class
// plus the synthetic scaling families.
//
//repro:deterministic
func Table1(cfg Config) error {
	seed := cfg.seed()
	graphs := corpus(cfg.Scale, seed)
	n := scalePick(cfg.Scale, int64(1<<12), int64(1<<15))
	graphs = append(graphs,
		testGraph{name: "rander", class: "rand", gen: gen.ERAvgDeg(n, 16, seed+10)},
		testGraph{name: "randhd", class: "rand", gen: gen.RandHD(n, 16, seed+11)},
		testGraph{name: "smallworld", class: "social", gen: gen.WattsStrogatz(n, 16, 0.1, seed+12)},
	)
	t := newTable(cfg.W, "Graph", "Class", "n", "m", "davg", "dmax", "D~")
	for _, tg := range graphs {
		g, err := tg.gen.Build()
		if err != nil {
			return fmt.Errorf("table1: %s: %w", tg.name, err)
		}
		s := g.ComputeStats(10, seed)
		t.add(tg.name, tg.class,
			fmt.Sprintf("%d", s.N), fmt.Sprintf("%d", s.M),
			fmt.Sprintf("%.1f", s.AvgDeg), fmt.Sprintf("%d", s.MaxDeg),
			fmt.Sprintf("%d", s.DiamEst))
	}
	t.flush()
	return nil
}

// Fig1 reproduces the strong-scaling study: partitioning time for the
// WDC12 proxy and same-sized RMAT, RandER, and RandHD graphs while the
// rank count grows, computing a fixed number of parts.
//
//repro:deterministic
func Fig1(cfg Config) error {
	seed := cfg.seed()
	n := scalePick(cfg.Scale, int64(1<<13), int64(1<<16))
	parts := scalePick(cfg.Scale, 16, 64)
	ranks := scalePick(cfg.Scale, []int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16})
	graphs := []testGraph{
		{name: "WDC-proxy", gen: gen.ChungLu(n, n*8, 2.1, seed)},
		{name: "RMAT", gen: gen.RMAT(log2(n), 16, seed+1)},
		{name: "RandER", gen: gen.ERAvgDeg(n, 16, seed+2)},
		{name: "RandHD", gen: gen.RandHD(n, 16, seed+3)},
	}
	t := newTable(cfg.W, "Graph", "Ranks", "Time(s)", "CutRatio", "Speedup")
	for _, tg := range graphs {
		var base time.Duration
		for _, r := range ranks {
			_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
				Parts: parts, Ranks: r, RandomDist: true, Seed: seed,
			})
			if err != nil {
				return fmt.Errorf("fig1: %s ranks=%d: %w", tg.name, r, err)
			}
			if r == ranks[0] {
				base = rep.TotalTime
			}
			t.add(tg.name, fmt.Sprintf("%d", r), secs(rep.TotalTime),
				fmt.Sprintf("%.3f", rep.Quality.EdgeCutRatio),
				fmt.Sprintf("%.2fx", float64(base)/float64(rep.TotalTime)))
		}
	}
	t.flush()
	return nil
}

// Fig2 reproduces the weak-scaling study: vertices per rank held
// constant while ranks double; average degree varies over {16, 32,
// 64}; the number of parts equals the rank count.
//
//repro:deterministic
func Fig2(cfg Config) error {
	seed := cfg.seed()
	perRank := scalePick(cfg.Scale, int64(1<<11), int64(1<<13))
	ranks := scalePick(cfg.Scale, []int{1, 2, 4, 8}, []int{1, 2, 4, 8, 16})
	t := newTable(cfg.W, "Family", "AvgDeg", "Ranks", "n", "Time(s)")
	for _, family := range []string{"RMAT", "RandER", "RandHD"} {
		for _, davg := range []int64{16, 32, 64} {
			for _, r := range ranks {
				n := perRank * int64(r)
				var g *gen.Generator
				switch family {
				case "RMAT":
					g = gen.RMAT(log2(n), davg, seed)
				case "RandER":
					g = gen.ERAvgDeg(n, davg, seed)
				default:
					g = gen.RandHD(n, davg, seed)
				}
				_, rep, err := repro.XtraPuLPGen(g, repro.Config{
					Parts: r, Ranks: r, RandomDist: true, Seed: seed,
				})
				if err != nil {
					return fmt.Errorf("fig2: %s d=%d r=%d: %w", family, davg, r, err)
				}
				t.add(family, fmt.Sprintf("%d", davg), fmt.Sprintf("%d", r),
					fmt.Sprintf("%d", n), secs(rep.TotalTime))
			}
		}
	}
	t.flush()
	return nil
}

// Trillion reproduces §V.A.2 at machine scale: the largest RandER,
// RandHD, and RMAT instances that fit, partitioned at the maximum rank
// count (the paper's 2^34-vertex / 2^40-edge runs on 8192 nodes).
//
//repro:deterministic
func Trillion(cfg Config) error {
	seed := cfg.seed()
	n := scalePick(cfg.Scale, int64(1<<15), int64(1<<19))
	ranks := 8
	t := newTable(cfg.W, "Graph", "n", "m", "Ranks", "Time(s)")
	gens := []testGraph{
		{name: "RandER", gen: gen.ERAvgDeg(n, 32, seed)},
		{name: "RandHD", gen: gen.RandHD(n, 32, seed+1)},
		{name: "RMAT", gen: gen.RMAT(log2(n), 16, seed+2)}, // half the edges, as in the paper
	}
	for _, tg := range gens {
		_, rep, err := repro.XtraPuLPGen(tg.gen, repro.Config{
			Parts: ranks, Ranks: ranks, RandomDist: true, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("trillion: %s: %w", tg.name, err)
		}
		t.add(tg.name, fmt.Sprintf("%d", tg.gen.N), fmt.Sprintf("%d", tg.gen.M),
			fmt.Sprintf("%d", ranks), secs(rep.TotalTime))
	}
	t.flush()
	return nil
}
