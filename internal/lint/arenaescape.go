package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ArenaEscape flags decode-arena- and Recv64-backed slices that escape
// their aliasing window. The exchange engine hands callers views into
// pooled receive buffers and decode arenas that are recycled after a
// bounded number of rounds ("valid for depth-1 subsequent rounds");
// storing such a slice in a struct field, capturing it in a goroutine,
// returning it, or keeping its backing array via append silently turns
// a bounded aliasing window into a use-after-recycle — the PR 5 bug
// shape.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "arena-backed slices (Recv64 results, Flush*/Exchange* decode views) must not outlive their round window",
	Run:  runArenaEscape,
}

// arenaSource maps a callee to the indices of its results that alias a
// pooled buffer or decode arena.
var arenaSources = map[callee][]int{
	{mpiPath, "", "Recv64"}:    {0},
	{mpiPath, "", "Recv64Tag"}: {0},

	// The Transport surface: Recv64 hands out a pooled buffer whether
	// called through the interface or on a concrete transport.
	{mpiPath, "Transport", "Recv64"}:       {0},
	{mpiPath, "SocketTransport", "Recv64"}: {0},

	{dgraphPath, "DeltaExchanger", "Flush"}:          {0},
	{dgraphPath, "DeltaExchanger", "FlushTally"}:     {0, 1},
	{dgraphPath, "DeltaExchanger", "FlushValues"}:    {0, 1},
	{dgraphPath, "DeltaExchanger", "FlushPush"}:      {0, 1},
	{dgraphPath, "DeltaExchanger", "ExchangeValues"}: {0, 1},
	{dgraphPath, "DeltaExchanger", "PushValues"}:     {0, 1},
}

func runArenaEscape(pass *Pass) {
	// The engine's and the transports' own plumbing constructs and
	// returns arena views by design; the contract binds their callers.
	if p := strings.TrimSuffix(pass.Pkg.Path(), "-test"); p == dgraphPath || p == mpiPath {
		return
	}
	for _, unit := range funcUnits(pass.Files) {
		checkArenaEscapes(pass, unit.decl)
	}
}

// checkArenaEscapes runs a function-local taint analysis: variables
// assigned from an arena source (or derived from one by slicing,
// SplitTally, or append-onto-tainted) are tainted; sinking a tainted
// value past the function or the round boundary is reported.
func checkArenaEscapes(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	tainted := map[types.Object]token.Pos{} // var -> where it became tainted
	isTaintedExpr := func(e ast.Expr) bool { return false }

	// taintedObjOf resolves an expression to a tainted variable, seeing
	// through parens and slice expressions.
	taintedObjOf := func(e ast.Expr) (types.Object, bool) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				o := objOf(info, x)
				_, ok := tainted[o]
				return o, ok && o != nil
			case *ast.SliceExpr:
				e = x.X
			default:
				return nil, false
			}
		}
	}

	// arenaResultIndices reports which results of a call are
	// arena-backed: direct sources, SplitTally of a tainted message,
	// or append growing a tainted slice.
	arenaResultIndices := func(call *ast.CallExpr) []int {
		if c, ok := calleeOf(info, call); ok {
			if idx, ok := arenaSources[c]; ok {
				return idx
			}
			if c.pkg == mpiPath && c.name == "SplitTally" && len(call.Args) > 0 {
				if _, ok := taintedObjOf(call.Args[0]); ok {
					return []int{0, 1} // body view and tail both alias msg
				}
			}
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, ok := taintedObjOf(call.Args[0]); ok {
				return []int{0}
			}
		}
		return nil
	}

	isTaintedExpr = func(e ast.Expr) bool {
		if _, ok := taintedObjOf(e); ok {
			return true
		}
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			return len(arenaResultIndices(call)) > 0
		}
		return false
	}

	// Pass 1: propagate taint to a fixpoint over the assignments of the
	// function (including its closures — same frame discipline).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr, pos token.Pos) {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				o := objOf(info, id)
				if o == nil {
					return
				}
				if _, already := tainted[o]; !already {
					tainted[o] = pos
					changed = true
				}
			}
			if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
				// Multi-result call: v, rest := ex.FlushTally(...)
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					for _, i := range arenaResultIndices(call) {
						if i < len(as.Lhs) {
							mark(as.Lhs[i], as.Lhs[i].Pos())
						}
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && isTaintedExpr(rhs) {
					mark(as.Lhs[i], as.Lhs[i].Pos())
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	taintedName := func(e ast.Expr) (string, bool) {
		if o, ok := taintedObjOf(e); ok {
			return o.Name(), true
		}
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(arenaResultIndices(call)) > 0 {
			if c, ok := calleeOf(info, call); ok {
				return c.name + " result", true
			}
			return "arena-backed value", true
		}
		return "", false
	}

	// Pass 2: find sinks. Closure bodies are walked with inLit set so
	// their returns (which stay inside the frame) are not mistaken for
	// the function's own.
	recycled := map[types.Object]token.Pos{} // msg -> Recycle64 position
	var inspect func(root ast.Node, inLit bool)
	inspect = func(root ast.Node, inLit bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && n != root {
				inspect(lit.Body, true)
				return false
			}
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) && len(x.Rhs) != 1 {
						break
					}
					rhs := x.Rhs[min(i, len(x.Rhs)-1)]
					name, ok := taintedName(rhs)
					if !ok {
						continue
					}
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr:
						pass.Reportf(x.Pos(),
							"arena-backed slice %s stored into field %s: the backing buffer is recycled after the round window — copy it first",
							name, exprString(lhs))
					case *ast.IndexExpr:
						pass.Reportf(x.Pos(),
							"arena-backed slice %s stored into container %s outlives its round window — copy it first", name, exprString(lhs.X))
					case *ast.StarExpr:
						pass.Reportf(x.Pos(),
							"arena-backed slice %s stored through pointer %s outlives its round window — copy it first", name, exprString(lhs))
					case *ast.Ident:
						if o := objOf(info, lhs); o != nil && o.Parent() == pass.Pkg.Scope() {
							pass.Reportf(x.Pos(),
								"arena-backed slice %s stored into package variable %s outlives its round window — copy it first", name, lhs.Name)
						}
					}
				}
			case *ast.ReturnStmt:
				// The enclosing declaration must not leak the arena to
				// its own callers; a closure's return stays in-frame.
				if inLit {
					break
				}
				for _, r := range x.Results {
					if name, ok := taintedName(r); ok {
						pass.Reportf(r.Pos(),
							"arena-backed slice %s returned to caller: the backing buffer is recycled after the round window — copy it first", name)
					}
				}
			case *ast.SendStmt:
				if name, ok := taintedName(x.Value); ok {
					pass.Reportf(x.Pos(),
						"arena-backed slice %s sent on a channel escapes its round window — copy it first", name)
				}
			case *ast.GoStmt:
				for _, a := range x.Call.Args {
					if name, ok := taintedName(a); ok {
						pass.Reportf(x.Pos(),
							"arena-backed slice %s passed to a goroutine may outlive its round window — copy it first", name)
					}
				}
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					for o, pos := range tainted {
						if capturedBy(info, lit, o) && pos < lit.Pos() {
							pass.Reportf(x.Pos(),
								"goroutine captures arena-backed slice %s, which may be recycled before it runs — copy it first", o.Name())
						}
					}
				}
			case *ast.CallExpr:
				c, ok := calleeOf(info, x)
				if ok && c.pkg == mpiPath && recyclerRecv(c.recv) && c.name == "Recycle64" && len(x.Args) > 0 {
					if o, ok := taintedObjOf(x.Args[0]); ok {
						if _, done := recycled[o]; !done {
							recycled[o] = x.End()
						}
					}
				}
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && !x.Ellipsis.IsValid() && len(x.Args) > 1 {
					// append(dst, tainted) with a non-spread slice arg
					// stores the slice header itself.
					for _, a := range x.Args[1:] {
						if t := info.TypeOf(a); t != nil {
							if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
								continue
							}
						}
						if name, ok := taintedName(a); ok {
							pass.Reportf(x.Pos(),
								"arena-backed slice %s appended by reference into a longer-lived slice — copy its contents instead", name)
						}
					}
				}
			}
			return true
		})
	}
	inspect(fd.Body, false)

	// Pass 3: use-after-recycle, position-ordered within the function.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := info.Uses[id]
		if o == nil {
			return true
		}
		if pos, done := recycled[o]; done && id.Pos() > pos {
			pass.Reportf(id.Pos(), "%s used after Recycle64 returned its buffer to the pool", o.Name())
		}
		return true
	})
}

// recyclerRecv reports whether a receiver type owns a pool that
// Recycle64 returns buffers to: the Comm handle, the Transport
// interface, or a concrete wire transport.
func recyclerRecv(recv string) bool {
	switch recv {
	case "Comm", "Transport", "SocketTransport":
		return true
	}
	return false
}

// capturedBy reports whether a function literal references obj without
// declaring it.
func capturedBy(info *types.Info, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
