package lint

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
)

// jsonDiagnostic is the machine-readable form of one finding, stable
// for CI artifact consumers and the GitHub problem matcher.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits findings as a JSON array (never null: an empty run
// writes []), one object per diagnostic, sorted as RunAnalyzers
// returned them.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// IgnoreAudit is one //lint:ignore directive, as reported by the
// -ignores audit mode: where it is, what it suppresses, and whether it
// is malformed or stale.
type IgnoreAudit struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
	// Bare marks a directive missing its analyzer list or reason.
	Bare bool
	// Unknown lists named analyzers that do not exist in the suite: a
	// stale ignore suppresses nothing and outlives the check it was
	// written for (or hides a typo that never suppressed anything).
	Unknown []string
}

// AuditIgnores collects every lint:ignore directive of a package and
// cross-checks the analyzer names against the given suite (plus the
// framework's own "reprolint" name, used for bare-ignore findings).
func AuditIgnores(pkg *Package, analyzers []*Analyzer) []IgnoreAudit {
	known := map[string]bool{"reprolint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []IgnoreAudit
	for _, f := range pkg.Files {
		for _, ig := range parseIgnores(pkg.Fset, f) {
			a := IgnoreAudit{Pos: ig.pos, Reason: ig.reason, Bare: ig.bare}
			for name := range ig.analyzers {
				a.Analyzers = append(a.Analyzers, name)
				if !known[name] {
					a.Unknown = append(a.Unknown, name)
				}
			}
			sort.Strings(a.Analyzers)
			sort.Strings(a.Unknown)
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}
