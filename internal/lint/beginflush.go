package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// BeginFlush checks the split-phase pairing contract on
// DeltaExchanger: every Begin* round a function opens must be closed
// by a matching Flush* (or the exchanger's Close) in the same
// function, and — when the pipeline depth is set from a compile-time
// constant in the same function — never more than that many rounds may
// be outstanding at once. A Begin with no Flush leaves the drainer
// holding a round forever; over-filling the pipeline blocks the poster
// in post() with no one to drain it.
var BeginFlush = &Analyzer{
	Name: "beginflush",
	Doc:  "every Begin* on a DeltaExchanger needs a matching Flush*/Close, at most PipeDepth rounds outstanding",
	Run:  runBeginFlush,
}

func isBeginName(name string) bool {
	return strings.HasPrefix(name, "Begin")
}

// isFlushName covers everything that retires outstanding rounds: the
// Flush family, Close (which drains), and the blocking round-trip
// helpers that flush internally.
func isFlushName(name string) bool {
	return strings.HasPrefix(name, "Flush") || name == "Close" ||
		name == "ExchangeValues" || name == "PushValues"
}

// exCall is one Begin*/Flush*-family call on a DeltaExchanger, in
// source order.
type exCall struct {
	pos   token.Pos
	recv  string
	name  string
	begin bool
}

func runBeginFlush(pass *Pass) {
	// The exchanger's own methods implement the protocol; the pairing
	// contract binds callers.
	if strings.TrimSuffix(pass.Pkg.Path(), "-test") == dgraphPath {
		return
	}
	for _, unit := range funcUnits(pass.Files) {
		checkBeginFlush(pass, unit.decl)
	}
}

func checkBeginFlush(pass *Pass, fd *ast.FuncDecl) {
	var calls []exCall
	escapes := map[string]bool{} // receiver strings passed out of the function
	depth := map[string]int{}    // receiver -> literal SetPipeDepth bound

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := calleeOf(pass.Info, call)
		if ok && c.pkg == dgraphPath && c.recv == "DeltaExchanger" {
			recv := recvString(call)
			switch {
			case isBeginName(c.name):
				calls = append(calls, exCall{call.Pos(), recv, c.name, true})
			case isFlushName(c.name):
				calls = append(calls, exCall{call.Pos(), recv, c.name, false})
			}
			return true
		}
		if ok && c.pkg == dgraphPath && c.recv == "Graph" && c.name == "SetPipeDepth" && len(call.Args) == 1 {
			if lit, okLit := ast.Unparen(call.Args[0]).(*ast.BasicLit); okLit && lit.Kind == token.INT {
				if v, err := strconv.Atoi(lit.Value); err == nil {
					// The graph's depth governs exchangers it vends;
					// record under the graph receiver and apply to any
					// exchanger rooted at it below.
					depth[recvString(call)] = v
				}
			}
			return true
		}
		// Any other call taking an exchanger-looking argument means the
		// pairing may complete elsewhere: disable Rule A for that
		// receiver.
		for _, a := range call.Args {
			if t := pass.Info.TypeOf(a); t != nil {
				if named := namedOf(t); named != nil && named.Obj().Name() == "DeltaExchanger" {
					escapes[exprString(a)] = true
				}
			}
		}
		return true
	})
	if len(calls) == 0 {
		return
	}

	// Returning the exchanger also moves the pairing obligation to the
	// caller.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if t := pass.Info.TypeOf(r); t != nil {
				if named := namedOf(t); named != nil && named.Obj().Name() == "DeltaExchanger" {
					escapes[exprString(r)] = true
				}
			}
		}
		return true
	})

	// Rule A: a receiver with Begin* calls but zero Flush*/Close calls
	// anywhere in the function (and which never escapes) leaves its
	// rounds permanently outstanding. Only simple receivers (locals and
	// parameters) are held to same-function pairing: an exchanger
	// reached through a field (s.ex) belongs to a longer-lived object
	// whose methods legitimately split Begin and Flush across calls.
	hasFlush := map[string]bool{}
	for _, c := range calls {
		if !c.begin {
			hasFlush[c.recv] = true
		}
	}
	reportedA := map[string]bool{}
	for _, c := range calls {
		if c.begin && !hasFlush[c.recv] && !escapes[c.recv] && !reportedA[c.recv] &&
			!strings.Contains(c.recv, ".") {
			reportedA[c.recv] = true
			pass.Reportf(c.pos,
				"%s.%s has no matching Flush*/Close on %s in this function: the round stays outstanding and the drainer never releases it",
				c.recv, c.name, c.recv)
		}
	}

	// Rule B: with a compile-time SetPipeDepth bound in scope, a linear
	// scan in source order must never see more than that many rounds
	// outstanding on one receiver. The bound recorded for a graph g
	// applies to exchangers spelled as a selection rooted at g or to
	// the sole exchanger of the function when only one graph bound
	// exists.
	if len(depth) == 0 {
		return
	}
	boundFor := func(recv string) (int, bool) {
		for g, d := range depth {
			if recv == g || strings.HasPrefix(recv, g+".") {
				return d, true
			}
		}
		if len(depth) == 1 && len(uniqueRecvs(calls)) == 1 {
			for _, d := range depth {
				return d, true
			}
		}
		return 0, false
	}
	outstanding := map[string]int{}
	reportedB := map[string]bool{}
	for _, c := range calls {
		if c.begin {
			outstanding[c.recv]++
			if b, ok := boundFor(c.recv); ok && outstanding[c.recv] > b && !reportedB[c.recv] {
				reportedB[c.recv] = true
				pass.Reportf(c.pos,
					"%d rounds outstanding on %s exceeds the pipeline depth %d set by SetPipeDepth: post() will block with no drainer progress",
					outstanding[c.recv], c.recv, b)
			}
		} else if outstanding[c.recv] > 0 {
			outstanding[c.recv]--
		}
	}
}

func uniqueRecvs(calls []exCall) map[string]bool {
	m := map[string]bool{}
	for _, c := range calls {
		m[c.recv] = true
	}
	return m
}
