package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CollectiveSym flags collective operations — calls every rank must
// make the same number of times, in the same order — that are only
// reachable under a rank-local condition: a branch on the rank id, or
// iteration over a map (whose order differs per process). This is the
// exact shape of the PR 4 deadlock, where a collective buried under
// `if c.Rank() == 0` left the other ranks waiting forever.
var CollectiveSym = &Analyzer{
	Name: "collectivesym",
	Doc:  "collectives must be reachable symmetrically on every rank, never only under rank-local conditions",
	Run:  runCollectiveSym,
}

// parWorkerFuncs is the set of internal/par entry points that run a
// caller-supplied body on worker goroutines. A collective or exchange
// round op reachable inside such a body is a diagnosed deadlock shape:
// the comm binds its collectives to the goroutine that created it, and
// a worker entering one while its siblings sweep on would hang the
// world — rounds must be driven from the main goroutine, between
// sweeps (the phase discipline of analytics/overlap.go).
var parWorkerFuncs = map[string]bool{
	"For":               true,
	"ForChunk":          true,
	"ReduceInt64":       true,
	"MaxInt64":          true,
	"MaxFloat64":        true,
	"SumFloat64Ordered": true,
}

// collectiveFuncs is the set of collective entry points: package-level
// mpi collectives, Comm.Barrier, and every DeltaExchanger/Graph method
// that internally performs a round of symmetric communication.
var collectiveFuncs = map[callee]bool{
	{mpiPath, "", "Bcast"}:                true,
	{mpiPath, "", "Allgather"}:            true,
	{mpiPath, "", "Allgatherv"}:           true,
	{mpiPath, "", "Alltoall"}:             true,
	{mpiPath, "", "Alltoallv"}:            true,
	{mpiPath, "", "Allreduce"}:            true,
	{mpiPath, "", "AllreduceScalar"}:      true,
	{mpiPath, "", "NeighborhoodComplete"}: true,
	{mpiPath, "Comm", "Barrier"}:          true,

	// The Transport surface: a collective invoked through the interface
	// or directly on a concrete transport binds every rank the same way
	// the Comm-level wrappers do.
	{mpiPath, "Transport", "Barrier"}:       true,
	{mpiPath, "Transport", "AllreduceI64"}:  true,
	{mpiPath, "Transport", "AllreduceF64"}:  true,
	{mpiPath, "Transport", "BcastI64"}:      true,
	{mpiPath, "Transport", "AllgathervI64"}: true,
	{mpiPath, "Transport", "AlltoallvI64"}:  true,
	{mpiPath, "Transport", "AlltoallvF64"}:  true,

	{mpiPath, "SocketTransport", "Barrier"}:       true,
	{mpiPath, "SocketTransport", "AllreduceI64"}:  true,
	{mpiPath, "SocketTransport", "AllreduceF64"}:  true,
	{mpiPath, "SocketTransport", "BcastI64"}:      true,
	{mpiPath, "SocketTransport", "AllgathervI64"}: true,
	{mpiPath, "SocketTransport", "AlltoallvI64"}:  true,
	{mpiPath, "SocketTransport", "AlltoallvF64"}:  true,

	{dgraphPath, "DeltaExchanger", "Begin"}:          true,
	{dgraphPath, "DeltaExchanger", "BeginTally"}:     true,
	{dgraphPath, "DeltaExchanger", "BeginValues"}:    true,
	{dgraphPath, "DeltaExchanger", "BeginPush"}:      true,
	{dgraphPath, "DeltaExchanger", "Flush"}:          true,
	{dgraphPath, "DeltaExchanger", "FlushTally"}:     true,
	{dgraphPath, "DeltaExchanger", "FlushValues"}:    true,
	{dgraphPath, "DeltaExchanger", "FlushPush"}:      true,
	{dgraphPath, "DeltaExchanger", "ExchangeValues"}: true,
	{dgraphPath, "DeltaExchanger", "PushValues"}:     true,
	{dgraphPath, "DeltaExchanger", "Close"}:          true,

	{dgraphPath, "Graph", "NewDeltaExchanger"}: true,
	{dgraphPath, "Graph", "AsyncExchanger"}:    true,
	{dgraphPath, "Graph", "Close"}:             true,
	{dgraphPath, "Graph", "ExchangeInt64"}:     true,
	{dgraphPath, "Graph", "ExchangeFloat64"}:   true,
	{dgraphPath, "Graph", "ExchangeUpdates"}:   true,
	{dgraphPath, "Graph", "PushToOwners"}:      true,
	{dgraphPath, "Graph", "GatherGlobal"}:      true,
}

func runCollectiveSym(pass *Pass) {
	// The simulator itself implements the collectives; inside it, calls
	// between them are plumbing, not user-facing asymmetry.
	if strings.TrimSuffix(pass.Pkg.Path(), "-test") == mpiPath {
		return
	}
	// Interprocedural layer: a same-package helper that performs a
	// collective (directly, or through up to maxHelperDepth further
	// helpers) makes every call TO it a collective call site — wrapping
	// the Barrier in a function must not launder the asymmetry.
	directName := map[*types.Func]string{}
	seed := func(fn *types.Func, decl *ast.FuncDecl) bool {
		found := ""
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c, ok := calleeOf(pass.Info, call); ok && collectiveFuncs[c] {
				found = c.name
				if c.recv != "" {
					found = c.recv + "." + c.name
				}
			}
			return true
		})
		if found != "" {
			directName[fn] = found
		}
		return found != ""
	}
	performers := pass.Graph.propagate(pass.Files, seed)
	for _, unit := range funcUnits(pass.Files) {
		w := &collectiveWalker{pass: pass, performers: performers, directName: directName}
		w.stmts(unit.decl.Body.List)
	}
}

// collectiveWalker walks one function body carrying the stack of
// rank-local conditions guarding the current statement.
type collectiveWalker struct {
	pass       *Pass
	reasons    []string // active rank-local guards, innermost last
	performers map[*types.Func]*types.Func
	directName map[*types.Func]string
}

// performedCollective names the collective a helper reaches, following
// the witness chain the propagation recorded.
func (w *collectiveWalker) performedCollective(fn *types.Func) string {
	for hops := 0; hops <= maxHelperDepth; hops++ {
		if name, ok := w.directName[fn]; ok {
			return name
		}
		next, ok := w.performers[fn]
		if !ok || next == nil {
			break
		}
		fn = next
	}
	return "a collective"
}

func (w *collectiveWalker) guarded() (string, bool) {
	if len(w.reasons) == 0 {
		return "", false
	}
	return w.reasons[len(w.reasons)-1], true
}

func (w *collectiveWalker) push(reason string, f func()) {
	w.reasons = append(w.reasons, reason)
	f()
	w.reasons = w.reasons[:len(w.reasons)-1]
}

func (w *collectiveWalker) stmts(list []ast.Stmt) {
	// Guard-clause handling: after `if rankLocal { ...return }`, the
	// remaining statements of the block are only reached by a
	// rank-dependent subset of ranks.
	for i, s := range list {
		w.stmt(s)
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil {
			if reason, rankLocal := w.rankLocalCond(ifs.Cond); rankLocal && terminates(ifs.Body) {
				w.push(reason, func() { w.stmts(list[i+1:]) })
				return
			}
		}
	}
}

// terminates reports whether a block always leaves the enclosing
// statement list (return / branch / panic) — the guard-clause shape.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *collectiveWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond) // the condition itself runs on every rank
		reason, rankLocal := w.rankLocalCond(st.Cond)
		body := func() { w.stmts(st.Body.List) }
		elseB := func() { w.stmt(st.Else) }
		if rankLocal {
			w.push(reason, body)
			w.push(reason, elseB)
		} else {
			body()
			elseB()
		}
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		if st.Post != nil {
			w.stmt(st.Post)
		}
		if reason, rankLocal := w.rankLocalCondOrNil(st.Cond); rankLocal {
			w.push(reason, func() { w.stmts(st.Body.List) })
		} else {
			w.stmts(st.Body.List)
		}
	case *ast.RangeStmt:
		w.expr(st.X)
		if t := w.pass.Info.TypeOf(st.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.push("map iteration order is rank-local", func() { w.stmts(st.Body.List) })
				return
			}
		}
		w.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		rankLocal := false
		reason := ""
		if st.Tag != nil {
			w.expr(st.Tag)
			reason, rankLocal = w.rankLocalCond(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			caseReason, caseLocal := reason, rankLocal
			for _, e := range cc.List {
				w.expr(e)
				if r, l := w.rankLocalCond(e); l {
					caseReason, caseLocal = r, true
				}
			}
			if caseLocal {
				w.push(caseReason, func() { w.stmts(cc.Body) })
			} else {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.DeferStmt:
		w.expr(st.Call.Fun)
		w.checkCall(st.Call)
		for _, a := range st.Call.Args {
			w.expr(a)
		}
	case *ast.GoStmt:
		w.expr(st.Call.Fun)
		w.checkCall(st.Call)
		for _, a := range st.Call.Args {
			w.expr(a)
		}
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

func (w *collectiveWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			w.checkCall(x)
			// A par fan-out runs its function-literal arguments on
			// worker goroutines: collectives and round ops inside them
			// deadlock (parWorkerFuncs). Walk those literals under the
			// par guard and the remaining arguments normally, then stop
			// the generic descent so the FuncLit case below does not
			// re-walk the bodies unguarded.
			if c, ok := calleeOf(w.pass.Info, x); ok && c.pkg == parPath && c.recv == "" && parWorkerFuncs[c.name] {
				reason := "inside a par." + c.name + " worker body, off the comm's main goroutine"
				for _, a := range x.Args {
					if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
						w.push(reason, func() { w.stmts(fl.Body.List) })
					} else {
						w.expr(a)
					}
				}
				return false
			}
		case *ast.FuncLit:
			// A literal inherits its lexical context: if it is declared
			// under a rank-local guard, any collective it performs runs
			// only on the guarded ranks when invoked here. (Literals
			// escaping to symmetric call sites are rare and accept an
			// explicit lint:ignore.)
			w.stmts(x.Body.List)
			return false
		}
		return true
	})
}

func (w *collectiveWalker) checkCall(call *ast.CallExpr) {
	reason, guarded := w.guarded()
	if !guarded {
		return
	}
	if c, ok := calleeOf(w.pass.Info, call); ok && collectiveFuncs[c] {
		name := c.name
		if c.recv != "" {
			name = c.recv + "." + name
		}
		w.pass.Reportf(call.Pos(),
			"collective %s reachable only under rank-local condition (%s): every rank must make the same collective calls in the same order",
			name, reason)
		return
	}
	// Interprocedural: a guarded call to a same-package helper that
	// performs a collective somewhere down its call chain is the same
	// deadlock, one wrapper removed.
	if fn := calleeFunc(w.pass.Info, call); fn != nil {
		if _, performs := w.performers[fn]; performs {
			w.pass.Reportf(call.Pos(),
				"call to %s, which performs collective %s, reachable only under rank-local condition (%s): every rank must make the same collective calls in the same order",
				fn.Name(), w.performedCollective(fn), reason)
		}
	}
}

// rankLocalCond reports whether a condition's value can differ between
// ranks of the same job: it mentions the rank id (a Rank() call or a
// rank-named variable).
func (w *collectiveWalker) rankLocalCond(cond ast.Expr) (string, bool) {
	if cond == nil {
		return "", false
	}
	found := ""
	ast.Inspect(cond, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if c, ok := calleeOf(w.pass.Info, x); ok && c.name == "Rank" {
				found = "branches on Rank()"
				return false
			}
		case *ast.Ident:
			if rankIdent(x.Name) {
				found = "branches on " + x.Name
				return false
			}
		}
		return true
	})
	return found, found != ""
}

func (w *collectiveWalker) rankLocalCondOrNil(cond ast.Expr) (string, bool) {
	if cond == nil {
		return "", false
	}
	return w.rankLocalCond(cond)
}

// rankIdent reports whether a variable name denotes this rank's id.
// Counts of ranks (nranks, numRanks, size) are the same on every rank
// and deliberately excluded.
func rankIdent(name string) bool {
	switch strings.ToLower(name) {
	case "rank", "myrank", "selfrank", "rankid", "me", "myid":
		return true
	}
	return false
}
