package lint

import (
	"go/ast"
)

// ErrCheck is the curated unchecked-error check for the artifact and
// file-handling paths: results written to disk silently truncate when
// Create/Encode/Flush/Close errors are dropped, and a benchmark
// harness that cannot trust its own JSON is worse than none. Only the
// os / encoding-json / bufio / tabwriter surfaces the harness actually
// uses are checked — this is a contract gate, not a general linter.
// A deferred Close is allowed (the error has nowhere to go); a bare
// `f.Close()` statement is not.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error results on artifact/file-handling paths must be checked",
	Run:  runErrCheck,
}

// errFuncs maps callees to check; all of these return error as their
// only or last result.
var errFuncs = map[callee]bool{
	{"os", "", "Chdir"}:     true,
	{"os", "", "Mkdir"}:     true,
	{"os", "", "MkdirAll"}:  true,
	{"os", "", "Remove"}:    true,
	{"os", "", "RemoveAll"}: true,
	{"os", "", "Rename"}:    true,
	{"os", "", "WriteFile"}: true,
	{"os", "File", "Close"}: true,
	{"os", "File", "Sync"}:  true,

	{"encoding/json", "Encoder", "Encode"}: true,

	{"bufio", "Writer", "Flush"}:          true,
	{"text/tabwriter", "Writer", "Flush"}: true,

	{"io", "Closer", "Close"}:      true,
	{"io", "WriteCloser", "Close"}: true,
}

func runErrCheck(pass *Pass) {
	for _, unit := range funcUnits(pass.Files) {
		checkErrs(pass, unit.decl)
	}
}

func checkErrs(pass *Pass, fd *ast.FuncDecl) {
	flag := func(call *ast.CallExpr) {
		c, ok := calleeOf(pass.Info, call)
		if !ok || !errFuncs[c] {
			return
		}
		name := c.name
		if c.recv != "" {
			name = c.recv + "." + name
		}
		pass.Reportf(call.Pos(), "error result of %s.%s is discarded: check it or the artifact silently goes bad", c.pkg, name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				flag(call)
			}
		case *ast.AssignStmt:
			// _ = f.Close() and f, _ := ... shapes: flag when the error
			// position is blanked.
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || len(st.Lhs) == 0 {
				return true
			}
			if isBlank(st.Lhs[len(st.Lhs)-1]) {
				flag(call)
			}
		case *ast.GoStmt:
			flag(st.Call)
		}
		return true
	})
}
