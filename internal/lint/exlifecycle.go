package lint

import (
	"go/ast"
	"strings"
)

// ExLifecycle checks that every constructed exchanger — and every
// Graph switched into async-exchange mode, which owns a drainer
// goroutine — reaches Close() in the function that constructed it:
// directly, via defer, or via t.Cleanup. An exchanger that escapes the
// function (returned, stored, handed to another call) transfers the
// obligation to its new owner. Leaked exchangers leak a drainer
// goroutine and its posted rounds — the PR 4 lifecycle bug.
var ExLifecycle = &Analyzer{
	Name: "exlifecycle",
	Doc:  "every constructed DeltaExchanger (and async-routed Graph) must reach Close() on all paths",
	Run:  runExLifecycle,
}

func runExLifecycle(pass *Pass) {
	inDgraph := strings.TrimSuffix(pass.Pkg.Path(), "-test") == dgraphPath
	for _, unit := range funcUnits(pass.Files) {
		// The engine's own methods vend, cache, and close exchangers
		// by design; its package-level functions and tests are callers
		// like any other and are held to the contract.
		if inDgraph && recvTypeName(unit.decl) != "" {
			continue
		}
		checkExLifecycle(pass, unit.decl)
	}
}

// owned is one value this function must close.
type ownedValue struct {
	call *ast.CallExpr // construction site
	recv string        // the variable it was bound to ("" if discarded)
	what string        // diagnostic noun
}

func checkExLifecycle(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	var owned []ownedValue
	constructedGraphs := map[string]bool{}  // graphs built in this function
	graphVars := map[string]*ast.CallExpr{} // graph recv -> first async use
	closed := map[string]bool{}
	escaped := map[string]bool{}

	bindLHS := func(as *ast.AssignStmt, i int) string {
		if as == nil || i >= len(as.Lhs) {
			return ""
		}
		if isBlank(as.Lhs[i]) {
			return "_"
		}
		return exprString(as.Lhs[i])
	}

	// Single pass in source order over all statements, including
	// closures (t.Cleanup bodies, defers).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				c, ok := calleeOf(info, call)
				if !ok || c.pkg != dgraphPath {
					continue
				}
				idx := i
				if len(st.Rhs) == 1 {
					idx = 0
				}
				switch {
				case c.recv == "Graph" && c.name == "NewDeltaExchanger":
					owned = append(owned, ownedValue{call, bindLHS(st, idx), "exchanger"})
				case c.recv == "Graph" && c.name == "AsyncExchanger":
					// The graph retains (and closes) the exchanger it
					// vends; the *graph* must be closed instead. Treat
					// like an async-mode use of the graph receiver.
					if g := recvString(call); g != "" {
						graphVars[g] = call
					}
				case c.recv == "" && strings.HasPrefix(c.name, "FromEdge"):
					// Graph construction. The graph only becomes a
					// close obligation if this function also switches
					// it into async mode (it then owns a drainer); a
					// graph received as a parameter is its caller's
					// problem.
					if b := bindLHS(st, idx); b != "" && b != "_" {
						constructedGraphs[b] = true
					}
				}
			}
		case *ast.CallExpr:
			c, ok := calleeOf(info, st)
			if !ok {
				return true
			}
			if c.pkg == dgraphPath {
				recv := recvString(st)
				switch c.name {
				case "Close":
					closed[recv] = true
				case "SetAsyncExchange", "AsyncExchanger":
					if c.recv == "Graph" && recv != "" {
						if _, seen := graphVars[recv]; !seen {
							graphVars[recv] = st
						}
					}
				}
			}
			// t.Cleanup(func() { ... x.Close() ... }) and any helper
			// taking a closure: Close calls inside are found by this
			// same Inspect (it descends into FuncLits), so nothing
			// special is needed for detection. But passing the value
			// itself to another function transfers ownership:
			for _, a := range st.Args {
				if t := info.TypeOf(a); t != nil {
					if named := namedOf(t); named != nil && named.Obj().Name() == "DeltaExchanger" {
						escaped[exprString(a)] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if t := info.TypeOf(r); t != nil {
					if named := namedOf(t); named != nil {
						switch named.Obj().Name() {
						case "DeltaExchanger", "Graph":
							escaped[exprString(r)] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if t := info.TypeOf(st.Value); t != nil {
				if named := namedOf(t); named != nil && named.Obj().Name() == "DeltaExchanger" {
					escaped[exprString(st.Value)] = true
				}
			}
		}
		return true
	})

	// Field/container stores escape too: x.ex = ex.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				ri := i
				if len(as.Rhs) == 1 {
					ri = 0
				}
				if ri < len(as.Rhs) {
					escaped[exprString(as.Rhs[ri])] = true
				}
			}
		}
		return true
	})

	for _, o := range owned {
		if o.recv == "" || o.recv == "_" {
			pass.Reportf(o.call.Pos(),
				"constructed %s is never bound to a variable, so it can never be closed: its drainer goroutine leaks", o.what)
			continue
		}
		if closed[o.recv] || escaped[o.recv] {
			continue
		}
		pass.Reportf(o.call.Pos(),
			"%s %s is never closed in this function: defer %s.Close() (or t.Cleanup) or the drainer goroutine leaks",
			o.what, o.recv, o.recv)
	}
	for g, call := range graphVars {
		if !constructedGraphs[g] || closed[g] || escaped[g] {
			continue
		}
		pass.Reportf(call.Pos(),
			"graph %s runs an async exchanger but is never closed in this function: defer %s.Close() (or t.Cleanup) or the drainer goroutine leaks",
			g, g)
	}
}
