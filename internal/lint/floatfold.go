package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatFold flags floating-point folds whose summation order is not
// fixed by the program: FP addition is not associative, so any fold
// ordered by thread scheduling or message arrival produces different
// bits run to run.
//
//   - Inside a par.For / par.ForChunk worker body, accumulating a
//     float into a variable captured from the enclosing scope races
//     and (even when locked) folds in schedule order. The repo's
//     deterministic idiom is par.SumFloat64Ordered, which folds
//     per-chunk partials in chunk order.
//   - A loop that receives from other ranks (mpi.Recv64 /
//     Recv64Tag) and accumulates floats folds in arrival order —
//     socket-substrate arrival order is nondeterministic. The idiom is
//     TallyRound.FoldFloat, which folds contributions in rank order.
//   - A function registered with sync.Once.Do must only run through
//     the Once: calling it directly as well reintroduces exactly the
//     race the memoization guard exists to prevent (two goroutines
//     initializing concurrently, one observing a half-written result).
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "float folds must run in a program-fixed order (par.SumFloat64Ordered, TallyRound.FoldFloat), and sync.Once-guarded initializers must never be called directly",
	Run:  runFloatFold,
}

// parWorkerArg maps par entry points to the index of the worker
// function-literal argument whose body runs concurrently.
var parWorkerArg = map[callee]int{
	{parPath, "", "For"}:               3,
	{parPath, "", "ForChunk"}:          3,
	{parPath, "", "ReduceInt64"}:       3,
	{parPath, "", "MaxInt64"}:          4,
	{parPath, "", "MaxFloat64"}:        4,
	{parPath, "", "SumFloat64Ordered"}: 4,
}

var recvFuncs = map[callee]bool{
	{mpiPath, "", "Recv64"}:    true,
	{mpiPath, "", "Recv64Tag"}: true,
}

func runFloatFold(pass *Pass) {
	base := strings.TrimSuffix(pass.Pkg.Path(), "-test")
	onceTargets, onceExempt := collectOnceTargets(pass)
	for _, unit := range funcUnits(pass.Files) {
		if base != parPath {
			checkParFloatFold(pass, unit.decl)
		}
		if base != mpiPath {
			checkArrivalOrderFold(pass, unit.decl)
		}
		checkOnceBypass(pass, unit.decl, onceTargets, onceExempt)
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatAccumulations walks a subtree and calls found for every
// compound (+=, -=) or x = x + v float accumulation whose target root
// identifier is declared outside the given scope node.
func floatAccumulations(info *types.Info, body ast.Node, scope ast.Node, found func(pos token.Pos, target string)) {
	scopeLocal := func(id *ast.Ident) bool {
		obj := objOf(info, id)
		return obj != nil && obj.Pos() >= scope.Pos() && obj.Pos() <= scope.End()
	}
	outerDeclared := func(e ast.Expr) (string, bool) {
		root := e
		for {
			switch x := ast.Unparen(root).(type) {
			case *ast.Ident:
				if scopeLocal(x) {
					return "", false // worker-local: fine
				}
				if objOf(info, x) == nil {
					return "", false
				}
				return exprString(e), true
			case *ast.SelectorExpr:
				root = x.X
			case *ast.IndexExpr:
				// hc[v] += ... where v is the worker's own index:
				// each invocation owns its slot, so there is no
				// cross-thread fold — the slot-owned scatter idiom.
				ownSlot := false
				ast.Inspect(x.Index, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && scopeLocal(id) {
						ownSlot = true
					}
					return true
				})
				if ownSlot {
					return "", false
				}
				root = x.X
			case *ast.StarExpr:
				root = x.X
			default:
				return "", false
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			if !isFloatExpr(info, l) {
				continue
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				if name, outer := outerDeclared(l); outer {
					found(as.Rhs[i].Pos(), name)
				}
			case token.ASSIGN:
				bin, isBin := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr)
				if isBin && (bin.Op == token.ADD || bin.Op == token.SUB) && exprString(bin.X) == exprString(l) {
					if name, outer := outerDeclared(l); outer {
						found(as.Rhs[i].Pos(), name)
					}
				}
			}
		}
		return true
	})
}

// checkParFloatFold flags float accumulation into captured variables
// inside par worker bodies.
func checkParFloatFold(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := calleeOf(info, call)
		if !ok {
			return true
		}
		argIdx, isPar := parWorkerArg[c]
		if !isPar || argIdx >= len(call.Args) {
			return true
		}
		worker, ok := ast.Unparen(call.Args[argIdx]).(*ast.FuncLit)
		if !ok {
			return true
		}
		floatAccumulations(info, worker.Body, worker, func(pos token.Pos, target string) {
			pass.Reportf(pos,
				"float accumulation into captured %s inside a par.%s worker: the fold order follows thread scheduling, so the sum's bits differ run to run; use par.SumFloat64Ordered (chunk-ordered partials) instead",
				target, c.name)
		})
		return true
	})
}

// checkArrivalOrderFold flags float accumulation inside loops that
// receive from other ranks: the fold follows message arrival order.
func checkArrivalOrderFold(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		receives := false
		ast.Inspect(body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if c, ok := calleeOf(info, call); ok && recvFuncs[c] {
					receives = true
				}
			}
			return true
		})
		if !receives {
			return true
		}
		floatAccumulations(info, body, n, func(pos token.Pos, target string) {
			pass.Reportf(pos,
				"float accumulation into %s inside a receive loop: the fold follows message arrival order, which the socket substrate does not fix; fold contributions in rank order (TallyRound.FoldFloat) instead",
				target)
		})
		return false // inner loops already covered by this walk
	})
}

// onceTarget records one function registered with sync.Once.Do and
// where.
type onceTarget struct {
	oncePos token.Pos
	once    string
}

// collectOnceTargets finds every same-package function passed to a
// sync.Once's Do anywhere in the package. The second result exempts
// the call wrapped inside a Do(func(){ ... }) literal — that call IS
// the guarded path, not a bypass of it.
func collectOnceTargets(pass *Pass) (map[*types.Func]onceTarget, map[*ast.CallExpr]bool) {
	info := pass.Info
	out := map[*types.Func]onceTarget{}
	exempt := map[*ast.CallExpr]bool{}
	for _, unit := range funcUnits(pass.Files) {
		ast.Inspect(unit.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Do" {
				return true
			}
			named := namedOf(info.TypeOf(sel.X))
			if named == nil || named.Obj().Name() != "Once" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return true
			}
			// Do(g.classifyBoundary) — a method value or plain func.
			arg := ast.Unparen(call.Args[0])
			var obj types.Object
			switch a := arg.(type) {
			case *ast.SelectorExpr:
				if s, ok := info.Selections[a]; ok {
					obj = s.Obj()
				} else {
					obj = info.Uses[a.Sel]
				}
			case *ast.Ident:
				obj = info.Uses[a]
			case *ast.FuncLit:
				// A literal can only run through this Do; look inside
				// for the single wrapped call — Do(func() { g.classify() }).
				if len(a.Body.List) == 1 {
					if es, ok := a.Body.List[0].(*ast.ExprStmt); ok {
						if inner, ok := es.X.(*ast.CallExpr); ok {
							if fn := calleeFunc(info, inner); fn != nil {
								obj = fn
								exempt[inner] = true
							}
						}
					}
				}
			}
			if fn, ok := obj.(*types.Func); ok && pass.Graph.DeclOf(fn) != nil {
				if _, seen := out[fn]; !seen {
					out[fn] = onceTarget{oncePos: call.Pos(), once: exprString(sel.X)}
				}
			}
			return true
		})
	}
	return out, exempt
}

// checkOnceBypass flags direct calls to functions that elsewhere run
// under sync.Once.Do: lazily-memoized state must be entered through
// the Once, or concurrent callers race on the initialization (the
// pre-PR-9 classifyBoundary bug shape).
func checkOnceBypass(pass *Pass, fd *ast.FuncDecl, targets map[*types.Func]onceTarget, exempt map[*ast.CallExpr]bool) {
	if len(targets) == 0 {
		return
	}
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || exempt[call] {
			return true
		}
		// The registration itself (once.Do(f)) passes f, it does not
		// call it; only genuine call expressions with f as the callee
		// count.
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		t, isTarget := targets[fn]
		if !isTarget {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s is guarded by %s.Do (%s) but called directly here: bypassing the Once races with the memoized initialization; route every caller through the Once",
			fn.Name(), t.once, pass.Fset.Position(t.oncePos))
		return true
	})
}
