package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc turns the repo's AllocsPerRun == 0 benchmarks into a
// static guarantee: a function whose doc comment carries the
// //repro:hotpath directive must not contain heap-allocating
// constructs. Flagged: make/new, slice- and map-typed composite
// literals, &T{...}, fmt calls, function literals, go statements,
// string concatenation, append calls that do not follow the
// self-append discipline, and implicit interface boxing. Allowed by
// design: allocation inside a cap-guard (`if cap(buf) < n { buf =
// make(...) }` — the arena-grow idiom runs only until steady state)
// and anything inside a panic argument (failure paths may allocate).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//repro:hotpath functions must be free of heap allocations in steady state",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	probed := map[*types.Func][]allocFinding{}
	for _, unit := range funcUnits(pass.Files) {
		if hasDirective(unit.decl, "//repro:hotpath") {
			checkHotPath(pass, unit.decl, func(pos token.Pos, format string, args ...any) {
				pass.Reportf(pos, format, args...)
			})
			checkHotPathHelpers(pass, unit.decl, probed)
		}
	}
}

// allocFinding is one allocation a helper probe found.
type allocFinding struct {
	pos token.Pos
	msg string
}

// checkHotPathHelpers closes the "wrap the allocation in a helper"
// evasion: every direct same-package callee of a //repro:hotpath
// function is probed with the same allocation rules (cap-guard growth,
// self-append, and panic paths still allowed), and a helper that
// allocates is reported at the hot-path call site. One level deep by
// design — a helper that itself needs helpers on the hot path should
// carry its own //repro:hotpath annotation, which checks it directly.
func checkHotPathHelpers(pass *Pass, fd *ast.FuncDecl, probed map[*types.Func][]allocFinding) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Failure paths may allocate: don't descend into panic args.
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		decl := pass.Graph.DeclOf(fn)
		if decl == nil || hasDirective(decl, "//repro:hotpath") {
			return true // not same-package, or already checked directly
		}
		finds, done := probed[fn]
		if !done {
			checkHotPath(pass, decl, func(pos token.Pos, format string, args ...any) {
				finds = append(finds, allocFinding{pos, fmt.Sprintf(format, args...)})
			})
			probed[fn] = finds
		}
		if len(finds) > 0 {
			f := finds[0]
			pass.Reportf(call.Pos(),
				"hot-path call to %s, which allocates at %s (%s): helpers reached from a //repro:hotpath function must follow the same allocation discipline",
				fn.Name(), pass.Fset.Position(f.pos), f.msg)
		}
		return true
	})
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	info := pass.Info

	// Parameter objects, for the `return append(param, ...)` allowance
	// (append-into-caller-buffer is the arena idiom, the caller owns
	// the growth).
	params := map[types.Object]bool{}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if o := info.Defs[name]; o != nil {
				params[o] = true
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					params[o] = true
				}
			}
		}
	}
	paramRooted := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				return params[objOf(info, x)]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.CallExpr:
				// append(e.buf[:0], ...) style nesting
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
					e = x.Args[0]
					continue
				}
				return false
			default:
				return false
			}
		}
	}

	type ctx struct {
		inPanic    bool
		inCapGuard bool
		inReturn   bool
	}
	var walk func(n ast.Node, c ctx)

	isCapGuard := func(cond ast.Expr) bool {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					if o, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && o != nil {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}

	// selfAppend reports whether an assignment statement follows the
	// allowed `x = append(x, ...)` / `x = append(x[:0], ...)` shape.
	selfAppend := func(as *ast.AssignStmt) map[ast.Expr]bool {
		ok := map[ast.Expr]bool{}
		if len(as.Lhs) != len(as.Rhs) {
			return ok
		}
		for i, rhs := range as.Rhs {
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall || len(call.Args) == 0 {
				continue
			}
			id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
			if !isIdent || id.Name != "append" {
				continue
			}
			base := call.Args[0]
			baseStr := exprString(base)
			if s, isSlice := ast.Unparen(base).(*ast.SliceExpr); isSlice {
				baseStr = exprString(s.X)
			}
			if baseStr == exprString(as.Lhs[i]) {
				ok[call] = true
			}
		}
		return ok
	}

	allowedAppends := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, okAs := n.(*ast.AssignStmt); okAs {
			for e := range selfAppend(as) {
				allowedAppends[e] = true
			}
		}
		return true
	})

	boxCheck := func(pos token.Pos, have types.Type, want types.Type, what string, c ctx) {
		if c.inPanic || have == nil || want == nil {
			return
		}
		if _, isIface := want.Underlying().(*types.Interface); !isIface {
			return
		}
		if _, haveIface := have.Underlying().(*types.Interface); haveIface {
			return
		}
		switch have.Underlying().(type) {
		case *types.Pointer, *types.Signature, *types.Map, *types.Slice, *types.Chan:
			// Pointer-shaped values convert without allocating.
			return
		}
		if have == types.Typ[types.UntypedNil] {
			return
		}
		if b, okB := have.Underlying().(*types.Basic); okB && b.Info()&types.IsUntyped != 0 {
			return
		}
		report(pos, "%s boxes %s into %s: interface conversion allocates on the hot path", what, have, want)
	}

	walk = func(n ast.Node, c ctx) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init, c)
			}
			walk(x.Cond, c)
			bodyCtx := c
			if isCapGuard(x.Cond) {
				bodyCtx.inCapGuard = true
			}
			walk(x.Body, bodyCtx)
			if x.Else != nil {
				walk(x.Else, bodyCtx)
			}
			return
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "panic":
					pc := c
					pc.inPanic = true
					for _, a := range x.Args {
						walk(a, pc)
					}
					return
				case "make", "new":
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && !c.inCapGuard && !c.inPanic {
						report(x.Pos(), "%s allocates on the hot path (allowed only inside a cap/len growth guard)", id.Name)
					}
				case "append":
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && !c.inPanic {
						okHere := allowedAppends[x] || c.inCapGuard ||
							(c.inReturn && len(x.Args) > 0 && paramRooted(x.Args[0]))
						if !okHere {
							report(x.Pos(), "append result does not feed back into its base: growth escapes the self-append discipline and may allocate every round")
						}
					}
				}
			}
			isFmt := false
			if callee, ok := calleeOf(info, x); ok {
				if callee.pkg == "fmt" && !c.inPanic {
					isFmt = true
					report(x.Pos(), "fmt.%s allocates (boxing + formatting) on the hot path", callee.name)
				}
			}
			// Implicit boxing at the call boundary (the fmt finding
			// above already covers its own argument boxing).
			if sig, ok := info.TypeOf(x.Fun).(*types.Signature); ok && sig != nil && !isFmt {
				np := sig.Params().Len()
				for i, a := range x.Args {
					var want types.Type
					switch {
					case sig.Variadic() && i >= np-1:
						if s, okS := sig.Params().At(np - 1).Type().(*types.Slice); okS && !x.Ellipsis.IsValid() {
							want = s.Elem()
						}
					case i < np:
						want = sig.Params().At(i).Type()
					}
					boxCheck(a.Pos(), info.TypeOf(a), want, "argument", c)
				}
			}
			for _, a := range x.Args {
				walk(a, c)
			}
			walk(x.Fun, c)
			return
		case *ast.CompositeLit:
			if !c.inPanic && !c.inCapGuard {
				if t := info.TypeOf(x); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						report(x.Pos(), "composite %s literal allocates on the hot path", t)
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && !c.inPanic {
				if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					report(x.Pos(), "&composite literal escapes to the heap on the hot path")
				}
			}
		case *ast.FuncLit:
			if !c.inPanic {
				report(x.Pos(), "function literal allocates a closure on the hot path")
			}
			return // don't double-report its body
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine on the hot path")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && !c.inPanic {
				if t := info.TypeOf(x); t != nil {
					if b, okB := t.Underlying().(*types.Basic); okB && b.Info()&types.IsString != 0 && b.Info()&types.IsUntyped == 0 {
						report(x.Pos(), "string concatenation allocates on the hot path")
					}
				}
			}
		case *ast.ReturnStmt:
			rc := c
			rc.inReturn = true
			for _, r := range x.Results {
				walk(r, rc)
			}
			return
		case *ast.AssignStmt:
			// Boxing via assignment to an interface-typed lvalue.
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if x.Tok == token.DEFINE {
						continue
					}
					boxCheck(x.Rhs[i].Pos(), info.TypeOf(x.Rhs[i]), info.TypeOf(x.Lhs[i]), "assignment", c)
				}
			}
		}
		// Generic descent.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m, c)
			return false
		})
	}
	for _, s := range fd.Body.List {
		walk(s, ctx{})
	}
}
