package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// The injection-regression tests re-introduce the repo's historical
// determinism bugs into copies of the REAL sources — not simplified
// fixtures — and assert the suite reports each at the expected
// file:line. They are the proof that detlint would have caught the
// bugs when they shipped:
//
//   - the PR 5 LabelProp community count (each rank reported the size
//     of its rank-local label map),
//   - the pre-ordered-reduction PageRank norm (a captured += inside a
//     par worker),
//   - removal of the PR 9 boundary-classification race fix (a
//     nil-check guard calling the sync.Once-protected initializer
//     directly).
//
// Each test also runs the analyzer over the pristine copy first: the
// copy must be clean, so the asserted diagnostic is caused by the
// injected edit alone.

// copyPackage copies every non-test .go file of srcDir into a fresh
// directory under testdata/ (inside the module, so LoadDir's
// module-aware importer resolves the repro/... imports; testdata is
// invisible to the go tool, so a stray copy can never join the build).
func copyPackage(t *testing.T, srcDir string) string {
	t.Helper()
	dst, err := os.MkdirTemp("testdata", "inject-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.RemoveAll(dst); err != nil {
			t.Error(err)
		}
	})
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// runInjection checks both directions: the pristine copy of srcDir is
// clean under the analyzer, and after replacing oldCode with newCode
// in file, the analyzer reports a diagnostic matching wantMsg exactly
// on the line containing marker.
func runInjection(t *testing.T, a *lint.Analyzer, srcDir, file, oldCode, newCode, marker, wantMsg string) {
	t.Helper()
	if testing.Short() {
		t.Skip("injection tests type-check full packages twice")
	}
	dir := copyPackage(t, srcDir)

	pristine, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("load pristine copy: %v", err)
	}
	for _, d := range lint.RunAnalyzers(pristine, []*lint.Analyzer{a}) {
		t.Errorf("pristine copy of %s not clean: %s", srcDir, d)
	}
	if t.Failed() {
		t.FailNow()
	}

	path := filepath.Join(dir, file)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), oldCode) {
		t.Fatalf("%s no longer contains the injection site %q — update the injection test to the current source", file, oldCode)
	}
	mutated := strings.Replace(string(src), oldCode, newCode, 1)
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	wantLine := 0
	for i, l := range strings.Split(mutated, "\n") {
		if strings.Contains(l, marker) {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatalf("marker %q not found in mutated %s", marker, file)
	}

	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("load mutated copy: %v", err)
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, string(filepath.Separator)+file) &&
			d.Pos.Line == wantLine && strings.Contains(d.Message, wantMsg) {
			return
		}
	}
	t.Errorf("injected bug not reported at %s:%d (want message containing %q); got %d finding(s):", file, wantLine, wantMsg, len(diags))
	for _, d := range diags {
		t.Errorf("  %s", d)
	}
}

// TestInjectLabelPropRankLocalCount re-introduces the PR 5 LabelProp
// bug: the community count taken as the size of the rank-local label
// map instead of the hash-partitioned global distinct count, so every
// rank reported a different number.
func TestInjectLabelPropRankLocalCount(t *testing.T) {
	runInjection(t, lint.MapOrder,
		filepath.Join("..", "analytics"), "analytics.go",
		"\tcomms := globalDistinct(g, labels[:g.NLocal])\n",
		"\tdistinct := make(map[int64]struct{}, 64)\n"+
			"\tfor _, l := range labels[:g.NLocal] {\n"+
			"\t\tdistinct[l] = struct{}{}\n"+
			"\t}\n"+
			"\tcomms := int64(len(distinct))\n",
		"Value: float64(comms)",
		"rank-local map count flows into report field")
}

// TestInjectUnorderedParFloatSum replaces the PageRank norm's
// chunk-ordered reduction with the naive captured accumulator it
// replaced: the fold order follows thread scheduling, so the norm's
// bits differed across thread counts.
func TestInjectUnorderedParFloatSum(t *testing.T) {
	runInjection(t, lint.FloatFold,
		filepath.Join("..", "analytics"), "analytics.go",
		"\t\t\tnormSrc = next\n"+
			"\t\t\tnL, fpart = par.SumFloat64Ordered(0, g.NLocal, e.threads, fpart, normBody)\n",
		"\t\t\tpar.ForChunk(0, g.NLocal, e.threads, func(lo, hi, tid int) {\n"+
			"\t\t\t\tfor i := lo; i < hi; i++ {\n"+
			"\t\t\t\t\tnL += next[i]\n"+
			"\t\t\t\t}\n"+
			"\t\t\t})\n",
		"nL += next[i]",
		"float accumulation into captured nL inside a par.ForChunk worker")
}

// TestInjectOnceBypass removes the PR 9 race fix from one accessor: a
// nil-check guard calling classifyBoundary directly races with the
// sync.Once the other accessors still go through.
func TestInjectOnceBypass(t *testing.T) {
	runInjection(t, lint.FloatFold,
		filepath.Join("..", "dgraph"), "dgraph.go",
		"\tg.boundaryOnce.Do(g.classifyBoundary)\n\treturn g.boundaryMark[v]\n",
		"\tif g.boundaryMark == nil {\n"+
			"\t\tg.classifyBoundary()\n"+
			"\t}\n"+
			"\treturn g.boundaryMark[v]\n",
		"g.classifyBoundary()",
		"bypassing the Once races with the memoized initialization")
}
