// Package lint is the project's static-analysis suite: a set of
// analyzers that encode the exchange engine's unwritten contracts —
// the rules whose violations have historically only surfaced at
// runtime, sometimes only under -race at pipeline depth 4 — as
// compile-time checks with file:line diagnostics. The analyzers are
// documented contract-by-contract in docs/INVARIANTS.md:
//
//   - collectivesym: collectives must be reachable on every rank
//     (the conditional-collective deadlock trap).
//   - arenaescape: decode-arena- and Recv64-backed slices must not
//     escape their aliasing window.
//   - beginflush: every Begin* on a DeltaExchanger needs a matching
//     Flush* (or Close), bounded by the pipeline depth.
//   - exlifecycle: every constructed exchanger (and async-routed
//     graph) must reach Close() on all paths.
//   - hotpathalloc: functions annotated //repro:hotpath must contain
//     no heap-allocating constructs.
//   - errcheck: a curated unchecked-error check for the artifact and
//     file-handling paths.
//   - maporder: map-iteration order must not reach wire frames, float
//     folds, or report fields (the rank-local-count bug shape).
//   - floatfold: float sums fold in a fixed order — par workers use
//     chunk-ordered reductions, receive loops fold in rank order, and
//     sync.Once-guarded initializers are never called directly.
//   - wallclock: no ambient time.Now/math/rand on the
//     //repro:deterministic surface outside //repro:timing decls.
//   - seedflow: RNG constructor seeds trace to a parameter, config
//     field, or constant — never to the clock or a mutable global.
//
// The detlint four and collectivesym/hotpathalloc reason
// interprocedurally through a per-package call graph (helper depth 4),
// so moving a violation into a helper does not hide it.
//
// The suite is intentionally self-contained on the standard library's
// go/ast + go/types (no golang.org/x/tools dependency): packages are
// enumerated with `go list`, parsed with go/parser, and type-checked
// with a module-aware importer that falls back to the source importer
// for the standard library. cmd/reprolint is the multichecker driver;
// fixtures under testdata/ are exercised analysistest-style by the
// package tests.
//
// Findings can be suppressed with an explicit, reasoned directive on
// the preceding (or same) line:
//
//	//lint:ignore analyzername reason for the exception
//
// A bare ignore — missing the analyzer name or the reason — is itself
// reported as an error: exceptions must say why they are safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:ignore
	// directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run reports the analyzer's findings for one package via
	// pass.Reportf.
	Run func(pass *Pass)
}

// All is the suite cmd/reprolint runs, in reporting order. The first
// six enforce the exchange engine's structural contracts; the detlint
// family (maporder, floatfold, wallclock, seedflow) enforces the
// determinism contract — results bit-identical across ranks, threads,
// substrates, and runs at fixed seeds — at compile time.
var All = []*Analyzer{
	CollectiveSym,
	ArenaEscape,
	BeginFlush,
	ExLifecycle,
	HotPathAlloc,
	ErrCheck,
	MapOrder,
	FloatFold,
	WallClock,
	SeedFlow,
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way compilers do, so editors can jump
// to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Graph is the package's call graph — the interprocedural layer:
	// analyzers use it to see collectives, allocations, wall-clock
	// reads, and shared-state writes through bounded-depth chains of
	// same-package helper calls, closing the "wrap it in a function"
	// evasion the intra-procedural checks had.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	reason    string
	bare      bool // missing analyzer list or reason
	used      bool
}

// parseIgnores collects the lint:ignore directives of a file, keyed by
// the line they annotate (their own line — a directive suppresses
// findings on its line and on the following line).
func parseIgnores(fset *token.FileSet, file *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				d.bare = true
			} else {
				d.analyzers = map[string]bool{}
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// RunAnalyzers runs every analyzer in analyzers over pkg and returns
// the surviving findings: diagnostics suppressed by a reasoned
// //lint:ignore directive are dropped, bare directives are reported as
// findings of their own, and the rest are sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	graph := buildCallGraph(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Graph:    graph,
			diags:    &diags,
		}
		a.Run(pass)
	}

	var ignores []*ignoreDirective
	for _, f := range pkg.Files {
		ignores = append(ignores, parseIgnores(pkg.Fset, f)...)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if ig.bare || !ig.analyzers[d.Analyzer] || ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	for _, ig := range ignores {
		if ig.bare {
			diags = append(diags, Diagnostic{
				Pos:      ig.pos,
				Analyzer: "reprolint",
				Message:  "bare lint:ignore: write //lint:ignore <analyzer> <reason> — exceptions must name the check and say why they are safe",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
