package lint_test

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRx matches the fixture expectation convention: a trailing
// comment `// want "regex"` on the line where a diagnostic must
// appear.
var wantRx = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// runFixture loads one testdata package, runs a single analyzer over
// it, and checks the findings against the file's want comments: every
// want must be matched by a finding on its line, and every finding
// must be claimed by a want.
func runFixture(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadDir("testdata/" + dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pkg.Fset.Position(c.Pos()), m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{pos.Filename, pos.Line, regexp.MustCompile(pat), false})
			}
		}
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.rx)
		}
	}
}

func TestCollectiveSym(t *testing.T) { runFixture(t, lint.CollectiveSym, "collectivesym") }
func TestArenaEscape(t *testing.T)   { runFixture(t, lint.ArenaEscape, "arenaescape") }
func TestBeginFlush(t *testing.T)    { runFixture(t, lint.BeginFlush, "beginflush") }
func TestExLifecycle(t *testing.T)   { runFixture(t, lint.ExLifecycle, "exlifecycle") }
func TestHotPathAlloc(t *testing.T)  { runFixture(t, lint.HotPathAlloc, "hotpathalloc") }
func TestErrCheck(t *testing.T)      { runFixture(t, lint.ErrCheck, "errcheck") }

// The detlint family: determinism-contract analyzers.
func TestMapOrder(t *testing.T)  { runFixture(t, lint.MapOrder, "maporder") }
func TestFloatFold(t *testing.T) { runFixture(t, lint.FloatFold, "floatfold") }
func TestWallClock(t *testing.T) { runFixture(t, lint.WallClock, "wallclock") }
func TestSeedFlow(t *testing.T)  { runFixture(t, lint.SeedFlow, "seedflow") }

// TestIgnoreDirective checks that a reasoned //lint:ignore suppresses
// exactly the named analyzer's finding on the next line.
func TestIgnoreDirective(t *testing.T) { runFixture(t, lint.ErrCheck, "ignore") }

// TestBareIgnoreIsError checks that an ignore without an analyzer name
// and reason suppresses nothing and is itself reported.
func TestBareIgnoreIsError(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/bareignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.ErrCheck})
	var bare, errcheck int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "bare lint:ignore"):
			bare++
		case d.Analyzer == "errcheck":
			errcheck++
		default:
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if bare != 1 || errcheck != 1 {
		t.Errorf("got %d bare-ignore and %d errcheck findings, want 1 and 1 (bare ignores must not suppress)", bare, errcheck)
	}
}

// TestTreeIsClean runs the full suite over the module — the same gate
// CI applies via cmd/reprolint. Skipped in -short runs, where the
// dedicated reprolint CI job covers it.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("tree-wide lint runs in the reprolint CI job")
	}
	pkgs, err := lint.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, d := range lint.RunAnalyzers(pkg, lint.All) {
			t.Errorf("%s", d)
		}
	}
	if t.Failed() {
		fmt.Println("tree findings above: fix them or add a reasoned //lint:ignore")
	}
}
