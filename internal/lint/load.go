package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked unit of analysis.
type Package struct {
	// Path is the import path ("-test" suffixed for external test
	// packages).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// moduleImporter resolves imports during type-checking: paths inside
// the module are parsed and checked from source (non-test files only,
// matching the go compiler's view of an import), everything else falls
// through to the standard library's source importer. All packages
// share one FileSet so positions stay comparable.
type moduleImporter struct {
	fset     *token.FileSet
	modPath  string
	modDir   string
	cache    map[string]*types.Package
	fallback types.Importer
}

func newModuleImporter(fset *token.FileSet, modPath, modDir string) *moduleImporter {
	return &moduleImporter{
		fset:     fset,
		modPath:  modPath,
		modDir:   modDir,
		cache:    map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	rel, inModule := strings.CutPrefix(path, m.modPath)
	if !inModule || (rel != "" && !strings.HasPrefix(rel, "/")) {
		return m.fallback.Import(path)
	}
	dir := filepath.Join(m.modDir, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	files, err := parseDir(m.fset, dir, false)
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", path, err)
	}
	conf := types.Config{Importer: m}
	pkg, err := conf.Check(path, m.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", path, err)
	}
	m.cache[path] = pkg
	return pkg, nil
}

// parseDir parses a directory's .go files (optionally including
// _test.go files) as one package's file list, sorted by name for
// deterministic diagnostics.
func parseDir(fset *token.FileSet, dir string, tests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") {
			continue
		}
		if !tests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load enumerates the packages matching the patterns (via `go list`,
// run in dir, which must sit inside the module) and returns each as a
// fully type-checked Package — in-package test files included, and
// external test packages (_test package suffix) as separate units.
func Load(dir string, patterns ...string) ([]*Package, error) {
	modPath, modDir, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("lint: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var listed []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, modDir)
	var pkgs []*Package
	for _, lp := range listed {
		units := []struct {
			path  string
			names []string
		}{
			{lp.ImportPath, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)},
			{lp.ImportPath + "-test", lp.XTestGoFiles},
		}
		for _, u := range units {
			if len(u.names) == 0 {
				continue
			}
			pkg, err := checkFiles(fset, imp, u.path, lp.Dir, u.names)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory (all .go files, one package)
// against the enclosing module — the fixture loader behind the
// analysistest-style tests. The directory itself may live under
// testdata/, invisible to the go tool; its files may import module
// packages by their real paths.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, modDir, err := moduleRoot(abs)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, modPath, modDir)
	return checkFiles(fset, imp, "fixture/"+filepath.Base(abs), abs, names)
}

// checkFiles parses and type-checks one unit's files.
func checkFiles(fset *token.FileSet, imp *moduleImporter, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module path and root directory.
func moduleRoot(dir string) (modPath, modDir string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), d, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
