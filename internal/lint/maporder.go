package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags values whose ordering (or whose value) is derived
// from Go's randomized map iteration order and flows into a sink where
// that order becomes observable across ranks or runs:
//
//   - wire frames and point-to-point sends (wire.AppendFrame,
//     mpi.Isend64*, mpi.Send64, mpi.AppendTally) emitted per map
//     entry: frame contents and order become per-process random;
//   - float accumulation in map order: FP addition is not
//     associative, so the fold's result depends on iteration order;
//   - sequences built by appending (or cursor-advancing stores) under
//     map iteration that then reach a wire sink, a collective payload,
//     a Report/Result field, or a return — unless a sort
//     re-establishes a deterministic order first;
//   - rank-local map counts (len of a map) flowing into Report/Result
//     fields — the exact PR 5 LabelProp bug, where each rank reported
//     its own distinct-community count and the ranks disagreed.
//
// Deterministic idioms stay clean: plain-indexed stores under map
// iteration (gid-indexed scatter — each key owns its slot, so order
// does not matter), commutative integer accumulation, and sequences
// sorted before use.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map-iteration-order-derived values must not reach wire frames, float folds, or report fields without a deterministic reordering",
	Run:  runMapOrder,
}

// wireSinkFuncs are the calls that serialize their arguments toward
// another rank (or an artifact) in argument order: anything reaching
// them under map iteration makes the wire nondeterministic.
var wireSinkFuncs = map[callee]bool{
	{wirePath, "", "AppendFrame"}: true,
	{mpiPath, "", "Isend64"}:      true,
	{mpiPath, "", "Isend64Tag"}:   true,
	{mpiPath, "", "Send64"}:       true,
	{mpiPath, "", "AppendTally"}:  true,
}

// collectivePayloadFuncs carry a payload slice whose element order is
// observable by the receiving ranks.
var collectivePayloadFuncs = map[callee]bool{
	{mpiPath, "", "Alltoallv"}:                    true,
	{mpiPath, "", "Allgatherv"}:                   true,
	{mpiPath, "", "Allgather"}:                    true,
	{mpiPath, "", "Bcast"}:                        true,
	{mpiPath, "", "Allreduce"}:                    true,
	{dgraphPath, "DeltaExchanger", "Begin"}:       true,
	{dgraphPath, "DeltaExchanger", "BeginTally"}:  true,
	{dgraphPath, "DeltaExchanger", "BeginValues"}: true,
	{dgraphPath, "DeltaExchanger", "BeginPush"}:   true,
}

// reportTypeName reports whether a named struct type is a results
// container: per-run values every rank (and every run at fixed seeds)
// must agree on.
func reportTypeName(name string) bool {
	return name == "Report" || name == "Result" ||
		strings.HasSuffix(name, "Report") || strings.HasSuffix(name, "Result")
}

func runMapOrder(pass *Pass) {
	// The wire and mpi packages implement the framing; inside them the
	// sink calls are the plumbing itself.
	base := strings.TrimSuffix(pass.Pkg.Path(), "-test")
	if base == mpiPath || base == wirePath {
		return
	}
	// Interprocedural: a same-package helper that (transitively) calls
	// a wire sink makes calls to it sinks too.
	sinkHelpers := pass.Graph.propagate(pass.Files, func(fn *types.Func, decl *ast.FuncDecl) bool {
		found := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if c, ok := calleeOf(pass.Info, call); ok && wireSinkFuncs[c] {
					found = true
				}
			}
			return true
		})
		return found
	})
	for _, unit := range funcUnits(pass.Files) {
		checkMapOrder(pass, unit.decl, sinkHelpers)
		checkMapCountReport(pass, unit.decl)
	}
}

// mapRangeOf returns the range statement's map-typed operand, or nil.
func mapRangeOf(pass *Pass, st *ast.RangeStmt) ast.Expr {
	t := pass.Info.TypeOf(st.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		return st.X
	}
	return nil
}

func checkMapOrder(pass *Pass, fd *ast.FuncDecl, sinkHelpers map[*types.Func]*types.Func) {
	info := pass.Info

	// tainted tracks slices built in map order (per function, keyed by
	// the receiver-expression string): append targets and
	// cursor-advancing stores under a map range. A sort over the slice
	// clears the taint; a sink use reports it.
	tainted := map[string]token.Pos{}

	isFloat := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}

	// declaredIn reports whether ident's declaration lies within node.
	declaredIn := func(id *ast.Ident, n ast.Node) bool {
		obj := objOf(info, id)
		if obj == nil {
			return false
		}
		return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
	}

	rootIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				return x
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return nil
			}
		}
	}

	// incremented collects the exprString of every operand of ++/+= in
	// a subtree: an indexed store whose index mentions one of these is
	// a cursor-advancing store — order-dependent, unlike a gid-indexed
	// scatter.
	incremented := func(n ast.Node) map[string]bool {
		out := map[string]bool{}
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.IncDecStmt:
				out[exprString(x.X)] = true
			case *ast.AssignStmt:
				if x.Tok == token.ADD_ASSIGN {
					for _, l := range x.Lhs {
						out[exprString(l)] = true
					}
				}
			}
			return true
		})
		return out
	}

	// checkBody walks one map-range body.
	var checkBody func(rng *ast.RangeStmt)
	checkBody = func(rng *ast.RangeStmt) {
		cursors := incremented(rng.Body)
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if mapRangeOf(pass, x) != nil && x != rng {
					return false // nested map range handled by its own visit
				}
			case *ast.CallExpr:
				if c, ok := calleeOf(info, x); ok && wireSinkFuncs[c] {
					pass.Reportf(x.Pos(),
						"%s inside range over a map: frame contents and order become map-iteration-order dependent; order the entries deterministically first (sort, or a gid-indexed pass)",
						c.name)
					return true
				}
				if fn := calleeFunc(info, x); fn != nil {
					if _, viaHelper := sinkHelpers[fn]; viaHelper {
						pass.Reportf(x.Pos(),
							"call to %s, which emits wire frames, inside range over a map: frame contents and order become map-iteration-order dependent",
							fn.Name())
					}
				}
			case *ast.AssignStmt:
				// Float accumulation in map order.
				if x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN || x.Tok == token.MUL_ASSIGN {
					for i, l := range x.Lhs {
						if isFloat(l) {
							if id := rootIdent(l); id != nil && !declaredIn(id, rng) {
								pass.Reportf(x.Rhs[i].Pos(),
									"float accumulation in map iteration order: FP addition is not associative, so the result differs run to run; fold in a deterministic order (sort the keys, or par.SumFloat64Ordered over a dense range)")
							}
						}
					}
				}
				// x = x + v float form.
				if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
					for i, l := range x.Lhs {
						if bin, ok := ast.Unparen(x.Rhs[i]).(*ast.BinaryExpr); ok && bin.Op == token.ADD &&
							isFloat(l) && exprString(bin.X) == exprString(l) {
							if id := rootIdent(l); id != nil && !declaredIn(id, rng) {
								pass.Reportf(x.Rhs[i].Pos(),
									"float accumulation in map iteration order: FP addition is not associative, so the result differs run to run; fold in a deterministic order")
							}
						}
					}
				}
				// Append to an outer slice: order-dependent sequence.
				for i := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
							if root := rootIdent(x.Lhs[i]); root != nil && !declaredIn(root, rng) {
								tainted[exprString(x.Lhs[i])] = x.Pos()
							}
						}
					}
				}
				// Cursor-advancing store into an outer slice:
				// dst[cursor] = v; cursor++ — same order dependence as
				// append. A store through a loop-invariant index (a
				// gid-indexed scatter) stays clean.
				if x.Tok == token.ASSIGN {
					for _, l := range x.Lhs {
						ix, ok := ast.Unparen(l).(*ast.IndexExpr)
						if !ok {
							continue
						}
						idxStr := exprString(ix.Index)
						cursorIdx := false
						for c := range cursors {
							if idxStr == c || strings.Contains(idxStr, c+"[") || strings.HasPrefix(idxStr, c+".") {
								cursorIdx = true
							}
						}
						if !cursorIdx {
							continue
						}
						if root := rootIdent(ix.X); root != nil && !declaredIn(root, rng) {
							tainted[exprString(ix.X)] = l.Pos()
						}
					}
				}
			}
			return true
		})
	}

	// First pass: find map ranges, taint order-dependent collections.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok && mapRangeOf(pass, rng) != nil {
			checkBody(rng)
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// Second pass, in source order: a sort over a tainted slice clears
	// it; a sink use (wire sink, collective payload, report field,
	// return) reports it.
	clearIfSorted := func(call *ast.CallExpr) {
		c, ok := calleeOf(info, call)
		if !ok || (c.pkg != "sort" && c.pkg != "slices") {
			return
		}
		for _, a := range call.Args {
			s := exprString(a)
			for t := range tainted {
				if s == t || strings.HasPrefix(s, t+"[") || strings.HasPrefix(s, t+".") {
					delete(tainted, t)
				}
			}
		}
	}
	taintedArg := func(a ast.Expr) (string, bool) {
		s := exprString(a)
		for t := range tainted {
			if s == t || strings.HasPrefix(s, t+"[") {
				return t, true
			}
		}
		return "", false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			clearIfSorted(x)
			c, ok := calleeOf(info, x)
			if !ok {
				return true
			}
			if wireSinkFuncs[c] || collectivePayloadFuncs[c] {
				for _, a := range x.Args {
					if t, hit := taintedArg(a); hit {
						name := c.name
						pass.Reportf(a.Pos(),
							"%s was built in map iteration order and reaches %s unsorted: the payload's element order differs per process; sort it (or fill it through a gid-indexed pass) first",
							t, name)
						delete(tainted, t)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if t, hit := taintedArg(r); hit {
					pass.Reportf(r.Pos(),
						"%s was built in map iteration order and is returned unsorted: callers observe a different order every run; sort it first",
						t)
					delete(tainted, t)
				}
			}
		case *ast.KeyValueExpr:
			if t, hit := taintedArg(x.Value); hit {
				if outer := enclosingReportLiteral(pass, fd, x); outer != "" {
					pass.Reportf(x.Value.Pos(),
						"%s was built in map iteration order and reaches %s field %s unsorted: report fields must be identical across runs; sort it first",
						t, outer, exprString(x.Key))
					delete(tainted, t)
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for i, l := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if named := namedOf(info.TypeOf(sel.X)); named != nil && reportTypeName(named.Obj().Name()) {
					if t, hit := taintedArg(x.Rhs[i]); hit {
						pass.Reportf(x.Rhs[i].Pos(),
							"%s was built in map iteration order and reaches report field %s unsorted: report fields must be identical across runs; sort it first",
							t, exprString(l))
						delete(tainted, t)
					}
				}
			}
		}
		return true
	})
}

// enclosingReportLiteral returns the type name of the innermost
// composite literal containing kv, when that type is a Report/Result
// container, else "".
func enclosingReportLiteral(pass *Pass, fd *ast.FuncDecl, kv *ast.KeyValueExpr) string {
	name := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, e := range lit.Elts {
			if e == kv {
				if named := namedOf(pass.Info.TypeOf(lit)); named != nil && reportTypeName(named.Obj().Name()) {
					name = named.Obj().Name()
				}
			}
		}
		return true
	})
	return name
}

// checkMapCountReport flags rank-local map counts (len of a map,
// possibly through one local and conversions) flowing into a
// Report/Result field: each rank's map holds its own keys, so the
// ranks report different numbers — the PR 5 LabelProp
// community-count bug. Passing the count through a collective
// (AllreduceScalar) launders it correctly: call results carry no
// taint.
func checkMapCountReport(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// lenOfMap reports whether e is len(m) over a map (through
	// conversions and parens).
	var lenOfMap func(e ast.Expr) bool
	lenOfMap = func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				t := info.TypeOf(call.Args[0])
				if t != nil {
					_, isMap := t.Underlying().(*types.Map)
					return isMap
				}
			}
		}
		// Conversion: T(len(m)).
		if len(call.Args) == 1 {
			if _, isConv := info.Types[call.Fun]; isConv {
				if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
					return lenOfMap(call.Args[0])
				}
			}
		}
		return false
	}

	// Locals assigned from len(map) expressions.
	counts := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			if lenOfMap(as.Rhs[i]) {
				if obj := objOf(info, id); obj != nil {
					counts[obj] = as.Rhs[i].Pos()
				}
			}
		}
		return true
	})

	// mapCountExpr: e is len(map) directly, or mentions a counted
	// local (through conversions and arithmetic).
	mapCountExpr := func(e ast.Expr) bool {
		if lenOfMap(e) {
			return true
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				// A non-conversion call result launders the count (the
				// collective-reduction idiom).
				if tv, ok := info.Types[x.Fun]; !ok || !tv.IsType() {
					if lenOfMap(x) {
						found = true
					}
					return false
				}
			case *ast.Ident:
				if obj := objOf(info, x); obj != nil {
					if _, hit := counts[obj]; hit {
						found = true
					}
				}
			}
			return true
		})
		return found
	}

	report := func(pos token.Pos, field string) {
		pass.Reportf(pos,
			"rank-local map count flows into report field %s: each rank's map holds different keys, so the ranks disagree (the PR 5 LabelProp bug); reduce the count globally first (globalDistinct / AllreduceScalar)",
			field)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			named := namedOf(info.TypeOf(x))
			if named == nil || !reportTypeName(named.Obj().Name()) {
				return true
			}
			for _, e := range x.Elts {
				kv, ok := e.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if mapCountExpr(kv.Value) {
					report(kv.Value.Pos(), named.Obj().Name()+"."+exprString(kv.Key))
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, l := range x.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				named := namedOf(info.TypeOf(sel.X))
				if named == nil || !reportTypeName(named.Obj().Name()) {
					continue
				}
				if mapCountExpr(x.Rhs[i]) {
					report(x.Rhs[i].Pos(), exprString(l))
				}
			}
		}
		return true
	})
}
