package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedFlow checks that every RNG constructed on the deterministic
// surface is seeded from an explicit, caller-provided value: a
// parameter, a receiver field, a constant, or an expression built
// from those (including rng.Mix of rooted values). A generator whose
// seed cannot be traced to a seed parameter or config field is either
// ambient entropy in disguise (time.Now().UnixNano()) or a silent
// constant that will collide across streams — both break the
// fixed-seed reproducibility contract the harness's corpus runs rely
// on.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "RNG construction on the deterministic surface must be seeded from a parameter, field, or constant — never ambient entropy",
	Run:  runSeedFlow,
}

// rngCtors maps constructor callees to the index of their seed
// argument.
var rngCtors = map[callee]int{
	{rngPath, "", "New"}:           0,
	{rngPath, "", "NewStream"}:     0,
	{"math/rand", "", "NewSource"}: 0,
	{"math/rand/v2", "", "NewPCG"}: 0,
}

func runSeedFlow(pass *Pass) {
	base := strings.TrimSuffix(pass.Pkg.Path(), "-test")
	if base == rngPath {
		return // the rng package is the mechanism, not a client
	}
	surface := deterministicSurface(pass)
	if len(surface) == 0 {
		return
	}
	for _, fn := range pass.Graph.funcsByDecl(pass.Files) {
		if _, onSurface := surface[fn]; !onSurface {
			continue
		}
		checkSeedFlow(pass, pass.Graph.DeclOf(fn))
	}
}

func checkSeedFlow(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// rooted objects: parameters (of the declaration and of enclosing
	// function literals) and the receiver. Field selectors on a rooted
	// base are rooted transitively, so a config struct parameter roots
	// cfg.Seed.
	rooted := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					rooted[o] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})

	// isRooted decides whether an expression traces to a seed source.
	var isRooted func(e ast.Expr) bool
	isRooted = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			return true
		case *ast.Ident:
			obj := objOf(info, x)
			if obj == nil {
				return false
			}
			if _, isConst := obj.(*types.Const); isConst {
				return true
			}
			return rooted[obj]
		case *ast.SelectorExpr:
			// A package-qualified constant, or a field chain on a
			// rooted base.
			if obj := objOf(info, x.Sel); obj != nil {
				if _, isConst := obj.(*types.Const); isConst {
					return true
				}
			}
			return isRooted(x.X)
		case *ast.IndexExpr:
			return isRooted(x.X)
		case *ast.StarExpr:
			return isRooted(x.X)
		case *ast.BinaryExpr:
			return isRooted(x.X) && isRooted(x.Y)
		case *ast.UnaryExpr:
			return isRooted(x.X)
		case *ast.CallExpr:
			// Conversions of rooted values stay rooted; rng.Mix mixes
			// rooted values into a rooted value.
			if c, ok := calleeOf(info, x); ok {
				if c.pkg == rngPath && (c.name == "Mix" || c.name == "New" || c.name == "NewStream") {
					for _, a := range x.Args {
						if !isRooted(a) {
							return false
						}
					}
					return true
				}
				return false
			}
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				return isRooted(x.Args[0])
			}
			return false
		}
		return false
	}

	// Forward pass: a local assigned only from rooted expressions is
	// rooted. Two sweeps handle simple forward chains (a := seed;
	// b := a + 1) without full dataflow.
	for sweep := 0; sweep < 2; sweep++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				if isRooted(as.Rhs[i]) {
					rooted[obj] = true
				} else if as.Tok == token.ASSIGN {
					// Reassigned from a non-rooted value: taint.
					delete(rooted, obj)
				}
			}
			return true
		})
	}

	ambient := func(e ast.Expr) string {
		found := ""
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c, ok := calleeOf(info, call); ok {
				if c.pkg == "time" || isAmbientRand(c) {
					found = c.pkg + "." + c.name
				}
			}
			return true
		})
		return found
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := calleeOf(info, call)
		if !ok {
			return true
		}
		seedIdx, isCtor := rngCtors[c]
		if !isCtor || seedIdx >= len(call.Args) {
			return true
		}
		seed := call.Args[seedIdx]
		if isRooted(seed) {
			return true
		}
		if amb := ambient(seed); amb != "" {
			pass.Reportf(seed.Pos(),
				"%s.%s seeded from ambient entropy (%s): seeds on the deterministic surface must come from a seed parameter or config field so runs are replayable",
				c.pkg[strings.LastIndex(c.pkg, "/")+1:], c.name, amb)
			return true
		}
		pass.Reportf(seed.Pos(),
			"%s.%s seed does not trace to a seed parameter, receiver field, or constant: thread the run's seed (or rng.Mix of it) to this construction site",
			c.pkg[strings.LastIndex(c.pkg, "/")+1:], c.name)
		return true
	})
}
