// Package fixture reproduces the arena-aliasing escape shapes (the
// PR 5 bug) for the arenaescape analyzer. It is type-checked by the
// analyzer tests, never run.
package fixture

import (
	"repro/internal/dgraph"
	"repro/internal/mpi"
)

type sink struct {
	kept []int64
	lids []int32
}

// storeField retains a pooled receive buffer past the round that
// recycles it.
func storeField(c *mpi.Comm, s *sink) {
	msg := mpi.Recv64(c, 1)
	s.kept = msg // want "stored into field"
}

// returned leaks the pooled buffer to an unsuspecting caller.
func returned(c *mpi.Comm) []int64 {
	msg := mpi.Recv64Tag(c, 1, 0)
	return msg // want "returned to caller"
}

// capture hands the buffer to a goroutine that may run after the
// round window closes.
func capture(c *mpi.Comm, done chan struct{}) {
	msg := mpi.Recv64(c, 1)
	go func() { // want "goroutine captures"
		_ = msg[0]
		close(done)
	}()
}

// appendRef stores the slice header, not the contents.
func appendRef(c *mpi.Comm, keep [][]int64) [][]int64 {
	msg := mpi.Recv64(c, 1)
	keep = append(keep, msg) // want "appended by reference"
	return keep
}

// flushEscape is the exchange-engine variant: FlushValues results
// alias decode arenas valid for depth-1 subsequent rounds only.
func flushEscape(ex *dgraph.DeltaExchanger, s *sink) {
	ex.BeginValues(nil, nil, nil)
	lids, payloads, _ := ex.FlushValues()
	s.lids = lids // want "stored into field"
	_ = payloads
}

// useAfterRecycle reads a buffer Recycle64 already returned to the
// pool.
func useAfterRecycle(c *mpi.Comm) int64 {
	msg := mpi.Recv64(c, 1)
	v := msg[0]
	c.Recycle64(msg)
	return v + msg[1] // want "used after Recycle64"
}

// splitAlias: SplitTally views alias the message they split.
func splitAlias(c *mpi.Comm, s *sink) {
	msg := mpi.Recv64Tag(c, 1, 0)
	body := mpi.SplitTally(msg, nil)
	s.kept = body // want "stored into field"
	c.Recycle64(msg)
}

// transportRecv: Recv64 through the Transport interface hands out the
// same pooled buffer as the Comm-level helpers.
func transportRecv(tr mpi.Transport, s *sink) {
	msg, _ := tr.Recv64(1)
	s.kept = msg // want "stored into field"
	tr.Recycle64(msg)
}

// transportUseAfterRecycle: the interface's Recycle64 closes the
// aliasing window just like Comm's.
func transportUseAfterRecycle(tr mpi.Transport) int64 {
	msg, _ := tr.Recv64(1)
	v := msg[0]
	tr.Recycle64(msg)
	return v + msg[1] // want "used after Recycle64"
}

// watchdogCapture: a liveness-monitor-style helper goroutine holding a
// pooled socket receive buffer past its round window. The transport's
// own heartbeat loop recycles ping payloads inline for exactly this
// reason; user-level watchdogs must copy what they keep.
func watchdogCapture(st *mpi.SocketTransport, alarm chan []int64) {
	msg, _ := st.Recv64(1)
	go func() { // want "goroutine captures"
		alarm <- msg // want "sent on a channel"
	}()
}

// the shapes below copy before retaining and must produce no findings.

func copied(c *mpi.Comm, s *sink) {
	msg := mpi.Recv64(c, 1)
	s.kept = append(s.kept[:0], msg...) // spread copies contents
	c.Recycle64(msg)
}

func consumedInPlace(c *mpi.Comm) int64 {
	msg := mpi.Recv64(c, 1)
	var sum int64
	for _, v := range msg {
		sum += v
	}
	c.Recycle64(msg)
	return sum
}
