// Package fixture holds a bare //lint:ignore — no analyzer name, no
// reason — which must suppress nothing and be reported itself. It is
// type-checked by the analyzer tests, never run.
package fixture

import "os"

func bare(f *os.File) {
	//lint:ignore
	f.Close()
}
