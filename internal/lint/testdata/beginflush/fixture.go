// Package fixture exercises the beginflush analyzer: split-phase
// rounds must be flushed, and never over-fill the pipeline. It is
// type-checked by the analyzer tests, never run.
package fixture

import "repro/internal/dgraph"

// leakRound opens a round and never settles it: the drainer holds the
// round forever.
func leakRound(ex *dgraph.DeltaExchanger) {
	ex.BeginTally(0) // want "no matching Flush"
}

// overfill posts more rounds than the pipeline depth configured right
// here: post blocks with no drainer progress.
func overfill(g *dgraph.Graph, lids []int32, vals []int64) {
	g.SetPipeDepth(2)
	ex := g.NewDeltaExchanger()
	defer ex.Close()
	ex.BeginValues(lids, vals, nil)
	ex.BeginValues(lids, vals, nil)
	ex.BeginValues(lids, vals, nil) // want "exceeds the pipeline depth 2"
	ex.FlushValues()
	ex.FlushValues()
	ex.FlushValues()
}

// the shapes below are correctly paired and must produce no findings.

func paired(ex *dgraph.DeltaExchanger, q []dgraph.Update) []dgraph.Update {
	ex.BeginTally(0)
	q, _ = ex.FlushTally(q, nil)
	return q
}

func pipelined(g *dgraph.Graph, lids []int32, vals []int64) {
	g.SetPipeDepth(2)
	ex := g.NewDeltaExchanger()
	defer ex.Close()
	ex.BeginValues(lids, vals, nil)
	for i := 0; i < 4; i++ {
		ex.BeginValues(lids, vals, nil)
		ex.FlushValues()
	}
	ex.FlushValues()
}

// handsOff passes the exchanger on: the pairing completes elsewhere.
func handsOff(ex *dgraph.DeltaExchanger) {
	ex.BeginTally(0)
	finish(ex)
}

func finish(ex *dgraph.DeltaExchanger) {
	var q []dgraph.Update
	q, _ = ex.FlushTally(q, nil)
	_ = q
}

// closeSettles: Close drains outstanding rounds.
func closeSettles(ex *dgraph.DeltaExchanger) {
	ex.BeginTally(0)
	ex.Close()
}
