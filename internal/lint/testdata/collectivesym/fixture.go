// Package fixture reproduces the conditional-collective deadlock
// shapes (the PR 4 bug) for the collectivesym analyzer. It is
// type-checked by the analyzer tests, never run.
package fixture

import (
	"repro/internal/dgraph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// condBarrier is the canonical bug: rank 0 enters the barrier, every
// other rank walks past it and the job hangs.
func condBarrier(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want "reachable only under rank-local condition"
	}
	c.Barrier() // symmetric: every rank reaches it
}

// guardClause hides the asymmetry behind an early return.
func guardClause(c *mpi.Comm, v int64) int64 {
	if c.Rank() != 0 {
		return 0
	}
	return mpi.AllreduceScalar(c, v, mpi.Sum) // want "rank-local"
}

// rankVar branches on a rank-named local instead of the call.
func rankVar(c *mpi.Comm, v int64) {
	rank := c.Rank()
	if rank == 0 {
		mpi.AllreduceScalar(c, v, mpi.Sum) // want "branches on rank"
	}
}

// mapOrder: map iteration order differs per process, so the number
// and order of collective calls does too.
func mapOrder(c *mpi.Comm, work map[int32][]int64) {
	for _, vals := range work {
		mpi.Allreduce(c, vals, mpi.Sum) // want "map iteration order"
	}
}

// condFlush is the exchange-engine variant: a Flush that only some
// ranks perform leaves the others' drainers waiting on messages that
// never come.
func condFlush(c *mpi.Comm, ex *dgraph.DeltaExchanger, q []dgraph.Update) {
	ex.BeginTally(0)
	if c.Rank() == 0 {
		q, _ = ex.FlushTally(q, nil) // want "FlushTally"
	} else {
		q, _ = ex.FlushTally(q, nil) // want "FlushTally"
	}
	_ = q
}

// condClose: tearing down the graph on one rank only strands its
// neighbors' drainers.
func condClose(c *mpi.Comm, g *dgraph.Graph) {
	if c.Rank() == 0 {
		g.Close() // want "Graph.Close"
	}
}

// condTransportBarrier: the Transport surface is collective too — a
// barrier called through the interface under a rank guard is the same
// deadlock as the Comm-level shape.
func condTransportBarrier(tr mpi.Transport) {
	if tr.Rank() == 0 {
		tr.Barrier() // want "Transport.Barrier"
	}
	tr.Barrier()
}

// condSocketAllreduce: direct calls on a concrete wire transport are
// covered as well.
func condSocketAllreduce(st *mpi.SocketTransport, v []int64) {
	if st.Rank() == 0 {
		st.AllreduceI64(v, mpi.Sum) // want "SocketTransport.AllreduceI64"
	}
}

// condSocketBarrier: the shape the socket transport's collective
// watchdog (SocketConfig.CollTimeout) turns from a silent hang into a
// runtime panic on the stragglers — the analyzer rejects it before a
// world ever runs, watchdog or not.
func condSocketBarrier(st *mpi.SocketTransport) {
	if st.Rank() == 0 {
		st.Barrier() // want "SocketTransport.Barrier"
	}
	st.Barrier()
}

// parBodyCollective: a collective inside a par worker body runs off
// the comm's main goroutine while sibling workers sweep on — the
// intra-rank deadlock shape the parallel-sweep refactor must never
// reintroduce.
func parBodyCollective(c *mpi.Comm, g *dgraph.Graph, vals []int64, n int) {
	par.For(0, n, 2, func(i int) {
		mpi.AllreduceScalar(c, int64(i), mpi.Sum) // want "par.For worker body"
	})
	par.ForChunk(0, n, 2, func(lo, hi, tid int) {
		g.ExchangeInt64(nil, vals) // want "par.ForChunk worker body"
	})
}

// parBodyRoundOp: DeltaExchanger round ops are collective too — a
// worker posting or flushing a round while its siblings are still
// sweeping hangs the world exactly like a bare collective.
func parBodyRoundOp(ex *dgraph.DeltaExchanger, changed []int32, payload []int64, n int) {
	par.ForChunk(0, n, 4, func(lo, hi, tid int) {
		ex.BeginValues(changed, payload, nil) // want "par.ForChunk worker body"
	})
	_ = par.ReduceInt64(0, n, 4, func(i int) int64 {
		ex.FlushValues() // want "par.ReduceInt64 worker body"
		return 0
	})
}

// parBodyNested: the guard survives into literals nested inside the
// worker body.
func parBodyNested(c *mpi.Comm, n int) {
	par.For(0, n, 2, func(i int) {
		f := func() {
			c.Barrier() // want "par.For worker body"
		}
		f()
	})
}

// symmetric shapes below must produce no findings.

// parThenRound is the sanctioned schedule: sweep in parallel, then
// drive the round from the main goroutine between sweeps.
func parThenRound(g *dgraph.Graph, changed []int32, vals []int64, n int) {
	par.ForChunk(0, n, 4, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			vals[i]++
		}
	})
	g.ExchangeInt64(changed, vals)
}

// parOrderedFoldThenAllreduce: reductions fold locally on workers and
// the collective runs after the join.
func parOrderedFoldThenAllreduce(c *mpi.Comm, x []float64, scratch []float64) float64 {
	s, _ := par.SumFloat64Ordered(0, len(x), 0, scratch, func(lo, hi int) float64 {
		var t float64
		for i := lo; i < hi; i++ {
			t += x[i]
		}
		return t
	})
	return float64(mpi.AllreduceScalar(c, int64(s), mpi.Sum))
}

func symmetricRounds(ex *dgraph.DeltaExchanger, q []dgraph.Update) []dgraph.Update {
	ex.Begin()
	return ex.Flush(q)
}

func loopOverCounts(c *mpi.Comm, v int64) {
	nranks := c.Size()
	for i := 0; i < nranks; i++ {
		mpi.AllreduceScalar(c, v, mpi.Sum) // a count of ranks is symmetric
	}
}

func rankInsideCondExpr(c *mpi.Comm, v int64) {
	// The collective appears in the condition itself: every rank
	// evaluates it.
	if mpi.AllreduceScalar(c, v, mpi.Max) > 0 {
		_ = v
	}
}

// barrierHelper wraps a collective in a same-package helper: calls to
// it are collective calls for symmetry purposes.
func barrierHelper(c *mpi.Comm) {
	c.Barrier()
}

// condHelperCall is the interprocedural shape of the canonical bug:
// the collective hides one call level down, but only rank 0 gets
// there.
func condHelperCall(c *mpi.Comm) {
	if c.Rank() == 0 {
		barrierHelper(c) // want "barrierHelper, which performs collective"
	}
	barrierHelper(c)
}

// symmetricHelperCall reaches the same helper on every rank: clean.
func symmetricHelperCall(c *mpi.Comm) {
	barrierHelper(c)
}

// deepHelperChain pushes the collective two hops down; propagation is
// bounded but covers this depth.
func deepHelperChain(c *mpi.Comm) {
	if c.Rank() == 0 {
		hopOne(c) // want "hopOne, which performs collective"
	}
	hopOne(c)
}

func hopOne(c *mpi.Comm) { hopTwo(c) }
func hopTwo(c *mpi.Comm) { c.Barrier() }
