// Package fixture exercises the errcheck analyzer: artifact and
// file-handling error results must be checked. It is type-checked by
// the analyzer tests, never run.
package fixture

import (
	"bufio"
	"encoding/json"
	"os"
)

func bad(path string, doc any) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	enc := json.NewEncoder(f)
	enc.Encode(doc)                  // want "Encoder.Encode is discarded"
	f.Close()                        // want "File.Close is discarded"
	os.Remove(path)                  // want "os.Remove is discarded"
	_ = os.Rename(path, path+".bak") // want "os.Rename is discarded"
}

func badFlush(w *bufio.Writer) {
	w.Flush() // want "Writer.Flush is discarded"
}

// good checks (or legitimately defers) everything and must produce no
// findings.
func good(path string, doc any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // deferred Close has nowhere to report: allowed
	if err := json.NewEncoder(f).Encode(doc); err != nil {
		return err
	}
	return os.Remove(path)
}
