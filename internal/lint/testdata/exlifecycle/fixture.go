// Package fixture exercises the exlifecycle analyzer: constructed
// exchangers and async-routed graphs must reach Close. It is
// type-checked by the analyzer tests, never run.
package fixture

import (
	"testing"

	"repro/internal/dgraph"
	"repro/internal/graph"
	"repro/internal/mpi"
)

// leak constructs an exchanger and forgets it: the drainer goroutine
// and its posted rounds leak.
func leak(g *dgraph.Graph) {
	ex := g.NewDeltaExchanger() // want "never closed"
	ex.Begin()
	_ = ex.Flush(nil)
}

// asyncLeak switches a graph it built into async mode — which spins up
// a drainer — and never closes it.
func asyncLeak(c *mpi.Comm, chunk []graph.Edge, dist dgraph.Distribution) {
	g, err := dgraph.FromEdgeChunks(c, 8, chunk, dist)
	if err != nil {
		return
	}
	g.SetAsyncExchange(true) // want "never closed"
	g.ExchangeInt64(nil, nil)
}

// the shapes below close (or hand off) correctly and must produce no
// findings.

func deferred(g *dgraph.Graph) {
	ex := g.NewDeltaExchanger()
	defer ex.Close()
	ex.Begin()
	_ = ex.Flush(nil)
}

func cleanup(t *testing.T, g *dgraph.Graph) {
	ex := g.NewDeltaExchanger()
	t.Cleanup(func() { ex.Close() })
	ex.Begin()
	_ = ex.Flush(nil)
}

func asyncClosed(c *mpi.Comm, chunk []graph.Edge, dist dgraph.Distribution) {
	g, err := dgraph.FromEdgeChunks(c, 8, chunk, dist)
	if err != nil {
		return
	}
	defer g.Close()
	g.SetAsyncExchange(true)
	g.ExchangeInt64(nil, nil)
}

// handsOff transfers ownership by passing the exchanger on.
func handsOff(g *dgraph.Graph) {
	ex := g.NewDeltaExchanger()
	drive(ex)
}

func drive(ex *dgraph.DeltaExchanger) {
	defer ex.Close()
	ex.Begin()
	_ = ex.Flush(nil)
}

// paramGraph toggles async on a caller-owned graph: the caller closes
// it, not this helper.
func paramGraph(g *dgraph.Graph) {
	g.SetAsyncExchange(true)
	g.ExchangeInt64(nil, nil)
}
