// Package fixture reproduces the unordered-float-fold bug shapes for
// the floatfold analyzer: captured-accumulator folds inside par
// workers (the pre-PR-9 PageRank norm shape), arrival-order folds in
// receive loops, and direct calls bypassing a sync.Once-guarded
// initializer (the lazy-memoization race). Type-checked only.
package fixture

import (
	"sync"

	"repro/internal/mpi"
	"repro/internal/par"
)

// capturedSumInParFor is the canonical bug: the += on a captured
// variable races, and even a locked version folds in schedule order.
func capturedSumInParFor(vals []float64, threads int) float64 {
	var sum float64
	par.For(0, len(vals), threads, func(i int) {
		sum += vals[i] // want "float accumulation into captured sum inside a par.For worker"
	})
	return sum
}

// capturedSumInForChunk: the chunked variant of the same shape.
func capturedSumInForChunk(vals []float64, threads int) float64 {
	var total float64
	par.ForChunk(0, len(vals), threads, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			total = total + vals[i] // want "float accumulation into captured total"
		}
	})
	return total
}

// orderedSum is the repo's deterministic idiom: per-chunk partials
// folded in chunk order. Clean.
func orderedSum(vals []float64, threads int, partials []float64) float64 {
	sum, _ := par.SumFloat64Ordered(0, len(vals), threads, partials, func(lo, hi int) float64 {
		var local float64
		for i := lo; i < hi; i++ {
			local += vals[i]
		}
		return local
	})
	return sum
}

// localIntInWorker: integer accumulation into a worker-local is
// order-free and race-free. Clean.
func localIntInWorker(vals []int64, threads int) int64 {
	return par.ReduceInt64(0, len(vals), threads, func(i int) int64 {
		return vals[i]
	})
}

// arrivalOrderFold accumulates float contributions as they arrive:
// the socket substrate does not fix arrival order across ranks.
func arrivalOrderFold(c *mpi.Comm) float64 {
	var norm float64
	for src := 0; src < c.Size(); src++ {
		if src == c.Rank() {
			continue
		}
		data := mpi.Recv64(c, src)
		for _, d := range data {
			norm += float64(d) // want "float accumulation into norm inside a receive loop"
		}
	}
	return norm
}

// rankOrderFold buffers per-rank contributions and folds them in rank
// order after all receives complete. Clean.
func rankOrderFold(c *mpi.Comm) float64 {
	perRank := make([][]int64, c.Size())
	for src := 0; src < c.Size(); src++ {
		if src == c.Rank() {
			continue
		}
		perRank[src] = mpi.Recv64(c, src)
	}
	var norm float64
	for _, data := range perRank {
		for _, d := range data {
			norm += float64(d)
		}
	}
	return norm
}

// cache is a lazily-memoized structure guarded by a sync.Once.
type cache struct {
	once sync.Once
	mark []bool
}

func (c *cache) build() {
	c.mark = make([]bool, 64)
}

// Lookup enters the memoization through the Once: clean.
func (c *cache) Lookup(i int) bool {
	c.once.Do(c.build)
	return c.mark[i]
}

// LookupRacy re-adds the pre-PR-9 bug shape: a nil-check guard calls
// the initializer directly, racing with concurrent Lookup callers.
func (c *cache) LookupRacy(i int) bool {
	if c.mark == nil {
		c.build() // want "build is guarded by c.once.Do .* but called directly here"
	}
	return c.mark[i]
}

// slotOwnedAccumulation: hc[v] += x where v is the worker's own index
// writes a distinct slot per invocation — a scatter, not a fold.
// Clean (the HarmonicCentrality idiom).
func slotOwnedAccumulation(hc []float64, levels []int64, threads int) {
	par.For(0, len(hc), threads, func(v int) {
		if levels[v] > 0 {
			hc[v] += 1.0 / float64(levels[v])
		}
	})
}
