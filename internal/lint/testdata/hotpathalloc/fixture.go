// Package fixture exercises the hotpathalloc analyzer: functions
// annotated //repro:hotpath must not allocate in steady state. It is
// type-checked by the analyzer tests, never run.
package fixture

import "fmt"

type ring struct {
	buf     []int64
	scratch []int64
}

//repro:hotpath
func badMake(vals []int64) int64 {
	tmp := make([]int64, len(vals)) // want "make allocates"
	copy(tmp, vals)
	return tmp[0]
}

//repro:hotpath
func badFmt(n int) {
	fmt.Println(n) // want "fmt.Println allocates"
}

//repro:hotpath
func badAppend(r *ring, v int64) {
	r.buf = append(r.scratch, v) // want "does not feed back into its base"
}

//repro:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//repro:hotpath
func badBoxArg(v int64) {
	consume(v) // want "boxes int64"
}

//repro:hotpath
func badClosure(r *ring) {
	f := func() { r.buf = r.buf[:0] } // want "closure"
	f()
}

//repro:hotpath
func badLiteral() []int64 {
	return []int64{1, 2, 3} // want "composite"
}

func consume(v any) { _ = v }

// good follows the steady-state discipline: cap-guard growth,
// self-append, and panic-path formatting are all allowed.
//
//repro:hotpath
func good(r *ring, vals []int64) {
	if cap(r.scratch) < len(vals) {
		r.scratch = make([]int64, 0, len(vals)) // growth guard: amortized to zero
	}
	r.scratch = r.scratch[:0]
	for _, v := range vals {
		r.scratch = append(r.scratch, v)
	}
	if len(vals) > 1<<40 {
		panic(fmt.Sprintf("fixture: absurd input %d", len(vals))) // failure path may allocate
	}
}

// appendInto returns growth into the caller's buffer — the arena
// idiom.
//
//repro:hotpath
func appendInto(dst []int64, vals []int64) []int64 {
	return append(dst, vals...)
}

// unannotated functions may allocate freely.
func unannotated() []int64 {
	return make([]int64, 4)
}

// allocHelper hides an allocation behind a same-package call.
func allocHelper(n int) []int64 {
	return make([]int64, n)
}

// cleanHelper allocates nothing.
func cleanHelper(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// viaHelper is the interprocedural evasion: the hot path itself is
// clean, but its helper allocates every call.
//
//repro:hotpath
func viaHelper(r *ring, n int) {
	r.scratch = allocHelper(n) // want "hot-path call to allocHelper, which allocates at"
	_ = cleanHelper(r.scratch) // helpers that do not allocate are fine
}
