// Package fixture exercises the //lint:ignore directive: a reasoned
// ignore suppresses exactly the named analyzer's finding on its own or
// the following line. It is type-checked by the analyzer tests, never
// run.
package fixture

import "os"

// suppressed: the directive names the analyzer and gives a reason, so
// no finding survives.
func suppressed(f *os.File) {
	//lint:ignore errcheck the encode error is already the root cause
	f.Close()
}

func suppressedSameLine(f *os.File) {
	f.Close() //lint:ignore errcheck teardown best-effort, error has nowhere to go
}

// unrelated directives do not suppress other analyzers' findings.
func wrongAnalyzer(f *os.File) {
	//lint:ignore collectivesym reason aimed at a different analyzer
	f.Close() // want "File.Close is discarded"
}

func stillFlagged(f *os.File) {
	f.Close() // want "File.Close is discarded"
}
