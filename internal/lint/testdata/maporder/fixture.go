// Package fixture reproduces the map-iteration-order bug shapes for
// the maporder analyzer: wire frames emitted under map iteration,
// float folds in map order, order-dependent sequences reaching sinks
// unsorted, and rank-local map counts in report fields (the PR 5
// LabelProp community-count bug). Type-checked only, never run.
package fixture

import (
	"sort"

	"repro/internal/mpi"
	"repro/internal/wire"
)

// Report is a results container in the analyzer's sense.
type Report struct {
	Communities int64
	Labels      []int64
}

// frameUnderMapRange: every process frames its map in a different
// order, so the wire bytes diverge.
func frameUnderMapRange(dst []byte, pending map[int32][]int64) []byte {
	for gid, vals := range pending {
		dst = wire.AppendFrame(dst, 1, uint32(gid), vals) // want "AppendFrame inside range over a map"
	}
	return dst
}

// sendUnderMapRange: same shape through a point-to-point send.
func sendUnderMapRange(c *mpi.Comm, out map[int]bool) {
	for dst := range out {
		mpi.Isend64(c, dst, []int64{1}) // want "Isend64 inside range over a map"
	}
}

// frameViaHelper hides the sink one call down; the interprocedural
// layer still sees it.
func frameViaHelper(dst []byte, pending map[int32][]int64) []byte {
	for gid, vals := range pending {
		dst = emit(dst, gid, vals) // want "call to emit, which emits wire frames"
	}
	return dst
}

func emit(dst []byte, gid int32, vals []int64) []byte {
	return wire.AppendFrame(dst, 1, uint32(gid), vals)
}

// floatFoldInMapOrder: FP addition is not associative; folding in map
// order gives different bits every run.
func floatFoldInMapOrder(weights map[int64]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w // want "float accumulation in map iteration order"
	}
	return sum
}

// intFoldInMapOrder is fine: integer addition is associative and
// commutative, order cannot matter.
func intFoldInMapOrder(counts map[int64]int64) int64 {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	return sum
}

// appendThenReturn builds a sequence in map order and hands it to the
// caller unsorted.
func appendThenReturn(labels map[int64]bool) []int64 {
	var out []int64
	for l := range labels {
		out = append(out, l)
	}
	return out // want "built in map iteration order and is returned unsorted"
}

// appendThenSort re-establishes a deterministic order first: clean.
func appendThenSort(labels map[int64]bool) []int64 {
	var out []int64
	for l := range labels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cursorStoreToCollective fills a payload through an advancing cursor
// under map iteration — same order dependence as append — and hands
// it to a collective.
func cursorStoreToCollective(c *mpi.Comm, labels map[int64]bool) {
	buf := make([]int64, len(labels))
	i := 0
	for l := range labels {
		buf[i] = l
		i++
	}
	mpi.Allreduce(c, buf, mpi.Min) // want "built in map iteration order and reaches Allreduce"
}

// gidIndexedStore scatters each entry into the slot its key owns: the
// result is identical whatever order the map iterates in. Clean.
func gidIndexedStore(dst []int64, updates map[int32]int64) {
	for gid, v := range updates {
		dst[gid] = v
	}
}

// rankLocalCountInReport is the PR 5 LabelProp bug: each rank's map
// holds only the labels it saw locally, so the ranks disagree on the
// count.
func rankLocalCountInReport(labels []int64) Report {
	distinct := make(map[int64]struct{}, 64)
	for _, l := range labels {
		distinct[l] = struct{}{}
	}
	return Report{
		Communities: int64(len(distinct)), // want "rank-local map count flows into report field"
	}
}

// reducedCountInReport launders the count through a collective before
// reporting it — the fixed idiom. Clean.
func reducedCountInReport(c *mpi.Comm, labels []int64) Report {
	distinct := make(map[int64]struct{}, 64)
	for _, l := range labels {
		distinct[l] = struct{}{}
	}
	total := mpi.AllreduceScalar(c, int64(len(distinct)), mpi.Sum)
	return Report{Communities: total}
}

// countViaLocalToField: the count travels through a local and a field
// assignment; still caught.
func countViaLocalToField(labels []int64) *Report {
	distinct := make(map[int64]struct{})
	for _, l := range labels {
		distinct[l] = struct{}{}
	}
	n := len(distinct)
	r := &Report{}
	r.Communities = int64(n) // want "rank-local map count flows into report field"
	return r
}
