// Package fixture reproduces unseeded-RNG shapes for the seedflow
// analyzer: generators on the deterministic surface whose seed does
// not trace to a caller-provided value. Type-checked only.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/rng"
)

// Config carries the run's seed the way harness configs do.
type Config struct {
	Seed uint64
}

// SeedFromParam threads the caller's seed: clean.
//
//repro:deterministic
func SeedFromParam(seed uint64, n int) []uint64 {
	r := rng.New(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// SeedFromConfigField roots through a struct field chain: clean.
//
//repro:deterministic
func SeedFromConfigField(cfg *Config, stream uint64) *rng.Rand {
	return rng.NewStream(cfg.Seed, stream)
}

// SeedFromMix derives per-stream seeds with rng.Mix of rooted values:
// clean.
//
//repro:deterministic
func SeedFromMix(seed uint64, vertex int64) *rng.Rand {
	return rng.New(rng.Mix(seed ^ uint64(vertex)))
}

// SeedFromClock is ambient entropy in disguise.
//
//repro:deterministic
func SeedFromClock() *rng.Rand {
	return rng.New(uint64(time.Now().UnixNano())) // want "rng.New seeded from ambient entropy"
}

// SeedFromGlobal does not trace to a parameter, field, or constant.
var globalCounter uint64

//repro:deterministic
func SeedFromGlobal() *rng.Rand {
	globalCounter++
	return rng.New(globalCounter) // want "seed does not trace to a seed parameter"
}

// MathRandFromClock covers the stdlib constructors too.
//
//repro:deterministic
func MathRandFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.NewSource seeded from ambient entropy"
}

// MathRandFromParam is the seeded stdlib form: clean.
//
//repro:deterministic
func MathRandFromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// OffSurface constructs an RNG outside the contract: not checked.
func OffSurface() *rng.Rand {
	return rng.New(uint64(time.Now().UnixNano()))
}
