// Package fixture reproduces ambient-entropy-on-the-surface shapes
// for the wallclock analyzer: wall-clock reads and runtime-seeded
// math/rand draws inside functions bound by the bit-identity
// contract, plus the //repro:timing instrumentation allowlist.
// Type-checked only.
package fixture

import (
	"math/rand"
	"time"
)

// Compute is on the deterministic surface and reads the clock into a
// value: different bits every run.
//
//go:noinline
//repro:deterministic
func Compute(vals []int64) int64 {
	salt := time.Now().UnixNano() // want "time.Now on the deterministic surface"
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum + salt
}

// Timed is surface code whose clock reads are declared
// instrumentation-only: allowlisted.
//
//repro:deterministic
//repro:timing
func Timed(vals []int64) (int64, time.Duration) {
	start := time.Now()
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum, time.Since(start)
}

// Shuffle draws from the shared, runtime-seeded source on the
// surface; //repro:timing does not excuse randomness.
//
//repro:deterministic
//repro:timing
func Shuffle(vals []int64) {
	for i := range vals {
		j := rand.Intn(i + 1) // want "ambient math/rand.Intn on the deterministic surface"
		vals[i], vals[j] = vals[j], vals[i]
	}
}

// helper is unannotated but reached from Root: it inherits the
// obligation through the call graph.
func helper() int64 {
	return time.Now().Unix() // want "time.Now on the deterministic surface .reached from //repro:deterministic Root."
}

// Root is the annotated entry point calling helper.
//
//repro:deterministic
func Root() int64 {
	return helper()
}

// Offline is not on the surface at all: clock reads are fine here.
func Offline() int64 {
	return time.Now().Unix()
}
