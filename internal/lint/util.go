package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Import paths of the packages whose contracts the suite encodes.
const (
	mpiPath    = "repro/internal/mpi"
	dgraphPath = "repro/internal/dgraph"
	parPath    = "repro/internal/par"
	wirePath   = "repro/internal/wire"
	rngPath    = "repro/internal/rng"
)

// callee identifies a resolved call target: the defining package path,
// the receiver's named-type name ("" for package-level functions), and
// the function name.
type callee struct {
	pkg  string
	recv string
	name string
}

// calleeOf resolves a call expression to its target, or ok=false for
// builtins, conversions, and calls the type info cannot resolve.
func calleeOf(info *types.Info, call *ast.CallExpr) (callee, bool) {
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation (mpi.Irecv[float64]).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel] // package-qualified identifier
		}
	case *ast.Ident:
		obj = info.Uses[f]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return callee{}, false
	}
	c := callee{name: fn.Name()}
	if fn.Pkg() != nil {
		c.pkg = fn.Pkg().Path()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			c.recv = named.Obj().Name()
		}
	}
	return c, true
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// recvString renders the receiver expression of a method call ("ex",
// "e.ex", "waves[slot]") so calls on the same value can be correlated
// textually within one function.
func recvString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprString(sel.X)
}

// exprString is a compact, parenthesis-free rendering of simple
// expressions, used only for textual correlation — two equal strings
// mean "same value" for the function-local heuristics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	default:
		return "?"
	}
}

// funcUnits returns every function declaration of the files together
// with its body; function literals are analyzed as part of their
// enclosing declaration (the analyzers' heuristics are function-local,
// and splitting a closure from the code that flushes or closes what it
// began would manufacture false positives).
type funcUnit struct {
	decl *ast.FuncDecl
	name string
}

func funcUnits(files []*ast.File) []funcUnit {
	var out []funcUnit
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcUnit{decl: fd, name: fd.Name.Name})
		}
	}
	return out
}

// recvTypeName returns the name of a declaration's receiver type, or
// "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// hasDirective reports whether the declaration's doc comment carries
// the given //-directive (e.g. "//repro:hotpath").
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and dynamic calls through function
// values. Unlike calleeOf it returns the object itself, which is what
// the interprocedural layer keys its call graph on.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel]
		}
	case *ast.Ident:
		obj = info.Uses[f]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// CallGraph is the per-package call graph behind the interprocedural
// analyses: for every function declared in the package it records the
// same-package functions it calls directly. Calls through function
// values, interfaces, and other packages are not edges — the analyses
// that consume the graph treat those conservatively at the call site.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// maxHelperDepth bounds cross-function propagation: a property (a
// collective performed, a wall-clock read, an allocation) is visible
// through at most this many nested same-package helper calls. The
// bound keeps the analyses linear and the diagnostics explainable; a
// helper chain deeper than this is its own code smell.
const maxHelperDepth = 4

// buildCallGraph indexes one package's declared functions and their
// direct same-package call edges, in source order, deduplicated.
func buildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		decls:   map[*types.Func]*ast.FuncDecl{},
		callees: map[*types.Func][]*types.Func{},
	}
	for _, unit := range funcUnits(pkg.Files) {
		fn, ok := pkg.Info.Defs[unit.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		g.decls[fn] = unit.decl
	}
	for fn, decl := range g.decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := g.decls[callee]; local {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	return g
}

// DeclOf returns the declaration of a package function, or nil for
// functions declared elsewhere.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	if g == nil {
		return nil
	}
	return g.decls[fn]
}

// Callees returns fn's direct same-package callees.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	if g == nil {
		return nil
	}
	return g.callees[fn]
}

// funcsByDecl returns a deterministic (declaration source order) list
// of the package's functions, so analyses iterating the graph report
// in stable order.
func (g *CallGraph) funcsByDecl(files []*ast.File) []*types.Func {
	byDecl := map[*ast.FuncDecl]*types.Func{}
	for fn, d := range g.decls {
		byDecl[d] = fn
	}
	var out []*types.Func
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := byDecl[fd]; ok {
					out = append(out, fn)
				}
			}
		}
	}
	return out
}

// propagate computes, for every package function, whether it reaches a
// function satisfying seed within maxHelperDepth call-graph hops. The
// returned map carries, per reaching function, the first hop of one
// witness path ("" for functions satisfying seed directly) — enough to
// name the helper in a diagnostic without storing whole paths.
func (g *CallGraph) propagate(files []*ast.File, seed func(fn *types.Func, decl *ast.FuncDecl) bool) map[*types.Func]*types.Func {
	reach := map[*types.Func]*types.Func{}
	order := g.funcsByDecl(files)
	for _, fn := range order {
		if seed(fn, g.decls[fn]) {
			reach[fn] = nil
		}
	}
	for depth := 0; depth < maxHelperDepth; depth++ {
		changed := false
		for _, fn := range order {
			if _, done := reach[fn]; done {
				continue
			}
			for _, callee := range g.callees[fn] {
				if _, hit := reach[callee]; hit {
					reach[fn] = callee
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return reach
}

// surfaceDirective marks a function as part of the deterministic
// surface: its results are bound by the repo's bit-identity contract
// (across ranks, threads, substrates, and runs at fixed seeds).
// timingDirective allowlists a surface function's wall-clock reads as
// instrumentation-only (they feed Time/SweepTime report fields, never
// values).
const (
	surfaceDirective = "//repro:deterministic"
	timingDirective  = "//repro:timing"
)

// deterministicSurface returns every function on the package's
// deterministic surface: those annotated //repro:deterministic plus
// everything reachable from one within maxHelperDepth same-package
// calls. The map value is the annotated root a function inherits the
// obligation from (itself when directly annotated).
func deterministicSurface(pass *Pass) map[*types.Func]*types.Func {
	roots := map[*types.Func]bool{}
	for fn, decl := range pass.Graph.decls {
		if hasDirective(decl, surfaceDirective) {
			roots[fn] = true
		}
	}
	if len(roots) == 0 {
		return nil
	}
	surface := map[*types.Func]*types.Func{}
	var visit func(fn, root *types.Func, depth int)
	visit = func(fn, root *types.Func, depth int) {
		if _, seen := surface[fn]; seen {
			return
		}
		surface[fn] = root
		if depth >= maxHelperDepth {
			return
		}
		for _, callee := range pass.Graph.Callees(fn) {
			visit(callee, root, depth+1)
		}
	}
	for _, fn := range pass.Graph.funcsByDecl(pass.Files) {
		if roots[fn] {
			visit(fn, fn, 0)
		}
	}
	return surface
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
