package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Import paths of the packages whose contracts the suite encodes.
const (
	mpiPath    = "repro/internal/mpi"
	dgraphPath = "repro/internal/dgraph"
	parPath    = "repro/internal/par"
)

// callee identifies a resolved call target: the defining package path,
// the receiver's named-type name ("" for package-level functions), and
// the function name.
type callee struct {
	pkg  string
	recv string
	name string
}

// calleeOf resolves a call expression to its target, or ok=false for
// builtins, conversions, and calls the type info cannot resolve.
func calleeOf(info *types.Info, call *ast.CallExpr) (callee, bool) {
	fun := ast.Unparen(call.Fun)
	// Strip explicit generic instantiation (mpi.Irecv[float64]).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel] // package-qualified identifier
		}
	case *ast.Ident:
		obj = info.Uses[f]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return callee{}, false
	}
	c := callee{name: fn.Name()}
	if fn.Pkg() != nil {
		c.pkg = fn.Pkg().Path()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			c.recv = named.Obj().Name()
		}
	}
	return c, true
}

// namedOf unwraps pointers down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// recvString renders the receiver expression of a method call ("ex",
// "e.ex", "waves[slot]") so calls on the same value can be correlated
// textually within one function.
func recvString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprString(sel.X)
}

// exprString is a compact, parenthesis-free rendering of simple
// expressions, used only for textual correlation — two equal strings
// mean "same value" for the function-local heuristics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	default:
		return "?"
	}
}

// funcUnits returns every function declaration of the files together
// with its body; function literals are analyzed as part of their
// enclosing declaration (the analyzers' heuristics are function-local,
// and splitting a closure from the code that flushes or closes what it
// began would manufacture false positives).
type funcUnit struct {
	decl *ast.FuncDecl
	name string
}

func funcUnits(files []*ast.File) []funcUnit {
	var out []funcUnit
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcUnit{decl: fd, name: fd.Name.Name})
		}
	}
	return out
}

// recvTypeName returns the name of a declaration's receiver type, or
// "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// hasDirective reports whether the declaration's doc comment carries
// the given //-directive (e.g. "//repro:hotpath").
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
