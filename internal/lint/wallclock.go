package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags ambient-entropy reads — time.Now / time.Since /
// time.Until and the seeded-by-the-runtime top-level math/rand
// functions — on the deterministic surface: functions annotated
// //repro:deterministic and everything they reach through
// same-package helpers. A value derived from the wall clock or from
// ambient randomness differs per run by construction, so it can never
// feed a result the bit-identity contract covers.
//
// Timing instrumentation is legitimate (Report.Time, sweep timings):
// a surface function whose doc comment also carries //repro:timing is
// allowlisted for the time.* reads — the annotation is the author's
// signed statement that the clock feeds only timing fields, never
// values. Ambient math/rand is never allowlisted; randomness on the
// surface must flow from an explicit seed (see seedflow).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock or ambient-randomness reads on the deterministic surface (timing sites opt out with //repro:timing)",
	Run:  runWallClock,
}

var clockFuncs = map[callee]bool{
	{"time", "", "Now"}:   true,
	{"time", "", "Since"}: true,
	{"time", "", "Until"}: true,
}

func isAmbientRand(c callee) bool {
	// Package-level math/rand functions draw from the shared,
	// runtime-seeded source. Methods on an explicit *rand.Rand
	// (c.recv == "Rand") are fine — seedflow checks their seeding.
	return (c.pkg == "math/rand" || c.pkg == "math/rand/v2") && c.recv == ""
}

func runWallClock(pass *Pass) {
	surface := deterministicSurface(pass)
	if len(surface) == 0 {
		return
	}
	for _, fn := range pass.Graph.funcsByDecl(pass.Files) {
		root, onSurface := surface[fn]
		if !onSurface {
			continue
		}
		decl := pass.Graph.DeclOf(fn)
		timingOK := hasDirective(decl, timingDirective)
		checkWallClock(pass, decl, fn, root, timingOK)
	}
}

func checkWallClock(pass *Pass, fd *ast.FuncDecl, fn, root *types.Func, timingOK bool) {
	info := pass.Info
	via := ""
	if root != fn {
		via = " (reached from //repro:deterministic " + root.Name() + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := calleeOf(info, call)
		if !ok {
			return true
		}
		if clockFuncs[c] && !timingOK {
			pass.Reportf(call.Pos(),
				"time.%s on the deterministic surface%s: wall-clock values differ per run; if this is timing instrumentation only, annotate the function //repro:timing",
				c.name, via)
		}
		if isAmbientRand(c) {
			pass.Reportf(call.Pos(),
				"ambient math/rand.%s on the deterministic surface%s: the shared source is runtime-seeded, so draws differ per run; use an explicit rng.New(seed) stream",
				c.name, via)
		}
		return true
	})
}
