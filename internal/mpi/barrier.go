package mpi

import "sync"

// barrierPoisoned is the panic payload delivered to ranks parked in a
// collective when a sibling rank panics; Run swallows these secondary
// panics and re-raises only the original.
type barrierPoisoned struct{}

// barrier is a reusable counting barrier with generation numbers.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	count    int
	gen      uint64
	poisoned bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until n goroutines have called wait for the current
// generation. If the barrier has been poisoned it panics with
// barrierPoisoned so blocked ranks unwind.
func (b *barrier) wait() {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(barrierPoisoned{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		panic(barrierPoisoned{})
	}
}

// poison wakes all waiters and makes every subsequent wait panic.
// A poisoned rank also stops counting toward the barrier, so remaining
// ranks entering future collectives fail fast instead of hanging.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
