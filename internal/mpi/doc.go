// Package mpi provides the communicator that stands in for MPI in the
// XtraPuLP reproduction. Ranks interact only through collective
// operations (Barrier, Bcast, Allgather, Allgatherv, Alltoall,
// Alltoallv, Allreduce) and nonblocking point-to-point messages
// (Isend, Irecv, Waitall) — exactly the operation set the distributed
// partitioner and its downstream applications use.
//
// # Pluggable transport
//
// The rank substrate is the Transport interface: rank identity, the
// pooled int64 point-to-point triple (Send64/Recv64/Recycle64), the
// typed collectives, and Abort/Close. Two implementations exist:
//
//   - The in-process world (Run/RunThreads/RunWorld): each rank is a
//     goroutine, messages move through shared-memory mailboxes, and
//     generic element types transfer without serialization. This is
//     the default and the fast path — its steady-state exchange rounds
//     keep the AllocsPerRun == 0 guarantee.
//   - The socket transport (DialSocket/NewSocketWorld): each rank is
//     its own OS process, connected pairwise over Unix or TCP sockets
//     carrying internal/wire frames. Rendezvous comes from explicit
//     SocketConfig or the REPRO_RANK/REPRO_SIZE/REPRO_NET/REPRO_ADDRS
//     environment a launcher (cmd/reprorun) sets, and is bounded by
//     SocketConfig.Timeout — DefaultRendezvousTimeout (30s) when zero;
//     SocketConfigFromEnv rejects a non-positive REPRO_TIMEOUT rather
//     than let it disable the deadline. Within the deadline each peer
//     connection retries transient dial and handshake failures with
//     jittered exponential backoff (SocketConfig.Retry), and the
//     optional liveness knobs (SocketConfig.Heartbeat, CollTimeout)
//     turn a dead peer or a skipped collective into a named per-peer
//     failure instead of a hang — see the "Failure semantics" section
//     of docs/ARCHITECTURE.md for the full retry/watchdog state
//     machine.
//
// Both transports fold reductions in ascending rank order, so
// floating-point collective results — and therefore partitions and
// analytics values — are bit-identical across substrates at fixed
// seeds. internal/mpitest's RunTransportConformance holds every
// implementation to the same contract, including a chaos tier that
// injects resets, truncation, stalls, and peer kills through
// mpitest.ChaosProxy.
//
// # Semantics
//
// Semantics mirror MPI's: every rank in the world must call the same
// sequence of collectives, and receive buffers are fresh copies — ranks
// never alias each other's memory through the communicator, so code
// written against this package has true distributed-memory discipline.
// Deadlock (a rank skipping a collective, or receiving a message never
// sent) manifests as a hang, as it would under MPI; tests guard the
// communication contracts instead.
//
// # Point-to-point mailboxes and ordering
//
// Each ordered rank pair (src, dst) owns one unbounded FIFO mailbox.
// Messages between a pair are delivered in send order (MPI's
// non-overtaking guarantee) while messages from different sources are
// independent. Isend models an eager/buffered transport: the payload is
// copied at call time, the send completes immediately, and the sender
// may reuse its buffer. An Irecv matches the oldest undelivered message
// from its source; protocols that interleave several logical message
// kinds on the same pair (boundary updates, value pushes, piggybacked
// tallies) therefore stay matched as long as every rank issues the same
// sequence of exchange operations — the same discipline collectives
// require.
//
// Messages may carry a round tag (Isend64Tag/Recv64Tag). Tags never
// affect matching — delivery stays strict FIFO per pair — but a
// round-structured receiver can assert that the frame it dequeued
// belongs to the round it is draining, which turns a skewed pipelined
// exchange (one rank a round ahead) into an immediate panic naming
// both rounds instead of silently mis-decoded payloads.
//
// Unlike the collectives, the point-to-point operations are safe to
// complete from one helper goroutine concurrently with point-to-point
// traffic — or a collective — on the rank's main goroutine (all
// traffic counters are atomic, mailboxes are locked, and the mailbox
// and barrier synchronization states are disjoint). This is what lets
// a rank drain incoming boundary updates on a background goroutine
// while its main goroutine is still computing (communication/
// computation overlap), and lets the pipelined exchange engine keep a
// posted round draining while the main goroutine enters an epoch
// Allreduce.
//
// # Poison-on-panic
//
// When any rank panics, Run poisons the barrier and every mailbox so
// sibling ranks blocked in a collective or a point-to-point wait wake
// up and unwind (as barrierPoisoned panics) instead of hanging; the
// original panic is then re-raised on the caller. Code that receives on
// a helper goroutine must ferry a recovered panic back to the rank's
// main goroutine and re-raise it there, so Run's per-rank recovery
// observes it — a panic escaping on a bare goroutine would kill the
// whole process.
//
// # Traffic statistics and piggyback framing
//
// The communicator records per-rank traffic statistics (element volume,
// collective counts, point-to-point counts) so experiments can report
// communication cost. AppendTally and SplitTally implement the framing
// that piggybacks small reduction payloads ("tallies", e.g. per-part
// size deltas or convergence counters) onto point-to-point messages,
// which is how the partitioner's and the analytics' asynchronous modes
// retire their per-iteration Allreduces.
//
// # Pooled int64 fast path
//
// Isend64, Recv64, and Comm.Recycle64 form an allocation-free variant
// of Isend/Irecv for int64 payloads: transfer copies are drawn from a
// per-world best-fit buffer pool and returned to it by the receiver
// after decoding. Once the pool reaches the transport's in-flight
// high-water mark (a warmup round or two), steady-state exchange
// rounds perform no heap allocation. The two variants interoperate —
// Recv64 and Irecv accept messages from either send — but only the
// pooled pair recycles.
//
// # Hot-path annotation
//
// Functions on the steady-state exchange path (the mailbox put/take
// pair, Isend64Tag, recv64, Recycle64, the tally framing) carry a
// //repro:hotpath directive as the last line of their doc comment. The
// directive is a machine-checked promise: cmd/reprolint's hotpathalloc
// analyzer rejects any heap allocation in an annotated function except
// the sanctioned arena-growth idioms (growth under a cap/len guard,
// self-append, panic arguments). See docs/INVARIANTS.md.
package mpi
