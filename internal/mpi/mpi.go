package mpi

import (
	"fmt"
	"sync/atomic"
)

// world is the shared state of one in-process communicator group: the
// publication slots behind the collectives, the reusable barrier, the
// point-to-point mailboxes, and the pooled transfer buffers. It is
// created by Run (via NewProcWorld) and never escapes to user code
// except through Comm handles.
type world struct {
	size  int
	slots []any // one publication slot per rank, reused per collective
	bar   *barrier
	boxes []*mailbox // point-to-point FIFOs, indexed [src*size+dst]
	pool  pool64     // transfer-copy pool shared by sender and receiver
}

func newWorld(n int) *world {
	w := &world{
		size:  n,
		slots: make([]any, n),
		bar:   newBarrier(n),
		boxes: make([]*mailbox, n*n),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// poisonAll releases every rank parked in a collective or a
// point-to-point wait after a sibling panic.
func (w *world) poisonAll() {
	w.bar.poison()
	for _, b := range w.boxes {
		b.poison()
	}
}

// Comm is one rank's handle on the communicator: a Transport plus the
// per-rank traffic statistics and the generic convenience API. A Comm
// is confined to the goroutine that received it from Run (or built it
// with NewComm): collectives must be called from that goroutine only.
// The nonblocking point-to-point operations (Isend, Irecv, Waitall) may
// additionally be completed from one helper goroutine concurrently with
// point-to-point traffic — or a collective — on the main goroutine:
// traffic counters are atomic, and the transports keep their
// point-to-point and collective synchronization states disjoint. The
// pipelined exchange engine relies on this (its drainer receives a
// posted round while the main goroutine enters an epoch Allreduce).
type Comm struct {
	t       Transport
	rank    int // cached Transport.Rank(), hot on every guard
	size    int // cached Transport.Size()
	threads int
	stats   Stats
}

// Stats accumulates per-rank communication counters. Volumes count
// elements (not bytes) since the collectives are generic. All fields
// are maintained with atomic operations so point-to-point completions
// on a helper goroutine stay race-free.
type Stats struct {
	Collectives  int64 // number of collective operations entered
	ElemsSent    int64 // elements this rank sent (collectives + point-to-point)
	ElemsRecv    int64 // elements this rank received (collectives + point-to-point)
	ExchangeOps  int64 // Alltoallv calls (the partitioner's sync hot path)
	ReductionOps int64 // Allreduce calls
	SendOps      int64 // nonblocking point-to-point sends started
	RecvOps      int64 // nonblocking point-to-point receives completed
	TallyElems   int64 // elements of piggybacked tally framing appended to sends
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.size }

// Threads returns the intra-rank worker thread budget configured at Run
// time. Rank-local parallel loops (package par) use this value, playing
// the role of OMP_NUM_THREADS.
func (c *Comm) Threads() int { return c.threads }

// Transport returns the communicator's underlying transport, for code
// that manages transport lifecycles (worker mains, the conformance
// suite). Engine code should stay on the Comm API.
func (c *Comm) Transport() Transport { return c.t }

// fields enumerates every counter once; Stats and ResetStats both
// iterate it so a future field cannot be snapshot but not reset (or
// vice versa).
func (s *Stats) fields() []*int64 {
	return []*int64{
		&s.Collectives, &s.ElemsSent, &s.ElemsRecv,
		&s.ExchangeOps, &s.ReductionOps, &s.SendOps, &s.RecvOps,
		&s.TallyElems,
	}
}

// Stats returns a snapshot of this rank's communication counters.
func (c *Comm) Stats() Stats {
	var out Stats
	src, dst := c.stats.fields(), out.fields()
	for i := range src {
		*dst[i] = atomic.LoadInt64(src[i])
	}
	return out
}

// ResetStats zeroes the communication counters. It must not race with
// in-flight point-to-point completions.
func (c *Comm) ResetStats() {
	for _, p := range c.stats.fields() {
		atomic.StoreInt64(p, 0)
	}
}

// Run executes fn on nprocs simulated ranks, each on its own goroutine
// with one intra-rank worker thread, and returns when all ranks finish.
// Panics on any rank are re-raised on the caller after all other ranks
// are released (they would otherwise hang on the next barrier).
func Run(nprocs int, fn func(c *Comm)) {
	RunThreads(nprocs, 1, fn)
}

// RunThreads is Run with an explicit intra-rank thread budget, the
// equivalent of "one MPI task per node, OpenMP threads per task".
func RunThreads(nprocs, threadsPerRank int, fn func(c *Comm)) {
	if nprocs <= 0 {
		panic(fmt.Sprintf("mpi: Run with nprocs=%d", nprocs))
	}
	RunWorld(NewProcWorld(nprocs), threadsPerRank, fn)
}

// Barrier blocks until every rank in the world has entered it.
func (c *Comm) Barrier() {
	atomic.AddInt64(&c.stats.Collectives, 1)
	c.t.Barrier()
}

// slotsOf returns the in-process generic extension or panics: wire
// transports cannot ship arbitrary element types, only the numeric
// encodings the typed Transport surface covers.
func (c *Comm) slotsOf(op string) genericTransport {
	gt, ok := c.t.(genericTransport)
	if !ok {
		panic(fmt.Sprintf("mpi: %s with a non-numeric element type requires the in-process transport (have %T)", op, c.t))
	}
	return gt
}

// Bcast distributes root's data to every rank. The root passes the
// source slice; all ranks (including the root) receive an independent
// copy. Non-root callers may pass nil.
func Bcast[T any](c *Comm, root int, data []T) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	if c.rank == root {
		atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	}
	var out []T
	if v, ok := any(data).([]int64); ok {
		out = any(c.t.BcastI64(root, v)).([]T)
	} else {
		out = bcastSlots(c.slotsOf("Bcast"), root, data)
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(out)))
	return out
}

// Allgather collects one value from each rank; out[r] is rank r's value.
func Allgather[T any](c *Comm, v T) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, 1)
	var out []T
	if s, ok := any(v).(int64); ok {
		parts := c.t.AllgathervI64([]int64{s})
		o := make([]int64, len(parts))
		for r, p := range parts {
			o[r] = p[0]
		}
		out = any(o).([]T)
	} else {
		gt := c.slotsOf("Allgather")
		release := gt.publish(v)
		out = make([]T, c.size)
		for r := 0; r < c.size; r++ {
			out[r] = gt.slot(r).(T)
		}
		release()
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(c.size))
	return out
}

// Allgatherv collects a variable-length slice from each rank; out[r] is
// an independent copy of rank r's contribution.
func Allgatherv[T any](c *Comm, data []T) [][]T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	var out [][]T
	if v, ok := any(data).([]int64); ok {
		out = any(c.t.AllgathervI64(v)).([][]T)
	} else {
		out = allgathervSlots(c.slotsOf("Allgatherv"), data)
	}
	total := 0
	for _, p := range out {
		total += len(p)
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(total))
	return out
}

// Alltoall exchanges one element per rank pair: send[r] goes to rank r,
// and out[r] is what rank r sent to this rank. len(send) must be Size().
func Alltoall[T any](c *Comm, send []T) []T {
	if len(send) != c.size {
		panic(fmt.Sprintf("mpi: Alltoall send length %d != world size %d", len(send), c.size))
	}
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(send)))
	var out []T
	if v, ok := any(send).([]int64); ok {
		counts := make([]int, c.size)
		for i := range counts {
			counts[i] = 1
		}
		recv, _ := c.t.AlltoallvI64(v, counts)
		out = any(recv).([]T)
	} else {
		gt := c.slotsOf("Alltoall")
		release := gt.publish(send)
		out = make([]T, c.size)
		for r := 0; r < c.size; r++ {
			out[r] = gt.slot(r).([]T)[c.rank]
		}
		release()
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(c.size))
	return out
}

// Alltoallv performs a variable-size personalized exchange. sendBuf
// holds the data for all destinations packed contiguously in rank order;
// sendCounts[r] elements go to rank r. It returns the received data
// packed in source-rank order along with per-source counts.
func Alltoallv[T any](c *Comm, sendBuf []T, sendCounts []int) (recv []T, recvCounts []int) {
	alltoallvOffsets(len(sendBuf), sendCounts, c.size) // validate on every transport
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ExchangeOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(sendBuf)))

	switch v := any(sendBuf).(type) {
	case []int64:
		r, rc := c.t.AlltoallvI64(v, sendCounts)
		recv, recvCounts = any(r).([]T), rc
	case []float64:
		r, rc := c.t.AlltoallvF64(v, sendCounts)
		recv, recvCounts = any(r).([]T), rc
	default:
		recv, recvCounts = alltoallvSlots(c.slotsOf("Alltoallv"), sendBuf, sendCounts)
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(recv)))
	return recv, recvCounts
}

// Op selects the reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// Number is the constraint for reducible element types.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Allreduce reduces vals element-wise across all ranks with the given
// operator and returns the result (identical on every rank). All ranks
// must pass slices of the same length. Contributions fold in ascending
// rank order on every transport, so floating-point results are
// bit-identical between in-process and socket worlds.
func Allreduce[T Number](c *Comm, vals []T, op Op) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ReductionOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(vals)))
	var out []T
	switch v := any(vals).(type) {
	case []int64:
		out = any(c.t.AllreduceI64(v, op)).([]T)
	case []float64:
		out = any(c.t.AllreduceF64(v, op)).([]T)
	default:
		if gt, ok := c.t.(genericTransport); ok {
			out = allreduceSlots(gt, vals, op)
		} else {
			// Wire transport with a derived numeric type: reduce through
			// the int64 word encoding (exact for every integer type the
			// engine uses; T(1)/T(2) != 0 detects a floating T).
			if T(1)/T(2) != T(0) {
				tmp := make([]float64, len(vals))
				for i, x := range vals {
					tmp[i] = float64(x)
				}
				red := c.t.AllreduceF64(tmp, op)
				out = make([]T, len(red))
				for i, x := range red {
					out[i] = T(x)
				}
			} else {
				tmp := make([]int64, len(vals))
				for i, x := range vals {
					tmp[i] = int64(x)
				}
				red := c.t.AllreduceI64(tmp, op)
				out = make([]T, len(red))
				for i, x := range red {
					out[i] = T(x)
				}
			}
		}
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(out)))
	return out
}

// AllreduceScalar reduces a single value across ranks.
func AllreduceScalar[T Number](c *Comm, v T, op Op) T {
	return Allreduce(c, []T{v}, op)[0]
}

// NeighborhoodComplete reports whether every rank's communication
// neighborhood covers the whole world: each rank passes the number of
// DISTINCT peer ranks its schedule exchanges with, and the result is
// true exactly when that count is Size()-1 on every rank. This is the
// one-time collective detection behind every piggybacked-reduction
// optimization (the delta exchanger's tally folds, SpMV's ∞-norm
// ride): on a complete neighborhood, per-peer message frames already
// reach — and arrive from — every rank, so folding them reproduces a
// world-wide reduction exactly. It is a collective (one Allreduce);
// every rank must call it unconditionally at the same point.
func NeighborhoodComplete(c *Comm, neighbors int) bool {
	full := int64(0)
	if neighbors == c.Size()-1 {
		full = 1
	}
	return AllreduceScalar(c, full, Min) == 1
}
