package mpi

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// World is the shared state of one communicator group. It is created by
// Run and never escapes to user code except through Comm handles.
type world struct {
	size  int
	slots []any // one publication slot per rank, reused per collective
	bar   *barrier
	boxes []*mailbox // point-to-point FIFOs, indexed [src*size+dst]

	// buf64 is the free list backing the pooled int64 point-to-point
	// path (Isend64/Recv64/Recycle64), segregated into power-of-two
	// capacity classes: bucket b holds buffers of capacity exactly
	// 1<<b, so get and put are O(1) under the lock. Size classes
	// matter: exchange rounds mix tiny tally-only messages with large
	// dense payloads, and a single first-fit list would burn large
	// buffers on small messages, re-allocating large ones forever.
	// Pool residency is bounded by the number of in-flight messages,
	// so after a warmup round the buckets reach their steady sizes and
	// exchange rounds stop allocating.
	buf64Mu sync.Mutex
	buf64   [64][][]int64
}

// buf64Class returns the capacity class of a request for n > 0
// elements: the smallest b with 1<<b >= n.
func buf64Class(n int) int {
	return bits.Len64(uint64(n) - 1)
}

// getBuf64 pops a pooled buffer from the request's capacity class, or
// allocates one of exactly that class when the bucket is empty (so the
// buffer returns to the same bucket on recycle). n == 0 returns a
// canonical non-nil empty slice so message.i64 stays a valid
// discriminator.
func (w *world) getBuf64(n int) []int64 {
	if n == 0 {
		return empty64
	}
	c := buf64Class(n)
	w.buf64Mu.Lock()
	if bucket := w.buf64[c]; len(bucket) > 0 {
		last := len(bucket) - 1
		b := bucket[last]
		bucket[last] = nil
		w.buf64[c] = bucket[:last]
		w.buf64Mu.Unlock()
		return b[:n]
	}
	w.buf64Mu.Unlock()
	return make([]int64, n, 1<<c)
}

// putBuf64 returns a buffer to its capacity-class bucket;
// zero-capacity buffers (the canonical empty message) are dropped.
//
//repro:hotpath
func (w *world) putBuf64(buf []int64) {
	if cap(buf) == 0 {
		return
	}
	c := buf64Class(cap(buf))
	w.buf64Mu.Lock()
	w.buf64[c] = append(w.buf64[c], buf)
	w.buf64Mu.Unlock()
}

// empty64 is the shared zero-length payload of empty pooled messages;
// it is never written through.
var empty64 = make([]int64, 0)

// poisonAll releases every rank parked in a collective or a
// point-to-point wait after a sibling panic.
func (w *world) poisonAll() {
	w.bar.poison()
	for _, b := range w.boxes {
		b.poison()
	}
}

// Comm is one rank's handle on the communicator. A Comm is confined to
// the goroutine that received it from Run: collectives must be called
// from that goroutine only. The nonblocking point-to-point operations
// (Isend, Irecv, Waitall) may additionally be completed from one helper
// goroutine concurrently with point-to-point traffic — or a
// collective — on the main goroutine: traffic counters are atomic, and
// the mailbox and barrier/slot synchronization states are disjoint.
// The pipelined exchange engine relies on this (its drainer receives a
// posted round while the main goroutine enters an epoch Allreduce).
type Comm struct {
	w       *world
	rank    int
	threads int
	stats   Stats
}

// Stats accumulates per-rank communication counters. Volumes count
// elements (not bytes) since the collectives are generic. All fields
// are maintained with atomic operations so point-to-point completions
// on a helper goroutine stay race-free.
type Stats struct {
	Collectives  int64 // number of collective operations entered
	ElemsSent    int64 // elements this rank sent (collectives + point-to-point)
	ElemsRecv    int64 // elements this rank received (collectives + point-to-point)
	ExchangeOps  int64 // Alltoallv calls (the partitioner's sync hot path)
	ReductionOps int64 // Allreduce calls
	SendOps      int64 // nonblocking point-to-point sends started
	RecvOps      int64 // nonblocking point-to-point receives completed
	TallyElems   int64 // elements of piggybacked tally framing appended to sends
}

// Rank returns this rank's id in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.w.size }

// Threads returns the intra-rank worker thread budget configured at Run
// time. Rank-local parallel loops (package par) use this value, playing
// the role of OMP_NUM_THREADS.
func (c *Comm) Threads() int { return c.threads }

// fields enumerates every counter once; Stats and ResetStats both
// iterate it so a future field cannot be snapshot but not reset (or
// vice versa).
func (s *Stats) fields() []*int64 {
	return []*int64{
		&s.Collectives, &s.ElemsSent, &s.ElemsRecv,
		&s.ExchangeOps, &s.ReductionOps, &s.SendOps, &s.RecvOps,
		&s.TallyElems,
	}
}

// Stats returns a snapshot of this rank's communication counters.
func (c *Comm) Stats() Stats {
	var out Stats
	src, dst := c.stats.fields(), out.fields()
	for i := range src {
		*dst[i] = atomic.LoadInt64(src[i])
	}
	return out
}

// ResetStats zeroes the communication counters. It must not race with
// in-flight point-to-point completions.
func (c *Comm) ResetStats() {
	for _, p := range c.stats.fields() {
		atomic.StoreInt64(p, 0)
	}
}

// Run executes fn on nprocs simulated ranks, each on its own goroutine
// with one intra-rank worker thread, and returns when all ranks finish.
// Panics on any rank are re-raised on the caller after all other ranks
// are released (they would otherwise hang on the next barrier).
func Run(nprocs int, fn func(c *Comm)) {
	RunThreads(nprocs, 1, fn)
}

// RunThreads is Run with an explicit intra-rank thread budget, the
// equivalent of "one MPI task per node, OpenMP threads per task".
func RunThreads(nprocs, threadsPerRank int, fn func(c *Comm)) {
	if nprocs <= 0 {
		panic(fmt.Sprintf("mpi: Run with nprocs=%d", nprocs))
	}
	if threadsPerRank <= 0 {
		threadsPerRank = 1
	}
	w := &world{
		size:  nprocs,
		slots: make([]any, nprocs),
		bar:   newBarrier(nprocs),
		boxes: make([]*mailbox, nprocs*nprocs),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	var wg sync.WaitGroup
	panics := make([]any, nprocs)
	for r := 0; r < nprocs; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					// Poison the barrier and mailboxes so sibling ranks
					// blocked in a collective or a point-to-point wait
					// wake up and unwind instead of hanging.
					w.poisonAll()
				}
			}()
			fn(&Comm{w: w, rank: rank, threads: threadsPerRank})
		}(r)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			if bp, ok := p.(barrierPoisoned); ok {
				_ = bp
				continue // secondary victim of another rank's panic
			}
			panic(p)
		}
	}
}

// Barrier blocks until every rank in the world has entered it.
func (c *Comm) Barrier() {
	atomic.AddInt64(&c.stats.Collectives, 1)
	c.w.bar.wait()
}

// publish writes v into this rank's slot and synchronizes so all slots
// are visible; the returned release function must be called after the
// caller has finished reading other ranks' slots.
func (c *Comm) publish(v any) (release func()) {
	c.w.slots[c.rank] = v
	c.w.bar.wait()
	return func() {
		c.w.bar.wait()
		c.w.slots[c.rank] = nil
	}
}

// Bcast distributes root's data to every rank. The root passes the
// source slice; all ranks (including the root) receive an independent
// copy. Non-root callers may pass nil.
func Bcast[T any](c *Comm, root int, data []T) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	var pub any
	if c.rank == root {
		pub = data
		atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	}
	release := c.publish(pub)
	src := c.w.slots[root].([]T)
	out := make([]T, len(src))
	copy(out, src)
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(out)))
	release()
	return out
}

// Allgather collects one value from each rank; out[r] is rank r's value.
func Allgather[T any](c *Comm, v T) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, 1)
	release := c.publish(v)
	out := make([]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		out[r] = c.w.slots[r].(T)
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(c.w.size))
	release()
	return out
}

// Allgatherv collects a variable-length slice from each rank; out[r] is
// an independent copy of rank r's contribution.
func Allgatherv[T any](c *Comm, data []T) [][]T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	release := c.publish(data)
	out := make([][]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		src := c.w.slots[r].([]T)
		cp := make([]T, len(src))
		copy(cp, src)
		out[r] = cp
		atomic.AddInt64(&c.stats.ElemsRecv, int64(len(cp)))
	}
	release()
	return out
}

// Alltoall exchanges one element per rank pair: send[r] goes to rank r,
// and out[r] is what rank r sent to this rank. len(send) must be Size().
func Alltoall[T any](c *Comm, send []T) []T {
	if len(send) != c.w.size {
		panic(fmt.Sprintf("mpi: Alltoall send length %d != world size %d", len(send), c.w.size))
	}
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(send)))
	release := c.publish(send)
	out := make([]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		out[r] = c.w.slots[r].([]T)[c.rank]
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(c.w.size))
	release()
	return out
}

// vPayload is what each rank publishes during Alltoallv: its packed send
// buffer plus the per-destination counts and exclusive offsets.
type vPayload[T any] struct {
	buf     []T
	counts  []int
	offsets []int
}

// Alltoallv performs a variable-size personalized exchange. sendBuf
// holds the data for all destinations packed contiguously in rank order;
// sendCounts[r] elements go to rank r. It returns the received data
// packed in source-rank order along with per-source counts.
func Alltoallv[T any](c *Comm, sendBuf []T, sendCounts []int) (recv []T, recvCounts []int) {
	if len(sendCounts) != c.w.size {
		panic(fmt.Sprintf("mpi: Alltoallv counts length %d != world size %d", len(sendCounts), c.w.size))
	}
	total := 0
	offsets := make([]int, c.w.size+1)
	for r, n := range sendCounts {
		if n < 0 {
			panic("mpi: Alltoallv negative send count")
		}
		offsets[r+1] = offsets[r] + n
		total += n
	}
	if total != len(sendBuf) {
		panic(fmt.Sprintf("mpi: Alltoallv counts sum %d != buffer length %d", total, len(sendBuf)))
	}
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ExchangeOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(total))

	release := c.publish(vPayload[T]{buf: sendBuf, counts: sendCounts, offsets: offsets})

	recvCounts = make([]int, c.w.size)
	rtotal := 0
	for r := 0; r < c.w.size; r++ {
		p := c.w.slots[r].(vPayload[T])
		recvCounts[r] = p.counts[c.rank]
		rtotal += recvCounts[r]
	}
	recv = make([]T, 0, rtotal)
	for r := 0; r < c.w.size; r++ {
		p := c.w.slots[r].(vPayload[T])
		seg := p.buf[p.offsets[c.rank]:p.offsets[c.rank+1]]
		recv = append(recv, seg...)
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(rtotal))
	release()
	return recv, recvCounts
}

// Op selects the reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Max
	Min
)

// Number is the constraint for reducible element types.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Allreduce reduces vals element-wise across all ranks with the given
// operator and returns the result (identical on every rank). All ranks
// must pass slices of the same length.
func Allreduce[T Number](c *Comm, vals []T, op Op) []T {
	atomic.AddInt64(&c.stats.Collectives, 1)
	atomic.AddInt64(&c.stats.ReductionOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(vals)))
	release := c.publish(vals)
	out := make([]T, len(vals))
	first := c.w.slots[0].([]T)
	if len(first) != len(vals) {
		release()
		panic("mpi: Allreduce length mismatch across ranks")
	}
	copy(out, first)
	for r := 1; r < c.w.size; r++ {
		contrib := c.w.slots[r].([]T)
		if len(contrib) != len(vals) {
			release()
			panic("mpi: Allreduce length mismatch across ranks")
		}
		switch op {
		case Sum:
			for i, v := range contrib {
				out[i] += v
			}
		case Max:
			for i, v := range contrib {
				if v > out[i] {
					out[i] = v
				}
			}
		case Min:
			for i, v := range contrib {
				if v < out[i] {
					out[i] = v
				}
			}
		}
	}
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(out)))
	release()
	return out
}

// AllreduceScalar reduces a single value across ranks.
func AllreduceScalar[T Number](c *Comm, v T, op Op) T {
	return Allreduce(c, []T{v}, op)[0]
}

// NeighborhoodComplete reports whether every rank's communication
// neighborhood covers the whole world: each rank passes the number of
// DISTINCT peer ranks its schedule exchanges with, and the result is
// true exactly when that count is Size()-1 on every rank. This is the
// one-time collective detection behind every piggybacked-reduction
// optimization (the delta exchanger's tally folds, SpMV's ∞-norm
// ride): on a complete neighborhood, per-peer message frames already
// reach — and arrive from — every rank, so folding them reproduces a
// world-wide reduction exactly. It is a collective (one Allreduce);
// every rank must call it unconditionally at the same point.
func NeighborhoodComplete(c *Comm, neighbors int) bool {
	full := int64(0)
	if neighbors == c.Size()-1 {
		full = 1
	}
	return AllreduceScalar(c, full, Min) == 1
}
