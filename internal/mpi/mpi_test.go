package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 16} {
		var seen int64
		ranks := make([]int32, p)
		Run(p, func(c *Comm) {
			atomic.AddInt64(&seen, 1)
			atomic.AddInt32(&ranks[c.Rank()], 1)
			if c.Size() != p {
				t.Errorf("Size() = %d, want %d", c.Size(), p)
			}
		})
		if seen != int64(p) {
			t.Fatalf("nprocs=%d: %d ranks ran", p, seen)
		}
		for r, n := range ranks {
			if n != 1 {
				t.Fatalf("nprocs=%d: rank %d ran %d times", p, r, n)
			}
		}
	}
}

func TestRunThreadsExposesBudget(t *testing.T) {
	RunThreads(3, 5, func(c *Comm) {
		if c.Threads() != 5 {
			t.Errorf("Threads() = %d, want 5", c.Threads())
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	const p = 8
	var phase atomic.Int64
	Run(p, func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		// After the barrier every rank must observe all p increments.
		if got := phase.Load(); got != p {
			t.Errorf("rank %d saw phase=%d after barrier, want %d", c.Rank(), got, p)
		}
		c.Barrier()
	})
}

func TestBcast(t *testing.T) {
	const p = 5
	Run(p, func(c *Comm) {
		var data []int64
		if c.Rank() == 2 {
			data = []int64{10, 20, 30}
		}
		got := Bcast(c, 2, data)
		if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
			t.Errorf("rank %d Bcast got %v", c.Rank(), got)
		}
		// The received buffer must be a private copy.
		got[0] = int64(c.Rank()) * 1000
		c.Barrier()
		if c.Rank() == 2 && data[0] != 10 {
			t.Errorf("root buffer mutated through Bcast: %v", data)
		}
	})
}

func TestAllgather(t *testing.T) {
	const p = 6
	Run(p, func(c *Comm) {
		got := Allgather(c, c.Rank()*10)
		for r := 0; r < p; r++ {
			if got[r] != r*10 {
				t.Errorf("rank %d Allgather[%d] = %d, want %d", c.Rank(), r, got[r], r*10)
			}
		}
	})
}

func TestAlltoall(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		send := make([]int, p)
		for r := range send {
			send[r] = c.Rank()*100 + r // tagged (src, dst)
		}
		got := Alltoall(c, send)
		for r := 0; r < p; r++ {
			want := r*100 + c.Rank()
			if got[r] != want {
				t.Errorf("rank %d Alltoall[%d] = %d, want %d", c.Rank(), r, got[r], want)
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		// Rank r sends r+1 copies of value r*10+dst to each destination.
		counts := make([]int, p)
		var buf []int64
		for dst := 0; dst < p; dst++ {
			n := c.Rank() + 1
			counts[dst] = n
			for k := 0; k < n; k++ {
				buf = append(buf, int64(c.Rank()*10+dst))
			}
		}
		recv, rc := Alltoallv(c, buf, counts)
		pos := 0
		for src := 0; src < p; src++ {
			if rc[src] != src+1 {
				t.Errorf("rank %d recvCounts[%d] = %d, want %d", c.Rank(), src, rc[src], src+1)
			}
			for k := 0; k < rc[src]; k++ {
				want := int64(src*10 + c.Rank())
				if recv[pos] != want {
					t.Errorf("rank %d recv[%d] = %d, want %d", c.Rank(), pos, recv[pos], want)
				}
				pos++
			}
		}
		if pos != len(recv) {
			t.Errorf("rank %d received %d elements, consumed %d", c.Rank(), len(recv), pos)
		}
	})
}

func TestAlltoallvEmpty(t *testing.T) {
	const p = 3
	Run(p, func(c *Comm) {
		recv, rc := Alltoallv[int64](c, nil, make([]int, p))
		if len(recv) != 0 {
			t.Errorf("rank %d received %d elements from empty exchange", c.Rank(), len(recv))
		}
		for _, n := range rc {
			if n != 0 {
				t.Errorf("rank %d nonzero recv count %d", c.Rank(), n)
			}
		}
	})
}

func TestAlltoallvValidatesCounts(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for mismatched counts")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "Alltoallv") {
			t.Fatalf("unexpected panic payload %v", p)
		}
	}()
	Run(1, func(c *Comm) {
		Alltoallv(c, []int64{1, 2}, []int{1}) // sum 1 != len 2... actually len counts ok, sum mismatch
	})
}

func TestAllreduceSum(t *testing.T) {
	const p = 5
	Run(p, func(c *Comm) {
		vals := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
		got := Allreduce(c, vals, Sum)
		want0 := int64(0 + 1 + 2 + 3 + 4)
		want2 := int64(0 + 1 + 4 + 9 + 16)
		if got[0] != want0 || got[1] != p || got[2] != want2 {
			t.Errorf("rank %d Allreduce Sum = %v", c.Rank(), got)
		}
	})
}

func TestAllreduceMaxMin(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		got := Allreduce(c, []float64{float64(c.Rank())}, Max)
		if got[0] != 3 {
			t.Errorf("Max = %v, want 3", got[0])
		}
		gotMin := Allreduce(c, []float64{float64(c.Rank())}, Min)
		if gotMin[0] != 0 {
			t.Errorf("Min = %v, want 0", gotMin[0])
		}
	})
}

func TestAllreduceScalar(t *testing.T) {
	Run(6, func(c *Comm) {
		if got := AllreduceScalar(c, int64(1), Sum); got != 6 {
			t.Errorf("scalar sum = %d, want 6", got)
		}
	})
}

func TestPanicPropagatesFromRank(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate from rank")
		}
		if s, ok := p.(string); !ok || s != "rank boom" {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			panic("rank boom")
		}
		// Other ranks park in a collective; poison must release them.
		c.Barrier()
		Allgather(c, 1)
	})
}

func TestStatsCountTraffic(t *testing.T) {
	Run(3, func(c *Comm) {
		c.ResetStats()
		Allgather(c, 1)
		Alltoallv(c, []int64{1, 2, 3}, []int{1, 1, 1})
		AllreduceScalar(c, int64(1), Sum)
		s := c.Stats()
		if s.Collectives != 3 {
			t.Errorf("Collectives = %d, want 3", s.Collectives)
		}
		if s.ExchangeOps != 1 || s.ReductionOps != 1 {
			t.Errorf("ExchangeOps=%d ReductionOps=%d, want 1,1", s.ExchangeOps, s.ReductionOps)
		}
		if s.ElemsSent == 0 || s.ElemsRecv == 0 {
			t.Errorf("traffic counters not advancing: %+v", s)
		}
	})
}

func TestCollectiveSequenceStress(t *testing.T) {
	// Many back-to-back collectives must not corrupt each other's slots.
	const p = 8
	Run(p, func(c *Comm) {
		for iter := 0; iter < 50; iter++ {
			v := Allgather(c, c.Rank()+iter)
			for r := 0; r < p; r++ {
				if v[r] != r+iter {
					t.Errorf("iter %d: Allgather[%d] = %d", iter, r, v[r])
					return
				}
			}
			total := AllreduceScalar(c, int64(1), Sum)
			if total != p {
				t.Errorf("iter %d: sum = %d", iter, total)
				return
			}
		}
	})
}

// Property: Alltoallv delivers exactly the elements sent, regardless of
// the (ragged) count matrix.
func TestQuickAlltoallvConservation(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%6) + 1
		// counts[src][dst] derived deterministically from seed.
		counts := make([][]int, p)
		x := seed
		for s := range counts {
			counts[s] = make([]int, p)
			for d := range counts[s] {
				x = x*6364136223846793005 + 1442695040888963407
				counts[s][d] = int(x % 5)
			}
		}
		ok := true
		Run(p, func(c *Comm) {
			var buf []int64
			for dst := 0; dst < p; dst++ {
				for k := 0; k < counts[c.Rank()][dst]; k++ {
					buf = append(buf, int64(c.Rank()*1000+dst*10+k))
				}
			}
			recv, rc := Alltoallv(c, buf, counts[c.Rank()])
			pos := 0
			for src := 0; src < p; src++ {
				if rc[src] != counts[src][c.Rank()] {
					ok = false
					return
				}
				for k := 0; k < rc[src]; k++ {
					if recv[pos] != int64(src*1000+c.Rank()*10+k) {
						ok = false
						return
					}
					pos++
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlltoallv8Ranks(b *testing.B) {
	const p = 8
	const perDst = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(p, func(c *Comm) {
			buf := make([]int64, p*perDst)
			counts := make([]int, p)
			for r := range counts {
				counts[r] = perDst
			}
			Alltoallv(c, buf, counts)
		})
	}
}

func TestAllgatherv(t *testing.T) {
	const p = 4
	Run(p, func(c *Comm) {
		mine := make([]int, c.Rank()) // rank r contributes r elements
		for i := range mine {
			mine[i] = c.Rank()*100 + i
		}
		all := Allgatherv(c, mine)
		if len(all) != p {
			t.Errorf("got %d contributions", len(all))
			return
		}
		for r := 0; r < p; r++ {
			if len(all[r]) != r {
				t.Errorf("rank %d contribution has %d elements, want %d", r, len(all[r]), r)
				return
			}
			for i, v := range all[r] {
				if v != r*100+i {
					t.Errorf("all[%d][%d] = %d", r, i, v)
					return
				}
			}
		}
		// Mutating the received copy must not affect other ranks.
		if c.Rank() == 0 && len(all[1]) > 0 {
			all[1][0] = -1
		}
		c.Barrier()
	})
}
