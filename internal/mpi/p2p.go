package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Nonblocking point-to-point messaging. Each ordered rank pair
// (src, dst) owns one FIFO channel — an in-process mailbox or a socket
// stream, depending on the transport — so messages between a pair are
// delivered in send order (MPI's non-overtaking guarantee) while
// messages from different sources are independent. Isend copies its
// buffer at call time — the sender may reuse it immediately, and the
// receiver gets a slice no other rank aliases.
//
// Unlike the collectives, the point-to-point operations are safe to
// complete from a goroutine other than the rank's main goroutine: all
// traffic counters are updated atomically and the transports keep
// their point-to-point and collective synchronization states disjoint.
// This is what lets a rank drain incoming boundary updates on a
// background goroutine while its main goroutine is still computing
// (communication/computation overlap) — or, on the pipelined exchange
// engine, while the main goroutine is inside a collective.
//
// Messages may carry a round tag (Isend64Tag/Recv64Tag). Tags never
// affect matching — delivery stays strict FIFO per pair — they only
// let a round-structured receiver assert that the frame it dequeued
// belongs to the round it is draining.

// message is one in-flight point-to-point transfer. Generic sends box
// their copy in data; the int64 fast path (Isend64) stores its pooled
// copy in i64 instead, so enqueueing allocates nothing. tag carries the
// sender's round tag (Isend64Tag), zero for untagged sends.
type message struct {
	data  any     // a private []T copy (generic path)
	i64   []int64 // a pooled private copy (int64 fast path)
	count int
	tag   uint32
}

// mailbox is the unbounded FIFO for one ordered (src, dst) rank pair.
// Dequeuing advances head instead of reslicing so the backing array —
// and with it the steady-state zero-allocation property of put — is
// never lost to the front of the slice.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	msgs     []message
	head     int
	poisoned bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message; put never blocks (the simulator models an
// eager/buffered transport, so Isend completes immediately).
//
//repro:hotpath
func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

// take dequeues the oldest message, blocking until one arrives. It
// panics with barrierPoisoned after a sibling rank's panic so blocked
// receivers unwind instead of hanging.
//
//repro:hotpath
func (m *mailbox) take() message {
	m.mu.Lock()
	for m.head >= len(m.msgs) && !m.poisoned {
		m.cond.Wait()
	}
	if m.poisoned {
		m.mu.Unlock()
		panic(barrierPoisoned{})
	}
	msg := m.msgs[m.head]
	m.msgs[m.head] = message{} // release the buffer reference
	m.head++
	if m.head == len(m.msgs) {
		m.msgs = m.msgs[:0]
		m.head = 0
	} else if m.head >= 16 && m.head*2 >= len(m.msgs) {
		// The dead prefix dominates a queue that never fully drains
		// (producer consistently one round ahead): compact in place so
		// the backing array stops growing.
		n := copy(m.msgs, m.msgs[m.head:])
		for i := n; i < len(m.msgs); i++ {
			m.msgs[i] = message{}
		}
		m.msgs = m.msgs[:n]
		m.head = 0
	}
	m.mu.Unlock()
	return msg
}

// poison wakes all blocked receivers and makes every subsequent take
// panic.
func (m *mailbox) poison() {
	m.mu.Lock()
	m.poisoned = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// box returns the mailbox for the ordered pair (src, dst).
func (w *world) box(src, dst int) *mailbox {
	return w.boxes[src*w.size+dst]
}

// Request is the handle of a nonblocking point-to-point operation.
// Wait blocks until the operation completes; it is idempotent.
type Request interface {
	Wait()
}

// sendRequest is the (already complete) handle of an Isend.
type sendRequest struct{}

func (sendRequest) Wait() {}

// RecvRequest is the typed handle of an Irecv. Data is valid only
// after Wait returns. A RecvRequest must be completed by exactly one
// goroutine.
type RecvRequest[T any] struct {
	c    *Comm
	src  int
	done bool
	data []T
}

// Wait blocks until the matching message arrives and materializes it.
func (r *RecvRequest[T]) Wait() {
	if r.done {
		return
	}
	var data []T
	count := 0
	if gt, ok := r.c.t.(genericTransport); ok {
		msg := gt.recvAny(r.src)
		if msg.i64 != nil {
			// Fast-path message (Isend64) received through the generic API.
			d, ok := any(msg.i64).([]T)
			if !ok {
				panic(fmt.Sprintf("mpi: Irecv from rank %d: element type mismatch, message holds []int64", r.src))
			}
			data = d
		} else {
			d, ok := msg.data.([]T)
			if !ok {
				panic(fmt.Sprintf("mpi: Irecv from rank %d: element type mismatch, message holds %T", r.src, msg.data))
			}
			data = d
		}
		count = msg.count
	} else {
		// Wire transport: the frame carries int64 words; float64
		// payloads travel bit-converted (see Isend).
		words, _ := r.c.t.Recv64(r.src)
		count = len(words)
		switch any(data).(type) {
		case []int64:
			data = any(words).([]T)
		case []float64:
			vals := make([]float64, len(words))
			for i, wd := range words {
				vals[i] = math.Float64frombits(uint64(wd))
			}
			r.c.t.Recycle64(words)
			data = any(vals).([]T)
		default:
			panic(fmt.Sprintf("mpi: Irecv of %T requires the in-process transport (have %T)", data, r.c.t))
		}
	}
	r.data = data
	r.done = true
	atomic.AddInt64(&r.c.stats.RecvOps, 1)
	atomic.AddInt64(&r.c.stats.ElemsRecv, int64(count))
}

// Await is Wait followed by Data, for single-request call sites.
func (r *RecvRequest[T]) Await() []T {
	r.Wait()
	return r.Data()
}

// Data returns the received buffer (a private copy; the sender cannot
// alias it). It panics if the request has not completed.
func (r *RecvRequest[T]) Data() []T {
	if !r.done {
		panic("mpi: RecvRequest.Data before Wait")
	}
	return r.data
}

// Isend starts a nonblocking send of data to rank dst. The buffer is
// copied before Isend returns, so the caller may modify data
// immediately. Messages to the same destination are received in send
// order. On a wire transport, []int64 payloads take the framed fast
// path and []float64 payloads travel bit-converted to words; other
// element types require the in-process transport.
func Isend[T any](c *Comm, dst int, data []T) Request {
	atomic.AddInt64(&c.stats.SendOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	if gt, ok := c.t.(genericTransport); ok {
		cp := make([]T, len(data))
		copy(cp, data)
		gt.sendAny(dst, cp, len(cp))
		return sendRequest{}
	}
	switch v := any(data).(type) {
	case []int64:
		c.t.Send64(dst, 0, v)
	case []float64:
		words := make([]int64, len(v))
		for i, f := range v {
			words[i] = int64(math.Float64bits(f))
		}
		c.t.Send64(dst, 0, words)
	default:
		panic(fmt.Sprintf("mpi: Isend of %T requires the in-process transport (have %T)", data, c.t))
	}
	return sendRequest{}
}

// Irecv starts a nonblocking receive of the next []T message from rank
// src. The transfer completes when Wait (or Await) is called.
func Irecv[T any](c *Comm, src int) *RecvRequest[T] {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mpi: Irecv from rank %d outside [0,%d)", src, c.size))
	}
	return &RecvRequest[T]{c: c, src: src}
}

// Waitall completes every request; the MPI_Waitall of this simulator.
func Waitall(reqs ...Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Round-tag space. A 32-bit round tag is split into an 8-bit wave id
// (high bits) and a 24-bit round sequence (low bits), so callers that
// interleave several independent round streams over one pair FIFO —
// the multi-wave HC engine runs one BFS per wave slot — can stamp
// every frame with the stream it belongs to. Tags still never affect
// matching; the split only makes a skewed schedule panic with a
// message naming the wave AND the round instead of two bare numbers.
// Sequences wrap at 2^24 identically on both sides of a pair, so the
// equality assert survives the wrap.
const (
	// TagWaveBits is the width of the wave-id field.
	TagWaveBits = 8
	// TagSeqBits is the width of the round-sequence field.
	TagSeqBits = 32 - TagWaveBits
	// MaxTagWave is the largest encodable wave id.
	MaxTagWave = 1<<TagWaveBits - 1
)

// RoundTag composes a wave id and a round sequence into one round tag.
// wave must be in [0, MaxTagWave]; seq is truncated to TagSeqBits.
func RoundTag(wave int, seq uint32) uint32 {
	if wave < 0 || wave > MaxTagWave {
		panic(fmt.Sprintf("mpi: round-tag wave %d outside [0,%d]", wave, MaxTagWave))
	}
	return uint32(wave)<<TagSeqBits | seq&(1<<TagSeqBits-1)
}

// SplitRoundTag decomposes a round tag built by RoundTag.
func SplitRoundTag(tag uint32) (wave int, seq uint32) {
	return int(tag >> TagSeqBits), tag & (1<<TagSeqBits - 1)
}

// Isend64 is Isend for int64 payloads with the transfer copy drawn
// from the transport's buffer pool instead of the heap: together with
// Recv64/Recycle64 on the receive side, a steady-state exchange round
// allocates nothing. Like Isend, the buffer is copied before return
// and may be reused immediately; completion is eager, so no Request is
// returned.
func Isend64(c *Comm, dst int, data []int64) {
	Isend64Tag(c, dst, 0, data)
}

// Isend64Tag is Isend64 with an explicit round tag stamped on the
// message frame. Tags do not affect matching — delivery stays strict
// FIFO per ordered pair, like MPI_ANY_TAG — but a receiver that knows
// which round it is draining can assert the frame with Recv64Tag, so a
// protocol skew (one rank a round ahead on a pipelined exchange)
// surfaces as an immediate panic naming both rounds instead of as
// silently mis-decoded payloads.
//
//repro:hotpath
func Isend64Tag(c *Comm, dst int, tag uint32, data []int64) {
	atomic.AddInt64(&c.stats.SendOps, 1)
	atomic.AddInt64(&c.stats.ElemsSent, int64(len(data)))
	c.t.Send64(dst, tag, data)
}

// Recv64 blocks until the next int64 message from rank src arrives and
// returns its payload. The returned buffer is a private copy; when the
// caller has decoded it, passing it to Recycle64 returns it to the
// pool so subsequent sends reuse it. Messages sent with the generic
// Isend are accepted too (they just were not pooled). Recv64 ignores
// round tags; the delta exchanger's drainer receives through Recv64Tag,
// which asserts them.
func Recv64(c *Comm, src int) []int64 {
	data, _ := recv64(c, src)
	return data
}

// Recv64Tag is Recv64 asserting the message's round tag: it panics if
// the oldest undelivered frame from src does not carry want. Senders
// stamp tags with Isend64Tag; untagged sends carry tag 0.
func Recv64Tag(c *Comm, src int, want uint32) []int64 {
	data, tag := recv64(c, src)
	if tag != want {
		gw, gs := SplitRoundTag(tag)
		ww, ws := SplitRoundTag(want)
		panic(fmt.Sprintf("mpi: rank %d received wave %d round %d from rank %d, expected wave %d round %d (pipelined rounds skewed)",
			c.rank, gw, gs, src, ww, ws))
	}
	return data
}

//repro:hotpath
func recv64(c *Comm, src int) ([]int64, uint32) {
	data, tag := c.t.Recv64(src)
	atomic.AddInt64(&c.stats.RecvOps, 1)
	atomic.AddInt64(&c.stats.ElemsRecv, int64(len(data)))
	return data, tag
}

// Recycle64 returns a buffer obtained from Recv64 to the transport's
// pool. The caller must not touch buf afterwards. Recycling is
// optional — skipping it only costs allocations — and must happen at
// most once per received buffer.
//
//repro:hotpath
func (c *Comm) Recycle64(buf []int64) {
	c.t.Recycle64(buf)
}
