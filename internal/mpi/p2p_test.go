package mpi

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// Every Stats counter must appear in the shared fields() enumeration,
// or Stats()/ResetStats() would silently miss it.
func TestStatsFieldsCoverStruct(t *testing.T) {
	var s Stats
	if got, want := len(s.fields()), reflect.TypeOf(s).NumField(); got != want {
		t.Fatalf("Stats.fields() enumerates %d counters, struct has %d", got, want)
	}
}

func TestIsendIrecvRoundTrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Isend(c, 1, []int64{7, 8, 9})
		} else {
			got := Irecv[int64](c, 0).Await()
			if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
				t.Errorf("Irecv got %v", got)
			}
		}
	})
}

// Messages between one rank pair must be delivered in send order
// (MPI's non-overtaking rule), regardless of how many are in flight.
func TestP2POrderingPerRankPair(t *testing.T) {
	const p = 4
	const msgs = 32
	Run(p, func(c *Comm) {
		// Every rank streams numbered messages to every other rank…
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue
			}
			for k := 0; k < msgs; k++ {
				Isend(c, dst, []int32{int32(c.Rank()), int32(k)})
			}
		}
		// …and must observe each source's stream strictly in order.
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			for k := 0; k < msgs; k++ {
				got := Irecv[int32](c, src).Await()
				if len(got) != 2 || got[0] != int32(src) || got[1] != int32(k) {
					t.Errorf("rank %d msg %d from %d: got %v", c.Rank(), k, src, got)
					return
				}
			}
		}
	})
}

// The receive buffer must be private: mutating the sender's buffer
// after Isend, or the receiver's buffer after Wait, must not be
// visible to the other side.
func TestP2PNoBufferAliasing(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []int64{1, 2, 3}
			Isend(c, 1, buf)
			buf[0] = -99 // sender reuses its buffer immediately
			Isend(c, 1, buf)
		} else {
			first := Irecv[int64](c, 0).Await()
			second := Irecv[int64](c, 0).Await()
			if first[0] != 1 {
				t.Errorf("first message saw sender's later write: %v", first)
			}
			if second[0] != -99 {
				t.Errorf("second message wrong: %v", second)
			}
			first[1] = 1000 // receiver-side writes stay private too
			if second[1] != 2 {
				t.Errorf("messages alias each other: %v", second)
			}
		}
	})
}

func TestP2PStatsAccounting(t *testing.T) {
	Run(2, func(c *Comm) {
		c.ResetStats()
		peer := 1 - c.Rank()
		Isend(c, peer, []int64{1, 2, 3, 4, 5})
		Isend(c, peer, []int64{})
		r1 := Irecv[int64](c, peer)
		r2 := Irecv[int64](c, peer)
		Waitall(r1, r2)
		s := c.Stats()
		if s.SendOps != 2 || s.RecvOps != 2 {
			t.Errorf("SendOps=%d RecvOps=%d, want 2,2", s.SendOps, s.RecvOps)
		}
		if s.ElemsSent != 5 || s.ElemsRecv != 5 {
			t.Errorf("ElemsSent=%d ElemsRecv=%d, want 5,5", s.ElemsSent, s.ElemsRecv)
		}
		if s.Collectives != 0 {
			t.Errorf("point-to-point traffic counted as collective: %+v", s)
		}
	})
}

// Waitall must complete a mixed batch of send and receive requests.
func TestWaitallMixedRequests(t *testing.T) {
	const p = 3
	Run(p, func(c *Comm) {
		var reqs []Request
		recvs := make([]*RecvRequest[int], 0, p-1)
		for r := 0; r < p; r++ {
			if r == c.Rank() {
				continue
			}
			reqs = append(reqs, Isend(c, r, []int{c.Rank() * 100}))
			rr := Irecv[int](c, r)
			recvs = append(recvs, rr)
			reqs = append(reqs, rr)
		}
		Waitall(reqs...)
		for _, rr := range recvs {
			if got := rr.Data(); len(got) != 1 || got[0]%100 != 0 {
				t.Errorf("rank %d got %v", c.Rank(), got)
			}
		}
	})
}

// A rank may drain incoming messages on a helper goroutine while its
// main goroutine keeps sending — the overlap pattern the partitioner's
// async exchange uses. Must be race-clean under -race.
func TestP2PConcurrentDrain(t *testing.T) {
	const p = 4
	const rounds = 20
	Run(p, func(c *Comm) {
		for round := 0; round < rounds; round++ {
			var wg sync.WaitGroup
			wg.Add(1)
			total := 0
			go func() {
				defer wg.Done()
				for src := 0; src < p; src++ {
					if src == c.Rank() {
						continue
					}
					total += len(Irecv[int64](c, src).Await())
				}
			}()
			for dst := 0; dst < p; dst++ {
				if dst == c.Rank() {
					continue
				}
				Isend(c, dst, []int64{int64(round), int64(c.Rank())})
			}
			wg.Wait()
			if total != 2*(p-1) {
				t.Errorf("rank %d round %d drained %d elements", c.Rank(), round, total)
				return
			}
			c.Barrier()
		}
	})
}

// A sibling panic must release ranks blocked in Irecv.Wait instead of
// deadlocking them, and the original panic must surface.
func TestP2PPanicReleasesBlockedReceiver(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := p.(string); !ok || s != "p2p boom" {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			panic("p2p boom")
		}
		// Ranks 1 and 2 park on a message that will never arrive.
		Irecv[int64](c, 0).Wait()
	})
}

func TestIsendValidatesRank(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for out-of-range destination")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "Isend") {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	Run(1, func(c *Comm) {
		Isend(c, 5, []int{1})
	})
}

func TestIrecvTypeMismatchPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic for type mismatch")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "type mismatch") {
			t.Fatalf("unexpected panic payload: %v", p)
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Isend(c, 1, []int64{1})
			return
		}
		Irecv[float64](c, 0).Wait()
	})
}
