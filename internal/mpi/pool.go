package mpi

import (
	"math/bits"
	"sync"
)

// pool64 is the free list backing the pooled int64 point-to-point path
// (Isend64/Recv64/Recycle64), segregated into power-of-two capacity
// classes: bucket b holds buffers of capacity exactly 1<<b, so get and
// put are O(1) under the lock. Size classes matter: exchange rounds mix
// tiny tally-only messages with large dense payloads, and a single
// first-fit list would burn large buffers on small messages,
// re-allocating large ones forever. Pool residency is bounded by the
// number of in-flight messages, so after a warmup round the buckets
// reach their steady sizes and exchange rounds stop allocating.
//
// The in-process transport owns one pool per world (sender and receiver
// share an address space, so the same buffer travels the whole path);
// the socket transport owns one per process (receive buffers are
// decoded into pooled storage and recycled locally).
type pool64 struct {
	mu      sync.Mutex
	buckets [64][][]int64
}

// buf64Class returns the capacity class of a request for n > 0
// elements: the smallest b with 1<<b >= n.
func buf64Class(n int) int {
	return bits.Len64(uint64(n) - 1)
}

// get pops a pooled buffer from the request's capacity class, or
// allocates one of exactly that class when the bucket is empty (so the
// buffer returns to the same bucket on recycle). n == 0 returns a
// canonical non-nil empty slice so message.i64 stays a valid
// discriminator.
//
//repro:hotpath
func (p *pool64) get(n int) []int64 {
	if n == 0 {
		return empty64
	}
	c := buf64Class(n)
	p.mu.Lock()
	if bucket := p.buckets[c]; len(bucket) > 0 {
		last := len(bucket) - 1
		b := bucket[last]
		bucket[last] = nil
		p.buckets[c] = bucket[:last]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	//lint:ignore hotpathalloc pool-miss allocation refills the bucket; steady state reuses recycled buffers
	return make([]int64, n, 1<<c)
}

// put returns a buffer to its capacity-class bucket; zero-capacity
// buffers (the canonical empty message) are dropped.
//
//repro:hotpath
func (p *pool64) put(buf []int64) {
	if cap(buf) == 0 {
		return
	}
	c := buf64Class(cap(buf))
	p.mu.Lock()
	p.buckets[c] = append(p.buckets[c], buf)
	p.mu.Unlock()
}

// empty64 is the shared zero-length payload of empty pooled messages;
// it is never written through.
var empty64 = make([]int64, 0)
