package mpi

import "fmt"

// procTransport is the in-process Transport: one goroutine per rank
// sharing a world of publication slots (collectives) and per-pair FIFO
// mailboxes (point-to-point), with transfer copies drawn from a shared
// buffer pool so the zero-copy recycling fast path spans sender and
// receiver. It is the transport Run/RunThreads build, and the reference
// implementation the socket transport must match bit-for-bit.
type procTransport struct {
	w    *world
	rank int
}

// NewProcWorld builds an in-process world of n ranks and returns the
// per-rank transports. All transports share one address space; RunWorld
// (or Run, which wraps it) executes a rank function on each.
func NewProcWorld(n int) []Transport {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: NewProcWorld with %d ranks", n))
	}
	w := newWorld(n)
	ts := make([]Transport, n)
	for r := range ts {
		ts[r] = &procTransport{w: w, rank: r}
	}
	return ts
}

func (p *procTransport) Rank() int { return p.rank }
func (p *procTransport) Size() int { return p.w.size }

// Send64 copies data into a pooled buffer and enqueues it on the
// (p.rank, dst) mailbox; completion is eager.
//
//repro:hotpath
func (p *procTransport) Send64(dst int, tag uint32, data []int64) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: Isend64 to rank %d outside [0,%d)", dst, p.w.size))
	}
	cp := p.w.pool.get(len(data))
	copy(cp, data)
	p.w.box(p.rank, dst).put(message{i64: cp, count: len(cp), tag: tag})
}

// Recv64 dequeues the oldest message from src. Messages sent with the
// generic Isend are accepted too (they just were not pooled).
//
//repro:hotpath
func (p *procTransport) Recv64(src int) ([]int64, uint32) {
	if src < 0 || src >= p.w.size {
		panic(fmt.Sprintf("mpi: Recv64 from rank %d outside [0,%d)", src, p.w.size))
	}
	msg := p.w.box(src, p.rank).take()
	data := msg.i64
	if data == nil {
		d, ok := msg.data.([]int64)
		if !ok {
			panic(fmt.Sprintf("mpi: Recv64 from rank %d: element type mismatch, message holds %T", src, msg.data))
		}
		data = d
	}
	return data, msg.tag
}

//repro:hotpath
func (p *procTransport) Recycle64(buf []int64) {
	p.w.pool.put(buf)
}

func (p *procTransport) Barrier() {
	p.w.bar.wait()
}

// Abort poisons the shared world so every rank blocked in a collective
// or a point-to-point wait unwinds.
func (p *procTransport) Abort() { p.w.poisonAll() }

// Close is a no-op: the world is shared by all ranks and dies with the
// process; there are no per-rank resources to release.
func (p *procTransport) Close() error { return nil }

// sendAny enqueues a generic message copy (the caller has already made
// the private copy); part of the genericTransport extension.
func (p *procTransport) sendAny(dst int, data any, count int) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: Isend to rank %d outside [0,%d)", dst, p.w.size))
	}
	p.w.box(p.rank, dst).put(message{data: data, count: count})
}

// recvAny dequeues the oldest message from src without interpreting its
// payload; part of the genericTransport extension.
func (p *procTransport) recvAny(src int) message {
	if src < 0 || src >= p.w.size {
		panic(fmt.Sprintf("mpi: Irecv from rank %d outside [0,%d)", src, p.w.size))
	}
	return p.w.box(src, p.rank).take()
}

// publish writes v into this rank's slot and synchronizes so all slots
// are visible; the returned release function must be called after the
// caller has finished reading other ranks' slots.
func (p *procTransport) publish(v any) (release func()) {
	p.w.slots[p.rank] = v
	p.w.bar.wait()
	return func() {
		p.w.bar.wait()
		p.w.slots[p.rank] = nil
	}
}

func (p *procTransport) slot(r int) any { return p.w.slots[r] }

// Typed collectives: thin instantiations of the slot-based generic
// algorithms shared with Comm's generic API.

func (p *procTransport) AllreduceI64(vals []int64, op Op) []int64 {
	return allreduceSlots(p, vals, op)
}

func (p *procTransport) AllreduceF64(vals []float64, op Op) []float64 {
	return allreduceSlots(p, vals, op)
}

func (p *procTransport) BcastI64(root int, data []int64) []int64 {
	return bcastSlots(p, root, data)
}

func (p *procTransport) AllgathervI64(data []int64) [][]int64 {
	return allgathervSlots(p, data)
}

func (p *procTransport) AlltoallvI64(send []int64, counts []int) ([]int64, []int) {
	return alltoallvSlots(p, send, counts)
}

func (p *procTransport) AlltoallvF64(send []float64, counts []int) ([]float64, []int) {
	return alltoallvSlots(p, send, counts)
}

// allreduceSlots reduces vals element-wise across all ranks in
// ascending rank order over the publication slots.
func allreduceSlots[T Number](gt genericTransport, vals []T, op Op) []T {
	release := gt.publish(vals)
	out := make([]T, len(vals))
	first := gt.slot(0).([]T)
	if len(first) != len(vals) {
		release()
		panic("mpi: Allreduce length mismatch across ranks")
	}
	copy(out, first)
	for r := 1; r < gt.Size(); r++ {
		contrib := gt.slot(r).([]T)
		if len(contrib) != len(vals) {
			release()
			panic("mpi: Allreduce length mismatch across ranks")
		}
		foldVec(out, contrib, op)
	}
	release()
	return out
}

// foldVec folds contrib into acc element-wise with op; the shared
// reduction kernel of every transport (acc must be the lower rank's
// running value so the fold order stays ascending).
func foldVec[T Number](acc, contrib []T, op Op) {
	switch op {
	case Sum:
		for i, v := range contrib {
			acc[i] += v
		}
	case Max:
		for i, v := range contrib {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case Min:
		for i, v := range contrib {
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
}

// bcastSlots distributes root's data to every rank over the slots.
func bcastSlots[T any](gt genericTransport, root int, data []T) []T {
	var pub any
	if gt.Rank() == root {
		pub = data
	}
	release := gt.publish(pub)
	src := gt.slot(root).([]T)
	out := make([]T, len(src))
	copy(out, src)
	release()
	return out
}

// allgathervSlots collects a variable-length slice from each rank.
func allgathervSlots[T any](gt genericTransport, data []T) [][]T {
	release := gt.publish(data)
	out := make([][]T, gt.Size())
	for r := 0; r < gt.Size(); r++ {
		src := gt.slot(r).([]T)
		cp := make([]T, len(src))
		copy(cp, src)
		out[r] = cp
	}
	release()
	return out
}

// vPayload is what each rank publishes during Alltoallv: its packed send
// buffer plus the per-destination counts and exclusive offsets.
type vPayload[T any] struct {
	buf     []T
	counts  []int
	offsets []int
}

// alltoallvSlots performs the variable-size personalized exchange over
// the slots; counts are validated by the Comm wrapper.
func alltoallvSlots[T any](gt genericTransport, sendBuf []T, sendCounts []int) (recv []T, recvCounts []int) {
	offsets := alltoallvOffsets(len(sendBuf), sendCounts, gt.Size())
	release := gt.publish(vPayload[T]{buf: sendBuf, counts: sendCounts, offsets: offsets})
	size := gt.Size()
	me := gt.Rank()
	recvCounts = make([]int, size)
	rtotal := 0
	for r := 0; r < size; r++ {
		p := gt.slot(r).(vPayload[T])
		recvCounts[r] = p.counts[me]
		rtotal += recvCounts[r]
	}
	recv = make([]T, 0, rtotal)
	for r := 0; r < size; r++ {
		p := gt.slot(r).(vPayload[T])
		seg := p.buf[p.offsets[me]:p.offsets[me+1]]
		recv = append(recv, seg...)
	}
	release()
	return recv, recvCounts
}

// alltoallvOffsets validates an Alltoallv send layout and returns the
// exclusive prefix offsets; shared by every transport.
func alltoallvOffsets(bufLen int, sendCounts []int, size int) []int {
	if len(sendCounts) != size {
		panic(fmt.Sprintf("mpi: Alltoallv counts length %d != world size %d", len(sendCounts), size))
	}
	offsets := make([]int, size+1)
	for r, n := range sendCounts {
		if n < 0 {
			panic("mpi: Alltoallv negative send count")
		}
		offsets[r+1] = offsets[r] + n
	}
	if offsets[size] != bufLen {
		panic(fmt.Sprintf("mpi: Alltoallv counts sum %d != buffer length %d", offsets[size], bufLen))
	}
	return offsets
}
