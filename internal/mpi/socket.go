package mpi

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// SocketConfig describes one rank's place in a multi-process world
// connected over stream sockets. Every rank must be started with the
// same Size and Addrs; Addrs[r] is the address rank r listens on
// ("host:port" for tcp, a filesystem path for unix). The liveness
// knobs (Heartbeat, CollTimeout) must be identical on every rank — a
// rank without heartbeats looks dead to a rank expecting them.
type SocketConfig struct {
	// Network is the stream network to use: "tcp" or "unix".
	Network string
	// Rank is this process's rank in [0, Size).
	Rank int
	// Size is the number of ranks in the world.
	Size int
	// Addrs holds each rank's listen address, indexed by rank.
	Addrs []string
	// Timeout bounds the rendezvous (listen + dial + handshake);
	// zero means DefaultRendezvousTimeout. Negative is rejected by
	// SocketConfigFromEnv and treated as the default here.
	Timeout time.Duration
	// Retry shapes the per-peer rendezvous retry loop.
	Retry SocketRetry
	// Heartbeat enables the liveness watchdog: a connection idle on the
	// send side past this threshold carries a wire.KindPing frame, and a
	// peer silent past heartbeatMissFactor times this threshold is
	// declared dead with a per-peer TransportFailure naming the rank,
	// direction, and last-progress time. Zero disables the watchdog
	// (a dead peer then surfaces only when the kernel notices).
	Heartbeat time.Duration
	// CollTimeout bounds every single wait inside a collective; a rank
	// still waiting after it panics with a diagnostic naming the silent
	// peer — the runtime complement to reprolint's static collectivesym
	// check for conditional-collective deadlocks. Zero disables.
	CollTimeout time.Duration
}

// SocketRetry configures the rendezvous retry loop of DialSocket: a
// refused dial, a not-yet-listening peer, or a handshake cut mid-frame
// is retried with jittered exponential backoff until the rendezvous
// deadline (or Max attempts) is reached.
type SocketRetry struct {
	// Max caps connection attempts per peer; <= 0 means unbounded
	// (the rendezvous deadline is then the only bound).
	Max int
	// BaseDelay is the backoff before the second attempt; it doubles
	// per attempt (capped at retryMaxDelay) with ±50% jitter so peers
	// hammering one slow listener decorrelate. <= 0 means
	// defaultRetryBase.
	BaseDelay time.Duration
}

// DefaultRendezvousTimeout bounds the rendezvous when
// SocketConfig.Timeout is zero.
const DefaultRendezvousTimeout = 30 * time.Second

// Rendezvous retry tuning: the first backoff delay and the cap the
// exponential doubling saturates at.
const (
	defaultRetryBase = 2 * time.Millisecond
	retryMaxDelay    = 250 * time.Millisecond
)

// heartbeatMissFactor is the liveness miss window in heartbeat units: a
// peer that produced no traffic for heartbeatMissFactor*Heartbeat is
// declared dead. Pings flow after one idle Heartbeat, so a live but
// quiet peer refreshes the window several times before it closes.
const heartbeatMissFactor = 4

// Environment variables understood by SocketConfigFromEnv; cmd/reprorun
// sets them when launching worker processes.
const (
	EnvRank        = "REPRO_RANK"
	EnvSize        = "REPRO_SIZE"
	EnvNet         = "REPRO_NET"
	EnvAddrs       = "REPRO_ADDRS"
	EnvTimeout     = "REPRO_TIMEOUT"
	EnvRetryMax    = "REPRO_RETRY_MAX"
	EnvRetryBase   = "REPRO_RETRY_BASE"
	EnvHeartbeat   = "REPRO_HEARTBEAT"
	EnvCollTimeout = "REPRO_COLL_TIMEOUT"
)

// SocketConfigFromEnv builds a SocketConfig from the REPRO_* variables
// a launcher passes to worker processes: REPRO_RANK, REPRO_SIZE,
// REPRO_ADDRS (comma-separated, indexed by rank), REPRO_NET (default
// "unix") and optionally REPRO_TIMEOUT (a time.ParseDuration string,
// strictly positive — a zero or negative timeout would disable the
// rendezvous deadline entirely and is rejected), REPRO_RETRY_MAX,
// REPRO_RETRY_BASE, REPRO_HEARTBEAT, and REPRO_COLL_TIMEOUT.
func SocketConfigFromEnv() (SocketConfig, error) {
	var cfg SocketConfig
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return cfg, fmt.Errorf("mpi: bad or missing %s: %v", EnvRank, err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return cfg, fmt.Errorf("mpi: bad or missing %s: %v", EnvSize, err)
	}
	addrs := strings.Split(os.Getenv(EnvAddrs), ",")
	network := os.Getenv(EnvNet)
	if network == "" {
		network = "unix"
	}
	cfg = SocketConfig{Network: network, Rank: rank, Size: size, Addrs: addrs}
	if s := os.Getenv(EnvTimeout); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return cfg, fmt.Errorf("mpi: bad %s: %v", EnvTimeout, err)
		}
		if d <= 0 {
			return cfg, fmt.Errorf("mpi: %s %q must be positive (it bounds the rendezvous; the default is %v)", EnvTimeout, s, DefaultRendezvousTimeout)
		}
		cfg.Timeout = d
	}
	if s := os.Getenv(EnvRetryMax); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("mpi: bad %s %q: want a non-negative attempt count", EnvRetryMax, s)
		}
		cfg.Retry.Max = n
	}
	if d, err := envDuration(EnvRetryBase); err != nil {
		return cfg, err
	} else {
		cfg.Retry.BaseDelay = d
	}
	if d, err := envDuration(EnvHeartbeat); err != nil {
		return cfg, err
	} else {
		cfg.Heartbeat = d
	}
	if d, err := envDuration(EnvCollTimeout); err != nil {
		return cfg, err
	} else {
		cfg.CollTimeout = d
	}
	return cfg, nil
}

// envDuration parses an optional non-negative duration variable (empty
// or "0" disables the corresponding mechanism).
func envDuration(name string) (time.Duration, error) {
	s := os.Getenv(name)
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("mpi: bad %s %q: want a non-negative duration", name, s)
	}
	return d, nil
}

// helloMagic is the first payload word of a KindHello frame; it guards
// against a connection from something that is not a peer rank speaking
// this protocol.
const helloMagic = 0x5245_5052_4f31 // "REPRO1"

// writerQueueDepth bounds each connection's writer channel: a sender
// that outruns the wire by this many frames blocks until the writer
// drains (backpressure). Receivers are never the bottleneck — readers
// drain frames into unbounded queues — so this cannot deadlock.
const writerQueueDepth = 256

// sockFrame is a decoded frame parked in a receive queue.
type sockFrame struct {
	payload []int64
	tag     uint32
}

// frameQueue is an unbounded FIFO of decoded frames with error
// poisoning: fail wakes all blocked takers, and every take after a
// failure panics with TransportFailure so a dead peer surfaces as a
// clean error instead of a hang.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames []sockFrame
	head   int
	err    error
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) put(payload []int64, tag uint32) {
	q.mu.Lock()
	q.frames = append(q.frames, sockFrame{payload: payload, tag: tag})
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *frameQueue) take() ([]int64, uint32) {
	payload, tag, _ := q.takeTimeout(0)
	return payload, tag
}

// takeTimeout is take with an optional bound: with timeout > 0 a wait
// that exceeds it returns ok == false instead of blocking forever (the
// collective watchdog's hook). A queued frame always wins over an
// expired timer, and a poisoned queue still panics with
// TransportFailure.
func (q *frameQueue) takeTimeout(timeout time.Duration) (payload []int64, tag uint32, ok bool) {
	q.mu.Lock()
	expired := false
	var timer *time.Timer
	for q.head == len(q.frames) && q.err == nil && !expired {
		if timeout > 0 && timer == nil {
			timer = time.AfterFunc(timeout, func() {
				q.mu.Lock()
				expired = true
				q.mu.Unlock()
				q.cond.Broadcast()
			})
		}
		q.cond.Wait()
	}
	if timer != nil {
		timer.Stop()
	}
	if q.head == len(q.frames) {
		if err := q.err; err != nil {
			q.mu.Unlock()
			panic(TransportFailure{Err: err})
		}
		q.mu.Unlock()
		return nil, 0, false
	}
	f := q.frames[q.head]
	q.frames[q.head] = sockFrame{}
	q.head++
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	q.mu.Unlock()
	return f.payload, f.tag, true
}

func (q *frameQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// sockConn is one neighbor connection: the net.Conn, the buffered
// reader its reader goroutine decodes from (created at handshake so no
// buffered bytes are lost), and the bounded writer channel. dead marks
// a connection whose peer failed or disappeared; operations involving
// that peer panic, operations between the surviving ranks proceed —
// a rank that finished and closed in an orderly way must not take its
// still-working neighbors down with it.
type sockConn struct {
	peer int
	nc   net.Conn
	br   *bufio.Reader
	wch  chan []byte
	dead atomic.Bool
	// lastRecv and lastSend hold the UnixNano time of the last inbound
	// frame and the last flushed outbound byte; the liveness watchdog
	// reads them to decide when a connection is idle (ping it) or a
	// peer is silent past the miss window (declare it dead).
	lastRecv atomic.Int64
	lastSend atomic.Int64
}

// newSockConn builds a connection record with both progress clocks
// started at the handshake.
func newSockConn(peer int, nc net.Conn, br *bufio.Reader) *sockConn {
	sc := &sockConn{peer: peer, nc: nc, br: br, wch: make(chan []byte, writerQueueDepth)}
	now := time.Now().UnixNano()
	sc.lastRecv.Store(now)
	sc.lastSend.Store(now)
	return sc
}

// SocketTransport is the multi-process Transport: one OS process per
// rank, a stream connection per neighbor (rank i accepts from every
// j > i and dials every j < i), and the internal/wire frame codec on
// each connection. Data and collective frames demultiplex on arrival
// into disjoint per-source queues, mirroring the in-process transport's
// disjoint mailbox and barrier states, so the exchange engine's drainer
// goroutine and a main-goroutine collective can make progress
// concurrently. Collectives gather at rank 0 and fold in ascending
// rank order, so reduction results are bit-identical to the in-process
// transport.
type SocketTransport struct {
	rank, size int
	pool       pool64
	conns      []*sockConn // indexed by peer rank; nil at self
	dataQ      []*frameQueue
	collQ      []*frameQueue
	seq        uint32 // collective sequence; main goroutine only

	heartbeat   time.Duration // liveness watchdog threshold; 0 disables
	collTimeout time.Duration // collective watchdog bound; 0 disables

	closing   atomic.Bool
	failed    atomic.Bool
	failMu    sync.Mutex
	failErr   error
	done      chan struct{}
	closeOnce sync.Once
	rwg, wwg  sync.WaitGroup
	hbwg      sync.WaitGroup
}

// DialSocket performs the rendezvous for one rank of a socket world:
// listen on Addrs[Rank], accept a connection from every higher rank,
// dial every lower rank, and exchange hello frames validating protocol
// magic, world size, and peer identity. Transient failures — a peer
// whose listener is not up yet, a refused or reset dial, a handshake
// cut mid-frame — are retried per peer with jittered exponential
// backoff (SocketConfig.Retry) until the rendezvous deadline; a
// connection announcing a malformed hello is rejected by itself
// without aborting the rest of the rendezvous. DialSocket blocks until
// the full neighbor set is connected or the timeout expires.
func DialSocket(cfg SocketConfig) (*SocketTransport, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpi: socket world size %d", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: socket rank %d outside [0,%d)", cfg.Rank, cfg.Size)
	}
	if len(cfg.Addrs) != cfg.Size {
		return nil, fmt.Errorf("mpi: %d addresses for %d ranks", len(cfg.Addrs), cfg.Size)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultRendezvousTimeout
	}
	deadline := time.Now().Add(timeout)

	t := &SocketTransport{
		rank:        cfg.Rank,
		size:        cfg.Size,
		conns:       make([]*sockConn, cfg.Size),
		dataQ:       make([]*frameQueue, cfg.Size),
		collQ:       make([]*frameQueue, cfg.Size),
		heartbeat:   cfg.Heartbeat,
		collTimeout: cfg.CollTimeout,
		done:        make(chan struct{}),
	}
	for r := range t.dataQ {
		t.dataQ[r] = newFrameQueue()
		t.collQ[r] = newFrameQueue()
	}

	// Accept from higher ranks concurrently with dialing lower ranks:
	// with both directions in flight no ordering of peer startups can
	// deadlock the rendezvous.
	acceptErr := make(chan error, 1)
	if cfg.Rank < cfg.Size-1 {
		ln, err := net.Listen(cfg.Network, cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d listen: %w", cfg.Rank, err)
		}
		timer := time.AfterFunc(time.Until(deadline), func() { ln.Close() })
		go func() {
			defer ln.Close()
			defer timer.Stop()
			acceptErr <- t.acceptPeers(ln, cfg, deadline)
		}()
	} else {
		acceptErr <- nil
	}

	var dialErr error
	for j := 0; j < cfg.Rank; j++ {
		if err := t.dialPeer(j, cfg, deadline); err != nil {
			dialErr = err
			break
		}
	}
	if err := <-acceptErr; dialErr == nil {
		dialErr = err
	}
	if dialErr != nil {
		for _, sc := range t.conns {
			if sc != nil {
				sc.nc.Close()
			}
		}
		return nil, dialErr
	}

	for _, sc := range t.conns {
		if sc == nil {
			continue
		}
		sc.nc.SetDeadline(time.Time{})
		t.rwg.Add(1)
		go t.readLoop(sc)
		t.wwg.Add(1)
		go t.writeLoop(sc)
	}
	if t.heartbeat > 0 {
		t.hbwg.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

// acceptPeers accepts and handshakes inbound connections until every
// higher rank is connected. A connection whose hello is malformed or
// cut is rejected per-pair — closed and forgotten, while the loop keeps
// accepting — because the real peer retries on a fresh connection; only
// a listener failure (usually the rendezvous deadline closing it)
// aborts, and the abort names the last rejected peer so a
// misconfigured world does not hide behind a bare timeout.
func (t *SocketTransport) acceptPeers(ln net.Listener, cfg SocketConfig, deadline time.Time) error {
	var lastReject error
	remaining := cfg.Size - 1 - cfg.Rank
	for remaining > 0 {
		nc, err := ln.Accept()
		if err != nil {
			if lastReject != nil {
				return fmt.Errorf("mpi: rank %d accept (rendezvous timeout? last rejected peer: %v): %w", cfg.Rank, lastReject, err)
			}
			return fmt.Errorf("mpi: rank %d accept (rendezvous timeout?): %w", cfg.Rank, err)
		}
		replaced, err := t.handshakeAccept(nc, cfg, deadline)
		if err != nil {
			nc.Close()
			lastReject = err
			continue
		}
		if !replaced {
			remaining--
		}
	}
	return nil
}

// dialPeer connects to rank j with jittered exponential backoff:
// transient rendezvous failures (no listener yet, refused or reset
// dial, handshake short-read) retry until the deadline or the
// configured attempt cap, and the final error carries the attempt
// count. Protocol-fatal handshake errors (wrong world size, wrong rank
// answering, non-protocol peer) abort immediately.
func (t *SocketTransport) dialPeer(j int, cfg SocketConfig, deadline time.Time) error {
	base := cfg.Retry.BaseDelay
	if base <= 0 {
		base = defaultRetryBase
	}
	delay := base
	var lastErr error
	for attempt := 1; ; attempt++ {
		if cfg.Retry.Max > 0 && attempt > cfg.Retry.Max {
			return fmt.Errorf("mpi: rank %d dial rank %d: retry budget exhausted after %d attempts: %w", cfg.Rank, j, cfg.Retry.Max, lastErr)
		}
		nc, err := net.DialTimeout(cfg.Network, cfg.Addrs[j], time.Until(deadline))
		if err == nil {
			err = t.handshakeDial(nc, j, cfg, deadline)
			if err == nil {
				return nil
			}
			nc.Close()
			if !rendezvousRetryable(err) {
				return fmt.Errorf("mpi: rank %d dial rank %d (attempt %d): %w", cfg.Rank, j, attempt, err)
			}
		}
		lastErr = err
		if !time.Now().Before(deadline) {
			return fmt.Errorf("mpi: rank %d dial rank %d: rendezvous deadline after %d attempts: %w", cfg.Rank, j, attempt, lastErr)
		}
		sleepJittered(delay, deadline)
		if delay *= 2; delay > retryMaxDelay {
			delay = retryMaxDelay
		}
	}
}

// rendezvousRetryable classifies a handshake error: network-level
// failures and frames cut mid-read are transient (the peer may be slow,
// restarting, or behind a flaky link) and worth retrying; a well-formed
// hello announcing the wrong world or rank is a configuration error and
// fatal.
func rendezvousRetryable(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrBadLength)
}

// sleepJittered sleeps for d with ±50% jitter, never past the
// rendezvous deadline.
func sleepJittered(d time.Duration, deadline time.Time) {
	jittered := d/2 + time.Duration(rand.Int63n(int64(d)+1))
	if until := time.Until(deadline); jittered > until {
		jittered = until
	}
	if jittered > 0 {
		time.Sleep(jittered)
	}
}

// NewSocketWorld builds an n-rank socket world inside one process by
// running every rank's DialSocket concurrently; tests use it to
// exercise the wire path without spawning processes. Addrs[r] is rank
// r's listen address.
func NewSocketWorld(network string, addrs []string, timeout time.Duration) ([]Transport, error) {
	n := len(addrs)
	ts := make([]Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			t, err := DialSocket(SocketConfig{Network: network, Rank: r, Size: n, Addrs: addrs, Timeout: timeout})
			if err != nil {
				errs[r] = err
				return
			}
			ts[r] = t
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, t := range ts {
				if t != nil {
					t.Close()
				}
			}
			return nil, fmt.Errorf("mpi: socket world rank %d: %w", r, err)
		}
	}
	return ts, nil
}

// helloFrame encodes this rank's hello: tag carries the sender rank,
// payload the protocol magic and the expected world size.
func helloFrame(rank, size int) []byte {
	return wire.AppendFrame(nil, wire.KindHello, uint32(rank), []int64{helloMagic, int64(size)})
}

// readHello reads and validates one hello frame, returning the peer
// rank it announces.
func readHello(br *bufio.Reader, cfg SocketConfig) (int, error) {
	kind, tag, payload, err := wire.ReadFrame(br, func(n int) []int64 { return make([]int64, n) })
	if err != nil {
		return -1, fmt.Errorf("mpi: rank %d handshake read: %w", cfg.Rank, err)
	}
	if kind != wire.KindHello || len(payload) != 2 || payload[0] != helloMagic {
		return -1, fmt.Errorf("mpi: rank %d handshake: peer is not speaking the repro wire protocol", cfg.Rank)
	}
	if int(payload[1]) != cfg.Size {
		return -1, fmt.Errorf("mpi: rank %d handshake: peer world size %d != %d", cfg.Rank, payload[1], cfg.Size)
	}
	return int(tag), nil
}

// handshakeAccept validates an inbound connection (which must announce
// a higher rank than ours) and replies with our own hello. A second
// connection from an already-connected peer replaces the first
// (replaced == true): it means the dialer's handshake-reply read was
// cut and it retried on a fresh connection, so the newest connection is
// the one the peer will actually use.
func (t *SocketTransport) handshakeAccept(nc net.Conn, cfg SocketConfig, deadline time.Time) (replaced bool, err error) {
	nc.SetDeadline(deadline)
	br := bufio.NewReader(nc)
	peer, err := readHello(br, cfg)
	if err != nil {
		return false, err
	}
	if peer <= cfg.Rank || peer >= cfg.Size {
		return false, fmt.Errorf("mpi: rank %d handshake: unexpected dial from rank %d", cfg.Rank, peer)
	}
	if _, err := nc.Write(helloFrame(cfg.Rank, cfg.Size)); err != nil {
		return false, fmt.Errorf("mpi: rank %d handshake reply to rank %d: %w", cfg.Rank, peer, err)
	}
	if old := t.conns[peer]; old != nil {
		old.nc.Close()
		replaced = true
	}
	t.conns[peer] = newSockConn(peer, nc, br)
	return replaced, nil
}

// handshakeDial sends our hello on an outbound connection to rank j and
// validates the reply.
func (t *SocketTransport) handshakeDial(nc net.Conn, j int, cfg SocketConfig, deadline time.Time) error {
	nc.SetDeadline(deadline)
	if _, err := nc.Write(helloFrame(cfg.Rank, cfg.Size)); err != nil {
		return fmt.Errorf("mpi: rank %d hello to rank %d: %w", cfg.Rank, j, err)
	}
	br := bufio.NewReader(nc)
	peer, err := readHello(br, cfg)
	if err != nil {
		return err
	}
	if peer != j {
		return fmt.Errorf("mpi: rank %d dialed %s for rank %d but rank %d answered", cfg.Rank, cfg.Addrs[j], j, peer)
	}
	t.conns[j] = newSockConn(j, nc, br)
	return nil
}

func (t *SocketTransport) Rank() int { return t.rank }
func (t *SocketTransport) Size() int { return t.size }

// fail poisons the whole transport: every blocked or future operation
// panics with TransportFailure carrying the first error. Used by Abort
// (explicit local failure) — a single peer's disappearance uses
// failPeer instead.
func (t *SocketTransport) fail(err error) {
	t.failMu.Lock()
	if t.failErr == nil {
		t.failErr = err
	}
	err = t.failErr
	t.failMu.Unlock()
	t.failed.Store(true)
	for r := range t.dataQ {
		t.dataQ[r].fail(err)
		t.collQ[r].fail(err)
	}
}

// failPeer poisons only one peer's queues and connection: receives
// from and sends to that rank panic with TransportFailure, while
// traffic among the surviving ranks continues. An orderly world
// teardown is not rank-synchronous — a finished rank may close its
// connections while slower ranks still talk to each other.
func (t *SocketTransport) failPeer(peer int, err error) {
	t.conns[peer].dead.Store(true)
	t.dataQ[peer].fail(err)
	t.collQ[peer].fail(err)
}

func (t *SocketTransport) failure() TransportFailure {
	t.failMu.Lock()
	err := t.failErr
	t.failMu.Unlock()
	if err == nil {
		err = errors.New("transport failed")
	}
	return TransportFailure{Err: err}
}

// readLoop decodes frames off one connection and demultiplexes them
// into the peer's data or collective queue. Any decode error or peer
// disappearance poisons that peer (unless we are closing). With the
// liveness watchdog enabled the read carries a rolling deadline of
// heartbeatMissFactor heartbeats: every arriving frame — data,
// collective, or ping — refreshes it, so the deadline fires only when
// the peer produced nothing at all for the whole miss window, and the
// failure names the rank, direction, and last-progress time.
func (t *SocketTransport) readLoop(sc *sockConn) {
	defer t.rwg.Done()
	missWindow := heartbeatMissFactor * t.heartbeat
	for {
		if missWindow > 0 {
			sc.nc.SetReadDeadline(time.Now().Add(missWindow))
		}
		kind, tag, payload, err := wire.ReadFrame(sc.br, t.pool.get)
		if err != nil {
			if t.closing.Load() {
				return
			}
			last := time.Unix(0, sc.lastRecv.Load())
			if missWindow > 0 && time.Since(last) >= missWindow {
				err = fmt.Errorf("liveness watchdog: rank %d sent nothing for %v (direction recv, last progress %s): peer dead or wedged",
					sc.peer, time.Since(last).Round(time.Millisecond), last.Format(time.StampMilli))
			} else if err == io.EOF {
				err = fmt.Errorf("peer rank %d closed the connection", sc.peer)
			} else {
				err = fmt.Errorf("read from rank %d: %w", sc.peer, err)
			}
			t.failPeer(sc.peer, err)
			return
		}
		sc.lastRecv.Store(time.Now().UnixNano())
		switch kind {
		case wire.KindData:
			t.dataQ[sc.peer].put(payload, tag)
		case wire.KindColl:
			t.collQ[sc.peer].put(payload, tag)
		case wire.KindPing:
			t.pool.put(payload) // progress marker only; never queued
		default:
			t.failPeer(sc.peer, fmt.Errorf("read from rank %d: unexpected frame kind %d after handshake", sc.peer, kind))
			return
		}
	}
}

// writeLoop writes queued frames to one connection, flushing whenever
// the queue goes idle. After a write error it keeps draining the
// channel (senders must never block on a dead connection) until Close.
// With the liveness watchdog enabled each write carries a rolling
// deadline: a peer that stops reading (wedged, not merely quiet) turns
// into a per-peer failure naming the rank, direction, and last-progress
// time once its socket buffers fill and the deadline fires.
func (t *SocketTransport) writeLoop(sc *sockConn) {
	defer t.wwg.Done()
	bw := bufio.NewWriter(sc.nc)
	missWindow := heartbeatMissFactor * t.heartbeat
	dead := false
	fail := func(err error) {
		if !t.closing.Load() {
			last := time.Unix(0, sc.lastSend.Load())
			if missWindow > 0 && time.Since(last) >= missWindow {
				err = fmt.Errorf("liveness watchdog: rank %d accepted nothing for %v (direction send, last progress %s): peer dead or wedged",
					sc.peer, time.Since(last).Round(time.Millisecond), last.Format(time.StampMilli))
			} else {
				err = fmt.Errorf("write to rank %d: %w", sc.peer, err)
			}
			t.failPeer(sc.peer, err)
		}
		dead = true
	}
	write := func(buf []byte) {
		if dead {
			return
		}
		if missWindow > 0 {
			sc.nc.SetWriteDeadline(time.Now().Add(missWindow))
		}
		if _, err := bw.Write(buf); err != nil {
			fail(err)
		}
	}
	for {
		select {
		case buf := <-sc.wch:
			write(buf)
			if !dead && len(sc.wch) == 0 {
				if err := bw.Flush(); err != nil {
					fail(err)
				} else {
					sc.lastSend.Store(time.Now().UnixNano())
				}
			}
		case <-t.done:
			for {
				select {
				case buf := <-sc.wch:
					write(buf)
				default:
					if !dead {
						bw.Flush() //lint:ignore errcheck closing teardown: the peer may already be gone, and there is nobody left to hand the error to
					}
					return
				}
			}
		}
	}
}

// heartbeatLoop keeps idle connections visibly alive: every half
// heartbeat it scans the neighbor set and enqueues one wire.KindPing on
// each connection whose send side has been idle past the heartbeat
// threshold. The enqueue is non-blocking — a full writer queue means
// real traffic is in flight, which is better liveness evidence than a
// ping. Exits at Close (writers drain after it, so no ping is ever
// written to a closed connection's buffer mid-teardown).
func (t *SocketTransport) heartbeatLoop() {
	defer t.hbwg.Done()
	ping := wire.AppendFrame(nil, wire.KindPing, 0, nil)
	ticker := time.NewTicker(t.heartbeat / 2)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case now := <-ticker.C:
			for _, sc := range t.conns {
				if sc == nil || sc.dead.Load() {
					continue
				}
				if now.Sub(time.Unix(0, sc.lastSend.Load())) < t.heartbeat {
					continue
				}
				select {
				case sc.wch <- ping:
				default:
				}
			}
		}
	}
}

// enqueueFrame serializes one frame and hands it to dst's writer;
// blocks for backpressure when the writer queue is full.
func (t *SocketTransport) enqueueFrame(dst int, kind byte, tag uint32, payload []int64) {
	if t.failed.Load() {
		panic(t.failure())
	}
	if t.conns[dst].dead.Load() {
		panic(TransportFailure{Err: fmt.Errorf("send to failed rank %d", dst)})
	}
	buf := wire.AppendFrame(make([]byte, 0, wire.FrameSize(len(payload))), kind, tag, payload)
	select {
	case t.conns[dst].wch <- buf:
	case <-t.done:
		panic(t.failure())
	}
}

// Send64 serializes data into a frame for dst's connection; the
// payload is copied at encode time, so completion is eager. A self
// send short-circuits through the local queue and the buffer pool.
func (t *SocketTransport) Send64(dst int, tag uint32, data []int64) {
	if dst < 0 || dst >= t.size {
		panic(fmt.Sprintf("mpi: Isend64 to rank %d outside [0,%d)", dst, t.size))
	}
	if dst == t.rank {
		cp := t.pool.get(len(data))
		copy(cp, data)
		t.dataQ[dst].put(cp, tag)
		return
	}
	t.enqueueFrame(dst, wire.KindData, tag, data)
}

// Recv64 blocks until the next data frame from src and returns its
// pool-backed payload and tag; it panics with TransportFailure if the
// transport was poisoned by a peer failure.
func (t *SocketTransport) Recv64(src int) ([]int64, uint32) {
	if src < 0 || src >= t.size {
		panic(fmt.Sprintf("mpi: Recv64 from rank %d outside [0,%d)", src, t.size))
	}
	return t.dataQ[src].take()
}

func (t *SocketTransport) Recycle64(buf []int64) {
	t.pool.put(buf)
}

// nextSeq advances the collective sequence; all ranks call collectives
// in the same order, so matching sequence numbers on KindColl frames
// assert that peers are inside the same collective.
func (t *SocketTransport) nextSeq() uint32 {
	t.seq++
	return t.seq
}

func (t *SocketTransport) collSend(dst int, seq uint32, payload []int64) {
	t.enqueueFrame(dst, wire.KindColl, seq, payload)
}

// collRecv waits for rank src's contribution to collective seq. With
// SocketConfig.CollTimeout set, a wait past the bound panics with a
// diagnostic naming the silent peer — the runtime complement to
// reprolint's static collectivesym check: a conditional collective
// (one rank skipped Barrier) or a dead peer becomes a named panic
// instead of a world-wide hang. The panic is deliberately not a
// TransportFailure: it is an original failure on this rank, so
// RunWorld-style supervisors report it rather than suppressing it as
// secondary poison.
func (t *SocketTransport) collRecv(src int, seq uint32) []int64 {
	payload, tag, ok := t.collQ[src].takeTimeout(t.collTimeout)
	if !ok {
		panic(fmt.Sprintf("mpi: collective watchdog: rank %d received nothing from rank %d inside collective %d for %v — peer dead, skewed, or in a conditional collective",
			t.rank, src, seq, t.collTimeout))
	}
	if tag != seq {
		panic(fmt.Sprintf("mpi: collective sequence skew with rank %d: frame %d arrived inside collective %d", src, tag, seq))
	}
	return payload
}

// Barrier gathers an empty frame from every rank at rank 0 and fans an
// empty release frame back out.
func (t *SocketTransport) Barrier() {
	seq := t.nextSeq()
	if t.rank == 0 {
		for r := 1; r < t.size; r++ {
			t.pool.put(t.collRecv(r, seq))
		}
		for r := 1; r < t.size; r++ {
			t.collSend(r, seq, nil)
		}
	} else {
		t.collSend(0, seq, nil)
		t.pool.put(t.collRecv(0, seq))
	}
}

// AllreduceI64 gathers contributions at rank 0, folds them in
// ascending rank order, and broadcasts the result.
func (t *SocketTransport) AllreduceI64(vals []int64, op Op) []int64 {
	seq := t.nextSeq()
	if t.rank != 0 {
		t.collSend(0, seq, vals)
		out := t.collRecv(0, seq)
		if len(out) != len(vals) {
			panic("mpi: Allreduce length mismatch across ranks")
		}
		return out
	}
	acc := append([]int64(nil), vals...)
	for r := 1; r < t.size; r++ {
		contrib := t.collRecv(r, seq)
		if len(contrib) != len(vals) {
			panic("mpi: Allreduce length mismatch across ranks")
		}
		foldVec(acc, contrib, op)
		t.pool.put(contrib)
	}
	for r := 1; r < t.size; r++ {
		t.collSend(r, seq, acc)
	}
	return acc
}

// AllreduceF64 is AllreduceI64 with payloads bit-converted through
// math.Float64bits; the fold itself runs in float64 at rank 0 in
// ascending rank order, so results are bit-identical to the in-process
// transport's slot fold.
func (t *SocketTransport) AllreduceF64(vals []float64, op Op) []float64 {
	seq := t.nextSeq()
	if t.rank != 0 {
		t.collSend(0, seq, f64ToWords(vals))
		words := t.collRecv(0, seq)
		if len(words) != len(vals) {
			panic("mpi: Allreduce length mismatch across ranks")
		}
		out := wordsToF64(words)
		t.pool.put(words)
		return out
	}
	acc := append([]float64(nil), vals...)
	for r := 1; r < t.size; r++ {
		words := t.collRecv(r, seq)
		if len(words) != len(vals) {
			panic("mpi: Allreduce length mismatch across ranks")
		}
		foldVec(acc, wordsToF64(words), op)
		t.pool.put(words)
	}
	for r := 1; r < t.size; r++ {
		t.collSend(r, seq, f64ToWords(acc))
	}
	return acc
}

// BcastI64 sends root's data directly to every other rank.
func (t *SocketTransport) BcastI64(root int, data []int64) []int64 {
	seq := t.nextSeq()
	if t.rank == root {
		for r := 0; r < t.size; r++ {
			if r != root {
				t.collSend(r, seq, data)
			}
		}
		return append([]int64(nil), data...)
	}
	return t.collRecv(root, seq)
}

// AllgathervI64 gathers every rank's vector at rank 0, then broadcasts
// the concatenation with a per-rank length header.
func (t *SocketTransport) AllgathervI64(data []int64) [][]int64 {
	seq := t.nextSeq()
	out := make([][]int64, t.size)
	if t.rank == 0 {
		out[0] = append([]int64(nil), data...)
		total := len(data)
		for r := 1; r < t.size; r++ {
			out[r] = t.collRecv(r, seq)
			total += len(out[r])
		}
		flat := make([]int64, 0, t.size+total)
		for r := 0; r < t.size; r++ {
			flat = append(flat, int64(len(out[r])))
		}
		for r := 0; r < t.size; r++ {
			flat = append(flat, out[r]...)
		}
		for r := 1; r < t.size; r++ {
			t.collSend(r, seq, flat)
		}
		return out
	}
	t.collSend(0, seq, data)
	flat := t.collRecv(0, seq)
	if len(flat) < t.size {
		panic(fmt.Sprintf("mpi: Allgatherv result frame too short: %d words for %d ranks", len(flat), t.size))
	}
	off := t.size
	for r := 0; r < t.size; r++ {
		n := int(flat[r])
		if n < 0 || off+n > len(flat) {
			panic("mpi: Allgatherv result frame corrupt length header")
		}
		out[r] = append([]int64(nil), flat[off:off+n]...)
		off += n
	}
	t.pool.put(flat)
	return out
}

// AlltoallvI64 sends each destination its chunk directly and receives
// chunks packed in ascending source-rank order; a chunk's length is
// its own count, so no count exchange is needed.
func (t *SocketTransport) AlltoallvI64(send []int64, counts []int) ([]int64, []int) {
	seq := t.nextSeq()
	offsets := alltoallvOffsets(len(send), counts, t.size)
	for dst := 0; dst < t.size; dst++ {
		if dst != t.rank {
			t.collSend(dst, seq, send[offsets[dst]:offsets[dst+1]])
		}
	}
	recvCounts := make([]int, t.size)
	parts := make([][]int64, t.size)
	total := 0
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			parts[src] = send[offsets[src]:offsets[src+1]]
		} else {
			parts[src] = t.collRecv(src, seq)
		}
		recvCounts[src] = len(parts[src])
		total += len(parts[src])
	}
	recv := make([]int64, 0, total)
	for src := 0; src < t.size; src++ {
		recv = append(recv, parts[src]...)
		if src != t.rank {
			t.pool.put(parts[src])
		}
	}
	return recv, recvCounts
}

// AlltoallvF64 is AlltoallvI64 with payloads bit-converted through
// math.Float64bits.
func (t *SocketTransport) AlltoallvF64(send []float64, counts []int) ([]float64, []int) {
	recvWords, recvCounts := t.AlltoallvI64(f64ToWords(send), counts)
	return wordsToF64(recvWords), recvCounts
}

// Abort poisons the transport and tears down its connections so peers
// blocked on this rank unwind with TransportFailure instead of
// hanging; RunWorld calls it when a rank function panics.
func (t *SocketTransport) Abort() {
	t.fail(errors.New("transport aborted"))
	for _, sc := range t.conns {
		if sc != nil {
			sc.nc.Close()
		}
	}
}

// Close shuts the transport down in order: the heartbeat stops, writers
// flush everything already queued and exit, then connections close and
// readers exit, and finally every receive queue is poisoned with a
// "transport closed" failure. The poison makes Close safe concurrent
// with an in-flight Recv64 — the blocked receiver unwinds with a
// TransportFailure instead of hanging forever — while frames already
// queued are still delivered first (poison only surfaces on an empty
// queue). Close is idempotent: second and later calls redo only
// already-settled steps.
func (t *SocketTransport) Close() error {
	t.closing.Store(true)
	t.closeOnce.Do(func() { close(t.done) })
	t.hbwg.Wait()
	t.wwg.Wait()
	for _, sc := range t.conns {
		if sc != nil {
			sc.nc.Close()
		}
	}
	t.rwg.Wait()
	closedErr := errors.New("transport closed")
	for r := range t.dataQ {
		t.dataQ[r].fail(closedErr)
		t.collQ[r].fail(closedErr)
	}
	return nil
}

// f64ToWords bit-converts a float64 vector for the wire.
func f64ToWords(vals []float64) []int64 {
	words := make([]int64, len(vals))
	for i, v := range vals {
		words[i] = int64(math.Float64bits(v))
	}
	return words
}

// wordsToF64 is the inverse of f64ToWords.
func wordsToF64(words []int64) []float64 {
	vals := make([]float64, len(words))
	for i, w := range words {
		vals[i] = math.Float64frombits(uint64(w))
	}
	return vals
}
