package mpi

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

func setSocketEnv(t *testing.T) {
	t.Helper()
	t.Setenv(EnvRank, "1")
	t.Setenv(EnvSize, "2")
	t.Setenv(EnvAddrs, "/tmp/a,/tmp/b")
	t.Setenv(EnvNet, "unix")
}

func TestSocketConfigFromEnvRejectsNonPositiveTimeout(t *testing.T) {
	for _, bad := range []string{"0", "0s", "-1s", "-250ms"} {
		t.Run(bad, func(t *testing.T) {
			setSocketEnv(t)
			t.Setenv(EnvTimeout, bad)
			if _, err := SocketConfigFromEnv(); err == nil {
				t.Fatalf("%s=%q accepted; a non-positive timeout would disable the rendezvous deadline", EnvTimeout, bad)
			}
		})
	}
	setSocketEnv(t)
	t.Setenv(EnvTimeout, "5s")
	cfg, err := SocketConfigFromEnv()
	if err != nil || cfg.Timeout != 5*time.Second {
		t.Fatalf("valid timeout: cfg.Timeout = %v, err = %v", cfg.Timeout, err)
	}
}

func TestSocketConfigFromEnvLivenessKnobs(t *testing.T) {
	setSocketEnv(t)
	t.Setenv(EnvRetryMax, "7")
	t.Setenv(EnvRetryBase, "3ms")
	t.Setenv(EnvHeartbeat, "2s")
	t.Setenv(EnvCollTimeout, "30s")
	cfg, err := SocketConfigFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Retry.Max != 7 || cfg.Retry.BaseDelay != 3*time.Millisecond {
		t.Fatalf("retry knobs = %+v", cfg.Retry)
	}
	if cfg.Heartbeat != 2*time.Second || cfg.CollTimeout != 30*time.Second {
		t.Fatalf("liveness knobs = (%v, %v)", cfg.Heartbeat, cfg.CollTimeout)
	}

	for name, bad := range map[string]string{
		EnvRetryMax:    "-1",
		EnvRetryBase:   "-2ms",
		EnvHeartbeat:   "fast",
		EnvCollTimeout: "-1s",
	} {
		t.Run(name, func(t *testing.T) {
			setSocketEnv(t)
			t.Setenv(name, bad)
			if _, err := SocketConfigFromEnv(); err == nil {
				t.Fatalf("%s=%q accepted", name, bad)
			}
		})
	}
}

// TestRendezvousRetryable pins the retry classifier: transient network
// and short-read failures retry; protocol-level rejections are fatal.
func TestRendezvousRetryable(t *testing.T) {
	retryable := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		fmt.Errorf("mpi: rank 1 handshake read: %w", fmt.Errorf("%w: input ends inside header", wire.ErrTruncated)),
		fmt.Errorf("%w: reading length", wire.ErrBadLength),
		&net.OpError{Op: "dial", Err: errors.New("connection refused")},
	}
	for _, err := range retryable {
		if !rendezvousRetryable(err) {
			t.Errorf("rendezvousRetryable(%v) = false, want true", err)
		}
	}
	fatal := []error{
		errors.New("mpi: rank 1 handshake: peer world size 3 != 2"),
		errors.New("mpi: rank 1 handshake: peer is not speaking the repro wire protocol"),
		fmt.Errorf("%w: 9", wire.ErrBadKind),
	}
	for _, err := range fatal {
		if rendezvousRetryable(err) {
			t.Errorf("rendezvousRetryable(%v) = true, want false", err)
		}
	}
}

// TestFrameQueueTakeTimeout pins the collective watchdog's hook: a
// bounded take on an empty queue reports ok == false after the bound, a
// queued frame always wins over the timer, and poison still panics.
func TestFrameQueueTakeTimeout(t *testing.T) {
	q := newFrameQueue()
	start := time.Now()
	if _, _, ok := q.takeTimeout(20 * time.Millisecond); ok {
		t.Fatal("empty queue returned a frame")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("takeTimeout returned after %v, before the bound", elapsed)
	}

	q.put([]int64{42}, 7)
	payload, tag, ok := q.takeTimeout(time.Nanosecond)
	if !ok || tag != 7 || len(payload) != 1 || payload[0] != 42 {
		t.Fatalf("queued frame lost to the timer: (%v, %d, %v)", payload, tag, ok)
	}

	q.fail(errors.New("poisoned"))
	defer func() {
		if _, isTF := AsTransportFailure(recover()); !isTF {
			t.Fatal("take on a poisoned queue did not panic with TransportFailure")
		}
	}()
	q.takeTimeout(time.Millisecond)
	t.Fatal("unreachable")
}
