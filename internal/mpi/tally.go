package mpi

import (
	"fmt"
	"sync/atomic"
)

// Piggyback tally framing. A "tally" is a small reduction payload — a
// fixed-length int64 vector both endpoints agree on (per-part size
// deltas, a convergence counter) — appended to a point-to-point message
// so a round of boundary exchange can double as the iteration's
// reduction, removing the need for a separate world-wide Allreduce.
//
// The frame is a suffix so the message's primary payload keeps its
// natural prefix position. Reading from the end, the last element is a
// header h:
//
//	h == -1: dense — the preceding tallyLen elements are the tally
//	         values verbatim.
//	h >= 0:  sparse — the preceding h elements each pack one nonzero
//	         entry as (index << 48) | zigzag(value), covering indices
//	         below 1<<15 and |value| < 1<<47.
//
// The encoder picks whichever is shorter; an all-zero tally costs a
// single header element. Both sides must agree on tallyLen (it is part
// of the exchange protocol, like a datatype), exactly as they must
// agree on the length of an Allreduce.

// tallyPackBits is the payload width of a packed sparse entry.
const tallyPackBits = 48

// packTallyEntry packs (index, value) into one element; ok reports
// whether the pair fits the sparse encoding.
func packTallyEntry(idx int, v int64) (packed int64, ok bool) {
	if idx < 0 || idx >= 1<<15 {
		return 0, false
	}
	z := uint64(v)<<1 ^ uint64(v>>63) // zigzag
	if z >= 1<<tallyPackBits {
		return 0, false
	}
	return int64(uint64(idx)<<tallyPackBits | z), true
}

// unpackTallyEntry reverses packTallyEntry.
func unpackTallyEntry(packed int64) (idx int, v int64) {
	u := uint64(packed)
	z := u & (1<<tallyPackBits - 1)
	return int(u >> tallyPackBits), int64(z>>1) ^ -int64(z&1)
}

// AppendTally appends the tally frame for tally to buf and returns the
// extended buffer. len(tally) is the protocol's tallyLen; the receiver
// must call SplitTally with the same value. The appended frame length
// is accounted in Stats.TallyElems. The frame is sized in a counting
// pass and encoded straight into buf, so callers reusing their send
// buffers across rounds pay no per-round allocation here.
//
//repro:hotpath
func AppendTally(c *Comm, buf []int64, tally []int64) []int64 {
	if len(tally) == 0 {
		return buf
	}
	nz := 0
	sparseOK := true
	for i, v := range tally {
		if v == 0 {
			continue
		}
		if _, ok := packTallyEntry(i, v); !ok {
			sparseOK = false
			break
		}
		nz++
	}
	before := len(buf)
	if sparseOK && nz < len(tally) {
		for i, v := range tally {
			if v == 0 {
				continue
			}
			p, _ := packTallyEntry(i, v)
			buf = append(buf, p)
		}
		buf = append(buf, int64(nz))
	} else {
		buf = append(buf, tally...)
		buf = append(buf, -1)
	}
	atomic.AddInt64(&c.stats.TallyElems, int64(len(buf)-before))
	return buf
}

// SplitTally strips the tally frame from msg, adds the decoded tally
// element-wise into dst (len(dst) must be the sender's tallyLen), and
// returns the primary payload prefix. It panics on a malformed frame —
// with agreed tally lengths on both sides this cannot happen.
//
//repro:hotpath
func SplitTally(msg []int64, dst []int64) []int64 {
	if len(dst) == 0 {
		return msg
	}
	if len(msg) == 0 {
		panic("mpi: SplitTally on message without tally frame")
	}
	h := msg[len(msg)-1]
	body := msg[:len(msg)-1]
	if h == -1 {
		if len(body) < len(dst) {
			panic(fmt.Sprintf("mpi: dense tally frame of %d elements, need %d", len(body), len(dst)))
		}
		frame := body[len(body)-len(dst):]
		for i, v := range frame {
			dst[i] += v
		}
		return body[:len(body)-len(dst)]
	}
	n := int(h)
	if n < 0 || n > len(body) {
		panic(fmt.Sprintf("mpi: sparse tally header %d outside message of %d elements", n, len(body)))
	}
	frame := body[len(body)-n:]
	for _, p := range frame {
		idx, v := unpackTallyEntry(p)
		if idx >= len(dst) {
			panic(fmt.Sprintf("mpi: sparse tally index %d outside tally length %d", idx, len(dst)))
		}
		dst[idx] += v
	}
	return body[:len(body)-n]
}
