package mpi

import (
	"math"
	"testing"
)

// newTestComm returns a 1-rank Comm for stats-only helpers.
func newTestComm(t *testing.T) *Comm {
	t.Helper()
	var out *Comm
	Run(1, func(c *Comm) { out = c })
	return out
}

func TestTallyRoundTripSparseAndDense(t *testing.T) {
	c := newTestComm(t)
	cases := [][]int64{
		{0, 0, 0, 0},                      // all zero: single header element
		{1, -2, 0, 7},                     // sparse
		{5, 5, 5, 5},                      // dense is shorter? sparse nnz=4 == len -> dense
		{math.MaxInt64, 0, -3, 0},         // unpackable value: dense fallback
		{0, 1 << 50, 0, 0},                // zigzag overflow: dense fallback
		{-(1 << 46), 1<<46 - 1, 0, 12345}, // extreme packable values
	}
	payload := []int64{101, 102, 103}
	for _, tally := range cases {
		msg := AppendTally(c, append([]int64(nil), payload...), tally)
		got := make([]int64, len(tally))
		rest := SplitTally(msg, got)
		if len(rest) != len(payload) {
			t.Fatalf("tally %v: payload length %d after split, want %d", tally, len(rest), len(payload))
		}
		for i := range payload {
			if rest[i] != payload[i] {
				t.Fatalf("tally %v: payload corrupted at %d: %d", tally, i, rest[i])
			}
		}
		for i := range tally {
			if got[i] != tally[i] {
				t.Fatalf("tally %v decoded as %v", tally, got)
			}
		}
	}
}

func TestTallyAccumulatesIntoDst(t *testing.T) {
	c := newTestComm(t)
	dst := []int64{10, 20}
	msg := AppendTally(c, nil, []int64{1, -2})
	msg2 := AppendTally(c, nil, []int64{3, 4})
	SplitTally(msg, dst)
	SplitTally(msg2, dst)
	if dst[0] != 14 || dst[1] != 22 {
		t.Fatalf("accumulated tally = %v, want [14 22]", dst)
	}
}

func TestTallyZeroLengthIsNoop(t *testing.T) {
	c := newTestComm(t)
	buf := []int64{1, 2}
	out := AppendTally(c, buf, nil)
	if len(out) != 2 {
		t.Fatalf("zero-length tally appended %d elements", len(out)-2)
	}
	if rest := SplitTally(out, nil); len(rest) != 2 {
		t.Fatalf("zero-length split returned %d elements", len(rest))
	}
}

func TestTallyAllZeroCostsOneElement(t *testing.T) {
	c := newTestComm(t)
	before := c.Stats().TallyElems
	out := AppendTally(c, nil, make([]int64, 64))
	if len(out) != 1 {
		t.Fatalf("all-zero tally frame has %d elements, want 1", len(out))
	}
	if d := c.Stats().TallyElems - before; d != 1 {
		t.Fatalf("TallyElems grew by %d, want 1", d)
	}
}

func TestPackTallyEntryBounds(t *testing.T) {
	if _, ok := packTallyEntry(1<<15, 0); ok {
		t.Error("index 1<<15 must not pack")
	}
	if _, ok := packTallyEntry(-1, 0); ok {
		t.Error("negative index must not pack")
	}
	for _, v := range []int64{0, 1, -1, 1<<46 - 1, -(1 << 46)} {
		p, ok := packTallyEntry(7, v)
		if !ok {
			t.Fatalf("value %d should pack", v)
		}
		if idx, got := unpackTallyEntry(p); idx != 7 || got != v {
			t.Fatalf("round trip (7, %d) -> (%d, %d)", v, idx, got)
		}
	}
}
