package mpi

import (
	"fmt"
	"sync"
)

// Transport is the rank-communication surface the exchange engine and
// the collectives actually use, extracted so a world can be backed by
// in-process goroutine mailboxes (NewProcWorld, the default) or by one
// OS process per rank over TCP/Unix sockets (DialSocket). A Transport
// is one rank's handle; Comm wraps it with traffic statistics and the
// generic convenience API.
//
// Contract, shared by every implementation and enforced by the
// conformance suite in internal/mpitest:
//
//   - Point-to-point delivery is strict FIFO per ordered (src, dst)
//     pair, MPI's non-overtaking guarantee. Tags never affect matching;
//     they only let a round-structured receiver assert the frame it
//     dequeued (Comm's Recv64Tag panics on a mismatch).
//   - Send64 is eager: the payload is copied (or serialized) before it
//     returns and the caller may reuse its buffer immediately.
//   - Recv64 payloads are private to the receiver; passing one to
//     Recycle64 after decoding returns it to the transport's buffer
//     pool, making steady-state rounds allocation-free on the
//     in-process path.
//   - Collectives must be called from the rank's main goroutine, every
//     rank in the same order. Point-to-point operations may additionally
//     be completed from one helper goroutine concurrently with a
//     collective on the main goroutine (the exchange engine's drainer
//     relies on this).
//   - Reductions fold contributions in ascending rank order, so
//     floating-point results are bit-identical across transports.
//   - Abort poisons the transport: every blocked or future operation
//     panics (in-process: the shared world's poison; socket: connection
//     teardown surfaces as TransportFailure panics on every peer)
//     instead of hanging.
type Transport interface {
	// Rank returns this rank's id in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int

	// Send64 starts an eager nonblocking send of data to rank dst with
	// the given round tag; the payload is copied before return.
	Send64(dst int, tag uint32, data []int64)
	// Recv64 blocks until the next int64 message from rank src arrives
	// and returns its payload (a private buffer) and round tag.
	Recv64(src int) (payload []int64, tag uint32)
	// Recycle64 returns a buffer obtained from Recv64 to the pool. The
	// caller must not touch buf afterwards.
	Recycle64(buf []int64)

	// Barrier blocks until every rank has entered it.
	Barrier()
	// AllreduceI64 reduces vals element-wise across ranks in ascending
	// rank order; all ranks must pass equal lengths.
	AllreduceI64(vals []int64, op Op) []int64
	// AllreduceF64 is AllreduceI64 for float64 vectors. The rank-ordered
	// fold makes results bit-identical on every transport.
	AllreduceF64(vals []float64, op Op) []float64
	// BcastI64 distributes root's data to every rank; every rank
	// (including the root) receives an independent copy.
	BcastI64(root int, data []int64) []int64
	// AllgathervI64 collects a variable-length vector from each rank;
	// out[r] is an independent copy of rank r's contribution.
	AllgathervI64(data []int64) [][]int64
	// AlltoallvI64 performs a variable-size personalized exchange: send
	// holds the data for all destinations packed in rank order,
	// counts[r] elements to rank r; it returns the received data packed
	// in source-rank order with per-source counts.
	AlltoallvI64(send []int64, counts []int) ([]int64, []int)
	// AlltoallvF64 is AlltoallvI64 for float64 payloads.
	AlltoallvF64(send []float64, counts []int) ([]float64, []int)

	// Abort poisons the transport after a local failure so peers blocked
	// on this rank unwind instead of hanging. It is idempotent and safe
	// to call concurrently with any operation.
	Abort()
	// Close releases the transport's resources (connections, helper
	// goroutines). In-process worlds share state across ranks and treat
	// Close as a no-op; socket worlds tear down their connections.
	Close() error
}

// genericTransport is the in-process extension of Transport: arbitrary
// element types move through shared-memory mailboxes and publication
// slots without serialization. Wire-backed transports do not implement
// it; Comm's generic operations fall back to typed word encodings (or
// panic for non-numeric element types).
type genericTransport interface {
	Transport
	sendAny(dst int, data any, count int)
	recvAny(src int) message
	// publish writes v into this rank's slot and synchronizes so all
	// slots are visible; the returned release function must be called
	// after the caller has finished reading other ranks' slots.
	publish(v any) (release func())
	slot(r int) any
}

// TransportFailure is the panic payload raised by transport operations
// that were poisoned by a peer failure or teardown: the socket
// transport's equivalent of the in-process world's poison-on-panic.
// RunWorld treats it as a secondary victim when another rank panicked
// first; a standalone worker process sees it unwind with the underlying
// error.
type TransportFailure struct{ Err error }

func (f TransportFailure) Error() string { return "mpi: transport failure: " + f.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (f TransportFailure) Unwrap() error { return f.Err }

// AsTransportFailure reports whether a recovered panic payload is a
// transport poison (a peer failure/teardown, or the in-process world's
// poison-on-panic) and returns its error description.
func AsTransportFailure(p any) (error, bool) {
	switch v := p.(type) {
	case TransportFailure:
		return v, true
	case barrierPoisoned:
		return fmt.Errorf("mpi: world poisoned by a sibling rank's panic"), true
	}
	return nil, false
}

// isPoisonPanic reports whether a panic payload is a secondary-victim
// sentinel rather than an original failure.
func isPoisonPanic(p any) bool {
	_, ok := AsTransportFailure(p)
	return ok
}

// NewComm wraps a per-rank Transport in a Comm handle with fresh
// traffic statistics. threadsPerRank <= 0 defaults to 1. This is the
// entry point for externally formed worlds (one OS process per rank
// over DialSocket); in-process worlds get their Comms from Run.
func NewComm(t Transport, threadsPerRank int) *Comm {
	if threadsPerRank <= 0 {
		threadsPerRank = 1
	}
	return &Comm{t: t, rank: t.Rank(), size: t.Size(), threads: threadsPerRank}
}

// RunWorld executes fn on every rank of a pre-built world, one
// goroutine per transport, and returns when all ranks finish. Panics on
// any rank abort that rank's transport — releasing siblings blocked in
// a collective or a point-to-point wait — and the original panic is
// re-raised on the caller after all ranks have unwound. Secondary
// poison panics (barrier poison, TransportFailure) are suppressed when
// an original panic exists; if every panic is a poison (an external
// fault, not a rank's own bug), the first one is re-raised instead of
// being swallowed.
func RunWorld(ts []Transport, threadsPerRank int, fn func(c *Comm)) {
	if len(ts) == 0 {
		panic("mpi: RunWorld with empty world")
	}
	var wg sync.WaitGroup
	panics := make([]any, len(ts))
	for r := range ts {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					// Poison the world so sibling ranks blocked in a
					// collective or a point-to-point wait wake up and
					// unwind instead of hanging.
					ts[rank].Abort()
				}
			}()
			fn(NewComm(ts[rank], threadsPerRank))
		}(r)
	}
	wg.Wait()
	var firstPoison any
	for _, p := range panics {
		if p == nil {
			continue
		}
		if isPoisonPanic(p) {
			if firstPoison == nil {
				firstPoison = p
			}
			continue // secondary victim of another rank's panic
		}
		panic(p)
	}
	if firstPoison != nil {
		panic(firstPoison)
	}
}
