package mpitest

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi"
)

// ChaosKind selects the fault a ChaosProxy injects into the stream it
// relays.
type ChaosKind int

const (
	// ChaosReset cuts both halves of the proxied pair abruptly at the
	// seeded byte point — a connection reset, the rendezvous-retry
	// fault.
	ChaosReset ChaosKind = iota
	// ChaosTruncate forwards exactly the seeded byte count and then
	// closes — the receiver sees a frame cut mid-payload.
	ChaosTruncate
	// ChaosStall stops forwarding at the seeded byte point but keeps
	// every connection open — a wedged peer, visible only to the
	// liveness watchdog.
	ChaosStall
	// ChaosKill tears down the whole proxy (listener and every relayed
	// connection) at the seeded byte point — a killed peer process.
	ChaosKill
)

func (k ChaosKind) String() string {
	switch k {
	case ChaosReset:
		return "reset"
	case ChaosTruncate:
		return "truncate"
	case ChaosStall:
		return "stall"
	case ChaosKill:
		return "kill"
	}
	return fmt.Sprintf("ChaosKind(%d)", int(k))
}

// ChaosPlan describes when and how a ChaosProxy misbehaves. The fault
// point is drawn per connection from [MinBytes, MaxBytes] with a
// seeded generator, so runs are randomized but reproducible.
type ChaosPlan struct {
	Kind ChaosKind
	// Seed feeds the fault-point generator; equal seeds give equal
	// fault points.
	Seed int64
	// MinBytes and MaxBytes bound the fault point, counted in bytes
	// forwarded client→target. The rendezvous hello is 22 bytes, so
	// points below that fault the handshake and points above it fault
	// the steady-state stream.
	MinBytes, MaxBytes int
	// Once limits injection to the first relayed connection; later
	// connections relay cleanly. This is what makes a rendezvous fault
	// transparent to a retrying dialer.
	Once bool
}

// ChaosProxy is a byte-level man-in-the-middle for one rank's listen
// address: it accepts connections meant for the target, relays them,
// and injects the planned fault at a seeded byte point. Tests route a
// world's dials through proxies to prove every fault class ends in a
// transparent retry or a clean per-peer poison — never a hang, never a
// wrong answer.
type ChaosProxy struct {
	tb      testing.TB
	network string
	target  string
	plan    ChaosPlan

	ln       net.Listener
	rngMu    sync.Mutex
	rng      *rand.Rand
	injected atomic.Bool
	done     chan struct{}
	closed   sync.Once

	mu    sync.Mutex
	conns []net.Conn
}

// NewChaosProxy starts a proxy in front of target on the same network
// ("unix" or "tcp") and registers its teardown on tb. Addr is where
// dialers should connect instead of the target.
func NewChaosProxy(tb testing.TB, network, target string, plan ChaosPlan) *ChaosProxy {
	tb.Helper()
	var laddr string
	switch network {
	case "unix":
		laddr = filepath.Join(tb.TempDir(), "chaos.sock")
	case "tcp":
		laddr = "127.0.0.1:0"
	default:
		tb.Fatalf("chaos proxy: unsupported network %q", network)
	}
	ln, err := net.Listen(network, laddr)
	if err != nil {
		tb.Fatalf("chaos proxy listen: %v", err)
	}
	p := &ChaosProxy{
		tb:      tb,
		network: network,
		target:  target,
		plan:    plan,
		ln:      ln,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		done:    make(chan struct{}),
	}
	go p.acceptLoop()
	tb.Cleanup(p.Close)
	return p
}

// Addr returns the proxy's listen address, to be used in place of the
// target's in a rank's address list.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Close tears the proxy down: listener, every relayed connection, and
// any stalled relay. Idempotent.
func (p *ChaosProxy) Close() {
	p.closed.Do(func() {
		close(p.done)
		p.ln.Close()
		p.killConns()
	})
}

// KillAll closes the listener and every relayed connection without
// marking the proxy closed — the ChaosKill fault.
func (p *ChaosProxy) KillAll() {
	p.ln.Close()
	p.killConns()
}

func (p *ChaosProxy) killConns() {
	p.mu.Lock()
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *ChaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *ChaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		target, err := net.Dial(p.network, p.target)
		if err != nil {
			// The real listener is not up (or just died): dropping the
			// client is itself a transient fault the dialer must retry.
			client.Close()
			continue
		}
		p.track(client)
		p.track(target)
		faultAt := -1
		if !p.plan.Once || !p.injected.Swap(true) {
			p.rngMu.Lock()
			faultAt = p.plan.MinBytes + p.rng.Intn(p.plan.MaxBytes-p.plan.MinBytes+1)
			p.rngMu.Unlock()
		}
		go p.relay(target, client, faultAt) // client→target carries the fault
		go p.relay(client, target, -1)
	}
}

// relay copies src to dst; with faultAt >= 0 it forwards exactly
// faultAt bytes and then injects the planned fault.
func (p *ChaosProxy) relay(dst, src net.Conn, faultAt int) {
	buf := make([]byte, 4096)
	forwarded := 0
	for {
		limit := len(buf)
		if faultAt >= 0 {
			if remain := faultAt - forwarded; remain < limit {
				limit = remain
			}
			if limit == 0 {
				p.inject(dst, src)
				return
			}
		}
		n, err := src.Read(buf[:limit])
		if n > 0 {
			forwarded += n
			if _, werr := dst.Write(buf[:n]); werr != nil {
				src.Close()
				return
			}
		}
		if err != nil {
			dst.Close()
			src.Close()
			return
		}
	}
}

func (p *ChaosProxy) inject(dst, src net.Conn) {
	switch p.plan.Kind {
	case ChaosReset, ChaosTruncate:
		if tc, ok := src.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN
		}
		src.Close()
		dst.Close()
	case ChaosStall:
		// Wedge: forward nothing more, keep every connection open so
		// only the liveness watchdog can notice.
		<-p.done
	case ChaosKill:
		p.KillAll()
	}
}

// sockAddrs allocates n Unix socket paths in a fresh temporary
// directory.
func sockAddrs(tb testing.TB, n int) []string {
	dir := tb.TempDir()
	addrs := make([]string, n)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
	}
	return addrs
}

// chaosWorld builds an in-process Unix-socket world whose dials to rank
// j route through proxies[j] (when non-nil); rank j itself listens on
// the real address. base supplies the shared Timeout/Retry/Heartbeat/
// CollTimeout knobs.
func chaosWorld(tb testing.TB, real []string, proxies []*ChaosProxy, base mpi.SocketConfig) ([]mpi.Transport, error) {
	n := len(real)
	ts := make([]mpi.Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := base
			cfg.Network, cfg.Rank, cfg.Size = "unix", r, n
			cfg.Addrs = make([]string, n)
			for j := range cfg.Addrs {
				if j != r && proxies != nil && proxies[j] != nil {
					cfg.Addrs[j] = proxies[j].Addr()
				} else {
					cfg.Addrs[j] = real[j]
				}
			}
			t, err := mpi.DialSocket(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			ts[r] = t
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			for _, t := range ts {
				if t != nil {
					t.Close()
				}
			}
			return nil, fmt.Errorf("chaos world rank %d: %w", r, err)
		}
	}
	tb.Cleanup(func() {
		for _, t := range ts {
			t.Close()
		}
	})
	return ts, nil
}

// runChaosTier is the chaos conformance tier: every injected fault
// class must end in bit-identical results (transparent retry) or a
// clean per-peer TransportFailure within the watchdog bound — no hang,
// no wrong answer. It builds socket worlds directly (the faults are
// wire-level), so it runs only when WithChaos is passed, from the
// socket transport's conformance test.
func runChaosTier(t *testing.T) {
	t.Run("RendezvousResetRetries", chaosRendezvousReset)
	t.Run("TruncatedFramePoisons", func(t *testing.T) { chaosMidStreamCut(t, ChaosTruncate) })
	t.Run("ResetMidStreamPoisons", func(t *testing.T) { chaosMidStreamCut(t, ChaosReset) })
	t.Run("KillCascades", func(t *testing.T) { chaosMidStreamCut(t, ChaosKill) })
	t.Run("StallTripsLivenessWatchdog", chaosStallWatchdog)
	t.Run("CollectiveWatchdog", chaosCollectiveWatchdog)
	t.Run("CloseIdempotentConcurrentRecv", chaosCloseConcurrent)
}

// chaosRendezvousReset resets the first connection through rank 0's
// address mid-handshake; the retrying dialer must rendezvous anyway
// and the world must produce results bit-identical to an undisturbed
// fold — the fault is fully transparent.
func chaosRendezvousReset(t *testing.T) {
	const n = 3
	real := sockAddrs(t, n)
	// The hello frame is 22 bytes; a fault point inside [1, 20] cuts
	// the handshake itself.
	proxy := NewChaosProxy(t, "unix", real[0], ChaosPlan{Kind: ChaosReset, Seed: 11, MinBytes: 1, MaxBytes: 20, Once: true})
	ts, err := chaosWorld(t, real, []*ChaosProxy{proxy, nil, nil}, mpi.SocketConfig{
		Timeout: 30 * time.Second,
		Retry:   mpi.SocketRetry{BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("rendezvous did not survive a handshake reset: %v", err)
	}
	contrib := func(r int) []float64 {
		return []float64{0.1 * float64(r+1), 1e16, -1.0 / float64(r+3)}
	}
	want := append([]float64(nil), contrib(0)...)
	for r := 1; r < n; r++ {
		for i, v := range contrib(r) {
			want[i] += v
		}
	}
	mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
		got := mpi.Allreduce(c, contrib(c.Rank()), mpi.Sum)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				panic(fmt.Sprintf("rank %d: fold after retried rendezvous diverges at %d: %x != %x",
					c.Rank(), i, math.Float64bits(got[i]), math.Float64bits(want[i])))
			}
		}
	})
}

// chaosMidStreamCut cuts (truncate/reset) or kills the rank1→rank0
// stream after the handshake, mid data frame. Every rank must unwind
// with a clean TransportFailure — promptly, with no hang and no
// mis-decoded payload.
func chaosMidStreamCut(t *testing.T, kind ChaosKind) {
	const n = 2
	real := sockAddrs(t, n)
	// Past the 22-byte hello, inside the first data frames.
	proxy := NewChaosProxy(t, "unix", real[0], ChaosPlan{Kind: kind, Seed: 7, MinBytes: 40, MaxBytes: 300})
	ts, err := chaosWorld(t, real, []*ChaosProxy{proxy, nil}, mpi.SocketConfig{
		Timeout: 30 * time.Second,
		Retry:   mpi.SocketRetry{BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	start := time.Now()
	func() {
		defer wantPanic(t, "transport failure")()
		mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
			payload := []int64{1, 2, 3, 4, 5, 6, 7, 8}
			if c.Rank() == 1 {
				for i := 0; ; i++ {
					mpi.Isend64Tag(c, 0, mpi.RoundTag(0, uint32(i)), payload)
					time.Sleep(time.Millisecond)
				}
			}
			for i := 0; ; i++ {
				buf := mpi.Recv64Tag(c, 1, mpi.RoundTag(0, uint32(i)))
				c.Recycle64(buf)
			}
		})
	}()
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("%v fault took %v to surface", kind, elapsed)
	}
}

// chaosStallWatchdog wedges the rank1→rank0 stream (connections stay
// open, bytes stop flowing): only the liveness watchdog can catch
// this, and it must, naming the silent rank and direction within the
// miss window — never a silent world-wide hang.
func chaosStallWatchdog(t *testing.T) {
	const n = 2
	const heartbeat = 50 * time.Millisecond
	real := sockAddrs(t, n)
	proxy := NewChaosProxy(t, "unix", real[0], ChaosPlan{Kind: ChaosStall, Seed: 3, MinBytes: 60, MaxBytes: 200})
	ts, err := chaosWorld(t, real, []*ChaosProxy{proxy, nil}, mpi.SocketConfig{
		Timeout:   30 * time.Second,
		Retry:     mpi.SocketRetry{BaseDelay: time.Millisecond},
		Heartbeat: heartbeat,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	start := time.Now()
	func() {
		defer wantPanic(t, "liveness watchdog")()
		mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
			payload := []int64{11, 22, 33}
			if c.Rank() == 1 {
				for i := 0; ; i++ {
					mpi.Isend64Tag(c, 0, mpi.RoundTag(0, uint32(i)), payload)
					time.Sleep(2 * time.Millisecond)
				}
			}
			for i := 0; ; i++ {
				buf := mpi.Recv64Tag(c, 1, mpi.RoundTag(0, uint32(i)))
				c.Recycle64(buf)
			}
		})
	}()
	// The watchdog bound is heartbeatMissFactor (4) heartbeats; allow
	// generous scheduler slack but reject anything near a hang.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("stall took %v to trip the watchdog (miss window is %v)", elapsed, 4*heartbeat)
	}
}

// chaosCollectiveWatchdog checks SocketConfig.CollTimeout: a rank that
// is alive (heartbeats flowing) but late to a collective — the PR 4
// conditional-collective deadlock shape — must surface as a diagnostic
// panic naming the silent peer, not a hang.
func chaosCollectiveWatchdog(t *testing.T) {
	const n = 2
	real := sockAddrs(t, n)
	ts, err := chaosWorld(t, real, nil, mpi.SocketConfig{
		Timeout:     30 * time.Second,
		Heartbeat:   50 * time.Millisecond,
		CollTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	defer wantPanic(t, "collective watchdog")()
	mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
		if c.Rank() == 1 {
			// Alive and pinging, but far past rank 0's collective bound.
			time.Sleep(1500 * time.Millisecond)
		}
		c.Barrier()
	})
}

// chaosCloseConcurrent checks that SocketTransport.Close is idempotent
// and safe concurrent with an in-flight Recv64: the blocked receiver
// must unwind with a "transport closed" TransportFailure, never hang.
func chaosCloseConcurrent(t *testing.T) {
	const n = 2
	real := sockAddrs(t, n)
	ts, err := chaosWorld(t, real, nil, mpi.SocketConfig{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	recovered := make(chan any, 1)
	go func() {
		defer func() { recovered <- recover() }()
		ts[0].Recv64(1) // nothing will ever arrive
		panic("Recv64 returned without a message")
	}()
	time.Sleep(50 * time.Millisecond) // let the receiver block
	for i := 0; i < 3; i++ {          // idempotent: repeated Close is safe
		if err := ts[0].Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	ts[1].Close()
	select {
	case p := <-recovered:
		err, ok := mpi.AsTransportFailure(p)
		if !ok {
			t.Fatalf("Recv64 across Close panicked with %v, want TransportFailure", p)
		}
		if got := err.Error(); !strings.Contains(got, "transport closed") && !strings.Contains(got, "closed the connection") {
			t.Fatalf("Recv64 across Close unwound with %q, want a transport-closed failure", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv64 hung across Close")
	}
}
