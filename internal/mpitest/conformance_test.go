package mpitest

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/mpi"
)

func TestProcTransportConformance(t *testing.T) {
	RunTransportConformance(t, ProcFactory)
}

func TestUnixSocketTransportConformance(t *testing.T) {
	RunTransportConformance(t, UnixSocketFactory, WithChaos())
}

// faultFactories are the worlds the fault-injection tests run over, in
// a fixed order so the subtests (and any frames they send) run the
// same way every time.
type namedFactory struct {
	name    string
	factory Factory
}

func faultFactories() []namedFactory {
	return []namedFactory{{"proc", ProcFactory}, {"socket", UnixSocketFactory}}
}

// TestFaultDroppedFrame checks that a lost frame surfaces as the
// round-tag skew panic on the next receive — a detected protocol
// error, never silent corruption or a hang.
func TestFaultDroppedFrame(t *testing.T) {
	for _, nf := range faultFactories() {
		name, factory := nf.name, nf.factory
		t.Run(name, func(t *testing.T) {
			defer wantPanic(t, "pipelined rounds skewed")()
			ts := Faulty(factory(t, 2), func(rank int, ft *FaultyTransport) {
				if rank == 0 {
					ft.DropNth = 1
				}
			})
			mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
				if c.Rank() == 0 {
					mpi.Isend64Tag(c, 1, mpi.RoundTag(0, 0), []int64{10}) // dropped
					mpi.Isend64Tag(c, 1, mpi.RoundTag(0, 1), []int64{11})
				} else {
					mpi.Recv64Tag(c, 0, mpi.RoundTag(0, 0)) // sees round 1's frame
				}
			})
		})
	}
}

// TestFaultDuplicatedFrame checks that a repeated frame surfaces as a
// skew panic when the receiver moves to the next round.
func TestFaultDuplicatedFrame(t *testing.T) {
	for _, nf := range faultFactories() {
		name, factory := nf.name, nf.factory
		t.Run(name, func(t *testing.T) {
			defer wantPanic(t, "pipelined rounds skewed")()
			ts := Faulty(factory(t, 2), func(rank int, ft *FaultyTransport) {
				if rank == 0 {
					ft.DupNth = 1
				}
			})
			mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
				if c.Rank() == 0 {
					mpi.Isend64Tag(c, 1, mpi.RoundTag(0, 0), []int64{10}) // delivered twice
					mpi.Isend64Tag(c, 1, mpi.RoundTag(0, 1), []int64{11})
				} else {
					c.Recycle64(mpi.Recv64Tag(c, 0, mpi.RoundTag(0, 0)))
					mpi.Recv64Tag(c, 0, mpi.RoundTag(0, 1)) // sees the duplicate
				}
			})
		})
	}
}

// TestFaultDelayedFrames checks that pure timing perturbation changes
// nothing: the async engine's partition stays bit-identical to the
// undelayed reference on both transports.
func TestFaultDelayedFrames(t *testing.T) {
	ref := EngineReference(t)
	gen := EngineGenerator()
	for _, nf := range faultFactories() {
		name, factory := nf.name, nf.factory
		t.Run(name, func(t *testing.T) {
			ts := Faulty(factory(t, engineRanks), func(rank int, ft *FaultyTransport) {
				ft.Delay = 100 * time.Microsecond
			})
			var parts []int32
			mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
				p, _, err := repro.XtraPuLPComm(c, gen, EngineConfig(true))
				if err != nil {
					panic(err)
				}
				if c.Rank() == 0 {
					parts = p
				}
			})
			for v := range ref {
				if parts[v] != ref[v] {
					t.Fatalf("delayed run diverges at vertex %d: %d != %d", v, parts[v], ref[v])
				}
			}
		})
	}
}

// TestFaultPeerDeath kills one socket rank mid-round and requires
// every peer to unwind with a clean TransportFailure — no hang, no
// partial results mistaken for success.
func TestFaultPeerDeath(t *testing.T) {
	defer wantPanic(t, "transport")()
	ts := Faulty(UnixSocketFactory(t, 2), func(rank int, ft *FaultyTransport) {
		if rank == 1 {
			ft.KillAfter = 2
		}
	})
	// The run must terminate promptly; the watchdog turns a hang into
	// an immediate failure instead of a silent suite timeout.
	watchdog := time.AfterFunc(30*time.Second, func() {
		panic("TestFaultPeerDeath: world hung after peer death")
	})
	defer watchdog.Stop()
	mpi.RunWorld(ts, 1, func(c *mpi.Comm) {
		if c.Rank() == 1 {
			for seq := uint32(0); seq < 8; seq++ {
				mpi.Isend64Tag(c, 0, mpi.RoundTag(0, seq), []int64{int64(seq)})
			}
		} else {
			for seq := uint32(0); seq < 8; seq++ {
				c.Recycle64(mpi.Recv64Tag(c, 1, mpi.RoundTag(0, seq)))
			}
		}
	})
}

// TestSocketMultiProcess re-execs the test binary as one OS process
// per rank, rendezvouses them over Unix sockets with the REPRO_*
// environment a launcher would set, runs the async partitioner in each
// worker, and requires every worker's gathered partition to be
// bit-identical to the single-process in-process reference.
func TestSocketMultiProcess(t *testing.T) {
	if os.Getenv("REPRO_MPITEST_WORKER") == "1" {
		multiProcessWorker(t)
		return
	}
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	ref := EngineReference(t)
	dir := t.TempDir()
	addrs := make([]string, engineRanks)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmds := make([]*exec.Cmd, engineRanks)
	outs := make([]string, engineRanks)
	for r := 0; r < engineRanks; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("parts%d.txt", r))
		cmd := exec.CommandContext(ctx, exe, "-test.run=^TestSocketMultiProcess$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"REPRO_MPITEST_WORKER=1",
			"REPRO_MPITEST_OUT="+outs[r],
			mpi.EnvRank+"="+strconv.Itoa(r),
			mpi.EnvSize+"="+strconv.Itoa(engineRanks),
			mpi.EnvNet+"=unix",
			mpi.EnvAddrs+"="+strings.Join(addrs, ","),
			mpi.EnvTimeout+"=60s",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %d: %v", r, err)
		}
	}
	if t.Failed() {
		return
	}
	for r := 0; r < engineRanks; r++ {
		raw, err := os.ReadFile(outs[r])
		if err != nil {
			t.Fatalf("worker %d output: %v", r, err)
		}
		fields := strings.Fields(string(raw))
		if len(fields) != len(ref) {
			t.Fatalf("worker %d: %d parts, want %d", r, len(fields), len(ref))
		}
		for v, f := range fields {
			p, err := strconv.Atoi(f)
			if err != nil {
				t.Fatalf("worker %d vertex %d: %v", r, v, err)
			}
			if int32(p) != ref[v] {
				t.Fatalf("worker %d partition diverges from in-process reference at vertex %d: %d != %d", r, v, p, ref[v])
			}
		}
	}
}

// TestSocketMultiProcessChaos is the multi-process acceptance run for
// the chaos tier: four real worker processes rendezvous through
// ChaosProxy instances that reset the first connection to each of two
// ranks mid-handshake. The retrying rendezvous must absorb the faults
// and every worker's partition must stay bit-identical to the
// in-process reference — the chaos is fully transparent.
func TestSocketMultiProcessChaos(t *testing.T) {
	if os.Getenv("REPRO_MPITEST_WORKER") == "1" {
		multiProcessWorker(t)
		return
	}
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	ref := EngineReference(t)
	dir := t.TempDir()
	real := make([]string, engineRanks)
	for r := range real {
		real[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
	}
	// Proxy every rank's address; reset the first handshake into ranks
	// 0 and 1, relay the rest cleanly.
	proxied := make([]string, engineRanks)
	for r := range real {
		plan := ChaosPlan{Kind: ChaosReset, Seed: int64(100 + r), MinBytes: 1, MaxBytes: 20, Once: true}
		if r >= 2 {
			plan = ChaosPlan{Kind: ChaosReset, Seed: int64(100 + r), MinBytes: 1 << 30, MaxBytes: 1 << 30} // fault point never reached
		}
		proxied[r] = NewChaosProxy(t, "unix", real[r], plan).Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmds := make([]*exec.Cmd, engineRanks)
	outs := make([]string, engineRanks)
	for r := 0; r < engineRanks; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("parts%d.txt", r))
		// Worker r listens on its real address and dials everyone else
		// through the proxies.
		addrs := make([]string, engineRanks)
		for j := range addrs {
			if j == r {
				addrs[j] = real[j]
			} else {
				addrs[j] = proxied[j]
			}
		}
		cmd := exec.CommandContext(ctx, exe, "-test.run=^TestSocketMultiProcessChaos$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"REPRO_MPITEST_WORKER=1",
			"REPRO_MPITEST_OUT="+outs[r],
			mpi.EnvRank+"="+strconv.Itoa(r),
			mpi.EnvSize+"="+strconv.Itoa(engineRanks),
			mpi.EnvNet+"=unix",
			mpi.EnvAddrs+"="+strings.Join(addrs, ","),
			mpi.EnvTimeout+"=60s",
			mpi.EnvRetryBase+"=1ms",
			mpi.EnvHeartbeat+"=500ms",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", r, err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %d: %v", r, err)
		}
	}
	if t.Failed() {
		return
	}
	for r := 0; r < engineRanks; r++ {
		raw, err := os.ReadFile(outs[r])
		if err != nil {
			t.Fatalf("worker %d output: %v", r, err)
		}
		fields := strings.Fields(string(raw))
		if len(fields) != len(ref) {
			t.Fatalf("worker %d: %d parts, want %d", r, len(fields), len(ref))
		}
		for v, f := range fields {
			p, err := strconv.Atoi(f)
			if err != nil {
				t.Fatalf("worker %d vertex %d: %v", r, v, err)
			}
			if int32(p) != ref[v] {
				t.Fatalf("worker %d partition diverges from in-process reference at vertex %d under chaos: %d != %d", r, v, p, ref[v])
			}
		}
	}
}

// multiProcessWorker is one rank of the multi-process test: rendezvous
// from the environment, partition, dump the gathered result.
func multiProcessWorker(t *testing.T) {
	cfg, err := mpi.SocketConfigFromEnv()
	if err != nil {
		t.Fatalf("worker env: %v", err)
	}
	tr, err := mpi.DialSocket(cfg)
	if err != nil {
		t.Fatalf("worker rendezvous: %v", err)
	}
	defer tr.Close()
	c := mpi.NewComm(tr, 1)
	parts, _, err := repro.XtraPuLPComm(c, EngineGenerator(), EngineConfig(true))
	if err != nil {
		t.Fatalf("worker partition: %v", err)
	}
	var sb strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&sb, "%d\n", p)
	}
	if err := os.WriteFile(os.Getenv("REPRO_MPITEST_OUT"), []byte(sb.String()), 0o644); err != nil {
		t.Fatalf("worker output: %v", err)
	}
}
