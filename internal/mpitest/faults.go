package mpitest

import (
	"sync"
	"time"

	"repro/internal/mpi"
)

// FaultyTransport wraps a Transport and injects point-to-point faults:
// dropped frames, duplicated frames, delayed delivery, and a simulated
// peer death mid-round. Fault tests use it to pin down the failure
// contract — a lost or repeated round must surface as the tag-skew
// panic (never silent corruption), a dead peer as a TransportFailure
// (never a hang), and pure delays must not change any result.
//
// Only the Send64 path is perturbed; collectives and receives pass
// through. The wrapper deliberately does not forward the in-process
// transport's generic extension, so faulty worlds reject non-numeric
// payload types just like wire transports do.
type FaultyTransport struct {
	mpi.Transport

	// DropNth drops the Nth Send64 (1-based) on this rank; 0 disables.
	DropNth int
	// DupNth delivers the Nth Send64 twice; 0 disables.
	DupNth int
	// Delay pauses every send, perturbing timing without reordering.
	Delay time.Duration
	// KillAfter aborts the underlying transport after the Nth send,
	// simulating a peer dying mid-round; 0 disables.
	KillAfter int

	mu    sync.Mutex
	sends int
}

// Faulty wraps every transport of a world with the same fault plan.
func Faulty(ts []mpi.Transport, plan func(rank int, ft *FaultyTransport)) []mpi.Transport {
	out := make([]mpi.Transport, len(ts))
	for r, t := range ts {
		ft := &FaultyTransport{Transport: t}
		if plan != nil {
			plan(r, ft)
		}
		out[r] = ft
	}
	return out
}

// Send64 applies the fault plan, then forwards to the wrapped
// transport.
func (f *FaultyTransport) Send64(dst int, tag uint32, data []int64) {
	f.mu.Lock()
	f.sends++
	n := f.sends
	f.mu.Unlock()
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.KillAfter > 0 && n > f.KillAfter {
		f.Transport.Abort()
		return
	}
	if f.DropNth == n {
		return
	}
	f.Transport.Send64(dst, tag, data)
	if f.DupNth == n {
		f.Transport.Send64(dst, tag, data)
	}
}
