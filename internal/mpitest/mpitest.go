// Package mpitest is the transport conformance suite: a reusable set
// of tests every mpi.Transport implementation must pass, exercised
// in-tree against both the in-process goroutine transport and the
// socket transport (over Unix sockets, plus a multi-process re-exec
// test). The suite pins down the contract documented on mpi.Transport —
// per-pair FIFO delivery, tag-skew detection, poison-on-panic release
// of blocked peers, piggybacked tally folds matching explicit
// Allreduces, ascending-rank-order reductions bit-identical across
// transports, and end-to-end engine determinism (async == sync, every
// transport == the in-process reference).
package mpitest

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/mpi"
)

// Factory builds a fresh n-rank world of the transport under test.
// Implementations register cleanup on tb; each conformance subtest
// calls the factory once and runs the world to completion.
type Factory func(tb testing.TB, n int) []mpi.Transport

// ProcFactory builds the in-process reference world.
func ProcFactory(tb testing.TB, n int) []mpi.Transport {
	return mpi.NewProcWorld(n)
}

// UnixSocketFactory builds a socket world over Unix domain sockets in
// a per-test temporary directory, all ranks living in the calling test
// process. It exercises the full wire path — frame codec, reader and
// writer goroutines, rendezvous handshake — without spawning
// processes.
func UnixSocketFactory(tb testing.TB, n int) []mpi.Transport {
	dir := tb.TempDir()
	addrs := make([]string, n)
	for r := range addrs {
		addrs[r] = filepath.Join(dir, fmt.Sprintf("rank%d.sock", r))
	}
	ts, err := mpi.NewSocketWorld("unix", addrs, 30*time.Second)
	if err != nil {
		tb.Fatalf("socket world: %v", err)
	}
	tb.Cleanup(func() {
		for _, t := range ts {
			t.Close()
		}
	})
	return ts
}

// CrossThreadCounts returns the intra-rank thread counts the
// cross-thread determinism matrices sweep: {1, 2, 4, 8} normally,
// {1, 4} under -short, and {1, n} when REPRO_TEST_THREADS=n pins an
// explicit budget (CI's ThreadsPerRank=4 race leg). The serial count
// is always included — it is the reference every other count must
// reproduce bit for bit.
func CrossThreadCounts(short bool) []int {
	if env, err := strconv.Atoi(os.Getenv("REPRO_TEST_THREADS")); err == nil && env > 0 {
		return []int{1, env}
	}
	if short {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8}
}

// Option configures RunTransportConformance.
type Option func(*confOptions)

type confOptions struct {
	chaos bool
}

// WithChaos enables the chaos tier: wire-level fault injection through
// ChaosProxy (resets, truncation, stalls, kills) plus the watchdog and
// Close-hardening checks. The tier builds socket worlds directly —
// the faults live below the Transport interface — so pass it only from
// the socket transport's conformance test.
func WithChaos() Option {
	return func(o *confOptions) { o.chaos = true }
}

// RunTransportConformance runs the full conformance suite against the
// transport the factory builds. Every subtest constructs its own
// world, so a failure in one cannot corrupt another.
func RunTransportConformance(t *testing.T, factory Factory, opts ...Option) {
	var o confOptions
	for _, opt := range opts {
		opt(&o)
	}
	t.Run("P2PFIFO", func(t *testing.T) { testP2PFIFO(t, factory) })
	t.Run("TagSkewPanics", func(t *testing.T) { testTagSkew(t, factory) })
	t.Run("PoisonOnPanic", func(t *testing.T) { testPoisonOnPanic(t, factory) })
	t.Run("Collectives", func(t *testing.T) { testCollectives(t, factory) })
	t.Run("FloatFoldBits", func(t *testing.T) { testFloatFoldBits(t, factory) })
	t.Run("Barrier", func(t *testing.T) { testBarrier(t, factory) })
	t.Run("TallyFold", func(t *testing.T) { testTallyFold(t, factory) })
	t.Run("RecycleStability", func(t *testing.T) { testRecycleStability(t, factory) })
	t.Run("EngineDeterminism", func(t *testing.T) { testEngineDeterminism(t, factory) })
	if o.chaos {
		t.Run("Chaos", runChaosTier)
	}
}

// testP2PFIFO checks strict per-pair FIFO delivery with tags, payload
// integrity, and self-sends.
func testP2PFIFO(t *testing.T, factory Factory) {
	const n, rounds = 3, 16
	mpi.RunWorld(factory(t, n), 1, func(c *mpi.Comm) {
		for seq := uint32(0); seq < rounds; seq++ {
			tag := mpi.RoundTag(0, seq)
			for dst := 0; dst < n; dst++ {
				payload := []int64{int64(c.Rank()), int64(dst), int64(seq)}
				mpi.Isend64Tag(c, dst, tag, payload)
			}
		}
		for src := 0; src < n; src++ {
			for seq := uint32(0); seq < rounds; seq++ {
				got := mpi.Recv64Tag(c, src, mpi.RoundTag(0, seq))
				want := []int64{int64(src), int64(c.Rank()), int64(seq)}
				for i := range want {
					if got[i] != want[i] {
						panic(fmt.Sprintf("rank %d: message %d from %d: got %v want %v", c.Rank(), seq, src, got, want))
					}
				}
				c.Recycle64(got)
			}
		}
	})
}

// testTagSkew checks that a receiver expecting a different round tag
// panics with the skew diagnostic instead of consuming the frame.
func testTagSkew(t *testing.T, factory Factory) {
	defer wantPanic(t, "pipelined rounds skewed")()
	mpi.RunWorld(factory(t, 2), 1, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			mpi.Isend64Tag(c, 1, mpi.RoundTag(0, 3), []int64{1})
		} else {
			mpi.Recv64Tag(c, 0, mpi.RoundTag(0, 4))
		}
	})
}

// testPoisonOnPanic checks that one rank's panic releases peers
// blocked in a receive and in a collective, and that RunWorld
// re-raises the original panic, not a secondary poison.
func testPoisonOnPanic(t *testing.T, factory Factory) {
	defer wantPanic(t, "boom: original failure")()
	mpi.RunWorld(factory(t, 3), 1, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			mpi.Recv64(c, 1) // blocks: rank 1 never sends
		case 1:
			panic("boom: original failure")
		case 2:
			c.Barrier() //lint:ignore collectivesym deliberate asymmetry: rank 1 panics by design and the poison must release this blocked collective
		}
	})
}

// testCollectives checks every typed collective against locally
// computed references.
func testCollectives(t *testing.T, factory Factory) {
	const n = 4
	mpi.RunWorld(factory(t, n), 1, func(c *mpi.Comm) {
		me := int64(c.Rank())

		// Allreduce int64, all ops.
		vals := []int64{me + 1, -me, 100 * me}
		for _, op := range []mpi.Op{mpi.Sum, mpi.Max, mpi.Min} {
			got := mpi.Allreduce(c, vals, op)
			want := make([]int64, len(vals))
			for i := range want {
				want[i] = refFold1(op, func(r int64) int64 { return [3]int64{r + 1, -r, 100 * r}[i] }, n)
			}
			assertEq64(c, "Allreduce", got, want)
		}
		if got := mpi.AllreduceScalar(c, me+1, mpi.Sum); got != int64(n*(n+1)/2) {
			panic(fmt.Sprintf("AllreduceScalar = %d", got))
		}

		// Bcast from a non-zero root.
		b := mpi.Bcast(c, 2, []int64{7 * me, 7*me + 1})
		assertEq64(c, "Bcast", b, []int64{14, 15})

		// Allgatherv with rank-dependent lengths (rank r contributes r+1
		// elements, value 10r+i).
		mine := make([]int64, c.Rank()+1)
		for i := range mine {
			mine[i] = 10*me + int64(i)
		}
		all := mpi.Allgatherv(c, mine)
		for r := 0; r < n; r++ {
			want := make([]int64, r+1)
			for i := range want {
				want[i] = int64(10*r + i)
			}
			assertEq64(c, "Allgatherv", all[r], want)
		}

		// Allgather of scalars.
		g := mpi.Allgather(c, me*me)
		assertEq64(c, "Allgather", g, []int64{0, 1, 4, 9})

		// Alltoallv: rank r sends d+1 elements of value 100r+d to rank d.
		counts := make([]int, n)
		var send []int64
		for d := 0; d < n; d++ {
			counts[d] = d + 1
			for i := 0; i < d+1; i++ {
				send = append(send, 100*me+int64(d))
			}
		}
		recv, rc := mpi.Alltoallv(c, send, counts)
		var wantRecv []int64
		for src := 0; src < n; src++ {
			if rc[src] != c.Rank()+1 {
				panic(fmt.Sprintf("Alltoallv recvCounts[%d] = %d, want %d", src, rc[src], c.Rank()+1))
			}
			for i := 0; i <= c.Rank(); i++ {
				wantRecv = append(wantRecv, int64(100*src+c.Rank()))
			}
		}
		assertEq64(c, "Alltoallv", recv, wantRecv)
	})
}

// testFloatFoldBits checks that float64 reductions are bit-identical
// to an ascending-rank-order fold computed locally — the determinism
// guarantee that makes partitions reproducible across transports.
func testFloatFoldBits(t *testing.T, factory Factory) {
	const n = 4
	contrib := func(r int) []float64 {
		// Values chosen so a different fold order changes the low bits.
		return []float64{0.1 * float64(r+1), 1e16, -1.0 / float64(r+3), math.Pi * float64(r)}
	}
	want := append([]float64(nil), contrib(0)...)
	for r := 1; r < n; r++ {
		for i, v := range contrib(r) {
			want[i] += v
		}
	}
	mpi.RunWorld(factory(t, n), 1, func(c *mpi.Comm) {
		got := mpi.Allreduce(c, contrib(c.Rank()), mpi.Sum)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				panic(fmt.Sprintf("rank %d: float fold bit mismatch at %d: %x != %x",
					c.Rank(), i, math.Float64bits(got[i]), math.Float64bits(want[i])))
			}
		}
		fr := mpi.Allreduce(c, contrib(c.Rank()), mpi.Max)
		_ = fr
	})
}

// testBarrier checks that Barrier separates phases: no rank observes a
// phase counter below the phase it just completed.
func testBarrier(t *testing.T, factory Factory) {
	const n, phases = 4, 8
	var counter atomic.Int64
	mpi.RunWorld(factory(t, n), 1, func(c *mpi.Comm) {
		for p := 1; p <= phases; p++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got < int64(p*n) {
				panic(fmt.Sprintf("rank %d: phase %d counter %d < %d after barrier", c.Rank(), p, got, p*n))
			}
			c.Barrier()
		}
	})
}

// testTallyFold checks that per-message piggybacked tallies, folded
// over a complete neighborhood, equal an explicit Allreduce of the
// same contributions.
func testTallyFold(t *testing.T, factory Factory) {
	const n, tallyLen = 4, 6
	mpi.RunWorld(factory(t, n), 1, func(c *mpi.Comm) {
		me := int64(c.Rank())
		tally := make([]int64, tallyLen)
		for i := range tally {
			tally[i] = (me + 1) * int64(i-2) // mixed signs, zeros
		}
		payload := []int64{me, me * me}
		tag := mpi.RoundTag(0, 0)
		for dst := 0; dst < n; dst++ {
			if dst == c.Rank() {
				continue
			}
			mpi.Isend64Tag(c, dst, tag, mpi.AppendTally(c, append([]int64(nil), payload...), tally))
		}
		acc := append([]int64(nil), tally...) // own contribution
		for src := 0; src < n; src++ {
			if src == c.Rank() {
				continue
			}
			msg := mpi.Recv64Tag(c, src, tag)
			body := mpi.SplitTally(msg, acc)
			want := []int64{int64(src), int64(src * src)}
			assertEq64(c, "tally body", body, want)
			c.Recycle64(msg)
		}
		want := mpi.Allreduce(c, tally, mpi.Sum)
		assertEq64(c, "tally fold", acc, want)
	})
}

// testRecycleStability checks that recycled buffers are safe to reuse:
// interleaved sends of varying sizes with aggressive recycling never
// corrupt later messages.
func testRecycleStability(t *testing.T, factory Factory) {
	const rounds = 32
	mpi.RunWorld(factory(t, 2), 1, func(c *mpi.Comm) {
		peer := 1 - c.Rank()
		for seq := uint32(0); seq < rounds; seq++ {
			size := int(seq%7)*3 + 1
			out := make([]int64, size)
			for i := range out {
				out[i] = int64(c.Rank()+1)*1000 + int64(seq)*10 + int64(i)
			}
			tag := mpi.RoundTag(0, seq)
			mpi.Isend64Tag(c, peer, tag, out)
			got := mpi.Recv64Tag(c, peer, tag)
			if len(got) != size {
				panic(fmt.Sprintf("round %d: got %d elements, want %d", seq, len(got), size))
			}
			for i := range got {
				want := int64(peer+1)*1000 + int64(seq)*10 + int64(i)
				if got[i] != want {
					panic(fmt.Sprintf("round %d: element %d = %d, want %d", seq, i, got[i], want))
				}
			}
			c.Recycle64(got)
		}
	})
}

// engineCase is the fixed workload of the end-to-end determinism
// subtest and the multi-process test: small enough to run in
// milliseconds, irregular enough to exercise ghosts on every rank.
const (
	engineScale  = 8
	engineDeg    = 8
	engineSeed   = 1
	engineRanks  = 4
	engineParts  = 8
	enginePSeeed = 7
)

// EngineConfig returns the partitioner configuration of the engine
// determinism subtest; the multi-process worker must run exactly this.
func EngineConfig(async bool) repro.Config {
	// ThreadsPerRank pinned serial: the subtest compares partitions
	// across transports and processes, and the partitioner is only
	// bit-deterministic at one thread.
	return repro.Config{Parts: engineParts, ThreadsPerRank: 1, RandomDist: true, Seed: enginePSeeed, AsyncExchange: async}
}

// EngineGenerator returns the fixed graph generator of the engine
// determinism subtest.
func EngineGenerator() *repro.Generator {
	return repro.RMAT(engineScale, engineDeg, engineSeed)
}

// EngineReference computes the partition on the in-process reference
// transport with the synchronous exchange engine.
func EngineReference(tb testing.TB) []int32 {
	cfg := EngineConfig(false)
	cfg.Ranks = engineRanks
	parts, _, err := repro.XtraPuLPGen(EngineGenerator(), cfg)
	if err != nil {
		tb.Fatalf("reference partition: %v", err)
	}
	return parts
}

// testEngineDeterminism runs the full partitioner over the transport
// under test, in both exchange modes, and requires bit-identical
// partitions against the in-process synchronous reference; then runs
// the analytics and requires identical results.
func testEngineDeterminism(t *testing.T, factory Factory) {
	ref := EngineReference(t)
	gen := EngineGenerator()

	for _, async := range []bool{false, true} {
		var parts []int32
		mpi.RunWorld(factory(t, engineRanks), 1, func(c *mpi.Comm) {
			p, _, err := repro.XtraPuLPComm(c, gen, EngineConfig(async))
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				parts = p
			}
		})
		if len(parts) != len(ref) {
			t.Fatalf("async=%v: %d parts, want %d", async, len(parts), len(ref))
		}
		for v := range ref {
			if parts[v] != ref[v] {
				t.Fatalf("async=%v: partition diverges from reference at vertex %d: %d != %d", async, v, parts[v], ref[v])
			}
		}
	}

	// Analytics on the reference partition: the transport under test
	// must reproduce the in-process run's iteration counts and values.
	nodes := make([]int32, len(ref))
	for v, p := range ref {
		nodes[v] = p % engineRanks
	}
	wantRep, err := repro.RunAnalyticsReport(gen, nodes, repro.AnalyticsConfig{Ranks: engineRanks, HCSources: 4})
	if err != nil {
		t.Fatalf("reference analytics: %v", err)
	}
	var gotRep repro.AnalyticsReport
	mpi.RunWorld(factory(t, engineRanks), 1, func(c *mpi.Comm) {
		rep, err := repro.RunAnalyticsComm(c, gen, nodes, repro.AnalyticsConfig{HCSources: 4})
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			gotRep = rep
		}
	})
	if len(gotRep.Results) != len(wantRep.Results) {
		t.Fatalf("analytics: %d results, want %d", len(gotRep.Results), len(wantRep.Results))
	}
	for i, want := range wantRep.Results {
		got := gotRep.Results[i]
		if got.Name != want.Name || got.Iterations != want.Iterations ||
			math.Float64bits(got.Value) != math.Float64bits(want.Value) {
			t.Fatalf("analytics %s diverges: got (%d iters, %v), want (%d iters, %v)",
				want.Name, got.Iterations, got.Value, want.Iterations, want.Value)
		}
	}
}

// refFold1 folds f(0)..f(n-1) in ascending rank order with op.
func refFold1(op mpi.Op, f func(r int64) int64, n int) int64 {
	acc := f(0)
	for r := int64(1); r < int64(n); r++ {
		v := f(r)
		switch op {
		case mpi.Sum:
			acc += v
		case mpi.Max:
			if v > acc {
				acc = v
			}
		case mpi.Min:
			if v < acc {
				acc = v
			}
		}
	}
	return acc
}

func assertEq64(c *mpi.Comm, what string, got, want []int64) {
	if len(got) != len(want) {
		panic(fmt.Sprintf("rank %d: %s length %d, want %d", c.Rank(), what, len(got), len(want)))
	}
	for i := range want {
		if got[i] != want[i] {
			panic(fmt.Sprintf("rank %d: %s[%d] = %d, want %d", c.Rank(), what, i, got[i], want[i]))
		}
	}
}

// wantPanic returns a deferred checker asserting the surrounding call
// panicked with a message containing substr.
func wantPanic(t *testing.T, substr string) func() {
	t.Helper()
	return func() {
		p := recover()
		if p == nil {
			t.Fatalf("expected a panic containing %q, got none", substr)
		}
		if !strings.Contains(fmt.Sprint(p), substr) {
			t.Fatalf("panic %q does not contain %q", fmt.Sprint(p), substr)
		}
	}
}
