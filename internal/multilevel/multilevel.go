package multilevel

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Coarsener selects the coarsening scheme.
type Coarsener int

// Coarsening schemes.
const (
	// HEM is heavy-edge matching (METIS-style).
	HEM Coarsener = iota
	// SCLP is size-constrained label propagation clustering
	// (KaHIP/Meyerhenke-style).
	SCLP
)

// String names the coarsener.
func (c Coarsener) String() string {
	if c == SCLP {
		return "sclp"
	}
	return "hem"
}

// Options configures a multilevel run.
type Options struct {
	// NumParts is the part count.
	NumParts int
	// Imbalance is the vertex-weight balance constraint ratio (the
	// paper's Fig. 6 uses 3%).
	Imbalance float64
	// Coarsening selects HEM (METIS-like) or SCLP (KaHIP-like).
	Coarsening Coarsener
	// CoarsestPerPart stops coarsening once n <= CoarsestPerPart * p.
	CoarsestPerPart int64
	// RefineIters is the number of refinement passes per level.
	RefineIters int
	// Seed drives matching order, clustering, and seed selection.
	Seed uint64
}

// MetisLike returns the METIS-flavored preset for p parts.
func MetisLike(p int) Options {
	return Options{
		NumParts:        p,
		Imbalance:       0.03,
		Coarsening:      HEM,
		CoarsestPerPart: 30,
		RefineIters:     6,
		Seed:            1,
	}
}

// KahipLike returns the KaHIP-flavored preset (SCLP coarsening) for p
// parts.
func KahipLike(p int) Options {
	o := MetisLike(p)
	o.Coarsening = SCLP
	o.RefineIters = 8
	return o
}

// Report describes one multilevel run.
type Report struct {
	Levels      int
	CoarsestN   int64
	CoarsenTime time.Duration
	InitTime    time.Duration
	RefineTime  time.Duration
	TotalTime   time.Duration
	Quality     partition.Quality
}

// Partition computes a p-way partition of g with the configured
// multilevel scheme.
func Partition(g *graph.Graph, opt Options) ([]int32, Report, error) {
	if opt.NumParts < 1 {
		return nil, Report{}, fmt.Errorf("multilevel: NumParts = %d", opt.NumParts)
	}
	if opt.CoarsestPerPart <= 0 {
		opt.CoarsestPerPart = 30
	}
	if opt.RefineIters <= 0 {
		opt.RefineIters = 6
	}
	var rep Report
	start := time.Now()
	r := rng.New(opt.Seed)

	// Coarsening phase: build the hierarchy.
	t0 := time.Now()
	levels := []*wgraph{fromGraph(g)}
	var maps [][]int64
	coarsestTarget := opt.CoarsestPerPart * int64(opt.NumParts)
	for {
		cur := levels[len(levels)-1]
		if cur.n <= coarsestTarget {
			break
		}
		var cmap []int64
		var cn int64
		if opt.Coarsening == SCLP {
			cmap, cn = sclpCluster(cur, opt.NumParts, r)
		} else {
			cmap, cn = hemMatch(cur, r)
		}
		// Stop when coarsening stalls (< 5% shrink) to avoid spinning
		// on graphs that resist contraction (e.g. stars).
		if float64(cn) > 0.95*float64(cur.n) {
			break
		}
		levels = append(levels, cur.contract(cmap, cn))
		maps = append(maps, cmap)
	}
	rep.CoarsenTime = time.Since(t0)
	rep.Levels = len(levels)
	coarsest := levels[len(levels)-1]
	rep.CoarsestN = coarsest.n

	// Initial partition at the coarsest level.
	t0 = time.Now()
	parts := growInitial(coarsest, opt, r)
	rep.InitTime = time.Since(t0)

	// Uncoarsening: refine, project, repeat.
	t0 = time.Now()
	maxW := (1 + opt.Imbalance) * float64(coarsest.totVW) / float64(opt.NumParts)
	refine(coarsest, parts, opt.NumParts, maxW, opt.RefineIters)
	for lvl := len(levels) - 2; lvl >= 0; lvl-- {
		fine := levels[lvl]
		cmap := maps[lvl]
		fineParts := make([]int32, fine.n)
		for v := int64(0); v < fine.n; v++ {
			fineParts[v] = parts[cmap[v]]
		}
		parts = fineParts
		refine(fine, parts, opt.NumParts, maxW, opt.RefineIters)
	}
	rep.RefineTime = time.Since(t0)

	rep.TotalTime = time.Since(start)
	rep.Quality = partition.Evaluate(g, parts, opt.NumParts)
	return parts, rep, nil
}

// hemMatch computes a heavy-edge matching and returns the contraction
// map. Vertices are visited in random order; each unmatched vertex
// pairs with its heaviest-edge unmatched neighbor.
func hemMatch(w *wgraph, r *rng.Rand) (cmap []int64, cn int64) {
	match := make([]int64, w.n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(w.n)
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		var best int64 = -1
		var bestW int64 = -1
		for e := w.off[v]; e < w.off[v+1]; e++ {
			u := w.adj[e]
			if u != v && match[u] < 0 && w.ewt[e] > bestW {
				bestW = w.ewt[e]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	cmap = make([]int64, w.n)
	cn = 0
	for v := int64(0); v < w.n; v++ {
		if match[v] >= v { // representative: smaller endpoint (or self)
			cmap[v] = cn
			cn++
		}
	}
	for v := int64(0); v < w.n; v++ {
		if match[v] < v {
			cmap[v] = cmap[match[v]]
		}
	}
	return cmap, cn
}

// sclpCluster runs size-constrained label propagation clustering: each
// vertex adopts the neighboring cluster with the largest incident edge
// weight whose total vertex weight stays below totVW/(2p), then the
// clusters are contracted.
func sclpCluster(w *wgraph, p int, r *rng.Rand) (cmap []int64, cn int64) {
	labels := make([]int64, w.n)
	weight := make(map[int64]int64, w.n)
	for v := int64(0); v < w.n; v++ {
		labels[v] = v
		weight[v] = w.vwt[v]
	}
	cap64 := w.totVW / int64(2*p)
	if cap64 < 2 {
		cap64 = 2
	}
	order := r.Perm(w.n)
	gain := make(map[int64]int64, 64)
	const rounds = 3
	for round := 0; round < rounds; round++ {
		moved := int64(0)
		for _, v := range order {
			clear(gain)
			for e := w.off[v]; e < w.off[v+1]; e++ {
				gain[labels[w.adj[e]]] += w.ewt[e]
			}
			cur := labels[v]
			best, bestG := cur, gain[cur]
			for l, g := range gain {
				if g > bestG && (l == cur || weight[l]+w.vwt[v] <= cap64) {
					best, bestG = l, g
				}
			}
			if best != cur {
				weight[cur] -= w.vwt[v]
				weight[best] += w.vwt[v]
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	// Densify labels.
	dense := make(map[int64]int64, 1024)
	cmap = make([]int64, w.n)
	for v := int64(0); v < w.n; v++ {
		id, ok := dense[labels[v]]
		if !ok {
			id = int64(len(dense))
			dense[labels[v]] = id
		}
		cmap[v] = id
	}
	return cmap, int64(len(dense))
}

// growInitial seeds each part with a random coarse vertex and grows
// greedily (BFS by vertex weight), always extending the lightest part.
func growInitial(w *wgraph, opt Options, r *rng.Rand) []int32 {
	p := opt.NumParts
	parts := make([]int32, w.n)
	for i := range parts {
		parts[i] = -1
	}
	weights := make([]int64, p)
	frontiers := make([][]int64, p)
	target := w.totVW / int64(p)
	if target < 1 {
		target = 1
	}
	assigned := int64(0)
	// Seed parts with distinct random vertices.
	perm := r.Perm(w.n)
	next := 0
	seed := func(part int32) bool {
		for next < len(perm) {
			v := perm[next]
			next++
			if parts[v] < 0 {
				parts[v] = part
				weights[part] += w.vwt[v]
				frontiers[part] = append(frontiers[part], v)
				assigned++
				return true
			}
		}
		return false
	}
	for i := 0; i < p; i++ {
		if !seed(int32(i)) {
			break
		}
	}
	// Grow: repeatedly extend the lightest part by one frontier vertex.
	for assigned < w.n {
		lightest := int32(0)
		for i := 1; i < p; i++ {
			if weights[i] < weights[lightest] {
				lightest = int32(i)
			}
		}
		f := frontiers[lightest]
		var grabbed bool
		for len(f) > 0 && !grabbed {
			v := f[len(f)-1]
			f = f[:len(f)-1]
			for e := w.off[v]; e < w.off[v+1]; e++ {
				u := w.adj[e]
				if parts[u] < 0 {
					parts[u] = lightest
					weights[lightest] += w.vwt[u]
					f = append(f, u)
					assigned++
					grabbed = true
					break
				}
			}
		}
		frontiers[lightest] = f
		if !grabbed {
			// Frontier exhausted: reseed the lightest part elsewhere.
			if !seed(lightest) {
				break
			}
		}
	}
	// Any stragglers (exhausted perm) go to the lightest part.
	for v := int64(0); v < w.n; v++ {
		if parts[v] < 0 {
			lightest := int32(0)
			for i := 1; i < p; i++ {
				if weights[i] < weights[lightest] {
					lightest = int32(i)
				}
			}
			parts[v] = lightest
			weights[lightest] += w.vwt[v]
		}
	}
	return parts
}

// refine performs gain-based boundary refinement: each pass visits all
// vertices and moves a vertex to the neighboring part with the largest
// positive cut-weight gain, subject to the weight cap maxW. A move with
// zero gain is taken only if it strictly improves balance.
func refine(w *wgraph, parts []int32, p int, maxW float64, iters int) {
	weights := make([]int64, p)
	for v := int64(0); v < w.n; v++ {
		weights[parts[v]] += w.vwt[v]
	}
	conn := make([]int64, p)
	for pass := 0; pass < iters; pass++ {
		moved := 0
		for v := int64(0); v < w.n; v++ {
			x := parts[v]
			for i := range conn {
				conn[i] = 0
			}
			for e := w.off[v]; e < w.off[v+1]; e++ {
				conn[parts[w.adj[e]]] += w.ewt[e]
			}
			bestPart, bestGain := x, int64(0)
			for i := 0; i < p; i++ {
				if int32(i) == x {
					continue
				}
				if float64(weights[i]+w.vwt[v]) > maxW {
					continue
				}
				gain := conn[i] - conn[x]
				if gain > bestGain ||
					(gain == bestGain && gain >= 0 && bestPart != x && weights[i] < weights[bestPart]) ||
					(gain == 0 && bestGain == 0 && bestPart == x && weights[i]+w.vwt[v] < weights[x]) {
					bestGain = gain
					bestPart = int32(i)
				}
			}
			if bestPart != x {
				weights[x] -= w.vwt[v]
				weights[bestPart] += w.vwt[v]
				parts[v] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
