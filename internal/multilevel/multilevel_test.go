package multilevel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestFromGraphCombinesParallelEdges(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 0}})
	w := fromGraph(g)
	if w.n != 3 || w.totVW != 3 {
		t.Fatalf("n=%d totVW=%d", w.n, w.totVW)
	}
	// Vertex 0: one neighbor (1) with weight 2, self loop dropped.
	if w.degree(0) != 1 || w.adj[w.off[0]] != 1 || w.ewt[w.off[0]] != 2 {
		t.Fatalf("vertex 0 adjacency wrong: deg=%d", w.degree(0))
	}
	if w.degree(1) != 2 {
		t.Fatalf("vertex 1 degree %d, want 2", w.degree(1))
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := gen.ER(200, 800, 3).MustBuild()
	w := fromGraph(g)
	cmap, cn := hemMatch(w, rng.New(1))
	c := w.contract(cmap, cn)
	if c.totVW != w.totVW {
		t.Fatalf("totVW changed: %d -> %d", w.totVW, c.totVW)
	}
	var sumVW int64
	for _, vw := range c.vwt {
		sumVW += vw
	}
	if sumVW != w.totVW {
		t.Fatalf("coarse vertex weights sum %d != %d", sumVW, w.totVW)
	}
	if cn >= w.n {
		t.Fatalf("no shrink: %d -> %d", w.n, cn)
	}
}

func TestHEMMatchIsMatching(t *testing.T) {
	g := gen.RMAT(9, 8, 5).MustBuild()
	w := fromGraph(g)
	cmap, cn := hemMatch(w, rng.New(2))
	counts := make([]int, cn)
	for _, c := range cmap {
		counts[c]++
	}
	for c, n := range counts {
		if n < 1 || n > 2 {
			t.Fatalf("cluster %d has %d members; matching allows 1-2", c, n)
		}
	}
}

func TestSCLPClusterRespectsCap(t *testing.T) {
	g := gen.ChungLu(2048, 16384, 2.2, 7).MustBuild()
	w := fromGraph(g)
	const p = 8
	cmap, cn := sclpCluster(w, p, rng.New(3))
	sizes := make([]int64, cn)
	for v, c := range cmap {
		sizes[c] += w.vwt[v]
	}
	cap64 := w.totVW / int64(2*p)
	for c, s := range sizes {
		// A cluster can exceed the cap only via its own initial member
		// never moving; joined weight is capped. Allow 2x slop.
		if s > 2*cap64+1 {
			t.Fatalf("cluster %d weight %d far above cap %d", c, s, cap64)
		}
	}
}

func TestPartitionMeshQuality(t *testing.T) {
	// METIS-like must shine on regular meshes (the paper's 4th class).
	g := gen.Grid3D(12, 12, 12).MustBuild()
	const p = 8
	parts, rep, err := Partition(g, MetisLike(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, parts, p); err != nil {
		t.Fatal(err)
	}
	if rep.Quality.VertexImbalance > 1.04 {
		t.Errorf("imbalance %.3f above 3%% constraint", rep.Quality.VertexImbalance)
	}
	qr := partition.Evaluate(g, partition.Random(g, p, 1), p)
	if rep.Quality.EdgeCutRatio > qr.EdgeCutRatio/4 {
		t.Errorf("mesh cut %.3f vs random %.3f: multilevel should be far better",
			rep.Quality.EdgeCutRatio, qr.EdgeCutRatio)
	}
	if rep.Levels < 2 {
		t.Errorf("hierarchy has %d levels", rep.Levels)
	}
}

func TestKahipLikeOnSmallWorld(t *testing.T) {
	g := gen.RMAT(10, 8, 9).MustBuild()
	const p = 8
	parts, rep, err := Partition(g, KahipLike(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, parts, p); err != nil {
		t.Fatal(err)
	}
	if rep.Quality.VertexImbalance > 1.05 {
		t.Errorf("imbalance %.3f above constraint", rep.Quality.VertexImbalance)
	}
	qr := partition.Evaluate(g, partition.Random(g, p, 1), p)
	if rep.Quality.EdgeCutRatio >= qr.EdgeCutRatio {
		t.Errorf("cut %.3f not better than random %.3f", rep.Quality.EdgeCutRatio, qr.EdgeCutRatio)
	}
}

func TestBothCoarsenersAllPartCounts(t *testing.T) {
	g := gen.ERAvgDeg(1024, 8, 11).MustBuild()
	for _, mk := range []func(int) Options{MetisLike, KahipLike} {
		for _, p := range []int{2, 3, 8, 17} {
			opt := mk(p)
			parts, _, err := Partition(g, opt)
			if err != nil {
				t.Fatalf("%s p=%d: %v", opt.Coarsening, p, err)
			}
			if err := partition.Validate(g, parts, p); err != nil {
				t.Fatalf("%s p=%d: %v", opt.Coarsening, p, err)
			}
		}
	}
}

func TestPartitionRejectsBadOptions(t *testing.T) {
	g := gen.ER(64, 128, 1).MustBuild()
	if _, _, err := Partition(g, Options{NumParts: 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.RMAT(9, 8, 13).MustBuild()
	a, _, _ := Partition(g, MetisLike(4))
	b, _, _ := Partition(g, MetisLike(4))
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d differs across identical runs", v)
		}
	}
}

func TestStarGraphDoesNotHang(t *testing.T) {
	// A star resists matching (hub can match once); the stall guard
	// must terminate coarsening.
	edges := make([]graph.Edge, 999)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: int64(i + 1)}
	}
	g, _ := graph.FromEdges(1000, edges)
	parts, _, err := Partition(g, MetisLike(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, parts, 4); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMetisLikeMesh(b *testing.B) {
	g := gen.Grid3D(16, 16, 16).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Partition(g, MetisLike(8)); err != nil {
			b.Fatal(err)
		}
	}
}
