// Package multilevel implements a from-scratch multilevel graph
// partitioner standing in for the paper's two traditional baselines:
//
//   - METIS-like: heavy-edge-matching (HEM) coarsening, greedy graph
//     growing at the coarsest level, and gain-based boundary refinement
//     during uncoarsening — the ParMETIS algorithm family.
//   - KaHIP-like: size-constrained label propagation (SCLP) clustering
//     as the coarsener, as in Meyerhenke, Sanders, and Schulz (IPDPS
//     2015), the comparison target of the paper's §V.C.
//
// Both presets solve the single-constraint (vertex balance),
// single-objective (edge cut) problem, exactly the setting of the
// paper's Fig. 6 comparison.
package multilevel

import (
	"sort"

	"repro/internal/graph"
)

// wgraph is a weighted CSR used through the multilevel hierarchy:
// vertex weights carry coarsening multiplicity and edge weights carry
// combined parallel-edge counts.
type wgraph struct {
	n     int64
	off   []int64
	adj   []int64
	ewt   []int64
	vwt   []int64
	totVW int64
}

// fromGraph builds the level-0 weighted graph with unit vertex weights.
// Parallel arcs are combined into one weighted arc; self loops dropped.
func fromGraph(g *graph.Graph) *wgraph {
	w := &wgraph{
		n:     g.N,
		off:   make([]int64, g.N+1),
		vwt:   make([]int64, g.N),
		totVW: g.N,
	}
	adj := make([]int64, 0, len(g.Adj))
	ewt := make([]int64, 0, len(g.Adj))
	var buf []int64
	for v := int64(0); v < g.N; v++ {
		w.vwt[v] = 1
		buf = buf[:0]
		buf = append(buf, g.Neighbors(v)...)
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		for i := 0; i < len(buf); {
			u := buf[i]
			j := i
			for j < len(buf) && buf[j] == u {
				j++
			}
			if u != v {
				adj = append(adj, u)
				ewt = append(ewt, int64(j-i))
			}
			i = j
		}
		w.off[v+1] = int64(len(adj))
	}
	w.adj, w.ewt = adj, ewt
	return w
}

// degree returns the arc count of v at this level.
func (w *wgraph) degree(v int64) int64 { return w.off[v+1] - w.off[v] }

// contract builds the coarse graph given a cluster map (fine vertex ->
// coarse vertex, ids dense in [0, cn)).
func (w *wgraph) contract(cmap []int64, cn int64) *wgraph {
	coarse := &wgraph{
		n:     cn,
		off:   make([]int64, cn+1),
		vwt:   make([]int64, cn),
		totVW: w.totVW,
	}
	for v := int64(0); v < w.n; v++ {
		coarse.vwt[cmap[v]] += w.vwt[v]
	}
	// Accumulate combined edges per coarse vertex with a scatter array.
	// First pass counts distinct coarse neighbors, second pass fills.
	type edge struct {
		to int64
		wt int64
	}
	bucket := make([][]edge, cn)
	for v := int64(0); v < w.n; v++ {
		cv := cmap[v]
		for e := w.off[v]; e < w.off[v+1]; e++ {
			cu := cmap[w.adj[e]]
			if cu == cv {
				continue
			}
			bucket[cv] = append(bucket[cv], edge{to: cu, wt: w.ewt[e]})
		}
	}
	adj := make([]int64, 0, len(w.adj))
	ewt := make([]int64, 0, len(w.ewt))
	for cv := int64(0); cv < cn; cv++ {
		b := bucket[cv]
		sort.Slice(b, func(i, j int) bool { return b[i].to < b[j].to })
		for i := 0; i < len(b); {
			j := i
			var sum int64
			for j < len(b) && b[j].to == b[i].to {
				sum += b[j].wt
				j++
			}
			adj = append(adj, b[i].to)
			ewt = append(ewt, sum)
			i = j
		}
		coarse.off[cv+1] = int64(len(adj))
	}
	coarse.adj, coarse.ewt = adj, ewt
	return coarse
}
