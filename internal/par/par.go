// Package par provides intra-rank thread-level parallelism: a parallel
// for-loop over index ranges with static chunking, parallel reductions,
// and thread-local buffers that merge into a shared queue. It plays the
// role OpenMP plays inside each MPI task in the original XtraPuLP code:
// every simulated rank can fan work out across a configurable number of
// worker threads.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads is the worker count used when a caller passes
// threads <= 0. It mirrors "number of shared-memory cores" from the
// paper's experimental setup.
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// ResolveThreads normalizes a thread-count knob to the repo-wide rule:
// any value <= 0 selects DefaultThreads() (one worker per core), and a
// positive value — including the bit-reproducible serial 1 — is taken
// as given. Every ThreadsPerRank/-threads knob routes through this so
// the facade, pulp, analytics, and SpMV agree on what 0 means.
func ResolveThreads(n int) int {
	if n <= 0 {
		return DefaultThreads()
	}
	return n
}

// For runs body(i) for every i in [begin, end) using the given number of
// worker goroutines with contiguous static chunks (OpenMP "schedule
// (static)"). With threads <= 1 or a small range it runs inline.
//
//repro:deterministic
func For(begin, end int, threads int, body func(i int)) {
	n := end - begin
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		for i := begin; i < end; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := begin + t*chunk
		hi := lo + chunk
		if hi > end {
			hi = end
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunk runs body(lo, hi, tid) on contiguous chunks of [begin, end),
// one chunk per worker thread. This is the idiom for loops that carry
// thread-local state (queues, count arrays): the body receives its
// thread id and processes its whole chunk.
//
//repro:deterministic
func ForChunk(begin, end int, threads int, body func(lo, hi, tid int)) {
	n := end - begin
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		body(begin, end, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := begin + t*chunk
		hi := lo + chunk
		if hi > end {
			hi = end
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, tid int) {
			defer wg.Done()
			body(lo, hi, tid)
		}(lo, hi, t)
	}
	wg.Wait()
}

// ReduceInt64 computes the sum of body(i) over [begin, end) in parallel.
//
//repro:deterministic
func ReduceInt64(begin, end int, threads int, body func(i int) int64) int64 {
	var total atomic.Int64
	ForChunk(begin, end, threads, func(lo, hi, _ int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += body(i)
		}
		total.Add(local)
	})
	return total.Load()
}

// MaxInt64 computes the maximum of body(i) over [begin, end) in parallel.
// It returns the provided identity when the range is empty.
//
//repro:deterministic
func MaxInt64(begin, end int, threads int, identity int64, body func(i int) int64) int64 {
	if end <= begin {
		return identity
	}
	var mu sync.Mutex
	global := identity
	ForChunk(begin, end, threads, func(lo, hi, _ int) {
		local := identity
		for i := lo; i < hi; i++ {
			if v := body(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if local > global {
			global = local
		}
		mu.Unlock()
	})
	return global
}

// floatFoldGrain is the fixed chunk length of SumFloat64Ordered. The
// decomposition depends only on the range, never on the thread count,
// so the per-chunk partials — and therefore the serial in-order fold —
// are bit-identical at every thread count, the same way TallyRound's
// FoldFloat folds per-rank partials in global rank order.
const floatFoldGrain = 4096

// SumFloat64Ordered sums body(lo, hi) over [begin, end) with a
// deterministic fold order: the range is cut into fixed-length chunks
// (independent of threads), workers fill the per-chunk partials, and
// the partials are folded serially in ascending chunk index. Floating
// addition is not associative, so an unordered reduction would drift
// with the thread count; this one is bit-identical across thread
// counts, including the threads=1 inline path, which uses the same
// decomposition.
//
// partials is caller-pooled scratch: pass the slice returned by the
// previous call (or nil) and it is grown only until steady state,
// keeping hot loops at AllocsPerRun == 0. body must itself sum its
// [lo, hi) sub-range in ascending index order.
//
//repro:deterministic
func SumFloat64Ordered(begin, end, threads int, partials []float64, body func(lo, hi int) float64) (float64, []float64) {
	n := end - begin
	if n <= 0 {
		return 0, partials
	}
	nchunks := (n + floatFoldGrain - 1) / floatFoldGrain
	partials = growFloats(partials, nchunks)
	threads = ResolveThreads(threads)
	if threads > nchunks {
		threads = nchunks
	}
	if threads == 1 {
		fillPartials(begin, end, partials, body)
	} else {
		fillPartialsParallel(begin, end, threads, partials, body)
	}
	return foldOrdered(partials), partials
}

// fillPartialsParallel is the multi-worker arm of SumFloat64Ordered.
// It lives in its own function so the goroutine closure's captures
// cannot force heap cells onto the threads=1 inline path.
func fillPartialsParallel(begin, end, threads int, partials []float64, body func(lo, hi int) float64) {
	nchunks := len(partials)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for ci := t; ci < nchunks; ci += threads {
				lo := begin + ci*floatFoldGrain
				hi := lo + floatFoldGrain
				if hi > end {
					hi = end
				}
				partials[ci] = body(lo, hi)
			}
		}(t)
	}
	wg.Wait()
}

// fillPartials is the serial arm of SumFloat64Ordered: same chunk
// decomposition as the parallel arm, one worker.
//
//repro:hotpath
func fillPartials(begin, end int, partials []float64, body func(lo, hi int) float64) {
	for ci := range partials {
		lo := begin + ci*floatFoldGrain
		hi := lo + floatFoldGrain
		if hi > end {
			hi = end
		}
		partials[ci] = body(lo, hi)
	}
}

// foldOrdered folds the per-chunk partials in ascending chunk index —
// the deterministic serial fold both arms share.
//
//repro:hotpath
func foldOrdered(partials []float64) float64 {
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// growFloats re-slices buf to n elements, allocating only when the
// pooled capacity is exceeded (the arena-grow idiom).
//
//repro:hotpath
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// MaxFloat64 computes the maximum of body(i) over [begin, end) in
// parallel, returning identity on an empty range. Max is
// order-independent, so unlike summation it needs no ordered fold.
//
//repro:deterministic
func MaxFloat64(begin, end int, threads int, identity float64, body func(i int) float64) float64 {
	if end <= begin {
		return identity
	}
	var mu sync.Mutex
	global := identity
	ForChunk(begin, end, threads, func(lo, hi, _ int) {
		local := identity
		for i := lo; i < hi; i++ {
			if v := body(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if local > global {
			global = local
		}
		mu.Unlock()
	})
	return global
}

// Queues is a set of per-thread append-only buffers that merge into one
// slice, mirroring the paper's Qthread -> Qtask merge. Type parameter T
// is the queued record type (for example a (vertex, part) pair).
type Queues[T any] struct {
	lanes [][]T
}

// NewQueues returns thread-local queues for the given worker count.
func NewQueues[T any](threads int) *Queues[T] {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	return &Queues[T]{lanes: make([][]T, threads)}
}

// Push appends v to thread tid's lane. Each tid must be used by at most
// one goroutine at a time. Lanes keep their capacity across Merge /
// MergeInto / Reset, so steady-state pushes do not allocate.
//
//repro:hotpath
func (q *Queues[T]) Push(tid int, v T) {
	q.lanes[tid] = append(q.lanes[tid], v)
}

// Merge concatenates all lanes into a single slice (Qtask) and resets
// the lanes for reuse. Ordering is by thread id, then push order.
func (q *Queues[T]) Merge() []T {
	total := 0
	for _, l := range q.lanes {
		total += len(l)
	}
	out := make([]T, 0, total)
	for i, l := range q.lanes {
		out = append(out, l...)
		q.lanes[i] = q.lanes[i][:0]
	}
	return out
}

// MergeInto appends every lane's records to dst in thread-id order
// (then push order, like Merge) and resets the lanes for reuse. It is
// Merge without the allocation: pass a pooled buffer re-sliced to
// [:0] and steady-state merges stay at AllocsPerRun == 0.
//
//repro:hotpath
func (q *Queues[T]) MergeInto(dst []T) []T {
	for i, l := range q.lanes {
		dst = append(dst, l...)
		q.lanes[i] = q.lanes[i][:0]
	}
	return dst
}

// Reset empties every lane without releasing its capacity.
//
//repro:hotpath
func (q *Queues[T]) Reset() {
	for i := range q.lanes {
		q.lanes[i] = q.lanes[i][:0]
	}
}

// Threads reports the number of lanes.
func (q *Queues[T]) Threads() int { return len(q.lanes) }

// Len reports the total queued element count across lanes.
func (q *Queues[T]) Len() int {
	total := 0
	for _, l := range q.lanes {
		total += len(l)
	}
	return total
}

// PrefixSums returns the exclusive prefix sums of counts with one extra
// trailing element holding the grand total, matching the offsets arrays
// used throughout the communication routines.
func PrefixSums(counts []int) []int {
	out := make([]int, len(counts)+1)
	for i, c := range counts {
		out[i+1] = out[i] + c
	}
	return out
}
