// Package par provides intra-rank thread-level parallelism: a parallel
// for-loop over index ranges with static chunking, parallel reductions,
// and thread-local buffers that merge into a shared queue. It plays the
// role OpenMP plays inside each MPI task in the original XtraPuLP code:
// every simulated rank can fan work out across a configurable number of
// worker threads.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads is the worker count used when a caller passes
// threads <= 0. It mirrors "number of shared-memory cores" from the
// paper's experimental setup.
func DefaultThreads() int {
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [begin, end) using the given number of
// worker goroutines with contiguous static chunks (OpenMP "schedule
// (static)"). With threads <= 1 or a small range it runs inline.
func For(begin, end int, threads int, body func(i int)) {
	n := end - begin
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		for i := begin; i < end; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := begin + t*chunk
		hi := lo + chunk
		if hi > end {
			hi = end
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForChunk runs body(lo, hi, tid) on contiguous chunks of [begin, end),
// one chunk per worker thread. This is the idiom for loops that carry
// thread-local state (queues, count arrays): the body receives its
// thread id and processes its whole chunk.
func ForChunk(begin, end int, threads int, body func(lo, hi, tid int)) {
	n := end - begin
	if n <= 0 {
		return
	}
	if threads <= 0 {
		threads = DefaultThreads()
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		body(begin, end, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := begin + t*chunk
		hi := lo + chunk
		if hi > end {
			hi = end
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, tid int) {
			defer wg.Done()
			body(lo, hi, tid)
		}(lo, hi, t)
	}
	wg.Wait()
}

// ReduceInt64 computes the sum of body(i) over [begin, end) in parallel.
func ReduceInt64(begin, end int, threads int, body func(i int) int64) int64 {
	var total atomic.Int64
	ForChunk(begin, end, threads, func(lo, hi, _ int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += body(i)
		}
		total.Add(local)
	})
	return total.Load()
}

// MaxInt64 computes the maximum of body(i) over [begin, end) in parallel.
// It returns the provided identity when the range is empty.
func MaxInt64(begin, end int, threads int, identity int64, body func(i int) int64) int64 {
	if end <= begin {
		return identity
	}
	var mu sync.Mutex
	global := identity
	ForChunk(begin, end, threads, func(lo, hi, _ int) {
		local := identity
		for i := lo; i < hi; i++ {
			if v := body(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if local > global {
			global = local
		}
		mu.Unlock()
	})
	return global
}

// Queues is a set of per-thread append-only buffers that merge into one
// slice, mirroring the paper's Qthread -> Qtask merge. Type parameter T
// is the queued record type (for example a (vertex, part) pair).
type Queues[T any] struct {
	lanes [][]T
}

// NewQueues returns thread-local queues for the given worker count.
func NewQueues[T any](threads int) *Queues[T] {
	if threads <= 0 {
		threads = DefaultThreads()
	}
	return &Queues[T]{lanes: make([][]T, threads)}
}

// Push appends v to thread tid's lane. Each tid must be used by at most
// one goroutine at a time.
func (q *Queues[T]) Push(tid int, v T) {
	q.lanes[tid] = append(q.lanes[tid], v)
}

// Merge concatenates all lanes into a single slice (Qtask) and resets
// the lanes for reuse. Ordering is by thread id, then push order.
func (q *Queues[T]) Merge() []T {
	total := 0
	for _, l := range q.lanes {
		total += len(l)
	}
	out := make([]T, 0, total)
	for i, l := range q.lanes {
		out = append(out, l...)
		q.lanes[i] = q.lanes[i][:0]
	}
	return out
}

// Len reports the total queued element count across lanes.
func (q *Queues[T]) Len() int {
	total := 0
	for _, l := range q.lanes {
		total += len(l)
	}
	return total
}

// PrefixSums returns the exclusive prefix sums of counts with one extra
// trailing element holding the grand total, matching the offsets arrays
// used throughout the communication routines.
func PrefixSums(counts []int) []int {
	out := make([]int, len(counts)+1)
	for i, c := range counts {
		out[i+1] = out[i] + c
	}
	return out
}
