package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		const n = 1000
		hits := make([]int32, n)
		For(0, n, threads, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

func TestForEmptyAndNegativeRange(t *testing.T) {
	called := false
	For(5, 5, 4, func(int) { called = true })
	For(9, 3, 4, func(int) { called = true })
	if called {
		t.Fatal("body called on empty range")
	}
}

func TestForNonZeroBegin(t *testing.T) {
	var sum atomic.Int64
	For(10, 20, 3, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 145 {
		t.Fatalf("sum over [10,20) = %d, want 145", got)
	}
}

func TestForChunkPartitionsRange(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		const n = 517
		hits := make([]int32, n)
		tids := make(map[int]bool)
		var mu atomic.Int32
		ForChunk(0, n, threads, func(lo, hi, tid int) {
			mu.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			_ = tids
			if tid < 0 || tid >= threads {
				t.Errorf("tid %d out of range [0,%d)", tid, threads)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	got := ReduceInt64(0, 1001, 4, func(i int) int64 { return int64(i) })
	if got != 500500 {
		t.Fatalf("ReduceInt64 = %d, want 500500", got)
	}
}

func TestMaxInt64(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	got := MaxInt64(0, len(vals), 3, -1, func(i int) int64 { return vals[i] })
	if got != 9 {
		t.Fatalf("MaxInt64 = %d, want 9", got)
	}
	if got := MaxInt64(0, 0, 3, -7, func(int) int64 { return 0 }); got != -7 {
		t.Fatalf("MaxInt64 on empty range = %d, want identity -7", got)
	}
}

func TestQueuesMerge(t *testing.T) {
	q := NewQueues[int](3)
	q.Push(0, 1)
	q.Push(1, 2)
	q.Push(2, 3)
	q.Push(0, 4)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	got := q.Merge()
	want := []int{1, 4, 2, 3} // lane 0 first, then lanes 1, 2
	if len(got) != len(want) {
		t.Fatalf("Merge returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge returned %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("Merge did not reset lanes")
	}
}

func TestQueuesConcurrentLanes(t *testing.T) {
	const threads = 4
	const per = 1000
	q := NewQueues[int](threads)
	ForChunk(0, threads*per, threads, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			q.Push(tid, i)
		}
	})
	merged := q.Merge()
	if len(merged) != threads*per {
		t.Fatalf("merged %d elements, want %d", len(merged), threads*per)
	}
	seen := make([]bool, threads*per)
	for _, v := range merged {
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestPrefixSums(t *testing.T) {
	got := PrefixSums([]int{3, 0, 2, 5})
	want := []int{0, 3, 3, 5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixSums = %v, want %v", got, want)
		}
	}
	if e := PrefixSums(nil); len(e) != 1 || e[0] != 0 {
		t.Fatalf("PrefixSums(nil) = %v, want [0]", e)
	}
}

// Property: parallel reduce agrees with a serial loop for arbitrary data.
func TestQuickReduceMatchesSerial(t *testing.T) {
	f := func(vals []int64, threadsRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		var serial int64
		for _, v := range vals {
			serial += v
		}
		got := ReduceInt64(0, len(vals), threads, func(i int) int64 { return vals[i] })
		return got == serial
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix sums are monotone with correct total for non-negative
// counts.
func TestQuickPrefixSums(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int, len(raw))
		total := 0
		for i, v := range raw {
			counts[i] = int(v)
			total += int(v)
		}
		ps := PrefixSums(counts)
		if len(ps) != len(counts)+1 || ps[0] != 0 || ps[len(counts)] != total {
			return false
		}
		for i := range counts {
			if ps[i+1]-ps[i] != counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Edge-case table shared by the reductions: empty and inverted ranges,
// and thread counts exceeding the element count.
func TestReductionEdgeCases(t *testing.T) {
	ranges := []struct {
		name       string
		begin, end int
		threads    int
	}{
		{"empty", 5, 5, 4},
		{"inverted", 9, 3, 4},
		{"threads-exceed-n", 0, 3, 16},
		{"threads-zero", 0, 3, 0},
		{"negative-threads", 0, 3, -2},
	}
	for _, tc := range ranges {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.end - tc.begin
			wantSum := int64(0)
			for i := tc.begin; i < tc.end; i++ {
				wantSum += int64(i)
			}
			if got := ReduceInt64(tc.begin, tc.end, tc.threads, func(i int) int64 { return int64(i) }); got != wantSum {
				t.Errorf("ReduceInt64 = %d, want %d", got, wantSum)
			}
			wantMax := int64(-100)
			for i := tc.begin; i < tc.end; i++ {
				if int64(i) > wantMax {
					wantMax = int64(i)
				}
			}
			if got := MaxInt64(tc.begin, tc.end, tc.threads, -100, func(i int) int64 { return int64(i) }); got != wantMax {
				t.Errorf("MaxInt64 = %d, want %d", got, wantMax)
			}
			wantMaxF := -100.0
			for i := tc.begin; i < tc.end; i++ {
				if float64(i) > wantMaxF {
					wantMaxF = float64(i)
				}
			}
			if got := MaxFloat64(tc.begin, tc.end, tc.threads, -100, func(i int) float64 { return float64(i) }); got != wantMaxF {
				t.Errorf("MaxFloat64 = %v, want %v", got, wantMaxF)
			}
			sum, _ := SumFloat64Ordered(tc.begin, tc.end, tc.threads, nil, func(lo, hi int) float64 {
				var s float64
				for i := lo; i < hi; i++ {
					s += float64(i)
				}
				return s
			})
			if n <= 0 && sum != 0 {
				t.Errorf("SumFloat64Ordered on empty range = %v, want 0", sum)
			}
			if n > 0 && sum != float64(wantSum) {
				t.Errorf("SumFloat64Ordered = %v, want %v", sum, float64(wantSum))
			}
		})
	}
}

// The load-bearing property of the ordered reduction: the fold is
// bit-identical across thread counts, because the chunk decomposition
// depends only on the range. Values are chosen so an unordered fold
// would visibly drift (mixed magnitudes make float addition
// non-associative).
func TestSumFloat64OrderedBitIdenticalAcrossThreads(t *testing.T) {
	const n = 3*floatFoldGrain + 17
	vals := make([]float64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = float64(int64(x%2000)-1000) * 1e-3
		if i%7 == 0 {
			vals[i] *= 1e12
		}
	}
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	ref, scratch := SumFloat64Ordered(0, n, 1, nil, body)
	for _, threads := range []int{2, 4, 8} {
		var got float64
		got, scratch = SumFloat64Ordered(0, n, threads, scratch, body)
		if got != ref {
			t.Fatalf("threads=%d: sum %v differs from threads=1 sum %v", threads, got, ref)
		}
	}
}

// The pooled scratch must be reused, not reallocated, once grown.
func TestSumFloat64OrderedScratchReused(t *testing.T) {
	const n = 5 * floatFoldGrain
	body := func(lo, hi int) float64 { return float64(hi - lo) }
	_, scratch := SumFloat64Ordered(0, n, 1, nil, body)
	allocs := testing.AllocsPerRun(50, func() {
		_, scratch = SumFloat64Ordered(0, n, 1, scratch, body)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SumFloat64Ordered allocated %.1f times per run, want 0", allocs)
	}
}

// MergeInto with a pooled destination must be allocation-free in
// steady state (lanes and dst both keep their capacity).
func TestQueuesMergeIntoAllocFree(t *testing.T) {
	q := NewQueues[int64](4)
	var dst []int64
	fill := func() {
		for tid := 0; tid < 4; tid++ {
			for i := 0; i < 100; i++ {
				q.Push(tid, int64(tid*1000+i))
			}
		}
	}
	fill()
	dst = q.MergeInto(dst[:0])
	allocs := testing.AllocsPerRun(50, func() {
		fill()
		dst = q.MergeInto(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("steady-state MergeInto allocated %.1f times per run, want 0", allocs)
	}
	if len(dst) != 400 {
		t.Fatalf("merged %d records, want 400", len(dst))
	}
}

// Property: Merge and MergeInto emit lanes in thread-id order with
// push order preserved inside each lane, for arbitrary push schedules.
func TestQuickMergeTidOrderStable(t *testing.T) {
	f := func(raw []uint16, threadsRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		q := NewQueues[uint16](threads)
		perLane := make([][]uint16, threads)
		for i, v := range raw {
			tid := i % threads
			q.Push(tid, v)
			perLane[tid] = append(perLane[tid], v)
		}
		var want []uint16
		for _, l := range perLane {
			want = append(want, l...)
		}
		got := q.MergeInto(nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Refill and Merge must agree with MergeInto.
		for i, v := range raw {
			q.Push(i%threads, v)
		}
		got2 := q.Merge()
		if len(got2) != len(want) {
			return false
		}
		for i := range want {
			if got2[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResolveThreads(t *testing.T) {
	if got := ResolveThreads(0); got != DefaultThreads() {
		t.Fatalf("ResolveThreads(0) = %d, want DefaultThreads %d", got, DefaultThreads())
	}
	if got := ResolveThreads(-3); got != DefaultThreads() {
		t.Fatalf("ResolveThreads(-3) = %d, want DefaultThreads %d", got, DefaultThreads())
	}
	for _, n := range []int{1, 2, 16} {
		if got := ResolveThreads(n); got != n {
			t.Fatalf("ResolveThreads(%d) = %d", n, got)
		}
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(0, 1024, 4, func(int) {})
	}
}
