package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		const n = 1000
		hits := make([]int32, n)
		For(0, n, threads, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

func TestForEmptyAndNegativeRange(t *testing.T) {
	called := false
	For(5, 5, 4, func(int) { called = true })
	For(9, 3, 4, func(int) { called = true })
	if called {
		t.Fatal("body called on empty range")
	}
}

func TestForNonZeroBegin(t *testing.T) {
	var sum atomic.Int64
	For(10, 20, 3, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 145 {
		t.Fatalf("sum over [10,20) = %d, want 145", got)
	}
}

func TestForChunkPartitionsRange(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		const n = 517
		hits := make([]int32, n)
		tids := make(map[int]bool)
		var mu atomic.Int32
		ForChunk(0, n, threads, func(lo, hi, tid int) {
			mu.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			_ = tids
			if tid < 0 || tid >= threads {
				t.Errorf("tid %d out of range [0,%d)", tid, threads)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	got := ReduceInt64(0, 1001, 4, func(i int) int64 { return int64(i) })
	if got != 500500 {
		t.Fatalf("ReduceInt64 = %d, want 500500", got)
	}
}

func TestMaxInt64(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	got := MaxInt64(0, len(vals), 3, -1, func(i int) int64 { return vals[i] })
	if got != 9 {
		t.Fatalf("MaxInt64 = %d, want 9", got)
	}
	if got := MaxInt64(0, 0, 3, -7, func(int) int64 { return 0 }); got != -7 {
		t.Fatalf("MaxInt64 on empty range = %d, want identity -7", got)
	}
}

func TestQueuesMerge(t *testing.T) {
	q := NewQueues[int](3)
	q.Push(0, 1)
	q.Push(1, 2)
	q.Push(2, 3)
	q.Push(0, 4)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	got := q.Merge()
	want := []int{1, 4, 2, 3} // lane 0 first, then lanes 1, 2
	if len(got) != len(want) {
		t.Fatalf("Merge returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge returned %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("Merge did not reset lanes")
	}
}

func TestQueuesConcurrentLanes(t *testing.T) {
	const threads = 4
	const per = 1000
	q := NewQueues[int](threads)
	ForChunk(0, threads*per, threads, func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			q.Push(tid, i)
		}
	})
	merged := q.Merge()
	if len(merged) != threads*per {
		t.Fatalf("merged %d elements, want %d", len(merged), threads*per)
	}
	seen := make([]bool, threads*per)
	for _, v := range merged {
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestPrefixSums(t *testing.T) {
	got := PrefixSums([]int{3, 0, 2, 5})
	want := []int{0, 3, 3, 5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixSums = %v, want %v", got, want)
		}
	}
	if e := PrefixSums(nil); len(e) != 1 || e[0] != 0 {
		t.Fatalf("PrefixSums(nil) = %v, want [0]", e)
	}
}

// Property: parallel reduce agrees with a serial loop for arbitrary data.
func TestQuickReduceMatchesSerial(t *testing.T) {
	f := func(vals []int64, threadsRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		var serial int64
		for _, v := range vals {
			serial += v
		}
		got := ReduceInt64(0, len(vals), threads, func(i int) int64 { return vals[i] })
		return got == serial
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix sums are monotone with correct total for non-negative
// counts.
func TestQuickPrefixSums(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int, len(raw))
		total := 0
		for i, v := range raw {
			counts[i] = int(v)
			total += int(v)
		}
		ps := PrefixSums(counts)
		if len(ps) != len(counts)+1 || ps[0] != 0 || ps[len(counts)] != total {
			return false
		}
		for i := range counts {
			if ps[i+1]-ps[i] != counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(0, 1024, 4, func(int) {})
	}
}
