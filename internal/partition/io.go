package partition

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteParts writes one part id per line (line i = vertex i), the
// format METIS-family tools exchange partitions in.
func WriteParts(w io.Writer, parts []int32) error {
	bw := bufio.NewWriter(w)
	for _, p := range parts {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParts parses the one-id-per-line partition format. Blank lines
// and '#' comments are ignored.
func ReadParts(r io.Reader) ([]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []int32
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("partition: bad part id %q: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("partition: negative part id %d", v)
		}
		out = append(out, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SaveParts writes a partition file at path.
func SaveParts(path string, parts []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteParts(f, parts); err != nil {
		return err
	}
	return f.Close()
}

// LoadParts reads a partition file from path.
func LoadParts(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadParts(f)
}

// RandIndex measures the similarity of two partitions of the same
// vertex set as the fraction of vertex pairs on which they agree
// (same-part in both or split in both). 1.0 means identical up to part
// relabeling; independent random partitions of p parts score about
// 1 - 2(p-1)/p². It is label-permutation invariant, so it compares
// partitioners whose part numbering differs.
func RandIndex(a, b []int32) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("partition: RandIndex length mismatch %d vs %d", len(a), len(b))
	}
	n := int64(len(a))
	if n < 2 {
		return 1, nil
	}
	// Pair counting via contingency table: agreements =
	// C(n,2) + 2·Σ_ij C(n_ij,2) − Σ_i C(a_i,2) − Σ_j C(b_j,2).
	type cell struct{ x, y int32 }
	joint := make(map[cell]int64)
	rowA := make(map[int32]int64)
	rowB := make(map[int32]int64)
	for i := range a {
		joint[cell{a[i], b[i]}]++
		rowA[a[i]]++
		rowB[b[i]]++
	}
	choose2 := func(k int64) int64 { return k * (k - 1) / 2 }
	var sumJoint, sumA, sumB int64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range rowA {
		sumA += choose2(c)
	}
	for _, c := range rowB {
		sumB += choose2(c)
	}
	total := choose2(n)
	agreements := total + 2*sumJoint - sumA - sumB
	return float64(agreements) / float64(total), nil
}
