package partition

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestPartsRoundTrip(t *testing.T) {
	parts := []int32{0, 3, 1, 1, 2, 0}
	var buf bytes.Buffer
	if err := WriteParts(&buf, parts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("got %d ids", len(got))
	}
	for i := range parts {
		if got[i] != parts[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], parts[i])
		}
	}
}

func TestReadPartsCommentsAndErrors(t *testing.T) {
	got, err := ReadParts(strings.NewReader("# header\n0\n\n2\n"))
	if err != nil || len(got) != 2 || got[1] != 2 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ReadParts(strings.NewReader("x\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadParts(strings.NewReader("-1\n")); err == nil {
		t.Fatal("expected negative-id error")
	}
}

func TestSaveLoadParts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "parts.txt")
	parts := []int32{1, 0, 1}
	if err := SaveParts(path, parts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestRandIndexIdentityAndRelabel(t *testing.T) {
	a := []int32{0, 0, 1, 1, 2, 2}
	if ri, _ := RandIndex(a, a); ri != 1.0 {
		t.Fatalf("identical partitions RI = %v", ri)
	}
	// Relabeled copy (0<->2) must still score 1.0.
	b := []int32{2, 2, 1, 1, 0, 0}
	if ri, _ := RandIndex(a, b); ri != 1.0 {
		t.Fatalf("relabeled partitions RI = %v", ri)
	}
}

func TestRandIndexDisagreement(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	b := []int32{0, 1, 0, 1}
	// Pairs: (0,1) same-a diff-b, (2,3) same-a diff-b, (0,2) diff-a
	// diff-b? a: 0 vs 1 diff; b: 0 vs 0 same -> disagree. Compute:
	// agreements are pairs (0,3): a diff, b diff; (1,2): a diff, b diff.
	// 2 of 6 pairs agree.
	ri, err := RandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Fatalf("RI = %v, want %v", ri, 2.0/6.0)
	}
}

func TestRandIndexValidation(t *testing.T) {
	if _, err := RandIndex([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if ri, _ := RandIndex([]int32{0}, []int32{5}); ri != 1.0 {
		t.Fatal("singleton partitions must agree trivially")
	}
}

func TestRandIndexRandomVsStructured(t *testing.T) {
	g := gen.RMAT(10, 8, 1).MustBuild()
	const p = 8
	block := VertexBlock(g, p)
	blockAgain := VertexBlock(g, p)
	randA := Random(g, p, 1)
	randB := Random(g, p, 2)
	same, _ := RandIndex(block, blockAgain)
	if same != 1.0 {
		t.Fatalf("deterministic partitioner disagreement: %v", same)
	}
	indep, _ := RandIndex(randA, randB)
	want := 1 - 2*float64(p-1)/float64(p*p) // expected RI of independent partitions
	if math.Abs(indep-want) > 0.02 {
		t.Fatalf("independent random partitions RI = %v, want ≈%v", indep, want)
	}
}
