// Package partition defines partition representations, the paper's two
// architecture-independent quality metrics (edge cut ratio and scaled
// max per-part cut ratio, §V.B), balance metrics, validation, and the
// trivial baseline strategies the paper compares against at scale:
// random, vertex-block, and edge-block partitioning (§V.E).
package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Quality summarizes a partition against the paper's metrics. Lower is
// better for every ratio.
type Quality struct {
	NumParts int
	// CutEdges is |C(G, Π)|, the number of undirected edges whose
	// endpoints lie in different parts.
	CutEdges int64
	// EdgeCutRatio is |C| / |E|.
	EdgeCutRatio float64
	// MaxPartCut is max_k |C(G, π_k)|: the largest per-part cut.
	MaxPartCut int64
	// ScaledMaxCutRatio is MaxPartCut / (|E| / p) — the paper's "scaled
	// max edge cut ratio".
	ScaledMaxCutRatio float64
	// VertexImbalance is max_i |V(π_i)| / (|V| / p); 1.0 is perfect.
	VertexImbalance float64
	// EdgeImbalance is the same ratio for edges incident to each part
	// (sum of member degrees), the quantity the edge-balance constraint
	// controls.
	EdgeImbalance float64
	// CutImbalance is max_k |C(G, π_k)| / (avg_k |C(G, π_k)|), the
	// balance of cut edges among parts (secondary objective).
	CutImbalance float64
	// PartVerts[i] is |V(π_i)|.
	PartVerts []int64
	// PartDegrees[i] is the sum of degrees of vertices in part i.
	PartDegrees []int64
	// PartCut[i] is |C(G, π_i)|.
	PartCut []int64
}

// Validate checks that parts assigns every vertex of g a part id in
// [0, p).
func Validate(g *graph.Graph, parts []int32, p int) error {
	if int64(len(parts)) != g.N {
		return fmt.Errorf("partition: got %d assignments for %d vertices", len(parts), g.N)
	}
	for v, pt := range parts {
		if pt < 0 || int(pt) >= p {
			return fmt.Errorf("partition: vertex %d assigned part %d outside [0,%d)", v, pt, p)
		}
	}
	return nil
}

// Evaluate computes all quality metrics of parts over g. The graph must
// be symmetric (undirected CSR); every undirected edge is counted once.
func Evaluate(g *graph.Graph, parts []int32, p int) Quality {
	q := Quality{
		NumParts:    p,
		PartVerts:   make([]int64, p),
		PartDegrees: make([]int64, p),
		PartCut:     make([]int64, p),
	}
	for v := int64(0); v < g.N; v++ {
		pv := parts[v]
		q.PartVerts[pv]++
		q.PartDegrees[pv] += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if parts[u] != pv {
				// Count each cut edge once globally (v < u) but once per
				// incident part for the per-part cut.
				q.PartCut[pv]++
				if v < u {
					q.CutEdges++
				} else if u == v {
					// self loop, never cut
				}
			}
		}
	}
	// PartCut counted each cut edge from both sides for the part it is
	// incident to; an edge with endpoints in parts a and b contributed 1
	// to each of a and b, which is exactly |C(G, π_k)| per definition.
	m := g.NumEdges()
	if m > 0 {
		q.EdgeCutRatio = float64(q.CutEdges) / float64(m)
	}
	var maxCut, sumCut int64
	for _, c := range q.PartCut {
		sumCut += c
		if c > maxCut {
			maxCut = c
		}
	}
	q.MaxPartCut = maxCut
	if m > 0 && p > 0 {
		q.ScaledMaxCutRatio = float64(maxCut) / (float64(m) / float64(p))
	}
	if sumCut > 0 {
		q.CutImbalance = float64(maxCut) / (float64(sumCut) / float64(p))
	}
	if g.N > 0 && p > 0 {
		var maxV int64
		for _, c := range q.PartVerts {
			if c > maxV {
				maxV = c
			}
		}
		q.VertexImbalance = float64(maxV) / (float64(g.N) / float64(p))
	}
	if g.NumArcs() > 0 && p > 0 {
		var maxE int64
		for _, c := range q.PartDegrees {
			if c > maxE {
				maxE = c
			}
		}
		q.EdgeImbalance = float64(maxE) / (float64(g.NumArcs()) / float64(p))
	}
	return q
}

// Random assigns each vertex to a uniformly random part. At the
// paper's scale this is one of the only two strategies that work
// without a scalable partitioner; its expected edge cut ratio is
// (p-1)/p.
func Random(g *graph.Graph, p int, seed uint64) []int32 {
	r := rng.New(seed)
	parts := make([]int32, g.N)
	for v := range parts {
		parts[v] = int32(r.Intn(p))
	}
	return parts
}

// VertexBlock assigns contiguous ranges of ⌈n/p⌉ vertices to each part
// (the paper's "VertexBlock": same number of vertices and all their
// adjacencies per part).
func VertexBlock(g *graph.Graph, p int) []int32 {
	parts := make([]int32, g.N)
	if g.N == 0 {
		return parts
	}
	for v := int64(0); v < g.N; v++ {
		parts[v] = int32(v * int64(p) / g.N)
	}
	return parts
}

// EdgeBlock assigns contiguous vertex ranges such that each part holds
// approximately the same number of incident edges (the paper's
// "EdgeBlock": contiguous vertices with roughly equal edge counts).
func EdgeBlock(g *graph.Graph, p int) []int32 {
	parts := make([]int32, g.N)
	if g.N == 0 || len(g.Adj) == 0 {
		return VertexBlock(g, p)
	}
	totalArcs := g.NumArcs()
	target := (totalArcs + int64(p) - 1) / int64(p)
	var acc int64
	cur := int32(0)
	for v := int64(0); v < g.N; v++ {
		parts[v] = cur
		acc += g.Degree(v)
		if acc >= target && int(cur) < p-1 {
			acc = 0
			cur++
		}
	}
	return parts
}

// CutEdges returns just |C(G, Π)| without the full Quality computation.
func CutEdges(g *graph.Graph, parts []int32) int64 {
	var cut int64
	for v := int64(0); v < g.N; v++ {
		pv := parts[v]
		for _, u := range g.Neighbors(v) {
			if v < u && parts[u] != pv {
				cut++
			}
		}
	}
	return cut
}

// PartSizes returns the per-part vertex counts.
func PartSizes(parts []int32, p int) []int64 {
	sizes := make([]int64, p)
	for _, pt := range parts {
		sizes[pt]++
	}
	return sizes
}
