package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// twoCliques returns two k-cliques joined by a single bridge edge; the
// natural 2-partition cuts exactly 1 edge.
func twoCliques(k int64) *graph.Graph {
	var edges []graph.Edge
	for i := int64(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
			edges = append(edges, graph.Edge{U: k + i, V: k + j})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: k})
	g, err := graph.FromEdges(2*k, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestEvaluatePerfectSplit(t *testing.T) {
	g := twoCliques(5)
	parts := make([]int32, g.N)
	for v := int64(5); v < 10; v++ {
		parts[v] = 1
	}
	q := Evaluate(g, parts, 2)
	if q.CutEdges != 1 {
		t.Fatalf("CutEdges = %d, want 1", q.CutEdges)
	}
	m := g.NumEdges()
	if math.Abs(q.EdgeCutRatio-1.0/float64(m)) > 1e-12 {
		t.Fatalf("EdgeCutRatio = %v", q.EdgeCutRatio)
	}
	if q.MaxPartCut != 1 {
		t.Fatalf("MaxPartCut = %d, want 1", q.MaxPartCut)
	}
	if q.VertexImbalance != 1.0 {
		t.Fatalf("VertexImbalance = %v, want 1.0", q.VertexImbalance)
	}
	if q.PartVerts[0] != 5 || q.PartVerts[1] != 5 {
		t.Fatalf("PartVerts = %v", q.PartVerts)
	}
}

func TestEvaluateAllOnePart(t *testing.T) {
	g := twoCliques(4)
	parts := make([]int32, g.N)
	q := Evaluate(g, parts, 2)
	if q.CutEdges != 0 || q.EdgeCutRatio != 0 {
		t.Fatalf("cut = %d, ratio = %v; want 0", q.CutEdges, q.EdgeCutRatio)
	}
	if q.VertexImbalance != 2.0 {
		t.Fatalf("VertexImbalance = %v, want 2.0", q.VertexImbalance)
	}
}

func TestEvaluatePerPartCutDefinition(t *testing.T) {
	// Triangle with all vertices in distinct parts: every edge is cut,
	// and each part is incident to exactly 2 cut edges.
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	parts := []int32{0, 1, 2}
	q := Evaluate(g, parts, 3)
	if q.CutEdges != 3 {
		t.Fatalf("CutEdges = %d, want 3", q.CutEdges)
	}
	for i, c := range q.PartCut {
		if c != 2 {
			t.Fatalf("PartCut[%d] = %d, want 2", i, c)
		}
	}
	// ScaledMaxCut = 2 / (3/3) = 2.
	if math.Abs(q.ScaledMaxCutRatio-2.0) > 1e-12 {
		t.Fatalf("ScaledMaxCutRatio = %v, want 2.0", q.ScaledMaxCutRatio)
	}
}

func TestValidate(t *testing.T) {
	g := twoCliques(3)
	good := make([]int32, g.N)
	if err := Validate(g, good, 1); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, good[:2], 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	bad := make([]int32, g.N)
	bad[0] = 5
	if err := Validate(g, bad, 2); err == nil {
		t.Fatal("expected out-of-range part error")
	}
}

func TestRandomPartitionCutApproachesTheory(t *testing.T) {
	// Paper §V.B: random partitioning's edge cut ratio scales as (p-1)/p.
	g := gen.ERAvgDeg(4096, 16, 3).MustBuild()
	for _, p := range []int{2, 8, 32} {
		parts := Random(g, p, 17)
		q := Evaluate(g, parts, p)
		want := float64(p-1) / float64(p)
		if math.Abs(q.EdgeCutRatio-want) > 0.05 {
			t.Errorf("p=%d: random cut ratio %.3f, want ≈%.3f", p, q.EdgeCutRatio, want)
		}
	}
}

func TestVertexBlockBalance(t *testing.T) {
	g := gen.Grid3D(10, 10, 10).MustBuild()
	for _, p := range []int{2, 3, 7, 16} {
		parts := VertexBlock(g, p)
		if err := Validate(g, parts, p); err != nil {
			t.Fatal(err)
		}
		sizes := PartSizes(parts, p)
		lo, hi := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo > 1 {
			t.Errorf("p=%d: vertex block sizes spread %v", p, sizes)
		}
	}
}

func TestVertexBlockLowCutOnMesh(t *testing.T) {
	// Contiguous blocks of a mesh are z-slabs: cut ratio is exactly
	// (p-1)*nx*ny / m, far below random's (p-1)/p.
	g := gen.Grid3D(8, 8, 8).MustBuild()
	q := Evaluate(g, VertexBlock(g, 8), 8)
	want := float64(7*8*8) / float64(g.NumEdges())
	if math.Abs(q.EdgeCutRatio-want) > 1e-12 {
		t.Errorf("mesh vertex-block cut ratio %.4f, want %.4f", q.EdgeCutRatio, want)
	}
	qr := Evaluate(g, Random(g, 8, 1), 8)
	if q.EdgeCutRatio >= qr.EdgeCutRatio {
		t.Errorf("vertex block (%.3f) not better than random (%.3f) on mesh",
			q.EdgeCutRatio, qr.EdgeCutRatio)
	}
}

func TestEdgeBlockBalancesDegrees(t *testing.T) {
	// On a skewed graph, edge-block must balance degrees much better
	// than vertex-block.
	g := gen.ChungLu(4096, 32768, 2.0, 5).MustBuild()
	p := 8
	qe := Evaluate(g, EdgeBlock(g, p), p)
	qv := Evaluate(g, VertexBlock(g, p), p)
	if qe.EdgeImbalance >= qv.EdgeImbalance {
		t.Errorf("edge block imbalance %.2f not better than vertex block %.2f",
			qe.EdgeImbalance, qv.EdgeImbalance)
	}
	if qe.EdgeImbalance > 1.6 {
		t.Errorf("edge block imbalance %.2f too high", qe.EdgeImbalance)
	}
}

func TestCutEdgesAgreesWithEvaluate(t *testing.T) {
	g := gen.RMAT(10, 8, 3).MustBuild()
	parts := Random(g, 4, 9)
	if CutEdges(g, parts) != Evaluate(g, parts, 4).CutEdges {
		t.Fatal("CutEdges disagrees with Evaluate")
	}
}

func TestPartSizes(t *testing.T) {
	sizes := PartSizes([]int32{0, 1, 1, 2, 2, 2}, 4)
	want := []int64{1, 2, 3, 0}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("PartSizes = %v, want %v", sizes, want)
		}
	}
}

// Property: for any partition, sum of PartCut equals 2*CutEdges, and
// part sizes sum to n.
func TestQuickEvaluateConservation(t *testing.T) {
	g := gen.ER(300, 1200, 7).MustBuild()
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		parts := Random(g, p, seed)
		q := Evaluate(g, parts, p)
		var sumCut, sumV, sumDeg int64
		for i := 0; i < p; i++ {
			sumCut += q.PartCut[i]
			sumV += q.PartVerts[i]
			sumDeg += q.PartDegrees[i]
		}
		return sumCut == 2*q.CutEdges && sumV == g.N && sumDeg == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the edge cut ratio is within [0, 1] for any assignment.
func TestQuickCutRatioBounded(t *testing.T) {
	g := gen.RMAT(9, 8, 2).MustBuild()
	f := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		q := Evaluate(g, Random(g, p, seed), p)
		return q.EdgeCutRatio >= 0 && q.EdgeCutRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	g := gen.RMAT(14, 16, 1).MustBuild()
	parts := Random(g, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(g, parts, 16)
	}
}
