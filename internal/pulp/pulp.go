// Package pulp reimplements the shared-memory PuLP-MM partitioner of
// Slota, Madduri, and Rajamanickam (IEEE BigData 2014), the prior work
// XtraPuLP extends and one of the paper's three comparison baselines.
//
// PuLP runs the same three conceptual stages as XtraPuLP — label
// propagation initialization, weighted vertex balancing, constrained
// refinement, then edge balancing — but in shared memory: part sizes
// are tracked exactly with atomic counters as vertices move, so no
// distributed size estimation or damping multiplier is needed.
package pulp

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Options configures a PuLP run.
type Options struct {
	// NumParts is the number of parts to compute.
	NumParts int
	// Iouter, Ibal, Iref mirror the XtraPuLP stage counts (3, 5, 10).
	Iouter, Ibal, Iref int
	// InitIters is the number of unconstrained label propagation
	// rounds used for initialization (PuLP's LP init).
	InitIters int
	// VertImbalance and EdgeImbalance are the constraint ratios.
	VertImbalance, EdgeImbalance float64
	// SingleConstraint skips the edge-balancing stage.
	SingleConstraint bool
	// Threads bounds intra-process parallelism. The repo-wide rule:
	// 0 (or negative) selects one worker per core (par.DefaultThreads),
	// an explicit 1 runs serial. PuLP's moves read neighbor parts
	// updated concurrently by other workers, so runs are deterministic
	// only at Threads = 1.
	Threads int
	// Seed drives the randomized initialization.
	Seed uint64
}

// DefaultOptions returns PuLP's default configuration for p parts.
func DefaultOptions(p int) Options {
	return Options{
		NumParts:      p,
		Iouter:        3,
		Ibal:          5,
		Iref:          10,
		InitIters:     3,
		VertImbalance: 0.10,
		EdgeImbalance: 0.10,
		Threads:       0, // one worker per core; see Options.Threads
		Seed:          1,
	}
}

// Report carries timings from a run.
type Report struct {
	InitTime  time.Duration
	VertTime  time.Duration
	EdgeTime  time.Duration
	TotalTime time.Duration
	Quality   partition.Quality
}

// solver bundles the mutable state of one run.
type solver struct {
	g   *graph.Graph
	opt Options
	p   int

	parts []int32
	sv    []int64 // exact vertex counts per part (atomic)
	se    []int64 // exact degree sums per part (atomic)

	imbV, imbE float64
	idealV     float64
}

// Partition computes a p-way partition of g with PuLP-MM.
//
//repro:deterministic
//repro:timing
func Partition(g *graph.Graph, opt Options) ([]int32, Report, error) {
	if opt.NumParts < 1 {
		return nil, Report{}, fmt.Errorf("pulp: NumParts = %d", opt.NumParts)
	}
	if int64(opt.NumParts) > g.N && g.N > 0 {
		opt.NumParts = int(g.N)
	}
	s := &solver{
		g:     g,
		opt:   opt,
		p:     opt.NumParts,
		parts: make([]int32, g.N),
		sv:    make([]int64, opt.NumParts),
		se:    make([]int64, opt.NumParts),
	}
	s.imbV = (1 + opt.VertImbalance) * float64(g.N) / float64(s.p)
	s.imbE = (1 + opt.EdgeImbalance) * float64(g.NumArcs()) / float64(s.p)
	s.idealV = float64(g.N) / float64(s.p)

	var rep Report
	start := time.Now()

	t0 := time.Now()
	s.initLP()
	rep.InitTime = time.Since(t0)

	t0 = time.Now()
	for outer := 0; outer < opt.Iouter; outer++ {
		s.vertBalance()
		s.refine(false)
	}
	rep.VertTime = time.Since(t0)

	if !opt.SingleConstraint {
		t0 = time.Now()
		for outer := 0; outer < opt.Iouter; outer++ {
			s.edgeBalance()
			s.refine(true) // refinement preserving both constraints
		}
		rep.EdgeTime = time.Since(t0)
	}

	rep.TotalTime = time.Since(start)
	rep.Quality = partition.Evaluate(g, s.parts, s.p)
	return s.parts, rep, nil
}

// threads returns the worker budget.
func (s *solver) threads() int { return par.ResolveThreads(s.opt.Threads) }

// recount rebuilds exact part tallies from assignments.
func (s *solver) recount() {
	for i := 0; i < s.p; i++ {
		s.sv[i], s.se[i] = 0, 0
	}
	for v := int64(0); v < s.g.N; v++ {
		pv := s.parts[v]
		s.sv[pv]++
		s.se[pv] += s.g.Degree(v)
	}
}

// move transfers vertex v from part x to part w, maintaining tallies.
func (s *solver) move(v int64, x, w int32) {
	atomic.AddInt64(&s.sv[x], -1)
	atomic.AddInt64(&s.sv[w], 1)
	d := s.g.Degree(v)
	atomic.AddInt64(&s.se[x], -d)
	atomic.AddInt64(&s.se[w], d)
	atomic.StoreInt32(&s.parts[v], w)
}

// loadPart reads a label with atomic semantics (threads race benignly,
// as in the original asynchronous shared-memory implementation).
func (s *solver) loadPart(v int64) int32 {
	return atomic.LoadInt32(&s.parts[int(v)])
}

// initLP assigns random parts and runs a few rounds of unconstrained
// degree-weighted label propagation, PuLP's initialization.
func (s *solver) initLP() {
	threads := s.threads()
	par.ForChunk(0, int(s.g.N), threads, func(lo, hi, tid int) {
		r := rng.NewStream(s.opt.Seed, uint64(tid))
		for v := lo; v < hi; v++ {
			s.parts[v] = int32(r.Intn(s.p))
		}
	})
	counts := make([][]float64, threads)
	for t := range counts {
		counts[t] = make([]float64, s.p)
	}
	for iter := 0; iter < s.opt.InitIters; iter++ {
		par.ForChunk(0, int(s.g.N), threads, func(lo, hi, tid int) {
			cnt := counts[tid]
			for v := lo; v < hi; v++ {
				for i := range cnt {
					cnt[i] = 0
				}
				for _, u := range s.g.Neighbors(int64(v)) {
					cnt[s.loadPart(u)] += float64(s.g.Degree(u))
				}
				x := s.loadPart(int64(v))
				w, best := x, cnt[x]
				for i := 0; i < s.p; i++ {
					if cnt[i] > best {
						best, w = cnt[i], int32(i)
					}
				}
				if w != x {
					atomic.StoreInt32(&s.parts[v], w)
				}
			}
		})
	}
	s.recount()
}

// vertBalance moves vertices from parts above the ideal size toward
// underweight parts, weighting neighbor parts by ideal/size − 1 and
// teleporting when no underweight neighbor part exists.
func (s *solver) vertBalance() {
	threads := s.threads()
	for iter := 0; iter < s.opt.Ibal; iter++ {
		par.ForChunk(0, int(s.g.N), threads, func(lo, hi, tid int) {
			cnt := make([]float64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int64(vi)
				x := s.loadPart(v)
				if float64(atomic.LoadInt64(&s.sv[x])) <= s.idealV {
					continue
				}
				for i := range cnt {
					cnt[i] = 0
				}
				for _, u := range s.g.Neighbors(v) {
					cnt[s.loadPart(u)] += float64(s.g.Degree(u))
				}
				w, best := x, 0.0
				for i := 0; i < s.p; i++ {
					size := float64(atomic.LoadInt64(&s.sv[i]))
					if size+1 > s.imbV {
						continue
					}
					if size < 1 {
						size = 1
					}
					wt := s.idealV/size - 1
					if wt < 0 {
						wt = 0
					}
					if sc := cnt[i] * wt; sc > best {
						best, w = sc, int32(i)
					}
				}
				if w == x || best <= 0 {
					w, _ = s.mostUnderweight(x)
				}
				if w != x {
					s.move(v, x, w)
				}
			}
		})
	}
}

// mostUnderweight returns the part with the highest vertex deficit
// (excluding x) that can still accept a vertex.
func (s *solver) mostUnderweight(x int32) (int32, bool) {
	w, bestW := x, 0.0
	for i := 0; i < s.p; i++ {
		if int32(i) == x {
			continue
		}
		size := float64(atomic.LoadInt64(&s.sv[i]))
		if size+1 > s.imbV {
			continue
		}
		if size < 1 {
			size = 1
		}
		if wv := s.idealV/size - 1; wv > bestW {
			bestW, w = wv, int32(i)
		}
	}
	return w, w != x
}

// refine is plurality label propagation constrained by the vertex cap,
// and additionally by the edge cap once the edge stage is active so
// refinement cannot undo edge balance.
func (s *solver) refine(enforceEdge bool) {
	threads := s.threads()
	for iter := 0; iter < s.opt.Iref; iter++ {
		par.ForChunk(0, int(s.g.N), threads, func(lo, hi, tid int) {
			cnt := make([]int64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int64(vi)
				for i := range cnt {
					cnt[i] = 0
				}
				for _, u := range s.g.Neighbors(v) {
					cnt[s.loadPart(u)]++
				}
				x := s.loadPart(v)
				dv := float64(s.g.Degree(v))
				w, best := x, cnt[x]
				for i := 0; i < s.p; i++ {
					if cnt[i] <= best {
						continue
					}
					if float64(atomic.LoadInt64(&s.sv[i]))+1 > s.imbV {
						continue
					}
					if enforceEdge && float64(atomic.LoadInt64(&s.se[i]))+dv > s.imbE {
						continue
					}
					best, w = cnt[i], int32(i)
				}
				if w != x {
					s.move(v, x, w)
				}
			}
		})
	}
}

// edgeBalance shifts degree weight out of parts exceeding the edge
// target into edge-underweight parts, respecting the vertex cap.
func (s *solver) edgeBalance() {
	threads := s.threads()
	for iter := 0; iter < s.opt.Ibal; iter++ {
		par.ForChunk(0, int(s.g.N), threads, func(lo, hi, tid int) {
			cnt := make([]float64, s.p)
			for vi := lo; vi < hi; vi++ {
				v := int64(vi)
				x := s.loadPart(v)
				if float64(atomic.LoadInt64(&s.se[x])) <= s.imbE {
					continue
				}
				for i := range cnt {
					cnt[i] = 0
				}
				for _, u := range s.g.Neighbors(v) {
					cnt[s.loadPart(u)] += float64(s.g.Degree(u))
				}
				dv := float64(s.g.Degree(v))
				w, best := x, 0.0
				for i := 0; i < s.p; i++ {
					ei := float64(atomic.LoadInt64(&s.se[i]))
					if ei+dv > s.imbE || float64(atomic.LoadInt64(&s.sv[i]))+1 > s.imbV {
						continue
					}
					if ei < 1 {
						ei = 1
					}
					wt := s.imbE/ei - 1
					if wt < 0 {
						wt = 0
					}
					if sc := (cnt[i] + 1) * wt; sc > best {
						best, w = sc, int32(i)
					}
				}
				if w != x && best > 0 {
					s.move(v, x, w)
				}
			}
		})
	}
}
