package pulp

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
)

func TestPartitionValidAssignment(t *testing.T) {
	g := gen.RMAT(10, 8, 3).MustBuild()
	for _, p := range []int{2, 4, 16} {
		parts, _, err := Partition(g, DefaultOptions(p))
		if err != nil {
			t.Fatal(err)
		}
		if err := partition.Validate(g, parts, p); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestVertexBalanceConstraint(t *testing.T) {
	g := gen.ERAvgDeg(4096, 16, 5).MustBuild()
	parts, rep, err := Partition(g, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(g, parts, 8)
	if q.VertexImbalance > 1.12 {
		t.Errorf("vertex imbalance %.3f exceeds constraint", q.VertexImbalance)
	}
	if rep.Quality.CutEdges != q.CutEdges {
		t.Errorf("report cut %d != evaluated %d", rep.Quality.CutEdges, q.CutEdges)
	}
}

func TestEdgeBalanceOnSkewedGraph(t *testing.T) {
	g := gen.ChungLu(4096, 32768, 2.2, 7).MustBuild()
	parts, _, err := Partition(g, DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(g, parts, 8)
	if q.EdgeImbalance > 1.6 {
		t.Errorf("edge imbalance %.3f too high", q.EdgeImbalance)
	}
}

func TestBeatsRandomCut(t *testing.T) {
	g := gen.RandHD(4096, 8, 9).MustBuild()
	const p = 8
	parts, _, err := Partition(g, DefaultOptions(p))
	if err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(g, parts, p)
	qr := partition.Evaluate(g, partition.Random(g, p, 1), p)
	if q.EdgeCutRatio > qr.EdgeCutRatio/2 {
		t.Errorf("PuLP cut %.3f not well below random %.3f", q.EdgeCutRatio, qr.EdgeCutRatio)
	}
}

func TestSingleConstraintSkipsEdgeStage(t *testing.T) {
	g := gen.RMAT(9, 8, 11).MustBuild()
	opt := DefaultOptions(4)
	opt.SingleConstraint = true
	_, rep, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgeTime != 0 {
		t.Errorf("edge stage ran in single-constraint mode (%v)", rep.EdgeTime)
	}
}

func TestDeterministicSingleThread(t *testing.T) {
	g := gen.RMAT(9, 8, 13).MustBuild()
	opt := DefaultOptions(4)
	opt.Threads = 1 // determinism is only promised serial
	a, _, _ := Partition(g, opt)
	b, _, _ := Partition(g, opt)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d differs across identical runs", v)
		}
	}
}

func TestMultithreadedValid(t *testing.T) {
	g := gen.RMAT(11, 8, 17).MustBuild()
	opt := DefaultOptions(8)
	opt.Threads = 4
	parts, _, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, parts, 8); err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(g, parts, 8)
	if q.VertexImbalance > 1.25 {
		t.Errorf("threaded vertex imbalance %.3f", q.VertexImbalance)
	}
}

func TestRejectsBadNumParts(t *testing.T) {
	g := gen.ER(64, 128, 1).MustBuild()
	if _, _, err := Partition(g, Options{NumParts: 0}); err == nil {
		t.Fatal("expected error for NumParts=0")
	}
}

func TestSinglePart(t *testing.T) {
	g := gen.ER(128, 512, 1).MustBuild()
	parts, _, err := Partition(g, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range parts {
		if pt != 0 {
			t.Fatal("p=1 produced nonzero part id")
		}
	}
}

func BenchmarkPuLP16Parts(b *testing.B) {
	g := gen.RMAT(13, 16, 1).MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Partition(g, DefaultOptions(16)); err != nil {
			b.Fatal(err)
		}
	}
}
