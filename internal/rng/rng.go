// Package rng provides small, fast, deterministic pseudo-random number
// generators suitable for parallel graph generation and randomized
// algorithms. All generators are seeded explicitly, so every stochastic
// component of the repository is reproducible.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; 2014), which has
// a trivially splittable state: distinct streams are derived by hashing a
// (seed, stream) pair. That makes it safe to hand independent generators
// to many goroutines (one per MPI-sim rank or per worker thread) without
// any locking and without stream overlap in practice.
package rng

import (
	"math"
	"math/bits"
)

// golden is the 64-bit golden ratio constant used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Rand is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New to mix the seed first.
type Rand struct {
	state uint64
}

// New returns a generator whose stream is determined entirely by seed.
func New(seed uint64) *Rand {
	r := &Rand{state: Mix(seed)}
	return r
}

// NewStream returns a generator for the given (seed, stream) pair.
// Different stream values yield statistically independent sequences,
// which is how per-rank and per-thread generators are derived.
func NewStream(seed, stream uint64) *Rand {
	return &Rand{state: Mix(seed ^ Mix(stream+1))}
}

// Mix is the SplitMix64 finalizer: a bijective scrambling of a 64-bit
// value. It is exported because hashed vertex distributions use it to map
// global vertex identifiers to owner ranks.
func Mix(z uint64) uint64 {
	z += golden
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Int64n returns a uniform pseudo-random integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with n <= 0")
	}
	un := uint64(n)
	// Fast path for powers of two.
	if un&(un-1) == 0 {
		return int64(r.Uint64() & (un - 1))
	}
	// Lemire multiply-shift with rejection of the biased low region:
	// reject while the low product word is below 2^64 mod n.
	thresh := -un % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= thresh {
			return int64(hi)
		}
	}
}

// Intn returns a uniform pseudo-random int in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int64n(int64(n)))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *Rand) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n) as an []int64.
func (r *Rand) Perm(n int64) []int64 {
	p := make([]int64, n)
	for i := int64(0); i < n; i++ {
		p[i] = i
	}
	r.ShuffleInt64(p)
	return p
}

// ShuffleInt64 permutes s uniformly at random (Fisher–Yates).
func (r *Rand) ShuffleInt64(s []int64) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct uniform values from [0, n) in selection
// order. It panics if k > n or k < 0. For small k relative to n it uses
// rejection against a set; otherwise it uses a partial Fisher–Yates.
func (r *Rand) Sample(n, k int64) []int64 {
	if k < 0 || k > n {
		panic("rng: Sample requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*4 < n {
		seen := make(map[int64]struct{}, k)
		out := make([]int64, 0, k)
		for int64(len(out)) < k {
			v := r.Int64n(n)
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}
