package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values out of 1000", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("streams 0 and 1 collided at step %d", i)
		}
	}
}

func TestMixBijectiveSpotCheck(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestInt64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []int64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			v := r.Int64n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	New(1).Int64n(0)
}

func TestInt64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 10 buckets.
	r := New(99)
	const n, trials = 10, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Int64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int64{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if int64(len(p)) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctAndInRange(t *testing.T) {
	r := New(13)
	cases := []struct{ n, k int64 }{{10, 0}, {10, 1}, {10, 10}, {1000, 5}, {1000, 900}}
	for _, c := range cases {
		s := r.Sample(c.n, c.k)
		if int64(len(s)) != c.k {
			t.Fatalf("Sample(%d,%d) returned %d values", c.n, c.k, len(s))
		}
		seen := make(map[int64]bool)
		for _, v := range s {
			if v < 0 || v >= c.n {
				t.Fatalf("Sample(%d,%d) out-of-range value %d", c.n, c.k, v)
			}
			if seen[v] {
				t.Fatalf("Sample(%d,%d) duplicate value %d", c.n, c.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestExpPositive(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		e := r.Exp()
		if e < 0 {
			t.Fatalf("Exp returned negative value %v", e)
		}
		sum += e
	}
	if mean := sum / trials; math.Abs(mean-1.0) > 0.05 {
		t.Fatalf("Exp mean %.4f too far from 1.0", mean)
	}
}

// Property: Int64n is always within range for arbitrary seeds and bounds.
func TestQuickInt64nWithinBounds(t *testing.T) {
	f := func(seed uint64, nRaw int64) bool {
		n := nRaw % (1 << 30)
		if n <= 0 {
			n = 1 - n // make positive
		}
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Int64n(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical (seed, stream) pairs replay identical sequences.
func TestQuickStreamDeterminism(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a, b := NewStream(seed, stream), NewStream(seed, stream)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkInt64n(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Int64n(1000003)
	}
	_ = sink
}
