// Cross-thread determinism for the SpMV engine: the checksum (final
// ∞-norm of the iterated vector) must be bit-identical at every
// intra-rank thread count, in both exchange modes, under both layouts,
// on both rank substrates. The localMultiply row sweep accumulates
// per-row in CSR order inside each chunk and rows never straddle
// chunks, so the worker count cannot perturb a single IEEE operation —
// this test is the acceptance gate for that claim.
//
// External test package: the transport factories live in
// internal/mpitest, which imports the repro facade, which imports spmv
// — an in-package test would cycle.
package spmv_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mpi"
	"repro/internal/mpitest"
	"repro/internal/partition"
	"repro/internal/spmv"
)

func TestSpMVCrossThreadDeterminism(t *testing.T) {
	const ranks, iters = 4, 8
	g := gen.RMAT(9, 8, 11).MustBuild()
	parts := partition.VertexBlock(g, ranks)

	// run executes one world and returns rank 0's checksum (the Result
	// documents it as identical on every rank; rank symmetry is covered
	// by the engine's own tests).
	run := func(factory mpitest.Factory, threads int, layout spmv.Layout, async bool) float64 {
		var sum float64
		mpi.RunWorld(factory(t, ranks), threads, func(c *mpi.Comm) {
			res, err := spmv.Run(c, g, parts, spmv.Options{Layout: layout, Iterations: iters, Async: async})
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			if c.Rank() == 0 {
				sum = res.Checksum
			}
		})
		return sum
	}

	threadCounts := mpitest.CrossThreadCounts(testing.Short())
	factories := map[string]mpitest.Factory{"proc": mpitest.ProcFactory, "socket": mpitest.UnixSocketFactory}
	for _, layout := range []spmv.Layout{spmv.OneD, spmv.TwoD} {
		// Serial synchronous proc run is the per-layout reference; the
		// layouts themselves may differ bitwise (different fill order).
		ref := run(mpitest.ProcFactory, 1, layout, false)
		for name, factory := range factories {
			for _, threads := range threadCounts {
				for _, async := range []bool{false, true} {
					if name == "proc" && threads == 1 && !async {
						continue // the reference itself
					}
					got := run(factory, threads, layout, async)
					if got != ref {
						t.Errorf("%v %s/threads=%d/async=%v: checksum %v, want bit-identical %v",
							layout, name, threads, async, got, ref)
					}
				}
			}
		}
	}
}
