// Package spmv implements distributed sparse matrix–vector
// multiplication over graph adjacency matrices, reproducing the
// paper's Table III experiment: SpMV time under one-dimensional row
// layouts derived from any vertex partition, and two-dimensional
// layouts including the Boman–Devine–Rajamanickam mapping of a 1D
// partition onto a processor grid [6].
//
// The matrix is the (symmetric) adjacency matrix with unit values. One
// multiply performs the classic expand → local multiply → fold
// sequence: vector owners send needed x entries to the ranks holding
// matrix nonzeros in their columns, each rank multiplies its local
// nonzeros, and partial row sums are folded back to the row's vector
// owner. Under a 1D layout the fold is rank-local; under 2D both
// phases touch only a processor row/column, which is what accelerates
// skewed graphs in Table III.
//
// Both phases run on either of two transports (Options.Async): the
// bulk-synchronous world-wide Alltoallv, or nonblocking point-to-point
// messages over the precomputed per-peer schedules with a local-copy
// bypass for self-destined shares. The numerics are identical; only
// traffic and synchronization differ.
package spmv

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Layout selects the nonzero-to-rank mapping.
type Layout int

// Layouts.
const (
	// OneD assigns all nonzeros of row u to the rank owning vector
	// entry u.
	OneD Layout = iota
	// TwoD assigns nonzero (u, v) to the processor-grid rank combining
	// the row group of owner(u) with the column group of owner(v).
	TwoD
)

// String names the layout.
func (l Layout) String() string {
	if l == TwoD {
		return "2D"
	}
	return "1D"
}

// Options configures a run.
type Options struct {
	// Layout selects 1D or 2D nonzero placement.
	Layout Layout
	// Iterations is the number of chained multiplies (paper: 100).
	Iterations int
	// Async replaces the two world-wide Alltoallv collectives per
	// multiply with nonblocking point-to-point messages over the
	// precomputed expand/fold schedules: each rank sends only to the
	// peers its schedule names, and the self share — the entire fold
	// under a 1D layout — bypasses the transport as a local copy. The
	// numerics are bit-identical to the synchronous engine (values,
	// fill order, and accumulation order are unchanged); only traffic
	// and synchronization differ.
	//
	// Async mode additionally piggybacks the power iteration's
	// per-iteration ∞-norm on the expand messages when the expand
	// schedule's rank neighborhood is complete (detected collectively
	// once per run): normalization is deferred one iteration — each
	// rank ships its still-unnormalized vector entries plus its local
	// norm contribution, and receivers fold the global max (exact in
	// any order) and divide while filling their x buffers — so
	// iterations perform zero AllreduceScalar, with one trailing
	// reduction settling the final normalization. On incomplete
	// neighborhoods the engine falls back to the exact per-iteration
	// Allreduce; 2D layouts confine each rank's expand traffic to its
	// processor column, so they always take the fallback — the
	// piggyback is effectively a 1D-layout optimization. Checksums
	// stay bit-identical either way (same IEEE divisions of the same
	// operands, only computed receiver-side).
	Async bool
}

// Result reports one SpMV experiment.
type Result struct {
	// Time is the wall clock for all iterations on this rank.
	Time time.Duration
	// CommVolume is the total number of vector/partial values this rank
	// sent across all iterations. The synchronous engine pushes
	// self-destined shares through the Alltoallv like any MPI
	// implementation and counts them; the async engine's local-copy
	// bypass counts only values sent to other ranks. The piggybacked
	// norm element is framing, not a vector value, and is not counted.
	CommVolume int64
	// Checksum is the final ∞-norm of the iterated vector (identical on
	// every rank; used to verify layout-independence of the numerics).
	Checksum float64
	// MultiplyTime is the wall clock this rank spent inside the local
	// row-sum kernel (localMultiply) across all iterations — the
	// compute the ThreadsPerRank knob parallelizes, excluding all
	// communication.
	MultiplyTime time.Duration
	// Reductions is the number of Allreduce operations this rank
	// performed during Run: iterations+1 for the synchronous engine
	// (one norm per iteration plus the checksum), a small constant for
	// the async engine on complete rank neighborhoods (completeness
	// detection, the trailing deferred normalization, and the
	// checksum — independent of the iteration count).
	Reductions int64
	// NormPiggyback reports whether the async engine rode the
	// per-iteration ∞-norm on the expand messages (complete rank
	// neighborhood detected).
	NormPiggyback bool
}

// matrix is one rank's prepared SpMV state.
type matrix struct {
	c  *mpi.Comm
	p  int
	me int
	pr int // processor grid rows (1 for 1D)

	// Intra-rank parallel sweep state: worker count (Comm.Threads()),
	// the stored chunk bodies par.ForChunk fans out (bound once in
	// build, so the hot loops allocate no closures), the per-sweep
	// inputs those bodies read, and the accumulated kernel time. Every
	// parallel loop writes disjoint indices from phase-frozen inputs,
	// so results are bit-identical at every thread count.
	threads    int
	mulBody    func(lo, hi, tid int)
	foldBody   func(lo, hi, tid int)
	selfBody   func(lo, hi, tid int)
	divBody    func(lo, hi, tid int)
	foldDstIdx []int
	foldSeg    []float64
	divDst     []float64
	divSrc     []float64
	divNorm    float64
	mulTime    time.Duration

	// Owned vector entries, sorted by gid.
	vecGIDs []int64
	vecIdx  map[int64]int
	x       []float64

	// Local nonzeros in CSR over present rows; columns are local
	// x-buffer indices.
	rowGIDs []int64
	rowPtr  []int64
	colIdx  []int32

	// Distinct column gids needed (sorted), aligned with xbuf.
	colGIDs []int64
	xbuf    []float64

	// Expand schedule: for each dst, the owned vector positions to send
	// (indices into x). Received values fill xbuf directly because
	// colGIDs is sorted (owner rank, gid) — the concatenation order of
	// the Alltoallv.
	expandSend [][]int

	// Fold schedule (2D): per dst, positions into rowGIDs to send; and
	// per src, the owned vector indices the incoming partials add into.
	foldSend [][]int
	foldRecv [][]int

	// Async engine state (Options.Async): xbuf segment offsets per
	// source rank, and the remote peers each phase actually touches.
	// The synchronous engine needs none of this — the Alltoallv counts
	// encode the same information per call.
	async     bool
	colOff    []int
	expandOut []int
	expandIn  []int
	foldOut   []int

	// Norm-piggyback state (async mode, complete expand neighborhood):
	// pendNorm is this rank's local ∞-norm contribution for the
	// deferred normalization — max |y| of the previous multiply, 1.0
	// before the first (dividing by it must be exact, and x/1.0 is) —
	// and normSegs parks received expand segments until every peer's
	// contribution has arrived and the global divisor is known.
	normPiggyback bool
	pendNorm      float64
	normSegs      [][]float64

	// y accumulators.
	partial []float64 // per present row
	y       []float64 // per owned vector entry

	// Reusable per-multiply wire state: the expand/fold send counts and
	// buffers of the synchronous engine, and the per-peer staging
	// buffer of the async engine. The schedules are fixed after build,
	// so one warmup multiply sizes them and steady-state iterations
	// stop allocating in the send paths.
	expandCounts []int
	foldCounts   []int
	expandBuf    []float64
	foldBuf      []float64
	peerBuf      []float64
}

// nzRank maps nonzero (u, v) to its rank for the given layout.
func nzRank(layout Layout, parts []int32, pr, pc int, u, v int64) int {
	ou, ov := int(parts[u]), int(parts[v])
	if layout == OneD {
		return ou
	}
	return ou%pr + pr*(ov%pc)
}

// gridDims factors p into pr × pc with pr as close to √p as possible.
func gridDims(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, p / pr
}

// build prepares the rank-local SpMV state. Every rank passes the same
// shared graph and global partition (simulation convenience: setup is
// not part of the timed region, matching the paper which times only
// the 100 SpMV operations).
func build(c *mpi.Comm, g *graph.Graph, parts []int32, layout Layout) (*matrix, error) {
	p := c.Size()
	me := c.Rank()
	for v := int64(0); v < g.N; v++ {
		if int(parts[v]) >= p || parts[v] < 0 {
			return nil, fmt.Errorf("spmv: vertex %d part %d outside [0,%d)", v, parts[v], p)
		}
	}
	pr, pc := 1, p
	if layout == TwoD {
		pr, pc = gridDims(p)
	}
	m := &matrix{c: c, p: p, me: me, pr: pr, threads: c.Threads()}
	if m.threads < 1 {
		m.threads = 1
	}
	m.mulBody = m.mulChunk
	m.foldBody = m.foldAddChunk
	m.selfBody = m.foldSelfChunk
	m.divBody = m.divChunk

	// Owned vector entries.
	for v := int64(0); v < g.N; v++ {
		if int(parts[v]) == me {
			m.vecGIDs = append(m.vecGIDs, v)
		}
	}
	m.vecIdx = make(map[int64]int, len(m.vecGIDs))
	for i, gid := range m.vecGIDs {
		m.vecIdx[gid] = i
	}
	m.x = make([]float64, len(m.vecGIDs))
	m.y = make([]float64, len(m.vecGIDs))
	for i := range m.x {
		m.x[i] = 1.0 / float64(g.N)
	}

	// Local nonzeros: arcs (u -> v) with nzRank == me, grouped by row.
	type nz struct{ u, v int64 }
	var mine []nz
	for u := int64(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if nzRank(layout, parts, pr, pc, u, v) == me {
				mine = append(mine, nz{u, v})
			}
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].u != mine[j].u {
			return mine[i].u < mine[j].u
		}
		return mine[i].v < mine[j].v
	})
	colSet := make(map[int64]int32)
	for i := 0; i < len(mine); {
		j := i
		for j < len(mine) && mine[j].u == mine[i].u {
			j++
		}
		m.rowGIDs = append(m.rowGIDs, mine[i].u)
		m.rowPtr = append(m.rowPtr, int64(i))
		i = j
	}
	m.rowPtr = append(m.rowPtr, int64(len(mine)))
	// Column index assignment happens after the receive order is fixed:
	// xbuf is filled src-major, then by gid, so colGIDs must be sorted
	// (owner-rank, gid).
	distinct := make(map[int64]struct{})
	for _, e := range mine {
		distinct[e.v] = struct{}{}
	}
	m.colGIDs = make([]int64, 0, len(distinct))
	for v := range distinct {
		m.colGIDs = append(m.colGIDs, v)
	}
	sort.Slice(m.colGIDs, func(i, j int) bool {
		oi, oj := parts[m.colGIDs[i]], parts[m.colGIDs[j]]
		if oi != oj {
			return oi < oj
		}
		return m.colGIDs[i] < m.colGIDs[j]
	})
	for i, v := range m.colGIDs {
		colSet[v] = int32(i)
	}
	m.colIdx = make([]int32, len(mine))
	for i, e := range mine {
		m.colIdx[i] = colSet[e.v]
	}
	m.xbuf = make([]float64, len(m.colGIDs))
	m.partial = make([]float64, len(m.rowGIDs))

	// Expand schedule. Sender side: for each owned vector entry v, the
	// set of ranks holding nonzeros with column v — enumerated via the
	// symmetric adjacency.
	sendSets := make([]map[int64]struct{}, p)
	for d := range sendSets {
		sendSets[d] = make(map[int64]struct{})
	}
	for _, v := range m.vecGIDs {
		for _, u := range g.Neighbors(v) { // arc (u, v): row u, col v
			dst := nzRank(layout, parts, pr, pc, u, v)
			sendSets[dst][v] = struct{}{}
		}
	}
	m.expandSend = make([][]int, p)
	for d := 0; d < p; d++ {
		gids := make([]int64, 0, len(sendSets[d]))
		for v := range sendSets[d] {
			gids = append(gids, v)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		idxs := make([]int, len(gids))
		for i, v := range gids {
			idxs[i] = m.vecIdx[v]
		}
		m.expandSend[d] = idxs
	}

	// Fold schedule: my present rows grouped by the row's vector owner;
	// symmetric receive from ranks holding nonzeros in my rows.
	m.foldSend = make([][]int, p)
	for ri, u := range m.rowGIDs {
		m.foldSend[parts[u]] = append(m.foldSend[parts[u]], ri)
	}
	// Receive side: for each owned vector entry u, the ranks holding
	// row-u nonzeros, each sending one partial per iteration, ordered
	// by gid within each src (matching sender's rowGIDs order).
	recvSets := make([]map[int64]struct{}, p)
	for s := range recvSets {
		recvSets[s] = make(map[int64]struct{})
	}
	for _, u := range m.vecGIDs {
		for _, v := range g.Neighbors(u) { // arc (u, v) lives at nzRank
			src := nzRank(layout, parts, pr, pc, u, v)
			recvSets[src][u] = struct{}{}
		}
	}
	m.foldRecv = make([][]int, p)
	for s := 0; s < p; s++ {
		gids := make([]int64, 0, len(recvSets[s]))
		for u := range recvSets[s] {
			gids = append(gids, u)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		idxs := make([]int, len(gids))
		for i, u := range gids {
			idxs[i] = m.vecIdx[u]
		}
		m.foldRecv[s] = idxs
	}

	// colGIDs is sorted (owner rank, gid), so per-source xbuf segments
	// are contiguous; colOff is their prefix index.
	m.colOff = make([]int, p+1)
	for _, v := range m.colGIDs {
		m.colOff[parts[v]+1]++
	}
	for r := 0; r < p; r++ {
		m.colOff[r+1] += m.colOff[r]
	}
	for d := 0; d < p; d++ {
		if d != me && len(m.expandSend[d]) > 0 {
			m.expandOut = append(m.expandOut, d)
		}
		if d != me && m.colOff[d+1] > m.colOff[d] {
			m.expandIn = append(m.expandIn, d)
		}
		if d != me && len(m.foldSend[d]) > 0 {
			m.foldOut = append(m.foldOut, d)
		}
	}
	return m, nil
}

// multiply performs one distributed SpMV: y = A x, leaving y in m.y.
// It returns the number of values this rank sent.
func (m *matrix) multiply() int64 {
	if m.async {
		return m.multiplyAsync()
	}
	var volume int64

	// Expand: ship owned x entries to nonzero holders. Counts are
	// schedule-derived and fixed; buffers reuse their capacity.
	if m.expandCounts == nil {
		m.expandCounts = make([]int, m.p)
		m.foldCounts = make([]int, m.p)
		for d := 0; d < m.p; d++ {
			m.expandCounts[d] = len(m.expandSend[d])
			m.foldCounts[d] = len(m.foldSend[d])
		}
	}
	total := 0
	sendBuf := m.expandBuf[:0]
	for d := 0; d < m.p; d++ {
		total += m.expandCounts[d]
		for _, xi := range m.expandSend[d] {
			sendBuf = append(sendBuf, m.x[xi])
		}
	}
	m.expandBuf = sendBuf
	volume += int64(total)
	recv, _ := mpi.Alltoallv(m.c, sendBuf, m.expandCounts)
	copy(m.xbuf, recv) // src-major, gid-sorted: matches colGIDs order

	m.localMultiply()

	// Fold: ship partial row sums to vector owners and accumulate.
	ftotal := 0
	fbuf := m.foldBuf[:0]
	for d := 0; d < m.p; d++ {
		ftotal += m.foldCounts[d]
		for _, ri := range m.foldSend[d] {
			fbuf = append(fbuf, m.partial[ri])
		}
	}
	m.foldBuf = fbuf
	volume += int64(ftotal)
	frecv, _ := mpi.Alltoallv(m.c, fbuf, m.foldCounts)
	for i := range m.y {
		m.y[i] = 0
	}
	pos := 0
	for s := 0; s < m.p; s++ {
		n := len(m.foldRecv[s])
		m.foldDstIdx, m.foldSeg = m.foldRecv[s], frecv[pos:pos+n]
		par.ForChunk(0, n, m.threads, m.foldBody)
		pos += n
	}
	return volume
}

// localMultiply computes the partial row sums from the filled x
// buffer — the compute kernel both engines share, so the cross-engine
// bit-identical-checksum guarantee cannot drift. Rows fan out across
// the rank's worker threads; each row's inner sum stays a serial
// ascending accumulation and each row writes its own partial slot, so
// the partials are bit-identical at every thread count.
//
//repro:hotpath
//repro:timing
func (m *matrix) localMultiply() {
	start := time.Now()
	par.ForChunk(0, len(m.rowGIDs), m.threads, m.mulBody)
	m.mulTime += time.Since(start)
}

// mulChunk is localMultiply's per-thread body: the CSR row loop over
// one contiguous row chunk.
//
//repro:hotpath
func (m *matrix) mulChunk(lo, hi, _ int) {
	for ri := lo; ri < hi; ri++ {
		var sum float64
		for e := m.rowPtr[ri]; e < m.rowPtr[ri+1]; e++ {
			sum += m.xbuf[m.colIdx[e]]
		}
		m.partial[ri] = sum
	}
}

// foldAddChunk accumulates one source's received fold segment:
// y[foldDstIdx[j]] += foldSeg[j]. Within a source the destination
// indices are distinct, so the adds are disjoint; sources are folded
// serially in ascending rank order by the callers, which is what keeps
// each y element's float accumulation order fixed.
//
//repro:hotpath
func (m *matrix) foldAddChunk(lo, hi, _ int) {
	dst, seg := m.foldDstIdx, m.foldSeg
	for j := lo; j < hi; j++ {
		m.y[dst[j]] += seg[j]
	}
}

// foldSelfChunk is foldAddChunk for the self share: partials indexed
// through the send schedule instead of a received segment.
//
//repro:hotpath
func (m *matrix) foldSelfChunk(lo, hi, _ int) {
	send, recv := m.foldSend[m.me], m.foldRecv[m.me]
	for j := lo; j < hi; j++ {
		m.y[recv[j]] += m.partial[send[j]]
	}
}

// divChunk performs the piggyback's deferred normalization on one
// xbuf segment: divDst[j] = divSrc[j] / divNorm, disjoint per index.
//
//repro:hotpath
func (m *matrix) divChunk(lo, hi, _ int) {
	dst, src, norm := m.divDst, m.divSrc, m.divNorm
	for j := lo; j < hi; j++ {
		dst[j] = src[j] / norm
	}
}

// multiplyAsync is multiply on point-to-point messages: the expand and
// fold phases each send one message per scheduled remote peer and copy
// the self share locally. Fill and accumulation orders match the
// synchronous engine exactly (xbuf segments are source-major, y adds
// run in ascending source rank with the self share at its rank
// position), so the iterated vector — and Result.Checksum — is
// bit-identical across engines.
//
//repro:hotpath
func (m *matrix) multiplyAsync() int64 {
	var volume int64
	me := m.c.Rank()

	// Expand: remote sends first (Isend is eager and never blocks),
	// then the local copy, then the receives. Isend copies at call
	// time, so one staging buffer serves every peer.
	if m.normPiggyback {
		volume += m.expandPiggyback(me)
	} else {
		for _, d := range m.expandOut {
			buf := m.peerBuf[:0]
			for _, xi := range m.expandSend[d] {
				buf = append(buf, m.x[xi])
			}
			m.peerBuf = buf
			mpi.Isend(m.c, d, buf)
			volume += int64(len(buf))
		}
		for i, xi := range m.expandSend[me] {
			m.xbuf[m.colOff[me]+i] = m.x[xi]
		}
		for _, s := range m.expandIn {
			seg := mpi.Irecv[float64](m.c, s).Await()
			copy(m.xbuf[m.colOff[s]:m.colOff[s+1]], seg)
		}
	}

	m.localMultiply()

	// Fold: ship partial row sums to remote vector owners; under a 1D
	// layout every row is owner-local and this loop sends nothing.
	for _, d := range m.foldOut {
		buf := m.peerBuf[:0]
		for _, ri := range m.foldSend[d] {
			buf = append(buf, m.partial[ri])
		}
		m.peerBuf = buf
		mpi.Isend(m.c, d, buf)
		volume += int64(len(buf))
	}
	for i := range m.y {
		m.y[i] = 0
	}
	for s := 0; s < m.p; s++ {
		if s == me {
			par.ForChunk(0, len(m.foldSend[me]), m.threads, m.selfBody)
			continue
		}
		if len(m.foldRecv[s]) == 0 {
			continue
		}
		seg := mpi.Irecv[float64](m.c, s).Await()
		m.foldDstIdx, m.foldSeg = m.foldRecv[s], seg
		par.ForChunk(0, len(m.foldRecv[s]), m.threads, m.foldBody)
	}
	return volume
}

// expandPiggyback is the expand phase under the ∞-norm piggyback: the
// vector entries travel unnormalized with the sender's local norm
// contribution appended, the receiver folds the global max over its
// own and every peer's contribution (exact in any order — max never
// rounds — so it equals the AllreduceScalar it replaces bit for bit),
// and the deferred division happens while filling xbuf. The divided
// values are the same IEEE quotients the synchronous engine computes
// owner-side before shipping, so the numerics cannot drift. Received
// segments are parked in normSegs until every contribution has
// arrived, because no entry may be divided before the fold is total.
//
//repro:hotpath
func (m *matrix) expandPiggyback(me int) int64 {
	var volume int64
	for _, d := range m.expandOut {
		buf := m.peerBuf[:0]
		for _, xi := range m.expandSend[d] {
			buf = append(buf, m.x[xi])
		}
		buf = append(buf, m.pendNorm)
		m.peerBuf = buf
		mpi.Isend(m.c, d, buf)
		volume += int64(len(buf) - 1)
	}
	norm := m.pendNorm
	m.normSegs = m.normSegs[:0]
	for _, s := range m.expandIn {
		seg := mpi.Irecv[float64](m.c, s).Await()
		if n := seg[len(seg)-1]; n > norm {
			norm = n
		}
		m.normSegs = append(m.normSegs, seg)
	}
	if norm == 0 {
		norm = 1 // the synchronous engine's zero-norm guard
	}
	for i, xi := range m.expandSend[me] {
		m.xbuf[m.colOff[me]+i] = m.x[xi] / norm
	}
	m.divNorm = norm
	for si, s := range m.expandIn {
		seg := m.normSegs[si]
		m.divDst, m.divSrc = m.xbuf[m.colOff[s]:m.colOff[s+1]], seg
		par.ForChunk(0, m.colOff[s+1]-m.colOff[s], m.threads, m.divBody)
		m.normSegs[si] = nil // release the transfer copy
	}
	return volume
}

// Run executes opt.Iterations chained multiplies (x ← A x / ‖A x‖∞)
// and reports timing, traffic, and a layout-independent checksum.
//
//repro:deterministic
//repro:timing
func Run(c *mpi.Comm, g *graph.Graph, parts []int32, opt Options) (Result, error) {
	if opt.Iterations <= 0 {
		opt.Iterations = 100
	}
	m, err := build(c, g, parts, opt.Layout)
	if err != nil {
		return Result{}, err
	}
	m.async = opt.Async
	redBase := c.Stats().ReductionOps
	if opt.Async {
		// One-time collective detection: the norm piggyback needs every
		// rank to hear every other rank's contribution on each expand,
		// i.e. a complete expand rank neighborhood on EVERY rank.
		m.normPiggyback = mpi.NeighborhoodComplete(c, len(m.expandIn))
		m.pendNorm = 1
	}
	var res Result
	start := time.Now()
	for it := 0; it < opt.Iterations; it++ {
		res.CommVolume += m.multiply()
		// Normalize by the global ∞-norm to keep the iteration bounded
		// (power iteration on the adjacency matrix). Max is order-
		// independent, so the parallel reduction is exact.
		local := par.MaxFloat64(0, len(m.y), m.threads, 0,
			func(i int) float64 { return math.Abs(m.y[i]) })
		if m.normPiggyback {
			// Deferred: keep y unnormalized and remember the local norm
			// contribution — the next expand ships it and divides on
			// receive; no reduction this iteration.
			m.pendNorm = local
			copy(m.x, m.y)
			continue
		}
		norm := mpi.AllreduceScalar(c, local, mpi.Max)
		if norm == 0 {
			norm = 1
		}
		par.For(0, len(m.y), m.threads, func(i int) { m.x[i] = m.y[i] / norm })
	}
	if m.normPiggyback && opt.Iterations > 0 {
		// Settle the last iteration's deferred normalization: the one
		// reduction the piggyback leaves, independent of the iteration
		// count.
		norm := mpi.AllreduceScalar(c, m.pendNorm, mpi.Max)
		if norm == 0 {
			norm = 1
		}
		par.For(0, len(m.x), m.threads, func(i int) { m.x[i] = m.x[i] / norm })
	}
	res.Time = time.Since(start)
	local := par.MaxFloat64(0, len(m.x), m.threads, 0,
		func(i int) float64 { return math.Abs(m.x[i]) })
	res.Checksum = mpi.AllreduceScalar(c, local, mpi.Max)
	res.Reductions = c.Stats().ReductionOps - redBase
	res.NormPiggyback = m.normPiggyback
	res.MultiplyTime = m.mulTime
	return res, nil
}
