package spmv

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// serialPower computes k normalized power iterations of the adjacency
// matrix in shared memory as the reference.
func serialPower(g *graph.Graph, k int) []float64 {
	x := make([]float64, g.N)
	y := make([]float64, g.N)
	for i := range x {
		x[i] = 1.0 / float64(g.N)
	}
	for it := 0; it < k; it++ {
		var norm float64
		for u := int64(0); u < g.N; u++ {
			var sum float64
			for _, v := range g.Neighbors(u) {
				sum += x[v]
			}
			y[u] = sum
			if a := math.Abs(sum); a > norm {
				norm = a
			}
		}
		if norm == 0 {
			norm = 1
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	return x
}

func TestSpMVMatchesSerialBothLayouts(t *testing.T) {
	g := gen.ERAvgDeg(512, 8, 5).MustBuild()
	const iters = 10
	ref := serialPower(g, iters)
	var refNorm float64
	for _, v := range ref {
		if a := math.Abs(v); a > refNorm {
			refNorm = a
		}
	}
	for _, layout := range []Layout{OneD, TwoD} {
		for _, p := range []int{1, 4, 6} {
			parts := partition.VertexBlock(g, p)
			mpi.Run(p, func(c *mpi.Comm) {
				res, err := Run(c, g, parts, Options{Layout: layout, Iterations: iters})
				if err != nil {
					t.Errorf("%v p=%d: %v", layout, p, err)
					return
				}
				if math.Abs(res.Checksum-refNorm) > 1e-9 {
					t.Errorf("%v p=%d: checksum %v, want %v", layout, p, res.Checksum, refNorm)
				}
			})
		}
	}
}

func TestLayoutsAgreeWithEachOther(t *testing.T) {
	g := gen.RMAT(9, 8, 7).MustBuild()
	const p = 4
	parts := partition.Random(g, p, 3)
	var cs [2]float64
	for li, layout := range []Layout{OneD, TwoD} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: layout, Iterations: 5})
			if err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			if c.Rank() == 0 {
				cs[li] = res.Checksum
			}
		})
	}
	if math.Abs(cs[0]-cs[1]) > 1e-9 {
		t.Fatalf("1D checksum %v != 2D checksum %v", cs[0], cs[1])
	}
}

func Test2DReducesCommOnSkewedGraph(t *testing.T) {
	// The Table III effect: on a skewed graph with a random vertex
	// partition, the 2D layout's total communication volume is lower
	// than 1D's.
	g := gen.ChungLu(4096, 32768, 2.0, 9).MustBuild()
	const p = 16
	parts := partition.Random(g, p, 5)
	var vol [2]int64
	for li, layout := range []Layout{OneD, TwoD} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: layout, Iterations: 3})
			if err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
			if c.Rank() == 0 {
				vol[li] = v
			}
		})
	}
	if vol[1] >= vol[0] {
		t.Errorf("2D volume %d not below 1D volume %d on skewed graph", vol[1], vol[0])
	}
}

func TestGoodPartitionReducesCommOver1DRandom(t *testing.T) {
	// A locality-preserving partition must communicate less than a
	// random one under the same 1D layout (the premise of Table III).
	g := gen.Grid3D(12, 12, 12).MustBuild()
	const p = 8
	var vol [2]int64
	for pi, parts := range [][]int32{partition.Random(g, p, 7), partition.VertexBlock(g, p)} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 3})
			if err != nil {
				t.Fatalf("%v", err)
			}
			v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
			if c.Rank() == 0 {
				vol[pi] = v
			}
		})
	}
	if vol[1] >= vol[0] {
		t.Errorf("block partition volume %d not below random %d", vol[1], vol[0])
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct{ p, pr, pc int }{
		{1, 1, 1}, {4, 2, 2}, {6, 2, 3}, {16, 4, 4}, {7, 1, 7}, {12, 3, 4},
	}
	for _, c := range cases {
		pr, pc := gridDims(c.p)
		if pr*pc != c.p {
			t.Errorf("gridDims(%d) = %d x %d", c.p, pr, pc)
		}
		if pr != c.pr || pc != c.pc {
			t.Errorf("gridDims(%d) = (%d,%d), want (%d,%d)", c.p, pr, pc, c.pr, c.pc)
		}
	}
}

func TestRejectsBadPartition(t *testing.T) {
	g := gen.ER(64, 128, 1).MustBuild()
	parts := make([]int32, g.N)
	parts[0] = 99
	mpi.Run(2, func(c *mpi.Comm) {
		if _, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 1}); err == nil {
			t.Error("expected error for out-of-range part id")
		}
	})
}

func BenchmarkSpMV1D8Ranks(b *testing.B) {
	g := gen.RMAT(12, 16, 1).MustBuild()
	parts := partition.Random(g, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(8, func(c *mpi.Comm) {
			if _, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 10}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// The async engine's ∞-norm piggyback: on a complete expand
// neighborhood the per-iteration norm reduction rides the expand
// messages, so the run's Allreduce count is a small constant
// independent of the iteration count — while the checksum stays
// bit-identical to the synchronous engine. The 2D layout confines each
// rank's expand traffic to its processor column, so its neighborhood
// is structurally incomplete and it must take the exact per-iteration
// fallback instead (same checksum either way).
func TestNormPiggybackZeroPerIterationAllreduce(t *testing.T) {
	g := gen.ChungLu(2048, 16384, 2.0, 9).MustBuild()
	const p = 4
	parts := partition.Random(g, p, 5)
	for _, layout := range []Layout{OneD, TwoD} {
		for _, iters := range []int{5, 20} {
			var syncCS, asyncCS float64
			var syncRed, asyncRed int64
			var piggy bool
			for _, async := range []bool{false, true} {
				mpi.Run(p, func(c *mpi.Comm) {
					res, err := Run(c, g, parts, Options{Layout: layout, Iterations: iters, Async: async})
					if err != nil {
						t.Errorf("%v async=%v: %v", layout, async, err)
						return
					}
					if c.Rank() == 0 {
						if async {
							asyncCS, asyncRed, piggy = res.Checksum, res.Reductions, res.NormPiggyback
						} else {
							syncCS, syncRed = res.Checksum, res.Reductions
						}
					}
				})
			}
			if syncCS != asyncCS {
				t.Errorf("%v iters=%d: checksum %v (sync) vs %v (async), must be bit-identical", layout, iters, syncCS, asyncCS)
			}
			if want := int64(iters + 1); syncRed != want {
				t.Errorf("%v iters=%d: sync performed %d Allreduces, want %d", layout, iters, syncRed, want)
			}
			if layout == OneD {
				if !piggy {
					t.Fatalf("1D iters=%d: random partition on %d ranks should give a complete expand neighborhood", iters, p)
				}
				// Detection + trailing deferred normalization + checksum:
				// constant, independent of iters.
				if asyncRed != 3 {
					t.Errorf("1D iters=%d: async performed %d Allreduces, want 3 (norm must ride the expand messages)", iters, asyncRed)
				}
			} else {
				if piggy {
					t.Fatalf("2D iters=%d: column-confined expand traffic cannot form a complete neighborhood", iters)
				}
				if want := int64(iters + 2); asyncRed != want {
					t.Errorf("2D iters=%d: async fallback performed %d Allreduces, want %d", iters, asyncRed, want)
				}
			}
		}
	}
}

// On an incomplete expand neighborhood (a blocked mesh where distant
// slabs never exchange) the piggyback must detect infeasibility and
// fall back to the exact per-iteration Allreduce — still bit-identical
// to sync.
func TestNormPiggybackIncompleteFallback(t *testing.T) {
	g := gen.Grid3D(10, 10, 10).MustBuild()
	const p = 5
	parts := partition.VertexBlock(g, p)
	const iters = 6
	var syncCS, asyncCS float64
	var asyncRed int64
	var piggy bool
	for _, async := range []bool{false, true} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: OneD, Iterations: iters, Async: async})
			if err != nil {
				t.Errorf("async=%v: %v", async, err)
				return
			}
			if c.Rank() == 0 {
				if async {
					asyncCS, asyncRed, piggy = res.Checksum, res.Reductions, res.NormPiggyback
				} else {
					syncCS = res.Checksum
				}
			}
		})
	}
	if piggy {
		t.Fatalf("blocked 3D grid on %d ranks should have an incomplete expand neighborhood", p)
	}
	if syncCS != asyncCS {
		t.Errorf("checksum %v (sync) vs %v (async fallback), must be bit-identical", syncCS, asyncCS)
	}
	// Detection + one norm per iteration + checksum.
	if want := int64(iters + 2); asyncRed != want {
		t.Errorf("async fallback performed %d Allreduces, want %d", asyncRed, want)
	}
}
